// Benchmarks regenerating the paper's tables and figures as testing.B
// targets. Each sub-benchmark is one table cell: a (design, rule, checker)
// triple; the reported ns/op is the cell's runtime (for GPU checkers the
// *measured* host work dominates ns/op — the modeled device time appears in
// the `modeled_us` metric). Designs run at a reduced scale so the whole
// suite completes on a laptop; `cmd/odrc-bench` runs the full-scale tables.
package opendrc_test

import (
	"sync"
	"testing"

	"opendrc/internal/bench"
	"opendrc/internal/core"
	"opendrc/internal/geom"
	"opendrc/internal/kernels"
	"opendrc/internal/layout"
	"opendrc/internal/partition"
	"opendrc/internal/synth"
)

const benchScale = 0.25

var (
	layoutsOnce sync.Once
	layoutsMap  map[string]*layout.Layout
)

func benchLayouts(b *testing.B) map[string]*layout.Layout {
	b.Helper()
	layoutsOnce.Do(func() {
		m, err := bench.Layouts(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		layoutsMap = m
	})
	return layoutsMap
}

// runTable executes every (design, rule, checker) cell of one table as
// sub-benchmarks.
func runTable(b *testing.B, ruleIDs []string) {
	layouts := benchLayouts(b)
	for _, design := range bench.DesignNames() {
		lo := layouts[design]
		for _, id := range ruleIDs {
			r, err := synth.RuleByID(id)
			if err != nil {
				b.Fatal(err)
			}
			for c := bench.KLayoutFlat; c <= bench.OpenDRCPar; c++ {
				name := design + "/" + id + "/" + c.String()
				checker := c
				b.Run(name, func(b *testing.B) {
					var modeled float64
					for i := 0; i < b.N; i++ {
						cell, err := bench.RunCell(lo, r, checker)
						if err != nil {
							b.Fatal(err)
						}
						if !cell.Supported {
							b.Skip("rule unsupported by checker")
						}
						modeled = float64(cell.Time.Microseconds())
					}
					b.ReportMetric(modeled, "modeled_us")
				})
			}
		}
	}
}

// BenchmarkTableI regenerates Table I: intra-polygon checks (width, area).
func BenchmarkTableI(b *testing.B) {
	runTable(b, bench.TableIRules())
}

// BenchmarkTableII regenerates Table II: inter-polygon checks (spacing,
// enclosure).
func BenchmarkTableII(b *testing.B) {
	runTable(b, bench.TableIIRules())
}

// BenchmarkFig4 profiles the sequential space check per design — the Fig. 4
// runtime breakdown; phase fractions are reported as metrics.
func BenchmarkFig4(b *testing.B) {
	layouts := benchLayouts(b)
	r, err := synth.RuleByID("M1.S.1")
	if err != nil {
		b.Fatal(err)
	}
	for _, design := range bench.DesignNames() {
		lo := layouts[design]
		b.Run(design, func(b *testing.B) {
			var part, sweep, edge float64
			for i := 0; i < b.N; i++ {
				eng := core.New(core.Options{Mode: core.Sequential})
				if err := eng.AddRules(r); err != nil {
					b.Fatal(err)
				}
				rep, err := eng.Check(lo)
				if err != nil {
					b.Fatal(err)
				}
				total := float64(rep.Profile.Total())
				if total > 0 {
					part = float64(rep.Profile.Get("spacing:partition")) / total * 100
					sweep = float64(rep.Profile.Get("spacing:sweepline")) / total * 100
					edge = float64(rep.Profile.Get("spacing:edge-checks")) / total * 100
				}
			}
			b.ReportMetric(part, "partition_%")
			b.ReportMetric(sweep, "sweepline_%")
			b.ReportMetric(edge, "edgecheck_%")
		})
	}
}

// BenchmarkPartitionAblation compares the paper's Θ(k+N) pigeonhole interval
// merging against the Ω(k log k) sort-based alternative on a large merge
// workload (k ≫ N, the regime the paper argues from).
func BenchmarkPartitionAblation(b *testing.B) {
	const k = 200000
	const rows = 400
	boxes := make([]geom.Rect, k)
	for i := range boxes {
		y := int64((i % rows) * 270)
		x := int64(i) * 7 % 100000
		boxes[i] = geom.R(x, y+40, x+120, y+230)
	}
	b.Run("pigeonhole", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			partition.Rows(boxes, 18, partition.Pigeonhole)
		}
	})
	b.Run("sort-based", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			partition.Rows(boxes, 18, partition.SortBased)
		}
	})
}

// BenchmarkPruningAblation measures hierarchy task pruning on the
// sequential engine: identical rule, pruning on versus off.
func BenchmarkPruningAblation(b *testing.B) {
	lo := benchLayouts(b)["aes"]
	r, err := synth.RuleByID("M1.W.1")
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		name string
		opts core.Options
	}{
		{"pruning-on", core.Options{Mode: core.Sequential}},
		{"pruning-off", core.Options{Mode: core.Sequential, DisablePruning: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := core.New(cfg.opts)
				if err := eng.AddRules(r); err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Check(lo); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExecutorAblation forces the parallel mode's executor choice both
// ways on a spacing rule.
func BenchmarkExecutorAblation(b *testing.B) {
	lo := benchLayouts(b)["aes"]
	r, err := synth.RuleByID("M1.S.1")
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		name      string
		threshold int
	}{
		{"all-brute", 1 << 30},
		{"all-sweep", 1},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var modeled float64
			for i := 0; i < b.N; i++ {
				eng := core.New(core.Options{Mode: core.Parallel, BruteEdgeThreshold: cfg.threshold})
				if err := eng.AddRules(r); err != nil {
					b.Fatal(err)
				}
				rep, err := eng.Check(lo)
				if err != nil {
					b.Fatal(err)
				}
				modeled = float64(rep.Modeled.Microseconds())
			}
			b.ReportMetric(modeled, "modeled_us")
		})
	}
}

// BenchmarkBVHAblation measures the layer-wise MBR augmentation: a narrow
// layer range query through the pruned hierarchy versus filtering the
// flattened layer.
func BenchmarkBVHAblation(b *testing.B) {
	lo := benchLayouts(b)["ethmac"]
	window := geom.R(1000, 1000, 3000, 3000)
	b.Run("bvh-query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lo.QueryLayer(layout.LayerM1, window)
		}
	})
	b.Run("flatten-filter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			for _, pp := range lo.FlattenLayer(layout.LayerM1) {
				if pp.Shape.MBR().Overlaps(window) {
					n++
				}
			}
		}
	})
}

// BenchmarkFlattenLayer measures one full hierarchy flatten per design —
// the unit of work the geometry cache performs once per layer instead of
// once per rule.
func BenchmarkFlattenLayer(b *testing.B) {
	layouts := benchLayouts(b)
	for _, design := range bench.DesignNames() {
		lo := layouts[design]
		b.Run(design, func(b *testing.B) {
			n := 0
			for i := 0; i < b.N; i++ {
				n = len(lo.FlattenLayer(layout.LayerM1))
			}
			b.ReportMetric(float64(n), "polys")
		})
	}
}

// BenchmarkPack measures packing a flattened layer into the SoA edge buffer
// — the second half of the per-layer work the cache memoizes and the device
// keeps resident.
func BenchmarkPack(b *testing.B) {
	layouts := benchLayouts(b)
	for _, design := range bench.DesignNames() {
		lo := layouts[design]
		flat := lo.FlattenLayer(layout.LayerM1)
		shapes := make([]geom.Polygon, len(flat))
		for i := range flat {
			shapes[i] = flat[i].Shape
		}
		b.Run(design, func(b *testing.B) {
			var bytes int64
			for i := 0; i < b.N; i++ {
				bytes = kernels.Pack(shapes).Bytes()
			}
			b.ReportMetric(float64(bytes), "bytes")
		})
	}
}
