// Command odrc-bench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	odrc-bench -table 1|2 [-scale f]     reproduce Table I / Table II
//	odrc-bench -fig 3                    print the sweepline trace (Fig. 3)
//	odrc-bench -fig 4 [-scale f]         runtime breakdown (Fig. 4)
//	odrc-bench -ablation [-scale f]      design-choice ablations
//	odrc-bench -speedup [-workers n] [-runs k] [-out f.json] [-gate]
//	                                     multi-core speedup, both engine modes
//	                                     (Workers=1 vs Workers=n wall time,
//	                                     medians of interleaved runs)
//	odrc-bench -reuse [-runs k] [-out f.json] [-gate]
//	                                     cross-rule geometry reuse (cache on
//	                                     vs off); -gate exits non-zero when a
//	                                     row regresses
//	odrc-bench -delta [-runs k] [-out f.json] [-gate]
//	                                     incremental re-check after edits vs a
//	                                     cold full check, swept over edit
//	                                     fractions; every row cross-checks the
//	                                     two reports byte-for-byte
//	odrc-bench -fairness [-fair-checks n] [-out f.json] [-gate]
//	                                     cross-tenant fair scheduling: light-
//	                                     tenant p50/p95 under heavy co-tenant
//	                                     load, FIFO baseline vs weighted fair;
//	                                     every row cross-checks the light
//	                                     reports against an unloaded solo run
//	odrc-bench -trace f.json [-trace-design d] [-trace-mode seq|par]
//	                                     run the full deck once with the
//	                                     timeline recorder attached and write
//	                                     the Chrome-trace/Perfetto JSON
//	odrc-bench -validate-trace f.json    structural check of an exported trace
//
// Every experiment accepts -timeout d; an expired deadline aborts between
// cells and exits with code 3 (the same taxonomy as cmd/odrc).
//
// Time semantics: CPU checkers report measured wall time divided by the
// host calibration constant; GPU checkers report modeled CPU+GPU time from
// the simulated device (see DESIGN.md).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"opendrc/internal/bench"
	"opendrc/internal/core"
	"opendrc/internal/partition"
	"opendrc/internal/synth"
	"opendrc/internal/trace"
)

func main() {
	if err := run(); err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "odrc-bench: timeout:", err)
			os.Exit(3)
		}
		fmt.Fprintln(os.Stderr, "odrc-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	table := flag.Int("table", 0, "reproduce table 1 (intra-polygon) or 2 (inter-polygon)")
	fig := flag.Int("fig", 0, "reproduce figure 3 (sweepline trace) or 4 (runtime breakdown)")
	ablation := flag.Bool("ablation", false, "run the design-choice ablations")
	speedup := flag.Bool("speedup", false, "run the multi-core speedup experiment (both engine modes)")
	reuse := flag.Bool("reuse", false, "run the cross-rule geometry reuse experiment (cache on vs off)")
	delta := flag.Bool("delta", false, "run the incremental re-check experiment (delta vs cold full check after edits)")
	fairness := flag.Bool("fairness", false, "run the cross-tenant fair-scheduling experiment (light tenant latency under heavy co-tenant load, FIFO vs weighted fair)")
	fairChecks := flag.Int("fair-checks", 40, "light-tenant checks measured per -fairness row")
	traceOut := flag.String("trace", "", "run the full deck once with tracing and write the Chrome-trace JSON to this file")
	traceDesign := flag.String("trace-design", "aes", "design for the -trace run")
	traceMode := flag.String("trace-mode", "par", "engine mode for the -trace run: seq or par")
	validateTrace := flag.String("validate-trace", "", "validate the structure of an exported trace file and print its summary")
	workers := flag.Int("workers", 0, "worker-pool size for -speedup and -trace (0 = GOMAXPROCS)")
	runs := flag.Int("runs", 3, "repetitions per -speedup/-reuse/-delta cell (best-of interleaved runs are reported)")
	out := flag.String("out", "", "also write the -speedup/-reuse/-delta report as JSON to this file")
	gate := flag.Bool("gate", false, "for -speedup/-reuse/-delta: exit non-zero when any row regresses (ratio < 1.0 or reports not identical)")
	scale := flag.Float64("scale", 1, "design scale factor (1 = full synthetic size)")
	timeout := flag.Duration("timeout", 0, "abort the experiment after this duration (0 = no deadline); exits 3 on expiry")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	switch {
	case *validateTrace != "":
		return runValidateTrace(*validateTrace)
	case *traceOut != "":
		return runTrace(ctx, *traceOut, *traceDesign, *traceMode, *scale, *workers)
	case *table == 1:
		return runTable(ctx, "Table I — intra-polygon checks (width, area)", bench.TableIRules(), *scale)
	case *table == 2:
		return runTable(ctx, "Table II — inter-polygon checks (spacing, enclosure)", bench.TableIIRules(), *scale)
	case *fig == 3:
		return bench.Fig3(os.Stdout)
	case *fig == 4:
		lts, err := bench.Layouts(*scale)
		if err != nil {
			return err
		}
		rows, err := bench.Fig4Context(ctx, lts)
		if err != nil {
			return err
		}
		bench.WriteFig4(os.Stdout, rows)
		return nil
	case *ablation:
		return runAblations(*scale)
	case *speedup:
		return runSpeedup(ctx, *scale, *workers, *runs, *out, *gate)
	case *reuse:
		return runReuse(ctx, *scale, *runs, *out, *gate)
	case *delta:
		return runDelta(ctx, *scale, *runs, *out, *gate)
	case *fairness:
		return runFairness(ctx, *scale, *fairChecks, *out, *gate)
	}
	flag.Usage()
	return nil
}

// runTrace runs the full deck once on one design with the timeline recorder
// attached and writes the exported Chrome-trace/Perfetto JSON.
func runTrace(ctx context.Context, outPath, design, mode string, scale float64, workers int) error {
	m := core.Sequential
	switch mode {
	case "seq":
	case "par":
		m = core.Parallel
	default:
		return fmt.Errorf("unknown -trace-mode %q (want seq or par)", mode)
	}
	rec := trace.New()
	rep, err := bench.TraceRunContext(ctx, design, m, scale, workers, rec)
	if err != nil {
		return err
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	if err := rec.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("%s %s (scale %g): %d violations in %v; %d trace events -> %s\n",
		design, mode, scale, len(rep.Violations), rep.HostWall.Round(time.Microsecond), rec.Len(), outPath)
	if rep.Stats.Trace != nil {
		fmt.Printf("  %s\n", rep.Stats.Trace)
	}
	return nil
}

// runValidateTrace structurally checks an exported trace file.
func runValidateTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	info, err := trace.Validate(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Printf("%s: valid; %d events, %d flows, processes %v\n",
		path, info.Events, info.Flows, info.Processes)
	return nil
}

// runSpeedup measures Workers=1 vs Workers=N wall time on the six designs.
func runSpeedup(ctx context.Context, scale float64, workers, runs int, outPath string, gate bool) error {
	lts, err := bench.Layouts(scale)
	if err != nil {
		return err
	}
	rep, err := bench.SpeedupContext(ctx, lts, workers, runs, scale)
	if err != nil {
		return err
	}
	if _, err := rep.WriteTo(os.Stdout); err != nil {
		return err
	}
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rep.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	if gate {
		// The JSON is written before gating so a failing run still leaves
		// the artifact for inspection.
		return rep.Gate()
	}
	return nil
}

// runReuse compares cache-on and cache-off runs of the multi-rule spacing
// deck on the six designs, in both engine modes.
func runReuse(ctx context.Context, scale float64, runs int, outPath string, gate bool) error {
	lts, err := bench.Layouts(scale)
	if err != nil {
		return err
	}
	rep, err := bench.ReuseContext(ctx, lts, runs, scale)
	if err != nil {
		return err
	}
	if _, err := rep.WriteTo(os.Stdout); err != nil {
		return err
	}
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rep.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	if gate {
		return rep.Gate()
	}
	return nil
}

// runDelta measures an edited resident session's incremental re-check
// against the cold full check a client without delta support would run.
func runDelta(ctx context.Context, scale float64, runs int, outPath string, gate bool) error {
	rep, err := bench.DeltaContext(ctx, runs, scale)
	if err != nil {
		return err
	}
	if _, err := rep.WriteTo(os.Stdout); err != nil {
		return err
	}
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rep.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	if gate {
		return rep.Gate()
	}
	return nil
}

// runFairness measures the light tenant's latency distribution under heavy
// co-tenant load, FIFO baseline vs the weighted-fair stride policy.
func runFairness(ctx context.Context, scale float64, checks int, outPath string, gate bool) error {
	rep, err := bench.FairnessContext(ctx, checks, scale)
	if err != nil {
		return err
	}
	if _, err := rep.WriteTo(os.Stdout); err != nil {
		return err
	}
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rep.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	if gate {
		return rep.Gate()
	}
	return nil
}

func runTable(ctx context.Context, title string, rules []string, scale float64) error {
	lts, err := bench.Layouts(scale)
	if err != nil {
		return err
	}
	tbl, err := bench.RunContext(ctx, fmt.Sprintf("%s (scale %g)", title, scale), lts, rules)
	if err != nil {
		return err
	}
	_, err = tbl.WriteTo(os.Stdout)
	return err
}

// runAblations times the design choices DESIGN.md calls out.
func runAblations(scale float64) error {
	lo, _, err := synth.Load("aes", scale)
	if err != nil {
		return err
	}
	r, err := synth.RuleByID("M1.S.1")
	if err != nil {
		return err
	}

	timeRun := func(opts core.Options) (time.Duration, error) {
		eng := core.New(opts)
		if err := eng.AddRules(r); err != nil {
			return 0, err
		}
		rep, err := eng.Check(lo)
		if err != nil {
			return 0, err
		}
		return rep.Modeled, nil
	}

	fmt.Println("Ablations on aes / M1.S.1 (modeled or wall time):")
	seqOn, err := timeRun(core.Options{Mode: core.Sequential})
	if err != nil {
		return err
	}
	seqOff, err := timeRun(core.Options{Mode: core.Sequential, DisablePruning: true})
	if err != nil {
		return err
	}
	fmt.Printf("  hierarchy pruning   : on %v   off %v   (%.1fx)\n",
		seqOn.Round(time.Microsecond), seqOff.Round(time.Microsecond),
		float64(seqOff)/float64(seqOn))

	parPig, err := timeRun(core.Options{Mode: core.Parallel, PartitionAlg: partition.Pigeonhole})
	if err != nil {
		return err
	}
	parSort, err := timeRun(core.Options{Mode: core.Parallel, PartitionAlg: partition.SortBased})
	if err != nil {
		return err
	}
	fmt.Printf("  interval merging    : pigeonhole %v   sort-based %v\n",
		parPig.Round(time.Microsecond), parSort.Round(time.Microsecond))

	parBrute, err := timeRun(core.Options{Mode: core.Parallel, BruteEdgeThreshold: 1 << 30})
	if err != nil {
		return err
	}
	parSweep, err := timeRun(core.Options{Mode: core.Parallel, BruteEdgeThreshold: 1})
	if err != nil {
		return err
	}
	fmt.Printf("  executor selection  : all-brute %v   all-sweep %v\n",
		parBrute.Round(time.Microsecond), parSweep.Round(time.Microsecond))
	return nil
}
