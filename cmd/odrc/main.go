// Command odrc runs design rule checks on a GDSII layout.
//
// Usage:
//
//	odrc [-mode seq|par] [-workers n] [-rules deck] [-rule id[,id...]] [-v] [-stats] file.gds
//
// The default rule deck is the ASAP7-like evaluation deck (see
// internal/synth.Deck); -rule restricts it to specific rule IDs. Violations
// print one per line as: rule layer box distance [cell].
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"opendrc"
	"opendrc/internal/layout"
	"opendrc/internal/synth"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "odrc:", err)
		os.Exit(1)
	}
}

func run() error {
	mode := flag.String("mode", "seq", "execution mode: seq (hierarchical CPU) or par (simulated-GPU rows)")
	workers := flag.Int("workers", 0, "host worker-pool size for fan-out phases (0 = GOMAXPROCS)")
	ruleIDs := flag.String("rule", "", "comma-separated rule IDs from the standard deck (default: all)")
	deckFile := flag.String("deck", "", "rule deck file (overrides the built-in deck; see internal/rules.ParseDeck)")
	jsonOut := flag.Bool("json", false, "emit the report as JSON on stdout")
	verbose := flag.Bool("v", false, "print every violation (default: per-rule counts only)")
	stats := flag.Bool("stats", false, "print scheduling statistics and phase breakdown")
	dedup := flag.Bool("dedup", true, "merge identical violation markers")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: odrc [flags] file.gds\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	db, err := opendrc.ReadGDS(flag.Arg(0))
	if err != nil {
		return err
	}
	for _, w := range db.Warnings {
		fmt.Fprintln(os.Stderr, "warning:", w)
	}

	var opts []opendrc.Option
	switch *mode {
	case "seq":
	case "par":
		opts = append(opts, opendrc.WithMode(opendrc.Parallel))
	default:
		return fmt.Errorf("unknown mode %q (want seq or par)", *mode)
	}
	opts = append(opts, opendrc.WithWorkers(*workers))
	eng := opendrc.NewEngine(opts...)

	deck := synth.Deck()
	if *deckFile != "" {
		f, err := os.Open(*deckFile)
		if err != nil {
			return err
		}
		deck, err = opendrc.ParseDeck(f)
		f.Close()
		if err != nil {
			return err
		}
	}
	if *ruleIDs != "" {
		var picked []opendrc.Rule
		for _, id := range strings.Split(*ruleIDs, ",") {
			r, err := synth.RuleByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			picked = append(picked, r)
		}
		deck = picked
	}
	if err := eng.AddRules(deck...); err != nil {
		return err
	}

	rep, err := eng.Check(db)
	if err != nil {
		return err
	}
	vs := rep.Violations
	if *dedup {
		vs = opendrc.Dedup(vs)
	}
	if *jsonOut {
		rep.Violations = vs
		return rep.WriteJSON(os.Stdout)
	}

	fmt.Printf("%s: %d cells, top %q; %d violations in %v (%s mode)\n",
		flag.Arg(0), len(db.Cells), db.Top.Name, len(vs), rep.HostWall.Round(1e3), rep.Mode)
	counts := map[string]int{}
	for _, v := range vs {
		counts[v.Rule]++
	}
	for _, r := range eng.Deck() {
		fmt.Printf("  %-12s %6d\n", r.ID, counts[r.ID])
	}
	if *verbose {
		for _, v := range vs {
			cell := v.Cell
			if cell == "" {
				cell = "-"
			}
			fmt.Printf("%-12s %-4s %v d=%d cell=%s\n",
				v.Rule, layout.LayerName(v.Layer), v.Marker.Box, v.Marker.Dist, cell)
		}
	}
	if *stats {
		fmt.Printf("stats: %+v\n", rep.Stats)
		rep.Profile.WriteTo(os.Stdout)
		if rep.Device != nil {
			fmt.Printf("modeled CPU+GPU time: %v (device busy %v)\n",
				rep.Modeled.Round(1e3), rep.Device.DeviceBusy().Round(1e3))
		}
	}
	return nil
}
