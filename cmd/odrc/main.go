// Command odrc runs design rule checks on a GDSII layout.
//
// Usage:
//
//	odrc [-mode seq|par] [-workers n] [-timeout d] [-rules deck] [-rule id[,id...]] [-v] [-stats] file.gds
//
// The default rule deck is the ASAP7-like evaluation deck (see
// internal/synth.Deck); -rule restricts it to specific rule IDs. Violations
// print one per line as: rule layer box distance [cell].
//
// Exit codes:
//
//	0  check completed, report is complete
//	1  error (bad input, I/O failure, invalid rule deck)
//	2  usage error
//	3  the -timeout deadline expired or the run was cancelled
//	4  check completed but the report is degraded (one or more rules
//	   failed in isolation; their partial results were discarded)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"opendrc"
	"opendrc/internal/layout"
	"opendrc/internal/synth"
)

// Exit codes; see the package comment.
const (
	exitOK       = 0
	exitError    = 1
	exitUsage    = 2
	exitTimeout  = 3
	exitDegraded = 4
)

func main() {
	os.Exit(run())
}

func run() int {
	mode := flag.String("mode", "seq", "execution mode: seq (hierarchical CPU) or par (simulated-GPU rows)")
	workers := flag.Int("workers", 0, "host worker-pool size for fan-out phases (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "abort the check after this duration (0 = no deadline); exits 3 on expiry")
	ruleIDs := flag.String("rule", "", "comma-separated rule IDs from the standard deck (default: all)")
	deckFile := flag.String("deck", "", "rule deck file (overrides the built-in deck; see internal/rules.ParseDeck)")
	jsonOut := flag.Bool("json", false, "emit the report as JSON on stdout")
	canonOut := flag.Bool("canon", false, "emit the canonical report JSON (the timing-free form odrcd serves; for diffing service responses against batch runs)")
	verbose := flag.Bool("v", false, "print every violation (default: per-rule counts only)")
	stats := flag.Bool("stats", false, "print scheduling statistics and phase breakdown")
	dedup := flag.Bool("dedup", true, "merge identical violation markers")
	maxFlatten := flag.Int64("max-flatten", 0, "fail a rule that would flatten more than this many polygons (0 = unlimited)")
	maxEdges := flag.Int64("max-edges", 0, "fail a rule that would pack more than this many device edges (0 = unlimited)")
	maxDeviceBytes := flag.Int64("max-device-bytes", 0, "simulated device memory pool limit in bytes (0 = unlimited)")
	noGeoCache := flag.Bool("no-geocache", false, "disable the cross-rule geometry cache and pipelined schedule (ablation; results are identical)")
	traceOut := flag.String("trace", "", "write a Chrome-trace/Perfetto JSON timeline of the run to this file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: odrc [flags] file.gds\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		return exitUsage
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	fail := func(err error) int {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "odrc: timeout:", err)
			return exitTimeout
		}
		fmt.Fprintln(os.Stderr, "odrc:", err)
		return exitError
	}

	db, err := opendrc.ReadGDS(flag.Arg(0))
	if err != nil {
		return fail(err)
	}
	for _, w := range db.Warnings {
		fmt.Fprintln(os.Stderr, "warning:", w)
	}

	var opts []opendrc.Option
	switch *mode {
	case "seq":
	case "par":
		opts = append(opts, opendrc.WithMode(opendrc.Parallel))
	default:
		fmt.Fprintf(os.Stderr, "odrc: unknown mode %q (want seq or par)\n", *mode)
		return exitUsage
	}
	if *noGeoCache {
		opts = append(opts, opendrc.WithoutGeoCache())
	}
	opts = append(opts,
		opendrc.WithWorkers(*workers),
		opendrc.WithBudgets(opendrc.Budgets{
			MaxFlattenPolys: *maxFlatten,
			MaxPackedEdges:  *maxEdges,
			MaxDeviceBytes:  *maxDeviceBytes,
		}))
	var tracer *opendrc.Tracer
	if *traceOut != "" {
		tracer = opendrc.NewTracer()
		tracer.SetMeta("source", flag.Arg(0))
		opts = append(opts, opendrc.WithTrace(tracer))
	}
	eng := opendrc.NewEngine(opts...)

	deck := synth.Deck()
	if *deckFile != "" {
		f, err := os.Open(*deckFile)
		if err != nil {
			return fail(err)
		}
		deck, err = opendrc.ParseDeck(f)
		f.Close()
		if err != nil {
			return fail(err)
		}
	}
	if *ruleIDs != "" {
		var picked []opendrc.Rule
		for _, id := range strings.Split(*ruleIDs, ",") {
			r, err := synth.RuleByID(strings.TrimSpace(id))
			if err != nil {
				return fail(err)
			}
			picked = append(picked, r)
		}
		deck = picked
	}
	if err := eng.AddRules(deck...); err != nil {
		return fail(err)
	}

	rep, err := eng.CheckContext(ctx, db)
	if err != nil {
		return fail(err)
	}
	if tracer != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			return fail(err)
		}
		if err := tracer.WriteJSON(f); err != nil {
			f.Close()
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
		fmt.Fprintf(os.Stderr, "trace: %d events -> %s\n", tracer.Len(), *traceOut)
	}
	vs := rep.Violations
	if *dedup {
		vs = opendrc.Dedup(vs)
	}
	code := exitOK
	if rep.Degraded {
		code = exitDegraded
	}
	if *canonOut {
		rep.Violations = vs
		if err := rep.WriteCanonicalJSON(os.Stdout); err != nil {
			return fail(err)
		}
		return code
	}
	if *jsonOut {
		rep.Violations = vs
		if err := rep.WriteJSON(os.Stdout); err != nil {
			return fail(err)
		}
		return code
	}

	fmt.Printf("%s: %d cells, top %q; %d violations in %v (%s mode)\n",
		flag.Arg(0), len(db.Cells), db.Top.Name, len(vs), rep.HostWall.Round(1e3), rep.Mode)
	if rep.Degraded {
		fmt.Printf("DEGRADED: %d rule(s) failed; their results are excluded\n", len(rep.Failures))
		for _, f := range rep.Failures {
			fmt.Printf("  FAILED %-12s %s\n", f.Rule, f.Err)
		}
	}
	counts := map[string]int{}
	for _, v := range vs {
		counts[v.Rule]++
	}
	for _, r := range eng.Deck() {
		fmt.Printf("  %-12s %6d\n", r.ID, counts[r.ID])
	}
	if *verbose {
		for _, v := range vs {
			cell := v.Cell
			if cell == "" {
				cell = "-"
			}
			fmt.Printf("%-12s %-4s %v d=%d cell=%s\n",
				v.Rule, layout.LayerName(v.Layer), v.Marker.Box, v.Marker.Dist, cell)
		}
	}
	if *stats {
		fmt.Printf("stats: %+v\n", rep.Stats)
		rep.Profile.WriteTo(os.Stdout)
		if rep.Device != nil {
			fmt.Printf("modeled CPU+GPU time: %v (device busy %v)\n",
				rep.Modeled.Round(1e3), rep.Device.DeviceBusy().Round(1e3))
		}
		if rep.Stats.Trace != nil {
			fmt.Printf("trace: %s\n", rep.Stats.Trace)
		}
	}
	return code
}
