// Command odrc-lint enforces the engine's written invariants as
// machine-checked rules: deterministic map iteration, clock discipline
// (host timing through the Profiler/hostPhase), pool-only concurrency, no
// in-place mutation of caller slices by exported functions, cached-buffer
// immutability, and the interprocedural dataflow suite — scratch-arena
// escapes, context propagation, and mutex discipline on //odrc:guardedby
// fields. See internal/analysis for the checkers and the //odrc:allow
// waiver syntax.
//
// Usage:
//
//	odrc-lint [-C dir] [-check name[,name...]] [-json] [-workers n]
//
// It walks up from -C (default ".") to the enclosing go.mod, lints every
// non-test package in the module, prints findings as "file:line: [check]
// message" (or a JSON array with -json), and exits nonzero when any finding
// (including a stale waiver) survives. -check restricts the run to the
// named checkers — handy while developing a fixture — and rejects unknown
// names with the list of valid ones. The per-package checkers fan out on
// the worker pool; the summary line on stderr reports the elapsed cost so
// check.sh lint time stays visible.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"opendrc/internal/analysis"
)

func main() {
	dir := flag.String("C", ".", "directory inside the module to lint")
	checks := flag.String("check", "", "comma-separated checker names to run (default: all)")
	jsonOut := flag.Bool("json", false, "print findings as a JSON array instead of text")
	workers := flag.Int("workers", 0, "per-package checker fan-out width (<= 0 selects GOMAXPROCS)")
	flag.Parse()

	start := time.Now() //odrc:allow clock — lint CLI self-timing for the check.sh cost line, not engine host work

	root, err := findModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "odrc-lint:", err)
		os.Exit(2)
	}
	opts := analysis.Options{Workers: *workers}
	if *checks != "" {
		for _, name := range strings.Split(*checks, ",") {
			opts.Checks = append(opts.Checks, strings.TrimSpace(name))
		}
	}
	findings, stats, err := analysis.RunOpts(root, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "odrc-lint:", err)
		os.Exit(2)
	}
	if *jsonOut {
		if err := analysis.WriteJSON(os.Stdout, findings); err != nil {
			fmt.Fprintln(os.Stderr, "odrc-lint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	elapsed := time.Since(start).Round(time.Millisecond) //odrc:allow clock — lint CLI self-timing for the check.sh cost line, not engine host work
	fmt.Fprintf(os.Stderr, "odrc-lint: %d package(s), %d checker(s), %d finding(s) in %s\n",
		stats.Packages, stats.Checks, len(findings), elapsed)
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// findModuleRoot walks up from dir to the nearest directory with a go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod above %s", abs)
		}
		d = parent
	}
}
