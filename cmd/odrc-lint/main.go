// Command odrc-lint enforces the engine's written invariants as
// machine-checked rules: deterministic map iteration, clock discipline
// (host timing through the Profiler/hostPhase), pool-only concurrency, and
// no in-place mutation of caller slices by exported functions. See
// internal/analysis for the checkers and the //odrc:allow waiver syntax.
//
// Usage:
//
//	odrc-lint [-C dir]
//
// It walks up from -C (default ".") to the enclosing go.mod, lints every
// non-test package in the module, prints findings as "file:line: [check]
// message", and exits nonzero when any finding (including a stale waiver)
// survives.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"opendrc/internal/analysis"
)

func main() {
	dir := flag.String("C", ".", "directory inside the module to lint")
	flag.Parse()

	root, err := findModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "odrc-lint:", err)
		os.Exit(2)
	}
	findings, err := analysis.Run(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "odrc-lint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "odrc-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// findModuleRoot walks up from dir to the nearest directory with a go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod above %s", abs)
		}
		d = parent
	}
}
