// Command odrcd is the resident DRC service: an HTTP/JSON daemon that keeps
// loaded designs open as sessions (GDSII parse, hierarchy, geometry cache,
// and device-resident edge buffers all outlive a single check) and serves
// concurrent full-deck and single-rule checks at warm-cache cost.
//
// Usage:
//
//	odrcd [-addr :9144] [-max-inflight n] [-max-queue n] [-timeout d]
//	      [-max-timeout d] [-grace d] [-drain d] [-sched-workers n]
//	      [-tenant-weight name=w]... [-default-tenant-weight n]
//	      [-ready-file path] [-quiet]
//
// API (JSON bodies throughout; see internal/server):
//
//	POST   /v1/sessions                  load a design: {"id","design"|"gds","scale","mode","deck",...}
//	GET    /v1/sessions                  list loaded sessions
//	DELETE /v1/sessions/{id}             unload (closes once idle)
//	POST   /v1/sessions/{id}/check       run a check: {"rules":[ids],"timeout_ms":n,"dedup":bool}
//	POST   /v1/sessions/{id}/invalidate  drop resident geometry
//	GET    /v1/sessions/{id}/stats       traffic split, tenant, and scheduler weight
//	GET    /healthz                      liveness, session count, in-flight gauge
//	GET    /debug/goroutines             goroutine count (?stacks=1 for the dump)
//	GET    /debug/sched                  per-tenant fair-scheduler accounting
//
// Every check's fan-outs run on one shared tenant-fair worker set: sessions
// name their tenant at creation ({"tenant": ...}, default the session id),
// and -tenant-weight gives named tenants a larger stride share, so a light
// tenant's small checks stay responsive beside a saturating co-tenant
// (DESIGN.md §13) with byte-identical responses either way.
//
// Check responses are the engine's canonical report JSON — byte-identical
// to `odrc -canon` on the same design and deck — with request identity and
// timings in X-Odrc-* headers. Overload answers 429 + Retry-After; a check
// still running past deadline+grace is abandoned with 504; SIGTERM/SIGINT
// drains in-flight checks, then closes every session, releasing its
// device-resident buffers deterministically.
//
// -ready-file, written after the listener binds, holds the bound address
// (useful with -addr :0 in scripts and CI).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"opendrc/internal/infra"
	"opendrc/internal/server"
)

func main() {
	os.Exit(run())
}

// parseTenantWeight splits a -tenant-weight "name=w" value.
func parseTenantWeight(v string) (string, int, error) {
	name, ws, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return "", 0, fmt.Errorf("want name=w, got %q", v)
	}
	w, err := strconv.Atoi(ws)
	if err != nil || w <= 0 {
		return "", 0, fmt.Errorf("weight in %q must be a positive integer", v)
	}
	return name, w, nil
}

func run() int {
	addr := flag.String("addr", ":9144", "listen address (use :0 with -ready-file for an ephemeral port)")
	maxInflight := flag.Int("max-inflight", 0, "admitted checks across all sessions; beyond it requests shed with 429 (0 = default 8)")
	maxQueue := flag.Int("max-queue", 0, "checks admitted per session, running plus queued (0 = default 4)")
	timeout := flag.Duration("timeout", 0, "default per-check deadline when the request names none (0 = default 30s)")
	maxTimeout := flag.Duration("max-timeout", 0, "clamp on request-supplied deadlines (0 = default 5m)")
	grace := flag.Duration("grace", 0, "watchdog grace past a check's deadline before abandoning it with 504 (0 = default 2s)")
	drain := flag.Duration("drain", 30*time.Second, "shutdown budget for in-flight checks after SIGTERM")
	schedWorkers := flag.Int("sched-workers", 0, "shared cross-tenant worker set for check fan-outs (0 = GOMAXPROCS)")
	defaultWeight := flag.Int("default-tenant-weight", 0, "stride weight for tenants without a -tenant-weight entry (0 = default 1)")
	weights := map[string]int{}
	flag.Func("tenant-weight", "name=w: give tenant name stride weight w on the shared workers (repeatable)", func(v string) error {
		name, w, err := parseTenantWeight(v)
		if err != nil {
			return err
		}
		weights[name] = w
		return nil
	})
	readyFile := flag.String("ready-file", "", "write the bound listen address to this file once serving")
	quiet := flag.Bool("quiet", false, "log warnings and errors only")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: odrcd [flags]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		return 2
	}

	level := infra.LevelInfo
	if *quiet {
		level = infra.LevelWarn
	}
	log := infra.NewLogger(os.Stderr, level)

	// base outlives the shutdown signal on purpose: draining still needs a
	// live context to close sessions and release device buffers.
	base := context.Background()
	sigCtx, stop := signal.NotifyContext(base, syscall.SIGTERM, os.Interrupt)
	defer stop()

	srv := server.New(base, server.Config{
		MaxInFlight:         *maxInflight,
		MaxQueuePerSession:  *maxQueue,
		DefaultTimeout:      *timeout,
		MaxTimeout:          *maxTimeout,
		WatchdogGrace:       *grace,
		SchedWorkers:        *schedWorkers,
		TenantWeights:       weights,
		DefaultTenantWeight: *defaultWeight,
		Logger:              log,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "odrcd:", err)
		return 1
	}
	if *readyFile != "" {
		if err := os.WriteFile(*readyFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "odrcd:", err)
			return 1
		}
	}
	log.Infof("odrcd: serving on %s", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { //odrc:allow rawgo — the listener loop; main blocks on the signal
		serveErr <- hs.Serve(ln)
	}()

	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "odrcd:", err)
		return 1
	case <-sigCtx.Done():
	}
	stop() // a second signal kills the process the default way

	log.Infof("odrcd: draining (up to %v for in-flight checks)", *drain)
	srv.Drain()
	shutdownCtx, cancel := context.WithTimeout(base, *drain)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		log.Warnf("odrcd: drain incomplete: %v", err)
	}
	n := srv.CloseAll(base)
	log.Infof("odrcd: closed %d sessions; bye", n)
	return 0
}
