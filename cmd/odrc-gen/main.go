// Command odrc-gen synthesizes benchmark layouts (the stand-ins for the
// paper's OpenROAD + ASAP7 designs) and writes them as GDSII.
//
// Usage:
//
//	odrc-gen [-design name | -all] [-scale f] [-o out.gds] [-clean]
//
// With -all, every design is written as <name>.gds into the current
// directory (or the -o directory).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"opendrc/internal/gdsii"
	"opendrc/internal/synth"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "odrc-gen:", err)
		os.Exit(1)
	}
}

func run() error {
	design := flag.String("design", "uart", "design profile: aes, ethmac, ibex, jpeg, sha3, uart")
	all := flag.Bool("all", false, "generate every design")
	scale := flag.Float64("scale", 1, "instance-count scale factor")
	out := flag.String("o", "", "output file (single design) or directory (-all)")
	clean := flag.Bool("clean", false, "disable violation injection (DRC-clean output)")
	flag.Parse()

	gen := func(name, path string) error {
		p, err := synth.Design(name)
		if err != nil {
			return err
		}
		if *scale != 1 {
			p = p.Scaled(*scale)
		}
		if *clean {
			p.InjectEvery = 0
			p.InjectDiagonal = false
		}
		lib, exp := p.Generate()
		if err := gdsii.WriteFile(path, lib); err != nil {
			return err
		}
		fmt.Printf("%s: %d cells, %d M2 segments, %d M3 segments, %d V2 vias, %d injected violations -> %s\n",
			name, exp.CellsPlaced, exp.M2Segments, exp.M3Segments, exp.V2Vias, exp.Total, path)
		return nil
	}

	if *all {
		dir := *out
		if dir == "" {
			dir = "."
		}
		for _, p := range synth.Designs() {
			if err := gen(p.Name, filepath.Join(dir, p.Name+".gds")); err != nil {
				return err
			}
		}
		return nil
	}
	path := *out
	if path == "" {
		path = *design + ".gds"
	}
	return gen(*design, path)
}
