#!/bin/sh
# check.sh — the repository's verification gate: formatting, vet, the
# odrc-lint invariant suite (determinism, clock discipline, pool-only
# concurrency, no caller-slice mutation), and the full test suite under the
# race detector (the worker-pool fan-out makes -race part of tier-1
# verification).
set -e

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
go run ./cmd/odrc-lint
go test -race ./...
echo "check.sh: all green"
