#!/bin/sh
# check.sh — the repository's verification gate: formatting, vet, the
# odrc-lint invariant suite (determinism, clock discipline, pool-only
# concurrency, no caller-slice mutation), the full test suite under the
# race detector (the worker-pool fan-out makes -race part of tier-1
# verification; the chaos and cancellation suites run here too), a short
# fuzz smoke over the GDSII reader and the polygon/transform algebra, and
# an end-to-end smoke of the odrcd service over real HTTP.
set -e

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
go run ./cmd/odrc-lint
go test -race ./...

# Fuzz smoke: ten seconds per target. Regressions found by longer fuzz runs
# land as corpus files under testdata/fuzz/, which plain `go test` replays.
go test -run=NONE -fuzz=FuzzReadLibrary -fuzztime=10s ./internal/gdsii
go test -run=NONE -fuzz=FuzzPolygonTransform -fuzztime=10s ./internal/geom

# Bench smoke: one iteration of the geometry-cache unit benchmarks, so a
# change that breaks flatten/pack off the engine path still fails the gate.
go test -run=NONE -bench 'BenchmarkFlattenLayer|BenchmarkPack' -benchtime=1x .

# Bench gate: regenerate the speedup and reuse experiments with the
# regression gate on — any row with a ratio below 1.0 or mismatched reports
# between configurations fails the build. Medians of interleaved runs keep
# the gate robust to scheduler noise, and single-CPU hosts mark their
# same-config speedup rows degenerate instead of reporting jitter. The JSON
# artifacts are written before gating, so a failed gate still leaves them
# for inspection (CI uploads them).
go run ./cmd/odrc-bench -speedup -runs 5 -scale 0.3 -out BENCH_workers.json -gate
go run ./cmd/odrc-bench -reuse -runs 5 -scale 0.3 -out BENCH_reuse.json -gate

# Delta gate: the incremental re-check experiment. Every row cross-checks
# the delta report byte-for-byte against a cold full check of the edited
# design (reports_identical), requires the incremental plan (no fallback),
# and the smallest edit fraction must beat the full re-check it replaces.
go run ./cmd/odrc-bench -delta -runs 3 -scale 0.3 -out BENCH_delta.json -gate

# Fairness gate: the cross-tenant scheduling experiment. A light tenant's
# closed-loop checks are measured against six saturating co-tenant streams:
# every row's reports must be byte-identical to the unloaded solo run, the
# co-tenant must stay saturated, and the equal-weight fair policy must
# improve the light tenant's p95 at least 2x over the FIFO baseline. Scale 3
# makes a light check span several OS scheduling quanta — smaller checks
# finish inside one quantum and cannot observe queueing policy at all.
go run ./cmd/odrc-bench -fairness -scale 3 -out BENCH_fair.json -gate

# Trace smoke: one traced full-deck run at reduced scale, then a structural
# validation of the exported Chrome-trace JSON (required processes, paired
# flows, well-formed events). Catches export regressions off the test path.
go run ./cmd/odrc-bench -trace BENCH_trace.json -scale 0.1
go run ./cmd/odrc-bench -validate-trace BENCH_trace.json

# Service smoke: start odrcd on an ephemeral port, load a generated GDS as a
# resident session, run full-deck and single-rule checks over HTTP, and
# require every response byte-identical to `odrc -canon`; then a goroutine
# steady-state check and a clean SIGTERM drain.
./smoke_odrcd.sh

echo "check.sh: all green"
