package opendrc_test

import (
	"bytes"
	"path/filepath"
	"testing"

	"opendrc"
	"opendrc/internal/gdsii"
	"opendrc/internal/geom"
	"opendrc/internal/synth"
)

// facadeLibrary builds a small violating layout through the public API path.
func facadeLibrary() *gdsii.Library {
	return &gdsii.Library{
		Name: "facade", UserUnit: 1e-3, MeterUnit: 1e-9,
		Structures: []*gdsii.Structure{
			{
				Name: "CELL",
				Boundaries: []gdsii.Boundary{
					{Layer: 19, XY: []geom.Point{
						geom.Pt(0, 0), geom.Pt(0, 100), geom.Pt(16, 100), geom.Pt(16, 0),
					}},
				},
			},
			{
				Name: "TOP",
				SRefs: []gdsii.SRef{
					{Name: "CELL", Pos: geom.Pt(0, 0)},
					{Name: "CELL", Pos: geom.Pt(500, 0)},
				},
			},
		},
	}
}

func TestFacadeListing1Flow(t *testing.T) {
	var buf bytes.Buffer
	if err := gdsii.NewWriter(&buf).WriteLibrary(facadeLibrary()); err != nil {
		t.Fatal(err)
	}
	db, err := opendrc.ReadGDSFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	e := opendrc.NewEngine()
	err = e.AddRules(
		opendrc.Layer(19).Polygons().AreRectilinear(),
		opendrc.Layer(19).Width().GreaterThan(18),
		opendrc.Layer(20).Polygons().Ensure("named", func(o opendrc.Obj) bool {
			return o.Name != ""
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Check(db)
	if err != nil {
		t.Fatal(err)
	}
	// Width 16 < 19 on both instances.
	if len(rep.Violations) != 2 {
		t.Fatalf("violations = %d, want 2", len(rep.Violations))
	}
	if got := len(opendrc.Dedup(rep.Violations)); got != 2 {
		t.Errorf("dedup = %d (markers at distinct positions must survive)", got)
	}
}

func TestFacadeReadGDSFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.gds")
	if err := gdsii.WriteFile(path, facadeLibrary()); err != nil {
		t.Fatal(err)
	}
	db, err := opendrc.ReadGDS(path)
	if err != nil {
		t.Fatal(err)
	}
	if db.Top.Name != "TOP" {
		t.Errorf("top = %q", db.Top.Name)
	}
	if _, err := opendrc.ReadGDS(filepath.Join(t.TempDir(), "missing.gds")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestFacadeOptions(t *testing.T) {
	lo, _, err := synth.Load("uart", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	deck := synth.Deck()
	variants := []struct {
		name string
		opts []opendrc.Option
	}{
		{"sequential", nil},
		{"parallel", []opendrc.Option{opendrc.WithMode(opendrc.Parallel)}},
		{"no-pruning", []opendrc.Option{opendrc.WithoutPruning()}},
		{"sort-partition", []opendrc.Option{opendrc.WithMode(opendrc.Parallel), opendrc.WithSortPartition()}},
		{"tiny-threshold", []opendrc.Option{opendrc.WithMode(opendrc.Parallel), opendrc.WithBruteEdgeThreshold(1)}},
	}
	var want int = -1
	for _, v := range variants {
		e := opendrc.NewEngine(v.opts...)
		if err := e.AddRules(deck...); err != nil {
			t.Fatal(err)
		}
		rep, err := e.Check(lo)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		got := len(opendrc.Dedup(rep.Violations))
		if want < 0 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("%s: %d violations, want %d", v.name, got, want)
		}
	}
}

func TestFacadeInvalidRule(t *testing.T) {
	e := opendrc.NewEngine()
	if err := e.AddRules(opendrc.Layer(19).Width().AtLeast(0)); err == nil {
		t.Error("invalid rule accepted through facade")
	}
	if n := len(e.Deck()); n != 0 {
		t.Errorf("deck grew on failed add: %d", n)
	}
}
