module opendrc

go 1.22
