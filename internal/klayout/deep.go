package klayout

import (
	"context"
	"sort"

	"opendrc/internal/checks"
	"opendrc/internal/geom"
	"opendrc/internal/layout"
	"opendrc/internal/rules"
)

// Deep (hierarchical) mode. Definitions are checked once, but results
// materialize through per-instance *variants*: every instance's geometry is
// transformed into the global frame before use — the variant-building cost
// that distinguishes KLayout's deep mode from marker replay. Inter-polygon
// interactions are discovered per shape (linear region scans, no global
// sweepline) and processed per interaction *cluster* with pairwise tests,
// which is why deep mode loses to flat mode on dense flat routing layers.

// deepItem is an instance of a cell or a loose top-level polygon.
type deepItem struct {
	cell  *layout.Cell   // nil for loose polygons
	trans geom.Transform // instance placement
	poly  geom.Polygon   // loose polygon (cell == nil)
	box   geom.Rect      // layer MBR in global frame, expanded by the halo
}

// deepItems lists instances carrying the layer plus loose top polygons.
func deepItems(lo *layout.Layout, l layout.Layer, halo int64) []deepItem {
	var items []deepItem
	placements := lo.Placements()
	for _, c := range lo.LayerCells(l) {
		if c == lo.Top {
			continue
		}
		// Only instantiate definitions that own or contain layer geometry;
		// intermediate cells are reached through their own entries.
		if len(c.LocalPolys(l)) == 0 {
			continue
		}
		for _, t := range placements[c.ID] {
			items = append(items, deepItem{
				cell: c, trans: t,
				box: t.ApplyRect(localLayerMBR(c, l)).Expand(halo),
			})
		}
	}
	for _, pi := range lo.Top.LocalPolys(l) {
		p := lo.Top.Polys[pi].Shape
		items = append(items, deepItem{poly: p, box: p.MBR().Expand(halo)})
	}
	return items
}

// localLayerMBR bounds only the cell's own polygons on the layer (children
// appear as their own deep items).
func localLayerMBR(c *layout.Cell, l layout.Layer) geom.Rect {
	r := geom.EmptyRect()
	for _, pi := range c.LocalPolys(l) {
		r = r.Union(c.Polys[pi].Shape.MBR())
	}
	return r
}

// materialize returns the item's layer polygons in the global frame — the
// variant transform work deep mode pays per instance.
func (it *deepItem) materialize(l layout.Layer) []geom.Polygon {
	if it.cell == nil {
		return []geom.Polygon{it.poly}
	}
	idx := it.cell.LocalPolys(l)
	out := make([]geom.Polygon, len(idx))
	for i, pi := range idx {
		out[i] = it.cell.Polys[pi].Shape.Transform(it.trans)
	}
	return out
}

// checkDeep runs one rule in deep mode.
func checkDeep(ctx context.Context, lo *layout.Layout, r rules.Rule, res *Result) error {
	emit := emitFn(res, r)
	switch r.Kind {
	case rules.Spacing:
		return deepSpacing(ctx, lo, r, emit)
	case rules.Enclosure:
		return deepEnclosure(ctx, lo, r, emit)
	default:
		return deepIntra(ctx, lo, r, emit)
	}
}

// deepIntra computes per definition, then builds each instance's variant
// (transforming its geometry) and maps the markers through it.
func deepIntra(ctx context.Context, lo *layout.Layout, r rules.Rule, emit func(checks.Marker)) error {
	placements := lo.Placements()
	for _, c := range lo.LayerCells(r.Layer) {
		if err := ctx.Err(); err != nil {
			return err
		}
		idx := c.LocalPolys(r.Layer)
		if len(idx) == 0 {
			continue
		}
		var defMarkers []checks.Marker
		for _, pi := range idx {
			p := c.Polys[pi].Shape
			name := deepLabel(c, pi)
			checkPolyIntra(p, name, r, func(m checks.Marker) { defMarkers = append(defMarkers, m) })
		}
		for _, t := range placements[c.ID] {
			// Variant build: the instance geometry is materialized even
			// when the definition produced no markers.
			variant := deepItem{cell: c, trans: t}
			shapes := variant.materialize(r.Layer)
			_ = shapes
			for _, m := range defMarkers {
				m.Box = t.ApplyRect(m.Box)
				m.EdgeA = m.EdgeA.Transform(t)
				m.EdgeB = m.EdgeB.Transform(t)
				emit(m)
			}
		}
	}
	return nil
}

func deepLabel(c *layout.Cell, polyIdx int) string {
	p := c.Polys[polyIdx].Shape
	mbr := p.MBR()
	for i := range c.Labels {
		l := &c.Labels[i]
		if l.Layer == c.Polys[polyIdx].Layer && mbr.Contains(l.Pos) && p.ContainsPoint(l.Pos) {
			return l.Text
		}
	}
	return ""
}

// deepSpacing: definition-internal results replay per instance; boundary
// interactions cluster via per-shape region scans and run pairwise within
// each cluster.
func deepSpacing(ctx context.Context, lo *layout.Layout, r rules.Rule, emit func(checks.Marker)) error {
	placements := lo.Placements()
	// Definition-internal spacing (notches + pairs among the cell's own
	// polygons), replayed per instance through variants.
	for _, c := range lo.LayerCells(r.Layer) {
		if err := ctx.Err(); err != nil {
			return err
		}
		idx := c.LocalPolys(r.Layer)
		if len(idx) == 0 {
			continue
		}
		lim := r.SpacingLimit()
		var internal []checks.Marker
		collect := func(m checks.Marker) { internal = append(internal, m) }
		for i, pi := range idx {
			checks.CheckNotchLim(c.Polys[pi].Shape, lim, collect)
			for _, pj := range idx[i+1:] {
				a, b := c.Polys[pi].Shape, c.Polys[pj].Shape
				if a.MBR().Expand(lim.Reach()).Overlaps(b.MBR()) {
					checks.CheckSpacingLim(a, b, lim, collect)
				}
			}
		}
		for _, t := range placements[c.ID] {
			variant := deepItem{cell: c, trans: t}
			_ = variant.materialize(r.Layer)
			for _, m := range internal {
				m.Box = t.ApplyRect(m.Box)
				m.EdgeA = m.EdgeA.Transform(t)
				m.EdgeB = m.EdgeB.Transform(t)
				emit(m)
			}
		}
	}

	// Boundary interactions between items.
	items := deepItems(lo, r.Layer, r.Reach())
	n := len(items)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	// Per-shape region scan: each item linearly scans the item list for
	// overlapping halos (no sweepline in deep mode).
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if items[i].box.Overlaps(items[j].box) {
				ri, rj := find(i), find(j)
				if ri != rj {
					parent[ri] = rj
				}
			}
		}
	}
	clusters := make(map[int][]int)
	for i := 0; i < n; i++ {
		clusters[find(i)] = append(clusters[find(i)], i)
	}
	// Visit clusters in sorted root order so marker emission order never
	// depends on map iteration.
	roots := make([]int, 0, len(clusters))
	for root := range clusters {
		roots = append(roots, root)
	}
	sort.Ints(roots)
	for _, root := range roots {
		if err := ctx.Err(); err != nil {
			return err
		}
		members := clusters[root]
		if len(members) < 2 {
			continue
		}
		// Materialize the whole cluster's variants, then pairwise-check
		// polygons across different items.
		var polys []geom.Polygon
		var owner []int
		for _, mi := range members {
			for _, p := range items[mi].materialize(r.Layer) {
				polys = append(polys, p)
				owner = append(owner, mi)
			}
		}
		lim := r.SpacingLimit()
		for i := 0; i < len(polys); i++ {
			bi := polys[i].MBR().Expand(lim.Reach())
			for j := i + 1; j < len(polys); j++ {
				if owner[i] == owner[j] {
					continue // internal pairs already handled per definition
				}
				if !bi.Overlaps(polys[j].MBR()) {
					continue
				}
				checks.CheckSpacingLim(polys[i], polys[j], lim, emit)
			}
		}
	}
	return nil
}

// deepEnclosure re-evaluates every via instance against a region scan of the
// metal items (variants rebuilt per instance, no monotone local shortcut).
func deepEnclosure(ctx context.Context, lo *layout.Layout, r rules.Rule, emit func(checks.Marker)) error {
	vias := deepItems(lo, r.Layer, r.Min)
	metals := deepItems(lo, r.Outer, 0)
	for _, v := range vias {
		if err := ctx.Err(); err != nil {
			return err
		}
		for _, via := range v.materialize(r.Layer) {
			window := via.MBR().Expand(r.Min)
			var cands []geom.Polygon
			for mi := range metals {
				if !metals[mi].box.Overlaps(window) {
					continue
				}
				for _, mp := range metals[mi].materialize(r.Outer) {
					if mp.MBR().Overlaps(window) {
						cands = append(cands, mp)
					}
				}
			}
			checks.EvaluateEnclosure(via, cands, r.Min, emit)
		}
	}
	return nil
}
