package klayout

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"opendrc/internal/budget"
	"opendrc/internal/faults"
	"opendrc/internal/synth"
)

// TestFlatFallsBackToTiling caps the flatten budget below the design's
// instantiation size: flat mode must detect the trip up front, set
// FellBack, and produce the tiling mode's (identical) violations instead of
// materializing the blow-up.
func TestFlatFallsBackToTiling(t *testing.T) {
	lo, _, err := synth.Load("uart", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := synth.RuleByID("M1.S.1")
	if err != nil {
		t.Fatal(err)
	}
	if est := flattenEstimate(lo, r.Layer); est < 2 {
		t.Fatalf("flattenEstimate = %d; design too small to trip a budget", est)
	}
	unlimited, err := Check(lo, r, Options{Mode: Flat})
	if err != nil {
		t.Fatal(err)
	}
	if unlimited.FellBack {
		t.Fatal("unlimited run fell back")
	}
	capped, err := Check(lo, r, Options{Mode: Flat, Budgets: budget.Limits{MaxFlattenPolys: 1}})
	if err != nil {
		t.Fatalf("capped flat run failed instead of falling back: %v", err)
	}
	if !capped.FellBack {
		t.Fatal("capped flat run did not report the fallback")
	}
	if !reflect.DeepEqual(capped.Violations, unlimited.Violations) {
		t.Fatalf("fallback found %d violations, flat found %d",
			len(capped.Violations), len(unlimited.Violations))
	}
	// A budget above the estimate must not trigger the fallback.
	roomy, err := Check(lo, r, Options{Mode: Flat,
		Budgets: budget.Limits{MaxFlattenPolys: flattenEstimate(lo, r.Layer) + 1}})
	if err != nil {
		t.Fatal(err)
	}
	if roomy.FellBack {
		t.Fatal("roomy budget still fell back")
	}
}

// TestTileFaultPropagates injects an error into one tile worker: the run
// must fail cleanly with the injected error, for every worker count.
func TestTileFaultPropagates(t *testing.T) {
	lo, _, err := synth.Load("uart", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := synth.RuleByID("M1.S.1")
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		inj := faults.New(5, faults.Injection{Site: faults.SiteTile, Key: "tile#0", Mode: faults.Error})
		res, err := Check(lo, r, Options{Mode: Tiling, Workers: workers, Faults: inj})
		if res != nil {
			t.Fatalf("workers=%d: faulted tiling run returned a result", workers)
		}
		if !errors.Is(err, faults.ErrInjected) {
			t.Fatalf("workers=%d: err = %v, want wrapped ErrInjected", workers, err)
		}
	}
}

// TestCheckContextCancelled covers cancellation in all three modes: a
// cancelled run returns a nil result and an error wrapping ctx.Err().
func TestCheckContextCancelled(t *testing.T) {
	lo, _, err := synth.Load("uart", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := synth.RuleByID("M1.S.1")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, mode := range []Mode{Flat, Deep, Tiling} {
		res, err := CheckContext(ctx, lo, r, Options{Mode: mode})
		if res != nil {
			t.Fatalf("%v: cancelled run returned a result", mode)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: err = %v, want wrapped context.Canceled", mode, err)
		}
	}
}

// TestTileStallHonorsDeadline parks one tile in an hour-long stall under a
// short deadline: the pooled fan-out must abandon the wait and surface
// DeadlineExceeded instead of hanging.
func TestTileStallHonorsDeadline(t *testing.T) {
	lo, _, err := synth.Load("uart", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := synth.RuleByID("M1.S.1")
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(5, faults.Injection{
		Site: faults.SiteTile, Key: "tile#0", Mode: faults.Stall, Stall: time.Hour,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	done := make(chan struct{})
	var res *Result
	var cerr error
	go func() {
		res, cerr = CheckContext(ctx, lo, r, Options{Mode: Tiling, Workers: 4, Faults: inj})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("stalled tiling run did not return")
	}
	if res != nil {
		t.Fatal("stalled run returned a result")
	}
	if !errors.Is(cerr, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrapped DeadlineExceeded", cerr)
	}
}
