package klayout

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"opendrc/internal/core"
	"opendrc/internal/gdsii"
	"opendrc/internal/geom"
	"opendrc/internal/layout"
	"opendrc/internal/rules"
	"opendrc/internal/synth"
)

func load(t *testing.T, name string, scale float64) *layout.Layout {
	t.Helper()
	lo, _, err := synth.Load(name, scale)
	if err != nil {
		t.Fatal(err)
	}
	return lo
}

// dedupKeys canonicalizes violations for set comparison.
func dedupKeys(vs []rules.Violation) map[string]bool {
	out := make(map[string]bool)
	for _, v := range vs {
		out[fmt.Sprintf("%s|%v|%d", v.Rule, v.Marker.Box, v.Marker.Dist)] = true
	}
	return out
}

func eqSets(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func TestModesAgreeOnAllRules(t *testing.T) {
	lo := load(t, "uart", 0.8)
	for _, r := range synth.Deck() {
		flat, err := Check(lo, r, Options{Mode: Flat})
		if err != nil {
			t.Fatalf("%s flat: %v", r.ID, err)
		}
		deep, err := Check(lo, r, Options{Mode: Deep})
		if err != nil {
			t.Fatalf("%s deep: %v", r.ID, err)
		}
		tile, err := Check(lo, r, Options{Mode: Tiling, TileSize: 3000})
		if err != nil {
			t.Fatalf("%s tiling: %v", r.ID, err)
		}
		fk, dk, tk := dedupKeys(flat.Violations), dedupKeys(deep.Violations), dedupKeys(tile.Violations)
		if !eqSets(fk, dk) {
			t.Errorf("%s: flat (%d) and deep (%d) disagree", r.ID, len(fk), len(dk))
		}
		if !eqSets(fk, tk) {
			t.Errorf("%s: flat (%d) and tiling (%d) disagree", r.ID, len(fk), len(tk))
		}
	}
}

func TestFlatFindsInjected(t *testing.T) {
	lo, exp, err := synth.Load("uart", 1)
	if err != nil {
		t.Fatal(err)
	}
	checkCount := func(ruleID string, want int) {
		t.Helper()
		r, err := synth.RuleByID(ruleID)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Check(lo, r, Options{Mode: Flat})
		if err != nil {
			t.Fatal(err)
		}
		if got := len(dedupKeys(res.Violations)); got != want {
			t.Errorf("%s: flat found %d, injected %d", ruleID, got, want)
		}
	}
	checkCount("M1.W.1", exp.WidthM1)
	checkCount("M1.A.1", exp.AreaM1)
	checkCount("M1.S.1", exp.NotchM1)
	checkCount("M2.S.1", exp.SpaceM2)
	checkCount("V1.M1.EN.1", exp.EnclV1)
	checkCount("V2.M2.EN.1", exp.EnclV2M2)
	checkCount("M2.NAME.1", exp.UnnamedM2)
}

func TestTilingReportsTilesAndMakespan(t *testing.T) {
	lo := load(t, "uart", 0.8)
	r, _ := synth.RuleByID("M1.S.1")
	res, err := Check(lo, r, Options{Mode: Tiling, TileSize: 2000, Threads: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tiles < 2 {
		t.Errorf("tiles = %d; tile size too large for the test to mean anything", res.Tiles)
	}
	if res.Modeled <= 0 || res.Modeled > res.Wall {
		t.Errorf("modeled makespan %v vs wall %v", res.Modeled, res.Wall)
	}
}

func TestTilingOwnershipNoDuplicates(t *testing.T) {
	lo := load(t, "uart", 1)
	r, _ := synth.RuleByID("M2.S.1")
	// Tiny tiles maximize halo overlap; dedup must still hold.
	small, err := Check(lo, r, Options{Mode: Tiling, TileSize: 800})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Check(lo, r, Options{Mode: Flat})
	if err != nil {
		t.Fatal(err)
	}
	if len(dedupKeys(small.Violations)) != len(dedupKeys(flat.Violations)) {
		t.Errorf("tiny tiles changed violation set: %d vs %d",
			len(dedupKeys(small.Violations)), len(dedupKeys(flat.Violations)))
	}
	// Exact duplicates inside the raw list indicate broken ownership.
	seen := map[string]int{}
	for _, v := range small.Violations {
		seen[fmt.Sprintf("%v|%d", v.Marker.Box, v.Marker.Dist)]++
	}
	for k, n := range seen {
		if n > 1 {
			t.Errorf("violation %s reported %d times", k, n)
		}
	}
}

func TestMakespan(t *testing.T) {
	times := []time.Duration{8, 4, 4, 3, 3, 2}
	// LPT: worker A gets 8+3+2, worker B gets 4+4+3 -> makespan 13 (the
	// optimum is 12; LPT is a 4/3-approximation).
	if got := makespan(times, 2); got != 13 {
		t.Errorf("makespan(2) = %v", got)
	}
	if got := makespan(times, 1); got != 24 {
		t.Errorf("makespan(1) = %v", got)
	}
	if got := makespan(times, 100); got != 8 {
		t.Errorf("makespan(inf) = %v", got)
	}
	if got := makespan(nil, 4); got != 0 {
		t.Errorf("makespan(empty) = %v", got)
	}
}

func TestInvalidRule(t *testing.T) {
	lo := load(t, "uart", 0.3)
	if _, err := Check(lo, rules.Rule{Kind: rules.Width}, Options{}); err == nil {
		t.Error("invalid rule accepted")
	}
	if _, err := Check(lo, synth.Deck()[0], Options{Mode: Mode(9)}); err == nil {
		t.Error("unknown mode accepted")
	}
}

// randomLib builds a randomized hierarchical library (orientations, arrays,
// loose shapes) for cross-tool agreement checks.
func randomLib(seed int64) *gdsii.Library {
	rng := rand.New(rand.NewSource(seed))
	lib := &gdsii.Library{Name: "rand", UserUnit: 1e-3, MeterUnit: 1e-9}
	names := []string{"A", "B"}
	for _, name := range names {
		st := &gdsii.Structure{Name: name}
		for p := 0; p < 1+rng.Intn(3); p++ {
			x, y := int64(rng.Intn(100)), int64(rng.Intn(100))
			w, h := int64(8+rng.Intn(40)), int64(8+rng.Intn(40))
			l := layout.LayerM1
			if rng.Intn(3) == 0 {
				l = layout.LayerV1
			}
			st.Boundaries = append(st.Boundaries, gdsii.Boundary{
				Layer: int16(l),
				XY: []geom.Point{
					geom.Pt(x, y), geom.Pt(x, y+h), geom.Pt(x+w, y+h), geom.Pt(x+w, y),
				},
			})
		}
		lib.Structures = append(lib.Structures, st)
	}
	top := &gdsii.Structure{Name: "TOP"}
	angles := []float64{0, 90, 180, 270}
	for i := 0; i < 5+rng.Intn(6); i++ {
		top.SRefs = append(top.SRefs, gdsii.SRef{
			Name: names[rng.Intn(2)],
			Pos:  geom.Pt(int64(rng.Intn(600)), int64(rng.Intn(600))),
			Trans: gdsii.Trans{
				Reflect:  rng.Intn(2) == 0,
				AngleDeg: angles[rng.Intn(4)],
			},
		})
	}
	lib.Structures = append(lib.Structures, top)
	return lib
}

// TestKLayoutAgreesWithOpenDRCOnRandomLayouts pits every KLayout mode
// against OpenDRC's sequential engine on randomized hierarchies.
func TestKLayoutAgreesWithOpenDRCOnRandomLayouts(t *testing.T) {
	deck := rules.Deck{
		rules.Layer(layout.LayerM1).Width().AtLeast(12).Named("W"),
		rules.Layer(layout.LayerM1).Spacing().AtLeast(14).Named("S"),
		rules.Layer(layout.LayerM1).Area().AtLeast(150).Named("A"),
		rules.Layer(layout.LayerV1).EnclosedBy(layout.LayerM1).AtLeast(4).Named("EN"),
	}
	for trial := int64(0); trial < 10; trial++ {
		lo, err := layout.FromLibrary(randomLib(trial*31 + 7))
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range deck {
			eng := core.New(core.Options{Mode: core.Sequential})
			if err := eng.AddRules(r); err != nil {
				t.Fatal(err)
			}
			rep, err := eng.Check(lo)
			if err != nil {
				t.Fatal(err)
			}
			want := dedupKeys(rep.Violations)
			for _, mode := range []Mode{Flat, Deep, Tiling} {
				res, err := Check(lo, r, Options{Mode: mode, TileSize: 150})
				if err != nil {
					t.Fatalf("trial %d %s %v: %v", trial, r.ID, mode, err)
				}
				got := dedupKeys(res.Violations)
				if !eqSets(got, want) {
					t.Fatalf("trial %d rule %s: klayout-%v %d violations vs opendrc %d",
						trial, r.ID, mode, len(got), len(want))
				}
			}
		}
	}
}
