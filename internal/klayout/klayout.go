// Package klayout re-implements the three operating modes of the KLayout
// design rule checker that the paper benchmarks against — flat, deep
// (hierarchical), and tiling — with the documented algorithmic structure of
// each mode, so their relative costs emerge from the algorithms rather than
// from tuned constants:
//
//   - flat: the layout is fully instantiated and every check runs on the
//     expanded geometry with one global sweepline per rule. No hierarchy
//     reuse: work scales with instance counts.
//   - deep: hierarchical processing. Intra-polygon results are computed per
//     definition and materialized per instance through "variant" shape
//     transforms (each instance's geometry is touched, which is what makes
//     deep slower than an engine that replays markers only). Inter-polygon
//     checks discover neighbor candidates with per-shape region scans over
//     the instance list rather than a global sweepline — the behaviour that
//     makes deep mode *slower* than flat on dense flat routing layers, as
//     the paper's jpeg M3.S.1 row (3588 s deep vs 317 s flat) shows.
//   - tiling: the flat geometry is partitioned into fixed tiles extended by
//     the rule halo; tiles are processed independently (multi-CPU in real
//     KLayout) and duplicated findings in halos are merged. Per-tile wall
//     times are reported so a multi-thread makespan can be modeled on a
//     single-core host.
//
// All three modes produce the same violation set as OpenDRC's engines
// (verified in tests); only the work structure differs.
package klayout

import (
	"context"
	"fmt"
	"sort"
	"time"

	"opendrc/internal/budget"
	"opendrc/internal/checks"
	"opendrc/internal/faults"
	"opendrc/internal/geocache"
	"opendrc/internal/geom"
	"opendrc/internal/layout"
	"opendrc/internal/rules"
	"opendrc/internal/sweep"
)

// Mode selects the KLayout operating mode.
type Mode int

// Operating modes.
const (
	Flat Mode = iota
	Deep
	Tiling
)

var modeNames = [...]string{"flat", "deep", "tiling"}

// String implements fmt.Stringer.
func (m Mode) String() string {
	if int(m) < len(modeNames) {
		return modeNames[m]
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Options configure a run.
type Options struct {
	Mode Mode
	// TileSize is the tiling-mode tile edge in DBU. Zero selects an
	// adaptive default of 1/8 of the layout's larger extent (at least
	// 1000 DBU), giving the worker pool a balanced tile grid on any
	// design size.
	TileSize int64
	// Threads models the tiling worker pool for the makespan estimate
	// (default 8, matching the paper's multi-core host).
	Threads int
	// Workers is the real worker-pool size executing tiles on this host
	// (<= 0 selects GOMAXPROCS). Result.Wall measures the pooled run;
	// Result.Modeled stays the Threads-worker LPT makespan, so measured
	// and modeled multi-core times are reported side by side.
	Workers int

	// Budgets are the run's resource limits. Flat mode estimates its
	// flatten size up front and, when the flatten-polys budget would trip,
	// falls back to tiling mode (Result.FellBack) instead of materializing
	// the blow-up. The zero value imposes no limits.
	Budgets budget.Limits

	// Faults is the deterministic fault injector driving the chaos suite;
	// nil (the production value) is inert.
	Faults *faults.Injector

	// Cache is an optional cross-rule geometry cache shared by the rules of
	// one run over one layout. Flat mode flattens each layer through it
	// (once per layer instead of once per rule); tiling mode consults it
	// non-blockingly — a tile filters an already-cached flatten instead of
	// re-walking the hierarchy, but never *forces* a full flatten, so the
	// budget-driven flat→tiling fallback still avoids the materialization
	// it fell back from. Results are identical with or without a cache.
	Cache *geocache.Cache
}

// Result is the outcome of checking one rule.
type Result struct {
	Violations []rules.Violation
	// Wall is the measured host wall-clock time. Flat and deep modes run
	// on one core; tiling mode runs its tiles on the Options.Workers pool,
	// so Wall is the real multi-core time on this host.
	Wall time.Duration
	// Modeled is the estimated time with the mode's parallelism: equal to
	// Wall for flat/deep; for tiling, the LPT makespan of per-tile times
	// over Threads workers.
	Modeled time.Duration
	// Tiles is the number of non-empty tiles processed (tiling mode).
	Tiles int
	// FellBack is set when flat mode detected that fully instantiating the
	// layout would trip the flatten-polys budget and ran tiling instead.
	FellBack bool
}

// Check runs one rule in the configured mode with no deadline.
func Check(lo *layout.Layout, r rules.Rule, opts Options) (*Result, error) {
	return CheckContext(context.Background(), lo, r, opts) //odrc:allow ctxflow — context-free convenience wrapper, delegates to the Context variant
}

// CheckContext runs one rule in the configured mode under ctx. Cancellation
// is cooperative (checked per instance cluster, tile, or flatten batch); a
// cancelled run returns a nil result and an error wrapping ctx.Err().
func CheckContext(ctx context.Context, lo *layout.Layout, r rules.Rule, opts Options) (*Result, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	if r.Kind == rules.Coverage || r.Kind == rules.MinOverlap {
		return nil, fmt.Errorf("klayout: derived-layer rule %s not supported by this baseline", r)
	}
	if opts.Threads <= 0 {
		opts.Threads = 8
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("klayout: check cancelled: %w", err)
	}
	res := &Result{}
	start := time.Now() //odrc:allow clock — baseline wall measurement; feeds Result.Wall, the KLayout side of measured-vs-modeled
	var err error
	switch opts.Mode {
	case Flat:
		err = checkFlat(ctx, lo, r, opts, res)
	case Deep:
		err = checkDeep(ctx, lo, r, res)
	case Tiling:
		err = checkTiling(ctx, lo, r, opts, res)
	default:
		err = fmt.Errorf("klayout: unknown mode %d", int(opts.Mode))
	}
	if err != nil {
		return nil, err
	}
	res.Wall = time.Since(start) //odrc:allow clock — closes the Result.Wall measurement opened above
	if res.Modeled == 0 {
		res.Modeled = res.Wall
	}
	sortViolations(res.Violations)
	return res, nil
}

// flattenEstimate counts the polygons a full instantiation of the layer
// would materialize — Σ (cell's local layer polygons × placements) — without
// materializing anything, so flat mode can decide to fall back before
// paying for the blow-up.
func flattenEstimate(lo *layout.Layout, l layout.Layer) int64 {
	placements := lo.Placements()
	var n int64
	for _, c := range lo.LayerCells(l) {
		n += int64(len(c.LocalPolys(l))) * int64(len(placements[c.ID]))
	}
	return n
}

func sortViolations(vs []rules.Violation) {
	// rules.Less is a total order, so equal violation multisets sort to the
	// same sequence regardless of the emission order a mode produced.
	sort.Slice(vs, func(i, j int) bool { return rules.Less(&vs[i], &vs[j]) })
}

// emitFn builds a violation emitter for one rule.
func emitFn(res *Result, r rules.Rule) func(checks.Marker) {
	return func(m checks.Marker) {
		res.Violations = append(res.Violations, rules.Violation{
			Rule: r.ID, Kind: r.Kind, Layer: r.Layer, Marker: m,
		})
	}
}

// checkPolyIntra dispatches one flat polygon through an intra-polygon rule.
func checkPolyIntra(p geom.Polygon, name string, r rules.Rule, emit func(checks.Marker)) {
	switch r.Kind {
	case rules.Width:
		checks.CheckWidth(p, r.Min, emit)
	case rules.Area:
		if m, bad := checks.CheckArea(p, 2*r.Min); bad {
			emit(m)
		}
	case rules.Rectilinear:
		if m, bad := checks.CheckRectilinear(p); bad {
			emit(m)
		}
	case rules.Custom:
		if !r.Pred(rules.Obj{Shape: p, Layer: r.Layer, Name: name}) {
			emit(checks.Marker{Box: p.MBR()})
		}
	}
}

// flattenVia flattens a layer through the run's geometry cache when one is
// configured (one materialization per layer per run, with the cache's
// flatten-polys budget applied), or directly otherwise.
func flattenVia(ctx context.Context, cache *geocache.Cache, lo *layout.Layout, l layout.Layer) ([]layout.PlacedPoly, error) {
	if cache == nil {
		return lo.FlattenLayer(l), nil
	}
	return cache.Flatten(ctx, lo, l)
}

// flatName resolves the label of a flattened polygon from its definition
// cell (labels transform with the cell, so the local containment test is
// equivalent).
func flatName(pp layout.PlacedPoly) string {
	c := pp.Src.Cell
	local := c.Polys[pp.Src.Idx].Shape
	mbr := local.MBR()
	for i := range c.Labels {
		l := &c.Labels[i]
		if l.Layer == c.Polys[pp.Src.Idx].Layer && mbr.Contains(l.Pos) && local.ContainsPoint(l.Pos) {
			return l.Text
		}
	}
	return ""
}

// checkFlat is the flat mode: full instantiation, one global sweepline.
// When the estimated flatten size trips the flatten-polys budget, the run
// degrades gracefully to tiling mode (which never materializes more than a
// tile window at a time) instead of exhausting memory.
func checkFlat(ctx context.Context, lo *layout.Layout, r rules.Rule, opts Options, res *Result) error {
	if limit := opts.Budgets.MaxFlattenPolys; limit > 0 {
		est := flattenEstimate(lo, r.Layer)
		if r.Kind == rules.Enclosure {
			est += flattenEstimate(lo, r.Outer)
		}
		if err := budget.Check("flatten-polys", est, limit); err != nil {
			res.FellBack = true
			return checkTiling(ctx, lo, r, opts, res)
		}
	}
	emit := emitFn(res, r)
	polys, err := flattenVia(ctx, opts.Cache, lo, r.Layer)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	switch r.Kind {
	case rules.Spacing:
		lim := r.SpacingLimit()
		boxes := make([]geom.Rect, len(polys))
		for i := range polys {
			boxes[i] = polys[i].Shape.MBR().Expand(lim.Reach())
			checks.CheckNotchLim(polys[i].Shape, lim, emit)
		}
		if _, err := sweep.Overlaps(boxes, func(a, b int) {
			checks.CheckSpacingLim(polys[a].Shape, polys[b].Shape, lim, emit)
		}); err != nil {
			return err
		}
	case rules.Enclosure:
		metals, err := flattenVia(ctx, opts.Cache, lo, r.Outer)
		if err != nil {
			return err
		}
		viaBoxes := make([]geom.Rect, len(polys))
		for i := range polys {
			viaBoxes[i] = polys[i].Shape.MBR().Expand(r.Min)
		}
		metalBoxes := make([]geom.Rect, len(metals))
		for i := range metals {
			metalBoxes[i] = metals[i].Shape.MBR()
		}
		cands := make([][]geom.Polygon, len(polys))
		if _, err := sweep.OverlapsBetween(viaBoxes, metalBoxes, func(v, m int) {
			cands[v] = append(cands[v], metals[m].Shape)
		}); err != nil {
			return err
		}
		for i := range polys {
			checks.EvaluateEnclosure(polys[i].Shape, cands[i], r.Min, emit)
		}
	default:
		for i, pp := range polys {
			if i%1024 == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			checkPolyIntra(pp.Shape, flatName(pp), r, emit)
		}
	}
	return nil
}
