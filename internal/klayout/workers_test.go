package klayout

import (
	"reflect"
	"testing"

	"opendrc/internal/synth"
)

// TestTilingWorkerCountDeterminism requires the pooled tiling mode to report
// the identical sorted violation list for every worker count, and to fill in
// both the measured wall time and the modeled makespan.
func TestTilingWorkerCountDeterminism(t *testing.T) {
	lo := load(t, "aes", 0.3)
	for _, r := range synth.Deck() {
		var refViols any
		var refTiles int
		for _, workers := range []int{1, 8} {
			res, err := Check(lo, r, Options{Mode: Tiling, TileSize: 3000, Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", r.ID, workers, err)
			}
			if res.Tiles > 0 && (res.Wall <= 0 || res.Modeled <= 0) {
				t.Fatalf("%s workers=%d: wall=%v modeled=%v, want both > 0",
					r.ID, workers, res.Wall, res.Modeled)
			}
			if refViols == nil {
				refViols, refTiles = res.Violations, res.Tiles
				continue
			}
			if !reflect.DeepEqual(res.Violations, refViols) {
				t.Fatalf("%s: workers=8 violations differ from workers=1", r.ID)
			}
			if res.Tiles != refTiles {
				t.Fatalf("%s: tiles %d vs %d", r.ID, res.Tiles, refTiles)
			}
		}
	}
}
