package klayout

import (
	"context"
	"fmt"
	"sort"
	"time"

	"opendrc/internal/checks"
	"opendrc/internal/faults"
	"opendrc/internal/geocache"
	"opendrc/internal/geom"
	"opendrc/internal/layout"
	"opendrc/internal/pool"
	"opendrc/internal/rules"
	"opendrc/internal/sweep"
	"opendrc/internal/trace"
)

// Tiling mode: the layout plane is cut into a fixed grid of tiles; each tile
// processes the flat geometry intersecting the tile extended by the rule
// halo, and results are attributed to the tile containing the marker's
// center so halo duplicates are dropped. As in real KLayout, tiles execute
// on a worker pool (Options.Workers); per-tile wall times are additionally
// measured so the Options.Threads-worker makespan can be modeled by
// longest-processing-time scheduling and reported next to the measured
// pooled wall time.

// checkTiling runs one rule in tiling mode.
func checkTiling(ctx context.Context, lo *layout.Layout, r rules.Rule, opts Options, res *Result) error {
	bounds := lo.Top.LayerMBR(r.Layer)
	if r.Kind == rules.Enclosure {
		bounds = bounds.Union(lo.Top.LayerMBR(r.Outer))
	}
	if bounds.Empty() {
		return nil
	}
	halo := r.Reach()
	ts := opts.TileSize
	if ts <= 0 {
		ext := bounds.Width()
		if h := bounds.Height(); h > ext {
			ext = h
		}
		ts = ext / 8
		if ts < 1000 {
			ts = 1000
		}
	}

	var tiles []geom.Rect
	for ty := bounds.YLo; ty <= bounds.YHi; ty += ts {
		for tx := bounds.XLo; tx <= bounds.XHi; tx += ts {
			tiles = append(tiles, geom.R(tx, ty, tx+ts-1, ty+ts-1))
		}
	}

	// Tiles are independent by construction (halo ownership drops
	// duplicates), so they fan out across the worker pool; per-tile slots
	// merged in grid order keep the violation list bit-identical for every
	// worker count.
	type tileResult struct {
		vs        []rules.Violation
		dur       time.Duration
		processed bool
	}
	results := make([]tileResult, len(tiles))
	err := pool.ForEachCtx(trace.WithTask(ctx, "tile"), opts.Workers, len(tiles), func(i int) error {
		if err := opts.Faults.Hit(ctx, faults.SiteTile, fmt.Sprintf("tile#%d", i)); err != nil {
			return err
		}
		tile := tiles[i]
		tr := &results[i]
		start := time.Now() //odrc:allow clock — per-tile wall time; input to the Threads-worker LPT makespan model
		processed, err := tileCheck(lo, r, tile, halo, opts.Cache, func(m checks.Marker) {
			// Ownership: the tile containing the marker center reports
			// it; halo copies elsewhere are dropped.
			if tile.Contains(m.Box.Center()) {
				tr.vs = append(tr.vs, rules.Violation{
					Rule: r.ID, Kind: r.Kind, Layer: r.Layer, Marker: m,
				})
			}
		})
		if err != nil {
			return err
		}
		tr.processed = processed
		if tr.processed {
			tr.dur = time.Since(start) //odrc:allow clock — closes the per-tile measurement opened above
		}
		return nil
	})
	if err != nil {
		return err
	}

	var tileTimes []time.Duration
	for i := range results {
		res.Violations = append(res.Violations, results[i].vs...)
		if results[i].processed {
			tileTimes = append(tileTimes, results[i].dur)
			res.Tiles++
		}
	}
	res.Modeled = makespan(tileTimes, opts.Threads)
	return nil
}

// tileCheck runs the flat algorithms restricted to one tile+halo window;
// returns false when the window holds no geometry.
func tileCheck(lo *layout.Layout, r rules.Rule, tile geom.Rect, halo int64, cache *geocache.Cache, emit func(checks.Marker)) (bool, error) {
	window := tile.Expand(halo)
	polys := tileQuery(cache, lo, r.Layer, window)
	if len(polys) == 0 {
		return false, nil
	}
	switch r.Kind {
	case rules.Spacing:
		lim := r.SpacingLimit()
		boxes := make([]geom.Rect, len(polys))
		for i := range polys {
			boxes[i] = polys[i].Shape.MBR().Expand(lim.Reach())
			checks.CheckNotchLim(polys[i].Shape, lim, emit)
		}
		if _, err := sweep.Overlaps(boxes, func(a, b int) {
			checks.CheckSpacingLim(polys[a].Shape, polys[b].Shape, lim, emit)
		}); err != nil {
			return false, err
		}
	case rules.Enclosure:
		metals := tileQuery(cache, lo, r.Outer, window)
		viaBoxes := make([]geom.Rect, len(polys))
		for i := range polys {
			viaBoxes[i] = polys[i].Shape.MBR().Expand(r.Min)
		}
		metalBoxes := make([]geom.Rect, len(metals))
		for i := range metals {
			metalBoxes[i] = metals[i].Shape.MBR()
		}
		cands := make([][]geom.Polygon, len(polys))
		if _, err := sweep.OverlapsBetween(viaBoxes, metalBoxes, func(v, m int) {
			cands[v] = append(cands[v], metals[m].Shape)
		}); err != nil {
			return false, err
		}
		for i := range polys {
			checks.EvaluateEnclosure(polys[i].Shape, cands[i], r.Min, emit)
		}
	default:
		for _, pp := range polys {
			checkPolyIntra(pp.Shape, flatName(pp), r, emit)
		}
	}
	return true, nil
}

// tileQuery returns the layer polygons overlapping the window. When the
// run's geometry cache already holds the layer's flatten (a previous rule
// paid for it), the tile filters that list with the same transformed-MBR
// overlap test the hierarchy query applies at its leaves — identical
// content in identical DFS order — instead of re-walking the hierarchy per
// tile. The peek never blocks and never forces a flatten, so tiling keeps
// its bounded-memory guarantee when it is the budget fallback.
func tileQuery(cache *geocache.Cache, lo *layout.Layout, l layout.Layer, window geom.Rect) []layout.PlacedPoly {
	if cache != nil {
		if flat, ok := cache.PeekFlatten(l); ok {
			var out []layout.PlacedPoly
			for _, pp := range flat {
				if pp.Shape.MBR().Overlaps(window) {
					out = append(out, pp)
				}
			}
			return out
		}
	}
	polys, _ := lo.QueryLayer(l, window)
	return polys
}

// makespan models LPT scheduling of tile durations onto the worker pool.
func makespan(times []time.Duration, threads int) time.Duration {
	if len(times) == 0 {
		return 0
	}
	if threads < 1 {
		threads = 1
	}
	sorted := append([]time.Duration(nil), times...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	workers := make([]time.Duration, threads)
	for _, t := range sorted {
		min := 0
		for w := 1; w < threads; w++ {
			if workers[w] < workers[min] {
				min = w
			}
		}
		workers[min] += t
	}
	var out time.Duration
	for _, w := range workers {
		if w > out {
			out = w
		}
	}
	return out
}
