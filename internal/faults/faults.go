// Package faults is OpenDRC's deterministic fault-injection harness. The
// hardened pipeline (per-rule isolation, budgets, cancellation) is only
// trustworthy if its failure paths are exercised, so the chaos tests drive
// every path through seed-driven injections registered at the pipeline's
// existing seams:
//
//   - SiteRule — the engine's per-rule dispatch (core.CheckContext);
//   - SiteCell — the per-cell-definition fan-out running inside pool
//     workers (intra checks), exercising pool panic recovery;
//   - SiteRow — the per-partition-row fan-out of the spacing sweep;
//   - SiteAlloc — the simulated device's stream-ordered allocator;
//   - SiteTile — the KLayout tiling worker loop;
//   - SiteFlatten — the geometry cache's per-layer flatten computation; a
//     single injected failure is cached and degrades every rule sharing the
//     layer, exercising cross-rule failure propagation;
//   - truncated GDSII reads via TruncateReader at the io.Reader seam.
//
// Determinism is the design constraint: whether a given hit fires depends
// only on (seed, site, key) — never on worker count, goroutine schedule, or
// hit order — so an injected failure reproduces bit-identically across
// worker counts and reruns. An Injector is carried in the options of the
// package under test; a nil *Injector is inert, so production call sites
// pay one nil check.
package faults

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"
)

// Mode selects what a matched injection does.
type Mode int

// Injection modes.
const (
	// Error makes Hit return an *InjectedError.
	Error Mode = iota
	// Panic makes Hit panic with a PanicValue; the pool's recovery (or the
	// engine's per-rule guard) must convert it into a structured failure.
	Panic
	// Stall blocks Hit until the configured duration elapses or ctx is
	// cancelled (returning ctx.Err()), modeling a hung check under a
	// deadline.
	Stall
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Error:
		return "error"
	case Panic:
		return "panic"
	case Stall:
		return "stall"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Injection seams. Each production seam calls Hit with one of these site
// names and a deterministic key identifying the work item.
const (
	SiteRule    = "core.rule"      // key: rule ID
	SiteCell    = "core.cell"      // key: cell name (runs inside pool workers)
	SiteRow     = "core.row"       // key: "ruleID/cell/row#i"
	SiteAlloc   = "gpu.alloc"      // key: allocation label
	SiteTile    = "klayout.tile"   // key: "tile#i"
	SiteFlatten = "geocache.layer" // key: "layer#<n>"; fires once per cached flatten, degrading every rule sharing the layer

	// Service-layer seams (internal/server): the chaos suite reaches the
	// HTTP daemon through the same seeded (seed, site, key) mechanism as
	// the engine, so injected request and load failures reproduce
	// bit-identically across reruns and concurrency levels.

	// SiteRequest fires at the start of one admitted check request; the key
	// is the request's deterministic identity "session/check#seq" (per-
	// session arrival order, not goroutine schedule).
	SiteRequest = "server.request"
	// SiteSessionLoad fires inside the single-flight session load; the key
	// is the session ID, so every concurrent loader of that session observes
	// the same injected outcome.
	SiteSessionLoad = "server.session-load"
	// SiteSched fires when the fair scheduler dispatches a chunk; the key is
	// "<tenant>#<lo>" (the chunk's first index), so a chaos run can make one
	// tenant's chunks fail or stall while its co-tenants keep executing —
	// the isolation property the per-tenant queues exist to provide.
	SiteSched = "pool.sched"
)

// ErrInjected is the sentinel every injected error unwraps to.
var ErrInjected = errors.New("faults: injected fault")

// InjectedError is the typed error returned by an Error-mode injection.
type InjectedError struct {
	Site, Key string
}

// Error implements error.
func (e *InjectedError) Error() string {
	return fmt.Sprintf("faults: injected fault at %s[%s]", e.Site, e.Key)
}

// Unwrap ties injected errors to the ErrInjected sentinel.
func (e *InjectedError) Unwrap() error { return ErrInjected }

// PanicValue is the value a Panic-mode injection panics with; recovery
// layers can recognize it to distinguish injected from organic panics.
type PanicValue struct {
	Site, Key string
}

// String implements fmt.Stringer (panic output).
func (v PanicValue) String() string {
	return fmt.Sprintf("faults: injected panic at %s[%s]", v.Site, v.Key)
}

// Injection selects the hits that fail and how they fail.
type Injection struct {
	Site string // seam to match (required)
	// Key selects one exact work item. When empty, Rate selects keys by
	// the seeded hash instead.
	Key string
	// Rate is the seed-driven selection used when Key is empty: a hit
	// fires when hash(seed, site, key)%Rate == 0, i.e. roughly one key in
	// Rate. Zero with an empty Key never fires; Rate 1 fires on every key.
	Rate uint64
	// Mode selects the failure behaviour.
	Mode Mode
	// Stall is the Stall-mode block duration.
	Stall time.Duration
	// IgnoreCancel makes a Stall ignore ctx — a non-cooperative hang, the
	// case the service watchdog exists for. The stall still returns when
	// its duration elapses, so chaos runs always terminate.
	IgnoreCancel bool
}

// Injector evaluates injections. The zero value and the nil pointer are
// inert.
type Injector struct {
	seed uint64
	injs []Injection
}

// New builds an injector with a seed (selecting which Rate-matched keys
// fail) and the active injections.
func New(seed int64, injs ...Injection) *Injector {
	return &Injector{seed: uint64(seed), injs: append([]Injection(nil), injs...)}
}

// hash mixes seed, site and key with FNV-1a followed by a splitmix64
// finalizer; the result depends only on its inputs.
func (in *Injector) hash(site, key string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset) ^ in.seed
	for i := 0; i < len(site); i++ {
		h = (h ^ uint64(site[i])) * prime
	}
	h = (h ^ '/') * prime
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * prime
	}
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h = (h ^ (h >> 27)) * 0x94D049BB133111EB
	return h ^ (h >> 31)
}

// match returns the first injection selecting (site, key), or nil.
func (in *Injector) match(site, key string) *Injection {
	for i := range in.injs {
		inj := &in.injs[i]
		if inj.Site != site {
			continue
		}
		if inj.Key != "" {
			if inj.Key == key {
				return inj
			}
			continue
		}
		if inj.Rate > 0 && in.hash(site, key)%inj.Rate == 0 {
			return inj
		}
	}
	return nil
}

// Hit evaluates the seam (site, key). It is safe on a nil receiver (returns
// nil). On a match it fails per the injection's mode: Error returns an
// *InjectedError, Panic panics with a PanicValue, and Stall blocks until
// the stall elapses (then returns nil) or ctx is cancelled (then returns
// ctx.Err()).
func (in *Injector) Hit(ctx context.Context, site, key string) error {
	if in == nil {
		return nil
	}
	inj := in.match(site, key)
	if inj == nil {
		return nil
	}
	switch inj.Mode {
	case Panic:
		panic(PanicValue{Site: site, Key: key})
	case Stall:
		t := time.NewTimer(inj.Stall)
		defer t.Stop()
		if ctx == nil || inj.IgnoreCancel {
			<-t.C
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			return nil
		}
	default:
		return &InjectedError{Site: site, Key: key}
	}
}

// truncateReader cuts the stream after n bytes, returning io.EOF where the
// underlying stream would have continued — the GDSII reader must surface
// this as a clean io.ErrUnexpectedEOF-based error, never a panic.
type truncateReader struct {
	r         io.Reader
	remaining int64
}

// TruncateReader returns a reader that yields at most n bytes of r and then
// reports io.EOF, simulating a truncated file or dropped connection.
func TruncateReader(r io.Reader, n int64) io.Reader {
	return &truncateReader{r: r, remaining: n}
}

// Read implements io.Reader.
func (t *truncateReader) Read(p []byte) (int, error) {
	if t.remaining <= 0 {
		return 0, io.EOF
	}
	if int64(len(p)) > t.remaining {
		p = p[:t.remaining]
	}
	n, err := t.r.Read(p)
	t.remaining -= int64(n)
	if err == nil && t.remaining <= 0 {
		err = io.EOF
	}
	return n, err
}
