package faults

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func TestNilInjectorInert(t *testing.T) {
	var in *Injector
	if err := in.Hit(context.Background(), SiteRule, "M1.S.1"); err != nil {
		t.Fatalf("nil injector Hit = %v, want nil", err)
	}
	if err := (&Injector{}).Hit(context.Background(), SiteRule, "M1.S.1"); err != nil {
		t.Fatalf("zero injector Hit = %v, want nil", err)
	}
}

func TestHashDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	c := New(43)
	for _, key := range []string{"", "M1.S.1", "cell/row#3", "x"} {
		if a.hash(SiteRule, key) != b.hash(SiteRule, key) {
			t.Fatalf("same seed, key %q: hashes differ", key)
		}
	}
	// Different seeds must select different key sets (overwhelmingly).
	diff := 0
	for _, key := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		if a.hash(SiteRule, key) != c.hash(SiteRule, key) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seeds 42 and 43 hash identically on every key")
	}
	// Site participates: same key under different sites differs.
	if a.hash(SiteRule, "k") == a.hash(SiteCell, "k") {
		t.Fatal("site does not participate in the hash")
	}
}

func TestExactKeyMatch(t *testing.T) {
	in := New(1, Injection{Site: SiteRule, Key: "M1.S.1", Mode: Error})
	err := in.Hit(context.Background(), SiteRule, "M1.S.1")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("matched hit = %v, want ErrInjected", err)
	}
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Site != SiteRule || ie.Key != "M1.S.1" {
		t.Fatalf("injected error = %#v", err)
	}
	if err := in.Hit(context.Background(), SiteRule, "M2.S.1"); err != nil {
		t.Fatalf("unmatched key = %v, want nil", err)
	}
	if err := in.Hit(context.Background(), SiteCell, "M1.S.1"); err != nil {
		t.Fatalf("unmatched site = %v, want nil", err)
	}
}

func TestRateSelection(t *testing.T) {
	// Rate 1 fires on every key; rate 0 with no Key never fires.
	always := New(7, Injection{Site: SiteCell, Rate: 1, Mode: Error})
	never := New(7, Injection{Site: SiteCell, Mode: Error})
	keys := []string{"aes", "ethmac", "ibex", "jpeg", "sha3", "uart"}
	for _, k := range keys {
		if err := always.Hit(context.Background(), SiteCell, k); err == nil {
			t.Fatalf("rate 1 did not fire on %q", k)
		}
		if err := never.Hit(context.Background(), SiteCell, k); err != nil {
			t.Fatalf("rate 0 fired on %q: %v", k, err)
		}
	}
	// A moderate rate fires on a deterministic subset, identical across
	// independently built injectors.
	in1 := New(99, Injection{Site: SiteCell, Rate: 3, Mode: Error})
	in2 := New(99, Injection{Site: SiteCell, Rate: 3, Mode: Error})
	for _, k := range keys {
		e1 := in1.Hit(context.Background(), SiteCell, k)
		e2 := in2.Hit(context.Background(), SiteCell, k)
		if (e1 == nil) != (e2 == nil) {
			t.Fatalf("selection for %q differs between identical injectors", k)
		}
	}
}

func TestPanicMode(t *testing.T) {
	in := New(1, Injection{Site: SiteCell, Key: "boom", Mode: Panic})
	defer func() {
		v, ok := recover().(PanicValue)
		if !ok || v.Site != SiteCell || v.Key != "boom" {
			t.Fatalf("recovered %#v, want PanicValue{core.cell, boom}", v)
		}
		if !strings.Contains(v.String(), "injected panic") {
			t.Fatalf("panic value string = %q", v.String())
		}
	}()
	in.Hit(context.Background(), SiteCell, "boom")
	t.Fatal("Hit returned instead of panicking")
}

func TestStallHonorsContext(t *testing.T) {
	in := New(1, Injection{Site: SiteRule, Key: "slow", Mode: Stall, Stall: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now() //odrc:allow clock — test-only stall timing assertion
	err := in.Hit(ctx, SiteRule, "slow")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled hit = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second { //odrc:allow clock — test-only stall timing assertion
		t.Fatalf("stall ignored the deadline (%v)", elapsed)
	}
}

func TestStallElapses(t *testing.T) {
	in := New(1, Injection{Site: SiteRule, Key: "slow", Mode: Stall, Stall: time.Millisecond})
	if err := in.Hit(context.Background(), SiteRule, "slow"); err != nil {
		t.Fatalf("elapsed stall = %v, want nil", err)
	}
}

// TestStallIgnoreCancel covers the non-cooperative hang: the stall outlives
// its context's deadline (the shape the service watchdog is built for) but
// still terminates when its own duration elapses.
func TestStallIgnoreCancel(t *testing.T) {
	in := New(1, Injection{
		Site: SiteRequest, Key: "wedge", Mode: Stall,
		Stall: 50 * time.Millisecond, IgnoreCancel: true,
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if err := in.Hit(ctx, SiteRequest, "wedge"); err != nil {
		t.Fatalf("non-cooperative stall = %v, want nil after elapsing", err)
	}
	if ctx.Err() == nil {
		t.Fatal("stall returned before the deadline it was meant to overrun")
	}
}

// TestServiceSites covers the HTTP-layer seams the chaos suite drives: the
// request and session-load sites select by exact key and by seeded rate
// exactly like the engine seams, in all three modes, and firing one site
// never disturbs the other.
func TestServiceSites(t *testing.T) {
	ctx := context.Background()
	// Exact-key request injection: only the named request fails, and the
	// typed error names the seam.
	in := New(5, Injection{Site: SiteRequest, Key: "uart/check#2", Mode: Error})
	err := in.Hit(ctx, SiteRequest, "uart/check#2")
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Site != SiteRequest || ie.Key != "uart/check#2" {
		t.Fatalf("request hit = %#v, want InjectedError at %s[uart/check#2]", err, SiteRequest)
	}
	if err := in.Hit(ctx, SiteRequest, "uart/check#3"); err != nil {
		t.Fatalf("unmatched request seq fired: %v", err)
	}
	if err := in.Hit(ctx, SiteSessionLoad, "uart/check#2"); err != nil {
		t.Fatalf("request injection leaked into the session-load site: %v", err)
	}

	// Session-load injection keys on the session ID; a load stall honors the
	// loader's context the same way engine stalls do.
	load := New(5,
		Injection{Site: SiteSessionLoad, Key: "jpeg", Mode: Error},
		Injection{Site: SiteSessionLoad, Key: "slow", Mode: Stall, Stall: time.Hour})
	if err := load.Hit(ctx, SiteSessionLoad, "jpeg"); !errors.Is(err, ErrInjected) {
		t.Fatalf("session-load hit = %v, want ErrInjected", err)
	}
	if err := load.Hit(ctx, SiteSessionLoad, "uart"); err != nil {
		t.Fatalf("unmatched session fired: %v", err)
	}
	cctx, cancel := context.WithTimeout(ctx, 5*time.Millisecond)
	defer cancel()
	if err := load.Hit(cctx, SiteSessionLoad, "slow"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled session load = %v, want DeadlineExceeded", err)
	}

	// Panic mode on the request seam carries the site/key for the server's
	// recovery layer to report.
	boom := New(5, Injection{Site: SiteRequest, Key: "uart/check#0", Mode: Panic})
	func() {
		defer func() {
			v, ok := recover().(PanicValue)
			if !ok || v.Site != SiteRequest || v.Key != "uart/check#0" {
				t.Fatalf("recovered %#v, want PanicValue at %s", v, SiteRequest)
			}
		}()
		boom.Hit(ctx, SiteRequest, "uart/check#0")
		t.Fatal("Hit returned instead of panicking")
	}()

	// Rate selection on request keys is deterministic across independently
	// built injectors — the property the HTTP chaos suite leans on.
	r1 := New(77, Injection{Site: SiteRequest, Rate: 2, Mode: Error})
	r2 := New(77, Injection{Site: SiteRequest, Rate: 2, Mode: Error})
	fired := 0
	for i := 0; i < 16; i++ {
		key := "s/check#" + strings.Repeat("i", i)
		e1, e2 := r1.Hit(ctx, SiteRequest, key), r2.Hit(ctx, SiteRequest, key)
		if (e1 == nil) != (e2 == nil) {
			t.Fatalf("rate selection for %q differs between identical injectors", key)
		}
		if e1 != nil {
			fired++
		}
	}
	if fired == 0 || fired == 16 {
		t.Fatalf("rate 2 fired on %d/16 request keys; want a proper subset", fired)
	}
}

func TestTruncateReader(t *testing.T) {
	src := []byte("hello, world")
	r := TruncateReader(bytes.NewReader(src), 5)
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if string(got) != "hello" {
		t.Fatalf("read %q, want %q", got, "hello")
	}
	// Further reads report plain EOF.
	n, err := r.Read(make([]byte, 4))
	if n != 0 || err != io.EOF {
		t.Fatalf("post-truncation Read = (%d, %v), want (0, EOF)", n, err)
	}
}

func TestTruncateReaderZero(t *testing.T) {
	r := TruncateReader(strings.NewReader("x"), 0)
	n, err := r.Read(make([]byte, 1))
	if n != 0 || err != io.EOF {
		t.Fatalf("Read = (%d, %v), want (0, EOF)", n, err)
	}
}
