package faults

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func TestNilInjectorInert(t *testing.T) {
	var in *Injector
	if err := in.Hit(context.Background(), SiteRule, "M1.S.1"); err != nil {
		t.Fatalf("nil injector Hit = %v, want nil", err)
	}
	if err := (&Injector{}).Hit(context.Background(), SiteRule, "M1.S.1"); err != nil {
		t.Fatalf("zero injector Hit = %v, want nil", err)
	}
}

func TestHashDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	c := New(43)
	for _, key := range []string{"", "M1.S.1", "cell/row#3", "x"} {
		if a.hash(SiteRule, key) != b.hash(SiteRule, key) {
			t.Fatalf("same seed, key %q: hashes differ", key)
		}
	}
	// Different seeds must select different key sets (overwhelmingly).
	diff := 0
	for _, key := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		if a.hash(SiteRule, key) != c.hash(SiteRule, key) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seeds 42 and 43 hash identically on every key")
	}
	// Site participates: same key under different sites differs.
	if a.hash(SiteRule, "k") == a.hash(SiteCell, "k") {
		t.Fatal("site does not participate in the hash")
	}
}

func TestExactKeyMatch(t *testing.T) {
	in := New(1, Injection{Site: SiteRule, Key: "M1.S.1", Mode: Error})
	err := in.Hit(context.Background(), SiteRule, "M1.S.1")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("matched hit = %v, want ErrInjected", err)
	}
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Site != SiteRule || ie.Key != "M1.S.1" {
		t.Fatalf("injected error = %#v", err)
	}
	if err := in.Hit(context.Background(), SiteRule, "M2.S.1"); err != nil {
		t.Fatalf("unmatched key = %v, want nil", err)
	}
	if err := in.Hit(context.Background(), SiteCell, "M1.S.1"); err != nil {
		t.Fatalf("unmatched site = %v, want nil", err)
	}
}

func TestRateSelection(t *testing.T) {
	// Rate 1 fires on every key; rate 0 with no Key never fires.
	always := New(7, Injection{Site: SiteCell, Rate: 1, Mode: Error})
	never := New(7, Injection{Site: SiteCell, Mode: Error})
	keys := []string{"aes", "ethmac", "ibex", "jpeg", "sha3", "uart"}
	for _, k := range keys {
		if err := always.Hit(context.Background(), SiteCell, k); err == nil {
			t.Fatalf("rate 1 did not fire on %q", k)
		}
		if err := never.Hit(context.Background(), SiteCell, k); err != nil {
			t.Fatalf("rate 0 fired on %q: %v", k, err)
		}
	}
	// A moderate rate fires on a deterministic subset, identical across
	// independently built injectors.
	in1 := New(99, Injection{Site: SiteCell, Rate: 3, Mode: Error})
	in2 := New(99, Injection{Site: SiteCell, Rate: 3, Mode: Error})
	for _, k := range keys {
		e1 := in1.Hit(context.Background(), SiteCell, k)
		e2 := in2.Hit(context.Background(), SiteCell, k)
		if (e1 == nil) != (e2 == nil) {
			t.Fatalf("selection for %q differs between identical injectors", k)
		}
	}
}

func TestPanicMode(t *testing.T) {
	in := New(1, Injection{Site: SiteCell, Key: "boom", Mode: Panic})
	defer func() {
		v, ok := recover().(PanicValue)
		if !ok || v.Site != SiteCell || v.Key != "boom" {
			t.Fatalf("recovered %#v, want PanicValue{core.cell, boom}", v)
		}
		if !strings.Contains(v.String(), "injected panic") {
			t.Fatalf("panic value string = %q", v.String())
		}
	}()
	in.Hit(context.Background(), SiteCell, "boom")
	t.Fatal("Hit returned instead of panicking")
}

func TestStallHonorsContext(t *testing.T) {
	in := New(1, Injection{Site: SiteRule, Key: "slow", Mode: Stall, Stall: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now() //odrc:allow clock — test-only stall timing assertion
	err := in.Hit(ctx, SiteRule, "slow")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled hit = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second { //odrc:allow clock — test-only stall timing assertion
		t.Fatalf("stall ignored the deadline (%v)", elapsed)
	}
}

func TestStallElapses(t *testing.T) {
	in := New(1, Injection{Site: SiteRule, Key: "slow", Mode: Stall, Stall: time.Millisecond})
	if err := in.Hit(context.Background(), SiteRule, "slow"); err != nil {
		t.Fatalf("elapsed stall = %v, want nil", err)
	}
}

func TestTruncateReader(t *testing.T) {
	src := []byte("hello, world")
	r := TruncateReader(bytes.NewReader(src), 5)
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if string(got) != "hello" {
		t.Fatalf("read %q, want %q", got, "hello")
	}
	// Further reads report plain EOF.
	n, err := r.Read(make([]byte, 4))
	if n != 0 || err != io.EOF {
		t.Fatalf("post-truncation Read = (%d, %v), want (0, EOF)", n, err)
	}
}

func TestTruncateReaderZero(t *testing.T) {
	r := TruncateReader(strings.NewReader("x"), 0)
	n, err := r.Read(make([]byte, 1))
	if n != 0 || err != io.EOF {
		t.Fatalf("Read = (%d, %v), want (0, EOF)", n, err)
	}
}
