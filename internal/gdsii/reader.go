package gdsii

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"opendrc/internal/geom"
)

// record is one decoded GDSII record.
type record struct {
	typ  RecordType
	dt   DataType
	data []byte
	pos  int64 // byte offset of the record header, for diagnostics
}

// recordReader streams records from r, reusing its payload buffer.
type recordReader struct {
	br  *bufio.Reader
	pos int64
	buf []byte
}

func newRecordReader(r io.Reader) *recordReader {
	return &recordReader{br: bufio.NewReaderSize(r, 1<<16)}
}

// next reads the next record. io.EOF is returned cleanly at a record
// boundary; a truncated record yields io.ErrUnexpectedEOF.
func (rr *recordReader) next() (record, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(rr.br, hdr[:1]); err != nil {
		if err == io.EOF {
			return record{}, io.EOF
		}
		return record{}, err
	}
	if _, err := io.ReadFull(rr.br, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return record{}, err
	}
	length := int(binary.BigEndian.Uint16(hdr[0:2]))
	if length < 4 {
		return record{}, fmt.Errorf("gdsii: record at offset %d has invalid length %d", rr.pos, length)
	}
	payload := length - 4
	if cap(rr.buf) < payload {
		rr.buf = make([]byte, payload)
	}
	data := rr.buf[:payload]
	if _, err := io.ReadFull(rr.br, data); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return record{}, err
	}
	rec := record{
		typ:  RecordType(hdr[2]),
		dt:   DataType(hdr[3]),
		data: data,
		pos:  rr.pos,
	}
	rr.pos += int64(length)
	return rec, nil
}

func (r record) int16s() []int16 {
	out := make([]int16, len(r.data)/2)
	for i := range out {
		out[i] = int16(binary.BigEndian.Uint16(r.data[2*i:]))
	}
	return out
}

func (r record) int16At(i int) int16 {
	return int16(binary.BigEndian.Uint16(r.data[2*i:]))
}

func (r record) int32At(i int) int32 {
	return int32(binary.BigEndian.Uint32(r.data[4*i:]))
}

func (r record) numInt32s() int { return len(r.data) / 4 }

func (r record) real8At(i int) float64 {
	var b [8]byte
	copy(b[:], r.data[8*i:8*i+8])
	return real8ToFloat64(b)
}

func (r record) str() string {
	b := r.data
	// GDSII pads strings to even length with a NUL.
	for len(b) > 0 && b[len(b)-1] == 0 {
		b = b[:len(b)-1]
	}
	return string(b)
}

func (r record) points() []geom.Point {
	n := r.numInt32s() / 2
	pts := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		pts[i] = geom.Pt(int64(r.int32At(2*i)), int64(r.int32At(2*i+1)))
	}
	return pts
}

// parser holds decode state for one library.
type parser struct {
	rr  *recordReader
	lib *Library
}

// Read parses a GDSII library from r.
func Read(r io.Reader) (*Library, error) {
	p := &parser{rr: newRecordReader(r), lib: &Library{}}
	if err := p.parseLibrary(); err != nil {
		return nil, err
	}
	return p.lib, nil
}

// ReadFile parses the GDSII file at path.
func ReadFile(path string) (*Library, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	lib, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("gdsii: reading %s: %w", path, err)
	}
	return lib, nil
}

func (p *parser) warnf(pos int64, format string, args ...any) {
	p.lib.Warnings = append(p.lib.Warnings,
		fmt.Sprintf("offset %d: %s", pos, fmt.Sprintf(format, args...)))
}

func (p *parser) expect(want RecordType) (record, error) {
	rec, err := p.rr.next()
	if err != nil {
		return record{}, fmt.Errorf("gdsii: expected %v: %w", want, err)
	}
	if rec.typ != want {
		return record{}, fmt.Errorf("gdsii: offset %d: expected %v, got %v", rec.pos, want, rec.typ)
	}
	if dt, ok := expectedDataType(rec.typ); ok && dt != rec.dt {
		p.warnf(rec.pos, "%v has data type %#x, expected %#x", rec.typ, rec.dt, dt)
	}
	return rec, nil
}

func (p *parser) parseLibrary() error {
	hdr, err := p.expect(RecHeader)
	if err != nil {
		return err
	}
	if len(hdr.data) >= 2 {
		p.lib.Version = hdr.int16At(0)
	}
	if _, err := p.expect(RecBgnLib); err != nil {
		return err
	}
	name, err := p.expect(RecLibName)
	if err != nil {
		return err
	}
	p.lib.Name = name.str()
	for {
		rec, err := p.rr.next()
		if err != nil {
			return fmt.Errorf("gdsii: inside library: %w", err)
		}
		switch rec.typ {
		case RecUnits:
			if len(rec.data) < 16 {
				return fmt.Errorf("gdsii: offset %d: short UNITS record", rec.pos)
			}
			p.lib.UserUnit = rec.real8At(0)
			p.lib.MeterUnit = rec.real8At(1)
		case RecBgnStr:
			st, err := p.parseStructure()
			if err != nil {
				return err
			}
			p.lib.Structures = append(p.lib.Structures, st)
		case RecEndLib:
			return nil
		default:
			p.warnf(rec.pos, "skipping library-level record %v", rec.typ)
		}
	}
}

func (p *parser) parseStructure() (*Structure, error) {
	name, err := p.expect(RecStrName)
	if err != nil {
		return nil, err
	}
	st := &Structure{Name: name.str()}
	for {
		rec, err := p.rr.next()
		if err != nil {
			return nil, fmt.Errorf("gdsii: inside structure %q: %w", st.Name, err)
		}
		switch rec.typ {
		case RecEndStr:
			return st, nil
		case RecBoundary:
			el, err := p.parseBoundary()
			if err != nil {
				return nil, err
			}
			st.Boundaries = append(st.Boundaries, el)
		case RecPath:
			el, err := p.parsePath()
			if err != nil {
				return nil, err
			}
			st.Paths = append(st.Paths, el)
		case RecSRef:
			el, err := p.parseSRef()
			if err != nil {
				return nil, err
			}
			st.SRefs = append(st.SRefs, el)
		case RecARef:
			el, err := p.parseARef()
			if err != nil {
				return nil, err
			}
			st.ARefs = append(st.ARefs, el)
		case RecText:
			el, err := p.parseText()
			if err != nil {
				return nil, err
			}
			st.Texts = append(st.Texts, el)
		case RecNode, RecBox:
			p.warnf(rec.pos, "skipping %v element in %q", rec.typ, st.Name)
			if err := p.skipElement(); err != nil {
				return nil, err
			}
		default:
			p.warnf(rec.pos, "skipping record %v in structure %q", rec.typ, st.Name)
		}
	}
}

// skipElement consumes records until ENDEL, for unsupported element kinds.
func (p *parser) skipElement() error {
	for {
		rec, err := p.rr.next()
		if err != nil {
			return err
		}
		if rec.typ == RecEndEl {
			return nil
		}
	}
}

// elementBody collects the common per-element records until ENDEL.
type elementBody struct {
	layer, dataType, textType int16
	pathType                  int16
	width                     int32
	xy                        []geom.Point
	trans                     Trans
	sname, text               string
	cols, rows                int16
	hasXY                     bool
}

// need guards the fixed-size record accessors: int16At/int32At/real8At
// index raw payload bytes, so a short record must be rejected before the
// access, not crash it (a fuzz-found failure mode on truncated files).
func need(rec record, n int) error {
	if len(rec.data) < n {
		return fmt.Errorf("gdsii: offset %d: %v record has %d payload bytes, need %d",
			rec.pos, rec.typ, len(rec.data), n)
	}
	return nil
}

func (p *parser) parseElementBody(kind string) (elementBody, error) {
	var b elementBody
	b.trans.Mag = 0
	for {
		rec, err := p.rr.next()
		if err != nil {
			return b, fmt.Errorf("gdsii: inside %s element: %w", kind, err)
		}
		switch rec.typ {
		case RecEndEl:
			if !b.hasXY {
				return b, fmt.Errorf("gdsii: offset %d: %s element without XY", rec.pos, kind)
			}
			return b, nil
		case RecLayer:
			if err := need(rec, 2); err != nil {
				return b, err
			}
			b.layer = rec.int16At(0)
		case RecDataType:
			if err := need(rec, 2); err != nil {
				return b, err
			}
			b.dataType = rec.int16At(0)
		case RecTextType:
			if err := need(rec, 2); err != nil {
				return b, err
			}
			b.textType = rec.int16At(0)
		case RecPathType:
			if err := need(rec, 2); err != nil {
				return b, err
			}
			b.pathType = rec.int16At(0)
		case RecWidth:
			if err := need(rec, 4); err != nil {
				return b, err
			}
			b.width = rec.int32At(0)
		case RecXY:
			b.xy = rec.points()
			b.hasXY = true
		case RecSName:
			b.sname = rec.str()
		case RecString:
			b.text = rec.str()
		case RecColRow:
			if err := need(rec, 4); err != nil {
				return b, err
			}
			b.cols = rec.int16At(0)
			b.rows = rec.int16At(1)
		case RecSTrans:
			if len(rec.data) >= 2 {
				flags := binary.BigEndian.Uint16(rec.data)
				b.trans.Reflect = flags&STransReflect != 0
				if flags&(STransAbsMag|STransAbsAngle) != 0 {
					p.warnf(rec.pos, "absolute magnification/angle flags ignored")
				}
			}
		case RecMag:
			if err := need(rec, 8); err != nil {
				return b, err
			}
			b.trans.Mag = rec.real8At(0)
		case RecAngle:
			if err := need(rec, 8); err != nil {
				return b, err
			}
			b.trans.AngleDeg = rec.real8At(0)
		case RecElFlags, RecPlex, RecPresentation, RecPropAttr, RecPropValue:
			// Legal but irrelevant to DRC; ignore silently.
		default:
			p.warnf(rec.pos, "skipping record %v in %s element", rec.typ, kind)
		}
	}
}

func (p *parser) parseBoundary() (Boundary, error) {
	b, err := p.parseElementBody("BOUNDARY")
	if err != nil {
		return Boundary{}, err
	}
	xy := b.xy
	if len(xy) >= 2 && xy[0] == xy[len(xy)-1] {
		xy = xy[:len(xy)-1] // strip the mandatory closing vertex
	}
	if len(xy) < 3 {
		return Boundary{}, fmt.Errorf("gdsii: BOUNDARY with %d distinct vertices", len(xy))
	}
	return Boundary{Layer: b.layer, DataType: b.dataType, XY: xy}, nil
}

func (p *parser) parsePath() (Path, error) {
	b, err := p.parseElementBody("PATH")
	if err != nil {
		return Path{}, err
	}
	if len(b.xy) < 2 {
		return Path{}, fmt.Errorf("gdsii: PATH with %d vertices", len(b.xy))
	}
	return Path{
		Layer: b.layer, DataType: b.dataType,
		PathType: PathType(b.pathType), Width: b.width, XY: b.xy,
	}, nil
}

func (p *parser) parseSRef() (SRef, error) {
	b, err := p.parseElementBody("SREF")
	if err != nil {
		return SRef{}, err
	}
	if b.sname == "" {
		return SRef{}, fmt.Errorf("gdsii: SREF without SNAME")
	}
	if len(b.xy) != 1 {
		return SRef{}, fmt.Errorf("gdsii: SREF with %d XY points, want 1", len(b.xy))
	}
	return SRef{Name: b.sname, Trans: b.trans, Pos: b.xy[0]}, nil
}

func (p *parser) parseARef() (ARef, error) {
	b, err := p.parseElementBody("AREF")
	if err != nil {
		return ARef{}, err
	}
	if b.sname == "" {
		return ARef{}, fmt.Errorf("gdsii: AREF without SNAME")
	}
	if len(b.xy) != 3 {
		return ARef{}, fmt.Errorf("gdsii: AREF with %d XY points, want 3", len(b.xy))
	}
	if b.cols <= 0 || b.rows <= 0 {
		return ARef{}, fmt.Errorf("gdsii: AREF with COLROW %dx%d", b.cols, b.rows)
	}
	return ARef{
		Name: b.sname, Trans: b.trans, Cols: b.cols, Rows: b.rows,
		Origin: b.xy[0], ColEnd: b.xy[1], RowEnd: b.xy[2],
	}, nil
}

func (p *parser) parseText() (Text, error) {
	b, err := p.parseElementBody("TEXT")
	if err != nil {
		return Text{}, err
	}
	if len(b.xy) < 1 {
		return Text{}, fmt.Errorf("gdsii: TEXT without position")
	}
	return Text{
		Layer: b.layer, TextType: b.textType,
		Pos: b.xy[0], Str: b.text, Trans: b.trans,
	}, nil
}
