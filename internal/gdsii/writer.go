package gdsii

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"opendrc/internal/geom"
)

// Writer emits a GDSII stream. Errors are latched: after the first failure
// every later call is a no-op and Flush returns the original error, so call
// sites can write straight-line code.
type Writer struct {
	bw  *bufio.Writer
	err error
	buf []byte
}

// NewWriter wraps w in a GDSII record writer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<16)}
}

// WriteLibrary serializes an entire library.
func (w *Writer) WriteLibrary(lib *Library) error {
	version := lib.Version
	if version == 0 {
		version = 600
	}
	w.record(RecHeader, DataInt16, i16(version))
	// BGNLIB carries 12 int16 timestamp fields (mod + access time); zeros
	// keep the output byte-deterministic, which the tests rely on.
	w.record(RecBgnLib, DataInt16, make([]byte, 24))
	w.record(RecLibName, DataString, padString(lib.Name))
	uu, mu := lib.UserUnit, lib.MeterUnit
	if uu == 0 {
		uu = 1e-3
	}
	if mu == 0 {
		mu = 1e-9
	}
	units := make([]byte, 0, 16)
	r1 := float64ToReal8(uu)
	r2 := float64ToReal8(mu)
	units = append(units, r1[:]...)
	units = append(units, r2[:]...)
	w.record(RecUnits, DataReal8, units)
	for _, st := range lib.Structures {
		w.writeStructure(st)
	}
	w.record(RecEndLib, DataNone, nil)
	return w.Flush()
}

// WriteFile serializes lib to the file at path.
func WriteFile(path string, lib *Library) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := NewWriter(f)
	if err := w.WriteLibrary(lib); err != nil {
		f.Close()
		return fmt.Errorf("gdsii: writing %s: %w", path, err)
	}
	return f.Close()
}

// Flush drains buffered output and returns any latched error.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}

func (w *Writer) writeStructure(st *Structure) {
	w.record(RecBgnStr, DataInt16, make([]byte, 24))
	w.record(RecStrName, DataString, padString(st.Name))
	for i := range st.Boundaries {
		w.writeBoundary(&st.Boundaries[i])
	}
	for i := range st.Paths {
		w.writePath(&st.Paths[i])
	}
	for i := range st.Texts {
		w.writeText(&st.Texts[i])
	}
	for i := range st.SRefs {
		w.writeSRef(&st.SRefs[i])
	}
	for i := range st.ARefs {
		w.writeARef(&st.ARefs[i])
	}
	w.record(RecEndStr, DataNone, nil)
}

func (w *Writer) writeBoundary(b *Boundary) {
	w.record(RecBoundary, DataNone, nil)
	w.record(RecLayer, DataInt16, i16(b.Layer))
	w.record(RecDataType, DataInt16, i16(b.DataType))
	// Re-add the closing vertex required by the format.
	ring := make([]geom.Point, 0, len(b.XY)+1)
	ring = append(ring, b.XY...)
	ring = append(ring, b.XY[0])
	w.record(RecXY, DataInt32, xyBytes(ring))
	w.record(RecEndEl, DataNone, nil)
}

func (w *Writer) writePath(p *Path) {
	w.record(RecPath, DataNone, nil)
	w.record(RecLayer, DataInt16, i16(p.Layer))
	w.record(RecDataType, DataInt16, i16(p.DataType))
	if p.PathType != PathFlush {
		w.record(RecPathType, DataInt16, i16(int16(p.PathType)))
	}
	w.record(RecWidth, DataInt32, i32(p.Width))
	w.record(RecXY, DataInt32, xyBytes(p.XY))
	w.record(RecEndEl, DataNone, nil)
}

func (w *Writer) writeText(t *Text) {
	w.record(RecText, DataNone, nil)
	w.record(RecLayer, DataInt16, i16(t.Layer))
	w.record(RecTextType, DataInt16, i16(t.TextType))
	w.writeTrans(t.Trans)
	w.record(RecXY, DataInt32, xyBytes([]geom.Point{t.Pos}))
	w.record(RecString, DataString, padString(t.Str))
	w.record(RecEndEl, DataNone, nil)
}

func (w *Writer) writeSRef(r *SRef) {
	w.record(RecSRef, DataNone, nil)
	w.record(RecSName, DataString, padString(r.Name))
	w.writeTrans(r.Trans)
	w.record(RecXY, DataInt32, xyBytes([]geom.Point{r.Pos}))
	w.record(RecEndEl, DataNone, nil)
}

func (w *Writer) writeARef(r *ARef) {
	w.record(RecARef, DataNone, nil)
	w.record(RecSName, DataString, padString(r.Name))
	w.writeTrans(r.Trans)
	colrow := make([]byte, 4)
	binary.BigEndian.PutUint16(colrow[0:], uint16(r.Cols))
	binary.BigEndian.PutUint16(colrow[2:], uint16(r.Rows))
	w.record(RecColRow, DataInt16, colrow)
	w.record(RecXY, DataInt32, xyBytes([]geom.Point{r.Origin, r.ColEnd, r.RowEnd}))
	w.record(RecEndEl, DataNone, nil)
}

func (w *Writer) writeTrans(t Trans) {
	if t.Reflect || t.Mag != 0 || t.AngleDeg != 0 {
		var flags uint16
		if t.Reflect {
			flags |= STransReflect
		}
		b := make([]byte, 2)
		binary.BigEndian.PutUint16(b, flags)
		w.record(RecSTrans, DataBitArray, b)
		if t.Mag != 0 && t.Mag != 1 {
			r := float64ToReal8(t.Mag)
			w.record(RecMag, DataReal8, r[:])
		}
		if t.AngleDeg != 0 {
			r := float64ToReal8(t.AngleDeg)
			w.record(RecAngle, DataReal8, r[:])
		}
	}
}

// record writes one record, enforcing the 16-bit length limit. Oversized XY
// payloads must be split by the caller; the synthesizer keeps polygons far
// below the limit, so hitting it indicates a bug and is reported as one.
func (w *Writer) record(typ RecordType, dt DataType, data []byte) {
	if w.err != nil {
		return
	}
	if len(data) > maxRecordPayload {
		w.err = fmt.Errorf("gdsii: %v record payload %d exceeds format limit", typ, len(data))
		return
	}
	var hdr [4]byte
	binary.BigEndian.PutUint16(hdr[0:2], uint16(len(data)+4))
	hdr[2] = byte(typ)
	hdr[3] = byte(dt)
	if _, err := w.bw.Write(hdr[:]); err != nil {
		w.err = err
		return
	}
	if len(data) > 0 {
		if _, err := w.bw.Write(data); err != nil {
			w.err = err
		}
	}
}

func i16(v int16) []byte {
	b := make([]byte, 2)
	binary.BigEndian.PutUint16(b, uint16(v))
	return b
}

func i32(v int32) []byte {
	b := make([]byte, 4)
	binary.BigEndian.PutUint32(b, uint32(v))
	return b
}

// padString NUL-pads s to even length per the GDSII string encoding.
func padString(s string) []byte {
	b := []byte(s)
	if len(b)%2 == 1 {
		b = append(b, 0)
	}
	return b
}

// xyBytes encodes points as big-endian int32 pairs, validating range.
func xyBytes(pts []geom.Point) []byte {
	out := make([]byte, 8*len(pts))
	for i, p := range pts {
		binary.BigEndian.PutUint32(out[8*i:], uint32(int32(p.X)))
		binary.BigEndian.PutUint32(out[8*i+4:], uint32(int32(p.Y)))
	}
	return out
}
