package gdsii

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"opendrc/internal/geom"
)

func sampleLibrary() *Library {
	return &Library{
		Version:   600,
		Name:      "testlib",
		UserUnit:  1e-3,
		MeterUnit: 1e-9,
		Structures: []*Structure{
			{
				Name: "INV_X1",
				Boundaries: []Boundary{
					{Layer: 1, DataType: 0, XY: []geom.Point{
						geom.Pt(0, 0), geom.Pt(0, 100), geom.Pt(50, 100), geom.Pt(50, 0),
					}},
					{Layer: 2, DataType: 0, XY: []geom.Point{
						geom.Pt(10, 10), geom.Pt(10, 90), geom.Pt(40, 90), geom.Pt(40, 10),
					}},
				},
				Paths: []Path{
					{Layer: 3, Width: 20, PathType: PathExtended, XY: []geom.Point{
						geom.Pt(0, 50), geom.Pt(200, 50),
					}},
				},
				Texts: []Text{
					{Layer: 20, TextType: 0, Pos: geom.Pt(25, 50), Str: "inv"},
				},
			},
			{
				Name: "TOP",
				SRefs: []SRef{
					{Name: "INV_X1", Pos: geom.Pt(1000, 0)},
					{Name: "INV_X1", Pos: geom.Pt(2000, 0), Trans: Trans{Reflect: true, AngleDeg: 180}},
					{Name: "INV_X1", Pos: geom.Pt(3000, 0), Trans: Trans{Mag: 2, AngleDeg: 90}},
				},
				ARefs: []ARef{
					{
						Name: "INV_X1", Cols: 4, Rows: 2,
						Origin: geom.Pt(0, 5000),
						ColEnd: geom.Pt(4*60, 5000),
						RowEnd: geom.Pt(0, 5000+2*110),
					},
				},
			},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	lib := sampleLibrary()
	var buf bytes.Buffer
	if err := NewWriter(&buf).WriteLibrary(lib); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(got.Warnings) != 0 {
		t.Errorf("unexpected warnings: %v", got.Warnings)
	}
	if got.Name != "testlib" || got.Version != 600 {
		t.Errorf("header: name=%q version=%d", got.Name, got.Version)
	}
	if math.Abs(got.UserUnit-1e-3) > 1e-12 || math.Abs(got.MeterUnit-1e-9) > 1e-18 {
		t.Errorf("units: %g %g", got.UserUnit, got.MeterUnit)
	}
	if len(got.Structures) != 2 {
		t.Fatalf("structures = %d", len(got.Structures))
	}
	inv := got.FindStructure("INV_X1")
	if inv == nil {
		t.Fatal("INV_X1 missing")
	}
	if len(inv.Boundaries) != 2 || len(inv.Paths) != 1 || len(inv.Texts) != 1 {
		t.Fatalf("INV_X1 elements: %d boundaries, %d paths, %d texts",
			len(inv.Boundaries), len(inv.Paths), len(inv.Texts))
	}
	if len(inv.Boundaries[0].XY) != 4 {
		t.Errorf("closing vertex not stripped: %d points", len(inv.Boundaries[0].XY))
	}
	if inv.Paths[0].PathType != PathExtended || inv.Paths[0].Width != 20 {
		t.Errorf("path attrs: %+v", inv.Paths[0])
	}
	if inv.Texts[0].Str != "inv" {
		t.Errorf("text = %q", inv.Texts[0].Str)
	}
	top := got.FindStructure("TOP")
	if top == nil || len(top.SRefs) != 3 || len(top.ARefs) != 1 {
		t.Fatalf("TOP refs wrong: %+v", top)
	}
	if !top.SRefs[1].Trans.Reflect || top.SRefs[1].Trans.AngleDeg != 180 {
		t.Errorf("sref[1] trans = %+v", top.SRefs[1].Trans)
	}
	if top.SRefs[2].Trans.Mag != 2 || top.SRefs[2].Trans.AngleDeg != 90 {
		t.Errorf("sref[2] trans = %+v", top.SRefs[2].Trans)
	}
	ar := top.ARefs[0]
	if ar.Cols != 4 || ar.Rows != 2 || ar.Origin != geom.Pt(0, 5000) {
		t.Errorf("aref = %+v", ar)
	}
}

func TestRoundTripDeterministic(t *testing.T) {
	lib := sampleLibrary()
	var a, b bytes.Buffer
	if err := NewWriter(&a).WriteLibrary(lib); err != nil {
		t.Fatal(err)
	}
	if err := NewWriter(&b).WriteLibrary(lib); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("writer output not deterministic")
	}
	// Second round trip must be byte-identical (write→read→write).
	got, err := Read(&a)
	if err != nil {
		t.Fatal(err)
	}
	var c bytes.Buffer
	if err := NewWriter(&c).WriteLibrary(got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Bytes(), c.Bytes()) {
		t.Error("write→read→write changed bytes")
	}
}

func TestReadWriteFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lib.gds")
	if err := WriteFile(path, sampleLibrary()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "testlib" {
		t.Errorf("name = %q", got.Name)
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.gds")); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestReal8RoundTrip(t *testing.T) {
	values := []float64{0, 1, -1, 1e-3, 1e-9, 2, 0.5, 90, 180, 270, 3.14159,
		1e6, -1e6, 1.0 / 3.0, 16, 1.0 / 16, 255.75}
	for _, v := range values {
		got := real8ToFloat64(float64ToReal8(v))
		if v == 0 {
			if got != 0 {
				t.Errorf("real8(0) = %g", got)
			}
			continue
		}
		if math.Abs(got-v)/math.Abs(v) > 1e-14 {
			t.Errorf("real8 round trip %g -> %g", v, got)
		}
	}
}

func TestReal8Property(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		// Restrict to the representable exponent range of the format.
		if v != 0 && (math.Abs(v) > 1e70 || math.Abs(v) < 1e-70) {
			return true
		}
		got := real8ToFloat64(float64ToReal8(v))
		if v == 0 {
			return got == 0
		}
		return math.Abs(got-v)/math.Abs(v) < 1e-13
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestTransOrient(t *testing.T) {
	cases := []struct {
		tr   Trans
		want geom.Orient
	}{
		{Trans{}, geom.R0},
		{Trans{AngleDeg: 90}, geom.R90},
		{Trans{AngleDeg: 180}, geom.R180},
		{Trans{AngleDeg: 270}, geom.R270},
		{Trans{AngleDeg: 360}, geom.R0},
		{Trans{Reflect: true}, geom.MXR0},
		{Trans{Reflect: true, AngleDeg: 90}, geom.MXR90},
	}
	for _, c := range cases {
		got, err := c.tr.Orient()
		if err != nil || got != c.want {
			t.Errorf("Orient(%+v) = %v, %v; want %v", c.tr, got, err, c.want)
		}
	}
	if _, err := (Trans{AngleDeg: 45}).Orient(); err == nil {
		t.Error("expected error for 45° rotation")
	}
	if _, err := (Trans{Mag: 1.5}).Magnification(); err == nil {
		t.Error("expected error for fractional magnification")
	}
	if m, err := (Trans{}).Magnification(); err != nil || m != 1 {
		t.Errorf("default magnification = %d, %v", m, err)
	}
}

func TestTopStructures(t *testing.T) {
	lib := sampleLibrary()
	tops := lib.TopStructures()
	if len(tops) != 1 || tops[0].Name != "TOP" {
		t.Errorf("tops = %v", tops)
	}
}

func TestTruncatedStream(t *testing.T) {
	lib := sampleLibrary()
	var buf bytes.Buffer
	if err := NewWriter(&buf).WriteLibrary(lib); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{1, 3, 10, len(full) / 2, len(full) - 2} {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("expected error reading stream truncated at %d", cut)
		}
	}
}

func TestGarbageStream(t *testing.T) {
	if _, err := Read(strings.NewReader("this is not gdsii at all......")); err == nil {
		t.Error("expected error for garbage input")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("expected error for empty input")
	}
	// A record claiming length < 4 is structurally invalid.
	bad := []byte{0x00, 0x02, 0x00, 0x02} // len=2 HEADER
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("expected error for invalid record length")
	}
}

func TestUnknownRecordsSkipped(t *testing.T) {
	lib := sampleLibrary()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	// Hand-build a library with an unknown library-level record injected.
	w.record(RecHeader, DataInt16, i16(600))
	w.record(RecBgnLib, DataInt16, make([]byte, 24))
	w.record(RecLibName, DataString, padString("x"))
	w.record(RecordType(0x7E), DataNone, nil) // vendor extension
	units := make([]byte, 0, 16)
	r1 := float64ToReal8(1e-3)
	r2 := float64ToReal8(1e-9)
	units = append(units, r1[:]...)
	units = append(units, r2[:]...)
	w.record(RecUnits, DataReal8, units)
	w.writeStructure(lib.Structures[0])
	w.record(RecEndLib, DataNone, nil)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("read with unknown record: %v", err)
	}
	if len(got.Warnings) == 0 {
		t.Error("expected a warning for the unknown record")
	}
	if len(got.Structures) != 1 {
		t.Errorf("structures = %d", len(got.Structures))
	}
}

func TestElementValidation(t *testing.T) {
	// SREF without SNAME must fail.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.record(RecHeader, DataInt16, i16(600))
	w.record(RecBgnLib, DataInt16, make([]byte, 24))
	w.record(RecLibName, DataString, padString("x"))
	w.record(RecBgnStr, DataInt16, make([]byte, 24))
	w.record(RecStrName, DataString, padString("S"))
	w.record(RecSRef, DataNone, nil)
	w.record(RecXY, DataInt32, xyBytes([]geom.Point{geom.Pt(0, 0)}))
	w.record(RecEndEl, DataNone, nil)
	w.record(RecEndStr, DataNone, nil)
	w.record(RecEndLib, DataNone, nil)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Error("expected error for SREF without SNAME")
	}
}

func TestStructureNumElements(t *testing.T) {
	lib := sampleLibrary()
	if got := lib.Structures[0].NumElements(); got != 4 {
		t.Errorf("INV_X1 elements = %d, want 4", got)
	}
	if got := lib.Structures[1].NumElements(); got != 4 {
		t.Errorf("TOP elements = %d, want 4", got)
	}
}

func TestPathRoundTripAllEndStyles(t *testing.T) {
	xy := []geom.Point{geom.Pt(0, 0), geom.Pt(100, 0)}
	for _, pt := range []PathType{PathRound, PathExtended, PathFlush} {
		lib := &Library{
			Name: "p", UserUnit: 1e-3, MeterUnit: 1e-9,
			Structures: []*Structure{{
				Name:  "T",
				Paths: []Path{{Layer: 3, Width: 20, PathType: pt, XY: xy}},
			}},
		}
		var buf bytes.Buffer
		if err := NewWriter(&buf).WriteLibrary(lib); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Structures[0].Paths[0].PathType != pt {
			t.Errorf("path type %v round-tripped as %v", pt, got.Structures[0].Paths[0].PathType)
		}
	}
}

func TestTextWithTransformRoundTrip(t *testing.T) {
	lib := &Library{
		Name: "t", UserUnit: 1e-3, MeterUnit: 1e-9,
		Structures: []*Structure{{
			Name: "T",
			Texts: []Text{{
				Layer: 20, Pos: geom.Pt(5, 7), Str: "net0",
				Trans: Trans{Reflect: true, AngleDeg: 90, Mag: 2},
			}},
		}},
	}
	var buf bytes.Buffer
	if err := NewWriter(&buf).WriteLibrary(lib); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tx := got.Structures[0].Texts[0]
	if !tx.Trans.Reflect || tx.Trans.AngleDeg != 90 || tx.Trans.Mag != 2 {
		t.Errorf("text trans = %+v", tx.Trans)
	}
}

func TestOversizedRecordRejected(t *testing.T) {
	// A boundary with enough vertices to overflow the 16-bit record length
	// must fail loudly at write time, not emit a corrupt stream.
	pts := make([]geom.Point, 9000)
	for i := range pts {
		pts[i] = geom.Pt(int64(i), int64(i%2))
	}
	lib := &Library{
		Name: "big",
		Structures: []*Structure{{
			Name:       "T",
			Boundaries: []Boundary{{Layer: 1, XY: pts}},
		}},
	}
	var buf bytes.Buffer
	if err := NewWriter(&buf).WriteLibrary(lib); err == nil {
		t.Error("oversized XY record accepted")
	}
}
