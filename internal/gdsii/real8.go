package gdsii

import "math"

// GDSII reals use the legacy IBM/Calma excess-64 base-16 format rather than
// IEEE 754: one sign bit, a 7-bit exponent biased by 64 (power of 16), and a
// 56-bit fraction representing a mantissa in [1/16, 1).

// float64ToReal8 encodes v into the 8-byte GDSII real representation.
func float64ToReal8(v float64) [8]byte {
	var out [8]byte
	if v == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return out
	}
	sign := byte(0)
	if v < 0 {
		sign = 0x80
		v = -v
	}
	// Find exponent e with v = m * 16^(e-64), m in [1/16, 1).
	exp := 64
	for v >= 1 {
		v /= 16
		exp++
	}
	for v < 1.0/16 {
		v *= 16
		exp--
	}
	if exp < 0 {
		return out // underflow to zero
	}
	if exp > 127 {
		exp = 127
		v = 1 - math.Pow(2, -56) // saturate
	}
	mant := uint64(v * math.Pow(2, 56)) // 56-bit fraction
	out[0] = sign | byte(exp)
	for i := 7; i >= 1; i-- {
		out[i] = byte(mant)
		mant >>= 8
	}
	return out
}

// real8ToFloat64 decodes the 8-byte GDSII real representation.
func real8ToFloat64(b [8]byte) float64 {
	exp := int(b[0] & 0x7F)
	var mant uint64
	for i := 1; i < 8; i++ {
		mant = mant<<8 | uint64(b[i])
	}
	if mant == 0 {
		return 0
	}
	v := float64(mant) * math.Pow(2, -56) * math.Pow(16, float64(exp-64))
	if b[0]&0x80 != 0 {
		v = -v
	}
	return v
}
