package gdsii

import (
	"bytes"
	"testing"

	"opendrc/internal/faults"
)

// sampleBytes serializes the shared sample library — the seed everything in
// this file mutates.
func sampleBytes(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := NewWriter(&buf).WriteLibrary(sampleLibrary()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadLibrary feeds arbitrary byte streams to the GDSII reader. The
// property under fuzz: Read never panics and never hangs — every input
// yields a library or an error. When a library parses, it must survive a
// write/re-read round trip, so a fuzz-found input can never crash the
// serialization path either. (The layout build is covered by the facade's
// tests; importing internal/layout here would create an import cycle.)
func FuzzReadLibrary(f *testing.F) {
	full := sampleBytes(f)
	f.Add(full)
	// Truncations at structurally interesting offsets: inside the header,
	// at a record boundary, mid-record, just before ENDLIB.
	for _, cut := range []int{0, 1, 2, 4, 10, len(full) / 4, len(full) / 2, len(full) - 2} {
		f.Add(append([]byte(nil), full[:cut]...))
	}
	// A few deterministic single-byte corruptions of the valid stream.
	for _, pos := range []int{2, 7, 19, len(full) / 3, 2 * len(full) / 3} {
		mut := append([]byte(nil), full...)
		mut[pos] ^= 0xFF
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		lib, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := NewWriter(&buf).WriteLibrary(lib); err != nil {
			t.Fatalf("re-write of parsed library failed: %v", err)
		}
		if _, err := Read(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("re-read of re-written library failed: %v", err)
		}
	})
}

// TestTruncatedReadsEveryByte cuts the valid stream at every byte offset
// through the fault harness's TruncateReader: each prefix must produce a
// clean error (or, for prefixes reaching ENDLIB, a library) — never a panic
// or a hang. This is the chaos-suite version of TestTruncatedStream.
func TestTruncatedReadsEveryByte(t *testing.T) {
	full := sampleBytes(t)
	for cut := 0; cut < len(full); cut++ {
		r := faults.TruncateReader(bytes.NewReader(full), int64(cut))
		lib, err := Read(r)
		if err == nil && lib == nil {
			t.Fatalf("cut=%d: no error and no library", cut)
		}
	}
	// The whole stream still parses through the (non-truncating) reader.
	if _, err := Read(faults.TruncateReader(bytes.NewReader(full), int64(len(full)))); err != nil {
		t.Fatalf("full stream through TruncateReader: %v", err)
	}
}
