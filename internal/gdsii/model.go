package gdsii

import (
	"fmt"

	"opendrc/internal/geom"
)

// Library is a parsed GDSII library: the syntax's
// ⟨libheader⟩ {⟨structure⟩}* ENDLIB.
type Library struct {
	Version   int16
	Name      string
	UserUnit  float64 // size of one database unit in user units
	MeterUnit float64 // size of one database unit in meters

	Structures []*Structure

	// Warnings collects non-fatal reader diagnostics (skipped records,
	// unsupported STRANS flags), position-tagged for debugging.
	Warnings []string
}

// Structure is a GDSII structure ("cell"): a named list of elements.
type Structure struct {
	Name       string
	Boundaries []Boundary
	Paths      []Path
	Texts      []Text
	SRefs      []SRef
	ARefs      []ARef
}

// NumElements returns the total element count of the structure.
func (s *Structure) NumElements() int {
	return len(s.Boundaries) + len(s.Paths) + len(s.Texts) + len(s.SRefs) + len(s.ARefs)
}

// Boundary is a filled polygon on a layer. XY holds the open ring (the
// GDSII closing vertex is stripped on read and re-added on write).
type Boundary struct {
	Layer    int16
	DataType int16
	XY       []geom.Point
}

// PathType codes the GDSII path end style.
type PathType int16

// Path end styles.
const (
	PathFlush    PathType = 0 // square ends flush with endpoints
	PathRound    PathType = 1 // round ends (approximated as extended squares by the expander)
	PathExtended PathType = 2 // square ends extended by half width
)

// Path is a wire: a centerline with a width, expanded to a polygon by the
// layout builder.
type Path struct {
	Layer    int16
	DataType int16
	PathType PathType
	Width    int32
	XY       []geom.Point
}

// Text is an annotation element. DRC rules may reference it through
// user-defined predicates (the paper's non-empty-name rule on layer 20).
type Text struct {
	Layer    int16
	TextType int16
	Pos      geom.Point
	Str      string
	Trans    Trans
}

// Trans is the STRANS/MAG/ANGLE triple attached to references and texts.
type Trans struct {
	Reflect  bool
	Mag      float64 // 0 means unset (=1.0)
	AngleDeg float64 // counterclockwise degrees; multiples of 90 required downstream
}

// SRef instantiates another structure at a position with a transform — the
// ⟨SREF⟩ construct that makes the format hierarchical.
type SRef struct {
	Name  string
	Trans Trans
	Pos   geom.Point
}

// ARef instantiates a Cols × Rows array of a structure. Per the GDSII spec
// the three XY points are the array origin, the point such that
// (X2-X1)/Cols is the column step, and the point such that (Y3-Y1)/Rows is
// the row step (both after transform).
type ARef struct {
	Name       string
	Trans      Trans
	Cols, Rows int16
	Origin     geom.Point
	ColEnd     geom.Point // origin + Cols * colStep
	RowEnd     geom.Point // origin + Rows * rowStep
}

// Orient converts the Trans rotation/reflection pair into a geom.Orient.
// Only multiples of 90° are representable; other angles return an error
// (OpenDRC requires rectilinear layouts, as does the paper's evaluation).
func (t Trans) Orient() (geom.Orient, error) {
	deg := int(t.AngleDeg)
	if float64(deg) != t.AngleDeg || ((deg % 90) != 0) {
		return geom.R0, fmt.Errorf("gdsii: non-rectilinear ANGLE %v", t.AngleDeg)
	}
	rot := geom.Orient(((deg % 360) + 360) % 360 / 90)
	if t.Reflect {
		return geom.MXR0 + rot, nil
	}
	return rot, nil
}

// Magnification returns the integral magnification, validating that the
// stored MAG is a positive integer (or unset).
func (t Trans) Magnification() (int64, error) {
	if t.Mag == 0 {
		return 1, nil
	}
	m := int64(t.Mag)
	if float64(m) != t.Mag || m < 1 {
		return 0, fmt.Errorf("gdsii: non-integral MAG %v", t.Mag)
	}
	return m, nil
}

// Transform builds the geom.Transform for a reference placed at pos.
func (t Trans) Transform(pos geom.Point) (geom.Transform, error) {
	o, err := t.Orient()
	if err != nil {
		return geom.Transform{}, err
	}
	m, err := t.Magnification()
	if err != nil {
		return geom.Transform{}, err
	}
	return geom.Transform{Orient: o, Mag: m, Offset: pos}, nil
}

// FindStructure returns the structure with the given name, or nil.
func (l *Library) FindStructure(name string) *Structure {
	for _, s := range l.Structures {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// TopStructures returns the structures that are not referenced by any other
// structure — the hierarchy roots.
func (l *Library) TopStructures() []*Structure {
	referenced := make(map[string]bool)
	for _, s := range l.Structures {
		for _, r := range s.SRefs {
			referenced[r.Name] = true
		}
		for _, r := range s.ARefs {
			referenced[r.Name] = true
		}
	}
	var tops []*Structure
	for _, s := range l.Structures {
		if !referenced[s.Name] {
			tops = append(tops, s)
		}
	}
	return tops
}
