// Package gdsii implements a reader and writer for the binary GDSII stream
// format (the Calma stream syntax sketched in the paper's Backus–Naur
// fragment): a library of structures, each structure a list of elements
// (BOUNDARY, PATH, SREF, AREF, TEXT), with recursive structure references
// building the layout hierarchy. The subset implemented covers everything a
// DRC engine consumes; unknown records are skipped with position-tagged
// warnings rather than errors, matching how production readers treat vendor
// extensions.
package gdsii

import "fmt"

// RecordType identifies a GDSII record.
type RecordType uint8

// GDSII record types (the subset a DRC reader needs, plus the common ones we
// must at least skip gracefully).
const (
	RecHeader       RecordType = 0x00
	RecBgnLib       RecordType = 0x01
	RecLibName      RecordType = 0x02
	RecUnits        RecordType = 0x03
	RecEndLib       RecordType = 0x04
	RecBgnStr       RecordType = 0x05
	RecStrName      RecordType = 0x06
	RecEndStr       RecordType = 0x07
	RecBoundary     RecordType = 0x08
	RecPath         RecordType = 0x09
	RecSRef         RecordType = 0x0A
	RecARef         RecordType = 0x0B
	RecText         RecordType = 0x0C
	RecLayer        RecordType = 0x0D
	RecDataType     RecordType = 0x0E
	RecWidth        RecordType = 0x0F
	RecXY           RecordType = 0x10
	RecEndEl        RecordType = 0x11
	RecSName        RecordType = 0x12
	RecColRow       RecordType = 0x13
	RecNode         RecordType = 0x15
	RecTextType     RecordType = 0x16
	RecPresentation RecordType = 0x17
	RecString       RecordType = 0x19
	RecSTrans       RecordType = 0x1A
	RecMag          RecordType = 0x1B
	RecAngle        RecordType = 0x1C
	RecRefLibs      RecordType = 0x1F
	RecFonts        RecordType = 0x20
	RecPathType     RecordType = 0x21
	RecGenerations  RecordType = 0x22
	RecAttrTable    RecordType = 0x23
	RecElFlags      RecordType = 0x26
	RecNodeType     RecordType = 0x2A
	RecPropAttr     RecordType = 0x2B
	RecPropValue    RecordType = 0x2C
	RecBox          RecordType = 0x2D
	RecBoxType      RecordType = 0x2E
	RecPlex         RecordType = 0x2F
)

var recordNames = map[RecordType]string{
	RecHeader: "HEADER", RecBgnLib: "BGNLIB", RecLibName: "LIBNAME",
	RecUnits: "UNITS", RecEndLib: "ENDLIB", RecBgnStr: "BGNSTR",
	RecStrName: "STRNAME", RecEndStr: "ENDSTR", RecBoundary: "BOUNDARY",
	RecPath: "PATH", RecSRef: "SREF", RecARef: "AREF", RecText: "TEXT",
	RecLayer: "LAYER", RecDataType: "DATATYPE", RecWidth: "WIDTH",
	RecXY: "XY", RecEndEl: "ENDEL", RecSName: "SNAME", RecColRow: "COLROW",
	RecNode: "NODE", RecTextType: "TEXTTYPE", RecPresentation: "PRESENTATION",
	RecString: "STRING", RecSTrans: "STRANS", RecMag: "MAG", RecAngle: "ANGLE",
	RecPathType: "PATHTYPE", RecElFlags: "ELFLAGS", RecPropAttr: "PROPATTR",
	RecPropValue: "PROPVALUE", RecBox: "BOX", RecBoxType: "BOXTYPE", RecPlex: "PLEX",
}

// String implements fmt.Stringer.
func (r RecordType) String() string {
	if s, ok := recordNames[r]; ok {
		return s
	}
	return fmt.Sprintf("REC_%02X", uint8(r))
}

// DataType identifies the payload encoding of a record.
type DataType uint8

// GDSII data type codes.
const (
	DataNone     DataType = 0x00
	DataBitArray DataType = 0x01
	DataInt16    DataType = 0x02
	DataInt32    DataType = 0x03
	DataReal4    DataType = 0x04
	DataReal8    DataType = 0x05
	DataString   DataType = 0x06
)

// expectedDataType returns the payload type a conforming writer uses for the
// record, for validation on read.
func expectedDataType(r RecordType) (DataType, bool) {
	switch r {
	case RecHeader, RecBgnLib, RecBgnStr, RecLayer, RecDataType, RecTextType,
		RecColRow, RecPathType, RecGenerations, RecNodeType, RecPropAttr, RecBoxType:
		return DataInt16, true
	case RecWidth, RecXY, RecPlex:
		return DataInt32, true
	case RecUnits, RecMag, RecAngle:
		return DataReal8, true
	case RecLibName, RecStrName, RecSName, RecString, RecRefLibs, RecFonts,
		RecAttrTable, RecPropValue:
		return DataString, true
	case RecEndLib, RecEndStr, RecBoundary, RecPath, RecSRef, RecARef, RecText,
		RecEndEl, RecNode, RecBox:
		return DataNone, true
	case RecSTrans, RecPresentation, RecElFlags:
		return DataBitArray, true
	}
	return DataNone, false
}

// STRANS flag bits (in the 16-bit STRANS word).
const (
	STransReflect    = 0x8000 // reflection about the x-axis before rotation
	STransAbsMag     = 0x0004 // absolute magnification (unsupported; warned)
	STransAbsAngle   = 0x0002 // absolute angle (unsupported; warned)
	maxRecordPayload = 0xFFFF - 4
)
