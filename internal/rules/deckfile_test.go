package rules

import (
	"bytes"
	"strings"
	"testing"

	"opendrc/internal/layout"
)

const sampleDeck = `
# BEOL evaluation deck
layer M1 19
layer M2 20
layer V1 21

rule M1.W.1     width       M1      18
rule M1.S.1     spacing     M1      18
rule M2.S.2     spacing     M2      20  prl 100 26
rule M1.A.1     area        M1      500
rule M1.RECT.1  rectilinear M1
rule V1.EN.1    enclosure   V1  M1  5
rule V1.COV.1   coverage    V1  M1
rule V1.OV.1    overlap     V1  M1  300
rule L30.W.1    width       30      24   # numeric layer reference
`

func TestParseDeck(t *testing.T) {
	deck, err := ParseDeck(strings.NewReader(sampleDeck))
	if err != nil {
		t.Fatal(err)
	}
	if len(deck) != 9 {
		t.Fatalf("rules = %d", len(deck))
	}
	byID := map[string]Rule{}
	for _, r := range deck {
		byID[r.ID] = r
	}
	if r := byID["M1.W.1"]; r.Kind != Width || r.Layer != layout.LayerM1 || r.Min != 18 {
		t.Errorf("M1.W.1 = %+v", r)
	}
	if r := byID["M2.S.2"]; r.Kind != Spacing || r.PRLLength != 100 || r.PRLMin != 26 {
		t.Errorf("M2.S.2 = %+v", r)
	}
	if r := byID["V1.EN.1"]; r.Kind != Enclosure || r.Outer != layout.LayerM1 || r.Min != 5 {
		t.Errorf("V1.EN.1 = %+v", r)
	}
	if r := byID["V1.COV.1"]; r.Kind != Coverage || r.Outer != layout.LayerM1 {
		t.Errorf("V1.COV.1 = %+v", r)
	}
	if r := byID["V1.OV.1"]; r.Kind != MinOverlap || r.Min != 300 {
		t.Errorf("V1.OV.1 = %+v", r)
	}
	if r := byID["L30.W.1"]; r.Layer != layout.Layer(30) || r.Min != 24 {
		t.Errorf("L30.W.1 = %+v", r)
	}
}

func TestParseDeckErrors(t *testing.T) {
	bad := []string{
		"bogus directive",
		"layer M1",                       // missing number
		"layer M1 notanumber",            // bad number
		"rule X width",                   // missing layer
		"rule X width M9 18",             // undeclared symbolic layer
		"rule X width 19",                // missing value
		"rule X frobnicate 19 18",        // unknown kind
		"rule X width 19 18 extra",       // trailing tokens
		"rule X enclosure 21",            // missing outer
		"rule X enclosure 21 19",         // missing value
		"rule X width 19 18 prl 100 24",  // prl on width
		"rule X spacing 19 18 prl 10 10", // PRLMin <= Min (validation)
		"rule X width 19 0",              // invalid minimum (validation)
	}
	for _, in := range bad {
		if _, err := ParseDeck(strings.NewReader(in)); err == nil {
			t.Errorf("accepted bad deck line %q", in)
		}
	}
}

func TestParseDeckDuplicateRule(t *testing.T) {
	dup := `
layer M1 19
layer M2 20
rule M1.W.1 width M1 18
rule M1.W.2 width M1 24
`
	_, err := ParseDeck(strings.NewReader(dup))
	if err == nil {
		t.Fatal("accepted deck with two width rules on the same layer")
	}
	if !strings.Contains(err.Error(), "duplicates") {
		t.Errorf("error does not name the duplicate: %v", err)
	}

	// Same kind on different layers, different layer pairs, or different
	// PRL conditions are all legitimate.
	ok := `
layer M1 19
layer M2 20
layer V1 21
rule M1.W.1 width M1 18
rule M2.W.1 width M2 20
rule M1.S.1 spacing M1 18
rule M1.S.2 spacing M1 20 prl 100 26
rule V1.EN.1 enclosure V1 M1 5
rule V1.EN.2 enclosure V1 M2 6
`
	if _, err := ParseDeck(strings.NewReader(ok)); err != nil {
		t.Errorf("rejected legitimate deck: %v", err)
	}
}

func TestDeckRoundTrip(t *testing.T) {
	deck, err := ParseDeck(strings.NewReader(sampleDeck))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDeck(&buf, deck); err != nil {
		t.Fatal(err)
	}
	again, err := ParseDeck(&buf)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, buf.String())
	}
	if len(again) != len(deck) {
		t.Fatalf("round trip lost rules: %d vs %d", len(again), len(deck))
	}
	for i := range deck {
		a, b := deck[i], again[i]
		if a.ID != b.ID || a.Kind != b.Kind || a.Layer != b.Layer ||
			a.Outer != b.Outer || a.Min != b.Min ||
			a.PRLLength != b.PRLLength || a.PRLMin != b.PRLMin {
			t.Errorf("rule %d changed: %+v vs %+v", i, a, b)
		}
	}
}

func TestWriteDeckCustomSkipped(t *testing.T) {
	deck := Deck{
		Layer(20).Polygons().Ensure("named", func(Obj) bool { return true }).Named("X"),
	}
	var buf bytes.Buffer
	if err := WriteDeck(&buf, deck); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# custom rule X") {
		t.Errorf("custom rule not commented: %q", buf.String())
	}
	if _, err := ParseDeck(&buf); err != nil {
		t.Errorf("comment line broke re-parse: %v", err)
	}
}
