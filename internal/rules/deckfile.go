package rules

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"opendrc/internal/layout"
)

// ParseDeck reads a rule deck from the simple line-oriented text format the
// interface layer accepts ("reading design files, defining rule decks"):
//
//	# comment
//	layer M1 19                      # symbolic layer name -> GDS number
//	rule M1.W.1     width       M1        18
//	rule M1.S.1     spacing     M1        18
//	rule M1.S.2     spacing     M1        18  prl 100 24
//	rule M1.A.1     area        M1        500
//	rule M1.RECT.1  rectilinear M1
//	rule V1.EN.1    enclosure   V1  M1    5
//	rule V1.COV.1   coverage    V1  M1
//	rule V1.OV.1    overlap     V1  M1    350
//
// Layers may be referenced by declared symbolic names or directly by GDS
// layer number. Custom (ensures) rules cannot be expressed in a file; they
// are Go callables added through the API.
func ParseDeck(r io.Reader) (Deck, error) {
	var deck Deck
	names := map[string]layout.Layer{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		fail := func(format string, args ...any) (Deck, error) {
			return nil, fmt.Errorf("deck line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "layer":
			if len(fields) != 3 {
				return fail("layer needs: layer <name> <gds-number>")
			}
			n, err := strconv.ParseInt(fields[2], 10, 16)
			if err != nil {
				return fail("bad layer number %q", fields[2])
			}
			names[fields[1]] = layout.Layer(n)
		case "rule":
			if len(fields) < 4 {
				return fail("rule needs: rule <id> <kind> <layer> ...")
			}
			rule, err := parseRule(fields[1:], names)
			if err != nil {
				return fail("%v", err)
			}
			deck = append(deck, rule)
		default:
			return fail("unknown directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := deck.Validate(); err != nil {
		return nil, err
	}
	return deck, nil
}

func parseRule(f []string, names map[string]layout.Layer) (Rule, error) {
	id, kind := f[0], f[1]
	layerOf := func(s string) (layout.Layer, error) {
		if l, ok := names[s]; ok {
			return l, nil
		}
		n, err := strconv.ParseInt(s, 10, 16)
		if err != nil {
			return 0, fmt.Errorf("unknown layer %q (declare it with a layer directive or use the GDS number)", s)
		}
		return layout.Layer(n), nil
	}
	num := func(s string) (int64, error) {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad number %q", s)
		}
		return v, nil
	}
	l, err := layerOf(f[2])
	if err != nil {
		return Rule{}, err
	}
	rest := f[3:]
	switch kind {
	case "width", "spacing", "area":
		if len(rest) < 1 {
			return Rule{}, fmt.Errorf("%s rule needs a minimum value", kind)
		}
		min, err := num(rest[0])
		if err != nil {
			return Rule{}, err
		}
		var rule Rule
		switch kind {
		case "width":
			rule = Layer(l).Width().AtLeast(min)
		case "spacing":
			rule = Layer(l).Spacing().AtLeast(min)
		case "area":
			rule = Layer(l).Area().AtLeast(min)
		}
		rest = rest[1:]
		if len(rest) == 3 && rest[0] == "prl" {
			if kind != "spacing" {
				return Rule{}, fmt.Errorf("prl condition only applies to spacing rules")
			}
			length, err := num(rest[1])
			if err != nil {
				return Rule{}, err
			}
			min2, err := num(rest[2])
			if err != nil {
				return Rule{}, err
			}
			rule = rule.WhenProjectionAtLeast(length, min2)
		} else if len(rest) != 0 {
			return Rule{}, fmt.Errorf("trailing tokens %v", rest)
		}
		return rule.Named(id), nil
	case "rectilinear":
		if len(rest) != 0 {
			return Rule{}, fmt.Errorf("trailing tokens %v", rest)
		}
		return Layer(l).Polygons().AreRectilinear().Named(id), nil
	case "enclosure", "coverage", "overlap":
		if len(rest) < 1 {
			return Rule{}, fmt.Errorf("%s rule needs the outer layer", kind)
		}
		outer, err := layerOf(rest[0])
		if err != nil {
			return Rule{}, err
		}
		rest = rest[1:]
		switch kind {
		case "coverage":
			if len(rest) != 0 {
				return Rule{}, fmt.Errorf("trailing tokens %v", rest)
			}
			return Layer(l).CoveredBy(outer).Named(id), nil
		case "enclosure", "overlap":
			if len(rest) != 1 {
				return Rule{}, fmt.Errorf("%s rule needs a value", kind)
			}
			v, err := num(rest[0])
			if err != nil {
				return Rule{}, err
			}
			if kind == "enclosure" {
				return Layer(l).EnclosedBy(outer).AtLeast(v).Named(id), nil
			}
			return Layer(l).OverlapWith(outer).AtLeast(v).Named(id), nil
		}
	}
	return Rule{}, fmt.Errorf("unknown rule kind %q", kind)
}

// WriteDeck serializes a deck back into the text format (custom rules are
// skipped with a comment, since callables have no file representation).
func WriteDeck(w io.Writer, deck Deck) error {
	for _, r := range deck {
		var err error
		switch r.Kind {
		case Width:
			_, err = fmt.Fprintf(w, "rule %s width %d %d\n", r.ID, int16(r.Layer), r.Min)
		case Spacing:
			if r.PRLLength > 0 {
				_, err = fmt.Fprintf(w, "rule %s spacing %d %d prl %d %d\n",
					r.ID, int16(r.Layer), r.Min, r.PRLLength, r.PRLMin)
			} else {
				_, err = fmt.Fprintf(w, "rule %s spacing %d %d\n", r.ID, int16(r.Layer), r.Min)
			}
		case Area:
			_, err = fmt.Fprintf(w, "rule %s area %d %d\n", r.ID, int16(r.Layer), r.Min)
		case Rectilinear:
			_, err = fmt.Fprintf(w, "rule %s rectilinear %d\n", r.ID, int16(r.Layer))
		case Enclosure:
			_, err = fmt.Fprintf(w, "rule %s enclosure %d %d %d\n", r.ID, int16(r.Layer), int16(r.Outer), r.Min)
		case Coverage:
			_, err = fmt.Fprintf(w, "rule %s coverage %d %d\n", r.ID, int16(r.Layer), int16(r.Outer))
		case MinOverlap:
			_, err = fmt.Fprintf(w, "rule %s overlap %d %d %d\n", r.ID, int16(r.Layer), int16(r.Outer), r.Min)
		case Custom:
			_, err = fmt.Fprintf(w, "# custom rule %s (%s) has no file representation\n", r.ID, r.Desc)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
