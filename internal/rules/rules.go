// Package rules defines OpenDRC's rule deck and the chaining programming
// interface of the paper's Listing 1: selectors locate the target objects
// (db.layer(19).width()) and predicates state what they must satisfy
// (greater_than(18), is_rectilinear(), ensures(fn)). Rules are plain values;
// the engine dispatches on Kind.
package rules

import (
	"fmt"

	"opendrc/internal/checks"
	"opendrc/internal/geom"
	"opendrc/internal/layout"
)

// Kind classifies a design rule.
type Kind int

// Rule kinds.
const (
	Width       Kind = iota // minimum interior width, intra-polygon
	Spacing                 // minimum exterior spacing, inter-polygon (and notches)
	Enclosure               // minimum margin of Layer inside Outer (inter-layer)
	Area                    // minimum polygon area, intra-polygon
	Rectilinear             // all edges axis-aligned, intra-polygon
	Custom                  // user predicate over polygons

	// Derived-layer rules (boolean mask operations, see internal/boolop):
	Coverage   // the NOT CUT residue Layer \ Outer must be empty per shape
	MinOverlap // each Layer shape must overlap Outer by at least Min area
)

var kindNames = [...]string{"width", "spacing", "enclosure", "area", "rectilinear", "custom", "coverage", "min-overlap"}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Intra reports whether the rule only relates edges of a single polygon,
// enabling the hierarchy pruning of Section IV-C's intra-polygon branch.
func (k Kind) Intra() bool {
	return k == Width || k == Area || k == Rectilinear || k == Custom
}

// Obj is the view of a polygon a Custom predicate receives.
type Obj struct {
	Shape geom.Polygon
	Layer layout.Layer
	// Name is the text of a label on the same layer located on or inside
	// the polygon; empty when none exists (the paper's name predicate).
	Name string
}

// Rule is one design rule. Zero Min with a distance kind is invalid; use the
// builders rather than constructing literals.
type Rule struct {
	ID    string
	Kind  Kind
	Layer layout.Layer
	Outer layout.Layer // enclosure/derived: the other layer
	Min   int64        // threshold: distance, or area (units²)
	Desc  string
	Pred  func(Obj) bool // Custom only

	// PRLLength/PRLMin make a spacing rule conditional on projection
	// length: pairs sharing at least PRLLength of parallel run require
	// PRLMin instead of Min. Zero PRLLength disables the condition.
	PRLLength int64
	PRLMin    int64
}

// WhenProjectionAtLeast upgrades a spacing rule with a parallel-run-length
// condition: edge pairs whose projection overlap is at least length must
// keep min2 (> Min) spacing. Mirrors foundry PRL spacing tables.
func (r Rule) WhenProjectionAtLeast(length, min2 int64) Rule {
	r.PRLLength = length
	r.PRLMin = min2
	return r
}

// SpacingLimit returns the rule's spacing threshold for the check layer.
func (r Rule) SpacingLimit() checks.SpacingLimit {
	return checks.SpacingLimit{Min: r.Min, PRLLength: r.PRLLength, PRLMin: r.PRLMin}
}

// Named returns a copy of the rule with the given identifier (e.g. "M1.W.1",
// the paper's rule naming scheme).
func (r Rule) Named(id string) Rule {
	r.ID = id
	return r
}

// String implements fmt.Stringer.
func (r Rule) String() string {
	if r.ID != "" {
		return r.ID
	}
	switch r.Kind {
	case Enclosure:
		return fmt.Sprintf("%s.%s.EN(%d)", layout.LayerName(r.Layer), layout.LayerName(r.Outer), r.Min)
	case Coverage:
		return fmt.Sprintf("%s.%s.COV", layout.LayerName(r.Layer), layout.LayerName(r.Outer))
	case MinOverlap:
		return fmt.Sprintf("%s.%s.OV(%d)", layout.LayerName(r.Layer), layout.LayerName(r.Outer), r.Min)
	case Custom:
		return fmt.Sprintf("%s.custom(%s)", layout.LayerName(r.Layer), r.Desc)
	default:
		return fmt.Sprintf("%s.%s(%d)", layout.LayerName(r.Layer), r.Kind, r.Min)
	}
}

// Validate reports whether the rule is well formed.
func (r Rule) Validate() error {
	switch r.Kind {
	case Width, Spacing, Area:
		if r.Min <= 0 {
			return fmt.Errorf("rules: %v rule needs a positive minimum, got %d", r.Kind, r.Min)
		}
		if r.PRLLength != 0 {
			if r.Kind != Spacing {
				return fmt.Errorf("rules: projection condition only applies to spacing rules")
			}
			if r.PRLLength < 0 || r.PRLMin <= r.Min {
				return fmt.Errorf("rules: projection condition needs PRLLength > 0 and PRLMin > Min")
			}
		}
	case Enclosure:
		if r.Min <= 0 {
			return fmt.Errorf("rules: enclosure rule needs a positive minimum, got %d", r.Min)
		}
		if r.Outer == r.Layer {
			return fmt.Errorf("rules: enclosure rule with identical layers %d", r.Layer)
		}
	case Rectilinear:
	case Custom:
		if r.Pred == nil {
			return fmt.Errorf("rules: custom rule %q without predicate", r.Desc)
		}
	case Coverage:
		if r.Outer == r.Layer {
			return fmt.Errorf("rules: coverage rule with identical layers %d", r.Layer)
		}
	case MinOverlap:
		if r.Min <= 0 {
			return fmt.Errorf("rules: min-overlap rule needs a positive area, got %d", r.Min)
		}
		if r.Outer == r.Layer {
			return fmt.Errorf("rules: min-overlap rule with identical layers %d", r.Layer)
		}
	default:
		return fmt.Errorf("rules: unknown kind %d", int(r.Kind))
	}
	return nil
}

// Reach returns the interaction distance of the rule: how far beyond an
// object's MBR the rule can relate other geometry. Used for MBR enlargement
// and the row-partition guard.
func (r Rule) Reach() int64 {
	switch r.Kind {
	case Spacing:
		return r.SpacingLimit().Reach()
	case Enclosure:
		return r.Min
	}
	return 0
}

// Selector selects geometry on one layer — the entry point of the chaining
// interface.
type Selector struct {
	layer layout.Layer
}

// Layer starts a rule chain for the given layer, like the paper's
// db.layer(19).
func Layer(l layout.Layer) Selector { return Selector{layer: l} }

// DistanceBuilder finishes a distance-style rule with a threshold predicate.
type DistanceBuilder struct {
	rule Rule
}

// AtLeast requires the selected distance to be >= v.
func (b DistanceBuilder) AtLeast(v int64) Rule {
	b.rule.Min = v
	return b.rule
}

// GreaterThan requires the selected distance to be > v (the paper's
// greater_than(18) reads as width > 18 exclusive; on the integer grid this
// is AtLeast(v+1)).
func (b DistanceBuilder) GreaterThan(v int64) Rule {
	b.rule.Min = v + 1
	return b.rule
}

// Width selects the layer's interior width.
func (s Selector) Width() DistanceBuilder {
	return DistanceBuilder{rule: Rule{Kind: Width, Layer: s.layer}}
}

// Spacing selects the layer's exterior spacing (including notches).
func (s Selector) Spacing() DistanceBuilder {
	return DistanceBuilder{rule: Rule{Kind: Spacing, Layer: s.layer}}
}

// EnclosedBy selects the margin of this layer's shapes inside the outer
// layer's shapes (via-in-metal enclosure).
func (s Selector) EnclosedBy(outer layout.Layer) DistanceBuilder {
	return DistanceBuilder{rule: Rule{Kind: Enclosure, Layer: s.layer, Outer: outer}}
}

// CoveredBy requires every shape on this layer to be fully covered by the
// union of the outer layer's shapes — the paper's empty-NOT-CUT constraint.
// Unlike EnclosedBy, coverage by several abutting shapes counts.
func (s Selector) CoveredBy(outer layout.Layer) Rule {
	return Rule{Kind: Coverage, Layer: s.layer, Outer: outer}
}

// OverlapWith selects the overlap area between this layer's shapes and the
// outer layer — the paper's minimum overlapping area constraint. Finish
// with AtLeast(area).
func (s Selector) OverlapWith(outer layout.Layer) DistanceBuilder {
	return DistanceBuilder{rule: Rule{Kind: MinOverlap, Layer: s.layer, Outer: outer}}
}

// Area selects the polygon area on the layer.
func (s Selector) Area() DistanceBuilder {
	return DistanceBuilder{rule: Rule{Kind: Area, Layer: s.layer}}
}

// PolygonSelector selects whole polygons for shape predicates.
type PolygonSelector struct {
	layer layout.Layer
}

// Polygons selects the layer's polygons.
func (s Selector) Polygons() PolygonSelector { return PolygonSelector{layer: s.layer} }

// AreRectilinear requires every selected polygon to be rectilinear.
func (ps PolygonSelector) AreRectilinear() Rule {
	return Rule{Kind: Rectilinear, Layer: ps.layer}
}

// Ensure attaches a user-defined predicate (the paper's ensures(callable)):
// a violation is reported for every polygon the predicate rejects.
func (ps PolygonSelector) Ensure(desc string, pred func(Obj) bool) Rule {
	return Rule{Kind: Custom, Layer: ps.layer, Desc: desc, Pred: pred}
}

// Violation is one reported design rule violation.
type Violation struct {
	Rule   string // rule identifier
	Kind   Kind
	Layer  layout.Layer
	Marker checks.Marker
	Cell   string // definition cell the geometry lives in, when known
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("%s @ %v", v.Rule, v.Marker.Box)
}

// Less is the canonical total order on violations: every field participates,
// so two violations compare equal only when they are identical values. This
// matters for determinism — equal violation *multisets* sort into identical
// slices regardless of emission order, which is how reports stay
// bit-identical across worker counts, kernel schedules, and geometry-cache
// configurations even under an unstable sort.
func Less(a, b *Violation) bool {
	if a.Rule != b.Rule {
		return a.Rule < b.Rule
	}
	ab, bb := a.Marker.Box, b.Marker.Box
	switch {
	case ab.XLo != bb.XLo:
		return ab.XLo < bb.XLo
	case ab.YLo != bb.YLo:
		return ab.YLo < bb.YLo
	case ab.XHi != bb.XHi:
		return ab.XHi < bb.XHi
	case ab.YHi != bb.YHi:
		return ab.YHi < bb.YHi
	}
	if a.Marker.Dist != b.Marker.Dist {
		return a.Marker.Dist < b.Marker.Dist
	}
	if a.Marker.Corner != b.Marker.Corner {
		return !a.Marker.Corner
	}
	if c := edgeCompare(a.Marker.EdgeA, b.Marker.EdgeA); c != 0 {
		return c < 0
	}
	if c := edgeCompare(a.Marker.EdgeB, b.Marker.EdgeB); c != 0 {
		return c < 0
	}
	if a.Cell != b.Cell {
		return a.Cell < b.Cell
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return a.Layer < b.Layer
}

// edgeCompare orders edges lexicographically by their endpoints.
func edgeCompare(a, b geom.Edge) int {
	for _, p := range [4][2]int64{
		{a.P0.X, b.P0.X}, {a.P0.Y, b.P0.Y}, {a.P1.X, b.P1.X}, {a.P1.Y, b.P1.Y},
	} {
		if p[0] != p[1] {
			if p[0] < p[1] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Deck is an ordered rule list.
type Deck []Rule

// Validate checks every rule and rejects duplicates: two rules of the same
// kind on the same layer pair with the same projection condition would either
// be redundant or silently contradict each other, so the deck is refused
// outright. Custom rules are exempt — several distinct predicates per layer
// are legitimate.
func (d Deck) Validate() error {
	type ruleKey struct {
		kind      Kind
		layer     layout.Layer
		outer     layout.Layer
		prlLength int64
	}
	seen := make(map[ruleKey]int)
	for i, r := range d {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("rule %d (%s): %w", i, r, err)
		}
		if r.Kind == Custom {
			continue
		}
		k := ruleKey{kind: r.Kind, layer: r.Layer, outer: r.Outer, prlLength: r.PRLLength}
		if j, dup := seen[k]; dup {
			return fmt.Errorf("rules: rule %d (%s) duplicates rule %d (%s): one %v rule per layer pair",
				i, r, j, d[j], r.Kind)
		}
		seen[k] = i
	}
	return nil
}

// MaxReach returns the largest interaction distance in the deck, the guard
// for the adaptive row partition.
func (d Deck) MaxReach() int64 {
	var m int64
	for _, r := range d {
		if v := r.Reach(); v > m {
			m = v
		}
	}
	return m
}

// Layers returns the set of layers any rule in the deck touches.
func (d Deck) Layers() []layout.Layer {
	seen := make(map[layout.Layer]bool)
	var out []layout.Layer
	for _, r := range d {
		if !seen[r.Layer] {
			seen[r.Layer] = true
			out = append(out, r.Layer)
		}
		if r.Kind == Enclosure && !seen[r.Outer] {
			seen[r.Outer] = true
			out = append(out, r.Outer)
		}
	}
	return out
}
