package rules

import (
	"strings"
	"testing"

	"opendrc/internal/geom"
	"opendrc/internal/layout"
)

func TestBuilderChains(t *testing.T) {
	r := Layer(layout.LayerM1).Width().AtLeast(18).Named("M1.W.1")
	if r.Kind != Width || r.Layer != layout.LayerM1 || r.Min != 18 || r.ID != "M1.W.1" {
		t.Errorf("width rule = %+v", r)
	}
	r = Layer(layout.LayerM1).Width().GreaterThan(18)
	if r.Min != 19 {
		t.Errorf("GreaterThan(18) min = %d", r.Min)
	}
	r = Layer(layout.LayerM2).Spacing().AtLeast(20)
	if r.Kind != Spacing || r.Min != 20 {
		t.Errorf("spacing rule = %+v", r)
	}
	r = Layer(layout.LayerV1).EnclosedBy(layout.LayerM1).AtLeast(5)
	if r.Kind != Enclosure || r.Layer != layout.LayerV1 || r.Outer != layout.LayerM1 {
		t.Errorf("enclosure rule = %+v", r)
	}
	r = Layer(layout.LayerM3).Area().AtLeast(1000)
	if r.Kind != Area || r.Min != 1000 {
		t.Errorf("area rule = %+v", r)
	}
	r = Layer(layout.LayerM1).Polygons().AreRectilinear()
	if r.Kind != Rectilinear {
		t.Errorf("rectilinear rule = %+v", r)
	}
	r = Layer(20).Polygons().Ensure("non-empty name", func(o Obj) bool { return o.Name != "" })
	if r.Kind != Custom || r.Pred == nil || r.Desc != "non-empty name" {
		t.Errorf("custom rule = %+v", r)
	}
}

func TestValidation(t *testing.T) {
	good := Deck{
		Layer(layout.LayerM1).Width().AtLeast(18),
		Layer(layout.LayerV1).EnclosedBy(layout.LayerM1).AtLeast(5),
		Layer(layout.LayerM1).Polygons().AreRectilinear(),
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid deck rejected: %v", err)
	}
	bad := []Rule{
		Layer(layout.LayerM1).Width().AtLeast(0),
		Layer(layout.LayerM1).Spacing().AtLeast(-5),
		Layer(layout.LayerM1).EnclosedBy(layout.LayerM1).AtLeast(5),
		{Kind: Custom, Layer: 1}, // predicate missing
		{Kind: Kind(99)},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad rule %d accepted: %+v", i, r)
		}
	}
	deck := Deck{bad[0]}
	if err := deck.Validate(); err == nil || !strings.Contains(err.Error(), "rule 0") {
		t.Errorf("deck validation error = %v", err)
	}
}

func TestReachAndMaxReach(t *testing.T) {
	d := Deck{
		Layer(layout.LayerM1).Width().AtLeast(18),
		Layer(layout.LayerM1).Spacing().AtLeast(25),
		Layer(layout.LayerV1).EnclosedBy(layout.LayerM1).AtLeast(7),
		Layer(layout.LayerM1).Area().AtLeast(500),
	}
	if d[0].Reach() != 0 {
		t.Error("width must not have reach (intra-polygon)")
	}
	if d[1].Reach() != 25 || d[2].Reach() != 7 {
		t.Error("spacing/enclosure reach wrong")
	}
	if d.MaxReach() != 25 {
		t.Errorf("max reach = %d", d.MaxReach())
	}
}

func TestKindIntra(t *testing.T) {
	intra := []Kind{Width, Area, Rectilinear, Custom}
	for _, k := range intra {
		if !k.Intra() {
			t.Errorf("%v should be intra", k)
		}
	}
	for _, k := range []Kind{Spacing, Enclosure} {
		if k.Intra() {
			t.Errorf("%v should be inter", k)
		}
	}
}

func TestDeckLayers(t *testing.T) {
	d := Deck{
		Layer(layout.LayerM1).Width().AtLeast(18),
		Layer(layout.LayerM1).Spacing().AtLeast(25),
		Layer(layout.LayerV1).EnclosedBy(layout.LayerM1).AtLeast(7),
	}
	ls := d.Layers()
	if len(ls) != 2 {
		t.Fatalf("layers = %v", ls)
	}
}

func TestRuleStrings(t *testing.T) {
	r := Layer(layout.LayerM1).Width().AtLeast(18)
	if s := r.String(); !strings.Contains(s, "M1") || !strings.Contains(s, "width") {
		t.Errorf("string = %q", s)
	}
	named := r.Named("M1.W.1")
	if named.String() != "M1.W.1" {
		t.Errorf("named string = %q", named.String())
	}
	en := Layer(layout.LayerV1).EnclosedBy(layout.LayerM1).AtLeast(5)
	if s := en.String(); !strings.Contains(s, "EN") {
		t.Errorf("enclosure string = %q", s)
	}
}

func TestCustomPredicate(t *testing.T) {
	r := Layer(20).Polygons().Ensure("named", func(o Obj) bool { return o.Name != "" })
	ok := r.Pred(Obj{Shape: geom.RectPolygon(geom.R(0, 0, 1, 1)), Name: "net1"})
	if !ok {
		t.Error("predicate rejected named polygon")
	}
	if r.Pred(Obj{Name: ""}) {
		t.Error("predicate accepted unnamed polygon")
	}
}
