// Package interval implements the centered interval tree OpenDRC's
// sequential sweepline uses in place of a segment tree ("interval trees are
// used instead of segment trees for implementation simplicity"). The tree is
// a binary search tree over a fixed skeleton of candidate keys; an interval
// is stored in the highest node whose key it contains, and every node keeps
// its intervals in two lists — one sorted by left endpoint, one by right —
// enabling output-sensitive stabbing and overlap queries.
package interval

import (
	"fmt"
	"sort"
)

// Entry is one stored interval with its caller-assigned identifier.
type Entry struct {
	Lo, Hi int64 // closed interval [Lo, Hi]
	ID     int
}

type node struct {
	key         int64
	left, right int32 // child indices; -1 = none
	// byLo sorted ascending by Lo; byHi sorted descending by Hi. Every
	// entry stored at the node contains key.
	byLo []Entry
	byHi []Entry
}

// Tree is a dynamic interval tree over a fixed coordinate skeleton. Build it
// with NewTree from every endpoint that will ever be inserted (the sweepline
// knows all MBRs up front), then Insert/Delete freely.
type Tree struct {
	nodes []node
	root  int32
	size  int
}

// NewTree builds the balanced skeleton from the candidate key coordinates
// (duplicates allowed, any order). Every interval later inserted must
// contain at least one of these keys — guaranteed when the keys include the
// interval endpoints.
func NewTree(coords []int64) *Tree {
	u := append([]int64(nil), coords...)
	sort.Slice(u, func(i, j int) bool { return u[i] < u[j] })
	u = dedupSorted(u)
	t := &Tree{root: -1}
	if len(u) == 0 {
		return t
	}
	t.nodes = make([]node, 0, len(u))
	t.root = t.build(u)
	return t
}

func dedupSorted(v []int64) []int64 {
	out := v[:0]
	for i, x := range v {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

func (t *Tree) build(coords []int64) int32 {
	if len(coords) == 0 {
		return -1
	}
	mid := len(coords) / 2
	idx := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{key: coords[mid], left: -1, right: -1})
	l := t.build(coords[:mid])
	r := t.build(coords[mid+1:])
	t.nodes[idx].left = l
	t.nodes[idx].right = r
	return idx
}

// Len returns the number of intervals currently stored.
func (t *Tree) Len() int { return t.size }

// locate descends to the highest node whose key the interval contains.
func (t *Tree) locate(lo, hi int64) (int32, error) {
	if lo > hi {
		return -1, fmt.Errorf("interval: inverted interval [%d,%d]", lo, hi)
	}
	cur := t.root
	for cur >= 0 {
		n := &t.nodes[cur]
		switch {
		case hi < n.key:
			cur = n.left
		case lo > n.key:
			cur = n.right
		default:
			return cur, nil
		}
	}
	return -1, fmt.Errorf("interval: [%d,%d] contains no skeleton key", lo, hi)
}

// Insert stores the interval. The endpoints must be covered by the skeleton.
func (t *Tree) Insert(lo, hi int64, id int) error {
	idx, err := t.locate(lo, hi)
	if err != nil {
		return err
	}
	n := &t.nodes[idx]
	e := Entry{Lo: lo, Hi: hi, ID: id}
	// Insert in sorted position in both lists.
	i := sort.Search(len(n.byLo), func(i int) bool { return n.byLo[i].Lo > lo })
	n.byLo = append(n.byLo, Entry{})
	copy(n.byLo[i+1:], n.byLo[i:])
	n.byLo[i] = e
	j := sort.Search(len(n.byHi), func(i int) bool { return n.byHi[i].Hi < hi })
	n.byHi = append(n.byHi, Entry{})
	copy(n.byHi[j+1:], n.byHi[j:])
	n.byHi[j] = e
	t.size++
	return nil
}

// Delete removes the interval previously inserted with the same endpoints
// and id; it reports whether the interval was found.
func (t *Tree) Delete(lo, hi int64, id int) bool {
	idx, err := t.locate(lo, hi)
	if err != nil {
		return false
	}
	n := &t.nodes[idx]
	if !removeEntry(&n.byLo, func(e Entry) bool { return e.Lo == lo && e.Hi == hi && e.ID == id }) {
		return false
	}
	removeEntry(&n.byHi, func(e Entry) bool { return e.Lo == lo && e.Hi == hi && e.ID == id })
	t.size--
	return true
}

func removeEntry(list *[]Entry, match func(Entry) bool) bool {
	for i, e := range *list {
		if match(e) {
			copy((*list)[i:], (*list)[i+1:])
			*list = (*list)[:len(*list)-1]
			return true
		}
	}
	return false
}

// Stab visits every stored interval containing x.
func (t *Tree) Stab(x int64, visit func(Entry)) {
	cur := t.root
	for cur >= 0 {
		n := &t.nodes[cur]
		switch {
		case x < n.key:
			// Stored intervals contain key > x; they contain x iff Lo <= x.
			for _, e := range n.byLo {
				if e.Lo > x {
					break
				}
				visit(e)
			}
			cur = n.left
		case x > n.key:
			for _, e := range n.byHi {
				if e.Hi < x {
					break
				}
				visit(e)
			}
			cur = n.right
		default:
			for _, e := range n.byLo {
				visit(e)
			}
			cur = -1
		}
	}
}

// Query visits every stored interval overlapping [lo, hi] (closed; touching
// endpoints count — zero-gap geometry interacts in DRC terms).
func (t *Tree) Query(lo, hi int64, visit func(Entry)) {
	t.query(t.root, lo, hi, visit)
}

func (t *Tree) query(cur int32, lo, hi int64, visit func(Entry)) {
	for cur >= 0 {
		n := &t.nodes[cur]
		switch {
		case hi < n.key:
			// Node intervals contain key; overlap iff their Lo <= hi.
			for _, e := range n.byLo {
				if e.Lo > hi {
					break
				}
				visit(e)
			}
			cur = n.left
		case lo > n.key:
			for _, e := range n.byHi {
				if e.Hi < lo {
					break
				}
				visit(e)
			}
			cur = n.right
		default:
			// Query straddles the key: everything here overlaps, and both
			// subtrees may hold more.
			for _, e := range n.byLo {
				visit(e)
			}
			t.query(n.left, lo, hi, visit)
			cur = n.right
		}
	}
}
