package interval

import (
	"math/rand"
	"sort"
	"testing"
)

func collect(t *Tree, lo, hi int64) []int {
	var ids []int
	t.Query(lo, hi, func(e Entry) { ids = append(ids, e.ID) })
	sort.Ints(ids)
	return ids
}

func eqInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestInsertQueryBasic(t *testing.T) {
	tr := NewTree([]int64{0, 5, 10, 15, 20, 25, 30})
	must := func(lo, hi int64, id int) {
		t.Helper()
		if err := tr.Insert(lo, hi, id); err != nil {
			t.Fatal(err)
		}
	}
	must(0, 10, 1)
	must(5, 15, 2)
	must(20, 30, 3)
	must(10, 20, 4)
	if tr.Len() != 4 {
		t.Fatalf("len = %d", tr.Len())
	}
	if got := collect(tr, 0, 4); !eqInts(got, []int{1}) {
		t.Errorf("query [0,4] = %v", got)
	}
	if got := collect(tr, 7, 12); !eqInts(got, []int{1, 2, 4}) {
		t.Errorf("query [7,12] = %v", got)
	}
	if got := collect(tr, 16, 19); !eqInts(got, []int{4}) {
		t.Errorf("query [16,19] = %v", got)
	}
	// Touching endpoints count as overlap.
	if got := collect(tr, 15, 15); !eqInts(got, []int{2, 4}) {
		t.Errorf("query [15,15] = %v", got)
	}
	if got := collect(tr, 30, 40); !eqInts(got, []int{3}) {
		t.Errorf("query [30,40] = %v", got)
	}
	if got := collect(tr, 31, 40); len(got) != 0 {
		t.Errorf("query [31,40] = %v", got)
	}
}

func TestStab(t *testing.T) {
	tr := NewTree([]int64{0, 10, 20, 30})
	tr.Insert(0, 10, 1)
	tr.Insert(10, 20, 2)
	tr.Insert(0, 30, 3)
	var ids []int
	tr.Stab(10, func(e Entry) { ids = append(ids, e.ID) })
	sort.Ints(ids)
	if !eqInts(ids, []int{1, 2, 3}) {
		t.Errorf("stab(10) = %v", ids)
	}
	ids = nil
	tr.Stab(25, func(e Entry) { ids = append(ids, e.ID) })
	if !eqInts(ids, []int{3}) {
		t.Errorf("stab(25) = %v", ids)
	}
}

func TestDelete(t *testing.T) {
	tr := NewTree([]int64{0, 10, 20})
	tr.Insert(0, 10, 1)
	tr.Insert(0, 10, 2) // identical interval, distinct id
	tr.Insert(5, 20, 3)
	if !tr.Delete(0, 10, 1) {
		t.Fatal("delete(1) failed")
	}
	if tr.Delete(0, 10, 1) {
		t.Fatal("double delete succeeded")
	}
	if tr.Delete(0, 10, 99) {
		t.Fatal("deleting unknown id succeeded")
	}
	if got := collect(tr, 0, 20); !eqInts(got, []int{2, 3}) {
		t.Errorf("after delete: %v", got)
	}
	if tr.Len() != 2 {
		t.Errorf("len = %d", tr.Len())
	}
}

func TestErrors(t *testing.T) {
	tr := NewTree([]int64{10, 20})
	if err := tr.Insert(30, 40, 1); err == nil {
		t.Error("expected error: interval misses skeleton")
	}
	if err := tr.Insert(20, 10, 2); err == nil {
		t.Error("expected error: inverted interval")
	}
	empty := NewTree(nil)
	if err := empty.Insert(0, 1, 1); err == nil {
		t.Error("expected error on empty skeleton")
	}
	empty.Query(0, 10, func(Entry) { t.Error("query on empty tree visited something") })
}

// TestRandomizedAgainstBruteForce cross-checks queries and deletions against
// a naive list over many random operations.
func TestRandomizedAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const domain = 200
	coords := make([]int64, domain+1)
	for i := range coords {
		coords[i] = int64(i)
	}
	tr := NewTree(coords)
	type iv struct{ lo, hi int64 }
	live := map[int]iv{}
	nextID := 0
	for step := 0; step < 3000; step++ {
		switch op := rng.Intn(10); {
		case op < 5: // insert
			lo := int64(rng.Intn(domain))
			hi := lo + int64(rng.Intn(domain-int(lo)+1))
			if err := tr.Insert(lo, hi, nextID); err != nil {
				t.Fatal(err)
			}
			live[nextID] = iv{lo, hi}
			nextID++
		case op < 7: // delete random live
			for id, v := range live {
				if !tr.Delete(v.lo, v.hi, id) {
					t.Fatalf("delete live id %d failed", id)
				}
				delete(live, id)
				break
			}
		default: // query
			lo := int64(rng.Intn(domain))
			hi := lo + int64(rng.Intn(domain-int(lo)+1))
			var want []int
			for id, v := range live {
				if v.lo <= hi && lo <= v.hi {
					want = append(want, id)
				}
			}
			sort.Ints(want)
			if got := collect(tr, lo, hi); !eqInts(got, want) {
				t.Fatalf("step %d query [%d,%d]: got %v want %v", step, lo, hi, got, want)
			}
		}
	}
	if tr.Len() != len(live) {
		t.Errorf("len = %d, want %d", tr.Len(), len(live))
	}
}

func TestStabMatchesQueryPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	coords := make([]int64, 101)
	for i := range coords {
		coords[i] = int64(i)
	}
	tr := NewTree(coords)
	for i := 0; i < 300; i++ {
		lo := int64(rng.Intn(100))
		hi := lo + int64(rng.Intn(100-int(lo)+1))
		tr.Insert(lo, hi, i)
	}
	for x := int64(0); x <= 100; x += 7 {
		var stab, query []int
		tr.Stab(x, func(e Entry) { stab = append(stab, e.ID) })
		tr.Query(x, x, func(e Entry) { query = append(query, e.ID) })
		sort.Ints(stab)
		sort.Ints(query)
		if !eqInts(stab, query) {
			t.Errorf("stab(%d) != query point: %v vs %v", x, stab, query)
		}
	}
}
