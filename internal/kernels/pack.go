// Package kernels implements the edge-based GPU check kernels of OpenDRC's
// parallel mode (Section IV-E) on the simulated device: polygon edges are
// packed into flattened structure-of-arrays buffers ("OpenDRC packs the
// edges of relevant polygons into a flattened array, which is transferred
// from the host memory to the GPU device memory"), and checks run either as
// a brute-force executor (one thread per polygon or pair) or as a parallel
// sweepline executor in the style of X-Check: a scan kernel that determines
// each edge's check range, then a check kernel that tests each edge against
// the edges in its range. The kernels call the same edge-pair predicates as
// the sequential mode, so both modes return identical violations.
package kernels

import (
	"sort"

	"opendrc/internal/geom"
	"opendrc/internal/gpu"
)

// Edges is the packed, flattened edge buffer: one entry per directed polygon
// edge. X2/Y2 hold the vertex after P1, so each entry also describes the
// corner at P1 (needed by the diagonal-spacing test). Poly maps the edge to
// its owning polygon index; PolyStart gives each polygon's edge range.
type Edges struct {
	X0, Y0, X1, Y1, X2, Y2 []int64
	Poly                   []int32
	PolyStart              []int32 // len = numPolys+1
}

// Pack flattens the polygons into an edge buffer. A counting pass sizes
// everything up front, so the seven parallel slices are written by index
// into exactly four allocations: the Edges header, one contiguous backing
// array carved into the six coordinate slices, the Poly ids, and the
// PolyStart offsets. The contiguous coordinate backing is also the transfer
// layout: the single async "edges" copy the device upload path models is one
// block of 6·n coordinates followed by the two index tables, which is what
// Bytes() prices.
func Pack(polys []geom.Polygon) *Edges {
	total := 0
	for _, p := range polys {
		total += p.NumEdges()
	}
	coords := make([]int64, 6*total)
	e := &Edges{
		X0:        coords[0*total : 1*total : 1*total],
		Y0:        coords[1*total : 2*total : 2*total],
		X1:        coords[2*total : 3*total : 3*total],
		Y1:        coords[3*total : 4*total : 4*total],
		X2:        coords[4*total : 5*total : 5*total],
		Y2:        coords[5*total : 6*total : 6*total],
		Poly:      make([]int32, total),
		PolyStart: make([]int32, len(polys)+1),
	}
	k := 0
	for pi, p := range polys {
		n := p.NumEdges()
		for i := 0; i < n; i++ {
			a := p.Vertex(i)
			b := p.Vertex((i + 1) % n)
			c := p.Vertex((i + 2) % n)
			e.X0[k] = a.X
			e.Y0[k] = a.Y
			e.X1[k] = b.X
			e.Y1[k] = b.Y
			e.X2[k] = c.X
			e.Y2[k] = c.Y
			e.Poly[k] = int32(pi)
			k++
		}
		e.PolyStart[pi+1] = int32(k)
	}
	return e
}

// Len returns the edge count.
func (e *Edges) Len() int { return len(e.X0) }

// NumPolys returns the polygon count.
func (e *Edges) NumPolys() int { return len(e.PolyStart) - 1 }

// Bytes returns the buffer size for transfer modeling: 6 coordinates plus a
// polygon id per edge, plus the offset table.
func (e *Edges) Bytes() int64 {
	return int64(e.Len())*(6*8+4) + int64(len(e.PolyStart))*4
}

// Edge returns the i-th packed edge.
func (e *Edges) Edge(i int) geom.Edge {
	return geom.Edge{P0: geom.Pt(e.X0[i], e.Y0[i]), P1: geom.Pt(e.X1[i], e.Y1[i])}
}

// NextEdge returns the edge following i around its polygon (P1 -> P2).
func (e *Edges) NextEdge(i int) geom.Edge {
	return geom.Edge{P0: geom.Pt(e.X1[i], e.Y1[i]), P1: geom.Pt(e.X2[i], e.Y2[i])}
}

// PolyEdges returns the half-open edge index range of polygon p.
func (e *Edges) PolyEdges(p int) (int, int) {
	return int(e.PolyStart[p]), int(e.PolyStart[p+1])
}

// views: index lists of horizontal/vertical edges sorted by perpendicular
// coordinate, and all corners sorted by x — the sorted orders the sweepline
// kernels walk.
type views struct {
	horiz []int32 // horizontal edges sorted by y
	vert  []int32 // vertical edges sorted by x
}

// buildViews sorts edge indices on the host and charges the device a
// bitonic-sort-equivalent kernel (n threads × log² n ops), matching how
// X-Check prepares its sweep orders on device.
func buildViews(s *gpu.Stream, e *Edges) views {
	// Counting pass so each view is exactly one allocation.
	nh, nv := 0, 0
	for i := 0; i < e.Len(); i++ {
		switch e.Edge(i).Dir() {
		case geom.DirEast, geom.DirWest:
			nh++
		case geom.DirNorth, geom.DirSouth:
			nv++
		}
	}
	v := views{horiz: make([]int32, 0, nh), vert: make([]int32, 0, nv)}
	for i := 0; i < e.Len(); i++ {
		switch e.Edge(i).Dir() {
		case geom.DirEast, geom.DirWest:
			v.horiz = append(v.horiz, int32(i))
		case geom.DirNorth, geom.DirSouth:
			v.vert = append(v.vert, int32(i))
		}
	}
	sort.Slice(v.horiz, func(a, b int) bool {
		ia, ib := v.horiz[a], v.horiz[b]
		if e.Y0[ia] != e.Y0[ib] {
			return e.Y0[ia] < e.Y0[ib]
		}
		return ia < ib
	})
	sort.Slice(v.vert, func(a, b int) bool {
		ia, ib := v.vert[a], v.vert[b]
		if e.X0[ia] != e.X0[ib] {
			return e.X0[ia] < e.X0[ib]
		}
		return ia < ib
	})
	n := e.Len()
	if n > 0 && s != nil {
		logn := int64(1)
		for 1<<logn < n {
			logn++
		}
		s.Launch("sort-edges", n, func(tid int) int64 { return logn * logn })
	}
	return v
}

// Slice returns a view of polygons [p0, p1) as an Edges buffer of its own:
// coordinate arrays are shared (no copy — the row kernels address ranges of
// the single transferred buffer), while the small Poly/PolyStart index
// tables are rebased.
func (e *Edges) Slice(p0, p1 int) *Edges {
	elo, ehi := int(e.PolyStart[p0]), int(e.PolyStart[p1])
	out := &Edges{
		X0: e.X0[elo:ehi], Y0: e.Y0[elo:ehi],
		X1: e.X1[elo:ehi], Y1: e.Y1[elo:ehi],
		X2: e.X2[elo:ehi], Y2: e.Y2[elo:ehi],
		Poly:      make([]int32, ehi-elo),
		PolyStart: make([]int32, p1-p0+1),
	}
	for i := elo; i < ehi; i++ {
		out.Poly[i-elo] = e.Poly[i] - int32(p0)
	}
	for p := p0; p <= p1; p++ {
		out.PolyStart[p-p0] = e.PolyStart[p] - int32(elo)
	}
	return out
}
