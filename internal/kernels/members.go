package kernels

import (
	"opendrc/internal/checks"
	"opendrc/internal/geom"
	"opendrc/internal/gpu"
)

// Member-indexed kernel variants. The cross-rule geometry cache packs each
// layer once in the canonical flatten order and keeps the buffer resident on
// the device; partition rows then address *subsets* of that one buffer by
// polygon index instead of re-packing a row-ordered copy per rule. These
// variants run the same sweep/scan structure as their whole-buffer
// counterparts over an explicit member list. Because row members are
// ascending canonical indices, every sorted order (perpendicular-coordinate
// views with index tie-breaks, corner x-order, MBR x-order) is
// order-isomorphic to the orders the sliced-buffer path produced, so the
// emitted hit sequence per row is unchanged.

// buildViewsPolys builds the horizontal/vertical sweep views restricted to
// the edges of the given polygons, charging the same modeled sort kernel as
// buildViews (n threads × log² n over the member edge count). Returns the
// views and the total member edge count.
func buildViewsPolys(s *gpu.Stream, e *Edges, polys []int32) (views, int) {
	var v views
	total := 0
	for _, p := range polys {
		lo, hi := e.PolyEdges(int(p))
		total += hi - lo
		for i := lo; i < hi; i++ {
			switch e.Edge(i).Dir() {
			case geom.DirEast, geom.DirWest:
				v.horiz = append(v.horiz, int32(i))
			case geom.DirNorth, geom.DirSouth:
				v.vert = append(v.vert, int32(i))
			}
		}
	}
	sortBy(v.horiz, func(a, b int32) bool {
		if e.Y0[a] != e.Y0[b] {
			return e.Y0[a] < e.Y0[b]
		}
		return a < b
	})
	sortBy(v.vert, func(a, b int32) bool {
		if e.X0[a] != e.X0[b] {
			return e.X0[a] < e.X0[b]
		}
		return a < b
	})
	if total > 0 && s != nil {
		logn := int64(1)
		for 1<<logn < total {
			logn++
		}
		s.Launch("sort-edges", total, func(tid int) int64 { return logn * logn })
	}
	return v, total
}

// SpacingSweepPolys is SpacingSweep restricted to a member polygon list of a
// shared packed buffer: the same two-kernel sweep per axis plus the corner
// pass, launched over only the members' edges.
func SpacingSweepPolys(s *gpu.Stream, e *Edges, polys []int32, lim checks.SpacingLimit, filter PairFilter, c Collector) {
	v, total := buildViewsPolys(s, e, polys)
	sweepAxis(s, e, v.horiz, func(i int32) int64 { return e.Y0[i] }, lim, filter, c)
	sweepAxis(s, e, v.vert, func(i int32) int64 { return e.X0[i] }, lim, filter, c)
	if filter == FilterSpacing {
		list := make([]int32, 0, total)
		for _, p := range polys {
			lo, hi := e.PolyEdges(int(p))
			for i := lo; i < hi; i++ {
				list = append(list, int32(i))
			}
		}
		cornerSweepList(s, e, list, lim.Min, c)
	}
}

// MBRTable is the device-resident derived geometry of a packed buffer: the
// per-polygon MBR arrays plus the global x-order over every polygon. Both
// depend only on the buffer, never on the rule — and the host has already
// computed them for the row partition — so with the geometry cache on the
// engine uploads the table once per resident layer (one small async copy)
// instead of re-deriving it on the device per rule (poly-mbr + sort-mbrs
// launches). Per-rule pair discovery then shrinks to the single scan launch.
type MBRTable struct {
	XLo, XHi, YLo, YHi []int64
	XOrder             []int32 // every polygon, sorted by (XLo, index)
}

// Bytes is the table's upload size: four int64 MBR coordinates plus one
// int32 order entry per polygon.
func (t *MBRTable) Bytes() int64 { return int64(len(t.XLo))*4*8 + int64(len(t.XOrder))*4 }

// PairDiscoveryTable is PairDiscoveryMembers against a prebuilt MBRTable.
// Each row's x-sorted member sequence is gathered from the table's global
// x-order: (XLo, index) is a strict total order, so a stable filter of
// XOrder down to a row's members IS the sequence the per-rule sort produced
// — the scan kernel sees identical input and emits identical pairs. The
// whole discovery is the single scan launch.
func PairDiscoveryTable(s *gpu.Stream, e *Edges, t *MBRTable, rows [][]int32, min int64) [][2]int32 {
	nP := e.NumPolys()
	if nP == 0 || len(rows) == 0 {
		return nil
	}
	rowOf := make([]int32, nP)
	for i := range rowOf {
		rowOf[i] = -1
	}
	total := 0
	for ri, r := range rows {
		for _, p := range r {
			rowOf[p] = int32(ri)
		}
		total += len(r)
	}
	perRow := make([][]int32, len(rows))
	for ri, r := range rows {
		perRow[ri] = make([]int32, 0, len(r))
	}
	// Gather each row's members in XOrder sequence (fused into the scan
	// launch below: the scan's per-thread constant covers the gather read, so
	// no extra launch overhead is charged).
	for _, p := range t.XOrder {
		if ri := rowOf[p]; ri >= 0 {
			perRow[ri] = append(perRow[ri], p)
		}
	}
	order := make([]int32, 0, total)
	rowEnd := make([]int32, 0, total)
	for _, seg := range perRow {
		order = append(order, seg...)
		for range seg {
			rowEnd = append(rowEnd, int32(len(order)))
		}
	}
	return pairScan(s, e, t, order, rowEnd, min)
}

// pairScan is the shared scan kernel of the discovery variants: each thread
// walks its row's x-window emitting expanded-MBR-overlapping pairs.
func pairScan(s *gpu.Stream, e *Edges, t *MBRTable, order, rowEnd []int32, min int64) [][2]int32 {
	// Launch executes thread bodies sequentially in tid order, so appending
	// to one shared slice produces exactly the concatenation order the old
	// per-thread lists had, without a slice header per thread or the final
	// copy.
	var out [][2]int32
	s.Launch("pair-scan", len(order), func(tid int) int64 {
		i := order[tid]
		limit := t.XHi[i] + 2*min
		end := int(rowEnd[tid])
		var ops int64
		for k := tid + 1; k < end; k++ {
			j := order[k]
			if t.XLo[j] > limit {
				break
			}
			ops++
			if t.YLo[j] <= t.YHi[i]+2*min && t.YLo[i] <= t.YHi[j]+2*min {
				a, b := i, j
				if a > b {
					a, b = b, a
				}
				out = append(out, [2]int32{a, b})
			}
		}
		return ops + 1
	})
	return out
}

// PairDiscoveryMembers is PairDiscoveryRows over explicit member lists of a
// shared packed buffer: the MBR kernel covers every polygon of the buffer
// (the rows jointly own it), each row's members are sorted by MBR x in one
// modeled sort, and the scan kernel walks each member's x-window within its
// own row. Pairs are global polygon indices into the shared buffer.
func PairDiscoveryMembers(s *gpu.Stream, e *Edges, rows [][]int32, min int64) [][2]int32 {
	nP := e.NumPolys()
	if nP == 0 || len(rows) == 0 {
		return nil
	}
	xlo := make([]int64, nP)
	xhi := make([]int64, nP)
	ylo := make([]int64, nP)
	yhi := make([]int64, nP)
	s.Launch("poly-mbr", nP, func(tid int) int64 {
		lo, hi := e.PolyEdges(tid)
		box := geom.EmptyRect()
		for i := lo; i < hi; i++ {
			box = box.Include(geom.Pt(e.X0[i], e.Y0[i]))
		}
		xlo[tid], xhi[tid] = box.XLo, box.XHi
		ylo[tid], yhi[tid] = box.YLo, box.YHi
		return int64(hi - lo)
	})
	total := 0
	for _, r := range rows {
		total += len(r)
	}
	order := make([]int32, 0, total)
	rowEnd := make([]int32, 0, total)
	maxRow := 1
	for _, r := range rows {
		start := len(order)
		order = append(order, r...)
		seg := order[start:]
		sortBy(seg, func(a, b int32) bool {
			if xlo[a] != xlo[b] {
				return xlo[a] < xlo[b]
			}
			return a < b
		})
		for range seg {
			rowEnd = append(rowEnd, int32(len(order)))
		}
		if len(seg) > maxRow {
			maxRow = len(seg)
		}
	}
	logn := int64(1)
	for 1<<logn < maxRow {
		logn++
	}
	s.Launch("sort-mbrs", len(order), func(tid int) int64 { return logn * logn })

	var out [][2]int32
	s.Launch("pair-scan", len(order), func(tid int) int64 {
		i := order[tid]
		limit := xhi[i] + 2*min
		end := int(rowEnd[tid])
		var ops int64
		for k := tid + 1; k < end; k++ {
			j := order[k]
			if xlo[j] > limit {
				break
			}
			ops++
			if ylo[j] <= yhi[i]+2*min && ylo[i] <= yhi[j]+2*min {
				a, b := i, j
				if a > b {
					a, b = b, a
				}
				out = append(out, [2]int32{a, b})
			}
		}
		return ops + 1
	})
	return out
}

// NotchMembers launches the brute-force intra-polygon notch executor over an
// explicit member list — one thread per member polygon, same pair loop as
// NotchBrute. Hit.A carries the canonical polygon index (not the member
// slot), matching what NotchBrute emits for that polygon.
func NotchMembers(s *gpu.Stream, e *Edges, polys []int32, lim checks.SpacingLimit, c Collector) {
	s.Launch("notch-members", len(polys), func(tid int) int64 {
		p := polys[tid]
		lo, hi := e.PolyEdges(int(p))
		var ops int64
		for i := lo; i < hi; i++ {
			ei := e.Edge(i)
			for j := i + 1; j < hi; j++ {
				ops++
				if m, ok := checks.EdgePairSpacingLim(ei, e.Edge(j), lim); ok {
					c(Hit{Marker: m, A: p, B: -1})
				}
			}
		}
		return ops
	})
}
