package kernels

import (
	"testing"
	"unsafe"

	"opendrc/internal/geom"
)

// TestPackAllocsPerRun is the regression gate for the counting-pass Pack:
// whatever the polygon count, packing costs exactly four allocations — the
// Edges header, the contiguous coordinate backing, the Poly ids, and the
// PolyStart table. Growth-by-append would scale with the edge count and
// trip this immediately.
func TestPackAllocsPerRun(t *testing.T) {
	polys := make([]geom.Polygon, 0, 256)
	for i := 0; i < 256; i++ {
		x := int64(i) * 100
		polys = append(polys, geom.MustPolygon([]geom.Point{
			geom.Pt(x, 0), geom.Pt(x+40, 0), geom.Pt(x+40, 40), geom.Pt(x, 40),
		}))
	}
	allocs := testing.AllocsPerRun(10, func() {
		e := Pack(polys)
		if e.Len() != 4*len(polys) {
			t.Fatalf("Len = %d", e.Len())
		}
	})
	if allocs > 4 {
		t.Errorf("Pack allocs = %v, want <= 4 (header, coords, Poly, PolyStart)", allocs)
	}
}

// TestPackContiguousLayout pins the SoA transfer layout: the six coordinate
// slices are carved out of one backing array in X0,Y0,X1,Y1,X2,Y2 order —
// the block the single modeled "edges" copy transfers — and each slice's
// capacity is clipped so an append cannot silently bleed into its neighbor.
func TestPackContiguousLayout(t *testing.T) {
	polys := []geom.Polygon{
		geom.MustPolygon([]geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(10, 10), geom.Pt(0, 10)}),
	}
	e := Pack(polys)
	n := e.Len()
	if n == 0 {
		t.Fatal("empty pack")
	}
	slices := [][]int64{e.X0, e.Y0, e.X1, e.Y1, e.X2, e.Y2}
	for i, s := range slices {
		if len(s) != n || cap(s) != n {
			t.Errorf("slice %d: len/cap = %d/%d, want %d/%d", i, len(s), cap(s), n, n)
		}
		if i > 0 {
			// Adjacent carve: the next slice starts right after the previous
			// one in the shared backing array.
			prev := unsafe.Pointer(unsafe.SliceData(slices[i-1]))
			cur := unsafe.Pointer(unsafe.SliceData(s))
			if uintptr(cur) != uintptr(prev)+uintptr(n)*8 {
				t.Errorf("slice %d does not follow slice %d contiguously", i, i-1)
			}
		}
	}
}
