package kernels

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"opendrc/internal/checks"
	"opendrc/internal/geom"
	"opendrc/internal/gpu"
)

func newStream() *gpu.Stream {
	return gpu.NewDevice(gpu.GTX1660Ti()).NewStream("test")
}

func randPolys(rng *rand.Rand, n int) []geom.Polygon {
	polys := make([]geom.Polygon, n)
	for i := range polys {
		x := int64(rng.Intn(2000))
		y := int64(rng.Intn(2000))
		w := int64(5 + rng.Intn(80))
		h := int64(5 + rng.Intn(80))
		if rng.Intn(3) == 0 {
			// L-shape for edge-count variety.
			aw := 1 + w/2
			ah := 1 + h/2
			polys[i] = geom.MustPolygon([]geom.Point{
				geom.Pt(x, y), geom.Pt(x, y+h), geom.Pt(x+aw, y+h),
				geom.Pt(x+aw, y+ah), geom.Pt(x+w, y+ah), geom.Pt(x+w, y),
			})
		} else {
			polys[i] = geom.RectPolygon(geom.R(x, y, x+w, y+h))
		}
	}
	return polys
}

// markerKey canonicalizes a marker for set comparison.
func markerKey(m checks.Marker) string {
	return fmt.Sprintf("%v|%d|%v", m.Box, m.Dist, m.Corner)
}

func sortedKeys(ms []checks.Marker) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = markerKey(m)
	}
	sort.Strings(out)
	// Dedup: the same physical violation may be discovered through
	// different enumeration orders.
	uniq := out[:0]
	for i, k := range out {
		if i == 0 || k != uniq[len(uniq)-1] {
			uniq = append(uniq, k)
		}
	}
	return uniq
}

func eqKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func cpuSpacing(polys []geom.Polygon, min int64) []checks.Marker {
	var out []checks.Marker
	for i := range polys {
		for j := i + 1; j < len(polys); j++ {
			checks.CheckSpacing(polys[i], polys[j], min, func(m checks.Marker) {
				out = append(out, m)
			})
		}
	}
	return out
}

func TestPackRoundTrip(t *testing.T) {
	polys := []geom.Polygon{
		geom.RectPolygon(geom.R(0, 0, 10, 10)),
		geom.MustPolygon([]geom.Point{
			geom.Pt(20, 0), geom.Pt(20, 30), geom.Pt(30, 30),
			geom.Pt(30, 10), geom.Pt(40, 10), geom.Pt(40, 0),
		}),
	}
	e := Pack(polys)
	if e.Len() != 10 || e.NumPolys() != 2 {
		t.Fatalf("len=%d polys=%d", e.Len(), e.NumPolys())
	}
	for pi, p := range polys {
		lo, hi := e.PolyEdges(pi)
		if hi-lo != p.NumEdges() {
			t.Fatalf("poly %d edge range %d..%d", pi, lo, hi)
		}
		for k := 0; k < p.NumEdges(); k++ {
			if e.Edge(lo+k) != p.Edge(k) {
				t.Errorf("poly %d edge %d mismatch", pi, k)
			}
			wantNext := p.Edge((k + 1) % p.NumEdges())
			if e.NextEdge(lo+k) != wantNext {
				t.Errorf("poly %d next-edge %d mismatch", pi, k)
			}
		}
	}
	if e.Bytes() <= 0 {
		t.Error("Bytes() must be positive")
	}
}

func TestWidthBruteMatchesCPU(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	polys := randPolys(rng, 60)
	e := Pack(polys)
	const min = 12
	var gpuHits []checks.Marker
	WidthBrute(newStream(), e, min, func(h Hit) { gpuHits = append(gpuHits, h.Marker) })
	var cpuHits []checks.Marker
	for _, p := range polys {
		checks.CheckWidth(p, min, func(m checks.Marker) { cpuHits = append(cpuHits, m) })
	}
	if !eqKeys(sortedKeys(gpuHits), sortedKeys(cpuHits)) {
		t.Errorf("width: gpu %d hits vs cpu %d hits", len(gpuHits), len(cpuHits))
	}
}

func TestSpacingSweepMatchesCPU(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		rng := rand.New(rand.NewSource(seed))
		polys := randPolys(rng, 80)
		e := Pack(polys)
		const min = 15
		var gpuHits []checks.Marker
		SpacingSweep(newStream(), e, checks.Lim(min), FilterSpacing, func(h Hit) {
			gpuHits = append(gpuHits, h.Marker)
		})
		want := sortedKeys(cpuSpacing(polys, min))
		got := sortedKeys(gpuHits)
		if !eqKeys(got, want) {
			t.Fatalf("seed %d: sweep %d unique markers vs cpu %d", seed, len(got), len(want))
		}
	}
}

func TestSpacingBruteMatchesCPU(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	polys := randPolys(rng, 40)
	e := Pack(polys)
	const min = 15
	var pairs [][2]int32
	for i := 0; i < len(polys); i++ {
		for j := i + 1; j < len(polys); j++ {
			pairs = append(pairs, [2]int32{int32(i), int32(j)})
		}
	}
	var gpuHits []checks.Marker
	SpacingBrute(newStream(), e, pairs, checks.Lim(min), func(h Hit) { gpuHits = append(gpuHits, h.Marker) })
	want := sortedKeys(cpuSpacing(polys, min))
	if got := sortedKeys(gpuHits); !eqKeys(got, want) {
		t.Errorf("brute %d unique markers vs cpu %d", len(got), len(want))
	}
}

func TestSweepWidthFilterMatchesCPU(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	polys := randPolys(rng, 60)
	e := Pack(polys)
	const min = 12
	var gpuHits []checks.Marker
	SpacingSweep(newStream(), e, checks.Lim(min), FilterWidth, func(h Hit) {
		gpuHits = append(gpuHits, h.Marker)
	})
	var cpuHits []checks.Marker
	for _, p := range polys {
		checks.CheckWidth(p, min, func(m checks.Marker) { cpuHits = append(cpuHits, m) })
	}
	if !eqKeys(sortedKeys(gpuHits), sortedKeys(cpuHits)) {
		t.Errorf("width sweep mismatch: %d vs %d", len(gpuHits), len(cpuHits))
	}
}

func TestNotchKernelMatchesCPU(t *testing.T) {
	u := geom.MustPolygon([]geom.Point{
		geom.Pt(0, 0), geom.Pt(0, 30), geom.Pt(10, 30), geom.Pt(10, 10),
		geom.Pt(16, 10), geom.Pt(16, 30), geom.Pt(26, 30), geom.Pt(26, 0),
	})
	e := Pack([]geom.Polygon{u})
	var brute, sweep, cpu []checks.Marker
	NotchBrute(newStream(), e, checks.Lim(8), func(h Hit) { brute = append(brute, h.Marker) })
	SpacingSweep(newStream(), e, checks.Lim(8), FilterNotch, func(h Hit) { sweep = append(sweep, h.Marker) })
	checks.CheckNotch(u, 8, func(m checks.Marker) { cpu = append(cpu, m) })
	if !eqKeys(sortedKeys(brute), sortedKeys(cpu)) {
		t.Errorf("notch brute mismatch")
	}
	if !eqKeys(sortedKeys(sweep), sortedKeys(cpu)) {
		t.Errorf("notch sweep mismatch")
	}
}

func TestAreaKernel(t *testing.T) {
	polys := []geom.Polygon{
		geom.RectPolygon(geom.R(0, 0, 10, 10)),  // 100
		geom.RectPolygon(geom.R(20, 0, 25, 5)),  // 25
		geom.RectPolygon(geom.R(40, 0, 60, 60)), // 1200
	}
	e := Pack(polys)
	var hits []Hit
	AreaKernel(newStream(), e, 2*100, func(h Hit) { hits = append(hits, h) })
	if len(hits) != 1 || hits[0].A != 1 {
		t.Errorf("area hits = %+v", hits)
	}
	if hits[0].Marker.Dist != 50 { // doubled area of the 25-unit square
		t.Errorf("dist = %d", hits[0].Marker.Dist)
	}
}

func TestRectilinearKernel(t *testing.T) {
	polys := []geom.Polygon{
		geom.RectPolygon(geom.R(0, 0, 10, 10)),
		geom.MustPolygon([]geom.Point{geom.Pt(20, 0), geom.Pt(30, 0), geom.Pt(30, 10)}),
	}
	e := Pack(polys)
	var hits []Hit
	RectilinearKernel(newStream(), e, func(h Hit) { hits = append(hits, h) })
	if len(hits) != 1 || hits[0].A != 1 {
		t.Errorf("rectilinear hits = %+v", hits)
	}
}

func TestEnclosureKernelMatchesCPU(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var vias, metals []geom.Polygon
	for i := 0; i < 50; i++ {
		x := int64(rng.Intn(1500))
		y := int64(rng.Intn(1500))
		vias = append(vias, geom.RectPolygon(geom.R(x, y, x+18, y+18)))
		// Metal pad with randomized (sometimes insufficient) margins.
		ml := x - int64(rng.Intn(8))
		mb := y - int64(rng.Intn(8))
		mr := x + 18 + int64(rng.Intn(8))
		mt := y + 18 + int64(rng.Intn(8))
		metals = append(metals, geom.RectPolygon(geom.R(ml, mb, mr, mt)))
	}
	const min = 5
	ie := Pack(vias)
	oe := Pack(metals)
	var pairs [][2]int32
	for i := range vias {
		pairs = append(pairs, [2]int32{int32(i), int32(i)})
	}
	var gpuHits []checks.Marker
	EnclosureKernel(newStream(), ie, oe, pairs, min, func(h Hit) {
		gpuHits = append(gpuHits, h.Marker)
	})
	var cpuHits []checks.Marker
	for i := range vias {
		checks.CheckEnclosure(vias[i], metals[i], min, func(m checks.Marker) {
			cpuHits = append(cpuHits, m)
		})
	}
	if !eqKeys(sortedKeys(gpuHits), sortedKeys(cpuHits)) {
		t.Errorf("enclosure: gpu %d vs cpu %d", len(gpuHits), len(cpuHits))
	}
}

func TestEnclosureKernelEscape(t *testing.T) {
	via := geom.RectPolygon(geom.R(0, 0, 20, 20))
	metal := geom.RectPolygon(geom.R(10, -5, 40, 25)) // via sticks out left
	ie := Pack([]geom.Polygon{via})
	oe := Pack([]geom.Polygon{metal})
	var hits []Hit
	EnclosureKernel(newStream(), ie, oe, [][2]int32{{0, 0}}, 3, func(h Hit) { hits = append(hits, h) })
	if len(hits) != 1 || hits[0].Marker.Dist != -1 {
		t.Errorf("escape hits = %+v", hits)
	}
}

// TestExecutorSelectionTradeoff captures the engine's executor-selection
// rationale: with MBR-filtered candidate pairs (how the engine drives it),
// the brute executor only touches pairs that can interact, beating the
// sweepline's scan-everything kernels on small rows; a naive all-pairs
// brute enumeration, in contrast, loses to the sweepline once the
// quadratic work dominates.
func TestExecutorSelectionTradeoff(t *testing.T) {
	var polys []geom.Polygon
	for i := 0; i < 600; i++ {
		x := int64(i * 500)
		polys = append(polys, geom.RectPolygon(geom.R(x, 0, x+20, 20)))
	}
	e := Pack(polys)

	run := func(pairs [][2]int32, sweepMode bool) (dur int64) {
		dev := gpu.NewDevice(gpu.GTX1660Ti())
		s := dev.NewStream("s")
		if sweepMode {
			SpacingSweep(s, e, checks.Lim(15), FilterSpacing, func(Hit) {})
		} else {
			SpacingBrute(s, e, pairs, checks.Lim(15), func(Hit) {})
		}
		s.Synchronize()
		return int64(dev.HostClock())
	}

	// MBR-filtered pairs: nothing interacts on this sparse layout, so the
	// brute executor's modeled time is just one (empty) launch.
	var filtered [][2]int32
	for i := 0; i < len(polys); i++ {
		bi := polys[i].MBR().Expand(15)
		for j := i + 1; j < len(polys); j++ {
			if bi.Overlaps(polys[j].MBR()) {
				filtered = append(filtered, [2]int32{int32(i), int32(j)})
			}
		}
	}
	if b, sw := run(filtered, false), run(nil, true); b >= sw {
		t.Errorf("filtered brute %d >= sweep %d (MBR pruning should win on sparse rows)", b, sw)
	}
	// All-pairs brute loses: quadratic edge enumeration dominates.
	var all [][2]int32
	for i := 0; i < len(polys); i++ {
		for j := i + 1; j < len(polys); j++ {
			all = append(all, [2]int32{int32(i), int32(j)})
		}
	}
	if b, sw := run(all, false), run(nil, true); sw >= b {
		t.Errorf("sweep %d >= all-pairs brute %d (sweep should prune)", sw, b)
	}
}

func TestPackEmpty(t *testing.T) {
	e := Pack(nil)
	if e.Len() != 0 || e.NumPolys() != 0 {
		t.Errorf("empty pack: len=%d polys=%d", e.Len(), e.NumPolys())
	}
	SpacingSweep(newStream(), e, checks.Lim(10), FilterSpacing, func(Hit) {
		t.Error("hit on empty buffer")
	})
}
