package kernels

import (
	"opendrc/internal/checks"
	"opendrc/internal/geom"
	"opendrc/internal/gpu"
)

// Hit is one violation found by a kernel, tagged with the packed polygon
// indices involved (B == -1 for single-polygon rules).
type Hit struct {
	Marker checks.Marker
	A, B   int32
}

// Collector receives hits. Kernels execute threads in tid order on the
// simulated device, so collection is deterministic.
type Collector func(Hit)

// PairFilter selects which edge pairs a sweep kernel tests.
type PairFilter int

// Sweep-kernel pair filters.
const (
	// FilterSpacing tests exterior-facing pairs of *different* polygons
	// (inter-polygon spacing), plus diagonal corners.
	FilterSpacing PairFilter = iota
	// FilterWidth tests interior-facing pairs of the *same* polygon.
	FilterWidth
	// FilterNotch tests exterior-facing pairs of the same polygon.
	FilterNotch
)

// WidthBrute launches the brute-force intra-polygon executor: one thread per
// polygon, each enumerating its own edge pairs — the paper's small-task
// branch ("parallel threads are launched for each polygon (or pair), in
// which edge pairs are enumerated and checked").
func WidthBrute(s *gpu.Stream, e *Edges, min int64, c Collector) {
	s.Launch("width-brute", e.NumPolys(), func(tid int) int64 {
		lo, hi := e.PolyEdges(tid)
		var ops int64
		for i := lo; i < hi; i++ {
			ei := e.Edge(i)
			for j := i + 1; j < hi; j++ {
				ops++
				if m, ok := checks.EdgePairWidth(ei, e.Edge(j), min); ok {
					c(Hit{Marker: m, A: int32(tid), B: -1})
				}
			}
		}
		return ops
	})
}

// NotchBrute launches the brute-force intra-polygon notch (self-spacing)
// executor.
func NotchBrute(s *gpu.Stream, e *Edges, lim checks.SpacingLimit, c Collector) {
	s.Launch("notch-brute", e.NumPolys(), func(tid int) int64 {
		lo, hi := e.PolyEdges(tid)
		var ops int64
		for i := lo; i < hi; i++ {
			ei := e.Edge(i)
			for j := i + 1; j < hi; j++ {
				ops++
				if m, ok := checks.EdgePairSpacingLim(ei, e.Edge(j), lim); ok {
					c(Hit{Marker: m, A: int32(tid), B: -1})
				}
			}
		}
		return ops
	})
}

// AreaKernel launches one thread per polygon computing the Shoelace doubled
// area over the packed edges and flagging polygons below minArea2.
func AreaKernel(s *gpu.Stream, e *Edges, minArea2 int64, c Collector) {
	s.Launch("area", e.NumPolys(), func(tid int) int64 {
		lo, hi := e.PolyEdges(tid)
		var s2 int64
		box := geom.EmptyRect()
		for i := lo; i < hi; i++ {
			s2 += e.X0[i]*e.Y1[i] - e.X1[i]*e.Y0[i]
			box = box.Include(geom.Pt(e.X0[i], e.Y0[i]))
		}
		if s2 < 0 {
			s2 = -s2
		}
		if s2 < minArea2 {
			c(Hit{Marker: checks.Marker{Box: box, Dist: s2}, A: int32(tid), B: -1})
		}
		return int64(hi - lo)
	})
}

// RectilinearKernel launches one thread per polygon flagging any
// non-axis-aligned edge.
func RectilinearKernel(s *gpu.Stream, e *Edges, c Collector) {
	s.Launch("rectilinear", e.NumPolys(), func(tid int) int64 {
		lo, hi := e.PolyEdges(tid)
		box := geom.EmptyRect()
		bad := false
		for i := lo; i < hi; i++ {
			box = box.Include(geom.Pt(e.X0[i], e.Y0[i]))
			if e.X0[i] != e.X1[i] && e.Y0[i] != e.Y1[i] {
				bad = true
			}
		}
		if bad {
			c(Hit{Marker: checks.Marker{Box: box}, A: int32(tid), B: -1})
		}
		return int64(hi - lo)
	})
}

// SpacingBrute launches the brute-force pair executor: one thread per
// candidate polygon pair, enumerating the cross product of their edges.
// Each pair is prescreened on the packed coordinates before the edge
// structs are materialized: when the two edge boxes are separated by at
// least lim.Reach() on either axis, the parallel-edge test cannot fire
// (the perpendicular distance is at least the separation, and a
// same-axis separation kills the projection overlap) and neither can the
// corner test (the corners lie inside the edge boxes, so their dx or dy
// is at least the separation, which is >= lim.Min). The skip changes
// neither the emitted markers nor their order, and the modeled op count
// still charges both tests, so reports stay bit-identical.
func SpacingBrute(s *gpu.Stream, e *Edges, pairs [][2]int32, lim checks.SpacingLimit, c Collector) {
	reach := lim.Reach()
	s.Launch("space-brute", len(pairs), func(tid int) int64 {
		pa, pb := pairs[tid][0], pairs[tid][1]
		alo, ahi := e.PolyEdges(int(pa))
		blo, bhi := e.PolyEdges(int(pb))
		var ops int64
		for i := alo; i < ahi; i++ {
			ixlo, ixhi := minI64(e.X0[i], e.X1[i]), maxI64(e.X0[i], e.X1[i])
			iylo, iyhi := minI64(e.Y0[i], e.Y1[i]), maxI64(e.Y0[i], e.Y1[i])
			var ei, eo geom.Edge
			loaded := false
			for j := blo; j < bhi; j++ {
				ops += 2
				if minI64(e.X0[j], e.X1[j])-ixhi >= reach || ixlo-maxI64(e.X0[j], e.X1[j]) >= reach ||
					minI64(e.Y0[j], e.Y1[j])-iyhi >= reach || iylo-maxI64(e.Y0[j], e.Y1[j]) >= reach {
					continue
				}
				if !loaded {
					ei, eo = e.Edge(i), e.NextEdge(i)
					loaded = true
				}
				fj := e.Edge(j)
				if m, ok := checks.EdgePairSpacingLim(ei, fj, lim); ok {
					c(Hit{Marker: m, A: pa, B: pb})
				}
				if m, ok := checks.CornerSpacing(ei, eo, fj, e.NextEdge(j), lim.Min); ok {
					c(Hit{Marker: m, A: pa, B: pb})
				}
			}
		}
		return ops
	})
}

// sweepRange computes, in a sorted perpendicular-coordinate view, the
// half-open candidate window (tid+1 .. end) of edges within dist of the
// edge at view position tid.
func sweepRange(e *Edges, view []int32, perpOf func(int32) int64, tid int, dist int64) int {
	limit := perpOf(view[tid]) + dist
	end := tid + 1
	for end < len(view) && perpOf(view[end]) <= limit {
		end++
	}
	return end
}

// SpacingSweep launches the parallel sweepline executor for spacing (or
// width/notch via the filter) over the packed edges, following X-Check's
// two-kernel structure: a scan kernel determines each edge's check range in
// the sorted order; a check kernel then tests each edge against every edge
// in its range. Two passes run: horizontal edges swept in y, vertical edges
// swept in x; a third corner pass handles diagonal gaps (spacing only).
func SpacingSweep(s *gpu.Stream, e *Edges, lim checks.SpacingLimit, filter PairFilter, c Collector) {
	v := buildViews(s, e)
	sweepAxis(s, e, v.horiz, func(i int32) int64 { return e.Y0[i] }, lim, filter, c)
	sweepAxis(s, e, v.vert, func(i int32) int64 { return e.X0[i] }, lim, filter, c)
	if filter == FilterSpacing {
		cornerSweep(s, e, lim.Min, c)
	}
}

func sweepAxis(s *gpu.Stream, e *Edges, view []int32, perpOf func(int32) int64, lim checks.SpacingLimit, filter PairFilter, c Collector) {
	if len(view) == 0 {
		return
	}
	// Kernel 1: parallel scan — each thread finds its check-range end. The
	// window spans the limit's reach so conditional (PRL) thresholds are
	// fully covered.
	ranges := make([]int32, len(view))
	s.Launch("scan-range", len(view), func(tid int) int64 {
		end := sweepRange(e, view, perpOf, tid, lim.Reach()-1)
		ranges[tid] = int32(end)
		return int64(end-tid) + 1
	})
	// Kernel 2: check each edge against its range.
	s.Launch("sweep-check", len(view), func(tid int) int64 {
		i := view[tid]
		ei := e.Edge(int(i))
		var ops int64
		for k := tid + 1; k < int(ranges[tid]); k++ {
			j := view[k]
			ops++
			samePoly := e.Poly[i] == e.Poly[j]
			switch filter {
			case FilterSpacing:
				if samePoly {
					continue
				}
				if m, ok := checks.EdgePairSpacingLim(ei, e.Edge(int(j)), lim); ok {
					c(Hit{Marker: m, A: e.Poly[i], B: e.Poly[j]})
				}
			case FilterWidth:
				if !samePoly {
					continue
				}
				if m, ok := checks.EdgePairWidth(ei, e.Edge(int(j)), lim.Min); ok {
					c(Hit{Marker: m, A: e.Poly[i], B: -1})
				}
			case FilterNotch:
				if !samePoly {
					continue
				}
				if m, ok := checks.EdgePairSpacingLim(ei, e.Edge(int(j)), lim); ok {
					c(Hit{Marker: m, A: e.Poly[i], B: -1})
				}
			}
		}
		return ops
	})
}

// cornerSweep tests diagonal corner pairs: corners (one per edge) sorted by
// x, each thread scanning the x-window of width min ahead of its corner.
func cornerSweep(s *gpu.Stream, e *Edges, min int64, c Collector) {
	n := e.Len()
	if n == 0 {
		return
	}
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	cornerSweepList(s, e, order, min, c)
}

// cornerSweepList is cornerSweep over an explicit edge list (the
// member-indexed variants restrict it to a row's edges of a shared buffer).
// The order slice is sorted in place; callers pass a fresh slice.
func cornerSweepList(s *gpu.Stream, e *Edges, order []int32, min int64, c Collector) {
	n := len(order)
	if n == 0 {
		return
	}
	// Corners sorted by x(P1); charged inside the same modeled sort as the
	// views (cheap relative to checks), so only the scan+check are charged.
	sortBy(order, func(a, b int32) bool {
		if e.X1[a] != e.X1[b] {
			return e.X1[a] < e.X1[b]
		}
		return a < b
	})
	ranges := make([]int32, n)
	s.Launch("corner-scan", n, func(tid int) int64 {
		limit := e.X1[order[tid]] + min - 1
		end := tid + 1
		for end < n && e.X1[order[end]] <= limit {
			end++
		}
		ranges[tid] = int32(end)
		return int64(end-tid) + 1
	})
	s.Launch("corner-check", n, func(tid int) int64 {
		i := order[tid]
		ei, eo := e.Edge(int(i)), e.NextEdge(int(i))
		var ops int64
		for k := tid + 1; k < int(ranges[tid]); k++ {
			j := order[k]
			if e.Poly[i] == e.Poly[j] {
				continue
			}
			ops++
			if m, ok := checks.CornerSpacing(ei, eo, e.Edge(int(j)), e.NextEdge(int(j)), min); ok {
				c(Hit{Marker: m, A: e.Poly[i], B: e.Poly[j]})
			}
		}
		return ops
	})
}

func sortBy(v []int32, less func(a, b int32) bool) {
	// Insertion-free wrapper around sort.Slice without re-importing sort in
	// two files... kept simple:
	quickSort(v, 0, len(v)-1, less)
}

func quickSort(v []int32, lo, hi int, less func(a, b int32) bool) {
	for lo < hi {
		p := v[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for less(v[i], p) {
				i++
			}
			for less(p, v[j]) {
				j--
			}
			if i <= j {
				v[i], v[j] = v[j], v[i]
				i++
				j--
			}
		}
		if j-lo < hi-i {
			quickSort(v, lo, j, less)
			lo = i
		} else {
			quickSort(v, i, hi, less)
			hi = j
		}
	}
}

// EnclosureKernel launches one thread per (inner, outer) candidate pair,
// testing containment (crossing-number over the packed outer edges) and the
// per-side enclosure margins.
func EnclosureKernel(s *gpu.Stream, inner, outer *Edges, pairs [][2]int32, min int64, c Collector) {
	s.Launch("enclosure", len(pairs), func(tid int) int64 {
		pi, po := pairs[tid][0], pairs[tid][1]
		ilo, ihi := inner.PolyEdges(int(pi))
		olo, ohi := outer.PolyEdges(int(po))
		var ops int64
		// Containment: every inner vertex inside the outer polygon.
		contained := true
		for i := ilo; i < ihi && contained; i++ {
			ops += int64(ohi - olo)
			if !pointInPacked(outer, olo, ohi, inner.X0[i], inner.Y0[i]) {
				contained = false
			}
		}
		if !contained {
			box := geom.EmptyRect()
			for i := ilo; i < ihi; i++ {
				box = box.Include(geom.Pt(inner.X0[i], inner.Y0[i]))
			}
			c(Hit{Marker: checks.Marker{Box: box, Dist: -1}, A: pi, B: po})
			return ops
		}
		for i := ilo; i < ihi; i++ {
			ei := inner.Edge(i)
			for j := olo; j < ohi; j++ {
				ops++
				if m, ok := checks.EdgePairEnclosure(ei, outer.Edge(j), min); ok {
					c(Hit{Marker: m, A: pi, B: po})
				}
			}
		}
		return ops
	})
}

// pointInPacked is the crossing-number containment test over a packed edge
// range, boundary-inclusive, matching geom.Polygon.ContainsPoint.
func pointInPacked(e *Edges, lo, hi int, x, y int64) bool {
	inside := false
	for i := lo; i < hi; i++ {
		ax, ay := e.X0[i], e.Y0[i]
		bx, by := e.X1[i], e.Y1[i]
		if ax == bx && x == ax && y >= minI64(ay, by) && y <= maxI64(ay, by) {
			return true
		}
		if ay == by && y == ay && x >= minI64(ax, bx) && x <= maxI64(ax, bx) {
			return true
		}
		if (ay > y) != (by > y) {
			num := (y-ay)*(bx-ax) + ax*(by-ay)
			den := by - ay
			if den > 0 {
				if x*den < num {
					inside = !inside
				}
			} else {
				if x*den > num {
					inside = !inside
				}
			}
		}
	}
	return inside
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// PolyFromPacked reconstructs polygon p from the packed buffer (used by the
// enclosure-evaluation kernel, whose semantics are defined on polygons).
func PolyFromPacked(e *Edges, p int) geom.Polygon {
	lo, hi := e.PolyEdges(p)
	pts := make([]geom.Point, 0, hi-lo)
	for i := lo; i < hi; i++ {
		pts = append(pts, geom.Pt(e.X0[i], e.Y0[i]))
	}
	return geom.MustPolygon(pts)
}

// EnclosureEval launches one thread per inner shape (via), resolving the
// enclosure rule against that via's candidate outer polygons with exactly
// the sequential mode's semantics (checks.EvaluateEnclosure): pass when some
// candidate covers the via with margin >= min, report best-candidate
// violations otherwise.
func EnclosureEval(s *gpu.Stream, inner, outer *Edges, cands [][]int32, min int64, c Collector) {
	s.Launch("enclosure-eval", inner.NumPolys(), func(tid int) int64 {
		via := PolyFromPacked(inner, tid)
		metals := make([]geom.Polygon, len(cands[tid]))
		var ops int64 = int64(via.NumEdges())
		for i, mi := range cands[tid] {
			metals[i] = PolyFromPacked(outer, int(mi))
			ops += int64(via.NumEdges() * metals[i].NumEdges())
		}
		checks.EvaluateEnclosure(via, metals, min, func(m checks.Marker) {
			c(Hit{Marker: m, A: int32(tid), B: -1})
		})
		return ops
	})
}

// PairDiscoveryRows runs the pair discovery of PairDiscovery for many
// disjoint polygon ranges (partition rows) in one batched launch set: the
// MBR kernel covers every polygon, the modeled sort covers each row's
// x-order, and a single scan kernel walks each polygon's x-window within
// its own row. Rows become grid blocks of one launch instead of separate
// launches, the standard batching for many small independent tasks.
func PairDiscoveryRows(s *gpu.Stream, e *Edges, rowsP [][2]int32, min int64) [][2]int32 {
	nP := e.NumPolys()
	if nP == 0 || len(rowsP) == 0 {
		return nil
	}
	xlo := make([]int64, nP)
	xhi := make([]int64, nP)
	ylo := make([]int64, nP)
	yhi := make([]int64, nP)
	s.Launch("poly-mbr", nP, func(tid int) int64 {
		lo, hi := e.PolyEdges(tid)
		box := geom.EmptyRect()
		for i := lo; i < hi; i++ {
			box = box.Include(geom.Pt(e.X0[i], e.Y0[i]))
		}
		xlo[tid], xhi[tid] = box.XLo, box.XHi
		ylo[tid], yhi[tid] = box.YLo, box.YHi
		return int64(hi - lo)
	})
	// Per-row x-order, concatenated; rowOf[t] bounds thread t's scan.
	order := make([]int32, 0, nP)
	rowEnd := make([]int32, 0, nP)
	maxRow := 1
	for _, r := range rowsP {
		start := len(order)
		for p := r[0]; p < r[1]; p++ {
			order = append(order, p)
		}
		seg := order[start:]
		sortBy(seg, func(a, b int32) bool {
			if xlo[a] != xlo[b] {
				return xlo[a] < xlo[b]
			}
			return a < b
		})
		for range seg {
			rowEnd = append(rowEnd, int32(len(order)))
		}
		if len(seg) > maxRow {
			maxRow = len(seg)
		}
	}
	logn := int64(1)
	for 1<<logn < maxRow {
		logn++
	}
	s.Launch("sort-mbrs", len(order), func(tid int) int64 { return logn * logn })

	// Launch executes thread bodies sequentially in tid order, so appending
	// to one shared slice produces exactly the concatenation order the old
	// per-thread lists had, without a slice header per thread or the final
	// copy.
	var out [][2]int32
	s.Launch("pair-scan", len(order), func(tid int) int64 {
		i := order[tid]
		limit := xhi[i] + 2*min
		end := int(rowEnd[tid])
		var ops int64
		for k := tid + 1; k < end; k++ {
			j := order[k]
			if xlo[j] > limit {
				break
			}
			ops++
			if ylo[j] <= yhi[i]+2*min && ylo[i] <= yhi[j]+2*min {
				a, b := i, j
				if a > b {
					a, b = b, a
				}
				out = append(out, [2]int32{a, b})
			}
		}
		return ops + 1
	})
	return out
}

// PairDiscovery finds, on the device, every polygon pair whose
// rule-distance-expanded MBRs overlap — the MBR check pruning of Section
// IV-C executed as kernels so the brute-force executor only receives pairs
// that can actually interact. A first kernel computes per-polygon MBRs from
// the packed edges; the polygons are then ordered by XLo (modeled sort
// kernel) and a scan kernel walks each polygon's x-window emitting
// overlapping pairs.
func PairDiscovery(s *gpu.Stream, e *Edges, min int64) [][2]int32 {
	nP := e.NumPolys()
	if nP < 2 {
		return nil
	}
	xlo := make([]int64, nP)
	xhi := make([]int64, nP)
	ylo := make([]int64, nP)
	yhi := make([]int64, nP)
	s.Launch("poly-mbr", nP, func(tid int) int64 {
		lo, hi := e.PolyEdges(tid)
		box := geom.EmptyRect()
		for i := lo; i < hi; i++ {
			box = box.Include(geom.Pt(e.X0[i], e.Y0[i]))
		}
		xlo[tid], xhi[tid] = box.XLo, box.XHi
		ylo[tid], yhi[tid] = box.YLo, box.YHi
		return int64(hi - lo)
	})
	order := make([]int32, nP)
	for i := range order {
		order[i] = int32(i)
	}
	sortBy(order, func(a, b int32) bool {
		if xlo[a] != xlo[b] {
			return xlo[a] < xlo[b]
		}
		return a < b
	})
	logn := int64(1)
	for 1<<logn < nP {
		logn++
	}
	s.Launch("sort-mbrs", nP, func(tid int) int64 { return logn * logn })

	// Scan kernel: expanded boxes overlap iff the gap on each axis is at
	// most 2·min (each box grows by min on every side). Threads execute in
	// tid order, so one shared output slice preserves the per-thread
	// concatenation order.
	var out [][2]int32
	s.Launch("pair-scan", nP, func(tid int) int64 {
		i := order[tid]
		limit := xhi[i] + 2*min
		var ops int64
		for k := tid + 1; k < nP; k++ {
			j := order[k]
			if xlo[j] > limit {
				break
			}
			ops++
			if ylo[j] <= yhi[i]+2*min && ylo[i] <= yhi[j]+2*min {
				a, b := i, j
				if a > b {
					a, b = b, a
				}
				out = append(out, [2]int32{a, b})
			}
		}
		return ops + 1
	})
	return out
}
