package geocache

import (
	"testing"

	"opendrc/internal/geom"
)

// TestArenaRecycles pins the arena contract: a recycled buffer comes back
// zero-length with its grown capacity intact, and a fresh Get never aliases
// a buffer that is still outstanding.
func TestArenaRecycles(t *testing.T) {
	a := NewArena()

	r := a.Rects(8)
	for i := 0; i < 50; i++ {
		r = append(r, geom.Rect{XLo: int64(i)})
	}
	a.PutRects(r)
	r2 := a.Rects(8)
	if len(r2) != 0 {
		t.Fatalf("recycled buffer has len %d, want 0", len(r2))
	}
	if cap(r2) < 50 {
		t.Errorf("recycled buffer lost its growth: cap = %d, want >= 50", cap(r2))
	}

	// Two outstanding buffers must not alias.
	x := a.Rects(4)
	y := a.Rects(4)
	x = append(x, geom.Rect{XLo: 1})
	y = append(y, geom.Rect{XLo: 2})
	if &x[0] == &y[0] {
		t.Fatal("outstanding buffers alias")
	}
	a.PutRects(x)
	a.PutRects(y)

	p := a.Polys(3)
	a.PutPolys(p[:0])
	pr := a.Pairs()
	pr = append(pr, [2]int{1, 2})
	a.PutPairs(pr)
	if got := a.Pairs(); len(got) != 0 {
		t.Fatalf("recycled pair buffer has len %d, want 0", len(got))
	}
}

// TestArenaAllocsSteadyState verifies the point of the arena: once warm, a
// get/fill/put cycle performs no allocations.
func TestArenaAllocsSteadyState(t *testing.T) {
	a := NewArena()
	// Warm the pools.
	a.PutRects(a.Rects(64)[:0])
	allocs := testing.AllocsPerRun(100, func() {
		s := a.Rects(64)
		for i := 0; i < 64; i++ {
			s = append(s, geom.Rect{XLo: int64(i)})
		}
		a.PutRects(s)
	})
	if allocs > 0 {
		t.Errorf("steady-state rect cycle allocs = %v, want 0", allocs)
	}
}
