// Package geocache is OpenDRC's per-run geometry reuse layer. A check run
// touches each layer once per *rule*, but the expensive host-side geometry
// work — instance-expanding the layer (layout.FlattenLayer) and packing the
// result into the flattened edge buffer (kernels.Pack) — depends only on the
// layer. The Cache memoizes both per layer, so N rules sharing a layer cost
// one flatten and one pack; the paper's "flattened once" claim (Section V-C)
// then holds across the whole deck, not just within one rule. The
// downstream derivations — the per-polygon MBR table and the adaptive row
// partition (keyed additionally by the rule's interaction reach) — are
// memoized the same way, so the engine's prefetcher can compute a rule's
// entire host prep while the previous rule's kernels execute.
//
// Contract:
//
//   - One Cache serves one run over one layout. Results are computed at most
//     once per layer (single-flight: concurrent callers — e.g. the engine's
//     rule prefetcher — block on the first computation).
//   - Returned slices and buffers are SHARED and IMMUTABLE. Callers must not
//     write elements or sort them in place; the odrc-lint sharedbuf checker
//     enforces this outside the producing packages.
//   - Errors are cached like results: a flatten that trips the flatten-polys
//     budget or hits an injected fault fails every rule sharing that layer
//     with the same error, deterministically, while rules on other layers
//     are untouched.
//   - A panic during computation is captured as a *pool.PanicError and
//     cached as the entry's error, so the engine's per-rule guard still
//     reports it as a panic with the original stack.
package geocache

import (
	"context"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"

	"opendrc/internal/budget"
	"opendrc/internal/geom"
	"opendrc/internal/kernels"
	"opendrc/internal/layout"
	"opendrc/internal/partition"
	"opendrc/internal/pool"
)

// Stats counts cache traffic. Totals are deterministic for a fixed deck:
// misses equal the number of distinct layers computed and hits equal the
// remaining calls, independent of which caller (rule path or prefetcher)
// arrived first.
type Stats struct {
	FlattenHits, FlattenMisses int64
	PackHits, PackMisses       int64
	// Region-invalidation traffic (see InvalidateRegion). Segmented counts
	// calls that kept part of a layer; Full counts calls that degenerated to
	// a whole-layer drop. A segmented rebuild reuses RowsReused partition
	// rows verbatim and requeries RowsRequeried dirty rows from the
	// hierarchy.
	SegmentedInvalidations, FullInvalidations int64
	SegmentedRebuilds                         int64
	RowsReused, RowsRequeried                 int64
}

// FaultHook is the injection seam consulted before each flatten computation
// (the engine wires it to faults.SiteFlatten).
type FaultHook func(ctx context.Context, l layout.Layer) error

// Event describes one cache lookup: Op names the table ("flatten", "pack",
// "mbrs", "rows", "table"), Key the entry, Hit whether a prior computation
// was reused. Events carry no caller identity, so for a fixed deck the
// event multiset is deterministic even though prefetch racing reorders
// which lookup hits.
type Event struct {
	Op  string
	Key string
	Hit bool
}

// EventHook observes cache lookups (the engine wires it to the trace
// recorder's geocache track). The hook runs outside the cache lock.
type EventHook func(Event)

// flatEntry is one single-flight flatten computation.
type flatEntry struct {
	done  chan struct{}
	polys []layout.PlacedPoly
	err   error
}

// packEntry is one single-flight pack computation.
type packEntry struct {
	done  chan struct{}
	edges *kernels.Edges
	err   error
}

// mbrEntry is one single-flight per-layer MBR-table computation.
type mbrEntry struct {
	done  chan struct{}
	boxes []geom.Rect
	err   error
}

// rowsKey identifies one adaptive partition of a layer: rules with the same
// interaction reach and algorithm produce identical rows, and the prefetcher
// warms each key while the previous rule's kernels run.
type rowsKey struct {
	layer layout.Layer
	guard int64
	alg   partition.Algorithm
}

// rowsEntry is one single-flight partition computation.
type rowsEntry struct {
	done chan struct{}
	rows []partition.Row
	err  error
}

// tableEntry is one single-flight device-upload table computation.
type tableEntry struct {
	done chan struct{}
	t    *kernels.MBRTable
	err  error
}

// Cache is the per-run layer-keyed geometry memo. The zero value is not
// usable; construct with New.
type Cache struct {
	limits  budget.Limits
	hook    FaultHook
	eventFn EventHook
	arena   *Arena

	mu     sync.Mutex
	lo     *layout.Layout // bound on first use; one cache serves one layout
	flat   map[layout.Layer]*flatEntry
	packs  map[layout.Layer]*packEntry
	mbrs   map[layout.Layer]*mbrEntry
	rows   map[rowsKey]*rowsEntry
	tables map[layout.Layer]*tableEntry
	plans  map[layout.Layer]*segPlan // pending segmented rebuilds (see region.go)
	stats  Stats
}

// New creates a cache enforcing the given budgets (MaxFlattenPolys applies
// to every cached flatten, exactly as the uncached paths apply it).
func New(lim budget.Limits) *Cache {
	return &Cache{
		limits: lim,
		arena:  NewArena(),
		flat:   make(map[layout.Layer]*flatEntry),
		packs:  make(map[layout.Layer]*packEntry),
		mbrs:   make(map[layout.Layer]*mbrEntry),
		rows:   make(map[rowsKey]*rowsEntry),
		tables: make(map[layout.Layer]*tableEntry),
		plans:  make(map[layout.Layer]*segPlan),
	}
}

// SetFaultHook installs the fault-injection seam. Must be called before the
// first Flatten/Pack.
func (c *Cache) SetFaultHook(h FaultHook) { c.hook = h }

// Arena returns the run's scratch arena. The cache owns the run's geometry
// lifetimes, so it also owns the recycled scratch the hot paths draw from;
// see Arena for the ownership rules.
func (c *Cache) Arena() *Arena { return c.arena }

// SetEventHook installs the lookup observer. Must be called before the
// first lookup.
func (c *Cache) SetEventHook(h EventHook) { c.eventFn = h }

// event reports one lookup to the observer; callers must not hold c.mu.
func (c *Cache) event(op string, key string, hit bool) {
	if c.eventFn != nil {
		c.eventFn(Event{Op: op, Key: key, Hit: hit})
	}
}

// layerKey renders a layer entry key for events.
func layerKey(l layout.Layer) string { return fmt.Sprintf("layer#%d", int(l)) }

// Stats returns a snapshot of the hit/miss counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// bind pins the cache to its layout on first use.
func (c *Cache) bind(lo *layout.Layout) {
	if c.lo == nil {
		c.lo = lo
		return
	}
	if c.lo != lo {
		panic("geocache: one Cache serves one layout")
	}
}

// Flatten returns the layer's instance-expanded polygons in the canonical
// hierarchy-DFS order, computing them (flatten → flatten-polys budget) at
// most once. The returned slice is shared and must not be mutated.
func (c *Cache) Flatten(ctx context.Context, lo *layout.Layout, l layout.Layer) ([]layout.PlacedPoly, error) {
	c.mu.Lock()
	c.bind(lo)
	if e, ok := c.flat[l]; ok {
		c.stats.FlattenHits++
		c.mu.Unlock()
		c.event("flatten", layerKey(l), true)
		return awaitFlat(ctx, e)
	}
	e := &flatEntry{done: make(chan struct{})}
	c.flat[l] = e
	plan := c.plans[l]
	delete(c.plans, l)
	c.stats.FlattenMisses++
	c.mu.Unlock()
	c.event("flatten", layerKey(l), false)

	c.computeFlat(ctx, e, lo, l, plan)
	return e.polys, e.err
}

// computeFlat fills e. The done channel closes on every path — including a
// panic, which is cached as a *pool.PanicError so waiters cannot wedge.
// A non-nil plan (left by InvalidateRegion) replaces the full FlattenLayer
// with a segmented rebuild; fault-hook and budget semantics are identical.
func (c *Cache) computeFlat(ctx context.Context, e *flatEntry, lo *layout.Layout, l layout.Layer, plan *segPlan) {
	defer close(e.done)
	defer func() {
		if rec := recover(); rec != nil {
			if pe, ok := rec.(*pool.PanicError); ok {
				e.err = pe
			} else {
				e.err = &pool.PanicError{Value: rec, Stack: debug.Stack()}
			}
		}
	}()
	if c.hook != nil {
		if err := c.hook(ctx, l); err != nil {
			e.err = err
			return
		}
	}
	var polys []layout.PlacedPoly
	if plan != nil {
		var reused, requeried int
		polys, reused, requeried = plan.rebuild(lo, l)
		c.mu.Lock()
		c.stats.SegmentedRebuilds++
		c.stats.RowsReused += int64(reused)
		c.stats.RowsRequeried += int64(requeried)
		c.mu.Unlock()
	} else {
		polys = lo.FlattenLayer(l)
	}
	if err := budget.Check("flatten-polys", int64(len(polys)), c.limits.MaxFlattenPolys); err != nil {
		e.err = err
		return
	}
	e.polys = polys
}

// awaitFlat waits for a concurrent computation of the entry.
func awaitFlat(ctx context.Context, e *flatEntry) ([]layout.PlacedPoly, error) {
	select {
	case <-e.done:
		return e.polys, e.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Pack returns the layer's packed edge buffer in the canonical flatten
// order, computing it (via Flatten) at most once. The returned buffer is
// shared and must not be mutated.
func (c *Cache) Pack(ctx context.Context, lo *layout.Layout, l layout.Layer) (*kernels.Edges, error) {
	c.mu.Lock()
	c.bind(lo)
	if e, ok := c.packs[l]; ok {
		c.stats.PackHits++
		c.mu.Unlock()
		c.event("pack", layerKey(l), true)
		select {
		case <-e.done:
			return e.edges, e.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	e := &packEntry{done: make(chan struct{})}
	c.packs[l] = e
	c.stats.PackMisses++
	c.mu.Unlock()
	c.event("pack", layerKey(l), false)

	func() {
		defer close(e.done)
		defer func() {
			if rec := recover(); rec != nil {
				if pe, ok := rec.(*pool.PanicError); ok {
					e.err = pe
				} else {
					e.err = &pool.PanicError{Value: rec, Stack: debug.Stack()}
				}
			}
		}()
		polys, err := c.Flatten(ctx, lo, l)
		if err != nil {
			e.err = err
			return
		}
		// The shape list is pure scratch: Pack copies every coordinate into
		// its own buffers, so the list recycles through the arena while the
		// packed result is cached and shared.
		shapes := c.arena.Polys(len(polys))
		for i := range polys {
			shapes = append(shapes, polys[i].Shape)
		}
		e.edges = kernels.Pack(shapes)
		c.arena.PutPolys(shapes)
	}()
	return e.edges, e.err
}

// MBRs returns the per-polygon bounding boxes of the layer's flatten, index-
// aligned with Flatten's result and computed at most once. Polygon MBRs
// re-scan every vertex, so a deck of N spacing rules on one layer saves N-1
// full passes. The returned slice is shared and must not be mutated.
func (c *Cache) MBRs(ctx context.Context, lo *layout.Layout, l layout.Layer) ([]geom.Rect, error) {
	c.mu.Lock()
	c.bind(lo)
	if e, ok := c.mbrs[l]; ok {
		c.mu.Unlock()
		c.event("mbrs", layerKey(l), true)
		select {
		case <-e.done:
			return e.boxes, e.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	e := &mbrEntry{done: make(chan struct{})}
	c.mbrs[l] = e
	c.mu.Unlock()
	c.event("mbrs", layerKey(l), false)

	func() {
		defer close(e.done)
		defer func() {
			if rec := recover(); rec != nil {
				if pe, ok := rec.(*pool.PanicError); ok {
					e.err = pe
				} else {
					e.err = &pool.PanicError{Value: rec, Stack: debug.Stack()}
				}
			}
		}()
		polys, err := c.Flatten(ctx, lo, l)
		if err != nil {
			e.err = err
			return
		}
		boxes := make([]geom.Rect, len(polys))
		for i := range polys {
			boxes[i] = polys[i].Shape.MBR()
		}
		e.boxes = boxes
	}()
	return e.boxes, e.err
}

// Rows returns the layer's adaptive row partition for the given interaction
// reach and algorithm, computed (via MBRs → partition.Rows) at most once per
// (layer, guard, alg). Rules sharing a reach share the partition outright;
// rules with distinct reaches still benefit because the prefetcher computes
// the entry off the critical path. The returned rows (including each
// Members slice) are shared and must not be mutated.
func (c *Cache) Rows(ctx context.Context, lo *layout.Layout, l layout.Layer, guard int64, alg partition.Algorithm) ([]partition.Row, error) {
	k := rowsKey{layer: l, guard: guard, alg: alg}
	c.mu.Lock()
	c.bind(lo)
	rk := fmt.Sprintf("%s/reach=%d/alg=%d", layerKey(l), guard, int(alg))
	if e, ok := c.rows[k]; ok {
		c.mu.Unlock()
		c.event("rows", rk, true)
		select {
		case <-e.done:
			return e.rows, e.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	e := &rowsEntry{done: make(chan struct{})}
	c.rows[k] = e
	c.mu.Unlock()
	c.event("rows", rk, false)

	func() {
		defer close(e.done)
		defer func() {
			if rec := recover(); rec != nil {
				if pe, ok := rec.(*pool.PanicError); ok {
					e.err = pe
				} else {
					e.err = &pool.PanicError{Value: rec, Stack: debug.Stack()}
				}
			}
		}()
		boxes, err := c.MBRs(ctx, lo, l)
		if err != nil {
			e.err = err
			return
		}
		e.rows = partition.Rows(boxes, guard, alg)
	}()
	return e.rows, e.err
}

// Table returns the layer's device-upload MBR table — the per-polygon MBR
// coordinate arrays plus the global (XLo, index) x-order — built from the
// cached MBRs at most once. The engine uploads it alongside the resident
// edge buffer so pair-discovery kernels read it instead of re-deriving MBRs
// on the device per rule. The returned table is shared and must not be
// mutated.
func (c *Cache) Table(ctx context.Context, lo *layout.Layout, l layout.Layer) (*kernels.MBRTable, error) {
	c.mu.Lock()
	c.bind(lo)
	if e, ok := c.tables[l]; ok {
		c.mu.Unlock()
		c.event("table", layerKey(l), true)
		select {
		case <-e.done:
			return e.t, e.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	e := &tableEntry{done: make(chan struct{})}
	c.tables[l] = e
	c.mu.Unlock()
	c.event("table", layerKey(l), false)

	func() {
		defer close(e.done)
		defer func() {
			if rec := recover(); rec != nil {
				if pe, ok := rec.(*pool.PanicError); ok {
					e.err = pe
				} else {
					e.err = &pool.PanicError{Value: rec, Stack: debug.Stack()}
				}
			}
		}()
		boxes, err := c.MBRs(ctx, lo, l)
		if err != nil {
			e.err = err
			return
		}
		t := &kernels.MBRTable{
			XLo: make([]int64, len(boxes)), XHi: make([]int64, len(boxes)),
			YLo: make([]int64, len(boxes)), YHi: make([]int64, len(boxes)),
			XOrder: make([]int32, len(boxes)),
		}
		for i, b := range boxes {
			t.XLo[i], t.XHi[i] = b.XLo, b.XHi
			t.YLo[i], t.YHi[i] = b.YLo, b.YHi
			t.XOrder[i] = int32(i)
		}
		sort.Slice(t.XOrder, func(i, j int) bool {
			a, b := t.XOrder[i], t.XOrder[j]
			if t.XLo[a] != t.XLo[b] {
				return t.XLo[a] < t.XLo[b]
			}
			return a < b
		})
		e.t = t
	}()
	return e.t, e.err
}

// Invalidate drops the cached computations for the given layers — flatten,
// pack, MBRs, row partitions, and device-upload tables — so the next lookup
// recomputes them; with no layers it drops every entry. The cache outlives
// a single run inside a resident session, and Invalidate is the session's
// hook for layouts mutated in place between checks. In-flight computations
// are unaffected: their waiters hold the entry pointers and resolve
// normally, while post-invalidate lookups start fresh entries.
func (c *Cache) Invalidate(layers ...layout.Layer) {
	all := len(layers) == 0
	match := func(l layout.Layer) bool {
		if all {
			return true
		}
		for _, x := range layers {
			if x == l {
				return true
			}
		}
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for l := range c.flat {
		if match(l) {
			delete(c.flat, l)
		}
	}
	for l := range c.packs {
		if match(l) {
			delete(c.packs, l)
		}
	}
	for l := range c.mbrs {
		if match(l) {
			delete(c.mbrs, l)
		}
	}
	for k := range c.rows {
		if match(k.layer) {
			delete(c.rows, k)
		}
	}
	for l := range c.tables {
		if match(l) {
			delete(c.tables, l)
		}
	}
	for l := range c.plans {
		if match(l) {
			delete(c.plans, l)
		}
	}
}

// PeekFlatten returns the layer's flattened polygons only when a previous
// Flatten already completed successfully; it never computes and never
// blocks. Consumers that must not materialize a flatten themselves (the
// KLayout tiling baseline) use it as an opportunistic read.
func (c *Cache) PeekFlatten(l layout.Layer) ([]layout.PlacedPoly, bool) {
	c.mu.Lock()
	e, ok := c.flat[l]
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	select {
	case <-e.done:
		if e.err != nil {
			return nil, false
		}
		return e.polys, true
	default:
		return nil, false
	}
}
