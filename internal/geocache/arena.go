package geocache

import (
	"sync"

	"opendrc/internal/geom"
)

// Arena is the per-run recycled scratch allocator for the host hot paths.
// One Arena accompanies one run's geometry source (it is created next to
// the Cache and shares its lifetime), and hands out the short-lived buffers
// the flatten/pack/sweep pipeline used to allocate fresh per rule or per
// row: polygon shape lists fed to kernels.Pack, expanded-MBR lists fed to
// the sweepline, and candidate-pair lists.
//
// The freelists are deliberately plain mutex-guarded stacks rather than
// sync.Pool: a sync.Pool's contents are coupled to process history (GC
// victim caches, and under the race detector randomized put drops), which
// makes a run's allocation sequence depend on what ran before it. The
// engine's determinism contract is stronger — repeated identical runs must
// behave identically, down to the goroutine interleavings that allocation
// pacing influences — so all recycling state is owned by the run and
// behaves as a pure function of the run's inputs. Cross-run reuse would buy
// nothing anyway: the arena exists to recycle across the many rules and
// rows *within* one check.
//
// Ownership rules (documented in DESIGN.md §9):
//
//   - Arena buffers are SCRATCH: a caller gets a buffer, fills it, uses it,
//     and puts it back in the same scope. Nothing read from the cache's
//     memoized tables (shared, immutable) may ever be put into the arena.
//   - Buffers may be returned from any goroutine (the freelists are
//     mutex-guarded), so per-row workers can recycle their own scratch.
//   - Contents are garbage after Put. Every Get returns a zero-length slice
//     with whatever capacity a previous user grew; callers append or resize
//     explicitly. Recycling therefore cannot change results, only costs.
type Arena struct {
	mu    sync.Mutex
	polys [][]geom.Polygon //odrc:guardedby mu
	rects [][]geom.Rect    //odrc:guardedby mu
	pairs [][][2]int       //odrc:guardedby mu
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// Polys returns a zero-length polygon scratch buffer with capacity at least
// n (growing an older buffer if needed).
func (a *Arena) Polys(n int) []geom.Polygon {
	a.mu.Lock()
	var s []geom.Polygon
	if l := len(a.polys); l > 0 {
		s = a.polys[l-1]
		a.polys[l-1] = nil
		a.polys = a.polys[:l-1]
	}
	a.mu.Unlock()
	if cap(s) < n {
		s = make([]geom.Polygon, 0, n)
	}
	return s[:0]
}

// PutPolys recycles a buffer obtained from Polys.
func (a *Arena) PutPolys(s []geom.Polygon) {
	if cap(s) == 0 {
		return
	}
	a.mu.Lock()
	a.polys = append(a.polys, s[:0])
	a.mu.Unlock()
}

// Rects returns a zero-length rectangle scratch buffer with capacity at
// least n.
func (a *Arena) Rects(n int) []geom.Rect {
	a.mu.Lock()
	var s []geom.Rect
	if l := len(a.rects); l > 0 {
		s = a.rects[l-1]
		a.rects[l-1] = nil
		a.rects = a.rects[:l-1]
	}
	a.mu.Unlock()
	if cap(s) < n {
		s = make([]geom.Rect, 0, n)
	}
	return s[:0]
}

// PutRects recycles a buffer obtained from Rects.
func (a *Arena) PutRects(s []geom.Rect) {
	if cap(s) == 0 {
		return
	}
	a.mu.Lock()
	a.rects = append(a.rects, s[:0])
	a.mu.Unlock()
}

// Pairs returns a zero-length index-pair scratch buffer (nil when the arena
// has none warm; callers append).
func (a *Arena) Pairs() [][2]int {
	a.mu.Lock()
	var s [][2]int
	if l := len(a.pairs); l > 0 {
		s = a.pairs[l-1]
		a.pairs[l-1] = nil
		a.pairs = a.pairs[:l-1]
	}
	a.mu.Unlock()
	if s == nil {
		return nil
	}
	return s[:0]
}

// PutPairs recycles a buffer obtained from Pairs.
func (a *Arena) PutPairs(s [][2]int) {
	if cap(s) == 0 {
		return
	}
	a.mu.Lock()
	a.pairs = append(a.pairs, s[:0])
	a.mu.Unlock()
}
