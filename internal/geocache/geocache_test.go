package geocache

import (
	"context"
	"errors"
	"sync"
	"testing"

	"opendrc/internal/budget"
	"opendrc/internal/layout"
	"opendrc/internal/partition"
	"opendrc/internal/pool"
	"opendrc/internal/synth"
)

func testLayout(t *testing.T) *layout.Layout {
	t.Helper()
	lo, _, err := synth.Load("uart", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	return lo
}

func TestFlattenMemoizedAndShared(t *testing.T) {
	lo := testLayout(t)
	c := New(budget.Limits{})
	ctx := context.Background()
	a, err := c.Flatten(ctx, lo, layout.LayerM1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Flatten(ctx, lo, layout.LayerM1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || &a[0] != &b[0] {
		t.Fatal("second Flatten did not return the shared slice")
	}
	want := lo.FlattenLayer(layout.LayerM1)
	if len(want) != len(a) {
		t.Fatalf("cached flatten has %d polys, direct flatten %d", len(a), len(want))
	}
	s := c.Stats()
	if s.FlattenMisses != 1 || s.FlattenHits != 1 {
		t.Fatalf("stats = %+v, want 1 miss / 1 hit", s)
	}
}

func TestPackMemoizedPerLayer(t *testing.T) {
	lo := testLayout(t)
	c := New(budget.Limits{})
	ctx := context.Background()
	e1, err := c.Pack(ctx, lo, layout.LayerM1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := c.Pack(ctx, lo, layout.LayerM1)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Fatal("second Pack did not return the shared buffer")
	}
	eOther, err := c.Pack(ctx, lo, layout.LayerM2)
	if err != nil {
		t.Fatal(err)
	}
	if eOther == e1 {
		t.Fatal("distinct layers share a packed buffer")
	}
	s := c.Stats()
	if s.PackMisses != 2 || s.PackHits != 1 {
		t.Fatalf("stats = %+v, want 2 pack misses / 1 hit", s)
	}
}

func TestErrorCachedOneComputation(t *testing.T) {
	lo := testLayout(t)
	c := New(budget.Limits{})
	calls := 0
	sentinel := errors.New("boom")
	c.SetFaultHook(func(ctx context.Context, l layout.Layer) error {
		calls++
		return sentinel
	})
	ctx := context.Background()
	if _, err := c.Flatten(ctx, lo, layout.LayerM1); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if _, err := c.Flatten(ctx, lo, layout.LayerM1); !errors.Is(err, sentinel) {
		t.Fatalf("cached err = %v, want sentinel", err)
	}
	if _, err := c.Pack(ctx, lo, layout.LayerM1); !errors.Is(err, sentinel) {
		t.Fatalf("Pack err = %v, want the cached flatten error", err)
	}
	if calls != 1 {
		t.Fatalf("hook ran %d times, want 1 (error must be cached)", calls)
	}
}

func TestBudgetTripCached(t *testing.T) {
	lo := testLayout(t)
	c := New(budget.Limits{MaxFlattenPolys: 1})
	ctx := context.Background()
	_, err := c.Flatten(ctx, lo, layout.LayerM1)
	if !errors.Is(err, budget.ErrExceeded) {
		t.Fatalf("err = %v, want budget.ErrExceeded", err)
	}
	_, err2 := c.Pack(ctx, lo, layout.LayerM1)
	if !errors.Is(err2, budget.ErrExceeded) {
		t.Fatalf("Pack err = %v, want the cached budget error", err2)
	}
}

func TestPanicCachedAsPanicError(t *testing.T) {
	lo := testLayout(t)
	c := New(budget.Limits{})
	calls := 0
	c.SetFaultHook(func(ctx context.Context, l layout.Layer) error {
		calls++
		panic("kaboom")
	})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		_, err := c.Flatten(ctx, lo, layout.LayerM1)
		var pe *pool.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("call %d: err = %v, want *pool.PanicError", i, err)
		}
		if pe.Value != "kaboom" {
			t.Fatalf("panic value = %v", pe.Value)
		}
	}
	if calls != 1 {
		t.Fatalf("hook ran %d times, want 1 (panic must be cached)", calls)
	}
}

func TestSingleFlightConcurrent(t *testing.T) {
	lo := testLayout(t)
	c := New(budget.Limits{})
	var mu sync.Mutex
	computes := 0
	c.SetFaultHook(func(ctx context.Context, l layout.Layer) error {
		mu.Lock()
		computes++
		mu.Unlock()
		return nil
	})
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Pack(ctx, lo, layout.LayerM1); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if computes != 1 {
		t.Fatalf("flatten computed %d times under concurrency, want 1", computes)
	}
	s := c.Stats()
	if s.PackMisses != 1 {
		t.Fatalf("stats = %+v, want exactly 1 pack miss", s)
	}
}

func TestMBRsAndRowsMatchDirectComputation(t *testing.T) {
	lo := testLayout(t)
	c := New(budget.Limits{})
	ctx := context.Background()
	boxes, err := c.MBRs(ctx, lo, layout.LayerM1)
	if err != nil {
		t.Fatal(err)
	}
	polys := lo.FlattenLayer(layout.LayerM1)
	if len(boxes) != len(polys) {
		t.Fatalf("%d boxes for %d polys", len(boxes), len(polys))
	}
	for i := range polys {
		if boxes[i] != polys[i].Shape.MBR() {
			t.Fatalf("box %d = %+v, want %+v", i, boxes[i], polys[i].Shape.MBR())
		}
	}
	const guard = 18
	rows, err := c.Rows(ctx, lo, layout.LayerM1, guard, partition.Pigeonhole)
	if err != nil {
		t.Fatal(err)
	}
	want := partition.Rows(boxes, guard, partition.Pigeonhole)
	if len(rows) != len(want) {
		t.Fatalf("%d rows, want %d", len(rows), len(want))
	}
	for i := range rows {
		if len(rows[i].Members) != len(want[i].Members) {
			t.Fatalf("row %d has %d members, want %d", i, len(rows[i].Members), len(want[i].Members))
		}
	}
	again, err := c.Rows(ctx, lo, layout.LayerM1, guard, partition.Pigeonhole)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) > 0 && &rows[0] != &again[0] {
		t.Fatal("second Rows did not return the shared partition")
	}
}

func TestTableMatchesMBRs(t *testing.T) {
	lo := testLayout(t)
	c := New(budget.Limits{})
	ctx := context.Background()
	tab, err := c.Table(ctx, lo, layout.LayerM1)
	if err != nil {
		t.Fatal(err)
	}
	boxes, err := c.MBRs(ctx, lo, layout.LayerM1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.XLo) != len(boxes) || len(tab.XOrder) != len(boxes) {
		t.Fatalf("table sizes %d/%d, want %d", len(tab.XLo), len(tab.XOrder), len(boxes))
	}
	for i, b := range boxes {
		if tab.XLo[i] != b.XLo || tab.XHi[i] != b.XHi || tab.YLo[i] != b.YLo || tab.YHi[i] != b.YHi {
			t.Fatalf("table row %d disagrees with MBR %+v", i, b)
		}
	}
	for k := 1; k < len(tab.XOrder); k++ {
		a, b := tab.XOrder[k-1], tab.XOrder[k]
		if tab.XLo[a] > tab.XLo[b] || (tab.XLo[a] == tab.XLo[b] && a >= b) {
			t.Fatalf("XOrder not sorted by (XLo, index) at %d", k)
		}
	}
	again, err := c.Table(ctx, lo, layout.LayerM1)
	if err != nil {
		t.Fatal(err)
	}
	if again != tab {
		t.Fatal("second Table did not return the shared table")
	}
}

func TestPeekFlatten(t *testing.T) {
	lo := testLayout(t)
	c := New(budget.Limits{})
	ctx := context.Background()
	if _, ok := c.PeekFlatten(layout.LayerM1); ok {
		t.Fatal("Peek hit before any Flatten")
	}
	if _, err := c.Flatten(ctx, lo, layout.LayerM1); err != nil {
		t.Fatal(err)
	}
	if polys, ok := c.PeekFlatten(layout.LayerM1); !ok || len(polys) == 0 {
		t.Fatal("Peek missed after a successful Flatten")
	}
	// Errors never become peek hits.
	cErr := New(budget.Limits{MaxFlattenPolys: 1})
	if _, err := cErr.Flatten(ctx, lo, layout.LayerM1); err == nil {
		t.Fatal("want budget error")
	}
	if _, ok := cErr.PeekFlatten(layout.LayerM1); ok {
		t.Fatal("Peek hit on a failed flatten")
	}
}

func TestOneCacheOneLayout(t *testing.T) {
	lo := testLayout(t)
	lo2, _, err := synth.Load("uart", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	c := New(budget.Limits{})
	ctx := context.Background()
	if _, err := c.Flatten(ctx, lo, layout.LayerM1); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("binding a second layout did not panic")
		}
	}()
	_, _ = c.Flatten(ctx, lo2, layout.LayerM1)
}

func TestEventHookMultiset(t *testing.T) {
	lo := testLayout(t)
	c := New(budget.Limits{})
	ctx := context.Background()
	var got []Event
	c.SetEventHook(func(ev Event) { got = append(got, ev) })
	// Pack misses and computes the flatten internally; a later Flatten on the
	// same layer hits; a second Pack hits.
	if _, err := c.Pack(ctx, lo, layout.LayerM1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Flatten(ctx, lo, layout.LayerM1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Pack(ctx, lo, layout.LayerM1); err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Op: "pack", Key: "layer#19", Hit: false},
		{Op: "flatten", Key: "layer#19", Hit: false},
		{Op: "flatten", Key: "layer#19", Hit: true},
		{Op: "pack", Key: "layer#19", Hit: true},
	}
	if len(got) != len(want) {
		t.Fatalf("events = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestInvalidateScoped(t *testing.T) {
	lo := testLayout(t)
	c := New(budget.Limits{})
	ctx := context.Background()
	for _, l := range []layout.Layer{layout.LayerM1, layout.LayerM2} {
		if _, err := c.Pack(ctx, lo, l); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Rows(ctx, lo, l, 40, partition.Pigeonhole); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Table(ctx, lo, l); err != nil {
			t.Fatal(err)
		}
	}
	s0 := c.Stats()

	// Invalidating M1 forces M1 (and only M1) to recompute.
	c.Invalidate(layout.LayerM1)
	if _, err := c.Pack(ctx, lo, layout.LayerM2); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.PackMisses != s0.PackMisses {
		t.Fatalf("M2 recomputed after invalidating M1: %+v vs %+v", s, s0)
	}
	a, err := c.Flatten(ctx, lo, layout.LayerM1)
	if err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.FlattenMisses != s0.FlattenMisses+1 {
		t.Fatalf("M1 flatten not recomputed after Invalidate: %+v vs %+v", s, s0)
	}
	if len(a) == 0 || len(a) != len(lo.FlattenLayer(layout.LayerM1)) {
		t.Fatal("recomputed flatten is wrong")
	}
	// The rows and table entries keyed on M1 were dropped too.
	if _, err := c.Rows(ctx, lo, layout.LayerM1, 40, partition.Pigeonhole); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Table(ctx, lo, layout.LayerM1); err != nil {
		t.Fatal(err)
	}

	// Invalidate with no layers drops everything.
	s1 := c.Stats()
	c.Invalidate()
	if _, err := c.Pack(ctx, lo, layout.LayerM2); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.PackMisses != s1.PackMisses+1 || s.FlattenMisses != s1.FlattenMisses+1 {
		t.Fatalf("full Invalidate left entries cached: %+v vs %+v", s, s1)
	}
}

func TestInvalidateClearsCachedError(t *testing.T) {
	lo := testLayout(t)
	c := New(budget.Limits{MaxFlattenPolys: 1})
	ctx := context.Background()
	if _, err := c.Flatten(ctx, lo, layout.LayerM1); !errors.Is(err, budget.ErrExceeded) {
		t.Fatalf("flatten under a 1-poly budget = %v, want budget error", err)
	}
	// The error is cached; Invalidate drops it like any entry, so a (notional)
	// corrected configuration would recompute rather than replay the failure.
	c.Invalidate(layout.LayerM1)
	if _, err := c.Flatten(ctx, lo, layout.LayerM1); !errors.Is(err, budget.ErrExceeded) {
		t.Fatalf("recompute = %v, want a fresh budget error", err)
	}
	if s := c.Stats(); s.FlattenMisses != 2 {
		t.Fatalf("invalidated error entry was not recomputed: %+v", s)
	}
}
