package geocache

import (
	"context"
	"sort"
	"testing"

	"opendrc/internal/budget"
	"opendrc/internal/gdsii"
	"opendrc/internal/geom"
	"opendrc/internal/layout"
	"opendrc/internal/partition"
)

// bandedLayout builds a flat layout with nBands M1 rectangles stacked in y,
// one per band: rect k spans y ∈ [k·pitch, k·pitch+height]. With a guard far
// smaller than the inter-band gap, the row partition puts each rectangle in
// its own row, making the dirty-row arithmetic of the tests exact.
func bandedLayout(t *testing.T, nBands int) *layout.Layout {
	t.Helper()
	const pitch, height, width = 1000, 100, 200
	top := &gdsii.Structure{Name: "TOP"}
	for k := 0; k < nBands; k++ {
		y := int64(k) * pitch
		top.Boundaries = append(top.Boundaries, gdsii.Boundary{
			Layer: int16(layout.LayerM1), XY: []geom.Point{
				geom.Pt(0, y), geom.Pt(0, y+height), geom.Pt(width, y+height), geom.Pt(width, y),
			},
		})
	}
	lib := &gdsii.Library{Name: "bands", UserUnit: 1e-3, MeterUnit: 1e-9,
		Structures: []*gdsii.Structure{top}}
	lo, err := layout.FromLibrary(lib)
	if err != nil {
		t.Fatal(err)
	}
	return lo
}

// sortedBoxes is the order-free fingerprint of a flatten.
func sortedBoxes(polys []layout.PlacedPoly) []geom.Rect {
	out := make([]geom.Rect, len(polys))
	for i, pp := range polys {
		out[i] = pp.Shape.MBR()
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.YLo != b.YLo {
			return a.YLo < b.YLo
		}
		return a.XLo < b.XLo
	})
	return out
}

func sameRects(a, b []geom.Rect) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

const testGuard = int64(50)

// warm fills the cache's flatten and pack for M1.
func warm(t *testing.T, c *Cache, lo *layout.Layout) {
	t.Helper()
	ctx := context.Background()
	if _, err := c.Flatten(ctx, lo, layout.LayerM1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Pack(ctx, lo, layout.LayerM1); err != nil {
		t.Fatal(err)
	}
}

// TestInvalidateRegionDirtiesOnlyTouchedRows pins the row accounting: a rect
// abutting one band's boundary dirties exactly that row, and the next
// Flatten requeries only the dirty band while reusing every clean row.
func TestInvalidateRegionDirtiesOnlyTouchedRows(t *testing.T) {
	lo := bandedLayout(t, 10)
	c := New(budget.Limits{})
	warm(t, c, lo)

	// Touching band 3 exactly at its top edge (y = 3100) — inclusive overlap
	// must dirty the row; bands 0..2 and 4..9 stay clean.
	out := c.InvalidateRegion(layout.LayerM1, testGuard, partition.Pigeonhole,
		[]geom.Rect{geom.R(0, 3100, 10, 3150)})
	if !out.Segmented {
		t.Fatalf("not segmented: %+v", out)
	}
	if out.RowsTotal != 10 || out.RowsDirty != 1 || out.PolysKept != 9 {
		t.Fatalf("outcome = %+v, want 10 rows / 1 dirty / 9 kept", out)
	}
	if out.KeptEdgeBytes <= 0 {
		t.Fatalf("kept edge bytes = %d, want > 0 (layer was packed)", out.KeptEdgeBytes)
	}

	got, err := c.Flatten(context.Background(), lo, layout.LayerM1)
	if err != nil {
		t.Fatal(err)
	}
	if !sameRects(sortedBoxes(got), sortedBoxes(lo.FlattenLayer(layout.LayerM1))) {
		t.Fatal("segmented rebuild differs from a cold flatten")
	}
	s := c.Stats()
	if s.SegmentedInvalidations != 1 || s.FullInvalidations != 0 {
		t.Fatalf("stats = %+v, want 1 segmented / 0 full invalidations", s)
	}
	if s.SegmentedRebuilds != 1 || s.RowsReused != 9 || s.RowsRequeried != 1 {
		t.Fatalf("stats = %+v, want 1 rebuild reusing 9 rows, requerying 1", s)
	}
}

// TestInvalidateRegionGapSpan pins the inter-row gap case: a dirty rect
// falling between bands touches no row, yet its span is still requeried so
// geometry inserted there (before the invalidation) appears in the rebuild.
func TestInvalidateRegionGapSpan(t *testing.T) {
	lo := bandedLayout(t, 5)
	c := New(budget.Limits{})
	warm(t, c, lo)

	// Insert a new polygon in the gap between bands 2 and 3, then invalidate
	// exactly its extent: zero dirty rows, all five kept.
	gap := geom.R(0, 2400, 80, 2500)
	if _, err := lo.ApplyEdits([]layout.Edit{{Op: layout.OpInsertRect, Layer: layout.LayerM1, Rect: gap}}); err != nil {
		t.Fatal(err)
	}
	out := c.InvalidateRegion(layout.LayerM1, testGuard, partition.Pigeonhole, []geom.Rect{gap})
	if !out.Segmented || out.RowsDirty != 0 || out.PolysKept != 5 {
		t.Fatalf("outcome = %+v, want segmented with 0 dirty rows, 5 kept", out)
	}
	got, err := c.Flatten(context.Background(), lo, layout.LayerM1)
	if err != nil {
		t.Fatal(err)
	}
	if !sameRects(sortedBoxes(got), sortedBoxes(lo.FlattenLayer(layout.LayerM1))) {
		t.Fatal("gap-span rebuild missed the inserted polygon")
	}
}

// TestInvalidateRegionRebuildAfterEdits drives the full edit cycle — insert
// into one band, delete another band's polygon — and demands the rebuilt
// flatten match a cold flatten of the edited layout.
func TestInvalidateRegionRebuildAfterEdits(t *testing.T) {
	lo := bandedLayout(t, 8)
	c := New(budget.Limits{})
	warm(t, c, lo)

	dirty, err := lo.ApplyEdits([]layout.Edit{
		{Op: layout.OpInsertRect, Layer: layout.LayerM1, Rect: geom.R(300, 2000, 400, 2100)},
		{Op: layout.OpDeleteRegion, Layer: layout.LayerM1, Rect: geom.R(0, 5000, 500, 5100)},
	})
	if err != nil {
		t.Fatal(err)
	}
	var rects []geom.Rect
	for _, d := range dirty {
		for _, r := range d.Rects {
			rects = append(rects, r.Expand(testGuard))
		}
	}
	out := c.InvalidateRegion(layout.LayerM1, testGuard, partition.Pigeonhole, rects)
	if !out.Segmented || out.RowsDirty != 2 {
		t.Fatalf("outcome = %+v, want segmented with 2 dirty rows", out)
	}
	got, err := c.Flatten(context.Background(), lo, layout.LayerM1)
	if err != nil {
		t.Fatal(err)
	}
	want := lo.FlattenLayer(layout.LayerM1)
	if !sameRects(sortedBoxes(got), sortedBoxes(want)) {
		t.Fatalf("rebuild after edits differs: %d polys vs %d", len(got), len(want))
	}
}

// TestInvalidateRegionDegenerateCases pins every whole-layer fallback: dirty
// rects spanning all rows, an empty rect list, and a cold cache.
func TestInvalidateRegionDegenerateCases(t *testing.T) {
	ctx := context.Background()

	t.Run("all rows dirty", func(t *testing.T) {
		lo := bandedLayout(t, 6)
		c := New(budget.Limits{})
		warm(t, c, lo)
		out := c.InvalidateRegion(layout.LayerM1, testGuard, partition.Pigeonhole,
			[]geom.Rect{lo.Top.LayerMBR(layout.LayerM1)})
		if out.Segmented {
			t.Fatalf("whole-extent rect still segmented: %+v", out)
		}
		if s := c.Stats(); s.FullInvalidations != 1 || s.SegmentedInvalidations != 0 {
			t.Fatalf("stats = %+v, want 1 full / 0 segmented", s)
		}
		// The next flatten is a plain cold recompute, not a rebuild.
		if _, err := c.Flatten(ctx, lo, layout.LayerM1); err != nil {
			t.Fatal(err)
		}
		if s := c.Stats(); s.SegmentedRebuilds != 0 {
			t.Fatalf("degenerate invalidation still rebuilt: %+v", s)
		}
	})

	t.Run("no rects", func(t *testing.T) {
		lo := bandedLayout(t, 6)
		c := New(budget.Limits{})
		warm(t, c, lo)
		out := c.InvalidateRegion(layout.LayerM1, testGuard, partition.Pigeonhole, nil)
		if out.Segmented {
			t.Fatalf("empty rect list still segmented: %+v", out)
		}
		if s := c.Stats(); s.FullInvalidations != 1 {
			t.Fatalf("stats = %+v, want 1 full invalidation", s)
		}
	})

	t.Run("cold cache", func(t *testing.T) {
		c := New(budget.Limits{})
		out := c.InvalidateRegion(layout.LayerM1, testGuard, partition.Pigeonhole,
			[]geom.Rect{geom.R(0, 0, 10, 10)})
		if out.Segmented {
			t.Fatalf("cold cache still segmented: %+v", out)
		}
	})
}
