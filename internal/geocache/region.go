// Region-scoped invalidation. Whole-layer Invalidate throws away everything
// a resident session knows about a layer when one corner of it changed; the
// region path instead segments the cached flatten by its adaptive row
// partition (rows separated by more than the guard distance cannot
// interact), marks only the rows a dirty rectangle touches, and rebuilds the
// flatten at next use as "clean-row polygons kept verbatim + a hierarchy
// range query over the dirty bands". The rebuilt polygon list is set-equal
// to a cold FlattenLayer of the edited layout — kept rows hold unedited
// geometry by construction, deleted polygons always fall in dirty rows
// (callers pass dirty rects covering every changed polygon's MBR), and new
// polygons never land inside a clean row's band (their extent would have
// marked it dirty) — so downstream packs, partitions, and checks see the
// same geometry multiset, merely permuted; canonical reports are unaffected
// because violation serialization is order-free.
package geocache

import (
	"sort"

	"opendrc/internal/geom"
	"opendrc/internal/kernels"
	"opendrc/internal/layout"
	"opendrc/internal/partition"
)

// queryHalfSpan bounds the x-extent of dirty-band query windows (full chip
// width without risking int64 overflow in window arithmetic).
const queryHalfSpan = int64(1) << 60

// yspan is one inclusive dirty y-interval.
type yspan struct{ lo, hi int64 }

// segPlan is a pending segmented rebuild for one layer: the pre-edit flatten
// with its row segmentation, which rows are dirty, and the extra dirty
// y-intervals (edit rects can fall in inter-row gaps where no row exists).
// Repeated region invalidations before the next Flatten compose into the
// same plan; the rebuild consumes it.
type segPlan struct {
	polys []layout.PlacedPoly // pre-edit flatten (shared, immutable)
	rows  []partition.Row     // segmentation of polys
	dirty []bool              // per row
	spans []yspan             // dirty rect y-extents (requeried regardless of rows)
	edges *kernels.Edges      // pre-edit pack, for kept-byte accounting; may be nil
}

// RegionOutcome reports what one InvalidateRegion call did, so sessions can
// free only the stale slice of a device-resident edge buffer.
type RegionOutcome struct {
	// Segmented is false when the call degenerated to a whole-layer drop:
	// no completed flatten to segment, an empty or single-row partition, or
	// dirty rects touching every row.
	Segmented            bool
	RowsTotal, RowsDirty int
	PolysKept            int
	// KeptEdgeBytes is the device-byte size of the still-valid prefix of the
	// layer's packed edges (proportional byte shares of the pre-edit pack;
	// zero when not segmented or the layer was never packed). The next pack
	// of the rebuilt flatten is at least this large, so sessions free
	// (resident bytes - KeptEdgeBytes) and later upload only the delta.
	KeptEdgeBytes int64
}

// InvalidateRegion drops the layer's cached geometry only where the dirty
// rects (already dilated by the caller's guard distance) intersect its row
// segmentation, scheduling a segmented rebuild for the next Flatten. The
// partition uses the given guard and algorithm — sessions pass the deck's
// maximum interaction reach, so a clean row's geometry cannot interact with
// anything inside the dirty region. With no completed flatten (or when every
// row is dirty) the call degrades to Invalidate(l). Empty rects contribute
// nothing; zero rects degrade to a whole-layer drop (matching Invalidate's
// "no qualifier means everything" convention).
func (c *Cache) InvalidateRegion(l layout.Layer, guard int64, alg partition.Algorithm, rects []geom.Rect) RegionOutcome {
	spans := make([]yspan, 0, len(rects))
	for _, r := range rects {
		if !r.Empty() {
			spans = append(spans, yspan{lo: r.YLo, hi: r.YHi})
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(spans) == 0 {
		c.stats.FullInvalidations++
		c.dropLayerLocked(l)
		return RegionOutcome{}
	}

	plan := c.plans[l]
	if plan == nil {
		var ok bool
		plan, ok = c.buildPlanLocked(l, guard, alg)
		if !ok {
			c.stats.FullInvalidations++
			c.dropLayerLocked(l)
			return RegionOutcome{}
		}
	}
	for ri := range plan.rows {
		if plan.dirty[ri] {
			continue
		}
		band := yspan{lo: plan.rows[ri].YLo, hi: plan.rows[ri].YHi}
		for _, sp := range spans {
			if sp.lo <= band.hi && band.lo <= sp.hi {
				plan.dirty[ri] = true
				break
			}
		}
	}
	plan.spans = append(plan.spans, spans...)

	out := RegionOutcome{RowsTotal: len(plan.rows)}
	keptEdges, totalEdges := 0, 0
	for ri, row := range plan.rows {
		n := len(row.Members)
		var rowEdges int
		if plan.edges != nil {
			for _, m := range row.Members {
				elo, ehi := plan.edges.PolyEdges(m)
				rowEdges += ehi - elo
			}
			totalEdges += rowEdges
		}
		if plan.dirty[ri] {
			out.RowsDirty++
			continue
		}
		out.PolysKept += n
		keptEdges += rowEdges
	}
	if out.RowsDirty == out.RowsTotal {
		// Nothing survives; fall back to the whole-layer drop so the next
		// flatten takes the cold path instead of an all-dirty "rebuild".
		delete(c.plans, l)
		c.stats.FullInvalidations++
		c.dropLayerLocked(l)
		return RegionOutcome{}
	}
	if plan.edges != nil && totalEdges > 0 {
		out.KeptEdgeBytes = plan.edges.Bytes() * int64(keptEdges) / int64(totalEdges)
	}
	out.Segmented = true
	c.plans[l] = plan
	c.stats.SegmentedInvalidations++
	c.dropLayerLocked(l)
	return out
}

// buildPlanLocked snapshots the layer's completed flatten (and pack, when
// present) into a fresh all-clean plan segmented with the given guard.
// Returns false when the layer has no successfully completed flatten to
// segment, or when the partition is too coarse to save anything.
func (c *Cache) buildPlanLocked(l layout.Layer, guard int64, alg partition.Algorithm) (*segPlan, bool) {
	fe, ok := c.flat[l]
	if !ok || !entryDone(fe.done) || fe.err != nil {
		return nil, false
	}
	boxes := make([]geom.Rect, len(fe.polys))
	for i := range fe.polys {
		boxes[i] = fe.polys[i].Shape.MBR()
	}
	rows := partition.Rows(boxes, guard, alg)
	if len(rows) < 2 {
		return nil, false
	}
	plan := &segPlan{polys: fe.polys, rows: rows, dirty: make([]bool, len(rows))}
	if pe, ok := c.packs[l]; ok && entryDone(pe.done) && pe.err == nil {
		plan.edges = pe.edges
	}
	return plan, true
}

// entryDone reports whether a single-flight entry's computation finished.
func entryDone(done chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// dropLayerLocked removes every cached entry of one layer (c.mu held).
func (c *Cache) dropLayerLocked(l layout.Layer) {
	delete(c.flat, l)
	delete(c.packs, l)
	delete(c.mbrs, l)
	delete(c.tables, l)
	for k := range c.rows {
		if k.layer == l {
			delete(c.rows, k)
		}
	}
}

// rebuild materializes the post-edit flatten: clean-row polygons in their
// old canonical order, then the dirty bands' polygons from full-width
// hierarchy range queries. Every post-edit polygon appears exactly once:
// clean-row members are kept and rejected from query results (a polygon's
// extent is contained in its own row's band, and bands are disjoint with
// positive-measure extents), dirty-row and new polygons are accepted by the
// first query span their extent overlaps.
func (p *segPlan) rebuild(lo *layout.Layout, l layout.Layer) ([]layout.PlacedPoly, int, int) {
	kept, dirtyRows := 0, 0
	var clean []yspan
	var query []yspan
	for ri, row := range p.rows {
		if p.dirty[ri] {
			dirtyRows++
			query = append(query, yspan{lo: row.YLo, hi: row.YHi})
			continue
		}
		kept += len(row.Members)
		clean = append(clean, yspan{lo: row.YLo, hi: row.YHi})
	}
	out := make([]layout.PlacedPoly, 0, kept)
	for ri, row := range p.rows {
		if p.dirty[ri] {
			continue
		}
		for _, m := range row.Members {
			out = append(out, p.polys[m])
		}
	}
	query = mergeSpans(append(query, p.spans...))
	prevHi := int64(0)
	for qi, sp := range query {
		window := geom.Rect{XLo: -queryHalfSpan, YLo: sp.lo, XHi: queryHalfSpan, YHi: sp.hi}
		found, _ := lo.QueryLayer(l, window)
		for _, pp := range found {
			m := pp.Shape.MBR()
			if qi > 0 && m.YLo <= prevHi {
				continue // already returned by an earlier (lower) span
			}
			if containedInSpan(clean, m.YLo, m.YHi) {
				continue // clean-row polygon, kept verbatim above
			}
			out = append(out, pp)
		}
		prevHi = sp.hi
	}
	return out, len(p.rows) - dirtyRows, dirtyRows
}

// mergeSpans sorts and merges inclusive intervals (touching merges).
func mergeSpans(spans []yspan) []yspan {
	if len(spans) < 2 {
		return spans
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].lo != spans[j].lo {
			return spans[i].lo < spans[j].lo
		}
		return spans[i].hi < spans[j].hi
	})
	out := spans[:1]
	for _, sp := range spans[1:] {
		last := &out[len(out)-1]
		if sp.lo <= last.hi {
			if sp.hi > last.hi {
				last.hi = sp.hi
			}
			continue
		}
		out = append(out, sp)
	}
	return out
}

// containedInSpan reports whether [lo, hi] is contained in one of the sorted
// disjoint spans.
func containedInSpan(spans []yspan, lo, hi int64) bool {
	i := sort.Search(len(spans), func(i int) bool { return spans[i].hi >= lo })
	return i < len(spans) && spans[i].lo <= lo && hi <= spans[i].hi
}
