package checks

import (
	"opendrc/internal/geom"
)

// CheckWidth reports every internal width violation of the polygon: pairs of
// interior-facing edges closer than min. O(E²) over the polygon's own edges;
// standard-cell polygons have few edges, and larger polygons are routed
// through the sweepline executor by the engine.
func CheckWidth(p geom.Polygon, min int64, fn func(Marker)) int {
	n := p.NumEdges()
	found := 0
	for i := 0; i < n; i++ {
		e := p.Edge(i)
		for j := i + 1; j < n; j++ {
			if m, ok := EdgePairWidth(e, p.Edge(j), min); ok {
				found++
				fn(m)
			}
		}
	}
	return found
}

// CheckNotch reports intra-polygon spacing (notch) violations: pairs of
// exterior-facing edges of the same polygon closer than min.
func CheckNotch(p geom.Polygon, min int64, fn func(Marker)) int {
	return CheckNotchLim(p, Lim(min), fn)
}

// CheckNotchLim is CheckNotch with a projection-dependent limit.
func CheckNotchLim(p geom.Polygon, lim SpacingLimit, fn func(Marker)) int {
	n := p.NumEdges()
	found := 0
	for i := 0; i < n; i++ {
		e := p.Edge(i)
		for j := i + 1; j < n; j++ {
			if m, ok := EdgePairSpacingLim(e, p.Edge(j), lim); ok {
				found++
				fn(m)
			}
		}
	}
	return found
}

// CheckSpacing reports spacing violations between two distinct polygons:
// parallel-edge gaps and diagonal corner-to-corner gaps below min.
// Overlapping or abutting geometry (distance zero) is treated as connected
// and produces no violation, the conventional same-layer merge semantics.
func CheckSpacing(p, q geom.Polygon, min int64, fn func(Marker)) int {
	return CheckSpacingLim(p, q, Lim(min), fn)
}

// CheckSpacingLim is CheckSpacing with a projection-dependent limit; corner
// pairs have zero projection and always use the base minimum.
func CheckSpacingLim(p, q geom.Polygon, lim SpacingLimit, fn func(Marker)) int {
	np, nq := p.NumEdges(), q.NumEdges()
	found := 0
	for i := 0; i < np; i++ {
		e := p.Edge(i)
		eNext := p.Edge((i + 1) % np)
		for j := 0; j < nq; j++ {
			f := q.Edge(j)
			if m, ok := EdgePairSpacingLim(e, f, lim); ok {
				found++
				fn(m)
			}
			if m, ok := CornerSpacing(e, eNext, f, q.Edge((j+1)%nq), lim.Min); ok {
				found++
				fn(m)
			}
		}
	}
	return found
}

// CheckEnclosure reports enclosure violations of inner (e.g. a via) within
// outer (e.g. a metal pad): edge pairs whose margin is below min, plus a
// containment failure when any inner vertex escapes outer entirely. The
// returned bool is true when inner is fully contained in outer.
func CheckEnclosure(inner, outer geom.Polygon, min int64, fn func(Marker)) (contained bool, found int) {
	contained = true
	for i := 0; i < inner.NumVertices(); i++ {
		if !outer.ContainsPoint(inner.Vertex(i)) {
			contained = false
			break
		}
	}
	if !contained {
		found++
		fn(Marker{Box: inner.MBR(), Dist: -1})
		return contained, found
	}
	ni, no := inner.NumEdges(), outer.NumEdges()
	for i := 0; i < ni; i++ {
		e := inner.Edge(i)
		for j := 0; j < no; j++ {
			if m, ok := EdgePairEnclosure(e, outer.Edge(j), min); ok {
				found++
				fn(m)
			}
		}
	}
	return contained, found
}

// CheckArea reports whether the polygon violates the minimum area rule.
// minArea2 is twice the minimum area, so the comparison is exact integer
// arithmetic against the Shoelace doubled area.
func CheckArea(p geom.Polygon, minArea2 int64) (Marker, bool) {
	a2 := p.Area2()
	if a2 >= minArea2 {
		return Marker{}, false
	}
	return Marker{Box: p.MBR(), Dist: a2}, true
}

// CheckRectilinear reports whether the polygon violates the rectilinearity
// rule (any non-axis-aligned edge).
func CheckRectilinear(p geom.Polygon) (Marker, bool) {
	if p.IsRectilinear() {
		return Marker{}, false
	}
	return Marker{Box: p.MBR()}, true
}

// InteractionDistance returns how far a rule with the given minimum can
// reach beyond a polygon's own MBR — the amount by which MBRs must be
// expanded so that non-overlap proves no violation (Section IV-C).
func InteractionDistance(min int64) int64 { return min }

// EvaluateEnclosure resolves the enclosure rule for one inner shape (via)
// against its candidate outer shapes (metal polygons whose MBR is near the
// via): the via passes when at least one candidate contains it with margin
// >= min on every side. Otherwise, violations of the best candidate — the
// one with the largest worst-case margin, ties broken by candidate order —
// are reported, or an uncovered marker (Dist == -1) when no candidate
// contains the via at all. Enclosure is monotone in metal: adding candidates
// can only improve the result, which is what lets the hierarchical mode
// resolve vias inside cell definitions and reuse the answer per instance.
func EvaluateEnclosure(inner geom.Polygon, outers []geom.Polygon, min int64, fn func(Marker)) (ok bool, found int) {
	bestIdx := -1
	var bestMargin int64 = -1
	for ci, outer := range outers {
		contained := true
		for i := 0; i < inner.NumVertices(); i++ {
			if !outer.ContainsPoint(inner.Vertex(i)) {
				contained = false
				break
			}
		}
		if !contained {
			continue
		}
		margin := worstEnclosureMargin(inner, outer)
		if margin >= min {
			return true, 0
		}
		if margin > bestMargin {
			bestMargin = margin
			bestIdx = ci
		}
	}
	if bestIdx < 0 {
		fn(Marker{Box: inner.MBR(), Dist: -1})
		return false, 1
	}
	_, n := CheckEnclosure(inner, outers[bestIdx], min, fn)
	return false, n
}

// worstEnclosureMargin returns the smallest per-side margin of inner within
// outer across all same-direction parallel edge pairs with shared
// projection. Callers guarantee containment, so at least one pair exists per
// inner edge; a huge sentinel is returned for degenerate inputs.
func worstEnclosureMargin(inner, outer geom.Polygon) int64 {
	const huge = int64(1) << 62
	worst := huge
	ni, no := inner.NumEdges(), outer.NumEdges()
	for i := 0; i < ni; i++ {
		e := inner.Edge(i)
		side := huge
		for j := 0; j < no; j++ {
			f := outer.Edge(j)
			if e.Dir() != f.Dir() || e.ProjectionOverlap(f) == 0 {
				continue
			}
			if !onExteriorSide(e, f.Perp()) {
				continue
			}
			if d := absI64(f.Perp() - e.Perp()); d < side {
				side = d
			}
		}
		if side < worst {
			worst = side
		}
	}
	return worst
}
