package checks

import (
	"testing"

	"opendrc/internal/geom"
)

func rect(x0, y0, x1, y1 int64) geom.Polygon {
	return geom.RectPolygon(geom.R(x0, y0, x1, y1))
}

func countWidth(p geom.Polygon, min int64) int {
	return CheckWidth(p, min, func(Marker) {})
}

func countSpacing(p, q geom.Polygon, min int64) int {
	return CheckSpacing(p, q, min, func(Marker) {})
}

func TestWidthRect(t *testing.T) {
	p := rect(0, 0, 100, 18) // 100 long, 18 wide
	if n := countWidth(p, 18); n != 0 {
		t.Errorf("width exactly at minimum flagged: %d", n)
	}
	if n := countWidth(p, 19); n != 1 {
		// Only the top/bottom pair (separation 18) violates; the left/right
		// pair is 100 apart.
		t.Errorf("width 19 on 18-wide rect: %d violations, want 1", n)
	}
	if n := countWidth(p, 200); n != 2 {
		t.Errorf("width 200: %d violations (want both axes)", n)
	}
}

func TestWidthRectMarkers(t *testing.T) {
	p := rect(0, 0, 100, 10)
	var markers []Marker
	CheckWidth(p, 12, func(m Marker) { markers = append(markers, m) })
	if len(markers) != 1 {
		t.Fatalf("markers = %d", len(markers))
	}
	if markers[0].Dist != 10 {
		t.Errorf("dist = %d", markers[0].Dist)
	}
	if markers[0].Box != geom.R(0, 0, 100, 10) {
		t.Errorf("box = %v", markers[0].Box)
	}
}

func TestWidthLShape(t *testing.T) {
	// L-shape: vertical arm 10 wide, horizontal arm 10 tall, overall 30x30.
	l := geom.MustPolygon([]geom.Point{
		geom.Pt(0, 0), geom.Pt(0, 30), geom.Pt(10, 30), geom.Pt(10, 10),
		geom.Pt(30, 10), geom.Pt(30, 0),
	})
	if n := countWidth(l, 10); n != 0 {
		t.Errorf("width 10 on 10-wide arms: %d", n)
	}
	got := countWidth(l, 11)
	if got == 0 {
		t.Error("width 11 on 10-wide arms found nothing")
	}
}

func TestWidthDoesNotFireOnNotch(t *testing.T) {
	// U-shape with a 6-wide notch; arms 10 wide. Width 8 must not flag the
	// notch (exterior), notch check must.
	u := geom.MustPolygon([]geom.Point{
		geom.Pt(0, 0), geom.Pt(0, 30), geom.Pt(10, 30), geom.Pt(10, 10),
		geom.Pt(16, 10), geom.Pt(16, 30), geom.Pt(26, 30), geom.Pt(26, 0),
	})
	if n := countWidth(u, 8); n != 0 {
		t.Errorf("width check fired on notch: %d", n)
	}
	if n := CheckNotch(u, 8, func(Marker) {}); n != 1 {
		t.Errorf("notch check found %d, want 1", n)
	}
	if n := CheckNotch(u, 6, func(Marker) {}); n != 0 {
		t.Errorf("notch exactly at minimum flagged: %d", n)
	}
}

func TestSpacingParallel(t *testing.T) {
	a := rect(0, 0, 10, 10)
	b := rect(14, 0, 24, 10) // gap 4
	if n := countSpacing(a, b, 4); n != 0 {
		t.Errorf("gap equal to min flagged: %d", n)
	}
	if n := countSpacing(a, b, 5); n != 1 {
		t.Errorf("gap 4 min 5: %d violations", n)
	}
	// Symmetric.
	if n := countSpacing(b, a, 5); n != 1 {
		t.Errorf("reversed order: %d", n)
	}
}

func TestSpacingVertical(t *testing.T) {
	a := rect(0, 0, 10, 10)
	b := rect(0, 13, 10, 23) // vertical gap 3
	if n := countSpacing(a, b, 4); n != 1 {
		t.Errorf("vertical gap 3 min 4: %d", n)
	}
}

func TestSpacingAbuttingAndOverlapping(t *testing.T) {
	a := rect(0, 0, 10, 10)
	touching := rect(10, 0, 20, 10)
	if n := countSpacing(a, touching, 5); n != 0 {
		t.Errorf("abutting polygons flagged: %d", n)
	}
	overlapping := rect(5, 0, 15, 10)
	if n := countSpacing(a, overlapping, 5); n != 0 {
		t.Errorf("overlapping polygons flagged: %d", n)
	}
}

func TestSpacingCorner(t *testing.T) {
	a := rect(0, 0, 10, 10)
	b := rect(13, 13, 23, 23)               // diagonal gap (3,3), Euclidean² = 18
	if n := countSpacing(a, b, 5); n != 1 { // 18 < 25
		t.Errorf("corner gap √18 min 5: %d", n)
	}
	if n := countSpacing(a, b, 4); n != 0 { // 18 ≥ 16
		t.Errorf("corner gap √18 min 4: %d", n)
	}
	var m []Marker
	CheckSpacing(a, b, 5, func(v Marker) { m = append(m, v) })
	if len(m) != 1 || !m[0].Corner {
		t.Errorf("corner marker missing: %+v", m)
	}
}

func TestSpacingCornerNotBetweenStacked(t *testing.T) {
	// Corners of boxes that overlap in x must not produce corner
	// violations (the parallel-edge test owns that case).
	a := rect(0, 0, 10, 10)
	b := rect(0, 13, 10, 23)
	var corners int
	CheckSpacing(a, b, 20, func(m Marker) {
		if m.Corner {
			corners++
		}
	})
	if corners != 0 {
		t.Errorf("spurious corner violations: %d", corners)
	}
}

func TestSpacingFarApart(t *testing.T) {
	a := rect(0, 0, 10, 10)
	b := rect(100, 100, 110, 110)
	if n := countSpacing(a, b, 5); n != 0 {
		t.Errorf("distant polygons flagged: %d", n)
	}
}

func TestEnclosureHappy(t *testing.T) {
	via := rect(10, 10, 20, 20)
	metal := rect(5, 5, 25, 25) // margin 5 on all sides
	contained, n := CheckEnclosure(via, metal, 5, func(Marker) {})
	if !contained || n != 0 {
		t.Errorf("margin-5 enclosure with min 5: contained=%v n=%d", contained, n)
	}
	contained, n = CheckEnclosure(via, metal, 6, func(Marker) {})
	if !contained || n != 4 {
		t.Errorf("margin-5 enclosure with min 6: contained=%v n=%d (want 4 sides)", contained, n)
	}
}

func TestEnclosureAsymmetric(t *testing.T) {
	via := rect(10, 10, 20, 20)
	metal := rect(8, 5, 25, 25) // left margin only 2
	_, n := CheckEnclosure(via, metal, 3, func(Marker) {})
	if n != 1 {
		t.Errorf("one thin side: %d violations", n)
	}
	var m []Marker
	CheckEnclosure(via, metal, 3, func(v Marker) { m = append(m, v) })
	if len(m) == 1 && m[0].Dist != 2 {
		t.Errorf("margin = %d, want 2", m[0].Dist)
	}
}

func TestEnclosureFlush(t *testing.T) {
	via := rect(10, 10, 20, 20)
	metal := rect(10, 5, 25, 25) // flush on the left
	_, n := CheckEnclosure(via, metal, 3, func(Marker) {})
	if n != 1 {
		t.Errorf("flush side: %d violations, want 1 (zero margin)", n)
	}
}

func TestEnclosureEscape(t *testing.T) {
	via := rect(0, 10, 20, 20) // sticks out to the left of metal
	metal := rect(5, 5, 25, 25)
	contained, n := CheckEnclosure(via, metal, 3, func(Marker) {})
	if contained || n != 1 {
		t.Errorf("escaped via: contained=%v n=%d", contained, n)
	}
}

func TestAreaCheck(t *testing.T) {
	p := rect(0, 0, 10, 10) // area 100
	if _, bad := CheckArea(p, 2*100); bad {
		t.Error("area equal to minimum must pass")
	}
	if _, bad := CheckArea(p, 2*90); bad {
		t.Error("area above minimum must pass")
	}
	if m, bad := CheckArea(p, 2*101); !bad || m.Dist != 200 {
		t.Errorf("area 100 vs min 101: bad=%v dist=%d", bad, m.Dist)
	}
}

func TestRectilinearCheck(t *testing.T) {
	if _, bad := CheckRectilinear(rect(0, 0, 5, 5)); bad {
		t.Error("rectangle flagged as non-rectilinear")
	}
	tri := geom.MustPolygon([]geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(10, 10)})
	if _, bad := CheckRectilinear(tri); !bad {
		t.Error("triangle not flagged")
	}
}

func TestEdgePairWidthRejectsPerpendicular(t *testing.T) {
	e := geom.E(0, 0, 10, 0)
	f := geom.E(5, 0, 5, 10)
	if _, ok := EdgePairWidth(e, f, 100); ok {
		t.Error("perpendicular edges produced width violation")
	}
	if _, ok := EdgePairSpacing(e, f, 100); ok {
		t.Error("perpendicular edges produced spacing violation")
	}
}

func TestEdgePairEnclosureDirection(t *testing.T) {
	// Inner top edge (East at y=20), outer top edge (East at y=23): margin 3.
	inner := geom.E(10, 20, 20, 20)
	outer := geom.E(5, 23, 25, 23)
	if m, ok := EdgePairEnclosure(inner, outer, 5); !ok || m.Dist != 3 {
		t.Errorf("enclosure margin: ok=%v m=%+v", ok, m)
	}
	if _, ok := EdgePairEnclosure(inner, outer, 3); ok {
		t.Error("margin equal to minimum flagged")
	}
	// Outer edge on the interior side (below the via top) is not an
	// enclosure pair.
	below := geom.E(5, 18, 25, 18)
	if _, ok := EdgePairEnclosure(inner, below, 5); ok {
		t.Error("interior-side outer edge flagged")
	}
	// Anti-parallel edges are not enclosure pairs.
	anti := geom.E(25, 23, 5, 23)
	if _, ok := EdgePairEnclosure(inner, anti, 5); ok {
		t.Error("anti-parallel edges flagged")
	}
}
