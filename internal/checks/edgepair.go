// Package checks implements OpenDRC's edge-based design rule check
// procedures (the algorithm layer): width, spacing, enclosure, minimum
// area, and rectilinearity. Polygon vertices are stored in clockwise order,
// so the positional relation of two edges — whether the polygon interior or
// exterior lies between them — is determined from their directions alone,
// exactly as the paper describes. The per-edge-pair predicates here are the
// single source of truth: the sequential mode's polygon loops and the
// parallel mode's simulated GPU kernels both call them, so both modes
// produce bit-identical violation sets.
package checks

import (
	"opendrc/internal/geom"
)

// Marker locates one violation: the offending region and the edge pair (or
// single polygon) that produced it.
type Marker struct {
	Box    geom.Rect
	EdgeA  geom.Edge
	EdgeB  geom.Edge
	Dist   int64 // measured distance (or area for area rules)
	Corner bool  // true when produced by a corner-to-corner test
}

// spanBox returns the violation marker box between two parallel edges: the
// region bounded by the projection overlap and the two perpendicular
// coordinates.
func spanBox(e, f geom.Edge) geom.Rect {
	lo := maxI64(e.Lo(), f.Lo())
	hi := minI64(e.Hi(), f.Hi())
	if e.Dir().Horizontal() {
		return geom.R(lo, e.Perp(), hi, f.Perp())
	}
	return geom.R(e.Perp(), lo, f.Perp(), hi)
}

// EdgePairWidth tests an anti-parallel edge pair for a width violation: the
// polygon interior lies between the edges, they share projection, and their
// separation is positive but below min. Callers pass two edges of the same
// polygon.
func EdgePairWidth(e, f geom.Edge, min int64) (Marker, bool) {
	de, df := e.Dir(), f.Dir()
	if de == geom.DirNone || de != df.Opposite() {
		return Marker{}, false
	}
	if e.ProjectionOverlap(f) == 0 {
		return Marker{}, false
	}
	dist := absI64(e.Perp() - f.Perp())
	if dist == 0 || dist >= min {
		return Marker{}, false
	}
	// Interior must lie between the edges: e's interior side points toward
	// f and vice versa.
	if !sideToward(e, f) || !sideToward(f, e) {
		return Marker{}, false
	}
	return Marker{Box: spanBox(e, f), EdgeA: e, EdgeB: f, Dist: dist}, true
}

// SpacingLimit is a possibly projection-dependent spacing threshold: the
// minimum is Min, except that parallel-run-length (PRL) rules require PRLMin
// once two edges share at least PRLLength of projection — the conditional
// rules the paper's introduction describes ("different spacing constraints
// given different projection lengths"). PRLLength == 0 disables the
// conditional part.
type SpacingLimit struct {
	Min       int64
	PRLLength int64
	PRLMin    int64
}

// Lim wraps a plain minimum as a SpacingLimit.
func Lim(min int64) SpacingLimit { return SpacingLimit{Min: min} }

// Reach returns the largest distance the limit can constrain — the MBR
// expansion and row-partition guard value.
func (l SpacingLimit) Reach() int64 {
	if l.PRLLength > 0 && l.PRLMin > l.Min {
		return l.PRLMin
	}
	return l.Min
}

// threshold returns the minimum spacing required for a pair with the given
// projection overlap.
func (l SpacingLimit) threshold(overlap int64) int64 {
	if l.PRLLength > 0 && overlap >= l.PRLLength && l.PRLMin > l.Min {
		return l.PRLMin
	}
	return l.Min
}

// EdgePairSpacing tests an anti-parallel edge pair for a spacing violation:
// the exterior lies between the edges, they share projection, and the gap is
// positive but below min. Works for inter-polygon spacing and intra-polygon
// notches alike.
func EdgePairSpacing(e, f geom.Edge, min int64) (Marker, bool) {
	return EdgePairSpacingLim(e, f, Lim(min))
}

// EdgePairSpacingLim is EdgePairSpacing with a projection-dependent limit.
func EdgePairSpacingLim(e, f geom.Edge, lim SpacingLimit) (Marker, bool) {
	de, df := e.Dir(), f.Dir()
	if de == geom.DirNone || de != df.Opposite() {
		return Marker{}, false
	}
	overlap := e.ProjectionOverlap(f)
	if overlap == 0 {
		return Marker{}, false
	}
	dist := absI64(e.Perp() - f.Perp())
	if dist == 0 || dist >= lim.threshold(overlap) {
		return Marker{}, false
	}
	// Exterior must lie between: each edge's interior side points away
	// from the other.
	if sideToward(e, f) || sideToward(f, e) {
		return Marker{}, false
	}
	return Marker{Box: spanBox(e, f), EdgeA: e, EdgeB: f, Dist: dist}, true
}

// CornerSpacing tests the corner at eIn.P1 (with outgoing edge eOut) against
// the corner at fIn.P1 (outgoing fOut) for diagonal (Euclidean) spacing.
// Each corner of a polygon is the P1 of exactly one directed edge, so
// enumerating ordered edge pairs checks every corner pair exactly once. The
// test fires only when each corner lies in the *exterior quadrant* of the
// other — outside both adjacent edges — which restricts it to genuinely
// diagonal gaps; face-to-face gaps are the parallel-edge test's job.
func CornerSpacing(eIn, eOut, fIn, fOut geom.Edge, min int64) (Marker, bool) {
	p, q := eIn.P1, fIn.P1
	dx := absI64(p.X - q.X)
	dy := absI64(p.Y - q.Y)
	if dx == 0 || dy == 0 {
		return Marker{}, false
	}
	if dx >= min || dy >= min {
		return Marker{}, false
	}
	if dx*dx+dy*dy >= min*min {
		return Marker{}, false
	}
	if !cornerExteriorToward(eIn, q) || !cornerExteriorToward(eOut, q) {
		return Marker{}, false
	}
	if !cornerExteriorToward(fIn, p) || !cornerExteriorToward(fOut, p) {
		return Marker{}, false
	}
	return Marker{
		Box:   geom.R(p.X, p.Y, q.X, q.Y),
		EdgeA: eIn, EdgeB: fIn,
		Dist:   dx*dx + dy*dy, // squared; callers report sqrt if desired
		Corner: true,
	}, true
}

// EdgePairEnclosure tests an inner-shape edge against an outer-shape edge
// for an enclosure violation: the edges are parallel with the *same*
// direction (both shapes wind clockwise, so the outer boundary runs the same
// way where it encloses), the outer edge lies on the exterior side of the
// inner edge, they share projection, and the margin is below min. A margin
// of zero (flush edges) is a violation too.
func EdgePairEnclosure(inner, outer geom.Edge, min int64) (Marker, bool) {
	di, do := inner.Dir(), outer.Dir()
	if di == geom.DirNone || di != do {
		return Marker{}, false
	}
	if inner.ProjectionOverlap(outer) == 0 {
		return Marker{}, false
	}
	// The outer edge must be on the inner edge's exterior side (flush
	// counts: zero margin is below any positive minimum).
	if !onExteriorSide(inner, outer.Perp()) {
		return Marker{}, false
	}
	dist := absI64(outer.Perp() - inner.Perp())
	if dist >= min {
		return Marker{}, false
	}
	return Marker{Box: spanBox(inner, outer), EdgeA: inner, EdgeB: outer, Dist: dist}, true
}

// sideToward reports whether e's interior side points from e toward f's
// line. Both edges must be parallel.
func sideToward(e, f geom.Edge) bool {
	delta := f.Perp() - e.Perp()
	switch e.InteriorSide() {
	case geom.DirNorth:
		return delta > 0
	case geom.DirSouth:
		return delta < 0
	case geom.DirEast:
		return delta > 0
	case geom.DirWest:
		return delta < 0
	}
	return false
}

// onExteriorSide reports whether the perpendicular coordinate perp lies on
// (or beyond) e's exterior side, flush included.
func onExteriorSide(e geom.Edge, perp int64) bool {
	delta := perp - e.Perp()
	switch e.InteriorSide() {
	case geom.DirNorth: // interior above ⇒ exterior below
		return delta <= 0
	case geom.DirSouth:
		return delta >= 0
	case geom.DirEast: // interior right ⇒ exterior left
		return delta <= 0
	case geom.DirWest:
		return delta >= 0
	}
	return false
}

// cornerExteriorToward reports whether the point p lies in the exterior
// quadrant of the corner at e.P1 (the corner between edge e and its
// successor is approximated by e's exterior half-plane; exact for the convex
// corners that participate in diagonal spacing).
func cornerExteriorToward(e geom.Edge, p geom.Point) bool {
	var perp int64
	if e.Dir().Horizontal() {
		perp = p.Y
	} else {
		perp = p.X
	}
	return onExteriorSide(e, perp)
}

func absI64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
