package synth

import (
	"bytes"
	"testing"

	"opendrc/internal/gdsii"
	"opendrc/internal/layout"
)

func TestDesignLookup(t *testing.T) {
	for _, name := range []string{"aes", "ethmac", "ibex", "jpeg", "sha3", "uart"} {
		p, err := Design(name)
		if err != nil || p.Name != name {
			t.Errorf("Design(%q) = %+v, %v", name, p, err)
		}
	}
	if _, err := Design("nonexistent"); err == nil {
		t.Error("unknown design accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := Design("uart")
	p = p.Scaled(0.5)
	lib1, exp1 := p.Generate()
	lib2, exp2 := p.Generate()
	if exp1 != exp2 {
		t.Fatalf("expected counts differ: %+v vs %+v", exp1, exp2)
	}
	var b1, b2 bytes.Buffer
	if err := gdsii.NewWriter(&b1).WriteLibrary(lib1); err != nil {
		t.Fatal(err)
	}
	if err := gdsii.NewWriter(&b2).WriteLibrary(lib2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("generation not byte-deterministic")
	}
}

func TestGenerateRoundTripsAndBuilds(t *testing.T) {
	p, _ := Design("ibex")
	p = p.Scaled(0.3)
	lib, exp := p.Generate()

	var buf bytes.Buffer
	if err := gdsii.NewWriter(&buf).WriteLibrary(lib); err != nil {
		t.Fatal(err)
	}
	parsed, err := gdsii.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Warnings) != 0 {
		t.Errorf("reader warnings: %v", parsed.Warnings)
	}
	lo, err := layout.FromLibrary(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if lo.Top.Name != "TOP" {
		t.Errorf("top = %s", lo.Top.Name)
	}
	for _, l := range []layout.Layer{layout.LayerM1, layout.LayerM2, layout.LayerM3, layout.LayerV1, layout.LayerV2} {
		if !lo.Top.HasLayer(l) {
			t.Errorf("layer %s missing", layout.LayerName(l))
		}
	}
	if exp.CellsPlaced == 0 || exp.M2Segments == 0 || exp.M3Segments == 0 || exp.V2Vias == 0 {
		t.Errorf("degenerate generation: %+v", exp)
	}
	if n := lo.NumInstancesOnLayer(layout.LayerM1); n < exp.CellsPlaced {
		t.Errorf("M1 instances %d < cells placed %d", n, exp.CellsPlaced)
	}
}

func TestDesignSizeOrdering(t *testing.T) {
	sizes := map[string]int{}
	for _, p := range Designs() {
		sizes[p.Name] = p.Rows * p.CellsPerRow
	}
	if !(sizes["ethmac"] > sizes["jpeg"] && sizes["jpeg"] > sizes["aes"] &&
		sizes["aes"] > sizes["sha3"] && sizes["sha3"] > sizes["ibex"] &&
		sizes["ibex"] > sizes["uart"]) {
		t.Errorf("design size ordering broken: %v", sizes)
	}
	var jpeg, aes Profile
	for _, p := range Designs() {
		switch p.Name {
		case "jpeg":
			jpeg = p
		case "aes":
			aes = p
		}
	}
	if jpeg.M3Density <= aes.M3Density {
		t.Error("jpeg must have the densest M3 routing (paper's M3.S.1 blowup)")
	}
}

func TestScaled(t *testing.T) {
	p, _ := Design("ethmac")
	s := p.Scaled(0.25)
	if s.Rows != p.Rows/4 || s.CellsPerRow != p.CellsPerRow/4 {
		t.Errorf("scaled = %+v", s)
	}
	tiny := p.Scaled(0.001)
	if tiny.Rows < 1 || tiny.CellsPerRow < 1 {
		t.Errorf("scaling floor broken: %+v", tiny)
	}
}

func TestDeckValid(t *testing.T) {
	d := Deck()
	if err := d.Validate(); err != nil {
		t.Fatalf("standard deck invalid: %v", err)
	}
	if len(d) != 14 {
		t.Errorf("deck size = %d", len(d))
	}
	if d.MaxReach() != MinSpaceM3 {
		t.Errorf("max reach = %d", d.MaxReach())
	}
	if _, err := RuleByID("M1.S.1"); err != nil {
		t.Error(err)
	}
	if _, err := RuleByID("BOGUS"); err == nil {
		t.Error("unknown rule accepted")
	}
}

func TestInjectionCountsScaleWithSize(t *testing.T) {
	p, _ := Design("ethmac")
	small := p.Scaled(0.2)
	_, expSmall := small.Generate()
	_, expFull := p.Generate()
	if expFull.Total <= expSmall.Total {
		t.Errorf("larger design should have more injections: %d vs %d",
			expFull.Total, expSmall.Total)
	}
	if expFull.Total == 0 {
		t.Error("no injections in full design")
	}
}

func TestLoad(t *testing.T) {
	lo, exp, err := Load("uart", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if lo == nil || exp.CellsPlaced == 0 {
		t.Error("Load returned empty result")
	}
	if _, _, err := Load("bogus", 1); err == nil {
		t.Error("unknown design accepted")
	}
}
