package synth

import (
	"fmt"

	"opendrc/internal/gdsii"
	"opendrc/internal/geom"
	"opendrc/internal/infra"
	"opendrc/internal/layout"
)

// cellDef is one generated standard-cell definition.
type cellDef struct {
	st    *gdsii.Structure
	width int64
}

// boundary appends a rectangle on a layer to the structure.
func boundary(st *gdsii.Structure, l layout.Layer, r geom.Rect) {
	st.Boundaries = append(st.Boundaries, gdsii.Boundary{
		Layer: int16(l),
		XY: []geom.Point{
			{X: r.XLo, Y: r.YLo}, {X: r.XLo, Y: r.YHi},
			{X: r.XHi, Y: r.YHi}, {X: r.XHi, Y: r.YLo},
		},
	})
}

// column content kinds.
const (
	colBar = iota
	colTwoBars
	colPadVia
	colEmpty
)

// buildCellType generates one clean standard cell with the given number of
// 42-DBU columns. The first and last columns are always bars (boundary
// pins), and one interior column always carries a V1 via on an M1 pad.
func buildCellType(name string, cols int, rng *infra.Rand) cellDef {
	st := &gdsii.Structure{Name: name}
	padCol := 1 + rng.Intn(cols-2)
	for i := 0; i < cols; i++ {
		x := int64(i) * colPitch
		kind := colBar
		switch {
		case i == 0 || i == cols-1:
			kind = colBar
		case i == padCol:
			kind = colPadVia
		default:
			switch r := rng.Intn(100); {
			case r < 35:
				kind = colBar
			case r < 60:
				kind = colTwoBars
			case r < 75:
				kind = colPadVia
			default:
				kind = colEmpty
			}
		}
		switch kind {
		case colBar:
			y0 := int64(m1YLo + rng.Intn(31))
			h := int64(40) + rng.Int63n(m1YHi-y0-40+1)
			boundary(st, layout.LayerM1, geom.R(x+barXOff, y0, x+barXOff+barWidth, y0+h))
		case colTwoBars:
			h1 := int64(40 + rng.Intn(21))
			gap := int64(MinSpaceM1 + rng.Intn(13))
			y2 := int64(m1YLo) + h1 + gap
			h2 := int64(40) + rng.Int63n(m1YHi-y2-40+1)
			boundary(st, layout.LayerM1, geom.R(x+barXOff, m1YLo, x+barXOff+barWidth, m1YLo+h1))
			boundary(st, layout.LayerM1, geom.R(x+barXOff, y2, x+barXOff+barWidth, y2+h2))
		case colPadVia:
			padY := int64(m1YLo) + rng.Int63n(m1YHi-m1YLo-padSize+1)
			boundary(st, layout.LayerM1, geom.R(x+padXOff, padY, x+padXOff+padSize, padY+padSize))
			boundary(st, layout.LayerV1, geom.R(
				x+padXOff+viaInset, padY+viaInset,
				x+padXOff+viaInset+viaSize, padY+viaInset+viaSize))
		}
	}
	return cellDef{st: st, width: int64(cols) * colPitch}
}

// Bad-cell builders: each carries exactly one injected violation.

func buildBadWidth() cellDef { // M1.W.1: 16-wide bar
	st := &gdsii.Structure{Name: "BADW"}
	boundary(st, layout.LayerM1, geom.R(barXOff+1, m1YLo, barXOff+1+16, 200))
	addPadVia(st, colPitch)
	boundary(st, layout.LayerM1, geom.R(2*colPitch+barXOff, m1YLo, 2*colPitch+barXOff+barWidth, 200))
	return cellDef{st: st, width: 3 * colPitch}
}

func buildBadNotch() cellDef { // M1.S.1: U-shape with a 14-wide notch
	st := &gdsii.Structure{Name: "BADN"}
	st.Boundaries = append(st.Boundaries, gdsii.Boundary{
		Layer: int16(layout.LayerM1),
		XY: []geom.Point{
			{X: 9, Y: 40}, {X: 9, Y: 140}, {X: 27, Y: 140}, {X: 27, Y: 80},
			{X: 41, Y: 80}, {X: 41, Y: 140}, {X: 59, Y: 140}, {X: 59, Y: 40},
		},
	})
	addPadVia(st, 2*colPitch)
	boundary(st, layout.LayerM1, geom.R(3*colPitch+barXOff, m1YLo, 3*colPitch+barXOff+barWidth, 200))
	return cellDef{st: st, width: 4 * colPitch}
}

func buildBadArea() cellDef { // M1.A.1: 18×27 bar, area 486 < 500
	st := &gdsii.Structure{Name: "BADA"}
	boundary(st, layout.LayerM1, geom.R(barXOff, m1YLo, barXOff+barWidth, m1YLo+27))
	addPadVia(st, colPitch)
	boundary(st, layout.LayerM1, geom.R(2*colPitch+barXOff, m1YLo, 2*colPitch+barXOff+barWidth, 200))
	return cellDef{st: st, width: 3 * colPitch}
}

func buildBadVia() cellDef { // V1.M1.EN.1: via shifted +3, right margin 2
	st := &gdsii.Structure{Name: "BADV"}
	boundary(st, layout.LayerM1, geom.R(barXOff, m1YLo, barXOff+barWidth, 200))
	x := int64(colPitch)
	padY := int64(100)
	boundary(st, layout.LayerM1, geom.R(x+padXOff, padY, x+padXOff+padSize, padY+padSize))
	boundary(st, layout.LayerV1, geom.R(
		x+padXOff+viaInset+3, padY+viaInset,
		x+padXOff+viaInset+3+viaSize, padY+viaInset+viaSize))
	boundary(st, layout.LayerM1, geom.R(2*colPitch+barXOff, m1YLo, 2*colPitch+barXOff+barWidth, 200))
	return cellDef{st: st, width: 3 * colPitch}
}

// addPadVia appends a clean pad+via column at offset x.
func addPadVia(st *gdsii.Structure, x int64) {
	padY := int64(120)
	boundary(st, layout.LayerM1, geom.R(x+padXOff, padY, x+padXOff+padSize, padY+padSize))
	boundary(st, layout.LayerV1, geom.R(
		x+padXOff+viaInset, padY+viaInset,
		x+padXOff+viaInset+viaSize, padY+viaInset+viaSize))
}

// m2Segment is one generated horizontal route.
type m2Segment struct {
	track  int
	x0, x1 int64
}

// Generate synthesizes the design and reports the injected violations.
func (p Profile) Generate() (*gdsii.Library, Expected) {
	rng := infra.NewRand(p.Seed)
	var exp Expected

	lib := &gdsii.Library{
		Version: 600, Name: p.Name,
		UserUnit: 1e-3, MeterUnit: 1e-9,
	}

	// Standard-cell library.
	types := make([]cellDef, 0, p.CellTypes)
	for t := 0; t < p.CellTypes; t++ {
		cols := 3 + rng.Intn(4)
		types = append(types, buildCellType(fmt.Sprintf("CT%02d", t), cols, rng))
	}
	bad := []cellDef{buildBadWidth(), buildBadNotch(), buildBadArea(), buildBadVia()}
	for _, d := range types {
		lib.Structures = append(lib.Structures, d.st)
	}
	for _, d := range bad {
		lib.Structures = append(lib.Structures, d.st)
	}

	top := &gdsii.Structure{Name: "TOP"}
	chipW := int64(p.CellsPerRow) * 4 * colPitch // approximate row span

	// placeRow fills one row of cells into dst starting at the given origin
	// and returns the row's actual width.
	counter := 0
	placeRow := func(dst *gdsii.Structure, row int, yBase int64, inject bool) int64 {
		y := yBase + int64(row)*cellHeight
		mirrored := row%2 == 1
		var x int64
		for c := 0; c < p.CellsPerRow; c++ {
			var def cellDef
			counter++
			if inject && p.InjectEvery > 0 && counter%p.InjectEvery == 0 {
				def = bad[(counter/p.InjectEvery)%len(bad)]
				switch def.st.Name {
				case "BADW":
					exp.WidthM1++
				case "BADN":
					exp.NotchM1++
				case "BADA":
					exp.AreaM1++
				case "BADV":
					exp.EnclV1++
				}
			} else {
				def = types[rng.Intn(len(types))]
			}
			sref := gdsii.SRef{Name: def.st.Name, Pos: geom.Pt(x, y)}
			if mirrored {
				sref.Trans = gdsii.Trans{Reflect: true}
				sref.Pos = geom.Pt(x, y+cellHeight)
			}
			dst.SRefs = append(dst.SRefs, sref)
			exp.CellsPlaced++
			x += def.width
			if x > chipW {
				break
			}
		}
		return x
	}

	for r := 0; r < p.Rows; r++ {
		placeRow(top, r, 0, true)
	}

	// Macro blocks: 4-row composite cells instantiated twice each, above
	// the core rows — a third hierarchy level.
	macroBase := int64(p.Rows)*cellHeight + 400
	for m := 0; m < p.MacroBlocks; m++ {
		macro := &gdsii.Structure{Name: fmt.Sprintf("MACRO%d", m)}
		saved := p.CellsPerRow
		p.CellsPerRow = saved / 2
		for r := 0; r < 4; r++ {
			placeRow(macro, r, 0, false)
		}
		p.CellsPerRow = saved
		lib.Structures = append(lib.Structures, macro)
		y := macroBase + int64(m)*(4*cellHeight+400)
		top.SRefs = append(top.SRefs,
			gdsii.SRef{Name: macro.Name, Pos: geom.Pt(0, y)},
			gdsii.SRef{Name: macro.Name, Pos: geom.Pt(chipW/2+200, y)},
		)
		exp.CellsPlaced += 2 * 4 * (saved / 2)
	}

	// M2 horizontal routing tracks across the core rows.
	tracks := int(int64(p.Rows) * cellHeight / m2Pitch)
	segs := make([][]m2Segment, tracks)
	net := 0
	segCounter := 0
	for t := 0; t < tracks; t++ {
		y := int64(15 + t*m2Pitch)
		n := int(p.M2SegPerTrk)
		if rng.Float64() < p.M2SegPerTrk-float64(n) {
			n++
		}
		x := rng.Int63n(300)
		for s := 0; s < n && x < chipW-400; s++ {
			length := 400 + rng.Int63n(1600)
			if x+length > chipW {
				length = chipW - x
			}
			seg := m2Segment{track: t, x0: x, x1: x + length}
			segs[t] = append(segs[t], seg)
			boundary(top, layout.LayerM2, geom.R(seg.x0, y, seg.x1, y+m2Width))
			exp.M2Segments++
			segCounter++
			// Net-name label; every InjectEvery-th segment stays unnamed.
			if p.InjectEvery > 0 && segCounter%p.InjectEvery == 0 {
				exp.UnnamedM2++
			} else {
				top.Texts = append(top.Texts, gdsii.Text{
					Layer: int16(layout.LayerM2),
					Pos:   geom.Pt(seg.x0+10, y+m2Width/2),
					Str:   fmt.Sprintf("net%d", net),
				})
				net++
			}
			// Same-track gap: normally >= MinSpaceM2; inject 16 sometimes.
			gap := int64(MinSpaceM2) + rng.Int63n(500)
			if p.InjectEvery > 0 && (segCounter+7)%p.InjectEvery == 0 && s+1 < n {
				gap = 16
				exp.SpaceM2++
			}
			x = seg.x1 + gap
		}
	}

	// M3 vertical routing columns.
	cols := int(chipW / m3Pitch)
	chipH := int64(p.Rows) * cellHeight
	type m3Segment struct {
		col    int
		y0, y1 int64
	}
	m3segs := make([][]m3Segment, cols)
	m3Counter := 0
	for c := 0; c < cols; c++ {
		if !rng.Chance(p.M3Density) {
			continue
		}
		x := int64(12 + c*m3Pitch)
		y := rng.Int63n(200)
		for y < chipH-300 {
			length := 500 + rng.Int63n(2500)
			if y+length > chipH {
				length = chipH - y
			}
			seg := m3Segment{col: c, y0: y, y1: y + length}
			m3segs[c] = append(m3segs[c], seg)
			boundary(top, layout.LayerM3, geom.R(x, seg.y0, x+m3Width, seg.y1))
			exp.M3Segments++
			m3Counter++
			gap := int64(MinSpaceM3) + rng.Int63n(400)
			if p.InjectEvery > 0 && (m3Counter+3)%p.InjectEvery == 0 && y+length < chipH-400 {
				gap = 20
				exp.SpaceM3++
			}
			y = seg.y1 + gap
		}
	}

	// V2 vias at M2/M3 crossings with comfortable landing coverage.
	v2Counter := 0
	for c := 0; c < cols; c++ {
		for _, ms := range m3segs[c] {
			cx := int64(12 + c*m3Pitch)
			for t := 0; t < tracks; t++ {
				ty := int64(15 + t*m2Pitch)
				if ty-10 < ms.y0 || ty+40 > ms.y1 {
					continue // M3 must cover the track band with margin
				}
				covered := false
				for _, s := range segs[t] {
					if s.x0 <= cx-10 && s.x1 >= cx+40 {
						covered = true
						break
					}
				}
				if !covered || !rng.Chance(0.4) {
					continue
				}
				v2Counter++
				vx, vy := cx+viaInset, ty+viaInset
				if p.InjectEvery > 0 && v2Counter%p.InjectEvery == 0 {
					if (v2Counter/p.InjectEvery)%2 == 0 {
						vx += 2 // M3 x-margin becomes 3
						exp.EnclV2M3++
					} else {
						vy += 2 // M2 y-margin becomes 3
						exp.EnclV2M2++
					}
				}
				boundary(top, layout.LayerV2, geom.R(vx, vy, vx+v2Size, vy+v2Size))
				exp.V2Vias++
			}
		}
	}

	// Optional non-rectilinear injection.
	if p.InjectDiagonal {
		top.Boundaries = append(top.Boundaries, gdsii.Boundary{
			Layer: int16(layout.LayerM1),
			XY: []geom.Point{
				{X: chipW + 200, Y: 100},
				{X: chipW + 260, Y: 100},
				{X: chipW + 260, Y: 160},
			},
		})
		exp.NonRectil = 1
	}

	lib.Structures = append(lib.Structures, top)
	exp.sum()
	return lib, exp
}

// Load generates the design at the given scale and builds the layout
// database, returning the expected injected-violation counts alongside.
func Load(name string, scale float64) (*layout.Layout, Expected, error) {
	p, err := Design(name)
	if err != nil {
		return nil, Expected{}, err
	}
	if scale > 0 && scale != 1 {
		p = p.Scaled(scale)
	}
	lib, exp := p.Generate()
	lo, err := layout.FromLibrary(lib)
	if err != nil {
		return nil, Expected{}, fmt.Errorf("synth: %s: %w", name, err)
	}
	return lo, exp, nil
}
