// Package synth generates benchmark layouts that stand in for the paper's
// OpenROAD + ASAP7 designs (aes, ethmac, ibex, jpeg, sha3, uart). Real GDSII
// is emitted: a standard-cell library with per-type M1 geometry and V1 vias
// on M1 landing pads, row-based placement with mirrored alternate rows,
// top-level M2/M3 routing with V2 vias at crossings, and text labels for net
// names. Geometry statistics (polygon/edge counts per layer, hierarchy
// reuse, row structure, density) scale per design profile to match the six
// designs' relative sizes, which is what DRC runtime depends on.
//
// The generator is DRC-clean by construction except for seeded, counted
// violation injections, so a checker's output can be validated exactly.
//
// Dimensional system (1 DBU = 1 nm, ASAP7-like BEOL):
//
//	M1: bars 18 wide on a 42 pitch (in-cell gap 24), min spacing 18, min
//	area 500. Bars sit 9 DBU from the cell edge, so geometry in abutting
//	cells is separated by exactly the minimum spacing — legal, but every
//	neighboring cell pair must be *examined*, as in real standard-cell
//	layouts. Cell height 270; M1 inset to y ∈ [40, 230] so the row
//	partition separates abutting placement rows by layer geometry.
//	V1: 14×14 on 24×24 M1 pads (margin 5).
//	M2: horizontal tracks, width 30, pitch 50 (gap 20).
//	M3: vertical columns, width 30, pitch 54 (gap 24).
//	V2: 20×20 at M2/M3 crossings (margin 5 on both wires).
package synth

import (
	"fmt"

	"opendrc/internal/layout"
	"opendrc/internal/rules"
)

// Geometry constants (DBU).
const (
	cellHeight = 270
	colPitch   = 42
	barWidth   = 18
	barXOff    = 9 // bar x inside its column; cross-cell bar gap = exactly MinSpaceM1
	padSize    = 24
	padXOff    = 9
	viaSize    = 14
	viaInset   = 5 // via inset inside pad

	m1YLo = 40
	m1YHi = 230

	m2Width = 30
	m2Pitch = 50
	m3Width = 30
	m3Pitch = 54
	v2Size  = 20

	// Rule deck values.
	MinWidthM1   = 18
	MinWidthM2   = 20
	MinWidthM3   = 24
	MinSpaceM1   = 18
	MinSpaceM2   = 20
	MinSpaceM3   = 24
	MinAreaM1    = 500
	MinAreaM2    = 1000
	MinAreaM3    = 1000
	MinEnclosure = 5
)

// Profile describes one benchmark design.
type Profile struct {
	Name        string
	Rows        int
	CellsPerRow int
	CellTypes   int     // distinct standard-cell definitions
	M2SegPerTrk float64 // average route segments per M2 track
	M3Density   float64 // fraction of M3 columns populated
	MacroBlocks int     // extra hierarchy level: blocks of rows instantiated twice
	Seed        uint64

	// InjectEvery inserts one violation-carrying cell (or route defect)
	// every N opportunities; 0 disables injection.
	InjectEvery int
	// InjectDiagonal adds one non-rectilinear top-level polygon.
	InjectDiagonal bool
}

// Designs returns the six evaluation profiles, sized to reproduce the
// paper's relative design magnitudes (ethmac largest, uart smallest, jpeg
// with the densest M3 routing).
func Designs() []Profile {
	return []Profile{
		{Name: "aes", Rows: 48, CellsPerRow: 56, CellTypes: 24, M2SegPerTrk: 2.0, M3Density: 0.5, MacroBlocks: 1, Seed: 0xAE5, InjectEvery: 211, InjectDiagonal: true},
		{Name: "ethmac", Rows: 80, CellsPerRow: 84, CellTypes: 32, M2SegPerTrk: 2.2, M3Density: 0.55, MacroBlocks: 2, Seed: 0xE7AC, InjectEvery: 223, InjectDiagonal: true},
		{Name: "ibex", Rows: 24, CellsPerRow: 30, CellTypes: 16, M2SegPerTrk: 1.6, M3Density: 0.4, MacroBlocks: 0, Seed: 0x1BE, InjectEvery: 127, InjectDiagonal: false},
		{Name: "jpeg", Rows: 64, CellsPerRow: 72, CellTypes: 28, M2SegPerTrk: 2.4, M3Density: 0.95, MacroBlocks: 1, Seed: 0x77E6, InjectEvery: 217, InjectDiagonal: true},
		{Name: "sha3", Rows: 40, CellsPerRow: 48, CellTypes: 20, M2SegPerTrk: 1.8, M3Density: 0.45, MacroBlocks: 0, Seed: 0x5A3, InjectEvery: 173, InjectDiagonal: false},
		{Name: "uart", Rows: 12, CellsPerRow: 20, CellTypes: 12, M2SegPerTrk: 1.4, M3Density: 0.35, MacroBlocks: 0, Seed: 0x0A27, InjectEvery: 89, InjectDiagonal: false},
	}
}

// Design returns the named profile.
func Design(name string) (Profile, error) {
	for _, p := range Designs() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("synth: unknown design %q (have aes, ethmac, ibex, jpeg, sha3, uart)", name)
}

// Scaled shrinks or grows the profile's instance counts by factor f (>= 0),
// keeping at least one row and one cell per row. Used to fit test budgets.
func (p Profile) Scaled(f float64) Profile {
	scale := func(v int) int {
		s := int(float64(v) * f)
		if s < 1 {
			s = 1
		}
		return s
	}
	p.Rows = scale(p.Rows)
	p.CellsPerRow = scale(p.CellsPerRow)
	if p.MacroBlocks > p.Rows/4 {
		p.MacroBlocks = p.Rows / 4
	}
	return p
}

// Expected counts the violations injected into a generated layout, keyed the
// way the standard deck names its rules.
type Expected struct {
	WidthM1     int // M1.W.1 (undersized bar in BADW cells)
	NotchM1     int // M1.S.1 (notch in BADN cells)
	AreaM1      int // M1.A.1 (small bar in BADA cells)
	EnclV1      int // V1.M1.EN.1 (shifted via in BADV cells)
	SpaceM2     int // M2.S.1 (same-track gap 16)
	SpaceM3     int // M3.S.1 (same-column gap 20)
	EnclV2M2    int // V2.M2.EN.1 (y-shifted V2)
	EnclV2M3    int // V2.M3.EN.1 (x-shifted V2)
	UnnamedM2   int // M2.NAME.1 (segment without label)
	NonRectil   int // M1.RECT.1 (diagonal polygon)
	Total       int
	CellsPlaced int
	M2Segments  int
	M3Segments  int
	V2Vias      int
}

func (e *Expected) sum() {
	e.Total = e.WidthM1 + e.NotchM1 + e.AreaM1 + e.EnclV1 +
		e.SpaceM2 + e.SpaceM3 + e.EnclV2M2 + e.EnclV2M3 +
		e.UnnamedM2 + e.NonRectil
}

// Deck returns the standard evaluation rule deck with the paper's rule
// naming scheme.
func Deck() rules.Deck {
	return rules.Deck{
		rules.Layer(layout.LayerM1).Polygons().AreRectilinear().Named("M1.RECT.1"),
		rules.Layer(layout.LayerM1).Width().AtLeast(MinWidthM1).Named("M1.W.1"),
		rules.Layer(layout.LayerM2).Width().AtLeast(MinWidthM2).Named("M2.W.1"),
		rules.Layer(layout.LayerM3).Width().AtLeast(MinWidthM3).Named("M3.W.1"),
		rules.Layer(layout.LayerM1).Area().AtLeast(MinAreaM1).Named("M1.A.1"),
		rules.Layer(layout.LayerM2).Area().AtLeast(MinAreaM2).Named("M2.A.1"),
		rules.Layer(layout.LayerM3).Area().AtLeast(MinAreaM3).Named("M3.A.1"),
		rules.Layer(layout.LayerM1).Spacing().AtLeast(MinSpaceM1).Named("M1.S.1"),
		rules.Layer(layout.LayerM2).Spacing().AtLeast(MinSpaceM2).Named("M2.S.1"),
		rules.Layer(layout.LayerM3).Spacing().AtLeast(MinSpaceM3).Named("M3.S.1"),
		rules.Layer(layout.LayerV1).EnclosedBy(layout.LayerM1).AtLeast(MinEnclosure).Named("V1.M1.EN.1"),
		rules.Layer(layout.LayerV2).EnclosedBy(layout.LayerM2).AtLeast(MinEnclosure).Named("V2.M2.EN.1"),
		rules.Layer(layout.LayerV2).EnclosedBy(layout.LayerM3).AtLeast(MinEnclosure).Named("V2.M3.EN.1"),
		rules.Layer(layout.LayerM2).Polygons().Ensure("non-empty name",
			func(o rules.Obj) bool { return o.Name != "" }).Named("M2.NAME.1"),
	}
}

// RuleByID returns the deck rule with the given ID.
func RuleByID(id string) (rules.Rule, error) {
	for _, r := range Deck() {
		if r.ID == id {
			return r, nil
		}
	}
	return rules.Rule{}, fmt.Errorf("synth: unknown rule %q", id)
}
