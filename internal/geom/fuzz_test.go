package geom

import (
	"testing"
)

// fuzzPoints decodes the raw fuzz input into a vertex list: three int16
// pairs per vertex keep coordinates small enough that no transform in the
// test can overflow int64.
func fuzzPoints(data []byte) []Point {
	var pts []Point
	for i := 0; i+4 <= len(data); i += 4 {
		x := int64(int16(uint16(data[i])<<8 | uint16(data[i+1])))
		y := int64(int16(uint16(data[i+2])<<8 | uint16(data[i+3])))
		pts = append(pts, Pt(x, y))
	}
	return pts
}

// FuzzPolygonTransform drives NewPolygon and the transform algebra with
// arbitrary vertex lists. Properties: construction never panics; an
// accepted polygon has >= 3 vertices, a containing MBR, and a positive
// doubled area; transforming by each of the eight orientations and back by
// the inverse reproduces the polygon; the MBR commutes with the transform.
func FuzzPolygonTransform(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 10, 0, 0, 0, 10, 0, 10, 0, 0, 0, 10}) // unit-ish square
	f.Add([]byte{0, 0, 0, 0, 0, 4, 0, 0, 0, 4, 0, 4})                 // triangle
	f.Add([]byte{0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1})                 // degenerate: all equal
	f.Add([]byte{0, 0, 0, 0, 0, 8, 0, 0, 0, 16, 0, 0})                // collinear run
	f.Add([]byte{255, 255, 255, 255, 0, 0, 255, 255, 255, 255, 0, 0}) // negative coords
	f.Fuzz(func(t *testing.T, data []byte) {
		pts := fuzzPoints(data)
		p, err := NewPolygon(pts)
		if err != nil {
			return // rejected input; the absence of a panic is the property
		}
		if p.NumVertices() < 3 {
			t.Fatalf("accepted polygon with %d vertices", p.NumVertices())
		}
		if p.Area2() < 0 {
			t.Fatalf("negative doubled area %d", p.Area2())
		}
		mbr := p.MBR()
		for i := 0; i < p.NumVertices(); i++ {
			if v := p.Vertex(i); !mbr.Contains(v) {
				t.Fatalf("MBR %v does not contain vertex %v", mbr, v)
			}
		}
		for o := Orient(0); o < 8; o++ {
			tr := Transform{Orient: o, Mag: 1, Offset: Pt(37, -91)}
			q := p.Transform(tr)
			if got, want := q.MBR(), tr.ApplyRect(mbr); got != want {
				t.Fatalf("orient %v: transformed MBR %v, want %v", o, got, want)
			}
			back := q.Transform(tr.Inverse())
			if !back.Equal(p) {
				t.Fatalf("orient %v: inverse round trip changed the polygon:\n in  %v\n out %v", o, p, back)
			}
			if q.Area2() != p.Area2() {
				t.Fatalf("orient %v: area changed %d -> %d", o, p.Area2(), q.Area2())
			}
		}
	})
}
