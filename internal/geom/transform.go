package geom

import "fmt"

// Orient is one of the eight axis-preserving orientations of the square
// symmetry group (rotations by multiples of 90° with optional X-axis mirror
// applied first), matching the GDSII STRANS semantics: the reflection about
// the x-axis is applied before the counterclockwise rotation.
type Orient uint8

// The eight orientations. RN = rotate by N degrees CCW; MX prefix = mirror
// about the x-axis (y := -y) first.
const (
	R0 Orient = iota
	R90
	R180
	R270
	MXR0   // mirror, then rotate 0
	MXR90  // mirror, then rotate 90
	MXR180 // mirror, then rotate 180
	MXR270 // mirror, then rotate 270
)

var orientNames = [...]string{"R0", "R90", "R180", "R270", "MXR0", "MXR90", "MXR180", "MXR270"}

// String implements fmt.Stringer.
func (o Orient) String() string {
	if int(o) < len(orientNames) {
		return orientNames[o]
	}
	return fmt.Sprintf("Orient(%d)", uint8(o))
}

// Mirrored reports whether the orientation includes the x-axis reflection.
func (o Orient) Mirrored() bool { return o >= MXR0 }

// Rotation returns the CCW rotation in degrees (0, 90, 180 or 270).
func (o Orient) Rotation() int { return int(o%4) * 90 }

// Apply transforms the point by the orientation about the origin.
func (o Orient) Apply(p Point) Point {
	if o.Mirrored() {
		p.Y = -p.Y
	}
	switch o % 4 {
	case R90:
		p.X, p.Y = -p.Y, p.X
	case R180:
		p.X, p.Y = -p.X, -p.Y
	case R270:
		p.X, p.Y = p.Y, -p.X
	}
	return p
}

// Compose returns the orientation equivalent to applying o first, then q.
func (o Orient) Compose(q Orient) Orient {
	// Work in the dihedral group D4: o = m^a r^i, q = m^b r^j with
	// r·m = m·r^-1. Applying o then q yields m^(a xor b) r^(±i+j).
	oi, qi := int(o%4), int(q%4)
	om, qm := o.Mirrored(), q.Mirrored()
	var rot int
	if qm {
		// q mirrors after o's rotation: m r^i = r^-i m, so rotation flips.
		rot = (qi - oi + 8) % 4
	} else {
		rot = (qi + oi) % 4
	}
	mir := om != qm
	res := Orient(rot)
	if mir {
		res += MXR0
	}
	return res
}

// Inverse returns the orientation that undoes o.
func (o Orient) Inverse() Orient {
	if o.Mirrored() {
		return o // mirror-rotations are involutions in D4
	}
	return Orient((4 - int(o)) % 4)
}

// SwapsAxes reports whether the orientation exchanges the x and y axes
// (rotations by 90/270). Width checks along x become checks along y under
// such transforms — relevant to the hierarchy-pruning invariance rules.
func (o Orient) SwapsAxes() bool { return o%2 == 1 }

// Transform is a GDSII placement: optional mirror+rotation, integral
// magnification, then translation. OpenDRC restricts magnification to
// integers ≥ 1 (non-integral magnification would leave the integer grid) and
// rotation to multiples of 90° (rectilinear layouts stay rectilinear).
type Transform struct {
	Orient Orient
	Mag    int64 // magnification; 0 is treated as 1
	Offset Point
}

// Identity returns the identity transform.
func Identity() Transform { return Transform{Mag: 1} }

// Translate returns a pure-translation transform.
func Translate(p Point) Transform { return Transform{Mag: 1, Offset: p} }

// mag returns the effective magnification (0 ⇒ 1).
func (t Transform) mag() int64 {
	if t.Mag == 0 {
		return 1
	}
	return t.Mag
}

// IsIdentity reports whether the transform maps every point to itself.
func (t Transform) IsIdentity() bool {
	return t.Orient == R0 && t.mag() == 1 && t.Offset == Point{}
}

// Apply maps a point through the transform.
func (t Transform) Apply(p Point) Point {
	p = t.Orient.Apply(p)
	m := t.mag()
	if m != 1 {
		p = p.Scale(m)
	}
	return p.Add(t.Offset)
}

// ApplyRect maps a rectangle through the transform; the result is the exact
// image since the transform is axis-preserving.
func (t Transform) ApplyRect(r Rect) Rect {
	if r.Empty() {
		return EmptyRect()
	}
	a := t.Apply(Point{r.XLo, r.YLo})
	b := t.Apply(Point{r.XHi, r.YHi})
	return R(a.X, a.Y, b.X, b.Y)
}

// Compose returns the transform equivalent to applying t first, then u:
// (u ∘ t)(p) = u(t(p)).
func (t Transform) Compose(u Transform) Transform {
	return Transform{
		Orient: t.Orient.Compose(u.Orient),
		Mag:    t.mag() * u.mag(),
		Offset: u.Apply(t.Offset),
	}
}

// PreservesDistances reports whether edge-to-edge distances measured in the
// cell's frame survive the transform unchanged — the invariance condition
// for reusing intra-cell check results in the hierarchy pruning pass. All
// eight orientations preserve distances; magnification does not.
func (t Transform) PreservesDistances() bool { return t.mag() == 1 }

// String implements fmt.Stringer.
func (t Transform) String() string {
	return fmt.Sprintf("T{%s mag=%d off=%s}", t.Orient, t.mag(), t.Offset)
}

// Inverse returns the transform undoing t. Only defined for magnification 1
// (magnified placements are not invertible on the integer grid); it panics
// otherwise, which callers prevent via the engine's magnification
// restriction for inter-polygon rules.
func (t Transform) Inverse() Transform {
	if t.mag() != 1 {
		panic("geom: Inverse of magnified transform")
	}
	inv := t.Orient.Inverse()
	return Transform{
		Orient: inv,
		Mag:    1,
		Offset: inv.Apply(t.Offset).Scale(-1),
	}
}
