package geom

import "fmt"

// Rect is an axis-aligned rectangle, the minimum bounding rectangle (MBR)
// unit of the layer-wise bounding volume hierarchy. The zero Rect is the
// canonical empty rectangle (it is Empty and absorbs nothing in Union).
//
// A Rect is half-open in neither axis: it covers [XLo,XHi] × [YLo,YHi].
// Degenerate rectangles with XLo==XHi or YLo==YHi are permitted (they arise
// as MBRs of vertical/horizontal edges) and are not Empty.
type Rect struct {
	XLo, YLo, XHi, YHi int64
}

// EmptyRect returns the canonical empty rectangle, with inverted bounds so
// that Union with any rectangle yields that rectangle.
func EmptyRect() Rect {
	const big = int64(1) << 62
	return Rect{XLo: big, YLo: big, XHi: -big, YHi: -big}
}

// RectFromPoints returns the MBR of the given points; it is EmptyRect for an
// empty slice.
func RectFromPoints(pts []Point) Rect {
	r := EmptyRect()
	for _, p := range pts {
		r = r.Include(p)
	}
	return r
}

// R is shorthand for constructing a rectangle from two corners in any order.
func R(x0, y0, x1, y1 int64) Rect {
	return Rect{minInt64(x0, x1), minInt64(y0, y1), maxInt64(x0, x1), maxInt64(y0, y1)}
}

// Empty reports whether the rectangle contains no points.
func (r Rect) Empty() bool { return r.XLo > r.XHi || r.YLo > r.YHi }

// Width returns the X extent. Negative for empty rectangles.
func (r Rect) Width() int64 { return r.XHi - r.XLo }

// Height returns the Y extent. Negative for empty rectangles.
func (r Rect) Height() int64 { return r.YHi - r.YLo }

// Area returns the area of the rectangle, 0 if empty or degenerate.
func (r Rect) Area() int64 {
	if r.Empty() {
		return 0
	}
	return r.Width() * r.Height()
}

// Contains reports whether p lies within r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.XLo && p.X <= r.XHi && p.Y >= r.YLo && p.Y <= r.YHi
}

// ContainsRect reports whether s lies entirely within r. An empty s is
// contained in everything.
func (r Rect) ContainsRect(s Rect) bool {
	if s.Empty() {
		return true
	}
	return s.XLo >= r.XLo && s.XHi <= r.XHi && s.YLo >= r.YLo && s.YHi <= r.YHi
}

// Overlaps reports whether r and s share at least one point (touching edges
// count: DRC interactions at distance zero are real interactions).
func (r Rect) Overlaps(s Rect) bool {
	if r.Empty() || s.Empty() {
		return false
	}
	return r.XLo <= s.XHi && s.XLo <= r.XHi && r.YLo <= s.YHi && s.YLo <= r.YHi
}

// Intersect returns the common region of r and s; the result is Empty when
// they do not overlap.
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		XLo: maxInt64(r.XLo, s.XLo),
		YLo: maxInt64(r.YLo, s.YLo),
		XHi: minInt64(r.XHi, s.XHi),
		YHi: minInt64(r.YHi, s.YHi),
	}
	if out.Empty() {
		return EmptyRect()
	}
	return out
}

// Union returns the MBR of r and s.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		XLo: minInt64(r.XLo, s.XLo),
		YLo: minInt64(r.YLo, s.YLo),
		XHi: maxInt64(r.XHi, s.XHi),
		YHi: maxInt64(r.YHi, s.YHi),
	}
}

// Include returns the MBR of r and the point p.
func (r Rect) Include(p Point) Rect {
	return r.Union(Rect{p.X, p.Y, p.X, p.Y})
}

// Expand grows the rectangle by d on every side. Expanding an empty
// rectangle leaves it empty. This implements the paper's rule-distance MBR
// enlargement: "the MBRs should be enlarged by a minimum rule distance to
// ensure non-overlapping indeed indicates no violations".
func (r Rect) Expand(d int64) Rect {
	if r.Empty() {
		return EmptyRect()
	}
	out := Rect{r.XLo - d, r.YLo - d, r.XHi + d, r.YHi + d}
	if out.Empty() {
		return EmptyRect()
	}
	return out
}

// Translate returns r moved by the vector p.
func (r Rect) Translate(p Point) Rect {
	if r.Empty() {
		return r
	}
	return Rect{r.XLo + p.X, r.YLo + p.Y, r.XHi + p.X, r.YHi + p.Y}
}

// Center returns the midpoint of the rectangle (rounded toward -inf).
func (r Rect) Center() Point {
	return Point{(r.XLo + r.XHi) / 2, (r.YLo + r.YHi) / 2}
}

// Corners returns the four corners in clockwise order starting at the
// lower-left, matching the polygon vertex convention used by the checks.
func (r Rect) Corners() [4]Point {
	return [4]Point{
		{r.XLo, r.YLo},
		{r.XLo, r.YHi},
		{r.XHi, r.YHi},
		{r.XHi, r.YLo},
	}
}

// Distance returns the minimum L∞-style axis distance between two disjoint
// rectangles as the pair (dx, dy) of per-axis gaps (0 when projections
// overlap on that axis). This is the quantity spacing rules constrain for
// axis-aligned geometry.
func (r Rect) Distance(s Rect) (dx, dy int64) {
	if r.XHi < s.XLo {
		dx = s.XLo - r.XHi
	} else if s.XHi < r.XLo {
		dx = r.XLo - s.XHi
	}
	if r.YHi < s.YLo {
		dy = s.YLo - r.YHi
	} else if s.YHi < r.YLo {
		dy = r.YLo - s.YHi
	}
	return dx, dy
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	if r.Empty() {
		return "Rect(empty)"
	}
	return fmt.Sprintf("Rect(%d,%d ; %d,%d)", r.XLo, r.YLo, r.XHi, r.YHi)
}
