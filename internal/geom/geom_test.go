package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p, q := Pt(3, 4), Pt(-1, 2)
	if got := p.Add(q); got != Pt(2, 6) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(4, 2) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(3); got != Pt(9, 12) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 5 {
		t.Errorf("Dot = %d", got)
	}
	if got := p.Cross(q); got != 10 {
		t.Errorf("Cross = %d", got)
	}
	if got := p.ManhattanDist(q); got != 6 {
		t.Errorf("ManhattanDist = %d", got)
	}
}

func TestPointLess(t *testing.T) {
	cases := []struct {
		a, b Point
		want bool
	}{
		{Pt(0, 0), Pt(1, 0), true},
		{Pt(1, 0), Pt(0, 0), false},
		{Pt(0, 0), Pt(0, 1), true},
		{Pt(0, 1), Pt(0, 0), false},
		{Pt(0, 0), Pt(0, 0), false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestRectBasics(t *testing.T) {
	r := R(10, 20, 0, 5) // corners in any order
	if r != (Rect{0, 5, 10, 20}) {
		t.Fatalf("R normalization failed: %v", r)
	}
	if r.Width() != 10 || r.Height() != 15 {
		t.Errorf("dims = %d x %d", r.Width(), r.Height())
	}
	if r.Area() != 150 {
		t.Errorf("Area = %d", r.Area())
	}
	if r.Empty() {
		t.Error("non-empty rect reported empty")
	}
	if !EmptyRect().Empty() {
		t.Error("EmptyRect not empty")
	}
	if EmptyRect().Area() != 0 {
		t.Error("empty rect area != 0")
	}
}

func TestRectContainsOverlaps(t *testing.T) {
	r := R(0, 0, 10, 10)
	if !r.Contains(Pt(0, 0)) || !r.Contains(Pt(10, 10)) || !r.Contains(Pt(5, 5)) {
		t.Error("Contains boundary/interior failed")
	}
	if r.Contains(Pt(11, 5)) || r.Contains(Pt(5, -1)) {
		t.Error("Contains outside point")
	}
	if !r.Overlaps(R(10, 10, 20, 20)) {
		t.Error("touching rects must overlap (zero-distance interaction)")
	}
	if r.Overlaps(R(11, 0, 20, 10)) {
		t.Error("disjoint rects overlap")
	}
	if r.Overlaps(EmptyRect()) || EmptyRect().Overlaps(r) {
		t.Error("empty rect overlaps something")
	}
	if !r.ContainsRect(R(2, 2, 8, 8)) || r.ContainsRect(R(2, 2, 18, 8)) {
		t.Error("ContainsRect failed")
	}
	if !r.ContainsRect(EmptyRect()) {
		t.Error("empty rect should be contained in everything")
	}
}

func TestRectIntersectUnion(t *testing.T) {
	a, b := R(0, 0, 10, 10), R(5, 5, 15, 15)
	if got := a.Intersect(b); got != R(5, 5, 10, 10) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Union(b); got != R(0, 0, 15, 15) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(R(20, 20, 30, 30)); !got.Empty() {
		t.Errorf("disjoint Intersect = %v", got)
	}
	if got := EmptyRect().Union(a); got != a {
		t.Errorf("empty union = %v", got)
	}
}

func TestRectExpandDistance(t *testing.T) {
	r := R(5, 5, 10, 10)
	if got := r.Expand(2); got != R(3, 3, 12, 12) {
		t.Errorf("Expand = %v", got)
	}
	if got := EmptyRect().Expand(5); !got.Empty() {
		t.Errorf("expanded empty = %v", got)
	}
	a, b := R(0, 0, 10, 10), R(14, 25, 20, 30)
	dx, dy := a.Distance(b)
	if dx != 4 || dy != 15 {
		t.Errorf("Distance = %d,%d", dx, dy)
	}
	dx, dy = b.Distance(a)
	if dx != 4 || dy != 15 {
		t.Errorf("Distance not symmetric: %d,%d", dx, dy)
	}
	dx, dy = a.Distance(R(5, 5, 6, 6))
	if dx != 0 || dy != 0 {
		t.Errorf("overlapping Distance = %d,%d", dx, dy)
	}
}

func TestRectPropertyUnionContains(t *testing.T) {
	f := func(x0, y0, x1, y1, x2, y2, x3, y3 int32) bool {
		a := R(int64(x0), int64(y0), int64(x1), int64(y1))
		b := R(int64(x2), int64(y2), int64(x3), int64(y3))
		u := a.Union(b)
		return u.ContainsRect(a) && u.ContainsRect(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectPropertyIntersectWithin(t *testing.T) {
	f := func(x0, y0, x1, y1, x2, y2, x3, y3 int16) bool {
		a := R(int64(x0), int64(y0), int64(x1), int64(y1))
		b := R(int64(x2), int64(y2), int64(x3), int64(y3))
		i := a.Intersect(b)
		if i.Empty() {
			return true
		}
		return a.ContainsRect(i) && b.ContainsRect(i) && a.Overlaps(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOrientApply(t *testing.T) {
	p := Pt(2, 1)
	cases := []struct {
		o    Orient
		want Point
	}{
		{R0, Pt(2, 1)},
		{R90, Pt(-1, 2)},
		{R180, Pt(-2, -1)},
		{R270, Pt(1, -2)},
		{MXR0, Pt(2, -1)},
		{MXR90, Pt(1, 2)},
		{MXR180, Pt(-2, 1)},
		{MXR270, Pt(-1, -2)},
	}
	for _, c := range cases {
		if got := c.o.Apply(p); got != c.want {
			t.Errorf("%v.Apply(%v) = %v, want %v", c.o, p, got, c.want)
		}
	}
}

func TestOrientComposeMatchesApplication(t *testing.T) {
	pts := []Point{Pt(1, 0), Pt(0, 1), Pt(3, -2), Pt(-5, 7)}
	for o := R0; o <= MXR270; o++ {
		for q := R0; q <= MXR270; q++ {
			c := o.Compose(q)
			for _, p := range pts {
				want := q.Apply(o.Apply(p))
				if got := c.Apply(p); got != want {
					t.Fatalf("(%v∘%v).Apply(%v) = %v, want %v", q, o, p, got, want)
				}
			}
		}
	}
}

func TestOrientInverse(t *testing.T) {
	for o := R0; o <= MXR270; o++ {
		inv := o.Inverse()
		if got := o.Compose(inv); got != R0 {
			t.Errorf("%v.Compose(inverse) = %v", o, got)
		}
		if got := inv.Compose(o); got != R0 {
			t.Errorf("inverse.Compose(%v) = %v", o, got)
		}
	}
}

func TestOrientSwapsAxes(t *testing.T) {
	for o := R0; o <= MXR270; o++ {
		want := o.Rotation() == 90 || o.Rotation() == 270
		if got := o.SwapsAxes(); got != want {
			t.Errorf("%v.SwapsAxes() = %v", o, got)
		}
	}
}

func TestTransformApply(t *testing.T) {
	tr := Transform{Orient: R90, Mag: 2, Offset: Pt(100, 50)}
	// (3,1) -R90-> (-1,3) -mag2-> (-2,6) -offset-> (98,56)
	if got := tr.Apply(Pt(3, 1)); got != Pt(98, 56) {
		t.Errorf("Apply = %v", got)
	}
	if !Identity().IsIdentity() {
		t.Error("Identity not identity")
	}
	if Identity().Apply(Pt(7, -3)) != Pt(7, -3) {
		t.Error("Identity moved a point")
	}
}

func TestTransformApplyRect(t *testing.T) {
	tr := Transform{Orient: R90, Mag: 1, Offset: Pt(0, 0)}
	r := R(1, 2, 3, 5)
	got := tr.ApplyRect(r)
	// R90: (x,y) -> (-y,x), so x' = -y ∈ [-5,-2] and y' = x ∈ [1,3].
	want := R(-5, 1, -2, 3)
	if got != want {
		t.Errorf("ApplyRect = %v, want %v", got, want)
	}
	if !tr.ApplyRect(EmptyRect()).Empty() {
		t.Error("transformed empty rect not empty")
	}
}

func TestTransformCompose(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		t1 := Transform{
			Orient: Orient(rng.Intn(8)),
			Mag:    int64(1 + rng.Intn(3)),
			Offset: Pt(int64(rng.Intn(100)-50), int64(rng.Intn(100)-50)),
		}
		t2 := Transform{
			Orient: Orient(rng.Intn(8)),
			Mag:    int64(1 + rng.Intn(3)),
			Offset: Pt(int64(rng.Intn(100)-50), int64(rng.Intn(100)-50)),
		}
		c := t1.Compose(t2)
		p := Pt(int64(rng.Intn(40)-20), int64(rng.Intn(40)-20))
		want := t2.Apply(t1.Apply(p))
		if got := c.Apply(p); got != want {
			t.Fatalf("compose mismatch: t1=%v t2=%v p=%v got=%v want=%v", t1, t2, p, got, want)
		}
	}
}

func TestEdgeDir(t *testing.T) {
	cases := []struct {
		e    Edge
		want EdgeDir
	}{
		{E(0, 0, 0, 5), DirNorth},
		{E(0, 5, 0, 0), DirSouth},
		{E(0, 0, 5, 0), DirEast},
		{E(5, 0, 0, 0), DirWest},
		{E(0, 0, 3, 3), DirNone},
		{E(1, 1, 1, 1), DirNone},
	}
	for _, c := range cases {
		if got := c.e.Dir(); got != c.want {
			t.Errorf("%v.Dir() = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestEdgeSpanPerp(t *testing.T) {
	e := E(2, 7, 9, 7) // east
	if e.Lo() != 2 || e.Hi() != 9 || e.Perp() != 7 {
		t.Errorf("east edge span: lo=%d hi=%d perp=%d", e.Lo(), e.Hi(), e.Perp())
	}
	v := E(4, 10, 4, 3) // south
	if v.Lo() != 3 || v.Hi() != 10 || v.Perp() != 4 {
		t.Errorf("south edge span: lo=%d hi=%d perp=%d", v.Lo(), v.Hi(), v.Perp())
	}
	if e.Length() != 7 || v.Length() != 7 {
		t.Errorf("lengths %d %d", e.Length(), v.Length())
	}
}

func TestEdgeProjectionOverlap(t *testing.T) {
	a := E(0, 0, 10, 0)
	b := E(5, 3, 15, 3)
	if got := a.ProjectionOverlap(b); got != 5 {
		t.Errorf("overlap = %d", got)
	}
	c := E(10, 3, 20, 3) // touching only
	if got := a.ProjectionOverlap(c); got != 0 {
		t.Errorf("touching overlap = %d", got)
	}
	d := E(11, 3, 20, 3)
	if got := a.ProjectionOverlap(d); got != 0 {
		t.Errorf("disjoint overlap = %d", got)
	}
}

func TestEdgeInteriorSide(t *testing.T) {
	cases := []struct {
		e    Edge
		want EdgeDir
	}{
		{E(0, 0, 0, 5), DirEast},
		{E(0, 5, 0, 0), DirWest},
		{E(0, 0, 5, 0), DirSouth},
		{E(5, 0, 0, 0), DirNorth},
	}
	for _, c := range cases {
		if got := c.e.InteriorSide(); got != c.want {
			t.Errorf("%v.InteriorSide() = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestPolygonNormalization(t *testing.T) {
	// Same square given CW and CCW, rotated start; all must canonicalize equal.
	sq1 := MustPolygon([]Point{Pt(0, 0), Pt(0, 10), Pt(10, 10), Pt(10, 0)}) // CW
	sq2 := MustPolygon([]Point{Pt(10, 0), Pt(10, 10), Pt(0, 10), Pt(0, 0)}) // CCW rotated
	sq3 := MustPolygon([]Point{Pt(10, 10), Pt(10, 0), Pt(0, 0), Pt(0, 10)})
	if !sq1.Equal(sq2) || !sq1.Equal(sq3) {
		t.Errorf("canonicalization failed:\n%v\n%v\n%v", sq1, sq2, sq3)
	}
	if sq1.Vertex(0) != Pt(0, 0) {
		t.Errorf("ring does not start at smallest vertex: %v", sq1)
	}
	if sq1.SignedArea2() >= 0 {
		t.Errorf("canonical ring should be clockwise (negative signed area), got %d", sq1.SignedArea2())
	}
}

func TestPolygonClosedRingAndCollinear(t *testing.T) {
	// Closing vertex and collinear midpoints must be stripped.
	p := MustPolygon([]Point{
		Pt(0, 0), Pt(0, 5), Pt(0, 10), Pt(10, 10), Pt(10, 0), Pt(5, 0), Pt(0, 0),
	})
	if p.NumVertices() != 4 {
		t.Errorf("vertices = %d, want 4 (%v)", p.NumVertices(), p)
	}
	if _, err := NewPolygon([]Point{Pt(0, 0), Pt(1, 1)}); err == nil {
		t.Error("expected error for 2-vertex polygon")
	}
	if _, err := NewPolygon([]Point{Pt(0, 0), Pt(5, 0), Pt(10, 0)}); err == nil {
		t.Error("expected error for fully collinear polygon")
	}
}

func TestPolygonArea(t *testing.T) {
	sq := RectPolygon(R(0, 0, 10, 10))
	if sq.Area() != 100 || sq.Area2() != 200 {
		t.Errorf("square area = %d (x2=%d)", sq.Area(), sq.Area2())
	}
	// L-shape: 10x10 square minus 5x5 corner = 75.
	l := MustPolygon([]Point{
		Pt(0, 0), Pt(0, 10), Pt(5, 10), Pt(5, 5), Pt(10, 5), Pt(10, 0),
	})
	if l.Area() != 75 {
		t.Errorf("L area = %d, want 75", l.Area())
	}
	if !l.IsRectilinear() {
		t.Error("L-shape must be rectilinear")
	}
	if l.IsRectangle() {
		t.Error("L-shape must not be a rectangle")
	}
	if !sq.IsRectangle() {
		t.Error("square must be a rectangle")
	}
}

func TestPolygonMBREdges(t *testing.T) {
	l := MustPolygon([]Point{
		Pt(0, 0), Pt(0, 10), Pt(5, 10), Pt(5, 5), Pt(10, 5), Pt(10, 0),
	})
	if got := l.MBR(); got != R(0, 0, 10, 10) {
		t.Errorf("MBR = %v", got)
	}
	if l.NumEdges() != 6 {
		t.Errorf("edges = %d", l.NumEdges())
	}
	// Every edge must be axis-aligned and edges must chain.
	for i := 0; i < l.NumEdges(); i++ {
		e := l.Edge(i)
		if e.Dir() == DirNone {
			t.Errorf("edge %d not axis aligned: %v", i, e)
		}
		next := l.Edge((i + 1) % l.NumEdges())
		if e.P1 != next.P0 {
			t.Errorf("edges %d,%d do not chain", i, i+1)
		}
	}
	edges := l.AppendEdges(nil)
	if len(edges) != 6 {
		t.Errorf("AppendEdges len = %d", len(edges))
	}
}

func TestPolygonContainsPoint(t *testing.T) {
	l := MustPolygon([]Point{
		Pt(0, 0), Pt(0, 10), Pt(5, 10), Pt(5, 5), Pt(10, 5), Pt(10, 0),
	})
	inside := []Point{Pt(1, 1), Pt(4, 9), Pt(9, 1), Pt(2, 5)}
	for _, p := range inside {
		if !l.ContainsPoint(p) {
			t.Errorf("%v should be inside", p)
		}
	}
	boundary := []Point{Pt(0, 0), Pt(0, 5), Pt(5, 7), Pt(7, 5), Pt(10, 3)}
	for _, p := range boundary {
		if !l.ContainsPoint(p) {
			t.Errorf("%v on boundary should count as inside", p)
		}
	}
	outside := []Point{Pt(7, 7), Pt(11, 5), Pt(-1, 0), Pt(6, 10)}
	for _, p := range outside {
		if l.ContainsPoint(p) {
			t.Errorf("%v should be outside", p)
		}
	}
}

func TestPolygonTransformPreservesArea(t *testing.T) {
	l := MustPolygon([]Point{
		Pt(0, 0), Pt(0, 10), Pt(5, 10), Pt(5, 5), Pt(10, 5), Pt(10, 0),
	})
	for o := R0; o <= MXR270; o++ {
		tr := Transform{Orient: o, Mag: 1, Offset: Pt(13, -7)}
		tp := l.Transform(tr)
		if tp.Area() != l.Area() {
			t.Errorf("%v: area %d != %d", o, tp.Area(), l.Area())
		}
		if tp.SignedArea2() >= 0 {
			t.Errorf("%v: transform broke canonical winding", o)
		}
		if !tp.IsRectilinear() {
			t.Errorf("%v: transform broke rectilinearity", o)
		}
	}
	mag := Transform{Orient: R0, Mag: 3}
	if got := l.Transform(mag).Area(); got != l.Area()*9 {
		t.Errorf("mag-3 area = %d, want %d", got, l.Area()*9)
	}
}

func TestPolygonTransformMBRCommutes(t *testing.T) {
	f := func(ox uint8, dx, dy int16) bool {
		tr := Transform{Orient: Orient(ox % 8), Mag: 1, Offset: Pt(int64(dx), int64(dy))}
		l := MustPolygon([]Point{
			Pt(0, 0), Pt(0, 10), Pt(5, 10), Pt(5, 5), Pt(10, 5), Pt(10, 0),
		})
		return l.Transform(tr).MBR() == tr.ApplyRect(l.MBR())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectPolygonRoundTrip(t *testing.T) {
	r := R(3, 4, 17, 22)
	p := RectPolygon(r)
	if p.MBR() != r {
		t.Errorf("MBR = %v, want %v", p.MBR(), r)
	}
	if p.Area() != r.Area() {
		t.Errorf("area = %d, want %d", p.Area(), r.Area())
	}
}

func TestTransformInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 100; i++ {
		tr := Transform{
			Orient: Orient(rng.Intn(8)),
			Mag:    1,
			Offset: Pt(int64(rng.Intn(200)-100), int64(rng.Intn(200)-100)),
		}
		inv := tr.Inverse()
		p := Pt(int64(rng.Intn(100)-50), int64(rng.Intn(100)-50))
		if got := inv.Apply(tr.Apply(p)); got != p {
			t.Fatalf("inverse failed: %v -> %v", p, got)
		}
		if got := tr.Apply(inv.Apply(p)); got != p {
			t.Fatalf("inverse (other side) failed: %v -> %v", p, got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Inverse of magnified transform did not panic")
		}
	}()
	(Transform{Mag: 2}).Inverse()
}
