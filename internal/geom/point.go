// Package geom provides the integer geometry primitives used throughout
// OpenDRC: points, rectangles, directed edges, rectilinear polygons, and the
// GDSII placement transforms (translation, rotation, mirroring,
// magnification). All coordinates are int64 database units (DBU); with the
// conventional 1 DBU = 1 nm this covers dies far beyond any real reticle.
package geom

import "fmt"

// Point is a location in database units.
type Point struct {
	X, Y int64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y int64) Point { return Point{x, y} }

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p with both coordinates multiplied by k.
func (p Point) Scale(k int64) Point { return Point{p.X * k, p.Y * k} }

// Dot returns the dot product p · q.
func (p Point) Dot(q Point) int64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z component of the cross product p × q.
func (p Point) Cross(q Point) int64 { return p.X*q.Y - p.Y*q.X }

// ManhattanDist returns the L1 distance between p and q.
func (p Point) ManhattanDist(q Point) int64 {
	return absInt64(p.X-q.X) + absInt64(p.Y-q.Y)
}

// Less orders points lexicographically by (X, Y); useful as a canonical
// ordering for normalization and deterministic output.
func (p Point) Less(q Point) bool {
	if p.X != q.X {
		return p.X < q.X
	}
	return p.Y < q.Y
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

func absInt64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
