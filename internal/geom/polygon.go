package geom

import (
	"errors"
	"fmt"
)

// Polygon is a simple polygon stored as its vertex ring without repeating
// the first vertex at the end (the GDSII closing point is stripped on
// parse). OpenDRC normalizes polygons to clockwise order with the
// lexicographically smallest vertex first, so isomorphic polygons compare
// equal and the edge-relation conventions of the checks hold.
type Polygon struct {
	pts []Point
}

// NewPolygon builds a polygon from the given ring. The ring is defensively
// copied and normalized to canonical clockwise order. At least 3 vertices
// are required; collinear duplicate vertices are merged.
func NewPolygon(pts []Point) (Polygon, error) {
	if len(pts) < 3 {
		return Polygon{}, fmt.Errorf("geom: polygon needs >= 3 vertices, got %d", len(pts))
	}
	ring := make([]Point, len(pts))
	copy(ring, pts)
	// Strip a repeated closing vertex if present.
	if len(ring) > 3 && ring[0] == ring[len(ring)-1] {
		ring = ring[:len(ring)-1]
	}
	ring = dedupCollinear(ring)
	if len(ring) < 3 {
		return Polygon{}, errors.New("geom: polygon degenerates to fewer than 3 vertices")
	}
	p := Polygon{pts: ring}
	p.normalize()
	return p, nil
}

// MustPolygon is NewPolygon that panics on error; for tests and literals.
// The panic is deliberate and stays: callers pass compile-time-constant
// vertex lists (test fixtures, RectPolygon's four corners), so an error
// here is a programming bug, not an input condition. Code paths that build
// polygons from untrusted data (GDSII parsing, synthesis) go through
// NewPolygon and propagate the error; the engine additionally recovers
// any stray panic per rule into a degraded report rather than crashing.
func MustPolygon(pts []Point) Polygon {
	p, err := NewPolygon(pts)
	if err != nil {
		panic(err)
	}
	return p
}

// RectPolygon returns the 4-vertex polygon covering r.
func RectPolygon(r Rect) Polygon {
	c := r.Corners()
	return MustPolygon(c[:])
}

// dedupCollinear removes repeated vertices and merges runs of collinear
// vertices so each stored vertex is a true corner.
func dedupCollinear(ring []Point) []Point {
	// First remove exact duplicates of consecutive points.
	out := ring[:0:0]
	for i, p := range ring {
		if i > 0 && p == out[len(out)-1] {
			continue
		}
		out = append(out, p)
	}
	if len(out) > 1 && out[0] == out[len(out)-1] {
		out = out[:len(out)-1]
	}
	// Then drop vertices where incoming and outgoing edges are collinear.
	if len(out) < 3 {
		return out
	}
	kept := make([]Point, 0, len(out))
	n := len(out)
	for i := 0; i < n; i++ {
		prev := out[(i-1+n)%n]
		cur := out[i]
		next := out[(i+1)%n]
		if next.Sub(cur).Cross(cur.Sub(prev)) == 0 {
			continue // collinear; cur is not a corner
		}
		kept = append(kept, cur)
	}
	return kept
}

// normalize rewrites the ring to clockwise order starting at the
// lexicographically smallest vertex.
func (p *Polygon) normalize() {
	if p.SignedArea2() > 0 { // counterclockwise ⇒ reverse
		for i, j := 0, len(p.pts)-1; i < j; i, j = i+1, j-1 {
			p.pts[i], p.pts[j] = p.pts[j], p.pts[i]
		}
	}
	// Rotate so the smallest vertex is first.
	min := 0
	for i, q := range p.pts {
		if q.Less(p.pts[min]) {
			min = i
		}
	}
	if min != 0 {
		rot := make([]Point, len(p.pts))
		copy(rot, p.pts[min:])
		copy(rot[len(p.pts)-min:], p.pts[:min])
		p.pts = rot
	}
}

// NumVertices returns the vertex count.
func (p Polygon) NumVertices() int { return len(p.pts) }

// Vertex returns the i-th vertex of the canonical ring.
func (p Polygon) Vertex(i int) Point { return p.pts[i] }

// Vertices returns a copy of the canonical ring.
func (p Polygon) Vertices() []Point {
	out := make([]Point, len(p.pts))
	copy(out, p.pts)
	return out
}

// NumEdges returns the edge count (== vertex count for a closed ring).
func (p Polygon) NumEdges() int { return len(p.pts) }

// Edge returns the i-th directed edge, from vertex i to vertex i+1 mod n.
func (p Polygon) Edge(i int) Edge {
	n := len(p.pts)
	return Edge{p.pts[i], p.pts[(i+1)%n]}
}

// AppendEdges appends all edges of the polygon to dst and returns it; used
// by the parallel mode's edge packing to avoid per-polygon allocations.
func (p Polygon) AppendEdges(dst []Edge) []Edge {
	n := len(p.pts)
	for i := 0; i < n; i++ {
		dst = append(dst, Edge{p.pts[i], p.pts[(i+1)%n]}) //odrc:allow argmut — append-and-return API in the strconv.AppendX convention; callers reassign the result
	}
	return dst
}

// SignedArea2 returns twice the signed area by the Shoelace Theorem:
// positive for counterclockwise rings, negative for clockwise. Working with
// the doubled value keeps everything in exact integer arithmetic.
func (p Polygon) SignedArea2() int64 {
	var s int64
	n := len(p.pts)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		s += p.pts[i].Cross(p.pts[j])
	}
	return s
}

// Area2 returns twice the (positive) enclosed area. The minimum-area check
// compares doubled areas against doubled thresholds so no precision is lost.
func (p Polygon) Area2() int64 {
	s := p.SignedArea2()
	if s < 0 {
		return -s
	}
	return s
}

// Area returns the enclosed area (exact when the doubled area is even, which
// always holds for rectilinear polygons).
func (p Polygon) Area() int64 { return p.Area2() / 2 }

// MBR returns the bounding rectangle of the polygon.
func (p Polygon) MBR() Rect { return RectFromPoints(p.pts) }

// IsRectilinear reports whether every edge is axis-aligned — the paper's
// is_rectilinear predicate.
func (p Polygon) IsRectilinear() bool {
	for i := range p.pts {
		if p.Edge(i).Dir() == DirNone {
			return false
		}
	}
	return true
}

// IsRectangle reports whether the polygon is exactly an axis-aligned
// rectangle; rectangles take fast paths in several checks.
func (p Polygon) IsRectangle() bool {
	if len(p.pts) != 4 || !p.IsRectilinear() {
		return false
	}
	return p.MBR().Area() == p.Area()
}

// Transform maps the polygon through t. Mirror transforms flip the winding
// direction, so the ring is reversed to stay clockwise; the canonical
// smallest-vertex start is *not* re-established (edge sets, areas, MBRs and
// all checks are invariant to the ring's starting vertex, and skipping the
// rotation keeps instance flattening cheap). Use Equal only on polygons
// built by NewPolygon.
func (p Polygon) Transform(t Transform) Polygon {
	out := make([]Point, len(p.pts))
	if t.Orient.Mirrored() {
		n := len(p.pts)
		for i, q := range p.pts {
			out[n-1-i] = t.Apply(q)
		}
	} else {
		for i, q := range p.pts {
			out[i] = t.Apply(q)
		}
	}
	return Polygon{pts: out}
}

// ContainsPoint reports whether q lies inside or on the boundary of the
// polygon, via the crossing-number method specialized for rectilinear
// polygons (exact integer arithmetic).
func (p Polygon) ContainsPoint(q Point) bool {
	inside := false
	n := len(p.pts)
	for i := 0; i < n; i++ {
		a, b := p.pts[i], p.pts[(i+1)%n]
		// Boundary test for axis-aligned segments.
		if a.X == b.X && q.X == a.X && q.Y >= minInt64(a.Y, b.Y) && q.Y <= maxInt64(a.Y, b.Y) {
			return true
		}
		if a.Y == b.Y && q.Y == a.Y && q.X >= minInt64(a.X, b.X) && q.X <= maxInt64(a.X, b.X) {
			return true
		}
		// Ray cast to +x: count crossings of vertical edges.
		if (a.Y > q.Y) != (b.Y > q.Y) {
			// For rectilinear polygons only vertical edges can satisfy
			// the straddle condition; the x intersection is a.X == b.X.
			// Allow the general case anyway via exact rational compare:
			// x = a.X + (q.Y-a.Y)*(b.X-a.X)/(b.Y-a.Y)
			num := (q.Y-a.Y)*(b.X-a.X) + a.X*(b.Y-a.Y)
			den := b.Y - a.Y
			// q.X < x  ⇔  q.X*den < num  (careful with sign of den)
			if den > 0 {
				if q.X*den < num {
					inside = !inside
				}
			} else {
				if q.X*den > num {
					inside = !inside
				}
			}
		}
	}
	return inside
}

// Equal reports whether two polygons have identical canonical rings.
func (p Polygon) Equal(q Polygon) bool {
	if len(p.pts) != len(q.pts) {
		return false
	}
	for i := range p.pts {
		if p.pts[i] != q.pts[i] {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer.
func (p Polygon) String() string {
	return fmt.Sprintf("Polygon%v", p.pts)
}
