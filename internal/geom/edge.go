package geom

import "fmt"

// EdgeDir classifies the direction of a directed axis-aligned edge. With the
// clockwise vertex convention used by OpenDRC polygons, the interior of the
// polygon lies to the *right* of each directed edge when walking from P0 to
// P1: a North edge has interior to its east, a South edge interior to its
// west, an East edge interior to its south, and a West edge interior to its
// north. The paper relies on exactly this property: "Polygon vertices are
// stored in clockwise order, so that positional relations of edges are
// determined accordingly."
type EdgeDir uint8

// Edge directions.
const (
	DirNorth EdgeDir = iota // P1.Y > P0.Y, vertical
	DirSouth                // P1.Y < P0.Y, vertical
	DirEast                 // P1.X > P0.X, horizontal
	DirWest                 // P1.X < P0.X, horizontal
	DirNone                 // degenerate (P0 == P1) or non-rectilinear
)

var dirNames = [...]string{"N", "S", "E", "W", "?"}

// String implements fmt.Stringer.
func (d EdgeDir) String() string {
	if int(d) < len(dirNames) {
		return dirNames[d]
	}
	return "?"
}

// Horizontal reports whether the direction is East or West.
func (d EdgeDir) Horizontal() bool { return d == DirEast || d == DirWest }

// Vertical reports whether the direction is North or South.
func (d EdgeDir) Vertical() bool { return d == DirNorth || d == DirSouth }

// Opposite returns the reversed direction.
func (d EdgeDir) Opposite() EdgeDir {
	switch d {
	case DirNorth:
		return DirSouth
	case DirSouth:
		return DirNorth
	case DirEast:
		return DirWest
	case DirWest:
		return DirEast
	}
	return DirNone
}

// Edge is a directed segment between two polygon vertices. For rectilinear
// polygons every edge is axis-aligned; the checks only ever operate on
// axis-aligned edges (the engine rejects non-rectilinear input to distance
// rules up front, mirroring the paper's rectilinear predicate).
type Edge struct {
	P0, P1 Point
}

// E is shorthand for Edge{Pt(x0,y0), Pt(x1,y1)}.
func E(x0, y0, x1, y1 int64) Edge { return Edge{Pt(x0, y0), Pt(x1, y1)} }

// Dir classifies the edge direction.
func (e Edge) Dir() EdgeDir {
	switch {
	case e.P0.X == e.P1.X && e.P1.Y > e.P0.Y:
		return DirNorth
	case e.P0.X == e.P1.X && e.P1.Y < e.P0.Y:
		return DirSouth
	case e.P0.Y == e.P1.Y && e.P1.X > e.P0.X:
		return DirEast
	case e.P0.Y == e.P1.Y && e.P1.X < e.P0.X:
		return DirWest
	}
	return DirNone
}

// Length returns the Manhattan length of the edge (exact for axis-aligned
// edges).
func (e Edge) Length() int64 { return e.P0.ManhattanDist(e.P1) }

// Reverse returns the edge with endpoints swapped.
func (e Edge) Reverse() Edge { return Edge{e.P1, e.P0} }

// MBR returns the (possibly degenerate) bounding rectangle of the edge.
func (e Edge) MBR() Rect { return R(e.P0.X, e.P0.Y, e.P1.X, e.P1.Y) }

// Transform maps the edge through t.
func (e Edge) Transform(t Transform) Edge {
	return Edge{t.Apply(e.P0), t.Apply(e.P1)}
}

// Lo returns the smaller coordinate of the edge's span along its own axis
// (x-range for horizontal edges, y-range for vertical ones).
func (e Edge) Lo() int64 {
	if e.Dir().Horizontal() {
		return minInt64(e.P0.X, e.P1.X)
	}
	return minInt64(e.P0.Y, e.P1.Y)
}

// Hi returns the larger coordinate of the edge's span along its own axis.
func (e Edge) Hi() int64 {
	if e.Dir().Horizontal() {
		return maxInt64(e.P0.X, e.P1.X)
	}
	return maxInt64(e.P0.Y, e.P1.Y)
}

// Perp returns the edge's fixed coordinate on the perpendicular axis (y for
// horizontal edges, x for vertical ones).
func (e Edge) Perp() int64 {
	if e.Dir().Horizontal() {
		return e.P0.Y
	}
	return e.P0.X
}

// ProjectionOverlap returns the length of the common span of two parallel
// axis-aligned edges projected onto their shared axis; 0 when they do not
// overlap (touching endpoints count as 0). Conditional spacing rules key off
// this "projection length".
func (e Edge) ProjectionOverlap(f Edge) int64 {
	lo := maxInt64(e.Lo(), f.Lo())
	hi := minInt64(e.Hi(), f.Hi())
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// String implements fmt.Stringer.
func (e Edge) String() string {
	return fmt.Sprintf("%s->%s[%s]", e.P0, e.P1, e.Dir())
}

// InteriorSide reports the direction pointing from the edge into the
// polygon's interior, assuming the clockwise vertex convention.
func (e Edge) InteriorSide() EdgeDir {
	switch e.Dir() {
	case DirNorth:
		return DirEast
	case DirSouth:
		return DirWest
	case DirEast:
		return DirSouth
	case DirWest:
		return DirNorth
	}
	return DirNone
}
