package geom

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestStringers(t *testing.T) {
	if s := Pt(3, -4).String(); s != "(3,-4)" {
		t.Errorf("point string = %q", s)
	}
	if s := R(0, 0, 5, 5).String(); !strings.Contains(s, "0,0") || !strings.Contains(s, "5,5") {
		t.Errorf("rect string = %q", s)
	}
	if s := EmptyRect().String(); s != "Rect(empty)" {
		t.Errorf("empty rect string = %q", s)
	}
	if s := E(0, 0, 0, 5).String(); !strings.Contains(s, "[N]") {
		t.Errorf("edge string = %q", s)
	}
	if s := MXR90.String(); s != "MXR90" {
		t.Errorf("orient string = %q", s)
	}
	if s := (Transform{Orient: R90, Mag: 2, Offset: Pt(1, 2)}).String(); !strings.Contains(s, "R90") {
		t.Errorf("transform string = %q", s)
	}
	if s := RectPolygon(R(0, 0, 1, 1)).String(); !strings.Contains(s, "Polygon") {
		t.Errorf("polygon string = %q", s)
	}
}

func TestVerticesReturnsCopy(t *testing.T) {
	p := RectPolygon(R(0, 0, 10, 10))
	v := p.Vertices()
	v[0] = Pt(999, 999)
	if p.Vertex(0) == Pt(999, 999) {
		t.Error("Vertices aliased internal storage")
	}
}

func TestEdgeReverseAndMBR(t *testing.T) {
	e := E(2, 3, 2, 9)
	if e.Reverse() != E(2, 9, 2, 3) {
		t.Errorf("reverse = %v", e.Reverse())
	}
	if e.MBR() != R(2, 3, 2, 9) {
		t.Errorf("edge mbr = %v", e.MBR())
	}
	if e.Dir().Opposite() != e.Reverse().Dir() {
		t.Error("opposite direction mismatch")
	}
	if DirNone.Opposite() != DirNone {
		t.Error("DirNone opposite")
	}
}

// TestContainsPointMatchesAreaDecomposition cross-checks ContainsPoint on
// random rectilinear staircase polygons against a per-rectangle
// decomposition oracle.
func TestContainsPointMatchesAreaDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		// Build a staircase polygon as a union of stacked rectangles with a
		// known decomposition: rows of height 10, widths shrinking upward.
		rows := 2 + rng.Intn(4)
		widths := make([]int64, rows)
		w := int64(40 + rng.Intn(40))
		for i := range widths {
			widths[i] = w
			w -= int64(5 + rng.Intn(10))
			if w < 10 {
				w = 10
			}
		}
		// Polygon outline: left edge straight up, right side steps inward
		// going down from the top.
		pts := []Point{Pt(0, 0), Pt(0, int64(rows)*10)}
		for i := rows - 1; i >= 0; i-- {
			y := int64(i+1) * 10
			pts = append(pts, Pt(widths[i], y), Pt(widths[i], y-10))
		}
		poly, err := NewPolygon(pts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		inRects := func(p Point) bool {
			for i, wd := range widths {
				r := R(0, int64(i)*10, wd, int64(i+1)*10)
				if r.Contains(p) {
					return true
				}
			}
			return false
		}
		for i := 0; i < 200; i++ {
			p := Pt(int64(rng.Intn(100)-5), int64(rng.Intn(int(rows)*10+10)-5))
			if got, want := poly.ContainsPoint(p), inRects(p); got != want {
				t.Fatalf("trial %d: ContainsPoint(%v) = %v, oracle %v (poly %v)",
					trial, p, got, want, poly)
			}
		}
	}
}

func TestPolygonAreaMatchesDecomposition(t *testing.T) {
	f := func(w1Raw, w2Raw, hRaw uint8) bool {
		w1 := int64(w1Raw%50) + 10
		w2 := int64(w2Raw%50) + 10
		h := int64(hRaw%30) + 5
		// Two stacked rows: bottom w1 wide, top w2 wide, each h tall.
		pts := []Point{
			Pt(0, 0), Pt(0, 2*h), Pt(w2, 2*h), Pt(w2, h), Pt(w1, h), Pt(w1, 0),
		}
		p, err := NewPolygon(pts)
		if err != nil {
			// Degenerate when w1 == w2 (collinear step) — then it is a
			// rectangle of area w1 * 2h.
			if w1 == w2 {
				rp := RectPolygon(R(0, 0, w1, 2*h))
				return rp.Area() == w1*2*h
			}
			return false
		}
		return p.Area() == w1*h+w2*h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
