package partition

import (
	"testing"

	"opendrc/internal/geom"
)

func BenchmarkRows4k(b *testing.B) {
	boxes := make([]geom.Rect, 4400)
	for i := range boxes {
		y := int64((i % 28) * 270)
		x := int64(i * 37 % 5000)
		boxes[i] = geom.R(x, y+40, x+100, y+230)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Rows(boxes, 18, Pigeonhole)
	}
}
