// Package partition implements OpenDRC's adaptive row-based layout
// partition (Section IV-B). The y-extents of layout objects are merged into
// non-overlapping intervals covering the domain — rows — such that objects
// in different rows cannot interact. Merging uses the paper's Algorithm 1: a
// "pigeonhole array" over the discretized domain of unique y-coordinates,
// giving Θ(k + N) time (k merge operations over an N-coordinate domain)
// instead of the Ω(k log k) sort-based alternative, which is also provided
// as an ablation baseline.
package partition

import (
	"slices"
	"sort"

	"opendrc/internal/geom"
)

// Span is a closed interval over discrete domain indices.
type Span struct {
	Lo, Hi int
}

// MergePigeonhole merges the spans into non-overlapping spans covering the
// whole domain [0, n), using the paper's Algorithm 1 verbatim. n is the
// domain size; every span must satisfy 0 <= Lo <= Hi < n. Domain indices not
// covered by any span become singleton output spans — in OpenDRC's use the
// domain consists exactly of span endpoints, so uncovered indices never
// occur and the output equals the merged cover. The returned spans are
// sorted. Cost is Θ(k + N): one constant-time array update per merge, one
// linear scan.
func MergePigeonhole(n int, spans []Span) []Span {
	if n == 0 {
		return nil
	}
	// Pigeonhole array: A[l] holds the furthest right endpoint of any span
	// starting at l, initialized with indices (Algorithm 1 line 1).
	a := make([]int, n)
	for i := range a {
		a[i] = i
	}
	for _, s := range spans { // line 2-4: A[l] = max(A[l], r)
		if a[s.Lo] < s.Hi {
			a[s.Lo] = s.Hi
		}
	}
	var out []Span
	e := -1 // line 5: current interval end
	start := 0
	for i := 0; i < n; i++ { // line 6-11
		if i > e { // the running interval ended before i
			if e >= 0 {
				out = append(out, Span{start, e})
			}
			start, e = i, i
		}
		if a[i] > e {
			e = a[i]
		}
	}
	return append(out, Span{start, e})
}

// MergeSort is the Ω(k log k) sort-based merge, kept as the ablation
// baseline the paper argues against ("k is typically much larger than N in
// our problems, and arrays usually have a much better locality").
func MergeSort(spans []Span) []Span {
	if len(spans) == 0 {
		return nil
	}
	s := append([]Span(nil), spans...)
	sort.Slice(s, func(i, j int) bool {
		if s[i].Lo != s[j].Lo {
			return s[i].Lo < s[j].Lo
		}
		return s[i].Hi < s[j].Hi
	})
	out := []Span{s[0]}
	for _, sp := range s[1:] {
		last := &out[len(out)-1]
		if sp.Lo <= last.Hi { // overlap or touch in index space
			if sp.Hi > last.Hi {
				last.Hi = sp.Hi
			}
		} else {
			out = append(out, sp)
		}
	}
	return out
}

// Row is one partition row: a y-range plus the indices of the input boxes
// assigned to it. Rows are disjoint and sorted by YLo, and — given the guard
// distance used to build them — no design rule with reach ≤ guard can relate
// geometry in different rows.
type Row struct {
	YLo, YHi int64 // extent of member boxes (without the guard)
	Members  []int
}

// Algorithm selects the interval-merging implementation.
type Algorithm int

// Merging algorithm choices.
const (
	Pigeonhole Algorithm = iota // Algorithm 1 (default)
	SortBased                   // ablation baseline
)

// Rows partitions boxes into independent rows. guard is the maximum
// interaction distance of the rules to be checked: each box's y-extent is
// enlarged upward by guard before merging, so boxes with a vertical gap
// smaller than guard always share a row (the paper's rule-distance MBR
// enlargement applied to partitioning). Empty boxes are assigned to no row.
//
// Discretization uses one sort of the 2k interval endpoints followed by
// linear rank/assignment passes, so the whole partition is a single
// O(k log k) sort plus the Θ(k + N) merge.
func Rows(boxes []geom.Rect, guard int64, alg Algorithm) []Row {
	// Discretize: domain = unique interval endpoints. Sorting the bare
	// values (slices.Sort's specialized int64 path — no comparator calls,
	// no struct swaps) and ranking each box endpoint by binary search in
	// the compacted result produces exactly the ranks the old
	// endpoint-record sort did, at a fraction of the cost; this sort is
	// the hottest host instruction stream of the partition phase.
	vals := make([]int64, 0, 2*len(boxes))
	for _, b := range boxes {
		if b.Empty() {
			continue
		}
		vals = append(vals, b.YLo, b.YHi+guard)
	}
	if len(vals) == 0 {
		return nil
	}
	slices.Sort(vals)
	vals = slices.Compact(vals)
	domain := len(vals)
	spanLo := make([]int32, len(boxes))
	spanHi := make([]int32, len(boxes))
	for bi, b := range boxes {
		if b.Empty() {
			continue
		}
		lo, _ := slices.BinarySearch(vals, b.YLo)
		hi, _ := slices.BinarySearch(vals, b.YHi+guard)
		spanLo[bi] = int32(lo)
		spanHi[bi] = int32(hi)
	}

	spans := make([]Span, 0, len(boxes))
	for bi, b := range boxes {
		if b.Empty() {
			continue
		}
		spans = append(spans, Span{int(spanLo[bi]), int(spanHi[bi])})
	}

	var merged []Span
	if alg == SortBased {
		merged = MergeSort(spans)
	} else {
		merged = MergePigeonhole(domain, spans)
	}

	// rowIdx maps every domain rank to its row — O(N) once, O(1) per box.
	rowIdx := make([]int32, domain)
	for ri, sp := range merged {
		for i := sp.Lo; i <= sp.Hi && i < domain; i++ {
			rowIdx[i] = int32(ri)
		}
	}
	rows := make([]Row, len(merged))
	for i := range rows {
		rows[i].YLo = int64(1)<<62 - 1
		rows[i].YHi = -(int64(1)<<62 - 1)
	}
	for bi, b := range boxes {
		if b.Empty() {
			continue
		}
		row := &rows[rowIdx[spanLo[bi]]]
		row.Members = append(row.Members, bi)
		if b.YLo < row.YLo {
			row.YLo = b.YLo
		}
		if b.YHi > row.YHi {
			row.YHi = b.YHi
		}
	}
	// Drop rows with no members (possible when guard expansion created
	// coordinate entries that ended up inside another row's span).
	out := rows[:0]
	for _, r := range rows {
		if len(r.Members) > 0 {
			out = append(out, r)
		}
	}
	return out
}
