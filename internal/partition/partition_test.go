package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"opendrc/internal/geom"
)

func eqSpans(a, b []Span) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestMergePigeonholeBasic(t *testing.T) {
	// Domain 0..5; spans chain 0-2, 1-3 and a separate 4-5.
	got := MergePigeonhole(6, []Span{{0, 2}, {1, 3}, {4, 5}})
	want := []Span{{0, 3}, {4, 5}}
	if !eqSpans(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestMergePigeonholeTouching(t *testing.T) {
	// Spans sharing an endpoint merge into one row.
	got := MergePigeonhole(5, []Span{{0, 2}, {2, 4}})
	if !eqSpans(got, []Span{{0, 4}}) {
		t.Errorf("got %v", got)
	}
}

func TestMergePigeonholeEmpty(t *testing.T) {
	if got := MergePigeonhole(0, nil); got != nil {
		t.Errorf("n=0 -> %v", got)
	}
	// No spans: every index is its own singleton cover.
	got := MergePigeonhole(3, nil)
	if !eqSpans(got, []Span{{0, 0}, {1, 1}, {2, 2}}) {
		t.Errorf("got %v", got)
	}
}

func TestMergeSortBasic(t *testing.T) {
	got := MergeSort([]Span{{4, 5}, {1, 3}, {0, 2}})
	if !eqSpans(got, []Span{{0, 3}, {4, 5}}) {
		t.Errorf("got %v", got)
	}
	if MergeSort(nil) != nil {
		t.Error("MergeSort(nil) != nil")
	}
}

// TestMergeAlgorithmsAgree checks the paper's two interval-merging
// implementations produce identical covers when the domain is exactly the
// set of span endpoints (OpenDRC's usage).
func TestMergeAlgorithmsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(40)
		// Generate spans over an endpoint-only domain: pick endpoint pairs
		// from a small universe, then compress.
		raw := make([][2]int64, k)
		for i := range raw {
			lo := int64(rng.Intn(60))
			hi := lo + int64(rng.Intn(20))
			raw[i] = [2]int64{lo, hi}
		}
		seen := map[int64]bool{}
		var coords []int64
		for _, p := range raw {
			for _, c := range p {
				if !seen[c] {
					seen[c] = true
					coords = append(coords, c)
				}
			}
		}
		// Sort-compress.
		for i := 1; i < len(coords); i++ {
			for j := i; j > 0 && coords[j] < coords[j-1]; j-- {
				coords[j], coords[j-1] = coords[j-1], coords[j]
			}
		}
		index := map[int64]int{}
		for i, c := range coords {
			index[c] = i
		}
		spans := make([]Span, k)
		for i, p := range raw {
			spans[i] = Span{index[p[0]], index[p[1]]}
		}
		a := MergePigeonhole(len(coords), spans)
		b := MergeSort(spans)
		if !eqSpans(a, b) {
			t.Fatalf("trial %d: pigeonhole %v != sort %v (spans %v)", trial, a, b, spans)
		}
	}
}

func boxes(ys ...[2]int64) []geom.Rect {
	out := make([]geom.Rect, len(ys))
	for i, y := range ys {
		out[i] = geom.R(0, y[0], 100, y[1])
	}
	return out
}

func TestRowsIndependent(t *testing.T) {
	// Three clear rows of standard cells with 20-unit gaps.
	bs := boxes([2]int64{0, 100}, [2]int64{0, 100}, [2]int64{120, 220}, [2]int64{240, 340})
	rows := Rows(bs, 0, Pigeonhole)
	if len(rows) != 3 {
		t.Fatalf("rows = %d: %+v", len(rows), rows)
	}
	if len(rows[0].Members) != 2 || len(rows[1].Members) != 1 || len(rows[2].Members) != 1 {
		t.Errorf("membership: %+v", rows)
	}
	if rows[0].YLo != 0 || rows[0].YHi != 100 {
		t.Errorf("row0 extent = [%d,%d]", rows[0].YLo, rows[0].YHi)
	}
	// Rows must be disjoint and ordered.
	for i := 1; i < len(rows); i++ {
		if rows[i].YLo <= rows[i-1].YHi {
			t.Errorf("rows %d,%d overlap", i-1, i)
		}
	}
}

func TestRowsGuard(t *testing.T) {
	// Gap of 20 between the two groups; guard 30 must merge them, guard 10
	// must not. (The guard is the rule interaction distance.)
	bs := boxes([2]int64{0, 100}, [2]int64{120, 220})
	if rows := Rows(bs, 10, Pigeonhole); len(rows) != 2 {
		t.Errorf("guard 10: rows = %d", len(rows))
	}
	if rows := Rows(bs, 30, Pigeonhole); len(rows) != 1 {
		t.Errorf("guard 30: rows = %d", len(rows))
	}
	// Exactly-equal gap: box gap 20, guard 20 ⇒ a.YHi+guard == b.YLo, the
	// intervals touch, and touching merges (conservative: distance exactly
	// equal to the rule value is usually legal, but merging is safe).
	if rows := Rows(bs, 20, Pigeonhole); len(rows) != 1 {
		t.Errorf("guard 20: rows = %d", len(rows))
	}
}

func TestRowsOverlappingCells(t *testing.T) {
	// Overlapping y-extents must always share a row.
	bs := boxes([2]int64{0, 100}, [2]int64{50, 150}, [2]int64{140, 200})
	rows := Rows(bs, 0, Pigeonhole)
	if len(rows) != 1 || len(rows[0].Members) != 3 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].YLo != 0 || rows[0].YHi != 200 {
		t.Errorf("extent = [%d,%d]", rows[0].YLo, rows[0].YHi)
	}
}

func TestRowsEmptyAndDegenerate(t *testing.T) {
	if rows := Rows(nil, 0, Pigeonhole); rows != nil {
		t.Errorf("nil boxes -> %v", rows)
	}
	bs := []geom.Rect{geom.EmptyRect(), geom.R(0, 0, 10, 10)}
	rows := Rows(bs, 0, Pigeonhole)
	if len(rows) != 1 || len(rows[0].Members) != 1 || rows[0].Members[0] != 1 {
		t.Errorf("rows = %+v", rows)
	}
}

func TestRowsSortBasedAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(50)
		bs := make([]geom.Rect, n)
		for i := range bs {
			lo := int64(rng.Intn(1000))
			bs[i] = geom.R(0, lo, 10, lo+int64(rng.Intn(120)))
		}
		guard := int64(rng.Intn(50))
		a := Rows(bs, guard, Pigeonhole)
		b := Rows(bs, guard, SortBased)
		if len(a) != len(b) {
			t.Fatalf("trial %d: %d rows vs %d rows", trial, len(a), len(b))
		}
		for i := range a {
			if a[i].YLo != b[i].YLo || a[i].YHi != b[i].YHi || len(a[i].Members) != len(b[i].Members) {
				t.Fatalf("trial %d row %d differs: %+v vs %+v", trial, i, a[i], b[i])
			}
		}
	}
}

// TestRowsCompleteAndDisjointProperty: every non-empty box lands in exactly
// one row, and rows separated by more than the guard cannot contain boxes
// within guard distance of each other.
func TestRowsCompleteAndDisjointProperty(t *testing.T) {
	f := func(seeds []uint16, guardRaw uint8) bool {
		if len(seeds) == 0 {
			return true
		}
		guard := int64(guardRaw % 64)
		bs := make([]geom.Rect, len(seeds))
		for i, s := range seeds {
			lo := int64(s % 2048)
			bs[i] = geom.R(0, lo, 10, lo+int64(s%97))
		}
		rows := Rows(bs, guard, Pigeonhole)
		assigned := map[int]int{}
		for ri, r := range rows {
			for _, m := range r.Members {
				if _, dup := assigned[m]; dup {
					return false // box in two rows
				}
				assigned[m] = ri
			}
		}
		if len(assigned) != len(bs) {
			return false // box lost
		}
		// Cross-row independence: any two boxes in different rows are
		// separated by more than the guard in y.
		for i, bi := range bs {
			for j, bj := range bs {
				if i >= j || assigned[i] == assigned[j] {
					continue
				}
				_, dy := bi.Distance(bj)
				overlapY := bi.YLo <= bj.YHi && bj.YLo <= bi.YHi
				if overlapY || dy <= guard {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
