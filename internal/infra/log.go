package infra

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Level is a log severity.
type Level int

// Log levels.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

var levelNames = [...]string{"DEBUG", "INFO", "WARN", "ERROR"}

// Logger is a minimal leveled logger. The zero value discards everything;
// NewLogger attaches an output. Safe for concurrent use.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	min   Level
	clock func() time.Time
}

// NewLogger writes messages at or above min to w, timestamping with the
// wall clock.
func NewLogger(w io.Writer, min Level) *Logger {
	return NewLoggerWithClock(w, min, time.Now)
}

// NewLoggerWithClock is NewLogger with an injectable time source, so tests
// (and replayed runs) can produce byte-identical output. A nil clock falls
// back to time.Now.
func NewLoggerWithClock(w io.Writer, min Level, clock func() time.Time) *Logger {
	if clock == nil {
		clock = time.Now
	}
	return &Logger{w: w, min: min, clock: clock}
}

func (l *Logger) log(lv Level, format string, args ...any) {
	if l == nil || l.w == nil || lv < l.min {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintf(l.w, "%s %-5s %s\n",
		l.clock().Format("15:04:05.000"), levelNames[lv], fmt.Sprintf(format, args...))
}

// Debugf logs at debug level.
func (l *Logger) Debugf(format string, args ...any) { l.log(LevelDebug, format, args...) }

// Infof logs at info level.
func (l *Logger) Infof(format string, args ...any) { l.log(LevelInfo, format, args...) }

// Warnf logs at warn level.
func (l *Logger) Warnf(format string, args ...any) { l.log(LevelWarn, format, args...) }

// Errorf logs at error level.
func (l *Logger) Errorf(format string, args ...any) { l.log(LevelError, format, args...) }

// Rand is a deterministic splitmix64 PRNG. The synthesizer uses it so
// benchmark layouts are bit-reproducible across runs and platforms,
// independent of math/rand version changes.
type Rand struct {
	state uint64
}

// NewRand seeds a generator.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next value.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). Panics when n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("infra: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns an int64 in [0, n).
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("infra: Int63n with non-positive bound")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Chance returns true with probability p.
func (r *Rand) Chance(p float64) bool { return r.Float64() < p }
