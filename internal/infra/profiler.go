// Package infra is OpenDRC's infrastructure layer: the phase profiler
// behind the paper's runtime-breakdown figure, a small leveled logger, and a
// deterministic PRNG for reproducible workload synthesis.
package infra

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Profiler accumulates named phase durations. It is not safe for concurrent
// use; the engine's phases are sequential by construction.
type Profiler struct {
	order  []string
	totals map[string]time.Duration
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{totals: make(map[string]time.Duration)}
}

// Phase starts timing a phase; call the returned stop function to finish.
//
//	stop := prof.Phase("sweepline")
//	... work ...
//	stop()
func (p *Profiler) Phase(name string) func() {
	start := time.Now()
	return func() { p.Add(name, time.Since(start)) }
}

// Add accumulates d into the named phase.
func (p *Profiler) Add(name string, d time.Duration) {
	if _, ok := p.totals[name]; !ok {
		p.order = append(p.order, name)
	}
	p.totals[name] += d
}

// Total returns the sum over all phases.
func (p *Profiler) Total() time.Duration {
	var t time.Duration
	for _, d := range p.totals {
		t += d
	}
	return t
}

// Share is one row of a runtime breakdown.
type Share struct {
	Name     string
	Duration time.Duration
	Fraction float64 // of the profiler total
}

// Breakdown returns the phases in first-seen order with their fractions —
// the data behind Fig. 4.
func (p *Profiler) Breakdown() []Share {
	total := p.Total()
	out := make([]Share, 0, len(p.order))
	for _, name := range p.order {
		d := p.totals[name]
		frac := 0.0
		if total > 0 {
			frac = float64(d) / float64(total)
		}
		out = append(out, Share{Name: name, Duration: d, Fraction: frac})
	}
	return out
}

// Get returns the accumulated duration of one phase.
func (p *Profiler) Get(name string) time.Duration { return p.totals[name] }

// Merge adds every phase of q into p.
func (p *Profiler) Merge(q *Profiler) {
	for _, name := range q.order {
		p.Add(name, q.totals[name])
	}
}

// WriteTo renders an aligned text breakdown (sorted by first-seen order)
// with a bar chart, e.g. for cmd/odrc-bench -fig 4.
func (p *Profiler) WriteTo(w io.Writer) (int64, error) {
	var n int64
	width := 0
	for _, name := range p.order {
		if len(name) > width {
			width = len(name)
		}
	}
	for _, s := range p.Breakdown() {
		bar := strings.Repeat("#", int(s.Fraction*40+0.5))
		c, err := fmt.Fprintf(w, "%-*s %10v %5.1f%% %s\n", width, s.Name, s.Duration.Round(time.Microsecond), s.Fraction*100, bar)
		n += int64(c)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// TopPhases returns the n largest phases by duration.
func (p *Profiler) TopPhases(n int) []Share {
	all := p.Breakdown()
	sort.Slice(all, func(i, j int) bool { return all[i].Duration > all[j].Duration })
	if len(all) > n {
		all = all[:n]
	}
	return all
}
