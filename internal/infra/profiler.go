// Package infra is OpenDRC's infrastructure layer: the phase profiler
// behind the paper's runtime-breakdown figure, a small leveled logger, and a
// deterministic PRNG for reproducible workload synthesis.
package infra

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Profiler accumulates named phase durations. It is safe for concurrent use:
// the engine's fan-out phases record per-worker timings into the shared
// profiler, so a phase total is the summed worker time (it can exceed wall
// time when workers overlap — the wall clock is Report.HostWall).
type Profiler struct {
	clock func() time.Duration

	mu     sync.Mutex
	order  []string
	totals map[string]time.Duration
	hook   func(name string, start, end time.Duration)
}

// NewProfiler returns an empty profiler on the wall clock.
func NewProfiler() *Profiler {
	epoch := time.Now()
	return NewProfilerWithClock(func() time.Duration { return time.Since(epoch) })
}

// NewProfilerWithClock returns a profiler reading the given monotonic
// clock — the determinism seam the trace recorder shares, so phase spans
// and trace events live on one timeline. A nil clock selects the wall
// clock.
func NewProfilerWithClock(clock func() time.Duration) *Profiler {
	if clock == nil {
		return NewProfiler()
	}
	return &Profiler{clock: clock, totals: make(map[string]time.Duration)}
}

// Elapsed reads the profiler's clock: time since construction on the
// default wall clock, or whatever the injected clock reports.
func (p *Profiler) Elapsed() time.Duration { return p.clock() }

// OnPhase installs a hook observing every completed Phase as a (name,
// start, end) span on the profiler's clock. The hook fires only for
// Phase-timed intervals — Add and Merge accumulate totals without spans.
// Call before the first Phase; the hook runs outside the profiler's lock.
func (p *Profiler) OnPhase(hook func(name string, start, end time.Duration)) {
	p.mu.Lock()
	p.hook = hook
	p.mu.Unlock()
}

// Phase starts timing a phase; call the returned stop function to finish.
// Stop is idempotent — only the first call accumulates (and reports the
// measured duration); repeats return the same duration without
// re-accumulating.
//
//	stop := prof.Phase("sweepline")
//	... work ...
//	stop()
func (p *Profiler) Phase(name string) func() time.Duration {
	start := p.clock()
	var once sync.Once
	var d time.Duration
	return func() time.Duration {
		once.Do(func() {
			end := p.clock()
			d = end - start
			p.Add(name, d)
			p.mu.Lock()
			hook := p.hook
			p.mu.Unlock()
			if hook != nil {
				hook(name, start, end)
			}
		})
		return d
	}
}

// Add accumulates d into the named phase.
func (p *Profiler) Add(name string, d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.totals[name]; !ok {
		p.order = append(p.order, name)
	}
	p.totals[name] += d
}

// Total returns the sum over all phases.
func (p *Profiler) Total() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total()
}

// total sums all phases; callers hold p.mu.
func (p *Profiler) total() time.Duration {
	var t time.Duration
	for _, d := range p.totals {
		t += d
	}
	return t
}

// Share is one row of a runtime breakdown.
type Share struct {
	Name     string
	Duration time.Duration
	Fraction float64 // of the profiler total
}

// Breakdown returns the phases in first-seen order with their fractions —
// the data behind Fig. 4.
func (p *Profiler) Breakdown() []Share {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := p.total()
	out := make([]Share, 0, len(p.order))
	for _, name := range p.order {
		d := p.totals[name]
		frac := 0.0
		if total > 0 {
			frac = float64(d) / float64(total)
		}
		out = append(out, Share{Name: name, Duration: d, Fraction: frac})
	}
	return out
}

// Get returns the accumulated duration of one phase.
func (p *Profiler) Get(name string) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.totals[name]
}

// Merge adds every phase of q into p. p and q must be distinct profilers.
func (p *Profiler) Merge(q *Profiler) {
	q.mu.Lock()
	order := append([]string(nil), q.order...)
	totals := make(map[string]time.Duration, len(q.totals))
	for k, v := range q.totals {
		totals[k] = v
	}
	q.mu.Unlock()
	for _, name := range order {
		p.Add(name, totals[name])
	}
}

// WriteTo renders an aligned text breakdown (sorted by first-seen order)
// with a bar chart, e.g. for cmd/odrc-bench -fig 4.
func (p *Profiler) WriteTo(w io.Writer) (int64, error) {
	var n int64
	shares := p.Breakdown()
	width := 0
	for _, s := range shares {
		if len(s.Name) > width {
			width = len(s.Name)
		}
	}
	for _, s := range shares {
		bar := strings.Repeat("#", int(s.Fraction*40+0.5))
		c, err := fmt.Fprintf(w, "%-*s %10v %5.1f%% %s\n", width, s.Name, s.Duration.Round(time.Microsecond), s.Fraction*100, bar)
		n += int64(c)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// TopPhases returns the n largest phases by duration; ties keep their
// first-seen order (Breakdown order), so tied phases render
// deterministically in Fig. 4 output.
func (p *Profiler) TopPhases(n int) []Share {
	all := p.Breakdown()
	sort.SliceStable(all, func(i, j int) bool { return all[i].Duration > all[j].Duration })
	if len(all) > n {
		all = all[:n]
	}
	return all
}
