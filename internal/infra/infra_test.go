package infra

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func TestProfilerBreakdown(t *testing.T) {
	p := NewProfiler()
	p.Add("partition", 15*time.Millisecond)
	p.Add("sweepline", 35*time.Millisecond)
	p.Add("edge-checks", 50*time.Millisecond)
	if p.Total() != 100*time.Millisecond {
		t.Fatalf("total = %v", p.Total())
	}
	b := p.Breakdown()
	if len(b) != 3 {
		t.Fatalf("phases = %d", len(b))
	}
	if b[0].Name != "partition" || math.Abs(b[0].Fraction-0.15) > 1e-9 {
		t.Errorf("partition share = %+v", b[0])
	}
	if b[2].Name != "edge-checks" || math.Abs(b[2].Fraction-0.50) > 1e-9 {
		t.Errorf("edge-checks share = %+v", b[2])
	}
	// Accumulation into an existing phase.
	p.Add("partition", 5*time.Millisecond)
	if p.Get("partition") != 20*time.Millisecond {
		t.Errorf("accumulated = %v", p.Get("partition"))
	}
}

func TestProfilerPhaseStopwatch(t *testing.T) {
	p := NewProfiler()
	stop := p.Phase("work")
	time.Sleep(2 * time.Millisecond)
	stop()
	if p.Get("work") < time.Millisecond {
		t.Errorf("phase recorded %v", p.Get("work"))
	}
}

func TestProfilerPhaseStopIdempotent(t *testing.T) {
	var now time.Duration
	p := NewProfilerWithClock(func() time.Duration { return now })
	stop := p.Phase("work")
	now = 7 * time.Millisecond
	if d := stop(); d != 7*time.Millisecond {
		t.Errorf("first stop = %v, want 7ms", d)
	}
	now = 20 * time.Millisecond
	if d := stop(); d != 7*time.Millisecond {
		t.Errorf("second stop = %v, want the original 7ms", d)
	}
	if got := p.Get("work"); got != 7*time.Millisecond {
		t.Errorf("accumulated = %v after double stop, want 7ms", got)
	}
}

func TestProfilerInjectedClock(t *testing.T) {
	var now time.Duration
	p := NewProfilerWithClock(func() time.Duration { return now })
	if p.Elapsed() != 0 {
		t.Errorf("Elapsed = %v at epoch", p.Elapsed())
	}
	now = 3 * time.Millisecond
	if p.Elapsed() != 3*time.Millisecond {
		t.Errorf("Elapsed = %v, want 3ms", p.Elapsed())
	}
	// A nil clock falls back to the wall clock.
	if NewProfilerWithClock(nil).Elapsed() < 0 {
		t.Error("wall-clock Elapsed went backwards")
	}
}

func TestProfilerOnPhaseHook(t *testing.T) {
	var now time.Duration
	p := NewProfilerWithClock(func() time.Duration { return now })
	type span struct {
		name       string
		start, end time.Duration
	}
	var spans []span
	p.OnPhase(func(name string, start, end time.Duration) {
		spans = append(spans, span{name, start, end})
	})
	now = 2 * time.Millisecond
	stop := p.Phase("sweepline")
	now = 5 * time.Millisecond
	stop()
	stop() // idempotent: the hook must not fire again
	p.Add("edge-checks", time.Millisecond)
	if len(spans) != 1 {
		t.Fatalf("hook fired %d times, want 1 (Phase only, not Add)", len(spans))
	}
	want := span{"sweepline", 2 * time.Millisecond, 5 * time.Millisecond}
	if spans[0] != want {
		t.Errorf("hook span = %+v, want %+v", spans[0], want)
	}
	if p.Get("sweepline") != 3*time.Millisecond {
		t.Errorf("accumulated = %v, want 3ms", p.Get("sweepline"))
	}
}

func TestProfilerMergeAndTop(t *testing.T) {
	a := NewProfiler()
	a.Add("x", 10*time.Millisecond)
	b := NewProfiler()
	b.Add("x", 5*time.Millisecond)
	b.Add("y", 30*time.Millisecond)
	a.Merge(b)
	if a.Get("x") != 15*time.Millisecond || a.Get("y") != 30*time.Millisecond {
		t.Errorf("merge: x=%v y=%v", a.Get("x"), a.Get("y"))
	}
	top := a.TopPhases(1)
	if len(top) != 1 || top[0].Name != "y" {
		t.Errorf("top = %+v", top)
	}
}

func TestTopPhasesStableTies(t *testing.T) {
	// Three tied phases must keep their first-seen order in every call —
	// an unstable sort is free to permute them between runs.
	p := NewProfiler()
	p.Add("alpha", 10*time.Millisecond)
	p.Add("beta", 10*time.Millisecond)
	p.Add("gamma", 10*time.Millisecond)
	p.Add("small", 1*time.Millisecond)
	for i := 0; i < 10; i++ {
		top := p.TopPhases(3)
		if len(top) != 3 {
			t.Fatalf("top = %d entries", len(top))
		}
		if top[0].Name != "alpha" || top[1].Name != "beta" || top[2].Name != "gamma" {
			t.Fatalf("tied phases reordered: %s %s %s", top[0].Name, top[1].Name, top[2].Name)
		}
	}
}

func TestProfilerWriteTo(t *testing.T) {
	p := NewProfiler()
	p.Add("alpha", 25*time.Millisecond)
	p.Add("beta", 75*time.Millisecond)
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "75.0%") {
		t.Errorf("output:\n%s", out)
	}
}

func TestProfilerEmpty(t *testing.T) {
	p := NewProfiler()
	if p.Total() != 0 || len(p.Breakdown()) != 0 {
		t.Error("empty profiler not empty")
	}
}

func TestLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	l.Debugf("hidden %d", 1)
	l.Infof("shown %d", 2)
	l.Warnf("warned")
	l.Errorf("failed")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Error("debug leaked through info level")
	}
	for _, want := range []string{"shown 2", "warned", "failed", "INFO", "WARN", "ERROR"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestLoggerInjectedClock(t *testing.T) {
	var buf bytes.Buffer
	at := time.Date(2024, 3, 1, 9, 30, 15, 250*int(time.Millisecond), time.UTC)
	l := NewLoggerWithClock(&buf, LevelInfo, func() time.Time { return at })
	l.Infof("tick %d", 1)
	at = at.Add(1500 * time.Millisecond)
	l.Warnf("tock")
	want := "09:30:15.250 INFO  tick 1\n09:30:16.750 WARN  tock\n"
	if got := buf.String(); got != want {
		t.Errorf("output = %q, want %q", got, want)
	}
	// A nil clock must fall back to the wall clock, not panic.
	NewLoggerWithClock(&buf, LevelInfo, nil).Infof("wall")
}

func TestNilLoggerSafe(t *testing.T) {
	var l *Logger
	l.Infof("no crash") // must not panic
	(&Logger{}).Infof("also fine")
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collide too often: %d/100", same)
	}
}

func TestRandRanges(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := r.Int63n(1000); v < 0 || v >= 1000 {
			t.Fatalf("Int63n out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRandChance(t *testing.T) {
	r := NewRand(11)
	hits := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if r.Chance(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.27 || frac > 0.33 {
		t.Errorf("Chance(0.3) frequency = %g", frac)
	}
}
