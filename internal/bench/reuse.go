package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"time"

	"opendrc/internal/core"
	"opendrc/internal/layout"
	"opendrc/internal/rules"
	"opendrc/internal/synth"
)

// Cross-rule geometry reuse experiment: a deck of many spacing rules over a
// few layers (the shape of real sign-off decks, where one metal layer
// carries a base spacing rule plus several projection-conditioned
// variants), checked with the geometry cache on versus off. The cached run
// flattens and packs each layer once, keeps the packed buffer
// device-resident, and pipelines the next rule's host prep behind the
// current rule's kernels; the uncached run re-derives everything per rule.
// Every row cross-checks that both configurations produced identical sorted
// violations — the cache changes cost, never results.

// ReuseDeck is the multi-rule spacing deck: for each routing layer, the
// standard minimum spacing plus two parallel-run-length variants (distinct
// PRL lengths, so the deck validates). Nine rules over three layers — a 3×
// reuse opportunity per layer.
func ReuseDeck() rules.Deck {
	var d rules.Deck
	for _, t := range []struct {
		layer layout.Layer
		base  int64
		name  string
	}{
		{layout.LayerM1, synth.MinSpaceM1, "M1.S"},
		{layout.LayerM2, synth.MinSpaceM2, "M2.S"},
		{layout.LayerM3, synth.MinSpaceM3, "M3.S"},
	} {
		d = append(d,
			rules.Layer(t.layer).Spacing().AtLeast(t.base).Named(t.name+".1"),
			rules.Layer(t.layer).Spacing().AtLeast(t.base).
				WhenProjectionAtLeast(2*t.base, t.base+t.base/2).Named(t.name+".PRL.1"),
			rules.Layer(t.layer).Spacing().AtLeast(t.base).
				WhenProjectionAtLeast(4*t.base, 2*t.base).Named(t.name+".PRL.2"),
		)
	}
	return d
}

// ReuseRow compares cache-on and cache-off on one design in one mode.
type ReuseRow struct {
	Design string `json:"design"`
	Mode   string `json:"mode"`
	Rules  int    `json:"rules"`

	WallOffUS    int64 `json:"wall_nocache_us"`
	WallOnUS     int64 `json:"wall_cache_us"`
	ModeledOffUS int64 `json:"modeled_nocache_us"`
	ModeledOnUS  int64 `json:"modeled_cache_us"`

	// WallImprovement and ModeledImprovement are off/on ratios (>1 means the
	// cache helped); Improvement is the better of the two, the experiment's
	// headline number.
	WallImprovement    float64 `json:"wall_improvement"`
	ModeledImprovement float64 `json:"modeled_improvement"`
	Improvement        float64 `json:"improvement"`

	FlattenHits   int64 `json:"flatten_cache_hits"`
	FlattenMisses int64 `json:"flatten_cache_misses"`
	PackHits      int64 `json:"pack_cache_hits"`
	PackMisses    int64 `json:"pack_cache_misses"`
	DeviceUploads int64 `json:"device_uploads"`
	DeviceReuses  int64 `json:"device_reuses"`

	Violations int `json:"violations"`
	// Identical is true when cache-on and cache-off produced byte-identical
	// sorted violation lists.
	Identical bool `json:"reports_identical"`
}

// ReuseReport is the whole experiment, serialized to BENCH_reuse.json.
type ReuseReport struct {
	Scale float64    `json:"scale"`
	Runs  int        `json:"runs_per_cell"`
	Rows  []ReuseRow `json:"rows"`
}

// reuseRun checks the reuse deck on lo and returns the report; wall time is
// the minimum over runs to damp scheduler noise. The sequential rows run
// with pruning disabled: the pruned hierarchical path never flattens (that
// is its whole point), so the flat ablation is where sequential reuse shows.
func reuseRun(ctx context.Context, lo *layout.Layout, mode core.Mode, noCache bool, runs int) (*core.Report, time.Duration, error) {
	var best *core.Report
	var wall time.Duration
	for i := 0; i < runs; i++ {
		eng := core.New(core.Options{
			Mode:            mode,
			DisableGeoCache: noCache,
			DisablePruning:  mode == core.Sequential,
		})
		if err := eng.AddRules(ReuseDeck()...); err != nil {
			return nil, 0, err
		}
		rep, err := eng.CheckContext(ctx, lo)
		if err != nil {
			return nil, 0, err
		}
		if best == nil || rep.HostWall < wall {
			best = rep
			wall = rep.HostWall
		}
	}
	return best, wall, nil
}

// Reuse runs the experiment over the given layouts (use Layouts(scale)) in
// both engine modes; runs is the repetitions per cell (min is reported).
func Reuse(layouts map[string]*layout.Layout, runs int, scale float64) (*ReuseReport, error) {
	return ReuseContext(context.Background(), layouts, runs, scale)
}

// ReuseContext is Reuse under a context; cancellation aborts between runs.
func ReuseContext(ctx context.Context, layouts map[string]*layout.Layout, runs int, scale float64) (*ReuseReport, error) {
	if runs < 1 {
		runs = 1
	}
	out := &ReuseReport{Scale: scale, Runs: runs}
	deckLen := len(ReuseDeck())
	for _, mode := range []core.Mode{core.Parallel, core.Sequential} {
		for _, design := range DesignNames() {
			lo := layouts[design]
			if lo == nil {
				continue
			}
			repOff, wallOff, err := reuseRun(ctx, lo, mode, true, runs)
			if err != nil {
				return nil, fmt.Errorf("%s %s nocache: %w", design, mode, err)
			}
			repOn, wallOn, err := reuseRun(ctx, lo, mode, false, runs)
			if err != nil {
				return nil, fmt.Errorf("%s %s cache: %w", design, mode, err)
			}
			row := ReuseRow{
				Design:       design,
				Mode:         mode.String(),
				Rules:        deckLen,
				WallOffUS:    wallOff.Microseconds(),
				WallOnUS:     wallOn.Microseconds(),
				ModeledOffUS: repOff.Modeled.Microseconds(),
				ModeledOnUS:  repOn.Modeled.Microseconds(),

				FlattenHits:   repOn.Stats.FlattenCacheHits,
				FlattenMisses: repOn.Stats.FlattenCacheMisses,
				PackHits:      repOn.Stats.PackCacheHits,
				PackMisses:    repOn.Stats.PackCacheMisses,
				DeviceUploads: repOn.Stats.DeviceUploads,
				DeviceReuses:  repOn.Stats.DeviceReuses,

				Violations: len(repOn.Violations),
				Identical:  reflect.DeepEqual(repOn.Violations, repOff.Violations),
			}
			if wallOn > 0 {
				row.WallImprovement = float64(wallOff) / float64(wallOn)
			}
			if repOn.Modeled > 0 {
				row.ModeledImprovement = float64(repOff.Modeled) / float64(repOn.Modeled)
			}
			row.Improvement = row.WallImprovement
			if row.ModeledImprovement > row.Improvement {
				row.Improvement = row.ModeledImprovement
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// WriteJSON serializes the report.
func (r *ReuseReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteTo renders an aligned text table.
func (r *ReuseReport) WriteTo(w io.Writer) (int64, error) {
	var total int64
	p := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	if err := p("Geometry reuse: cache off vs on, %d-rule spacing deck (scale %g, min of %d runs)\n",
		len(ReuseDeck()), r.Scale, r.Runs); err != nil {
		return total, err
	}
	if err := p("%-8s %-10s %12s %12s %8s %12s %12s %8s %6s %10s\n",
		"design", "mode", "wall off", "wall on", "wall x",
		"modeled off", "modeled on", "model x", "viols", "identical"); err != nil {
		return total, err
	}
	for _, row := range r.Rows {
		if err := p("%-8s %-10s %12s %12s %7.2fx %12s %12s %7.2fx %6d %10v\n",
			row.Design, row.Mode,
			fmtDur(time.Duration(row.WallOffUS)*time.Microsecond),
			fmtDur(time.Duration(row.WallOnUS)*time.Microsecond),
			row.WallImprovement,
			fmtDur(time.Duration(row.ModeledOffUS)*time.Microsecond),
			fmtDur(time.Duration(row.ModeledOnUS)*time.Microsecond),
			row.ModeledImprovement,
			row.Violations, row.Identical); err != nil {
			return total, err
		}
	}
	return total, nil
}
