package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"runtime"
	"time"

	"opendrc/internal/core"
	"opendrc/internal/layout"
	"opendrc/internal/rules"
	"opendrc/internal/synth"
)

// Cross-rule geometry reuse experiment: a deck of many spacing rules over a
// few layers (the shape of real sign-off decks, where one metal layer
// carries a base spacing rule plus several projection-conditioned
// variants), checked with the geometry cache on versus off. The cached run
// flattens and packs each layer once, keeps the packed buffer
// device-resident, and pipelines the next rule's host prep behind the
// current rule's kernels; the uncached run re-derives everything per rule.
// Every row cross-checks that both configurations produced identical sorted
// violations — the cache changes cost, never results.

// ReuseDeck is the multi-rule spacing deck: for each routing layer, the
// standard minimum spacing plus two parallel-run-length variants (distinct
// PRL lengths, so the deck validates). Nine rules over three layers — a 3×
// reuse opportunity per layer.
func ReuseDeck() rules.Deck {
	var d rules.Deck
	for _, t := range []struct {
		layer layout.Layer
		base  int64
		name  string
	}{
		{layout.LayerM1, synth.MinSpaceM1, "M1.S"},
		{layout.LayerM2, synth.MinSpaceM2, "M2.S"},
		{layout.LayerM3, synth.MinSpaceM3, "M3.S"},
	} {
		d = append(d,
			rules.Layer(t.layer).Spacing().AtLeast(t.base).Named(t.name+".1"),
			rules.Layer(t.layer).Spacing().AtLeast(t.base).
				WhenProjectionAtLeast(2*t.base, t.base+t.base/2).Named(t.name+".PRL.1"),
			rules.Layer(t.layer).Spacing().AtLeast(t.base).
				WhenProjectionAtLeast(4*t.base, 2*t.base).Named(t.name+".PRL.2"),
		)
	}
	return d
}

// ReuseRow compares cache-on and cache-off on one design in one mode.
type ReuseRow struct {
	Design string `json:"design"`
	Mode   string `json:"mode"`
	Rules  int    `json:"rules"`

	WallOffUS    int64 `json:"wall_nocache_us"`
	WallOnUS     int64 `json:"wall_cache_us"`
	ModeledOffUS int64 `json:"modeled_nocache_us"`
	ModeledOnUS  int64 `json:"modeled_cache_us"`

	// WallImprovement and ModeledImprovement are off/on ratios (>1 means the
	// cache helped); Improvement is the better of the two, the experiment's
	// headline number.
	WallImprovement    float64 `json:"wall_improvement"`
	ModeledImprovement float64 `json:"modeled_improvement"`
	Improvement        float64 `json:"improvement"`

	FlattenHits   int64 `json:"flatten_cache_hits"`
	FlattenMisses int64 `json:"flatten_cache_misses"`
	PackHits      int64 `json:"pack_cache_hits"`
	PackMisses    int64 `json:"pack_cache_misses"`
	DeviceUploads int64 `json:"device_uploads"`
	DeviceReuses  int64 `json:"device_reuses"`

	Violations int `json:"violations"`
	// Identical is true when cache-on and cache-off produced byte-identical
	// sorted violation lists.
	Identical bool `json:"reports_identical"`
	// BelowNoiseFloor is true when both sides ran for less than the noise
	// floor: at sub-millisecond walls even a best-of-runs ratio is dominated
	// by timer granularity and scheduler blips, not by the cache, so the gate
	// checks only report identity on such rows (the speedup report's
	// Degenerate marker makes the same move for same-configuration rows).
	BelowNoiseFloor bool `json:"below_noise_floor,omitempty"`
}

// reuseNoiseFloor is the wall time below which an improvement ratio on a
// shared host stops being a measurement (tens of microseconds of scheduler
// noise against a few hundred microseconds of signal).
const reuseNoiseFloor = time.Millisecond

// ReuseReport is the whole experiment, serialized to BENCH_reuse.json.
type ReuseReport struct {
	Scale float64    `json:"scale"`
	Runs  int        `json:"runs_per_cell"`
	Rows  []ReuseRow `json:"rows"`
}

// reuseSample checks the reuse deck on lo once. The sequential rows run
// with pruning disabled: the pruned hierarchical path never flattens (that
// is its whole point), so the flat ablation is where sequential reuse shows.
func reuseSample(ctx context.Context, lo *layout.Layout, mode core.Mode, noCache bool) (*core.Report, error) {
	eng := core.New(core.Options{
		Mode:            mode,
		DisableGeoCache: noCache,
		DisablePruning:  mode == core.Sequential,
	})
	if err := eng.AddRules(ReuseDeck()...); err != nil {
		return nil, err
	}
	return eng.CheckContext(ctx, lo)
}

// reusePair measures cache-off against cache-on with interleaved samples
// (off, on, off, on, …) and per-side best-of-runs, for the same reasons the
// speedup experiment does: drift lands on both sides and the minimum
// discards external contamination (see bestDuration). Reports are
// deterministic per configuration, so the first sample of each side serves
// for the identity cross-check.
func reusePair(ctx context.Context, lo *layout.Layout, mode core.Mode, runs int) (repOff, repOn *core.Report, wallOff, wallOn time.Duration, err error) {
	wOff := make([]time.Duration, 0, runs)
	wOn := make([]time.Duration, 0, runs)
	for i := 0; i < runs; i++ {
		// Collect before each sample: otherwise the garbage of the previous
		// sample — the *other* configuration — is collected inside this
		// sample's measured window, a systematic bias interleaving alone
		// cannot remove (the cache-off side allocates far more, and its GC
		// debt would land on the cache-on side's wall clock).
		runtime.GC()
		rOff, err := reuseSample(ctx, lo, mode, true)
		if err != nil {
			return nil, nil, 0, 0, fmt.Errorf("nocache: %w", err)
		}
		wOff = append(wOff, rOff.HostWall)
		if repOff == nil {
			repOff = rOff
		}
		runtime.GC()
		rOn, err := reuseSample(ctx, lo, mode, false)
		if err != nil {
			return nil, nil, 0, 0, fmt.Errorf("cache: %w", err)
		}
		wOn = append(wOn, rOn.HostWall)
		if repOn == nil {
			repOn = rOn
		}
	}
	return repOff, repOn, bestDuration(wOff), bestDuration(wOn), nil
}

// Reuse runs the experiment over the given layouts (use Layouts(scale)) in
// both engine modes; runs is the repetitions per cell (the best of the
// interleaved runs is reported).
func Reuse(layouts map[string]*layout.Layout, runs int, scale float64) (*ReuseReport, error) {
	return ReuseContext(context.Background(), layouts, runs, scale) //odrc:allow ctxflow — context-free convenience wrapper, delegates to the Context variant
}

// ReuseContext is Reuse under a context; cancellation aborts between runs.
func ReuseContext(ctx context.Context, layouts map[string]*layout.Layout, runs int, scale float64) (*ReuseReport, error) {
	if runs < 1 {
		runs = 1
	}
	out := &ReuseReport{Scale: scale, Runs: runs}
	deckLen := len(ReuseDeck())
	for _, mode := range []core.Mode{core.Parallel, core.Sequential} {
		for _, design := range DesignNames() {
			lo := layouts[design]
			if lo == nil {
				continue
			}
			repOff, repOn, wallOff, wallOn, err := reusePair(ctx, lo, mode, runs)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", design, mode, err)
			}
			row := ReuseRow{
				Design:       design,
				Mode:         mode.String(),
				Rules:        deckLen,
				WallOffUS:    wallOff.Microseconds(),
				WallOnUS:     wallOn.Microseconds(),
				ModeledOffUS: repOff.Modeled.Microseconds(),
				ModeledOnUS:  repOn.Modeled.Microseconds(),

				FlattenHits:   repOn.Stats.FlattenCacheHits,
				FlattenMisses: repOn.Stats.FlattenCacheMisses,
				PackHits:      repOn.Stats.PackCacheHits,
				PackMisses:    repOn.Stats.PackCacheMisses,
				DeviceUploads: repOn.Stats.DeviceUploads,
				DeviceReuses:  repOn.Stats.DeviceReuses,

				Violations:      len(repOn.Violations),
				Identical:       reflect.DeepEqual(repOn.Violations, repOff.Violations),
				BelowNoiseFloor: wallOff < reuseNoiseFloor && wallOn < reuseNoiseFloor,
			}
			if wallOn > 0 {
				row.WallImprovement = float64(wallOff) / float64(wallOn)
			}
			if repOn.Modeled > 0 {
				row.ModeledImprovement = float64(repOff.Modeled) / float64(repOn.Modeled)
			}
			row.Improvement = row.WallImprovement
			if row.ModeledImprovement > row.Improvement {
				row.Improvement = row.ModeledImprovement
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// WriteJSON serializes the report.
func (r *ReuseReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteTo renders an aligned text table.
func (r *ReuseReport) WriteTo(w io.Writer) (int64, error) {
	var total int64
	p := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	if err := p("Geometry reuse: cache off vs on, %d-rule spacing deck (scale %g, best of %d interleaved runs)\n",
		len(ReuseDeck()), r.Scale, r.Runs); err != nil {
		return total, err
	}
	if err := p("%-8s %-10s %12s %12s %8s %12s %12s %8s %6s %10s\n",
		"design", "mode", "wall off", "wall on", "wall x",
		"modeled off", "modeled on", "model x", "viols", "identical"); err != nil {
		return total, err
	}
	for _, row := range r.Rows {
		if err := p("%-8s %-10s %12s %12s %7.2fx %12s %12s %7.2fx %6d %10v\n",
			row.Design, row.Mode,
			fmtDur(time.Duration(row.WallOffUS)*time.Microsecond),
			fmtDur(time.Duration(row.WallOnUS)*time.Microsecond),
			row.WallImprovement,
			fmtDur(time.Duration(row.ModeledOffUS)*time.Microsecond),
			fmtDur(time.Duration(row.ModeledOnUS)*time.Microsecond),
			row.ModeledImprovement,
			row.Violations, row.Identical); err != nil {
			return total, err
		}
	}
	return total, nil
}
