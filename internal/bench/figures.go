package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"opendrc/internal/core"
	"opendrc/internal/geom"
	"opendrc/internal/infra"
	"opendrc/internal/interval"
	"opendrc/internal/layout"
	"opendrc/internal/synth"
)

// Fig3 prints the sweepline + interval tree trace for a small scene in the
// spirit of the paper's Fig. 3: the sweepline moves top to bottom, inserting
// each MBR's x-interval at its top side, querying the tree for overlaps, and
// removing it at its bottom side.
func Fig3(w io.Writer) error {
	boxes := []geom.Rect{
		geom.R(2, 10, 8, 16),  // A
		geom.R(6, 12, 14, 20), // B (overlaps A)
		geom.R(16, 4, 24, 12), // C
		geom.R(20, 8, 30, 14), // D (overlaps C)
		geom.R(10, 0, 14, 6),  // E (isolated)
	}
	names := []string{"A", "B", "C", "D", "E"}
	type ev struct {
		y   int64
		id  int
		top bool
	}
	var events []ev
	var coords []int64
	for i, b := range boxes {
		events = append(events, ev{b.YHi, i, true}, ev{b.YLo, i, false})
		coords = append(coords, b.XLo, b.XHi)
	}
	for i := range events {
		for j := i + 1; j < len(events); j++ {
			ei, ej := events[i], events[j]
			if ej.y > ei.y || (ej.y == ei.y && ej.top && !ei.top) {
				events[i], events[j] = events[j], events[i]
			}
		}
	}
	tree := interval.NewTree(coords)
	fmt.Fprintln(w, "Fig. 3 — sweepline over MBRs with interval tree status")
	for _, e := range events {
		b := boxes[e.id]
		if e.top {
			var hits []string
			tree.Query(b.XLo, b.XHi, func(en interval.Entry) {
				hits = append(hits, names[en.ID])
			})
			if err := tree.Insert(b.XLo, b.XHi, e.id); err != nil {
				return err
			}
			fmt.Fprintf(w, "y=%2d  TOP %s    insert [%d,%d]  overlaps=%v  live=%d\n",
				e.y, names[e.id], b.XLo, b.XHi, hits, tree.Len())
		} else {
			tree.Delete(b.XLo, b.XHi, e.id)
			fmt.Fprintf(w, "y=%2d  BOT %s    remove [%d,%d]              live=%d\n",
				e.y, names[e.id], b.XLo, b.XHi, tree.Len())
		}
	}
	return nil
}

// Fig4Row is one design's sequential space-check runtime breakdown.
type Fig4Row struct {
	Design    string
	Total     time.Duration
	Partition float64 // fractions of total
	Sweepline float64
	EdgeCheck float64
	Other     float64
}

// Fig4 profiles the sequential M1.S.1 check per design, reproducing the
// paper's runtime breakdown (partition ≈ 15%, sweepline + interval tree ≈
// 35%, edge-to-edge checks 40–50%).
func Fig4(layouts map[string]*layout.Layout) ([]Fig4Row, error) {
	return Fig4Context(context.Background(), layouts) //odrc:allow ctxflow — context-free convenience wrapper, delegates to the Context variant
}

// Fig4Context is Fig4 under a context; cancellation aborts between designs.
func Fig4Context(ctx context.Context, layouts map[string]*layout.Layout) ([]Fig4Row, error) {
	r, err := synth.RuleByID("M1.S.1")
	if err != nil {
		return nil, err
	}
	var out []Fig4Row
	for _, design := range DesignNames() {
		lo := layouts[design]
		if lo == nil {
			continue
		}
		eng := core.New(core.Options{Mode: core.Sequential})
		if err := eng.AddRules(r); err != nil {
			return nil, err
		}
		rep, err := eng.CheckContext(ctx, lo)
		if err != nil {
			return nil, err
		}
		row := Fig4Row{Design: design, Total: rep.Profile.Total()}
		total := float64(row.Total)
		if total > 0 {
			row.Partition = float64(rep.Profile.Get("spacing:partition")) / total
			row.Sweepline = float64(rep.Profile.Get("spacing:sweepline")) / total
			row.EdgeCheck = float64(rep.Profile.Get("spacing:edge-checks")) / total
			row.Other = 1 - row.Partition - row.Sweepline - row.EdgeCheck
		}
		out = append(out, row)
	}
	return out, nil
}

// WriteFig4 renders the breakdown rows with bar charts.
func WriteFig4(w io.Writer, rows []Fig4Row) {
	fmt.Fprintln(w, "Fig. 4 — sequential space-check (M1.S.1) runtime breakdown")
	fmt.Fprintf(w, "%-8s %10s %11s %11s %11s %8s\n",
		"design", "total", "partition", "sweepline", "edge-check", "other")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %10v %10.1f%% %10.1f%% %10.1f%% %7.1f%%\n",
			r.Design, r.Total.Round(time.Microsecond),
			r.Partition*100, r.Sweepline*100, r.EdgeCheck*100, r.Other*100)
	}
}

// BreakdownProfile exposes the raw profiler of a sequential spacing run for
// one design (used by cmd/odrc-bench -fig 4 -design X).
func BreakdownProfile(lo *layout.Layout, ruleID string) (*infra.Profiler, error) {
	return BreakdownProfileContext(context.Background(), lo, ruleID) //odrc:allow ctxflow — context-free convenience wrapper, delegates to the Context variant
}

// BreakdownProfileContext is BreakdownProfile under a context.
func BreakdownProfileContext(ctx context.Context, lo *layout.Layout, ruleID string) (*infra.Profiler, error) {
	r, err := synth.RuleByID(ruleID)
	if err != nil {
		return nil, err
	}
	eng := core.New(core.Options{Mode: core.Sequential})
	if err := eng.AddRules(r); err != nil {
		return nil, err
	}
	rep, err := eng.CheckContext(ctx, lo)
	if err != nil {
		return nil, err
	}
	return rep.Profile, nil
}
