// Package bench is the evaluation harness that regenerates the paper's
// tables and figures: it runs every (design, rule, checker) cell, renders
// Table I (intra-polygon checks) and Table II (inter-polygon checks) with
// the paper's column layout and normalized geometric-mean rows, prints the
// Fig. 3 sweepline trace, and profiles the Fig. 4 runtime breakdown.
//
// Time semantics per checker, stated in every table header:
//   - KLayout flat/deep and OpenDRC sequential report measured single-core
//     host wall time;
//   - KLayout tiling reports the modeled 8-thread makespan over measured
//     per-tile times;
//   - X-Check and OpenDRC parallel report the modeled CPU+GPU time from
//     the simulated device timeline (host phases measured, kernels costed).
package bench

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"opendrc/internal/core"
	"opendrc/internal/gpu"
	"opendrc/internal/klayout"
	"opendrc/internal/layout"
	"opendrc/internal/rules"
	"opendrc/internal/synth"
	"opendrc/internal/xcheck"
)

// calibrate converts a duration measured on this host into modeled-platform
// host time, using the same divisor the simulated device applies to host
// phases (gpu.DefaultHostCalibration), so CPU-only checkers and hybrid
// modeled times stay comparable.
func calibrate(d time.Duration) time.Duration {
	return time.Duration(float64(d) / gpu.DefaultHostCalibration)
}

// Checker identifies one evaluated tool configuration.
type Checker int

// The six table columns.
const (
	KLayoutFlat Checker = iota
	KLayoutDeep
	KLayoutTile
	XCheck
	OpenDRCSeq
	OpenDRCPar
	numCheckers
)

var checkerNames = [...]string{"KL-flat", "KL-deep", "KL-tile", "X-Check", "ODRC-seq", "ODRC-par"}

// String implements fmt.Stringer.
func (c Checker) String() string {
	if int(c) < len(checkerNames) {
		return checkerNames[c]
	}
	return fmt.Sprintf("checker(%d)", int(c))
}

// Cell is one table entry.
type Cell struct {
	Time       time.Duration
	Violations int
	Supported  bool
}

// RunCell executes one rule with one checker with no deadline.
func RunCell(lo *layout.Layout, r rules.Rule, c Checker) (Cell, error) {
	return RunCellContext(context.Background(), lo, r, c) //odrc:allow ctxflow — context-free convenience wrapper, delegates to the Context variant
}

// RunCellContext executes one rule with one checker under ctx. A degraded
// engine report (a rule failure swallowed by fault isolation) is an error
// here: benchmark numbers must come from complete runs.
func RunCellContext(ctx context.Context, lo *layout.Layout, r rules.Rule, c Checker) (Cell, error) {
	switch c {
	case KLayoutFlat, KLayoutDeep, KLayoutTile:
		mode := klayout.Flat
		switch c {
		case KLayoutDeep:
			mode = klayout.Deep
		case KLayoutTile:
			mode = klayout.Tiling
		}
		res, err := klayout.CheckContext(ctx, lo, r, klayout.Options{Mode: mode})
		if err != nil {
			return Cell{}, err
		}
		t := res.Wall
		if c == KLayoutTile {
			t = res.Modeled
		}
		return Cell{Time: calibrate(t), Violations: dedupCount(res.Violations), Supported: true}, nil
	case XCheck:
		res, err := xcheck.CheckContext(ctx, lo, r, xcheck.Options{})
		if errors.Is(err, xcheck.ErrUnsupported) {
			return Cell{Supported: false}, nil
		}
		if err != nil {
			return Cell{}, err
		}
		return Cell{Time: res.Modeled, Violations: dedupCount(res.Violations), Supported: true}, nil
	case OpenDRCSeq, OpenDRCPar:
		mode := core.Sequential
		if c == OpenDRCPar {
			mode = core.Parallel
		}
		eng := core.New(core.Options{Mode: mode})
		if err := eng.AddRules(r); err != nil {
			return Cell{}, err
		}
		rep, err := eng.CheckContext(ctx, lo)
		if err != nil {
			return Cell{}, err
		}
		if rep.Degraded {
			return Cell{}, fmt.Errorf("bench: degraded report for %s (%d rule failures)", r.ID, len(rep.Failures))
		}
		t := rep.Modeled
		if mode == core.Sequential {
			t = calibrate(t)
		}
		return Cell{Time: t, Violations: dedupCount(rep.Violations), Supported: true}, nil
	}
	return Cell{}, fmt.Errorf("bench: unknown checker %d", int(c))
}

func dedupCount(vs []rules.Violation) int {
	return len(core.DedupViolations(append([]rules.Violation(nil), vs...)))
}

// Row is one table line: a design/rule pair with all checker cells.
type Row struct {
	Design string
	RuleID string
	Cells  [numCheckers]Cell
}

// Table is a rendered experiment.
type Table struct {
	Title string
	Rows  []Row
	// GeoMeanRel[c] is the geometric mean of per-row times normalized to
	// OpenDRC-parallel — the paper's "average" row ("the runtime is the
	// geometric mean of the column, as we value all checks equally
	// regardless of their sizes"). Unsupported cells are excluded.
	GeoMeanRel [numCheckers]float64
	// Mismatches counts rows where the checkers disagreed on the deduped
	// violation count — a correctness cross-check the paper's tools cannot
	// offer; it must be zero.
	Mismatches int
}

// TableIRules are the intra-polygon rules (width and area, per metal layer).
func TableIRules() []string {
	return []string{"M1.W.1", "M2.W.1", "M3.W.1", "M1.A.1", "M2.A.1", "M3.A.1"}
}

// TableIIRules are the inter-polygon rules (spacing and enclosure).
func TableIIRules() []string {
	return []string{"M1.S.1", "M2.S.1", "M3.S.1", "V1.M1.EN.1", "V2.M2.EN.1", "V2.M3.EN.1"}
}

// DesignNames lists the evaluation designs in the paper's order.
func DesignNames() []string {
	return []string{"aes", "ethmac", "ibex", "jpeg", "sha3", "uart"}
}

// Layouts loads every design at the given scale (1 = full size).
func Layouts(scale float64) (map[string]*layout.Layout, error) {
	out := make(map[string]*layout.Layout)
	for _, name := range DesignNames() {
		lo, _, err := synth.Load(name, scale)
		if err != nil {
			return nil, err
		}
		out[name] = lo
	}
	return out, nil
}

// Run executes one table over the designs with no deadline.
func Run(title string, layouts map[string]*layout.Layout, ruleIDs []string) (*Table, error) {
	return RunContext(context.Background(), title, layouts, ruleIDs) //odrc:allow ctxflow — context-free convenience wrapper, delegates to the Context variant
}

// RunContext executes one table over the designs under ctx; a timeout or
// cancellation aborts between cells with an error wrapping ctx.Err().
func RunContext(ctx context.Context, title string, layouts map[string]*layout.Layout, ruleIDs []string) (*Table, error) {
	tbl := &Table{Title: title}
	for _, design := range DesignNames() {
		lo := layouts[design]
		if lo == nil {
			continue
		}
		for _, id := range ruleIDs {
			r, err := synth.RuleByID(id)
			if err != nil {
				return nil, err
			}
			row := Row{Design: design, RuleID: id}
			for c := Checker(0); c < numCheckers; c++ {
				cell, err := RunCellContext(ctx, lo, r, c)
				if err != nil {
					return nil, fmt.Errorf("%s %s %s: %w", design, id, c, err)
				}
				row.Cells[c] = cell
			}
			if !consistent(&row) {
				tbl.Mismatches++
			}
			tbl.Rows = append(tbl.Rows, row)
		}
	}
	tbl.computeGeoMeans()
	return tbl, nil
}

// consistent reports whether all supported checkers found the same deduped
// violation count.
func consistent(row *Row) bool {
	ref := -1
	for c := Checker(0); c < numCheckers; c++ {
		cell := row.Cells[c]
		if !cell.Supported {
			continue
		}
		if ref < 0 {
			ref = cell.Violations
			continue
		}
		if cell.Violations != ref {
			return false
		}
	}
	return true
}

func (t *Table) computeGeoMeans() {
	var logSum [numCheckers]float64
	var n [numCheckers]int
	for _, row := range t.Rows {
		base := row.Cells[OpenDRCPar].Time
		if base <= 0 {
			base = time.Nanosecond
		}
		for c := Checker(0); c < numCheckers; c++ {
			cell := row.Cells[c]
			if !cell.Supported {
				continue
			}
			tm := cell.Time
			if tm <= 0 {
				tm = time.Nanosecond
			}
			logSum[c] += math.Log(float64(tm) / float64(base))
			n[c]++
		}
	}
	for c := Checker(0); c < numCheckers; c++ {
		if n[c] > 0 {
			t.GeoMeanRel[c] = math.Exp(logSum[c] / float64(n[c]))
		}
	}
}

// WriteTo renders the table as aligned text.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var total int64
	p := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	if err := p("%s\n", t.Title); err != nil {
		return total, err
	}
	if err := p("%-8s %-11s", "design", "rule"); err != nil {
		return total, err
	}
	for c := Checker(0); c < numCheckers; c++ {
		if err := p(" %12s", c); err != nil {
			return total, err
		}
	}
	if err := p(" %6s\n", "viols"); err != nil {
		return total, err
	}
	for _, row := range t.Rows {
		if err := p("%-8s %-11s", row.Design, row.RuleID); err != nil {
			return total, err
		}
		for c := Checker(0); c < numCheckers; c++ {
			cell := row.Cells[c]
			if !cell.Supported {
				if err := p(" %12s", "-"); err != nil {
					return total, err
				}
				continue
			}
			if err := p(" %12s", fmtDur(cell.Time)); err != nil {
				return total, err
			}
		}
		if err := p(" %6d\n", row.Cells[OpenDRCSeq].Violations); err != nil {
			return total, err
		}
	}
	if err := p("%-20s", "geo-mean (vs par)"); err != nil {
		return total, err
	}
	for c := Checker(0); c < numCheckers; c++ {
		if err := p(" %11.1fx", t.GeoMeanRel[c]); err != nil {
			return total, err
		}
	}
	if err := p("\nresult mismatches: %d\n", t.Mismatches); err != nil {
		return total, err
	}
	return total, nil
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	}
}
