package bench

import (
	"bytes"
	"strings"
	"testing"

	"opendrc/internal/synth"
)

func TestRunTableConsistency(t *testing.T) {
	lts, err := Layouts(0.3)
	if err != nil {
		t.Fatal(err)
	}
	// One spacing rule over all designs and all six checkers.
	tbl, err := Run("test", lts, []string{"M2.S.1"})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Mismatches != 0 {
		t.Fatalf("checkers disagree on %d rows", tbl.Mismatches)
	}
	if len(tbl.Rows) != len(DesignNames()) {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for c := KLayoutFlat; c <= OpenDRCPar; c++ {
		if tbl.GeoMeanRel[c] <= 0 {
			t.Errorf("%s: geo-mean missing", c)
		}
	}
	var buf bytes.Buffer
	if _, err := tbl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"KL-flat", "X-Check", "ODRC-par", "geo-mean", "mismatches: 0"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestRunCellUnsupported(t *testing.T) {
	lts, err := Layouts(0.2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := synth.RuleByID("M1.A.1")
	if err != nil {
		t.Fatal(err)
	}
	cell, err := RunCell(lts["uart"], r, XCheck)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Supported {
		t.Error("X-Check must not support area checks (the paper's empty column)")
	}
}

func TestFig3Trace(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig3(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Sweep order is descending y, so A (top 16) discovers the earlier
	// inserted B (top 20), and C (top 12) discovers D (top 14).
	if !strings.Contains(out, "overlaps=[B]") {
		t.Errorf("A must report overlap with B:\n%s", out)
	}
	if !strings.Contains(out, "overlaps=[D]") {
		t.Errorf("C must report overlap with D:\n%s", out)
	}
	if strings.Count(out, "TOP") != 5 || strings.Count(out, "BOT") != 5 {
		t.Errorf("trace must contain 5 insertions and 5 removals:\n%s", out)
	}
}

func TestFig4Breakdown(t *testing.T) {
	lts, err := Layouts(0.3)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Fig4(lts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(DesignNames()) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		sum := r.Partition + r.Sweepline + r.EdgeCheck + r.Other
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("%s: fractions sum to %g", r.Design, sum)
		}
		if r.Total <= 0 {
			t.Errorf("%s: zero total", r.Design)
		}
		// The paper's qualitative shape: the partition is the smallest of
		// the three phases.
		if r.Partition > r.Sweepline+r.EdgeCheck {
			t.Errorf("%s: partition dominates (%.0f%%) — breakdown shape broken",
				r.Design, r.Partition*100)
		}
	}
	var buf bytes.Buffer
	WriteFig4(&buf, rows)
	if !strings.Contains(buf.String(), "partition") {
		t.Error("rendered breakdown missing header")
	}
}

func TestBreakdownProfile(t *testing.T) {
	lts, err := Layouts(0.2)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := BreakdownProfile(lts["uart"], "M1.S.1")
	if err != nil {
		t.Fatal(err)
	}
	if prof.Total() <= 0 {
		t.Error("empty profile")
	}
	if _, err := BreakdownProfile(lts["uart"], "NOPE"); err == nil {
		t.Error("unknown rule accepted")
	}
}
