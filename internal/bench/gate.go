package bench

import (
	"fmt"
	"strings"
)

// Regression gates for CI: check.sh regenerates the benchmark JSON and
// fails the build when a row shows parallel or cached execution costing
// more than its baseline, or — worse — producing a different report. With
// best-of-interleaved-runs measurement and the degenerate-configuration
// marker, a gate failure means a real regression, not scheduler noise.

// Gate returns an error listing every regressed row: a speedup below 1.0
// (Workers=N slower than Workers=1 — the parallel-slower-than-sequential
// bug class) or mismatched reports between worker counts. Degenerate rows
// (Workers=N resolved to 1) have Speedup pinned to 1.0 and so can only trip
// the identity check.
func (r *SpeedupReport) Gate() error {
	var bad []string
	for _, row := range r.Rows {
		if !row.Identical {
			bad = append(bad, fmt.Sprintf("%s/%s: reports differ between worker counts", row.Design, row.Mode))
		}
		if row.Speedup < 1.0 {
			bad = append(bad, fmt.Sprintf("%s/%s: speedup %.3f < 1.0 (workers=%d slower than workers=1)",
				row.Design, row.Mode, row.Speedup, r.Workers))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("speedup gate: %d regressed row(s):\n  %s", len(bad), strings.Join(bad, "\n  "))
	}
	return nil
}

// Gate returns an error listing every regressed row: a headline improvement
// below 1.0 (the geometry cache costing more than it saves) or mismatched
// reports between cache configurations. Rows below the noise floor (both
// sides sub-millisecond) are gated on identity only — their ratio is timer
// noise, not a measurement.
func (r *ReuseReport) Gate() error {
	var bad []string
	for _, row := range r.Rows {
		if !row.Identical {
			bad = append(bad, fmt.Sprintf("%s/%s: reports differ between cache configurations", row.Design, row.Mode))
		}
		if row.Improvement < 1.0 && !row.BelowNoiseFloor {
			bad = append(bad, fmt.Sprintf("%s/%s: improvement %.3f < 1.0 (cache made the run slower)",
				row.Design, row.Mode, row.Improvement))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("reuse gate: %d regressed row(s):\n  %s", len(bad), strings.Join(bad, "\n  "))
	}
	return nil
}
