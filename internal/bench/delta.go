package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"opendrc/internal/core"
	"opendrc/internal/geom"
	"opendrc/internal/layout"
	"opendrc/internal/synth"
)

// Delta-check experiment: a resident session takes an in-place edit batch
// confined to a y-strip covering a chosen fraction of the M1 layer, then
// re-checks incrementally. The comparator is what a client without delta
// checks would pay for the same result: a cold full check of the edited
// design. Every row cross-checks the two reports byte-for-byte in canonical
// form — the delta machinery changes cost, never results — and the edit
// fraction sweep shows the delta wall tracking the dirty area, with small
// edits far cheaper than the full re-check.

// DeltaFractions is the edit-fraction sweep: a tiny ECO-style fix, a local
// region, and a large swath.
func DeltaFractions() []float64 { return []float64{0.02, 0.10, 0.30} }

// DeltaDesigns are the sweep designs — small, medium, and large, so the
// fraction scaling shows at several absolute sizes without the full
// six-design cost.
func DeltaDesigns() []string { return []string{"uart", "sha3", "aes"} }

// deltaEdits builds the deterministic edit batch for one fraction: three
// sub-min-width slivers (fresh width violations) and one delete window, all
// inside a y-strip of fraction × the M1 extent, centered vertically.
func deltaEdits(lo *layout.Layout, fraction float64) []layout.Edit {
	m := lo.Top.LayerMBR(layout.LayerM1)
	w, h := m.XHi-m.XLo, m.YHi-m.YLo
	stripH := int64(float64(h) * fraction)
	if stripH < 120 {
		stripH = 120
	}
	y0 := m.YLo + (h-stripH)/2
	sliverH := stripH / 4
	if sliverH < 30 {
		sliverH = 30
	}
	var edits []layout.Edit
	for i := int64(0); i < 3; i++ {
		x := m.XLo + (i+1)*w/4
		y := y0 + i*(stripH-sliverH)/3
		edits = append(edits, layout.Edit{
			Op: layout.OpInsertRect, Layer: layout.LayerM1,
			Rect: geom.Rect{XLo: x, YLo: y, XHi: x + synth.MinWidthM1/2, YHi: y + sliverH},
		})
	}
	edits = append(edits, layout.Edit{
		Op: layout.OpDeleteRegion, Layer: layout.LayerM1,
		Rect: geom.Rect{XLo: m.XLo, YLo: y0, XHi: m.XLo + w/20, YHi: y0 + stripH},
	})
	return edits
}

// DeltaRow is one (design, mode, fraction) cell.
type DeltaRow struct {
	Design       string  `json:"design"`
	Mode         string  `json:"mode"`
	EditFraction float64 `json:"edit_fraction"`
	Rules        int     `json:"rules"`

	// Planned is false when the session fell back to a full check; the sweep
	// requires the incremental path, so the gate fails unplanned rows.
	Planned         bool `json:"planned"`
	RulesSkipped    int  `json:"rules_skipped"`
	RulesRestricted int  `json:"rules_restricted"`
	RulesFull       int  `json:"rules_full"`

	// WallFullUS is the comparator: a cold full check of the edited design
	// (load amortized away — the session client already holds the layout).
	WallFullUS     int64 `json:"wall_full_us"`
	WallDeltaUS    int64 `json:"wall_delta_us"`
	ModeledFullUS  int64 `json:"modeled_full_us"`
	ModeledDeltaUS int64 `json:"modeled_delta_us"`

	WallSpeedup    float64 `json:"wall_speedup"`
	ModeledSpeedup float64 `json:"modeled_speedup"`
	Speedup        float64 `json:"speedup"`

	FlattenMisses      int64 `json:"flatten_cache_misses"`
	DeviceDeltaUploads int64 `json:"device_delta_uploads"`

	Violations int `json:"violations"`
	// Identical is true when the delta report's canonical bytes equal the
	// cold full check's — the experiment's correctness contract.
	Identical       bool `json:"reports_identical"`
	BelowNoiseFloor bool `json:"below_noise_floor,omitempty"`
}

// DeltaReport is the whole experiment, serialized to BENCH_delta.json.
type DeltaReport struct {
	Scale float64    `json:"scale"`
	Runs  int        `json:"runs_per_cell"`
	Rows  []DeltaRow `json:"rows"`
}

// deltaNoiseFloor mirrors the reuse experiment's: sub-millisecond walls are
// timer noise, gated on identity only.
const deltaNoiseFloor = time.Millisecond

// canonBytes renders a report's canonical form.
func canonBytes(rep *core.Report) (string, error) {
	var buf bytes.Buffer
	if err := rep.WriteCanonicalJSON(&buf); err != nil {
		return "", err
	}
	return buf.String(), nil
}

// deltaSampleWarm runs the session side once: load, full baseline check
// (untimed), edit, delta check (the measured quantity).
func deltaSampleWarm(ctx context.Context, design string, scale float64, mode core.Mode, fraction float64) (*core.Report, core.DeltaInfo, error) {
	lo, _, err := synth.Load(design, scale)
	if err != nil {
		return nil, core.DeltaInfo{}, err
	}
	ses := core.NewSession(lo, core.Options{Mode: mode})
	defer ses.Close(ctx)
	deck := synth.Deck()
	if _, err := ses.Check(ctx, deck); err != nil {
		return nil, core.DeltaInfo{}, fmt.Errorf("baseline: %w", err)
	}
	if _, err := ses.Edit(ctx, deltaEdits(lo, fraction)); err != nil {
		return nil, core.DeltaInfo{}, fmt.Errorf("edit: %w", err)
	}
	rep, info, err := ses.DeltaCheck(ctx, deck)
	if err != nil {
		return nil, core.DeltaInfo{}, fmt.Errorf("delta check: %w", err)
	}
	return rep, info, nil
}

// deltaSampleCold runs the comparator once: a fresh layout with the same
// edits applied, checked by a batch engine.
func deltaSampleCold(ctx context.Context, design string, scale float64, mode core.Mode, fraction float64) (*core.Report, error) {
	lo, _, err := synth.Load(design, scale)
	if err != nil {
		return nil, err
	}
	if _, err := lo.ApplyEdits(deltaEdits(lo, fraction)); err != nil {
		return nil, err
	}
	eng := core.New(core.Options{Mode: mode})
	if err := eng.AddRules(synth.Deck()...); err != nil {
		return nil, err
	}
	return eng.CheckContext(ctx, lo)
}

// DeltaContext runs the sweep: for each design, mode, and edit fraction,
// interleaved cold-vs-delta samples with per-side best-of-runs (drift lands
// on both sides, the minimum discards contamination — see bestDuration).
func DeltaContext(ctx context.Context, runs int, scale float64) (*DeltaReport, error) {
	if runs < 1 {
		runs = 1
	}
	out := &DeltaReport{Scale: scale, Runs: runs}
	deckLen := len(synth.Deck())
	for _, mode := range []core.Mode{core.Parallel, core.Sequential} {
		for _, design := range DeltaDesigns() {
			for _, fraction := range DeltaFractions() {
				var repCold, repDelta *core.Report
				var info core.DeltaInfo
				wCold := make([]time.Duration, 0, runs)
				wDelta := make([]time.Duration, 0, runs)
				for i := 0; i < runs; i++ {
					runtime.GC()
					rc, err := deltaSampleCold(ctx, design, scale, mode, fraction)
					if err != nil {
						return nil, fmt.Errorf("%s %s f=%g cold: %w", design, mode, fraction, err)
					}
					wCold = append(wCold, rc.HostWall)
					if repCold == nil {
						repCold = rc
					}
					runtime.GC()
					rd, di, err := deltaSampleWarm(ctx, design, scale, mode, fraction)
					if err != nil {
						return nil, fmt.Errorf("%s %s f=%g warm: %w", design, mode, fraction, err)
					}
					wDelta = append(wDelta, rd.HostWall)
					if repDelta == nil {
						repDelta, info = rd, di
					}
				}
				wallCold, wallDelta := bestDuration(wCold), bestDuration(wDelta)
				canonCold, err := canonBytes(repCold)
				if err != nil {
					return nil, err
				}
				canonDelta, err := canonBytes(repDelta)
				if err != nil {
					return nil, err
				}
				row := DeltaRow{
					Design:       design,
					Mode:         mode.String(),
					EditFraction: fraction,
					Rules:        deckLen,

					Planned:         info.Planned,
					RulesSkipped:    info.RulesSkipped,
					RulesRestricted: info.RulesRestricted,
					RulesFull:       info.RulesFull,

					WallFullUS:     wallCold.Microseconds(),
					WallDeltaUS:    wallDelta.Microseconds(),
					ModeledFullUS:  repCold.Modeled.Microseconds(),
					ModeledDeltaUS: repDelta.Modeled.Microseconds(),

					FlattenMisses:      repDelta.Stats.FlattenCacheMisses,
					DeviceDeltaUploads: repDelta.Stats.DeviceDeltaUploads,

					Violations:      len(repDelta.Violations),
					Identical:       canonCold == canonDelta,
					BelowNoiseFloor: wallCold < deltaNoiseFloor && wallDelta < deltaNoiseFloor,
				}
				if wallDelta > 0 {
					row.WallSpeedup = float64(wallCold) / float64(wallDelta)
				}
				if repDelta.Modeled > 0 {
					row.ModeledSpeedup = float64(repCold.Modeled) / float64(repDelta.Modeled)
				}
				row.Speedup = row.WallSpeedup
				if row.ModeledSpeedup > row.Speedup {
					row.Speedup = row.ModeledSpeedup
				}
				out.Rows = append(out.Rows, row)
			}
		}
	}
	return out, nil
}

// WriteJSON serializes the report.
func (r *DeltaReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteTo renders an aligned text table.
func (r *DeltaReport) WriteTo(w io.Writer) (int64, error) {
	var total int64
	p := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	if err := p("Delta checks: incremental re-check vs cold full check after edits (scale %g, best of %d interleaved runs)\n",
		r.Scale, r.Runs); err != nil {
		return total, err
	}
	if err := p("%-8s %-10s %8s %12s %12s %8s %8s %22s %6s %10s\n",
		"design", "mode", "edit", "wall full", "wall delta", "wall x",
		"planned", "skip/restrict/full", "viols", "identical"); err != nil {
		return total, err
	}
	for _, row := range r.Rows {
		if err := p("%-8s %-10s %7.0f%% %12s %12s %7.2fx %8v %20d/%d/%d %6d %10v\n",
			row.Design, row.Mode, row.EditFraction*100,
			fmtDur(time.Duration(row.WallFullUS)*time.Microsecond),
			fmtDur(time.Duration(row.WallDeltaUS)*time.Microsecond),
			row.WallSpeedup, row.Planned,
			row.RulesSkipped, row.RulesRestricted, row.RulesFull,
			row.Violations, row.Identical); err != nil {
			return total, err
		}
	}
	return total, nil
}

// Gate returns an error listing every regressed row: a report differing from
// the cold check (the correctness contract), a fallback where the sweep
// expected an incremental run, or a smallest-fraction row where the delta
// check was slower than the full check it replaces. Larger fractions are
// reported but not speed-gated — a 30% edit legitimately approaches full-
// check cost.
func (r *DeltaReport) Gate() error {
	smallest := DeltaFractions()[0]
	var bad []string
	for _, row := range r.Rows {
		if !row.Identical {
			bad = append(bad, fmt.Sprintf("%s/%s f=%g: delta report differs from cold full check",
				row.Design, row.Mode, row.EditFraction))
		}
		if !row.Planned {
			bad = append(bad, fmt.Sprintf("%s/%s f=%g: delta check fell back to a full check",
				row.Design, row.Mode, row.EditFraction))
		}
		if row.EditFraction == smallest && row.Speedup < 1.0 && !row.BelowNoiseFloor {
			bad = append(bad, fmt.Sprintf("%s/%s f=%g: speedup %.3f < 1.0 (delta slower than full re-check)",
				row.Design, row.Mode, row.EditFraction, row.Speedup))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("delta gate: %d regressed row(s):\n  %s", len(bad), strings.Join(bad, "\n  "))
	}
	return nil
}
