package bench

import (
	"context"
	"fmt"

	"opendrc/internal/core"
	"opendrc/internal/synth"
	"opendrc/internal/trace"
)

// TraceRun runs the full evaluation deck on one design with the given
// recorder attached and no deadline. See TraceRunContext.
func TraceRun(design string, mode core.Mode, scale float64, workers int, rec *trace.Recorder) (*core.Report, error) {
	return TraceRunContext(context.Background(), design, mode, scale, workers, rec) //odrc:allow ctxflow — context-free convenience wrapper, delegates to the Context variant
}

// TraceRunContext runs the full evaluation deck on one design under ctx
// with the given recorder attached, producing a representative timeline of
// a whole check (every rule kind, the geometry cache warming up, the pool
// fan-outs, and — in parallel mode — the simulated device streams). As in
// RunCellContext, a degraded report is an error: a trace of a partial run
// would be misleading next to the benchmark numbers.
func TraceRunContext(ctx context.Context, design string, mode core.Mode, scale float64, workers int, rec *trace.Recorder) (*core.Report, error) {
	lo, _, err := synth.Load(design, scale)
	if err != nil {
		return nil, err
	}
	rec.SetMeta("design", design)
	rec.SetMeta("scale", scale)
	eng := core.New(core.Options{Mode: mode, Workers: workers, Trace: rec})
	if err := eng.AddRules(synth.Deck()...); err != nil {
		return nil, err
	}
	rep, err := eng.CheckContext(ctx, lo)
	if err != nil {
		return nil, err
	}
	if rep.Degraded {
		return nil, fmt.Errorf("bench: degraded report for %s (%d rule failures)", design, len(rep.Failures))
	}
	return rep, nil
}
