package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"opendrc/internal/core"
	"opendrc/internal/pool"
	"opendrc/internal/synth"
)

// Cross-tenant fairness experiment: two tenants share one scheduler's
// worker set. The heavy tenant saturates it with back-to-back full-deck
// checks of a larger design; the light tenant runs small checks and
// measures each one's latency. The sweep compares the light tenant's p50
// and p95 under the pre-scheduler FIFO baseline (global arrival order — a
// light fan-out queues behind every heavy chunk already submitted) against
// the weighted-fair stride policy, where the shared workers split between
// tenants by weight no matter how much the heavy tenant has queued.
// Every row cross-checks the light tenant's canonical report bytes against
// an unloaded solo run — fairness moves latency, never results.

const (
	// fairSchedWorkers is the shared worker count W. The light tenant's
	// expected p95 improvement is ~(1 + W/2): under FIFO only the light
	// caller itself (caller-participation) advances light chunks, while
	// fair splits the W workers evenly between the two equal-weight
	// tenants, adding ~W/2 servers to the caller.
	fairSchedWorkers = 8
	// fairEngineWorkers is the per-fan-out worker bound (explicit: the
	// experiment must take the multi-worker path on any host).
	fairEngineWorkers = 8
	// fairHeavyStreams is how many concurrent heavy check loops saturate
	// the scheduler (separate sessions — one session serializes checks).
	// The FIFO baseline's damage is proportional to how many heavy
	// fan-outs are queued ahead of a light arrival, so saturation needs
	// several concurrent streams, not one loop.
	fairHeavyStreams = 6

	// Both tenants run the same design: "light" means light offered load
	// (one check at a time, measured), not small checks. A light check must
	// span several OS scheduling quanta for queueing policy to be visible
	// at all — sub-millisecond checks complete inside one quantum and never
	// wait — so the sweep wants -scale large enough that a warm check costs
	// tens of milliseconds.
	fairLightDesign = "sha3"
	fairHeavyDesign = "sha3"

	// fairThink is the light tenant's closed-loop think time between
	// checks, applied identically under every policy (and excluded from
	// each check's measured latency). An interactive tenant edits, reads a
	// report, then re-checks — it does not saturate. The gap also matters
	// mechanically: it is when the saturating co-tenant's stride pass
	// advances past the light tenant's, which is what renews the light
	// tenant's rejoin credit at its next check (pool.Scheduler joinLocked).
	fairThink = 40 * time.Millisecond
)

// FairRow is the light tenant's latency distribution under one policy.
type FairRow struct {
	Policy      string `json:"policy"`
	LightWeight int    `json:"light_weight"`
	HeavyWeight int    `json:"heavy_weight"`
	LightChecks int    `json:"light_checks"`

	P50US  int64 `json:"light_p50_us"`
	P95US  int64 `json:"light_p95_us"`
	MeanUS int64 `json:"light_mean_us"`

	// HeavyChecks counts co-tenant checks completed during the row — the
	// saturation evidence.
	HeavyChecks int64 `json:"heavy_checks_completed"`
	// Identical is true when every light report's canonical bytes equal the
	// unloaded solo run's — the correctness contract.
	Identical bool `json:"reports_identical"`
}

// FairReport is the whole experiment, serialized to BENCH_fair.json.
type FairReport struct {
	Scale         float64 `json:"scale"`
	SchedWorkers  int     `json:"sched_workers"`
	EngineWorkers int     `json:"engine_workers"`
	LightDesign   string  `json:"light_design"`
	HeavyDesign   string  `json:"heavy_design"`
	SoloP95US     int64   `json:"light_solo_p95_us"`

	Rows []FairRow `json:"rows"`

	// ImprovementP95 is the headline: FIFO p95 / fair p95 at equal weights.
	ImprovementP95 float64 `json:"light_p95_improvement"`
}

// fairLoad is the heavy tenant's saturation harness: looping full-deck
// checks on dedicated sessions until stopped.
type fairLoad struct {
	stop   chan struct{}
	wg     sync.WaitGroup
	checks atomic.Int64
	err    atomic.Pointer[error]
}

// startHeavy launches the heavy check loops. ctx must already carry the
// scheduler and the heavy tenant tag.
func startHeavy(ctx context.Context, sessions []*core.Session) *fairLoad {
	ld := &fairLoad{stop: make(chan struct{})}
	full := synth.Deck()
	for _, ses := range sessions {
		ses := ses
		ld.wg.Add(1)
		go func() { //odrc:allow rawgo — benchmark load generator, joined by fairLoad.wait
			defer ld.wg.Done()
			for {
				select {
				case <-ld.stop:
					return
				default:
				}
				if _, err := ses.Check(ctx, full); err != nil {
					if ctx.Err() == nil {
						ld.err.CompareAndSwap(nil, &err)
					}
					return
				}
				ld.checks.Add(1)
			}
		}()
	}
	return ld
}

// wait stops the load and returns the first loop error, if any.
func (ld *fairLoad) wait() error {
	close(ld.stop)
	ld.wg.Wait()
	if p := ld.err.Load(); p != nil {
		return *p
	}
	return nil
}

// fairPolicies is the row sweep: the FIFO baseline, equal-weight fair
// share (the gated comparison), and a 4× light weight showing the knob.
func fairPolicies() []struct {
	policy      pool.SchedPolicy
	lightWeight int
} {
	return []struct {
		policy      pool.SchedPolicy
		lightWeight int
	}{
		{pool.FIFO, 1},
		{pool.FairShare, 1},
		{pool.FairShare, 4},
	}
}

// FairnessContext runs the sweep. checks light checks are measured per row
// (at least 20 for a stable p95).
func FairnessContext(ctx context.Context, checks int, scale float64) (*FairReport, error) {
	if checks < 20 {
		checks = 20
	}
	out := &FairReport{
		Scale:         scale,
		SchedWorkers:  fairSchedWorkers,
		EngineWorkers: fairEngineWorkers,
		LightDesign:   fairLightDesign,
		HeavyDesign:   fairHeavyDesign,
	}
	deck := synth.Deck()

	// Sessions are seq mode: host-side fan-outs are what the scheduler
	// routes (par mode's kernels run on the simulated device).
	opts := core.Options{Mode: core.Sequential, Workers: fairEngineWorkers}
	lightLo, _, err := synth.Load(fairLightDesign, scale)
	if err != nil {
		return nil, err
	}
	light := core.NewSession(lightLo, opts)
	defer light.Close(ctx)

	heavySessions := make([]*core.Session, fairHeavyStreams)
	for i := range heavySessions {
		lo, _, err := synth.Load(fairHeavyDesign, scale)
		if err != nil {
			return nil, err
		}
		heavySessions[i] = core.NewSession(lo, opts)
		defer heavySessions[i].Close(ctx)
	}

	// Solo oracle: the light tenant unloaded, no scheduler. The first check
	// warms the session's geometry cache; the rest measure the steady state
	// every loaded row is compared against.
	soloRep, err := light.Check(ctx, deck)
	if err != nil {
		return nil, fmt.Errorf("solo warmup: %w", err)
	}
	oracle, err := canonBytes(soloRep)
	if err != nil {
		return nil, err
	}
	soloLat := make([]time.Duration, 0, checks)
	for i := 0; i < checks; i++ {
		t0 := time.Now()
		rep, err := light.Check(ctx, deck)
		if err != nil {
			return nil, fmt.Errorf("solo check: %w", err)
		}
		soloLat = append(soloLat, time.Since(t0))
		if c, err := canonBytes(rep); err != nil {
			return nil, err
		} else if c != oracle {
			return nil, fmt.Errorf("solo checks not deterministic")
		}
	}
	out.SoloP95US = percentileDuration(soloLat, 0.95).Microseconds()

	for _, pc := range fairPolicies() {
		sched := pool.NewScheduler(pool.SchedConfig{
			Workers: fairSchedWorkers,
			Policy:  pc.policy,
			Weights: map[string]int{"light": pc.lightWeight},
		})
		schedCtx := pool.WithScheduler(ctx, sched)
		lightCtx := pool.WithTenant(schedCtx, "light")
		heavyCtx := pool.WithTenant(schedCtx, "heavy")

		ld := startHeavy(heavyCtx, heavySessions)
		// Let the heavy loops saturate the queues before measuring.
		time.Sleep(50 * time.Millisecond)

		lat := make([]time.Duration, 0, checks)
		identical := true
		var runErr error
		for i := 0; i < checks; i++ {
			if i > 0 {
				time.Sleep(fairThink)
			}
			t0 := time.Now()
			rep, err := light.Check(lightCtx, deck)
			if err != nil {
				runErr = fmt.Errorf("light check under %s: %w", pc.policy, err)
				break
			}
			lat = append(lat, time.Since(t0))
			c, err := canonBytes(rep)
			if err != nil {
				runErr = err
				break
			}
			if c != oracle {
				identical = false
			}
		}
		loadErr := ld.wait()
		sched.Close()
		if runErr != nil {
			return nil, runErr
		}
		if loadErr != nil {
			return nil, fmt.Errorf("heavy load under %s: %w", pc.policy, loadErr)
		}

		var sum time.Duration
		for _, d := range lat {
			sum += d
		}
		out.Rows = append(out.Rows, FairRow{
			Policy:      pc.policy.String(),
			LightWeight: pc.lightWeight,
			HeavyWeight: 1,
			LightChecks: len(lat),
			P50US:       percentileDuration(lat, 0.50).Microseconds(),
			P95US:       percentileDuration(lat, 0.95).Microseconds(),
			MeanUS:      (sum / time.Duration(len(lat))).Microseconds(),
			HeavyChecks: ld.checks.Load(),
			Identical:   identical,
		})
	}

	var fifoP95, fairP95 int64
	for _, row := range out.Rows {
		if row.Policy == "fifo" && row.LightWeight == 1 {
			fifoP95 = row.P95US
		}
		if row.Policy == "fair" && row.LightWeight == 1 {
			fairP95 = row.P95US
		}
	}
	if fairP95 > 0 {
		out.ImprovementP95 = float64(fifoP95) / float64(fairP95)
	}
	return out, nil
}

// WriteJSON serializes the report.
func (r *FairReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteTo renders an aligned text table.
func (r *FairReport) WriteTo(w io.Writer) (int64, error) {
	var total int64
	p := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	if err := p("Fair scheduling: light tenant (%s) latency under heavy co-tenant load (%s ×%d), %d shared workers, scale %g\n",
		r.LightDesign, r.HeavyDesign, fairHeavyStreams, r.SchedWorkers, r.Scale); err != nil {
		return total, err
	}
	if err := p("solo (unloaded) light p95: %s\n",
		fmtDur(time.Duration(r.SoloP95US)*time.Microsecond)); err != nil {
		return total, err
	}
	if err := p("%-8s %-8s %8s %12s %12s %12s %12s %10s\n",
		"policy", "weight", "checks", "p50", "p95", "mean", "heavy done", "identical"); err != nil {
		return total, err
	}
	for _, row := range r.Rows {
		if err := p("%-8s %5d:%-2d %8d %12s %12s %12s %12d %10v\n",
			row.Policy, row.LightWeight, row.HeavyWeight, row.LightChecks,
			fmtDur(time.Duration(row.P50US)*time.Microsecond),
			fmtDur(time.Duration(row.P95US)*time.Microsecond),
			fmtDur(time.Duration(row.MeanUS)*time.Microsecond),
			row.HeavyChecks, row.Identical); err != nil {
			return total, err
		}
	}
	return total, p("light p95 improvement (fifo → fair, equal weights): %.2fx\n", r.ImprovementP95)
}

// fairMinImprovement gates the headline ratio: at equal weights the fair
// policy must at least halve the light tenant's p95 vs the FIFO baseline.
const fairMinImprovement = 2.0

// Gate returns an error when any row's reports differ from the solo run or
// the equal-weight fair policy failed to improve the light tenant's p95 by
// the required factor.
func (r *FairReport) Gate() error {
	var bad []string
	for _, row := range r.Rows {
		if !row.Identical {
			bad = append(bad, fmt.Sprintf("%s w=%d: light reports differ from the unloaded solo run",
				row.Policy, row.LightWeight))
		}
		if row.HeavyChecks == 0 {
			bad = append(bad, fmt.Sprintf("%s w=%d: heavy tenant completed no checks (no saturation)",
				row.Policy, row.LightWeight))
		}
	}
	if r.ImprovementP95 < fairMinImprovement {
		bad = append(bad, fmt.Sprintf("light p95 improvement %.2fx < %.1fx (fifo vs fair, equal weights)",
			r.ImprovementP95, fairMinImprovement))
	}
	if len(bad) > 0 {
		return fmt.Errorf("fairness gate: %d regressed row(s):\n  %s", len(bad), strings.Join(bad, "\n  "))
	}
	return nil
}
