package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"runtime"
	"time"

	"opendrc/internal/core"
	"opendrc/internal/layout"
	"opendrc/internal/synth"
)

// Multi-core speedup experiment: the full standard deck on every synth
// design in both engine modes, Workers=1 versus Workers=N, reporting
// measured wall-clock time. Beyond the speedup itself, every row
// cross-checks that the two runs produced the identical report (violations
// and scheduling counters), which the engine guarantees by construction —
// including the parallel mode's geometry-cache and device-residency
// counters, which are schedule-independent.

// SpeedupRow compares Workers=1 and Workers=N on one design in one mode.
type SpeedupRow struct {
	Design     string  `json:"design"`
	Mode       string  `json:"mode"`
	Wall1US    int64   `json:"wall_workers1_us"`
	WallNUS    int64   `json:"wall_workersN_us"`
	Speedup    float64 `json:"speedup"`
	Violations int     `json:"violations"`
	// Identical is true when both worker counts produced byte-identical
	// sorted violations and equal Stats counters.
	Identical bool `json:"reports_identical"`
	// Degenerate is true when the Workers=N side resolved to 1 worker (a
	// single-CPU host), making both sides the same configuration: Speedup
	// is then 1.0 by definition rather than a measured — and purely noisy —
	// ratio of two identical runs.
	Degenerate bool `json:"degenerate_config,omitempty"`
}

// SpeedupReport is the whole experiment, serialized to BENCH_workers.json.
type SpeedupReport struct {
	GOMAXPROCS int          `json:"gomaxprocs"`
	Workers    int          `json:"workers"`
	Scale      float64      `json:"scale"`
	Runs       int          `json:"runs_per_cell"`
	Rows       []SpeedupRow `json:"rows"`
}

// speedupSample checks the full standard deck on lo once with the given
// mode and worker count.
func speedupSample(ctx context.Context, lo *layout.Layout, mode core.Mode, workers int) (*core.Report, error) {
	eng := core.New(core.Options{Mode: mode, Workers: workers})
	if err := eng.AddRules(synth.Deck()...); err != nil {
		return nil, err
	}
	return eng.CheckContext(ctx, lo)
}

// speedupPair measures Workers=1 against Workers=N with interleaved samples
// (1, N, 1, N, …) and per-side best-of-runs. Interleaving means slow drift —
// thermal throttling, a background build — lands on both sides instead of
// biasing whichever configuration happened to run last; taking each side's
// minimum discards the external contamination that single-run ratios turned
// into phantom sub-1.0 "regressions" (see bestDuration). Reports are
// deterministic per configuration, so the first sample of each side serves
// for the identity cross-check.
func speedupPair(ctx context.Context, lo *layout.Layout, mode core.Mode, workers, runs int) (rep1, repN *core.Report, wall1, wallN time.Duration, err error) {
	w1 := make([]time.Duration, 0, runs)
	wN := make([]time.Duration, 0, runs)
	for i := 0; i < runs; i++ {
		// Collect before each sample: otherwise the garbage of the previous
		// sample — the *other* configuration — is collected inside this
		// sample's measured window, a systematic bias interleaving alone
		// cannot remove.
		runtime.GC()
		r1, err := speedupSample(ctx, lo, mode, 1)
		if err != nil {
			return nil, nil, 0, 0, fmt.Errorf("workers=1: %w", err)
		}
		w1 = append(w1, r1.HostWall)
		if rep1 == nil {
			rep1 = r1
		}
		runtime.GC()
		rN, err := speedupSample(ctx, lo, mode, workers)
		if err != nil {
			return nil, nil, 0, 0, fmt.Errorf("workers=%d: %w", workers, err)
		}
		wN = append(wN, rN.HostWall)
		if repN == nil {
			repN = rN
		}
	}
	return rep1, repN, bestDuration(w1), bestDuration(wN), nil
}

// Speedup runs the experiment over the given layouts (use Layouts(scale)).
// workers <= 0 selects GOMAXPROCS; runs is the repetitions per cell
// (the best of the interleaved runs is reported), at least 1.
func Speedup(layouts map[string]*layout.Layout, workers, runs int, scale float64) (*SpeedupReport, error) {
	return SpeedupContext(context.Background(), layouts, workers, runs, scale) //odrc:allow ctxflow — context-free convenience wrapper, delegates to the Context variant
}

// SpeedupContext is Speedup under a context; cancellation aborts between
// runs.
func SpeedupContext(ctx context.Context, layouts map[string]*layout.Layout, workers, runs int, scale float64) (*SpeedupReport, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if runs < 1 {
		runs = 1
	}
	out := &SpeedupReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    workers,
		Scale:      scale,
		Runs:       runs,
	}
	for _, mode := range []core.Mode{core.Sequential, core.Parallel} {
		for _, design := range DesignNames() {
			lo := layouts[design]
			if lo == nil {
				continue
			}
			rep1, repN, wall1, wallN, err := speedupPair(ctx, lo, mode, workers, runs)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", design, mode, err)
			}
			row := SpeedupRow{
				Design:     design,
				Mode:       mode.String(),
				Wall1US:    wall1.Microseconds(),
				WallNUS:    wallN.Microseconds(),
				Violations: len(rep1.Violations),
				Identical: reflect.DeepEqual(rep1.Violations, repN.Violations) &&
					rep1.Stats == repN.Stats,
			}
			switch {
			case workers == 1:
				// Workers=N resolved to 1 (single-CPU host): both sides ran
				// the identical configuration, so the speedup is 1 by
				// definition and the measured ratio would be pure jitter —
				// the exact noise that used to paint sub-1.0 "regressions"
				// on equal configs. The row is marked so gates and readers
				// know no parallelism was exercised.
				row.Speedup = 1.0
				row.Degenerate = true
			case wallN > 0:
				row.Speedup = float64(wall1) / float64(wallN)
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// WriteJSON serializes the report.
func (r *SpeedupReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteTo renders an aligned text table.
func (r *SpeedupReport) WriteTo(w io.Writer) (int64, error) {
	var total int64
	p := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	if err := p("Engine wall time, Workers=1 vs Workers=%d (GOMAXPROCS %d, scale %g, best of %d interleaved runs)\n",
		r.Workers, r.GOMAXPROCS, r.Scale, r.Runs); err != nil {
		return total, err
	}
	if err := p("%-8s %-10s %12s %12s %8s %8s %10s\n",
		"design", "mode", "workers=1", fmt.Sprintf("workers=%d", r.Workers), "speedup", "viols", "identical"); err != nil {
		return total, err
	}
	for _, row := range r.Rows {
		if err := p("%-8s %-10s %12s %12s %7.2fx %8d %10v\n",
			row.Design, row.Mode,
			fmtDur(time.Duration(row.Wall1US)*time.Microsecond),
			fmtDur(time.Duration(row.WallNUS)*time.Microsecond),
			row.Speedup, row.Violations, row.Identical); err != nil {
			return total, err
		}
	}
	return total, nil
}
