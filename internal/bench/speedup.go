package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"runtime"
	"time"

	"opendrc/internal/core"
	"opendrc/internal/layout"
	"opendrc/internal/synth"
)

// Multi-core speedup experiment: the full standard deck on every synth
// design in both engine modes, Workers=1 versus Workers=N, reporting
// measured wall-clock time. Beyond the speedup itself, every row
// cross-checks that the two runs produced the identical report (violations
// and scheduling counters), which the engine guarantees by construction —
// including the parallel mode's geometry-cache and device-residency
// counters, which are schedule-independent.

// SpeedupRow compares Workers=1 and Workers=N on one design in one mode.
type SpeedupRow struct {
	Design     string  `json:"design"`
	Mode       string  `json:"mode"`
	Wall1US    int64   `json:"wall_workers1_us"`
	WallNUS    int64   `json:"wall_workersN_us"`
	Speedup    float64 `json:"speedup"`
	Violations int     `json:"violations"`
	// Identical is true when both worker counts produced byte-identical
	// sorted violations and equal Stats counters.
	Identical bool `json:"reports_identical"`
}

// SpeedupReport is the whole experiment, serialized to BENCH_workers.json.
type SpeedupReport struct {
	GOMAXPROCS int          `json:"gomaxprocs"`
	Workers    int          `json:"workers"`
	Scale      float64      `json:"scale"`
	Runs       int          `json:"runs_per_cell"`
	Rows       []SpeedupRow `json:"rows"`
}

// speedupRun checks the full standard deck on lo with the given mode and
// worker count and returns the report; wall time is the minimum over runs
// to damp scheduler noise.
func speedupRun(ctx context.Context, lo *layout.Layout, mode core.Mode, workers, runs int) (*core.Report, time.Duration, error) {
	var best *core.Report
	var wall time.Duration
	for i := 0; i < runs; i++ {
		eng := core.New(core.Options{Mode: mode, Workers: workers})
		if err := eng.AddRules(synth.Deck()...); err != nil {
			return nil, 0, err
		}
		rep, err := eng.CheckContext(ctx, lo)
		if err != nil {
			return nil, 0, err
		}
		if best == nil || rep.HostWall < wall {
			best = rep
			wall = rep.HostWall
		}
	}
	return best, wall, nil
}

// Speedup runs the experiment over the given layouts (use Layouts(scale)).
// workers <= 0 selects GOMAXPROCS; runs is the repetitions per cell (min is
// reported), at least 1.
func Speedup(layouts map[string]*layout.Layout, workers, runs int, scale float64) (*SpeedupReport, error) {
	return SpeedupContext(context.Background(), layouts, workers, runs, scale)
}

// SpeedupContext is Speedup under a context; cancellation aborts between
// runs.
func SpeedupContext(ctx context.Context, layouts map[string]*layout.Layout, workers, runs int, scale float64) (*SpeedupReport, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if runs < 1 {
		runs = 1
	}
	out := &SpeedupReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    workers,
		Scale:      scale,
		Runs:       runs,
	}
	for _, mode := range []core.Mode{core.Sequential, core.Parallel} {
		for _, design := range DesignNames() {
			lo := layouts[design]
			if lo == nil {
				continue
			}
			rep1, wall1, err := speedupRun(ctx, lo, mode, 1, runs)
			if err != nil {
				return nil, fmt.Errorf("%s %s workers=1: %w", design, mode, err)
			}
			repN, wallN, err := speedupRun(ctx, lo, mode, workers, runs)
			if err != nil {
				return nil, fmt.Errorf("%s %s workers=%d: %w", design, mode, workers, err)
			}
			row := SpeedupRow{
				Design:     design,
				Mode:       mode.String(),
				Wall1US:    wall1.Microseconds(),
				WallNUS:    wallN.Microseconds(),
				Violations: len(rep1.Violations),
				Identical: reflect.DeepEqual(rep1.Violations, repN.Violations) &&
					rep1.Stats == repN.Stats,
			}
			if wallN > 0 {
				row.Speedup = float64(wall1) / float64(wallN)
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// WriteJSON serializes the report.
func (r *SpeedupReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteTo renders an aligned text table.
func (r *SpeedupReport) WriteTo(w io.Writer) (int64, error) {
	var total int64
	p := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	if err := p("Engine wall time, Workers=1 vs Workers=%d (GOMAXPROCS %d, scale %g, min of %d runs)\n",
		r.Workers, r.GOMAXPROCS, r.Scale, r.Runs); err != nil {
		return total, err
	}
	if err := p("%-8s %-10s %12s %12s %8s %8s %10s\n",
		"design", "mode", "workers=1", fmt.Sprintf("workers=%d", r.Workers), "speedup", "viols", "identical"); err != nil {
		return total, err
	}
	for _, row := range r.Rows {
		if err := p("%-8s %-10s %12s %12s %7.2fx %8d %10v\n",
			row.Design, row.Mode,
			fmtDur(time.Duration(row.Wall1US)*time.Microsecond),
			fmtDur(time.Duration(row.WallNUS)*time.Microsecond),
			row.Speedup, row.Violations, row.Identical); err != nil {
			return total, err
		}
	}
	return total, nil
}
