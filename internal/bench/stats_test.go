package bench

import (
	"strings"
	"testing"
	"time"
)

func TestBestDuration(t *testing.T) {
	cases := []struct {
		in   []time.Duration
		want time.Duration
	}{
		{nil, 0},
		{[]time.Duration{5}, 5},
		{[]time.Duration{3, 1, 2}, 1},
		// Contaminated samples — however many — must not move the result:
		// external load only ever adds time, so the min is the estimate of
		// the uncontended cost.
		{[]time.Duration{1000, 11, 900, 1000, 9}, 9},
	}
	for _, c := range cases {
		if got := bestDuration(c.in); got != c.want {
			t.Errorf("best(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// The input must not be reordered (samples stay in run order).
	s := []time.Duration{3, 1, 2}
	bestDuration(s)
	if s[0] != 3 || s[1] != 1 || s[2] != 2 {
		t.Errorf("best mutated its input: %v", s)
	}
}

func TestSpeedupGate(t *testing.T) {
	rep := &SpeedupReport{Workers: 4, Rows: []SpeedupRow{
		{Design: "a", Mode: "sequential", Speedup: 1.5, Identical: true},
		{Design: "b", Mode: "parallel", Speedup: 1.0, Identical: true, Degenerate: true},
	}}
	if err := rep.Gate(); err != nil {
		t.Errorf("clean report gated: %v", err)
	}
	rep.Rows = append(rep.Rows, SpeedupRow{Design: "c", Mode: "parallel", Speedup: 0.9, Identical: true})
	err := rep.Gate()
	if err == nil || !strings.Contains(err.Error(), "c/parallel") {
		t.Errorf("sub-1.0 speedup not gated: %v", err)
	}
	rep.Rows = []SpeedupRow{{Design: "d", Mode: "sequential", Speedup: 2, Identical: false}}
	if err := rep.Gate(); err == nil {
		t.Error("non-identical reports not gated")
	}
}

func TestReuseGate(t *testing.T) {
	rep := &ReuseReport{Rows: []ReuseRow{
		{Design: "a", Mode: "parallel", Improvement: 1.4, Identical: true},
	}}
	if err := rep.Gate(); err != nil {
		t.Errorf("clean report gated: %v", err)
	}
	rep.Rows = append(rep.Rows, ReuseRow{Design: "b", Mode: "sequential", Improvement: 0.8, Identical: true})
	if err := rep.Gate(); err == nil {
		t.Error("sub-1.0 improvement not gated")
	}
	rep.Rows = []ReuseRow{{Design: "c", Mode: "parallel", Improvement: 1.2, Identical: false}}
	if err := rep.Gate(); err == nil {
		t.Error("non-identical reports not gated")
	}
	// A sub-noise-floor row may dip below 1.0 without gating (its ratio is
	// timer noise), but a mismatched report on such a row still gates.
	rep.Rows = []ReuseRow{{Design: "d", Mode: "sequential", Improvement: 0.9, Identical: true, BelowNoiseFloor: true}}
	if err := rep.Gate(); err != nil {
		t.Errorf("noise-floor row gated on improvement: %v", err)
	}
	rep.Rows = []ReuseRow{{Design: "e", Mode: "sequential", Improvement: 1.1, Identical: false, BelowNoiseFloor: true}}
	if err := rep.Gate(); err == nil {
		t.Error("non-identical noise-floor row not gated")
	}
}

// TestReuseNoiseFloorMark pins where the marker comes from: both sides'
// best-of-runs under the floor.
func TestReuseNoiseFloorMark(t *testing.T) {
	if reuseNoiseFloor != time.Millisecond {
		t.Fatalf("noise floor = %v, want 1ms (update the docs if intentional)", reuseNoiseFloor)
	}
}
