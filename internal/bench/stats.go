package bench

import (
	"slices"
	"time"
)

// bestDuration returns the smallest sample; zero for no samples. The
// experiments report the best of several interleaved runs: each sample
// re-executes the identical deterministic work, so the only per-sample
// variance is external contamination — scheduler preemption, a neighbor
// tenant's load, timer coarseness — and contamination is strictly additive
// (nothing ever makes a run finish faster than its uncontended cost). The
// minimum is therefore a consistent estimator of the true cost, while a
// median still lets a sustained throughput dip that covers half the
// measurement window bias one side of an A/B ratio (observed on shared
// hosts: ~2× machine-wide swings lasting whole seconds). Intrinsic costs —
// including GC provoked by the run's own allocations — recur in every
// sample and survive the min.
func bestDuration(s []time.Duration) time.Duration {
	if len(s) == 0 {
		return 0
	}
	return slices.Min(s)
}

// percentileDuration returns the p-quantile (0 < p <= 1) of the samples by
// the nearest-rank method; zero for no samples. Unlike the A/B experiments
// above, the fairness sweep reports tail latency — contamination from the
// co-tenant load is the phenomenon under measurement, not noise to
// discard — so percentiles, not the minimum, are the right summary.
func percentileDuration(s []time.Duration, p float64) time.Duration {
	if len(s) == 0 {
		return 0
	}
	sorted := slices.Clone(s)
	slices.Sort(sorted)
	idx := int(p*float64(len(sorted))+0.999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
