package layout

import (
	"sort"
	"testing"

	"opendrc/internal/gdsii"
	"opendrc/internal/geom"
)

// flatBoxes returns the layer's instance-expanded boxes, sorted — the
// derived-state fingerprint the edit tests compare against fresh builds.
func flatBoxes(lo *Layout, l Layer) []geom.Rect {
	var out []geom.Rect
	for _, pp := range lo.FlattenLayer(l) {
		out = append(out, pp.Shape.MBR())
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.YLo != b.YLo {
			return a.YLo < b.YLo
		}
		if a.XLo != b.XLo {
			return a.XLo < b.XLo
		}
		if a.YHi != b.YHi {
			return a.YHi < b.YHi
		}
		return a.XHi < b.XHi
	})
	return out
}

func sameBoxes(a, b []geom.Rect) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// requireSameDerivedState compares every piece of derived per-layer state an
// edit must keep consistent against a freshly built layout: flatten output,
// layer MBRs, edge counts, subtree counts, and the layout-level indices.
func requireSameDerivedState(t *testing.T, got, want *Layout) {
	t.Helper()
	layers := map[Layer]bool{}
	for _, l := range got.Layers() {
		layers[l] = true
	}
	for _, l := range want.Layers() {
		layers[l] = true
	}
	for l := range layers {
		if g, w := flatBoxes(got, l), flatBoxes(want, l); !sameBoxes(g, w) {
			t.Errorf("layer %v: flatten %v, want %v", l, g, w)
		}
		if g, w := got.Top.LayerMBR(l), want.Top.LayerMBR(l); g != w {
			t.Errorf("layer %v: top MBR %v, want %v", l, g, w)
		}
		if g, w := got.Top.SubtreePolyCount(l), want.Top.SubtreePolyCount(l); g != w {
			t.Errorf("layer %v: subtree count %d, want %d", l, g, w)
		}
		if g, w := got.Top.localEdgeCount[l], want.Top.localEdgeCount[l]; g != w {
			t.Errorf("layer %v: local edge count %d, want %d", l, g, w)
		}
		if g, w := len(got.layerCells[l]), len(want.layerCells[l]); g != w {
			t.Errorf("layer %v: %d member cells, want %d", l, g, w)
		}
		if g, w := got.NumPolysOnLayer(l), want.NumPolysOnLayer(l); g != w {
			t.Errorf("layer %v: inverted index has %d polys, want %d", l, g, w)
		}
	}
	if got.Top.mbr != want.Top.mbr {
		t.Errorf("top cell MBR %v, want %v", got.Top.mbr, want.Top.mbr)
	}
}

func TestApplyEditsInsertMatchesFreshBuild(t *testing.T) {
	lo := build(t)
	rect := geom.R(100, 400, 300, 500)
	dirty, err := lo.ApplyEdits([]Edit{{Op: OpInsertRect, Layer: LayerM2, Rect: rect}})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirty) != 1 || dirty[0].Layer != LayerM2 || dirty[0].Inserted != 1 ||
		dirty[0].Deleted != 0 || len(dirty[0].Rects) != 1 || dirty[0].Rects[0] != rect {
		t.Fatalf("dirty = %+v", dirty)
	}

	// A fresh build of the post-edit geometry is the ground truth.
	lib := testLibrary()
	for _, st := range lib.Structures {
		if st.Name == "TOP" {
			st.Boundaries = append(st.Boundaries, gdsii.Boundary{
				Layer: int16(LayerM2), XY: []geom.Point{
					geom.Pt(100, 400), geom.Pt(100, 500), geom.Pt(300, 500), geom.Pt(300, 400),
				},
			})
		}
	}
	want, err := FromLibrary(lib)
	if err != nil {
		t.Fatal(err)
	}
	requireSameDerivedState(t, lo, want)

	// The inserted polygon is visible to window queries over its region.
	hits, _ := lo.QueryLayer(LayerM2, rect)
	found := false
	for _, pp := range hits {
		if pp.Shape.MBR() == rect {
			found = true
		}
	}
	if !found {
		t.Fatalf("inserted rect not returned by QueryLayer: %d hits", len(hits))
	}
}

func TestApplyEditsDeleteRegion(t *testing.T) {
	lo := build(t)
	a := geom.R(0, 2000, 100, 2100)
	b := geom.R(500, 2000, 600, 2100)
	if _, err := lo.ApplyEdits([]Edit{
		{Op: OpInsertRect, Layer: LayerM1, Rect: a},
		{Op: OpInsertRect, Layer: LayerM1, Rect: b},
	}); err != nil {
		t.Fatal(err)
	}
	slots := len(lo.Top.Polys)
	before := len(flatBoxes(lo, LayerM1))

	// Delete a window overlapping only rect a. The dirty rect is the deleted
	// polygon's whole MBR, not the (smaller) delete window.
	dirty, err := lo.ApplyEdits([]Edit{{Op: OpDeleteRegion, Layer: LayerM1, Rect: geom.R(50, 2050, 60, 2060)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirty) != 1 || dirty[0].Deleted != 1 || len(dirty[0].Rects) != 1 || dirty[0].Rects[0] != a {
		t.Fatalf("dirty = %+v", dirty)
	}
	if got := len(flatBoxes(lo, LayerM1)); got != before-1 {
		t.Fatalf("flatten has %d polys after delete, want %d", got, before-1)
	}
	// The slot survives as an orphan — positional Src.Idx values held by
	// consumers stay valid — but no index or query can reach it.
	if len(lo.Top.Polys) != slots {
		t.Fatalf("delete compacted Polys: %d slots, want %d", len(lo.Top.Polys), slots)
	}
	orphans := 0
	for i := range lo.Top.Polys {
		if lo.Top.Polys[i].Layer == orphanLayer {
			orphans++
		}
	}
	if orphans != 1 {
		t.Fatalf("%d orphan slots, want 1", orphans)
	}
	hits, _ := lo.QueryLayer(LayerM1, a)
	for _, pp := range hits {
		if pp.Shape.MBR() == a {
			t.Fatal("deleted polygon still visible to QueryLayer")
		}
	}

	// Child-instance geometry is out of an edit's reach: deleting a region
	// that only covers CELLA instances changes nothing and dirties nothing.
	dirty, err = lo.ApplyEdits([]Edit{{Op: OpDeleteRegion, Layer: LayerM1, Rect: geom.R(0, 0, 700, 80)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirty) != 1 || dirty[0].Deleted != 0 || len(dirty[0].Rects) != 0 {
		t.Fatalf("no-op delete dirty = %+v", dirty)
	}
	if got := len(flatBoxes(lo, LayerM1)); got != before-1 {
		t.Fatalf("no-op delete changed the flatten: %d polys", got)
	}
}

func TestApplyEditsDeleteMatchesFreshBuild(t *testing.T) {
	lo := build(t)
	keep := geom.R(100, 400, 300, 500)
	gone := geom.R(0, 3000, 50, 3050)
	if _, err := lo.ApplyEdits([]Edit{
		{Op: OpInsertRect, Layer: LayerM2, Rect: keep},
		{Op: OpInsertRect, Layer: LayerM1, Rect: gone},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := lo.ApplyEdits([]Edit{{Op: OpDeleteRegion, Layer: LayerM1, Rect: gone}}); err != nil {
		t.Fatal(err)
	}

	lib := testLibrary()
	for _, st := range lib.Structures {
		if st.Name == "TOP" {
			st.Boundaries = append(st.Boundaries, gdsii.Boundary{
				Layer: int16(LayerM2), XY: []geom.Point{
					geom.Pt(100, 400), geom.Pt(100, 500), geom.Pt(300, 500), geom.Pt(300, 400),
				},
			})
		}
	}
	want, err := FromLibrary(lib)
	if err != nil {
		t.Fatal(err)
	}
	requireSameDerivedState(t, lo, want)
}

func TestApplyEditsValidation(t *testing.T) {
	lo := build(t)
	before := flatBoxes(lo, LayerM1)
	slots := len(lo.Top.Polys)
	bad := [][]Edit{
		{{Op: EditOp(9), Layer: LayerM1, Rect: geom.R(0, 0, 10, 10)}},
		{{Op: OpInsertRect, Layer: LayerM1, Rect: geom.R(5, 0, 5, 10)}},                         // zero width
		{{Op: OpInsertRect, Layer: LayerM1, Rect: geom.Rect{XLo: 10, YLo: 10, XHi: 0, YHi: 0}}}, // inverted
		{{Op: OpDeleteRegion, Layer: orphanLayer, Rect: geom.R(0, 0, 1, 1)}},                    // reserved
		{ // a valid edit followed by a bad one must not apply at all
			{Op: OpInsertRect, Layer: LayerM1, Rect: geom.R(0, 5000, 10, 5010)},
			{Op: EditOp(7), Layer: LayerM1, Rect: geom.R(0, 0, 1, 1)},
		},
	}
	for i, edits := range bad {
		if _, err := lo.ApplyEdits(edits); err == nil {
			t.Fatalf("case %d: no error", i)
		}
		if len(lo.Top.Polys) != slots {
			t.Fatalf("case %d: failed edit mutated Polys", i)
		}
		if !sameBoxes(flatBoxes(lo, LayerM1), before) {
			t.Fatalf("case %d: failed edit changed the flatten", i)
		}
	}

	if dirty, err := lo.ApplyEdits(nil); err != nil || dirty != nil {
		t.Fatalf("empty edit list = (%v, %v), want (nil, nil)", dirty, err)
	}
}
