package layout

import (
	"testing"

	"opendrc/internal/geom"
)

// TestSubtreePolyCount pins the build-time counts against the fixture
// hierarchy: TOP → 2×ROW → 4×CELLA.
func TestSubtreePolyCount(t *testing.T) {
	lo := build(t)
	ca := lo.CellByName("CELLA")
	row := lo.CellByName("ROW")
	cases := []struct {
		cell *Cell
		l    Layer
		want int
	}{
		{ca, LayerM1, 1},
		{ca, LayerV1, 1},
		{ca, LayerM2, 0},
		{row, LayerM1, 4}, // AREF 4×1
		{row, LayerM2, 1}, // local polygon
		{lo.Top, LayerM1, 8},
		{lo.Top, LayerM2, 2},
		{lo.Top, LayerV1, 8},
	}
	for _, c := range cases {
		if got := c.cell.SubtreePolyCount(c.l); got != c.want {
			t.Errorf("%s.SubtreePolyCount(%s) = %d, want %d",
				c.cell.Name, LayerName(c.l), got, c.want)
		}
	}
}

// TestFlattenLayerExactCapacity verifies the full-layer query allocates its
// result exactly once at the precomputed flat size.
func TestFlattenLayerExactCapacity(t *testing.T) {
	lo := build(t)
	out := lo.FlattenLayer(LayerM1)
	if len(out) != 8 {
		t.Fatalf("flatten size = %d, want 8", len(out))
	}
	if cap(out) != 8 {
		t.Errorf("flatten cap = %d, want exactly 8 (pre-sized, no growth)", cap(out))
	}
}

// TestCapHint checks the area-ratio estimator's boundary behavior; the hint
// only affects allocation, but a hint above the true total would waste the
// memory the pre-sizing is meant to save.
func TestCapHint(t *testing.T) {
	extent := geom.R(0, 0, 1000, 1000)
	if h := capHint(100, extent, extent); h != 100 {
		t.Errorf("full-window hint = %d, want the exact total 100", h)
	}
	if h := capHint(100, extent, geom.R(2000, 2000, 3000, 3000)); h != 0 {
		t.Errorf("disjoint-window hint = %d, want 0", h)
	}
	if h := capHint(0, extent, extent); h != 0 {
		t.Errorf("empty-layer hint = %d, want 0", h)
	}
	h := capHint(100, extent, geom.R(0, 0, 100, 100))
	if h <= 0 || h > 100 {
		t.Errorf("small-window hint = %d, want within (0, 100]", h)
	}
	// QueryLayer results must match regardless of the hint: same window as
	// the pruning test, checked for content here.
	lo := build(t)
	got, _ := lo.QueryLayer(LayerM1, geom.R(0, 0, 50, 50))
	if len(got) != 1 {
		t.Errorf("windowed query hit %d polys, want 1", len(got))
	}
}
