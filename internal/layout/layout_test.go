package layout

import (
	"strings"
	"testing"

	"opendrc/internal/gdsii"
	"opendrc/internal/geom"
)

// testLibrary builds a 3-level hierarchy:
//
//	TOP ── SREF ROW ×2 (at y=0 and y=1000, the second mirrored)
//	ROW ── AREF CELLA 4×1 (pitch 200)  +  one local M2 polygon
//	CELLA ── M1 polygon (100×80) + V1 via (20×20)
func testLibrary() *gdsii.Library {
	return &gdsii.Library{
		Name: "hier", UserUnit: 1e-3, MeterUnit: 1e-9,
		Structures: []*gdsii.Structure{
			{
				Name: "CELLA",
				Boundaries: []gdsii.Boundary{
					{Layer: int16(LayerM1), XY: []geom.Point{
						geom.Pt(0, 0), geom.Pt(0, 80), geom.Pt(100, 80), geom.Pt(100, 0),
					}},
					{Layer: int16(LayerV1), XY: []geom.Point{
						geom.Pt(40, 30), geom.Pt(40, 50), geom.Pt(60, 50), geom.Pt(60, 30),
					}},
				},
			},
			{
				Name: "ROW",
				Boundaries: []gdsii.Boundary{
					{Layer: int16(LayerM2), XY: []geom.Point{
						geom.Pt(0, 90), geom.Pt(0, 100), geom.Pt(800, 100), geom.Pt(800, 90),
					}},
				},
				ARefs: []gdsii.ARef{{
					Name: "CELLA", Cols: 4, Rows: 1,
					Origin: geom.Pt(0, 0), ColEnd: geom.Pt(800, 0), RowEnd: geom.Pt(0, 100),
				}},
			},
			{
				Name: "TOP",
				SRefs: []gdsii.SRef{
					{Name: "ROW", Pos: geom.Pt(0, 0)},
					{Name: "ROW", Pos: geom.Pt(0, 1000), Trans: gdsii.Trans{Reflect: true}},
				},
			},
		},
	}
}

func build(t *testing.T) *Layout {
	t.Helper()
	lo, err := FromLibrary(testLibrary())
	if err != nil {
		t.Fatal(err)
	}
	return lo
}

func TestTopologicalOrder(t *testing.T) {
	lo := build(t)
	pos := map[string]int{}
	for i, c := range lo.Cells {
		pos[c.Name] = i
		if c.ID != i {
			t.Errorf("cell %s ID=%d at index %d", c.Name, c.ID, i)
		}
	}
	if !(pos["CELLA"] < pos["ROW"] && pos["ROW"] < pos["TOP"]) {
		t.Errorf("not topological: %v", pos)
	}
	if lo.Top.Name != "TOP" {
		t.Errorf("top = %s", lo.Top.Name)
	}
}

func TestLayerMBRs(t *testing.T) {
	lo := build(t)
	ca := lo.CellByName("CELLA")
	if got := ca.LayerMBR(LayerM1); got != geom.R(0, 0, 100, 80) {
		t.Errorf("CELLA M1 MBR = %v", got)
	}
	if got := ca.LayerMBR(LayerV1); got != geom.R(40, 30, 60, 50) {
		t.Errorf("CELLA V1 MBR = %v", got)
	}
	if !ca.LayerMBR(LayerM2).Empty() {
		t.Error("CELLA must have empty M2 MBR")
	}
	row := lo.CellByName("ROW")
	// AREF 4×1 pitch 200: instances at x=0,200,400,600; last box ends at 700.
	if got := row.LayerMBR(LayerM1); got != geom.R(0, 0, 700, 80) {
		t.Errorf("ROW M1 MBR = %v", got)
	}
	if got := row.LayerMBR(LayerM2); got != geom.R(0, 90, 800, 100) {
		t.Errorf("ROW M2 MBR = %v", got)
	}
	top := lo.Top
	// Second ROW is mirrored about x-axis then translated to y=1000: M1 box
	// [0,80] maps to [920,1000].
	if got := top.LayerMBR(LayerM1); got != geom.R(0, 0, 700, 1000) {
		t.Errorf("TOP M1 MBR = %v", got)
	}
	if !top.HasLayer(LayerV1) || top.HasLayer(LayerM3) {
		t.Error("HasLayer wrong on TOP")
	}
}

func TestLayerWiseTreesAndInvertedIndex(t *testing.T) {
	lo := build(t)
	m2cells := lo.LayerCells(LayerM2)
	for _, c := range m2cells {
		if c.Name == "CELLA" {
			t.Error("CELLA must not appear in the M2 duplicated tree")
		}
	}
	names := make([]string, len(m2cells))
	for i, c := range m2cells {
		names[i] = c.Name
	}
	if strings.Join(names, ",") != "ROW,TOP" {
		t.Errorf("M2 tree = %v", names)
	}
	if n := lo.NumPolysOnLayer(LayerM1); n != 1 {
		t.Errorf("M1 definitions = %d, want 1 (shared)", n)
	}
	if n := lo.NumInstancesOnLayer(LayerM1); n != 8 {
		t.Errorf("M1 instances = %d, want 8 (4 per row × 2 rows)", n)
	}
	if n := lo.NumInstancesOnLayer(LayerM2); n != 2 {
		t.Errorf("M2 instances = %d, want 2", n)
	}
}

func TestQueryLayerPruning(t *testing.T) {
	lo := build(t)
	// Window covering only the first CELLA of the bottom row.
	got, st := lo.QueryLayer(LayerM1, geom.R(0, 0, 50, 50))
	if len(got) != 1 {
		t.Fatalf("hits = %d, want 1", len(got))
	}
	if got[0].Shape.MBR() != geom.R(0, 0, 100, 80) {
		t.Errorf("hit shape MBR = %v", got[0].Shape.MBR())
	}
	if st.NodesPruned == 0 {
		t.Error("expected subtree pruning during narrow query")
	}
	// Whole-layer query returns all 8 instances.
	all, _ := lo.QueryLayer(LayerM1, lo.Top.LayerMBR(LayerM1))
	if len(all) != 8 {
		t.Errorf("full-layer hits = %d, want 8", len(all))
	}
	// Querying a layer absent from the subtree prunes everything.
	none, st2 := lo.QueryLayer(LayerM3, geom.R(0, 0, 1e6, 1e6))
	if len(none) != 0 {
		t.Errorf("M3 hits = %d", len(none))
	}
	if st2.PolysTested != 0 {
		t.Errorf("M3 query tested %d polys; pruning failed", st2.PolysTested)
	}
}

func TestFlattenLayerTransforms(t *testing.T) {
	lo := build(t)
	polys := lo.FlattenLayer(LayerM1)
	if len(polys) != 8 {
		t.Fatalf("flattened M1 = %d", len(polys))
	}
	// Collect MBRs; mirrored row must land at y in [920,1000].
	var sawMirrored bool
	for _, pp := range polys {
		r := pp.Shape.MBR()
		if r.YLo == 920 && r.YHi == 1000 {
			sawMirrored = true
		}
		if pp.Shape.Area() != 100*80 {
			t.Errorf("instance area = %d", pp.Shape.Area())
		}
	}
	if !sawMirrored {
		t.Error("mirrored row instances missing")
	}
}

func TestTopPlacements(t *testing.T) {
	lo := build(t)
	tp := lo.TopPlacements()
	if len(tp) != 2 {
		t.Fatalf("top placements = %d", len(tp))
	}
	if tp[0].MBR != geom.R(0, 0, 800, 100) {
		t.Errorf("row0 MBR = %v", tp[0].MBR)
	}
	if tp[1].MBR != geom.R(0, 900, 800, 1000) {
		t.Errorf("row1 MBR = %v", tp[1].MBR)
	}
}

func TestUndefinedReference(t *testing.T) {
	lib := testLibrary()
	lib.Structures[2].SRefs = append(lib.Structures[2].SRefs,
		gdsii.SRef{Name: "GHOST", Pos: geom.Pt(0, 0)})
	if _, err := FromLibrary(lib); err == nil || !strings.Contains(err.Error(), "GHOST") {
		t.Errorf("expected undefined-reference error, got %v", err)
	}
}

func TestReferenceCycle(t *testing.T) {
	lib := &gdsii.Library{
		Name: "cyc",
		Structures: []*gdsii.Structure{
			{Name: "A", SRefs: []gdsii.SRef{{Name: "B", Pos: geom.Pt(0, 0)}}},
			{Name: "B", SRefs: []gdsii.SRef{{Name: "A", Pos: geom.Pt(0, 0)}}},
		},
	}
	if _, err := FromLibrary(lib); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("expected cycle error, got %v", err)
	}
}

func TestDuplicateStructure(t *testing.T) {
	lib := &gdsii.Library{
		Name: "dup",
		Structures: []*gdsii.Structure{
			{Name: "A", Boundaries: []gdsii.Boundary{{Layer: 1, XY: []geom.Point{
				geom.Pt(0, 0), geom.Pt(0, 1), geom.Pt(1, 1), geom.Pt(1, 0)}}}},
			{Name: "A"},
		},
	}
	if _, err := FromLibrary(lib); err == nil {
		t.Error("expected duplicate-structure error")
	}
}

func TestExpandPath(t *testing.T) {
	p := gdsii.Path{Layer: 3, Width: 20, XY: []geom.Point{
		geom.Pt(0, 0), geom.Pt(100, 0), geom.Pt(100, 200),
	}}
	polys, err := ExpandPath(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(polys) != 2 {
		t.Fatalf("segments = %d", len(polys))
	}
	if polys[0].MBR() != geom.R(0, -10, 100, 10) {
		t.Errorf("h segment = %v", polys[0].MBR())
	}
	if polys[1].MBR() != geom.R(90, 0, 110, 200) {
		t.Errorf("v segment = %v", polys[1].MBR())
	}
	// Extended ends grow first/last segments by half width.
	p.PathType = gdsii.PathExtended
	polys, err = ExpandPath(p)
	if err != nil {
		t.Fatal(err)
	}
	if polys[0].MBR() != geom.R(-10, -10, 100, 10) {
		t.Errorf("extended h segment = %v", polys[0].MBR())
	}
	if polys[1].MBR() != geom.R(90, 0, 110, 210) {
		t.Errorf("extended v segment = %v", polys[1].MBR())
	}
	// Error paths.
	if _, err := ExpandPath(gdsii.Path{Width: 0, XY: p.XY}); err == nil {
		t.Error("expected error for zero width")
	}
	if _, err := ExpandPath(gdsii.Path{Width: 15, XY: p.XY}); err == nil {
		t.Error("expected error for odd width")
	}
	diag := gdsii.Path{Width: 20, XY: []geom.Point{geom.Pt(0, 0), geom.Pt(50, 50)}}
	if _, err := ExpandPath(diag); err == nil {
		t.Error("expected error for diagonal segment")
	}
}

func TestLayersSorted(t *testing.T) {
	lo := build(t)
	ls := lo.Layers()
	for i := 1; i < len(ls); i++ {
		if ls[i-1] >= ls[i] {
			t.Errorf("layers not sorted: %v", ls)
		}
	}
	if len(ls) != 3 { // M1, M2, V1
		t.Errorf("layers = %v", ls)
	}
	cl := lo.CellByName("CELLA").Layers()
	if len(cl) != 2 || cl[0] != LayerM1 || cl[1] != LayerV1 {
		t.Errorf("CELLA layers = %v", cl)
	}
}

func TestLayerNames(t *testing.T) {
	if LayerName(LayerM1) != "M1" || LayerName(LayerV2) != "V2" {
		t.Error("well-known layer names wrong")
	}
	if LayerName(Layer(99)) != "L99" {
		t.Errorf("fallback name = %s", LayerName(Layer(99)))
	}
}

func TestLocalEdgeCount(t *testing.T) {
	lo := build(t)
	ca := lo.CellByName("CELLA")
	if got := ca.LocalEdgeCount(LayerM1); got != 4 {
		t.Errorf("M1 edges = %d", got)
	}
	if got := ca.LocalEdgeCount(LayerM2); got != 0 {
		t.Errorf("M2 edges = %d", got)
	}
	if idx := ca.LocalPolys(LayerV1); len(idx) != 1 || ca.Polys[idx[0]].Layer != LayerV1 {
		t.Errorf("LocalPolys(V1) = %v", idx)
	}
}

func TestFromLibraryWithPaths(t *testing.T) {
	lib := &gdsii.Library{
		Name: "paths", UserUnit: 1e-3, MeterUnit: 1e-9,
		Structures: []*gdsii.Structure{{
			Name: "TOP",
			Paths: []gdsii.Path{{
				Layer: int16(LayerM2), Width: 30,
				XY: []geom.Point{geom.Pt(0, 15), geom.Pt(400, 15)},
			}},
		}},
	}
	lo, err := FromLibrary(lib)
	if err != nil {
		t.Fatal(err)
	}
	polys := lo.FlattenLayer(LayerM2)
	if len(polys) != 1 {
		t.Fatalf("expanded paths = %d", len(polys))
	}
	if got := polys[0].Shape.MBR(); got != geom.R(0, 0, 400, 30) {
		t.Errorf("path polygon = %v", got)
	}
	// A bad path must fail the whole build with a located error.
	lib.Structures[0].Paths = append(lib.Structures[0].Paths, gdsii.Path{
		Layer: int16(LayerM2), Width: 30,
		XY: []geom.Point{geom.Pt(0, 0), geom.Pt(50, 50)},
	})
	if _, err := FromLibrary(lib); err == nil || !strings.Contains(err.Error(), "TOP") {
		t.Errorf("diagonal path accepted: %v", err)
	}
}

func TestPlacementsCounts(t *testing.T) {
	lo := build(t)
	placements := lo.Placements()
	if n := len(placements[lo.Top.ID]); n != 1 {
		t.Errorf("top placements = %d", n)
	}
	ca := lo.CellByName("CELLA")
	if n := len(placements[ca.ID]); n != 8 {
		t.Errorf("CELLA placements = %d, want 8", n)
	}
	row := lo.CellByName("ROW")
	if n := len(placements[row.ID]); n != 2 {
		t.Errorf("ROW placements = %d, want 2", n)
	}
	// Every CELLA placement must map its local M1 box into the global M1 MBR.
	topM1 := lo.Top.LayerMBR(LayerM1)
	for _, tr := range placements[ca.ID] {
		inst := tr.ApplyRect(ca.LayerMBR(LayerM1))
		if !topM1.ContainsRect(inst) {
			t.Errorf("placement %v escapes top M1 MBR", tr)
		}
	}
}

func TestQuerySubtreeLocalFrame(t *testing.T) {
	lo := build(t)
	row := lo.CellByName("ROW")
	// In ROW's local frame the M1 instances sit at x = 0,200,400,600.
	polys := lo.QuerySubtree(row, LayerM1, geom.R(0, 0, 150, 100))
	if len(polys) != 1 {
		t.Fatalf("subtree hits = %d", len(polys))
	}
	if got := polys[0].Shape.MBR(); got != geom.R(0, 0, 100, 80) {
		t.Errorf("local-frame shape = %v", got)
	}
}

func TestLayerDensity(t *testing.T) {
	lo := build(t)
	d := lo.LayerDensity(LayerM1)
	if d <= 0 || d > 1.01 {
		t.Errorf("M1 density = %g", d)
	}
	if lo.LayerDensity(LayerM3) != 0 {
		t.Error("absent layer density != 0")
	}
}

func TestCompressionStats(t *testing.T) {
	lo := build(t)
	st := lo.Compression()
	// Definitions: CELLA (2 polys), ROW (1), TOP (0) = 3 polys.
	// Instances: CELLA ×8 (16 polys) + ROW ×2 (2) + TOP ×1 (0) = 18.
	if st.DefinitionPolys != 3 || st.InstancePolys != 18 {
		t.Errorf("compression polys: %+v", st)
	}
	if st.InstanceCells != 11 || st.DefinitionCells != 3 {
		t.Errorf("compression cells: %+v", st)
	}
	if st.Ratio != 6 {
		t.Errorf("ratio = %g", st.Ratio)
	}
}
