package layout

import (
	"fmt"

	"opendrc/internal/gdsii"
	"opendrc/internal/geom"
)

// FromLibrary builds the hierarchical database from a parsed GDSII library:
// it resolves structure references (rejecting undefined names and cycles),
// expands PATH elements into boundary polygons, computes the per-layer MBR
// augmentation bottom-up, and constructs the layer-wise duplicated trees and
// inverted indices.
func FromLibrary(lib *gdsii.Library) (*Layout, error) {
	lo := &Layout{
		Name:   lib.Name,
		byName: make(map[string]*Cell),
	}
	if lib.MeterUnit > 0 {
		lo.DBUPerMeter = 1 / lib.MeterUnit
	} else {
		lo.DBUPerMeter = 1e9
	}
	lo.Warnings = append(lo.Warnings, lib.Warnings...)

	// First pass: create all cells so references can resolve forward.
	cells := make(map[string]*Cell, len(lib.Structures))
	for _, st := range lib.Structures {
		if _, dup := cells[st.Name]; dup {
			return nil, fmt.Errorf("layout: duplicate structure %q", st.Name)
		}
		cells[st.Name] = &Cell{Name: st.Name}
	}

	// Second pass: fill geometry and references.
	for _, st := range lib.Structures {
		c := cells[st.Name]
		for _, b := range st.Boundaries {
			poly, err := geom.NewPolygon(b.XY)
			if err != nil {
				return nil, fmt.Errorf("layout: %s: bad boundary: %w", st.Name, err)
			}
			c.Polys = append(c.Polys, Poly{Layer: Layer(b.Layer), DataType: b.DataType, Shape: poly})
		}
		for _, p := range st.Paths {
			polys, err := ExpandPath(p)
			if err != nil {
				return nil, fmt.Errorf("layout: %s: %w", st.Name, err)
			}
			for _, poly := range polys {
				c.Polys = append(c.Polys, Poly{Layer: Layer(p.Layer), DataType: p.DataType, Shape: poly})
			}
		}
		for _, t := range st.Texts {
			c.Labels = append(c.Labels, Label{Layer: Layer(t.Layer), Pos: t.Pos, Text: t.Str})
		}
		for _, r := range st.SRefs {
			child, ok := cells[r.Name]
			if !ok {
				return nil, fmt.Errorf("layout: %s references undefined structure %q", st.Name, r.Name)
			}
			tr, err := r.Trans.Transform(r.Pos)
			if err != nil {
				return nil, fmt.Errorf("layout: %s -> %s: %w", st.Name, r.Name, err)
			}
			c.Refs = append(c.Refs, Ref{Child: child, Trans: tr, Cols: 1, Rows: 1})
		}
		for _, r := range st.ARefs {
			child, ok := cells[r.Name]
			if !ok {
				return nil, fmt.Errorf("layout: %s references undefined structure %q", st.Name, r.Name)
			}
			tr, err := r.Trans.Transform(r.Origin)
			if err != nil {
				return nil, fmt.Errorf("layout: %s -> %s: %w", st.Name, r.Name, err)
			}
			cols, rows := int(r.Cols), int(r.Rows)
			colVec := r.ColEnd.Sub(r.Origin)
			rowVec := r.RowEnd.Sub(r.Origin)
			if colVec.X%int64(cols) != 0 || colVec.Y%int64(cols) != 0 ||
				rowVec.X%int64(rows) != 0 || rowVec.Y%int64(rows) != 0 {
				return nil, fmt.Errorf("layout: %s -> %s: AREF pitch not integral", st.Name, r.Name)
			}
			c.Refs = append(c.Refs, Ref{
				Child: child, Trans: tr, Cols: cols, Rows: rows,
				ColStep: geom.Pt(colVec.X/int64(cols), colVec.Y/int64(cols)),
				RowStep: geom.Pt(rowVec.X/int64(rows), rowVec.Y/int64(rows)),
			})
		}
	}

	// Topological order (children first); also detects reference cycles.
	order, err := topoSort(lib, cells)
	if err != nil {
		return nil, err
	}
	lo.Cells = order
	for i, c := range lo.Cells {
		c.ID = i
		lo.byName[c.Name] = c
	}

	lo.computeMBRs()
	lo.buildIndices()

	if err := lo.pickTop(lib); err != nil {
		return nil, err
	}
	return lo, nil
}

// topoSort orders cells children-before-parents via DFS, detecting cycles.
func topoSort(lib *gdsii.Library, cells map[string]*Cell) ([]*Cell, error) {
	const (
		white = 0 // unvisited
		gray  = 1 // on stack
		black = 2 // done
	)
	color := make(map[*Cell]int, len(cells))
	order := make([]*Cell, 0, len(cells))
	var visit func(c *Cell, path []string) error
	visit = func(c *Cell, path []string) error {
		switch color[c] {
		case gray:
			return fmt.Errorf("layout: reference cycle: %v -> %s", path, c.Name)
		case black:
			return nil
		}
		color[c] = gray
		for i := range c.Refs {
			if err := visit(c.Refs[i].Child, append(path, c.Name)); err != nil {
				return err
			}
		}
		color[c] = black
		order = append(order, c)
		return nil
	}
	// Visit in file order for deterministic IDs.
	for _, st := range lib.Structures {
		if err := visit(cells[st.Name], nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// computeMBRs fills per-layer and total MBRs bottom-up. Cells are already in
// topological order, so every child is finished before its parents.
func (lo *Layout) computeMBRs() {
	for _, c := range lo.Cells {
		c.layerMBR = make(map[Layer]geom.Rect)
		c.localEdgeCount = make(map[Layer]int)
		c.polysByLayer = make(map[Layer][]int32)
		c.subtreeCount = make(map[Layer]int)
		c.mbr = geom.EmptyRect()
		for i := range c.Polys {
			p := &c.Polys[i]
			r := p.Shape.MBR()
			c.layerMBR[p.Layer] = c.LayerMBR(p.Layer).Union(r)
			c.mbr = c.mbr.Union(r)
			c.localEdgeCount[p.Layer] += p.Shape.NumEdges()
			c.polysByLayer[p.Layer] = append(c.polysByLayer[p.Layer], int32(i))
			c.subtreeCount[p.Layer]++
		}
		for ri := range c.Refs {
			ref := &c.Refs[ri]
			child := ref.Child
			// Array instance offsets are linear in (col, row), so the MBR
			// of the whole array is the union of the four corner-instance
			// boxes — no need to visit all cols × rows placements.
			corners := [4][2]int{
				{0, 0}, {ref.Cols - 1, 0}, {0, ref.Rows - 1}, {ref.Cols - 1, ref.Rows - 1},
			}
			for _, l := range child.Layers() {
				childR := child.layerMBR[l]
				if childR.Empty() {
					continue
				}
				u := c.LayerMBR(l)
				for _, cr := range corners {
					u = u.Union(ref.Placement(cr[0], cr[1]).ApplyRect(childR))
				}
				c.layerMBR[l] = u
				// Children finish before parents (topological order), so the
				// child's subtree count is final here; the whole array
				// contributes one subtree per placement.
				c.subtreeCount[l] += ref.NumPlacements() * child.subtreeCount[l]
			}
			if !child.mbr.Empty() {
				for _, cr := range corners {
					c.mbr = c.mbr.Union(ref.Placement(cr[0], cr[1]).ApplyRect(child.mbr))
				}
			}
		}
	}
}

// buildIndices constructs the layer-wise duplicated hierarchy trees and the
// element-level inverted indices.
func (lo *Layout) buildIndices() {
	lo.layerCells = make(map[Layer][]int)
	lo.inverted = make(map[Layer][]PolyRef)
	for _, c := range lo.Cells { // topological order is preserved per layer
		for _, l := range c.Layers() {
			if !c.layerMBR[l].Empty() {
				lo.layerCells[l] = append(lo.layerCells[l], c.ID)
			}
		}
		for i := range c.Polys {
			p := &c.Polys[i]
			lo.inverted[p.Layer] = append(lo.inverted[p.Layer], PolyRef{Cell: c, Idx: i})
		}
	}
}

// pickTop selects the hierarchy root.
func (lo *Layout) pickTop(lib *gdsii.Library) error {
	tops := lib.TopStructures()
	if len(tops) == 0 {
		return fmt.Errorf("layout: no top structure (every cell is referenced)")
	}
	best := lo.byName[tops[0].Name]
	for _, t := range tops[1:] {
		c := lo.byName[t.Name]
		if c.MBR().Area() > best.MBR().Area() {
			best = c
		}
	}
	if len(tops) > 1 {
		lo.Warnings = append(lo.Warnings,
			fmt.Sprintf("layout: %d top-level structures; using %q", len(tops), best.Name))
	}
	lo.Top = best
	return nil
}

// ExpandPath converts a GDSII PATH into boundary polygons, one rectangle per
// axis-aligned segment. Round ends (PathRound) are approximated by extended
// square ends, the standard conservative treatment for Manhattan DRC.
func ExpandPath(p gdsii.Path) ([]geom.Polygon, error) {
	if p.Width <= 0 {
		return nil, fmt.Errorf("layout: PATH with non-positive width %d", p.Width)
	}
	if p.Width%2 != 0 {
		return nil, fmt.Errorf("layout: PATH width %d is odd; half-width leaves the unit grid", p.Width)
	}
	half := int64(p.Width) / 2
	extend := int64(0)
	if p.PathType == gdsii.PathExtended || p.PathType == gdsii.PathRound {
		extend = half
	}
	var out []geom.Polygon
	for i := 0; i+1 < len(p.XY); i++ {
		a, b := p.XY[i], p.XY[i+1]
		var r geom.Rect
		switch {
		case a.Y == b.Y && a.X != b.X: // horizontal
			lo, hi := minI64(a.X, b.X), maxI64(a.X, b.X)
			if i == 0 {
				lo -= boolInt(a.X < b.X) * extend
				hi += boolInt(a.X > b.X) * extend
			}
			if i+2 == len(p.XY) {
				hi += boolInt(a.X < b.X) * extend
				lo -= boolInt(a.X > b.X) * extend
			}
			r = geom.R(lo, a.Y-half, hi, a.Y+half)
		case a.X == b.X && a.Y != b.Y: // vertical
			lo, hi := minI64(a.Y, b.Y), maxI64(a.Y, b.Y)
			if i == 0 {
				lo -= boolInt(a.Y < b.Y) * extend
				hi += boolInt(a.Y > b.Y) * extend
			}
			if i+2 == len(p.XY) {
				hi += boolInt(a.Y < b.Y) * extend
				lo -= boolInt(a.Y > b.Y) * extend
			}
			r = geom.R(a.X-half, lo, a.X+half, hi)
		default:
			return nil, fmt.Errorf("layout: non-rectilinear PATH segment %v -> %v", a, b)
		}
		out = append(out, geom.RectPolygon(r))
	}
	return out, nil
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
