package layout

import (
	"fmt"
	"sort"

	"opendrc/internal/geom"
)

// In-place layout editing. Incremental flows (the odrcd edit endpoint, the
// delta benchmark) mutate a resident layout between checks instead of
// reloading it: rectangles are inserted into — and regions deleted from —
// the top cell, which is where ECO-style changes land in practice (routing
// fixes, fill insertion, spare-cell hookup). Child cell definitions are
// immutable; an edit that must touch library geometry is a new library.
//
// ApplyEdits keeps every derived index consistent (per-layer MBRs, local
// poly indices, subtree counts, the layer-wise duplicated hierarchy, and the
// inverted index) and reports, per layer, the dirty rectangles — the exact
// regions where geometry appeared or disappeared — which the session layer
// dilates by the deck's guard distance to plan incremental re-checks.

// orphanLayer marks a deleted polygon slot. Slots are never compacted:
// PlacedPoly.Src.Idx values held by downstream consumers (label lookup in
// the KLayout export) index Cell.Polys positionally, so deletion leaves a
// hole that no per-layer index references instead of shifting its neighbors.
const orphanLayer Layer = -32768

// EditOp selects an edit operation.
type EditOp uint8

// Edit operations.
const (
	// OpInsertRect inserts one rectangle polygon into the top cell.
	OpInsertRect EditOp = iota
	// OpDeleteRegion deletes every top-cell polygon on the layer whose MBR
	// overlaps the rectangle (touching counts, matching geom.Rect.Overlaps).
	// Geometry inside child instances is untouched.
	OpDeleteRegion
)

// String implements fmt.Stringer.
func (op EditOp) String() string {
	if op == OpDeleteRegion {
		return "delete_region"
	}
	return "insert_rect"
}

// Edit is one layout mutation.
type Edit struct {
	Op    EditOp
	Layer Layer
	Rect  geom.Rect
}

// LayerDirty reports the effect of one ApplyEdits call on one layer: how
// many polygons appeared and disappeared, and the dirty rectangles covering
// every changed polygon's MBR (one rect per edit that changed something).
// Deletes contribute the union of the deleted polygons' MBRs — a polygon
// overhanging the delete window is removed whole, so its whole box is dirty.
// An edit that changes nothing (a delete matching no polygon) contributes no
// rect, letting callers skip invalidation entirely.
type LayerDirty struct {
	Layer    Layer
	Rects    []geom.Rect
	Inserted int
	Deleted  int
}

// Union returns the bounding box of the layer's dirty rects (empty when the
// edits changed nothing on the layer).
func (d *LayerDirty) Union() geom.Rect {
	u := geom.EmptyRect()
	for _, r := range d.Rects {
		u = u.Union(r)
	}
	return u
}

// ApplyEdits applies the edits to the top cell in order and refreshes every
// derived index the edits touched. It returns the per-layer dirty summary
// sorted by layer. On error the layout is unchanged (edits are validated
// before any is applied).
func (lo *Layout) ApplyEdits(edits []Edit) ([]LayerDirty, error) {
	if len(edits) == 0 {
		return nil, nil
	}
	for i, ed := range edits {
		if ed.Op != OpInsertRect && ed.Op != OpDeleteRegion {
			return nil, fmt.Errorf("layout: edit %d: unknown op %d", i, ed.Op)
		}
		if ed.Layer == orphanLayer {
			return nil, fmt.Errorf("layout: edit %d: reserved layer %d", i, int(ed.Layer))
		}
		if ed.Rect.Empty() || (ed.Op == OpInsertRect && (ed.Rect.Width() <= 0 || ed.Rect.Height() <= 0)) {
			return nil, fmt.Errorf("layout: edit %d: degenerate rect %v", i, ed.Rect)
		}
	}

	top := lo.Top
	acc := make(map[Layer]*LayerDirty)
	touch := func(l Layer) *LayerDirty {
		d := acc[l]
		if d == nil {
			d = &LayerDirty{Layer: l}
			acc[l] = d
		}
		return d
	}
	for _, ed := range edits {
		d := touch(ed.Layer)
		switch ed.Op {
		case OpInsertRect:
			idx := len(top.Polys)
			top.Polys = append(top.Polys, Poly{Layer: ed.Layer, Shape: geom.RectPolygon(ed.Rect)})
			// Appended indices are the largest so far, so the per-layer index
			// stays in ascending poly order — the order buildIndices produced.
			top.polysByLayer[ed.Layer] = append(top.polysByLayer[ed.Layer], int32(idx))
			d.Inserted++
			d.Rects = append(d.Rects, ed.Rect)
		case OpDeleteRegion:
			gone := geom.EmptyRect()
			kept := top.polysByLayer[ed.Layer][:0]
			for _, pi := range top.polysByLayer[ed.Layer] {
				p := &top.Polys[pi]
				if p.Shape.MBR().Overlaps(ed.Rect) {
					gone = gone.Union(p.Shape.MBR())
					p.Layer = orphanLayer
					p.Shape = geom.Polygon{}
					d.Deleted++
					continue
				}
				kept = append(kept, pi)
			}
			top.polysByLayer[ed.Layer] = kept
			if !gone.Empty() {
				d.Rects = append(d.Rects, gone)
			}
		}
	}

	layers := make([]Layer, 0, len(acc))
	for l := range acc {
		layers = append(layers, l)
	}
	sort.Slice(layers, func(i, j int) bool { return layers[i] < layers[j] })
	out := make([]LayerDirty, 0, len(layers))
	for _, l := range layers {
		lo.refreshTopLayer(l)
		out = append(out, *acc[l])
	}
	lo.refreshTopMBR()
	return out, nil
}

// refreshTopLayer recomputes the top cell's derived per-layer state and the
// layout-level indices for one edited layer, mirroring what computeMBRs and
// buildIndices produced at load time. Children are untouched by edits, so
// their bottom-up aggregates are still valid inputs here.
func (lo *Layout) refreshTopLayer(l Layer) {
	top := lo.Top
	idx := top.polysByLayer[l]
	mbr := geom.EmptyRect()
	edges := 0
	for _, pi := range idx {
		mbr = mbr.Union(top.Polys[pi].Shape.MBR())
		edges += top.Polys[pi].Shape.NumEdges()
	}
	count := len(idx)
	for ri := range top.Refs {
		ref := &top.Refs[ri]
		childR := ref.Child.LayerMBR(l)
		if childR.Empty() {
			continue
		}
		for _, cr := range refCorners(ref) {
			mbr = mbr.Union(ref.Placement(cr[0], cr[1]).ApplyRect(childR))
		}
		count += ref.NumPlacements() * ref.Child.subtreeCount[l]
	}
	if len(idx) == 0 {
		delete(top.polysByLayer, l)
	}
	setOrDelete := func(m map[Layer]int, v int) {
		if v == 0 {
			delete(m, l)
		} else {
			m[l] = v
		}
	}
	setOrDelete(top.localEdgeCount, edges)
	setOrDelete(top.subtreeCount, count)
	if mbr.Empty() {
		delete(top.layerMBR, l)
	} else {
		top.layerMBR[l] = mbr
	}

	// Rebuild the layer's duplicated-hierarchy membership and inverted index
	// from scratch in cell order — the same order buildIndices used, so an
	// edited layout is indistinguishable from one loaded in this state.
	var cells []int
	var inv []PolyRef
	for _, c := range lo.Cells {
		if !c.LayerMBR(l).Empty() {
			cells = append(cells, c.ID)
		}
		for _, pi := range c.polysByLayer[l] {
			inv = append(inv, PolyRef{Cell: c, Idx: int(pi)})
		}
	}
	if len(cells) == 0 {
		delete(lo.layerCells, l)
	} else {
		lo.layerCells[l] = cells
	}
	if len(inv) == 0 {
		delete(lo.inverted, l)
	} else {
		lo.inverted[l] = inv
	}
}

// refreshTopMBR recomputes the top cell's all-layer bounding box (deletions
// can shrink it; insertions can grow it).
func (lo *Layout) refreshTopMBR() {
	top := lo.Top
	m := geom.EmptyRect()
	for i := range top.Polys {
		if top.Polys[i].Layer == orphanLayer {
			continue
		}
		m = m.Union(top.Polys[i].Shape.MBR())
	}
	for ri := range top.Refs {
		ref := &top.Refs[ri]
		if ref.Child.mbr.Empty() {
			continue
		}
		for _, cr := range refCorners(ref) {
			m = m.Union(ref.Placement(cr[0], cr[1]).ApplyRect(ref.Child.mbr))
		}
	}
	top.mbr = m
}

// refCorners returns the four corner instances of an array reference (all
// four collapse to (0,0) for single placements); array offsets are linear in
// (col, row), so corner boxes bound the whole array.
func refCorners(ref *Ref) [4][2]int {
	return [4][2]int{
		{0, 0}, {ref.Cols - 1, 0}, {0, ref.Rows - 1}, {ref.Cols - 1, ref.Rows - 1},
	}
}
