// Package layout is OpenDRC's hierarchical layout database. It preserves the
// GDSII cell hierarchy instead of flattening (Section IV-A of the paper):
// each structure reference stores a pointer to the shared cell definition,
// and every cell is augmented with per-layer minimum bounding rectangles so
// that layer range queries can prune whole subtrees whose MBR for the layer
// of interest is empty. The package also builds the layer-wise duplicated
// hierarchy ("a separated hierarchy tree is built for each layer") and the
// element-level inverted indices the paper describes as a space-for-speed
// trade.
package layout

import (
	"fmt"
	"sort"

	"opendrc/internal/geom"
)

// Layer identifies a mask layer. OpenDRC keys geometry by GDSII layer number
// (datatypes are preserved on polygons but rules bind to layers, as in the
// paper's `db.layer(19)` interface).
type Layer int16

// Common ASAP7-style BEOL layer numbers used by the benchmarks and examples.
// The numbers follow the ASAP7 PDK GDS layer map.
const (
	LayerM1 Layer = 19
	LayerV1 Layer = 21
	LayerM2 Layer = 20
	LayerV2 Layer = 22
	LayerM3 Layer = 30
)

// LayerName returns a human-readable name for well-known layers.
func LayerName(l Layer) string {
	switch l {
	case LayerM1:
		return "M1"
	case LayerM2:
		return "M2"
	case LayerM3:
		return "M3"
	case LayerV1:
		return "V1"
	case LayerV2:
		return "V2"
	}
	return fmt.Sprintf("L%d", int16(l))
}

// Poly is one polygon on a layer within a cell, in the cell's local frame.
type Poly struct {
	Layer    Layer
	DataType int16
	Shape    geom.Polygon
}

// Label is a text annotation within a cell.
type Label struct {
	Layer Layer
	Pos   geom.Point
	Text  string
}

// Ref is a placement of a child cell, possibly repeated as a Cols × Rows
// array (an AREF kept unexpanded to preserve the hierarchy's compression;
// SREFs have Cols == Rows == 1). Trans places instance (0,0); instance
// (c, r) adds c·ColStep + r·RowStep to the offset.
type Ref struct {
	Child      *Cell
	Trans      geom.Transform
	Cols, Rows int
	ColStep    geom.Point
	RowStep    geom.Point
}

// NumPlacements returns the number of instances the reference expands to.
func (r *Ref) NumPlacements() int { return r.Cols * r.Rows }

// Placement returns the transform of instance (col, row).
func (r *Ref) Placement(col, row int) geom.Transform {
	t := r.Trans
	t.Offset = t.Offset.Add(r.ColStep.Scale(int64(col))).Add(r.RowStep.Scale(int64(row)))
	return t
}

// ForEachPlacement calls fn with the transform of every instance.
func (r *Ref) ForEachPlacement(fn func(geom.Transform)) {
	for c := 0; c < r.Cols; c++ {
		for row := 0; row < r.Rows; row++ {
			fn(r.Placement(c, row))
		}
	}
}

// Cell is one structure definition. Cells are shared: every Ref to a cell
// points at the same *Cell, so geometry is stored once no matter how many
// times the cell is instantiated.
type Cell struct {
	Name   string
	ID     int // dense index in Layout.Cells; stable node id for pruning
	Polys  []Poly
	Labels []Label
	Refs   []Ref

	// layerMBR[l] is the MBR of all layer-l geometry in the cell's frame,
	// including geometry inside referenced children ("for a cell that spans
	// multiple layers, separated MBRs are computed for each layer").
	layerMBR map[Layer]geom.Rect
	// mbr is the all-layer bounding box.
	mbr geom.Rect
	// localEdgeCount[l] counts the axis-aligned edges of the cell's own
	// layer-l polygons; used by executor selection in the parallel mode.
	localEdgeCount map[Layer]int
	// polysByLayer indexes the cell's own polygons per layer so range
	// queries and flattening never scan other layers' shapes (essential
	// for top cells holding tens of thousands of routing polygons).
	polysByLayer map[Layer][]int32
	// subtreeCount[l] is the instance-expanded polygon count of the subtree
	// rooted at one placement of this cell, per layer — the exact output
	// size of a full-subtree query, used to pre-size query results.
	subtreeCount map[Layer]int
}

// MBR returns the cell's all-layer bounding box (local frame).
func (c *Cell) MBR() geom.Rect { return c.mbr }

// LayerMBR returns the cell's bounding box for one layer (local frame); it
// is empty when the subtree rooted at the cell has no geometry on the layer.
func (c *Cell) LayerMBR(l Layer) geom.Rect {
	if r, ok := c.layerMBR[l]; ok {
		return r
	}
	return geom.EmptyRect()
}

// HasLayer reports whether the subtree rooted at the cell contains any
// geometry on the layer — the subtree-pruning predicate for range queries.
func (c *Cell) HasLayer(l Layer) bool {
	return !c.LayerMBR(l).Empty()
}

// Layers returns the layers present in the subtree, sorted.
func (c *Cell) Layers() []Layer {
	out := make([]Layer, 0, len(c.layerMBR))
	for l := range c.layerMBR {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LocalEdgeCount returns the number of polygon edges the cell itself (not
// its children) contributes on the layer.
func (c *Cell) LocalEdgeCount(l Layer) int { return c.localEdgeCount[l] }

// LocalPolys returns the indices of the cell's own polygons on the layer.
func (c *Cell) LocalPolys(l Layer) []int {
	idx := c.polysByLayer[l]
	out := make([]int, len(idx))
	for i, v := range idx {
		out[i] = int(v)
	}
	return out
}

// LocalPolyIndex returns the indices of the cell's own polygons on the
// layer without copying. The returned slice is shared and must not be
// mutated; hot paths that only iterate use it instead of LocalPolys to
// avoid a copy per call.
func (c *Cell) LocalPolyIndex(l Layer) []int32 { return c.polysByLayer[l] }

// localPolyIndex returns the per-layer index without copying.
func (c *Cell) localPolyIndex(l Layer) []int32 { return c.polysByLayer[l] }

// SubtreePolyCount returns the instance-expanded polygon count on the layer
// of the subtree rooted at one placement of the cell — the exact size of a
// full-subtree query result, precomputed at build time.
func (c *Cell) SubtreePolyCount(l Layer) int { return c.subtreeCount[l] }

// Layout is the loaded hierarchical database.
type Layout struct {
	Name string
	// DBUPerMeter converts database units to meters (1e9 for 1nm units).
	DBUPerMeter float64
	// Cells in topological order: children before parents. Cell.ID indexes
	// this slice.
	Cells []*Cell
	// Top is the hierarchy root (the unique unreferenced cell; when several
	// exist the one with the largest bounding box is chosen and the rest
	// are recorded in Warnings).
	Top *Cell

	byName map[string]*Cell

	// layerCells is the layer-wise duplicated hierarchy: for each layer,
	// the IDs of cells whose subtree touches the layer, in topological
	// order. A query for layer l only ever visits layerCells[l].
	layerCells map[Layer][]int

	// inverted is the element-level inverted index: for each layer, every
	// (cell, polygon index) pair owning a polygon on that layer.
	inverted map[Layer][]PolyRef

	Warnings []string
}

// PolyRef addresses one polygon inside one cell definition.
type PolyRef struct {
	Cell *Cell
	Idx  int
}

// CellByName returns the named cell, or nil.
func (lo *Layout) CellByName(name string) *Cell { return lo.byName[name] }

// Layers returns all layers present anywhere in the layout, sorted.
func (lo *Layout) Layers() []Layer {
	out := make([]Layer, 0, len(lo.inverted))
	for l := range lo.inverted {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LayerCells returns the cells participating in the layer's duplicated
// hierarchy tree, children before parents.
func (lo *Layout) LayerCells(l Layer) []*Cell {
	ids := lo.layerCells[l]
	out := make([]*Cell, len(ids))
	for i, id := range ids {
		out[i] = lo.Cells[id]
	}
	return out
}

// LayerPolys returns the inverted index for a layer: every polygon
// definition on the layer across all cells.
func (lo *Layout) LayerPolys(l Layer) []PolyRef { return lo.inverted[l] }

// NumPolysOnLayer returns the number of polygon *definitions* on the layer
// (not instance-expanded).
func (lo *Layout) NumPolysOnLayer(l Layer) int { return len(lo.inverted[l]) }
