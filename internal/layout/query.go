package layout

import (
	"opendrc/internal/geom"
)

// PlacedPoly is a polygon instance in the global (top-cell) frame.
type PlacedPoly struct {
	Src   PolyRef        // the defining polygon
	Trans geom.Transform // cell frame -> global frame
	Shape geom.Polygon   // transformed shape
}

// QueryStats counts hierarchy-tree work during a range query, exposing the
// MBR pruning the paper credits for the O(min(n, kh)) query complexity.
type QueryStats struct {
	NodesVisited int // cell instances whose subtree was descended
	NodesPruned  int // cell instances skipped by layer-MBR or range tests
	PolysTested  int // leaf polygons whose MBR was tested
	PolysHit     int // leaf polygons reported
}

// QueryLayer returns every polygon on the given layer whose MBR intersects
// the query window, walking the hierarchy from the top cell and pruning
// subtrees whose layer MBR misses the window. Pass geom.EmptyRect().Union
// of everything — or simply a huge rect — to enumerate the whole layer; use
// FlattenLayer for that common case.
func (lo *Layout) QueryLayer(l Layer, window geom.Rect) ([]PlacedPoly, QueryStats) {
	out := make([]PlacedPoly, 0, capHint(lo.Top.SubtreePolyCount(l), lo.Top.LayerMBR(l), window))
	var st QueryStats
	lo.queryCell(lo.Top, geom.Identity(), l, window, &out, &st)
	return out, st
}

// capHint estimates how many of the total polygons spread over extent a
// query window will hit, assuming roughly uniform density: the total scaled
// by the fraction of the extent's area the window covers, with slack for
// local clustering. A window covering the whole extent returns the exact
// total, so full-layer queries pre-size perfectly; a miss returns 0. Areas
// multiply in float64 — chip-scale coordinates overflow int64 areas.
func capHint(total int, extent, window geom.Rect) int {
	if total == 0 || extent.Empty() {
		return 0
	}
	inter := extent.Intersect(window)
	if inter.Empty() {
		return 0
	}
	ea := float64(extent.Width()) * float64(extent.Height())
	if ea <= 0 {
		return total // degenerate extent: everything is in the window
	}
	ia := float64(inter.Width()) * float64(inter.Height())
	h := int(float64(total) * (ia / ea))
	h += h/4 + 8 // slack: geometry clusters, and tiny windows still hit a few
	if h > total {
		h = total
	}
	return h
}

func (lo *Layout) queryCell(c *Cell, t geom.Transform, l Layer, window geom.Rect, out *[]PlacedPoly, st *QueryStats) {
	st.NodesVisited++
	for _, pi := range c.localPolyIndex(l) {
		i := int(pi)
		p := &c.Polys[i]
		st.PolysTested++
		if !t.ApplyRect(p.Shape.MBR()).Overlaps(window) {
			continue
		}
		st.PolysHit++
		*out = append(*out, PlacedPoly{
			Src:   PolyRef{Cell: c, Idx: i},
			Trans: t,
			Shape: p.Shape.Transform(t),
		})
	}
	for ri := range c.Refs {
		ref := &c.Refs[ri]
		childR := ref.Child.LayerMBR(l)
		if childR.Empty() {
			st.NodesPruned++ // whole subtree has nothing on this layer
			continue
		}
		ref.ForEachPlacement(func(pt geom.Transform) {
			inst := pt.Compose(t)
			if !inst.ApplyRect(childR).Overlaps(window) {
				st.NodesPruned++
				return
			}
			lo.queryCell(ref.Child, inst, l, window, out, st)
		})
	}
}

// FlattenLayer returns every polygon instance on the layer in the global
// frame. This is what the flat baselines and the parallel mode's edge
// packing consume.
func (lo *Layout) FlattenLayer(l Layer) []PlacedPoly {
	window := lo.Top.LayerMBR(l)
	if window.Empty() {
		return nil
	}
	// Every instance on the layer overlaps the full-layer window, so the
	// instance count is the exact output size: one allocation instead of
	// repeated append growth over potentially millions of entries.
	out := make([]PlacedPoly, 0, lo.NumInstancesOnLayer(l))
	var st QueryStats
	lo.queryCell(lo.Top, geom.Identity(), l, window, &out, &st)
	return out
}

// NumInstancesOnLayer counts instance-expanded polygons on the layer (the
// flat size, versus NumPolysOnLayer's definition count). The count is
// precomputed bottom-up at build time, so this is a map lookup — FlattenLayer
// calls it per invocation to pre-size its output.
func (lo *Layout) NumInstancesOnLayer(l Layer) int {
	return lo.Top.SubtreePolyCount(l)
}

// instanceCounts returns, per cell ID, how many times the cell is
// instantiated in the fully expanded layout (the top cell counts once).
// Computed by a reverse-topological pass: parents before children.
func (lo *Layout) instanceCounts() []int {
	counts := make([]int, len(lo.Cells))
	counts[lo.Top.ID] = 1
	for i := len(lo.Cells) - 1; i >= 0; i-- { // parents after children in Cells
		c := lo.Cells[i]
		if counts[c.ID] == 0 {
			continue
		}
		for ri := range c.Refs {
			ref := &c.Refs[ri]
			counts[ref.Child.ID] += counts[c.ID] * ref.NumPlacements()
		}
	}
	return counts
}

// TopPlacement is a direct child instance of the top cell — the unit the
// adaptive row-based partition groups into rows (standard cells in a
// row-based placement are exactly these).
type TopPlacement struct {
	Child *Cell
	Trans geom.Transform
	MBR   geom.Rect // global-frame all-layer bounding box of the instance
}

// TopPlacements expands the top cell's direct references (including arrays)
// into a flat list of placements. Top-level loose polygons are not included;
// callers that need them use FlattenLayer.
func (lo *Layout) TopPlacements() []TopPlacement {
	var out []TopPlacement
	for ri := range lo.Top.Refs {
		ref := &lo.Top.Refs[ri]
		ref.ForEachPlacement(func(t geom.Transform) {
			out = append(out, TopPlacement{
				Child: ref.Child,
				Trans: t,
				MBR:   t.ApplyRect(ref.Child.MBR()),
			})
		})
	}
	return out
}

// LayerDensity returns the fraction of the top-cell layer MBR covered by
// polygon MBRs on the layer (a cheap congestion proxy used by reports and
// the synthesizer's self-checks; overlaps are double counted).
func (lo *Layout) LayerDensity(l Layer) float64 {
	total := lo.Top.LayerMBR(l)
	if total.Empty() || total.Area() == 0 {
		return 0
	}
	var covered int64
	for _, pp := range lo.FlattenLayer(l) {
		covered += pp.Shape.MBR().Area()
	}
	return float64(covered) / float64(total.Area())
}

// Placements returns, for every cell ID, the global-frame transforms of all
// of that cell's instances in the fully expanded layout (the top cell has
// exactly the identity placement). This is the instance enumeration the
// hierarchical check pruning uses to replay per-definition results.
func (lo *Layout) Placements() [][]geom.Transform {
	out := make([][]geom.Transform, len(lo.Cells))
	out[lo.Top.ID] = []geom.Transform{geom.Identity()}
	// Parents come after children in Cells, so walk backwards: every
	// placement of a parent spawns placements of its children.
	for i := len(lo.Cells) - 1; i >= 0; i-- {
		c := lo.Cells[i]
		parents := out[c.ID]
		if len(parents) == 0 {
			continue
		}
		for ri := range c.Refs {
			ref := &c.Refs[ri]
			ref.ForEachPlacement(func(pt geom.Transform) {
				for _, t := range parents {
					out[ref.Child.ID] = append(out[ref.Child.ID], pt.Compose(t))
				}
			})
		}
	}
	return out
}

// QuerySubtree returns every polygon on the layer within the subtree rooted
// at cell whose transformed MBR overlaps the window; both the window and the
// returned shapes are in the cell's local frame. Subtrees without layer
// geometry are pruned by the layer-wise MBRs exactly as in QueryLayer.
func (lo *Layout) QuerySubtree(cell *Cell, l Layer, window geom.Rect) []PlacedPoly {
	out := make([]PlacedPoly, 0, capHint(cell.SubtreePolyCount(l), cell.LayerMBR(l), window))
	var st QueryStats
	lo.queryCell(cell, geom.Identity(), l, window, &out, &st)
	return out
}

// CompressionStats quantifies what preserving the hierarchy saves — the
// paper's memory argument for structure references ("a structure reference
// effectively stores a pointer to the structure definition to reduce memory
// consumption") and the baseline its data-compression roadmap item would
// improve on.
type CompressionStats struct {
	DefinitionPolys int     // polygons stored (one per definition)
	InstancePolys   int     // polygons a flat layout would store
	DefinitionCells int     // cell definitions
	InstanceCells   int     // cell instances in the expanded layout
	Ratio           float64 // InstancePolys / DefinitionPolys
}

// Compression returns the hierarchy's polygon compression statistics.
func (lo *Layout) Compression() CompressionStats {
	counts := lo.instanceCounts()
	var st CompressionStats
	st.DefinitionCells = len(lo.Cells)
	for _, c := range lo.Cells {
		st.DefinitionPolys += len(c.Polys)
		st.InstanceCells += counts[c.ID]
		st.InstancePolys += counts[c.ID] * len(c.Polys)
	}
	if st.DefinitionPolys > 0 {
		st.Ratio = float64(st.InstancePolys) / float64(st.DefinitionPolys)
	}
	return st
}
