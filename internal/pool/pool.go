// Package pool is OpenDRC's bounded host worker pool: the execution layer
// behind the engine's multi-core fan-out (per cell definition in the intra
// checks, per partition row in the spacing sweep, per tile in the KLayout
// tiling baseline). The pool is deliberately small: fixed workers pulling
// from a bounded queue, panic propagation to the waiter, and an indexed
// ForEach whose callers write results into per-index slots so merged output
// is bit-identical regardless of the worker count.
//
// Failure semantics: misuse (Submit after Close, double Close) returns
// ErrClosed instead of panicking or deadlocking; SubmitCtx/WaitCtx/
// ForEachCtx honor context cancellation by refusing new work and draining
// the tasks already in flight — a cancelled fan-out never abandons a
// running worker.
package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"opendrc/internal/trace"
)

// ErrClosed is returned by Submit and Close when the pool is already
// closed.
var ErrClosed = errors.New("pool: closed")

// Workers resolves a configured worker count: values <= 0 select
// runtime.GOMAXPROCS(0), the number of usable host cores.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// PanicError wraps a panic recovered inside a worker so Wait (or ForEach)
// can re-panic it on the submitting goroutine with the worker's stack
// preserved.
type PanicError struct {
	Value any    // the original panic value
	Stack []byte // the panicking worker's stack
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("pool: worker panic: %v\n%s", e.Value, e.Stack)
}

// Pool is a bounded worker pool: a fixed set of goroutines executing
// submitted tasks. Submit blocks when the queue is full (bounded memory);
// Wait blocks until every submitted task finished and re-panics the first
// worker panic, if any. A Pool must be Closed when no longer needed.
type Pool struct {
	tasks   chan func()
	pending sync.WaitGroup // open tasks
	workers sync.WaitGroup // live worker goroutines
	// submitting counts Submit/SubmitCtx calls between their closed-check
	// and their channel send, so Close can wait them out before closing the
	// task channel: a submitter that won the race against Close completes
	// its send (the workers are still draining) instead of panicking on a
	// closed channel.
	submitting sync.WaitGroup
	taskSeq    atomic.Uint64 // numbers traced SubmitCtx tasks in submission order

	mu     sync.Mutex
	closed bool //odrc:guardedby mu
	// err is the first worker panic, cleared by Wait.
	err *PanicError //odrc:guardedby mu
}

// New starts a pool with the given number of workers (<= 0 selects
// GOMAXPROCS).
func New(workers int) *Pool {
	workers = Workers(workers)
	p := &Pool{tasks: make(chan func(), 2*workers)}
	p.workers.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.workers.Done()
	for fn := range p.tasks {
		p.run(fn)
	}
}

// run executes one task, converting a panic into the pool's stored error.
func (p *Pool) run(fn func()) {
	defer p.pending.Done()
	defer func() {
		if r := recover(); r != nil {
			p.mu.Lock()
			if p.err == nil {
				p.err = &PanicError{Value: r, Stack: debug.Stack()}
			}
			p.mu.Unlock()
		}
	}()
	fn()
}

// Submit enqueues one task; it blocks while the queue is full. After Close
// it returns ErrClosed. Submit may race Close: a task accepted before Close
// observed the pool open still runs to completion (drain-on-close).
func (p *Pool) Submit(fn func()) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.pending.Add(1)
	p.submitting.Add(1)
	p.mu.Unlock()
	p.tasks <- fn
	p.submitting.Done()
	return nil
}

// SubmitCtx is Submit that gives up when ctx is cancelled while the queue
// is full, returning ctx.Err(); tasks already queued keep draining. When
// ctx carries a trace recorder the task records a span on the pool track,
// named by the ctx task label and the pool-wide submission order.
func (p *Pool) SubmitCtx(ctx context.Context, fn func()) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if rec := trace.FromContext(ctx); rec != nil {
		name := fmt.Sprintf("%s#%d", trace.TaskLabel(ctx), p.taskSeq.Add(1)-1)
		tenant := tenantTag(ctx)
		inner := fn
		fn = func() {
			stop := rec.Begin(trace.TrackPool, "", name, "pool")
			if tenant != "" {
				defer stop(trace.Arg{Key: "tenant", Val: tenant})
			} else {
				defer stop()
			}
			inner()
		}
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.pending.Add(1)
	p.submitting.Add(1)
	p.mu.Unlock()
	select {
	case p.tasks <- fn:
		p.submitting.Done()
		return nil
	case <-ctx.Done():
		p.pending.Done()
		p.submitting.Done()
		return ctx.Err()
	}
}

// Wait blocks until all submitted tasks completed. If any task panicked,
// Wait re-panics the first captured *PanicError; the pool stays usable for
// further Submit/Wait rounds either way.
func (p *Pool) Wait() {
	p.pending.Wait()
	p.mu.Lock()
	err := p.err
	p.err = nil
	p.mu.Unlock()
	if err != nil {
		panic(err)
	}
}

// WaitCtx blocks until all submitted tasks completed or ctx is cancelled.
// On cancellation it returns ctx.Err() immediately while the submitted
// tasks keep draining on the workers (call Wait or Close to rejoin them).
// A worker panic is returned as a *PanicError instead of re-panicking.
func (p *Pool) WaitCtx(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		p.pending.Wait()
		close(done)
	}()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-done:
	}
	p.mu.Lock()
	err := p.err
	p.err = nil
	p.mu.Unlock()
	if err != nil {
		return err
	}
	return nil
}

// Close stops the workers after the queued tasks drain, including tasks
// whose Submit/SubmitCtx raced Close and had already been accepted — the
// channel closes only once every in-flight submitter finished its send
// (the workers keep consuming until then, so those sends cannot wedge). A
// second Close returns ErrClosed without touching the pool.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.closed = true
	p.mu.Unlock()
	p.submitting.Wait()
	close(p.tasks)
	p.workers.Wait()
	return nil
}

// ForEach runs fn(0..n-1) on up to `workers` goroutines (<= 0 selects
// GOMAXPROCS) and returns when every index completed. Indices are handed
// out dynamically in chunks, so uneven task costs balance across workers
// without paying per-index dispatch. With one worker (or one index) fn runs
// inline on the caller — zero overhead and byte-identical scheduling to a
// plain loop. If any fn panics, ForEach finishes the remaining indices on
// the surviving workers and then re-panics the first *PanicError on the
// caller.
func ForEach(workers, n int, fn func(i int)) {
	err := ForEachCtx(context.Background(), workers, n, func(i int) error { //odrc:allow ctxflow — context-free convenience wrapper, delegates to the Context variant
		fn(i)
		return nil
	})
	if err != nil {
		panic(err)
	}
}

// indexedErr pairs a task error with the index it occurred at, so the
// reported error is the lowest-index one — independent of worker count and
// schedule.
type indexedErr struct {
	idx int
	err error
}

// chunksPerWorker oversubscribes the chunk count relative to the worker
// count so dynamic handout can still balance uneven task costs: each worker
// pulls several chunks per fan-out on average, while tiny tasks amortize
// their dispatch (one atomic increment and one trace span per chunk, not
// per index).
const chunksPerWorker = 4

// chunkFor returns the adaptive chunk size for a fan-out of n indices over
// the given (already resolved, > 1) worker count.
func chunkFor(workers, n int) int {
	c := n / (workers * chunksPerWorker)
	if c < 1 {
		c = 1
	}
	return c
}

// ForEachCtx runs fn(0..n-1) on up to `workers` goroutines with cooperative
// cancellation and error propagation. Scheduling matches ForEach (dynamic
// chunked handout, inline fast path for one worker or one index). When fn
// returns an error or panics, no new indices are handed out, in-flight
// indices drain, and the error of the lowest failed index is returned (a
// panic is wrapped in a *PanicError carrying the worker's stack). When ctx
// is cancelled the handout stops the same way and ctx.Err() is returned.
// The choice of the lowest-index error keeps degraded results deterministic
// across worker counts and chunk sizes.
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	return ForEachChunkCtx(ctx, workers, n, 0, fn)
}

// ForEachChunkCtx is ForEachCtx with an explicit chunk size: indices are
// handed to workers in spans of `chunk` consecutive indices (the last span
// may be shorter). chunk <= 0 selects the adaptive size, which targets
// chunksPerWorker chunks per worker. Error, panic, cancellation, and result
// semantics are identical for every chunk size; the equivalence tests pin
// that down. Exported so callers with known task granularity (and the
// chunking-equivalence tests) can force a size. When the context carries a
// Scheduler (WithScheduler), the multi-worker path routes its chunks
// through the shared tenant-fair worker set instead of spawning its own
// goroutines; results and error semantics are identical either way.
func ForEachChunkCtx(ctx context.Context, workers, n, chunk int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	rec := trace.FromContext(ctx)
	var label string
	if rec != nil {
		// Trace chunks as pool-track spans (also on the inline fast path, so
		// one-worker traces show the same tasks). Lanes are assigned at
		// export from span overlap, not goroutine identity.
		label = trace.TaskLabel(ctx)
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 || n == 1 {
		// Inline fast path: no goroutines, no synchronization, and — with no
		// recorder attached — no allocations at all. Kept out of line so the
		// worker path's goroutine closures cannot force rec/label/fn onto
		// the heap for this branch (escape analysis is per-function).
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := runSpan(rec, label, i, fn); err != nil {
				return err
			}
		}
		return nil
	}
	// The scheduler lookup happens only on the multi-worker path, so the
	// inline branch above stays allocation-free even under a scheduler.
	if s := SchedulerFromContext(ctx); s != nil {
		return s.forEach(ctx, rec, label, TenantFromContext(ctx), workers, n, chunk, fn)
	}
	return forEachChunked(ctx, rec, label, workers, n, chunk, fn)
}

// forEachChunked is the multi-worker body of ForEachChunkCtx. It lives in
// its own function so the goroutine closures below (which capture their
// surroundings and therefore heap-allocate them) never tax the inline fast
// path above.
func forEachChunked(ctx context.Context, rec *trace.Recorder, label string, workers, n, chunk int, fn func(i int) error) error {
	if chunk <= 0 {
		chunk = chunkFor(workers, n)
	}
	nChunks := (n + chunk - 1) / chunk
	if workers > nChunks {
		workers = nChunks
	}
	var (
		next    int64
		failIdx atomic.Int64 // lowest recorded failure index; n = none
		wg      sync.WaitGroup
		mu      sync.Mutex
		fail    *indexedErr
	)
	failIdx.Store(int64(n))
	record := func(i int, err error) {
		mu.Lock()
		if fail == nil || i < fail.idx {
			fail = &indexedErr{idx: i, err: err}
			failIdx.Store(int64(i))
		}
		mu.Unlock()
	}
	body := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				record(i, &PanicError{Value: r, Stack: debug.Stack()})
			}
		}()
		if err := fn(i); err != nil {
			record(i, err)
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				// One cancellation check per chunk: ctx.Err() takes a lock
				// inside the context, so probing it per index would serialize
				// the workers on exactly the hot path chunking exists to
				// relieve.
				if ctx.Err() != nil {
					return
				}
				c := int(atomic.AddInt64(&next, 1)) - 1
				lo := c * chunk
				// After a failure, indices at or above the lowest recorded
				// failing index may be skipped — but every index below it
				// still runs, so the reported error is the globally lowest
				// failing index, deterministic for every worker count and
				// chunk size. Chunks are handed out in ascending order, so
				// once lo passes the watermark nothing below it remains.
				if lo >= n || int64(lo) > failIdx.Load() {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				var stopSpan func(args ...trace.Arg)
				if rec != nil {
					stopSpan = rec.Begin(trace.TrackPool, "", chunkName(label, lo, hi), "pool")
				}
				for i := lo; i < hi; i++ {
					if int64(i) > failIdx.Load() {
						break
					}
					body(i)
				}
				if stopSpan != nil {
					stopSpan()
				}
			}
		}()
	}
	wg.Wait()
	if fail != nil {
		return fail.err
	}
	return ctx.Err()
}

// runSpan executes one inline-path index, tracing it as its own span when a
// recorder is attached (matching the per-chunk spans of the worker path:
// inline chunks have exactly one index).
func runSpan(rec *trace.Recorder, label string, i int, fn func(i int) error) (err error) {
	if rec != nil {
		stop := rec.Begin(trace.TrackPool, "", chunkName(label, i, i+1), "pool")
		defer stop()
	}
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}

// chunkName renders a pool-track span name for the chunk [lo, hi): single-
// index chunks keep the historical "label#i" form, multi-index chunks show
// the span "label#lo-hi" (hi exclusive).
func chunkName(label string, lo, hi int) string {
	if hi == lo+1 {
		return fmt.Sprintf("%s#%d", label, lo)
	}
	return fmt.Sprintf("%s#%d-%d", label, lo, hi)
}
