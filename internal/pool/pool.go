// Package pool is OpenDRC's bounded host worker pool: the execution layer
// behind the engine's multi-core fan-out (per cell definition in the intra
// checks, per partition row in the spacing sweep, per tile in the KLayout
// tiling baseline). The pool is deliberately small: fixed workers pulling
// from a bounded queue, panic propagation to the waiter, and an indexed
// ForEach whose callers write results into per-index slots so merged output
// is bit-identical regardless of the worker count.
//
// Failure semantics: misuse (Submit after Close, double Close) returns
// ErrClosed instead of panicking or deadlocking; SubmitCtx/WaitCtx/
// ForEachCtx honor context cancellation by refusing new work and draining
// the tasks already in flight — a cancelled fan-out never abandons a
// running worker.
package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"opendrc/internal/trace"
)

// ErrClosed is returned by Submit and Close when the pool is already
// closed.
var ErrClosed = errors.New("pool: closed")

// Workers resolves a configured worker count: values <= 0 select
// runtime.GOMAXPROCS(0), the number of usable host cores.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// PanicError wraps a panic recovered inside a worker so Wait (or ForEach)
// can re-panic it on the submitting goroutine with the worker's stack
// preserved.
type PanicError struct {
	Value any    // the original panic value
	Stack []byte // the panicking worker's stack
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("pool: worker panic: %v\n%s", e.Value, e.Stack)
}

// Pool is a bounded worker pool: a fixed set of goroutines executing
// submitted tasks. Submit blocks when the queue is full (bounded memory);
// Wait blocks until every submitted task finished and re-panics the first
// worker panic, if any. A Pool must be Closed when no longer needed.
type Pool struct {
	tasks   chan func()
	pending sync.WaitGroup // open tasks
	workers sync.WaitGroup // live worker goroutines
	taskSeq atomic.Uint64  // numbers traced SubmitCtx tasks in submission order

	mu     sync.Mutex
	closed bool
	err    *PanicError // first worker panic, cleared by Wait
}

// New starts a pool with the given number of workers (<= 0 selects
// GOMAXPROCS).
func New(workers int) *Pool {
	workers = Workers(workers)
	p := &Pool{tasks: make(chan func(), 2*workers)}
	p.workers.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.workers.Done()
	for fn := range p.tasks {
		p.run(fn)
	}
}

// run executes one task, converting a panic into the pool's stored error.
func (p *Pool) run(fn func()) {
	defer p.pending.Done()
	defer func() {
		if r := recover(); r != nil {
			p.mu.Lock()
			if p.err == nil {
				p.err = &PanicError{Value: r, Stack: debug.Stack()}
			}
			p.mu.Unlock()
		}
	}()
	fn()
}

// Submit enqueues one task; it blocks while the queue is full. After Close
// it returns ErrClosed (it must not be called concurrently with Close).
func (p *Pool) Submit(fn func()) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.pending.Add(1)
	p.mu.Unlock()
	p.tasks <- fn
	return nil
}

// SubmitCtx is Submit that gives up when ctx is cancelled while the queue
// is full, returning ctx.Err(); tasks already queued keep draining. When
// ctx carries a trace recorder the task records a span on the pool track,
// named by the ctx task label and the pool-wide submission order.
func (p *Pool) SubmitCtx(ctx context.Context, fn func()) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if rec := trace.FromContext(ctx); rec != nil {
		name := fmt.Sprintf("%s#%d", trace.TaskLabel(ctx), p.taskSeq.Add(1)-1)
		inner := fn
		fn = func() {
			stop := rec.Begin(trace.TrackPool, "", name, "pool")
			defer stop()
			inner()
		}
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.pending.Add(1)
	p.mu.Unlock()
	select {
	case p.tasks <- fn:
		return nil
	case <-ctx.Done():
		p.pending.Done()
		return ctx.Err()
	}
}

// Wait blocks until all submitted tasks completed. If any task panicked,
// Wait re-panics the first captured *PanicError; the pool stays usable for
// further Submit/Wait rounds either way.
func (p *Pool) Wait() {
	p.pending.Wait()
	p.mu.Lock()
	err := p.err
	p.err = nil
	p.mu.Unlock()
	if err != nil {
		panic(err)
	}
}

// WaitCtx blocks until all submitted tasks completed or ctx is cancelled.
// On cancellation it returns ctx.Err() immediately while the submitted
// tasks keep draining on the workers (call Wait or Close to rejoin them).
// A worker panic is returned as a *PanicError instead of re-panicking.
func (p *Pool) WaitCtx(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		p.pending.Wait()
		close(done)
	}()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-done:
	}
	p.mu.Lock()
	err := p.err
	p.err = nil
	p.mu.Unlock()
	if err != nil {
		return err
	}
	return nil
}

// Close stops the workers after the queued tasks drain. A second Close
// returns ErrClosed without touching the pool.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.closed = true
	p.mu.Unlock()
	close(p.tasks)
	p.workers.Wait()
	return nil
}

// ForEach runs fn(0..n-1) on up to `workers` goroutines (<= 0 selects
// GOMAXPROCS) and returns when every index completed. Indices are handed
// out dynamically, so uneven task costs balance across workers. With one
// worker (or one index) fn runs inline on the caller — zero overhead and
// byte-identical scheduling to a plain loop. If any fn panics, ForEach
// finishes the remaining indices on the surviving workers and then
// re-panics the first *PanicError on the caller.
func ForEach(workers, n int, fn func(i int)) {
	err := ForEachCtx(context.Background(), workers, n, func(i int) error {
		fn(i)
		return nil
	})
	if err != nil {
		panic(err)
	}
}

// indexedErr pairs a task error with the index it occurred at, so the
// reported error is the lowest-index one — independent of worker count and
// schedule.
type indexedErr struct {
	idx int
	err error
}

// ForEachCtx runs fn(0..n-1) on up to `workers` goroutines with cooperative
// cancellation and error propagation. Scheduling matches ForEach (dynamic
// index handout, inline fast path for one worker). When fn returns an
// error or panics, no new indices are handed out, in-flight indices drain,
// and the error of the lowest failed index is returned (a panic is wrapped
// in a *PanicError carrying the worker's stack). When ctx is cancelled the
// handout stops the same way and ctx.Err() is returned. The choice of the
// lowest-index error keeps degraded results deterministic across worker
// counts.
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if rec := trace.FromContext(ctx); rec != nil {
		// Trace each index as a pool-track span (also on the inline fast
		// path, so one-worker traces show the same tasks). Lanes are
		// assigned at export from span overlap, not goroutine identity.
		label := trace.TaskLabel(ctx)
		inner := fn
		fn = func(i int) error {
			stop := rec.Begin(trace.TrackPool, "", fmt.Sprintf("%s#%d", label, i), "pool")
			defer stop()
			return inner(i)
		}
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next int64
		stop atomic.Bool
		wg   sync.WaitGroup
		mu   sync.Mutex
		fail *indexedErr
	)
	record := func(i int, err error) {
		mu.Lock()
		if fail == nil || i < fail.idx {
			fail = &indexedErr{idx: i, err: err}
		}
		mu.Unlock()
		stop.Store(true)
	}
	body := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				record(i, &PanicError{Value: r, Stack: debug.Stack()})
			}
		}()
		if err := fn(i); err != nil {
			record(i, err)
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if stop.Load() || ctx.Err() != nil {
					return
				}
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				body(i)
			}
		}()
	}
	wg.Wait()
	if fail != nil {
		return fail.err
	}
	return ctx.Err()
}
