// Package pool is OpenDRC's bounded host worker pool: the execution layer
// behind the engine's multi-core fan-out (per cell definition in the intra
// checks, per partition row in the spacing sweep, per tile in the KLayout
// tiling baseline). The pool is deliberately small: fixed workers pulling
// from a bounded queue, panic propagation to the waiter, and an indexed
// ForEach whose callers write results into per-index slots so merged output
// is bit-identical regardless of the worker count.
package pool

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Workers resolves a configured worker count: values <= 0 select
// runtime.GOMAXPROCS(0), the number of usable host cores.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// PanicError wraps a panic recovered inside a worker so Wait (or ForEach)
// can re-panic it on the submitting goroutine with the worker's stack
// preserved.
type PanicError struct {
	Value any    // the original panic value
	Stack []byte // the panicking worker's stack
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("pool: worker panic: %v\n%s", e.Value, e.Stack)
}

// Pool is a bounded worker pool: a fixed set of goroutines executing
// submitted tasks. Submit blocks when the queue is full (bounded memory);
// Wait blocks until every submitted task finished and re-panics the first
// worker panic, if any. A Pool must be Closed when no longer needed.
type Pool struct {
	tasks   chan func()
	pending sync.WaitGroup // open tasks
	workers sync.WaitGroup // live worker goroutines

	mu  sync.Mutex
	err *PanicError // first worker panic, cleared by Wait
}

// New starts a pool with the given number of workers (<= 0 selects
// GOMAXPROCS).
func New(workers int) *Pool {
	workers = Workers(workers)
	p := &Pool{tasks: make(chan func(), 2*workers)}
	p.workers.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.workers.Done()
	for fn := range p.tasks {
		p.run(fn)
	}
}

// run executes one task, converting a panic into the pool's stored error.
func (p *Pool) run(fn func()) {
	defer p.pending.Done()
	defer func() {
		if r := recover(); r != nil {
			p.mu.Lock()
			if p.err == nil {
				p.err = &PanicError{Value: r, Stack: debug.Stack()}
			}
			p.mu.Unlock()
		}
	}()
	fn()
}

// Submit enqueues one task; it blocks while the queue is full.
func (p *Pool) Submit(fn func()) {
	p.pending.Add(1)
	p.tasks <- fn
}

// Wait blocks until all submitted tasks completed. If any task panicked,
// Wait re-panics the first captured *PanicError; the pool stays usable for
// further Submit/Wait rounds either way.
func (p *Pool) Wait() {
	p.pending.Wait()
	p.mu.Lock()
	err := p.err
	p.err = nil
	p.mu.Unlock()
	if err != nil {
		panic(err)
	}
}

// Close stops the workers after the queued tasks drain. Submit must not be
// called after Close.
func (p *Pool) Close() {
	close(p.tasks)
	p.workers.Wait()
}

// ForEach runs fn(0..n-1) on up to `workers` goroutines (<= 0 selects
// GOMAXPROCS) and returns when every index completed. Indices are handed
// out dynamically, so uneven task costs balance across workers. With one
// worker (or one index) fn runs inline on the caller — zero overhead and
// byte-identical scheduling to a plain loop. If any fn panics, ForEach
// finishes the remaining indices on the surviving workers and then
// re-panics the first *PanicError on the caller.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next int64
		wg   sync.WaitGroup
		mu   sync.Mutex
		perr *PanicError
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if perr == nil {
						perr = &PanicError{Value: r, Stack: debug.Stack()}
					}
					mu.Unlock()
				}
			}()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if perr != nil {
		panic(perr)
	}
}
