package pool

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"opendrc/internal/trace"
)

func TestWorkersDefault(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
}

func TestPoolSubmitWait(t *testing.T) {
	p := New(4)
	defer p.Close()
	var sum int64
	for i := 1; i <= 100; i++ {
		i := i
		p.Submit(func() { atomic.AddInt64(&sum, int64(i)) })
	}
	p.Wait()
	if sum != 5050 {
		t.Fatalf("sum = %d, want 5050", sum)
	}
	// The pool is reusable after Wait.
	p.Submit(func() { atomic.AddInt64(&sum, 1) })
	p.Wait()
	if sum != 5051 {
		t.Fatalf("second round sum = %d, want 5051", sum)
	}
}

func TestPoolPanicPropagation(t *testing.T) {
	p := New(2)
	defer p.Close()
	p.Submit(func() { panic("boom") })
	p.Submit(func() {}) // healthy task alongside the panicking one
	func() {
		defer func() {
			r := recover()
			pe, ok := r.(*PanicError)
			if !ok {
				t.Fatalf("recovered %T (%v), want *PanicError", r, r)
			}
			if pe.Value != "boom" {
				t.Fatalf("panic value = %v, want boom", pe.Value)
			}
			if len(pe.Stack) == 0 {
				t.Fatal("panic stack not captured")
			}
		}()
		p.Wait()
		t.Fatal("Wait returned instead of panicking")
	}()
	// The panic is consumed: the next round is clean.
	p.Submit(func() {})
	p.Wait()
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		n := 1000
		hits := make([]int32, n)
		ForEach(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, h)
			}
		}
	}
}

func TestForEachInlineWhenSingle(t *testing.T) {
	// One worker must run on the calling goroutine, in index order.
	var order []int
	ForEach(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("inline order = %v", order)
		}
	}
}

func TestForEachPanic(t *testing.T) {
	defer func() {
		r := recover()
		pe, ok := r.(*PanicError)
		if !ok || pe.Value != "kaput" {
			t.Fatalf("recovered %v, want *PanicError{kaput}", r)
		}
	}()
	ForEach(4, 100, func(i int) {
		if i == 42 {
			panic("kaput")
		}
	})
	t.Fatal("ForEach returned instead of panicking")
}

func TestForEachZeroItems(t *testing.T) {
	ForEach(4, 0, func(int) { t.Fatal("fn called for n=0") })
}

func TestSubmitAfterClose(t *testing.T) {
	p := New(2)
	if err := p.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := p.Submit(func() { t.Error("task ran after Close") }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	if err := p.SubmitCtx(context.Background(), func() {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("SubmitCtx after Close = %v, want ErrClosed", err)
	}
}

func TestDoubleClose(t *testing.T) {
	p := New(2)
	if err := p.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := p.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
}

func TestSubmitCtxCancelled(t *testing.T) {
	p := New(1)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.SubmitCtx(ctx, func() { t.Error("task ran under cancelled ctx") }); !errors.Is(err, context.Canceled) {
		t.Fatalf("SubmitCtx(cancelled) = %v, want context.Canceled", err)
	}
	// The refused submission must not leak a pending count: Wait returns.
	p.Wait()
}

func TestSubmitCtxFullQueue(t *testing.T) {
	p := New(1)
	defer p.Close()
	// Block the single worker and fill the queue so the next SubmitCtx
	// has to wait on the channel, then cancel it.
	release := make(chan struct{})
	p.Submit(func() { <-release })
	for i := 0; i < cap(p.tasks); i++ {
		p.Submit(func() {})
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := p.SubmitCtx(ctx, func() { t.Error("task ran after cancelled enqueue") })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("SubmitCtx on full queue = %v, want DeadlineExceeded", err)
	}
	close(release)
	p.Wait()
}

func TestWaitCtxCancelDrains(t *testing.T) {
	p := New(2)
	defer p.Close()
	var done atomic.Int32
	release := make(chan struct{})
	for i := 0; i < 4; i++ {
		p.Submit(func() { <-release; done.Add(1) })
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.WaitCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("WaitCtx(cancelled) = %v, want context.Canceled", err)
	}
	// Cancellation abandoned the wait but not the tasks: they drain.
	close(release)
	p.Wait()
	if got := done.Load(); got != 4 {
		t.Fatalf("drained %d tasks after cancelled WaitCtx, want 4", got)
	}
}

func TestWaitCtxReturnsPanicError(t *testing.T) {
	p := New(2)
	defer p.Close()
	p.Submit(func() { panic("boom") })
	err := p.WaitCtx(context.Background())
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "boom" {
		t.Fatalf("WaitCtx = %v, want *PanicError{boom}", err)
	}
}

func TestForEachCtxLowestIndexError(t *testing.T) {
	// Multiple indices fail; the reported error must be the lowest index,
	// independent of worker count.
	for _, workers := range []int{1, 2, 4, 8} {
		err := ForEachCtx(context.Background(), workers, 100, func(i int) error {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return fmt.Errorf("fail@%d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail@3" {
			t.Fatalf("workers=%d: err = %v, want fail@3", workers, err)
		}
	}
}

func TestForEachCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := ForEachCtx(ctx, 4, 1000, func(i int) error {
		if ran.Add(1) == 10 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ForEachCtx after cancel = %v, want context.Canceled", err)
	}
	if ran.Load() == 1000 {
		t.Fatal("cancellation did not stop the index handout")
	}
}

func TestForEachCtxPanicAsError(t *testing.T) {
	err := ForEachCtx(context.Background(), 4, 50, func(i int) error {
		if i == 7 {
			panic("kaput")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "kaput" {
		t.Fatalf("ForEachCtx = %v, want *PanicError{kaput}", err)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("panic stack not captured")
	}
}

// traceNames exports rec and returns the names of its pool-track spans.
func traceNames(t *testing.T, rec *trace.Recorder) []string {
	t.Helper()
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, ev := range file.TraceEvents {
		if ev["ph"] == "X" && ev["cat"] == "pool" {
			names = append(names, ev["name"].(string))
		}
	}
	sort.Strings(names)
	return names
}

func TestForEachCtxRecordsTaskSpans(t *testing.T) {
	for _, workers := range []int{1, 4} {
		rec := trace.NewWithClock(func() time.Duration { return 0 })
		ctx := trace.WithTask(trace.WithRecorder(context.Background(), rec), "row")
		err := ForEachCtx(ctx, workers, 3, func(i int) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		got := traceNames(t, rec)
		want := []string{"row#0", "row#1", "row#2"}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: spans %v, want %v (inline path must trace too)", workers, got, want)
		}
	}
}

func TestForEachCtxNoRecorderNoSpans(t *testing.T) {
	// Without a recorder the fan-out must not pay any tracing cost or panic.
	err := ForEachCtx(context.Background(), 2, 4, func(i int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
}

func TestSubmitCtxRecordsTaskSpans(t *testing.T) {
	rec := trace.NewWithClock(func() time.Duration { return 0 })
	ctx := trace.WithTask(trace.WithRecorder(context.Background(), rec), "prefetch")
	p := New(2)
	defer p.Close()
	for i := 0; i < 3; i++ {
		if err := p.SubmitCtx(ctx, func() {}); err != nil {
			t.Fatal(err)
		}
	}
	p.Wait()
	got := traceNames(t, rec)
	want := []string{"prefetch#0", "prefetch#1", "prefetch#2"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("spans %v, want %v (named by submission order)", got, want)
	}
}

// TestForEachChunkCtxEquivalence pins the chunking contract: for forced
// chunk sizes 1, 7, and n, the fan-out produces identical per-index
// results, the identical lowest-index error, and identical cancellation
// behavior. Reports built from per-index slots are therefore bit-identical
// whatever the chunk size.
func TestForEachChunkCtxEquivalence(t *testing.T) {
	const n = 100
	for _, workers := range []int{1, 3, 8} {
		for _, chunk := range []int{1, 7, n} {
			// Results land in per-index slots, the callers' merge pattern.
			slots := make([]int, n)
			err := ForEachChunkCtx(context.Background(), workers, n, chunk, func(i int) error {
				slots[i] = i * i
				return nil
			})
			if err != nil {
				t.Fatalf("workers=%d chunk=%d: %v", workers, chunk, err)
			}
			for i, v := range slots {
				if v != i*i {
					t.Fatalf("workers=%d chunk=%d: slot %d = %d", workers, chunk, i, v)
				}
			}

			// Lowest-index error, independent of chunk size.
			err = ForEachChunkCtx(context.Background(), workers, n, chunk, func(i int) error {
				if i%7 == 3 {
					return fmt.Errorf("fail@%d", i)
				}
				return nil
			})
			if err == nil || err.Error() != "fail@3" {
				t.Fatalf("workers=%d chunk=%d: err = %v, want fail@3", workers, chunk, err)
			}

			// Panic wrapped as *PanicError with the same lowest-index rule.
			err = ForEachChunkCtx(context.Background(), workers, n, chunk, func(i int) error {
				if i == 5 {
					panic("kaput")
				}
				return nil
			})
			var pe *PanicError
			if !errors.As(err, &pe) || pe.Value != "kaput" {
				t.Fatalf("workers=%d chunk=%d: err = %v, want *PanicError{kaput}", workers, chunk, err)
			}

			// Cancellation surfaces ctx.Err() and stops the handout.
			ctx, cancel := context.WithCancel(context.Background())
			var ran atomic.Int32
			err = ForEachChunkCtx(ctx, workers, n, chunk, func(i int) error {
				if ran.Add(1) == 5 {
					cancel()
				}
				return nil
			})
			cancel()
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("workers=%d chunk=%d: cancel err = %v", workers, chunk, err)
			}
		}
	}
}

// TestForEachCtxLowestErrorAcrossChunks forces the adversarial schedule: a
// failure late in a later chunk must not suppress a lower failing index
// still pending in an earlier chunk.
func TestForEachCtxLowestErrorAcrossChunks(t *testing.T) {
	const n = 90
	var gate atomic.Bool
	err := ForEachChunkCtx(context.Background(), 2, n, 30, func(i int) error {
		switch {
		case i == 60:
			// Fail immediately in the last chunk, before index 3 runs.
			gate.Store(true)
			return fmt.Errorf("fail@%d", i)
		case i == 3:
			// Give the high failure every chance to land first.
			for j := 0; j < 1000 && !gate.Load(); j++ {
				runtime.Gosched()
			}
			return fmt.Errorf("fail@%d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "fail@3" {
		t.Fatalf("err = %v, want fail@3 (lowest failing index must win)", err)
	}
}

// TestForEachCtxNoRecorderAllocFree is the regression gate for the nil-
// recorder hot path: the inline fast path must not allocate at all, and the
// worker path must allocate O(workers) per fan-out — never O(n).
func TestForEachCtxNoRecorderAllocFree(t *testing.T) {
	ctx := context.Background()
	var sink atomic.Int64
	fn := func(i int) error {
		sink.Add(int64(i))
		return nil
	}
	inline := testing.AllocsPerRun(20, func() {
		if err := ForEachCtx(ctx, 1, 1000, fn); err != nil {
			t.Fatal(err)
		}
	})
	if inline != 0 {
		t.Errorf("inline ForEachCtx allocs = %v, want 0", inline)
	}
	workers := testing.AllocsPerRun(20, func() {
		if err := ForEachCtx(ctx, 4, 10000, fn); err != nil {
			t.Fatal(err)
		}
	})
	// Goroutines, the waitgroup/closure state, and chunk bookkeeping cost a
	// handful of allocations per *call*; the budget is far below one
	// allocation per index (10000 indices here).
	if workers > 32 {
		t.Errorf("worker ForEachCtx allocs = %v, want <= 32 (per-call, not per-index)", workers)
	}
}

// TestForEachChunkCtxTraceSpansPerChunk checks chunked tracing: one span
// per chunk, named by the index span it covers.
func TestForEachChunkCtxTraceSpansPerChunk(t *testing.T) {
	rec := trace.NewWithClock(func() time.Duration { return 0 })
	ctx := trace.WithTask(trace.WithRecorder(context.Background(), rec), "row")
	if err := ForEachChunkCtx(ctx, 2, 10, 4, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	got := traceNames(t, rec)
	want := []string{"row#0-4", "row#4-8", "row#8-10"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("spans %v, want %v (one span per chunk)", got, want)
	}
}

// TestCloseRacesSubmitCtx pins drain-on-close semantics under a genuine
// race: submitters hammering SubmitCtx while Close runs concurrently. Every
// submission the pool accepted (nil error) must execute before Close
// returns — no panic on a closed channel, no dropped task — and every
// refused submission must report ErrClosed or the submitter's context
// error, nothing else.
func TestCloseRacesSubmitCtx(t *testing.T) {
	for round := 0; round < 20; round++ {
		p := New(2)
		var accepted, executed atomic.Int64
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 50; i++ {
					err := p.SubmitCtx(context.Background(), func() {
						executed.Add(1)
					})
					switch {
					case err == nil:
						accepted.Add(1)
					case errors.Is(err, ErrClosed):
						return
					default:
						t.Errorf("SubmitCtx = %v, want nil or ErrClosed", err)
						return
					}
				}
			}()
		}
		closed := make(chan struct{})
		go func() {
			<-start
			// Let some submissions through before closing so both sides of
			// the race occur across rounds.
			runtime.Gosched()
			if err := p.Close(); err != nil {
				t.Errorf("Close = %v", err)
			}
			close(closed)
		}()
		close(start)
		wg.Wait()
		<-closed
		// Close returns only after the queue drained: at this point every
		// accepted task has run.
		if a, e := accepted.Load(), executed.Load(); a != e {
			t.Fatalf("round %d: accepted %d tasks but executed %d (drain-on-close violated)", round, a, e)
		}
	}
}

// TestCloseRacesSubmit is the same race through the blocking Submit path.
func TestCloseRacesSubmit(t *testing.T) {
	for round := 0; round < 20; round++ {
		p := New(1)
		var accepted, executed atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 30; i++ {
					if err := p.Submit(func() { executed.Add(1) }); err != nil {
						if !errors.Is(err, ErrClosed) {
							t.Errorf("Submit = %v, want nil or ErrClosed", err)
						}
						return
					}
					accepted.Add(1)
				}
			}()
		}
		if err := p.Close(); err != nil {
			t.Fatalf("Close = %v", err)
		}
		wg.Wait()
		if a, e := accepted.Load(), executed.Load(); a != e {
			t.Fatalf("round %d: accepted %d executed %d", round, a, e)
		}
	}
}

// TestForEachCtxErrorDuringPoolClose runs a failing ForEachCtx fan-out while
// an unrelated Pool is closing on the same scheduler: the fan-out's
// lowest-index error guarantee must hold regardless of concurrent pool
// teardown activity, and the closing pool must still drain its own queue.
func TestForEachCtxErrorDuringPoolClose(t *testing.T) {
	p := New(2)
	var executed atomic.Int64
	for i := 0; i < 8; i++ {
		if err := p.Submit(func() {
			time.Sleep(time.Millisecond)
			executed.Add(1)
		}); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	closed := make(chan struct{})
	go func() {
		if err := p.Close(); err != nil {
			t.Errorf("Close = %v", err)
		}
		close(closed)
	}()
	errAt := func(i int) error { return fmt.Errorf("fail@%d", i) }
	err := ForEachCtx(context.Background(), 4, 64, func(i int) error {
		if i%5 == 3 { // fails at 3, 8, 13, ... — lowest is 3
			return errAt(i)
		}
		return nil
	})
	if err == nil || err.Error() != "fail@3" {
		t.Fatalf("ForEachCtx error = %v, want fail@3 (lowest index)", err)
	}
	<-closed
	if got := executed.Load(); got != 8 {
		t.Fatalf("closing pool executed %d of 8 queued tasks", got)
	}
}
