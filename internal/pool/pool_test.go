package pool

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersDefault(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
}

func TestPoolSubmitWait(t *testing.T) {
	p := New(4)
	defer p.Close()
	var sum int64
	for i := 1; i <= 100; i++ {
		i := i
		p.Submit(func() { atomic.AddInt64(&sum, int64(i)) })
	}
	p.Wait()
	if sum != 5050 {
		t.Fatalf("sum = %d, want 5050", sum)
	}
	// The pool is reusable after Wait.
	p.Submit(func() { atomic.AddInt64(&sum, 1) })
	p.Wait()
	if sum != 5051 {
		t.Fatalf("second round sum = %d, want 5051", sum)
	}
}

func TestPoolPanicPropagation(t *testing.T) {
	p := New(2)
	defer p.Close()
	p.Submit(func() { panic("boom") })
	p.Submit(func() {}) // healthy task alongside the panicking one
	func() {
		defer func() {
			r := recover()
			pe, ok := r.(*PanicError)
			if !ok {
				t.Fatalf("recovered %T (%v), want *PanicError", r, r)
			}
			if pe.Value != "boom" {
				t.Fatalf("panic value = %v, want boom", pe.Value)
			}
			if len(pe.Stack) == 0 {
				t.Fatal("panic stack not captured")
			}
		}()
		p.Wait()
		t.Fatal("Wait returned instead of panicking")
	}()
	// The panic is consumed: the next round is clean.
	p.Submit(func() {})
	p.Wait()
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		n := 1000
		hits := make([]int32, n)
		ForEach(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, h)
			}
		}
	}
}

func TestForEachInlineWhenSingle(t *testing.T) {
	// One worker must run on the calling goroutine, in index order.
	var order []int
	ForEach(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("inline order = %v", order)
		}
	}
}

func TestForEachPanic(t *testing.T) {
	defer func() {
		r := recover()
		pe, ok := r.(*PanicError)
		if !ok || pe.Value != "kaput" {
			t.Fatalf("recovered %v, want *PanicError{kaput}", r)
		}
	}()
	ForEach(4, 100, func(i int) {
		if i == 42 {
			panic("kaput")
		}
	})
	t.Fatal("ForEach returned instead of panicking")
}

func TestForEachZeroItems(t *testing.T) {
	ForEach(4, 0, func(int) { t.Fatal("fn called for n=0") })
}
