package pool

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"opendrc/internal/trace"
)

func TestWorkersDefault(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
}

func TestPoolSubmitWait(t *testing.T) {
	p := New(4)
	defer p.Close()
	var sum int64
	for i := 1; i <= 100; i++ {
		i := i
		p.Submit(func() { atomic.AddInt64(&sum, int64(i)) })
	}
	p.Wait()
	if sum != 5050 {
		t.Fatalf("sum = %d, want 5050", sum)
	}
	// The pool is reusable after Wait.
	p.Submit(func() { atomic.AddInt64(&sum, 1) })
	p.Wait()
	if sum != 5051 {
		t.Fatalf("second round sum = %d, want 5051", sum)
	}
}

func TestPoolPanicPropagation(t *testing.T) {
	p := New(2)
	defer p.Close()
	p.Submit(func() { panic("boom") })
	p.Submit(func() {}) // healthy task alongside the panicking one
	func() {
		defer func() {
			r := recover()
			pe, ok := r.(*PanicError)
			if !ok {
				t.Fatalf("recovered %T (%v), want *PanicError", r, r)
			}
			if pe.Value != "boom" {
				t.Fatalf("panic value = %v, want boom", pe.Value)
			}
			if len(pe.Stack) == 0 {
				t.Fatal("panic stack not captured")
			}
		}()
		p.Wait()
		t.Fatal("Wait returned instead of panicking")
	}()
	// The panic is consumed: the next round is clean.
	p.Submit(func() {})
	p.Wait()
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		n := 1000
		hits := make([]int32, n)
		ForEach(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, h)
			}
		}
	}
}

func TestForEachInlineWhenSingle(t *testing.T) {
	// One worker must run on the calling goroutine, in index order.
	var order []int
	ForEach(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("inline order = %v", order)
		}
	}
}

func TestForEachPanic(t *testing.T) {
	defer func() {
		r := recover()
		pe, ok := r.(*PanicError)
		if !ok || pe.Value != "kaput" {
			t.Fatalf("recovered %v, want *PanicError{kaput}", r)
		}
	}()
	ForEach(4, 100, func(i int) {
		if i == 42 {
			panic("kaput")
		}
	})
	t.Fatal("ForEach returned instead of panicking")
}

func TestForEachZeroItems(t *testing.T) {
	ForEach(4, 0, func(int) { t.Fatal("fn called for n=0") })
}

func TestSubmitAfterClose(t *testing.T) {
	p := New(2)
	if err := p.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := p.Submit(func() { t.Error("task ran after Close") }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	if err := p.SubmitCtx(context.Background(), func() {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("SubmitCtx after Close = %v, want ErrClosed", err)
	}
}

func TestDoubleClose(t *testing.T) {
	p := New(2)
	if err := p.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := p.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
}

func TestSubmitCtxCancelled(t *testing.T) {
	p := New(1)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.SubmitCtx(ctx, func() { t.Error("task ran under cancelled ctx") }); !errors.Is(err, context.Canceled) {
		t.Fatalf("SubmitCtx(cancelled) = %v, want context.Canceled", err)
	}
	// The refused submission must not leak a pending count: Wait returns.
	p.Wait()
}

func TestSubmitCtxFullQueue(t *testing.T) {
	p := New(1)
	defer p.Close()
	// Block the single worker and fill the queue so the next SubmitCtx
	// has to wait on the channel, then cancel it.
	release := make(chan struct{})
	p.Submit(func() { <-release })
	for i := 0; i < cap(p.tasks); i++ {
		p.Submit(func() {})
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := p.SubmitCtx(ctx, func() { t.Error("task ran after cancelled enqueue") })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("SubmitCtx on full queue = %v, want DeadlineExceeded", err)
	}
	close(release)
	p.Wait()
}

func TestWaitCtxCancelDrains(t *testing.T) {
	p := New(2)
	defer p.Close()
	var done atomic.Int32
	release := make(chan struct{})
	for i := 0; i < 4; i++ {
		p.Submit(func() { <-release; done.Add(1) })
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.WaitCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("WaitCtx(cancelled) = %v, want context.Canceled", err)
	}
	// Cancellation abandoned the wait but not the tasks: they drain.
	close(release)
	p.Wait()
	if got := done.Load(); got != 4 {
		t.Fatalf("drained %d tasks after cancelled WaitCtx, want 4", got)
	}
}

func TestWaitCtxReturnsPanicError(t *testing.T) {
	p := New(2)
	defer p.Close()
	p.Submit(func() { panic("boom") })
	err := p.WaitCtx(context.Background())
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "boom" {
		t.Fatalf("WaitCtx = %v, want *PanicError{boom}", err)
	}
}

func TestForEachCtxLowestIndexError(t *testing.T) {
	// Multiple indices fail; the reported error must be the lowest index,
	// independent of worker count.
	for _, workers := range []int{1, 2, 4, 8} {
		err := ForEachCtx(context.Background(), workers, 100, func(i int) error {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return fmt.Errorf("fail@%d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail@3" {
			t.Fatalf("workers=%d: err = %v, want fail@3", workers, err)
		}
	}
}

func TestForEachCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := ForEachCtx(ctx, 4, 1000, func(i int) error {
		if ran.Add(1) == 10 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ForEachCtx after cancel = %v, want context.Canceled", err)
	}
	if ran.Load() == 1000 {
		t.Fatal("cancellation did not stop the index handout")
	}
}

func TestForEachCtxPanicAsError(t *testing.T) {
	err := ForEachCtx(context.Background(), 4, 50, func(i int) error {
		if i == 7 {
			panic("kaput")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "kaput" {
		t.Fatalf("ForEachCtx = %v, want *PanicError{kaput}", err)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("panic stack not captured")
	}
}

// traceNames exports rec and returns the names of its pool-track spans.
func traceNames(t *testing.T, rec *trace.Recorder) []string {
	t.Helper()
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, ev := range file.TraceEvents {
		if ev["ph"] == "X" && ev["cat"] == "pool" {
			names = append(names, ev["name"].(string))
		}
	}
	sort.Strings(names)
	return names
}

func TestForEachCtxRecordsTaskSpans(t *testing.T) {
	for _, workers := range []int{1, 4} {
		rec := trace.NewWithClock(func() time.Duration { return 0 })
		ctx := trace.WithTask(trace.WithRecorder(context.Background(), rec), "row")
		err := ForEachCtx(ctx, workers, 3, func(i int) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		got := traceNames(t, rec)
		want := []string{"row#0", "row#1", "row#2"}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: spans %v, want %v (inline path must trace too)", workers, got, want)
		}
	}
}

func TestForEachCtxNoRecorderNoSpans(t *testing.T) {
	// Without a recorder the fan-out must not pay any tracing cost or panic.
	err := ForEachCtx(context.Background(), 2, 4, func(i int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
}

func TestSubmitCtxRecordsTaskSpans(t *testing.T) {
	rec := trace.NewWithClock(func() time.Duration { return 0 })
	ctx := trace.WithTask(trace.WithRecorder(context.Background(), rec), "prefetch")
	p := New(2)
	defer p.Close()
	for i := 0; i < 3; i++ {
		if err := p.SubmitCtx(ctx, func() {}); err != nil {
			t.Fatal(err)
		}
	}
	p.Wait()
	got := traceNames(t, rec)
	want := []string{"prefetch#0", "prefetch#1", "prefetch#2"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("spans %v, want %v (named by submission order)", got, want)
	}
}
