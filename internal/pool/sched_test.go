package pool

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"opendrc/internal/faults"
	"opendrc/internal/trace"
)

// newBareScheduler builds a scheduler with no shared workers, so dispatch
// can be driven synchronously through next() — the deterministic harness
// for the policy tests.
func newBareScheduler(policy SchedPolicy, weights map[string]int) *Scheduler {
	s := &Scheduler{
		policy:        policy,
		defaultWeight: 1,
		weights:       weights,
		tenants:       map[string]*schedTenant{},
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// enqueueBare registers a fan-out without a serving caller.
func enqueueBare(t *testing.T, s *Scheduler, tenant string, n int) *fanout {
	t.Helper()
	f := &fanout{
		ctx: context.Background(), tenant: tenant,
		fn: func(int) error { return nil },
		n:  n, chunk: 1, cap: n,
		done: make(chan struct{}),
	}
	f.failIdx.Store(int64(n))
	if !s.enqueue(f) {
		t.Fatalf("enqueue %s refused", tenant)
	}
	return f
}

// TestSchedulerStrideWeights pins the weighted-fair dispatch order without
// any goroutines: with tenants A (weight 1) and B (weight 3) both saturated,
// a run of shared-worker dispatches serves B three times as often, and the
// sequence is exactly the stride schedule.
func TestSchedulerStrideWeights(t *testing.T) {
	s := newBareScheduler(FairShare, map[string]int{"B": 3})
	enqueueBare(t, s, "A", 100)
	enqueueBare(t, s, "B", 100)
	counts := map[string]int{}
	for i := 0; i < 40; i++ {
		f, _, _, ok := s.next(true)
		if !ok {
			t.Fatalf("dispatch %d: nothing runnable", i)
		}
		counts[f.tenant]++
	}
	if counts["A"] != 10 || counts["B"] != 30 {
		t.Fatalf("dispatches = %v, want A:10 B:30 (weight 1 vs 3)", counts)
	}
}

// TestSchedulerFIFOOrder pins the baseline policy: FIFO drains fan-outs in
// global arrival order regardless of tenant.
func TestSchedulerFIFOOrder(t *testing.T) {
	s := newBareScheduler(FIFO, nil)
	enqueueBare(t, s, "first", 5)
	enqueueBare(t, s, "second", 5)
	for i := 0; i < 5; i++ {
		f, _, _, _ := s.next(true)
		if f.tenant != "first" {
			t.Fatalf("dispatch %d went to %q before the older fan-out drained", i, f.tenant)
		}
	}
	f, _, _, _ := s.next(true)
	if f.tenant != "second" {
		t.Fatalf("dispatch after drain went to %q, want second", f.tenant)
	}
}

// TestSchedulerIdleRejoin: a tenant entering (or re-entering from idle)
// gets exactly rejoinWarp of latency credit behind the active pass front —
// enough to run a burst ahead of a saturating co-tenant's queue, never the
// unbounded banked credit a long sleep would otherwise accumulate.
func TestSchedulerIdleRejoin(t *testing.T) {
	// Early on, the front is closer than the warp: credit clamps at zero.
	s := newBareScheduler(FairShare, nil)
	enqueueBare(t, s, "busy", 400)
	for i := 0; i < 20; i++ {
		s.next(true)
	}
	enqueueBare(t, s, "early", 10)
	s.mu.Lock()
	early := s.tenants["early"].pass
	s.mu.Unlock()
	if early != 0 {
		t.Fatalf("early joiner pass = %d, want clamp at 0", early)
	}

	// Once the front is far ahead, a joiner lands exactly rejoinWarp behind
	// it — not at zero, which would let accumulated lag monopolize the
	// workers.
	s = newBareScheduler(FairShare, nil)
	enqueueBare(t, s, "busy", 400)
	for i := 0; i < 300; i++ {
		s.next(true)
	}
	s.mu.Lock()
	busy := s.tenants["busy"].pass
	s.mu.Unlock()
	enqueueBare(t, s, "fresh", 100)
	s.mu.Lock()
	fresh := s.tenants["fresh"].pass
	s.mu.Unlock()
	if want := busy - rejoinWarp; fresh != want {
		t.Fatalf("fresh tenant joined at pass %d, want front %d - warp %d = %d",
			fresh, busy, uint64(rejoinWarp), want)
	}

	// The warp is a floor, not a push-down: a tenant whose streams merely
	// gapped for an instant rejoins at the pass its recent service earned —
	// it must not mint fresh credit and gate co-tenants that genuinely lag.
	bf := enqueueBare(t, s, "blip", 10)
	for i := 0; i < 10; i++ {
		if f, _, _, ok := s.next(true); !ok || f.tenant != "blip" {
			t.Fatalf("take %d: expected to drain the blip tenant's fan-out", i)
		}
	}
	s.mu.Lock()
	s.removeLocked(bf)             // exhausted fan-outs are removed lazily
	s.tenants["blip"].inflight = 0 // bare harness never runs chunks
	if q := len(s.tenants["blip"].queue); q != 0 {
		s.mu.Unlock()
		t.Fatalf("blip tenant still has %d queued fan-outs after draining", q)
	}
	earned := s.tenants["blip"].pass
	s.mu.Unlock()
	enqueueBare(t, s, "blip", 10)
	s.mu.Lock()
	rejoined := s.tenants["blip"].pass
	s.mu.Unlock()
	if rejoined != earned {
		t.Fatalf("idle rejoin moved a recently-active tenant's pass %d -> %d; the warp must only lift",
			earned, rejoined)
	}
}

// TestSchedulerForEachEquivalence re-runs the chunking contract through the
// scheduled path: with a Scheduler in the context, per-index results, the
// lowest-index error, panic wrapping, and cancellation behave exactly like
// the direct path, for every forced chunk size.
func TestSchedulerForEachEquivalence(t *testing.T) {
	sched := NewScheduler(SchedConfig{Workers: 3})
	defer sched.Close()
	base := WithTenant(WithScheduler(context.Background(), sched), "t")
	const n = 100
	for _, workers := range []int{3, 8} {
		for _, chunk := range []int{1, 7, n} {
			slots := make([]int, n)
			err := ForEachChunkCtx(base, workers, n, chunk, func(i int) error {
				slots[i] = i * i
				return nil
			})
			if err != nil {
				t.Fatalf("workers=%d chunk=%d: %v", workers, chunk, err)
			}
			for i, v := range slots {
				if v != i*i {
					t.Fatalf("workers=%d chunk=%d: slot %d = %d", workers, chunk, i, v)
				}
			}

			err = ForEachChunkCtx(base, workers, n, chunk, func(i int) error {
				if i%7 == 3 {
					return fmt.Errorf("fail@%d", i)
				}
				return nil
			})
			if err == nil || err.Error() != "fail@3" {
				t.Fatalf("workers=%d chunk=%d: err = %v, want fail@3", workers, chunk, err)
			}

			err = ForEachChunkCtx(base, workers, n, chunk, func(i int) error {
				if i == 5 {
					panic("kaput")
				}
				return nil
			})
			var pe *PanicError
			if !errors.As(err, &pe) || pe.Value != "kaput" {
				t.Fatalf("workers=%d chunk=%d: err = %v, want *PanicError{kaput}", workers, chunk, err)
			}

			ctx, cancel := context.WithCancel(base)
			var ran atomic.Int32
			err = ForEachChunkCtx(ctx, workers, n, chunk, func(i int) error {
				if ran.Add(1) == 5 {
					cancel()
				}
				return nil
			})
			cancel()
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("workers=%d chunk=%d: cancel err = %v", workers, chunk, err)
			}
		}
	}
}

// TestSchedulerStarvation is the regression test for the bug the scheduler
// fixes: a small tenant's fan-out (1000 tiny tasks) submitted while a large
// tenant's fan-out (10 huge tasks) saturates a 2-worker scheduler must
// complete before the large tenant's tail, for every chunk size.
func TestSchedulerStarvation(t *testing.T) {
	for _, chunk := range []int{1, 7, 1000} {
		sched := NewScheduler(SchedConfig{Workers: 2})
		hctx := WithTenant(WithScheduler(context.Background(), sched), "large")
		lctx := WithTenant(WithScheduler(context.Background(), sched), "small")

		var largeDone, largeStarted atomic.Bool
		heavy := make(chan error, 1)
		go func() {
			heavy <- ForEachChunkCtx(hctx, 2, 10, 1, func(i int) error {
				largeStarted.Store(true)
				time.Sleep(30 * time.Millisecond)
				return nil
			})
			largeDone.Store(true)
		}()
		for !largeStarted.Load() {
			time.Sleep(time.Millisecond)
		}

		var sum atomic.Int64
		if err := ForEachChunkCtx(lctx, 2, 1000, chunk, func(i int) error {
			sum.Add(int64(i))
			return nil
		}); err != nil {
			t.Fatalf("chunk=%d: small tenant: %v", chunk, err)
		}
		if largeDone.Load() {
			t.Fatalf("chunk=%d: small tenant finished after the large tenant's tail (starved)", chunk)
		}
		if got, want := sum.Load(), int64(1000*999/2); got != want {
			t.Fatalf("chunk=%d: small tenant sum = %d, want %d", chunk, got, want)
		}
		if err := <-heavy; err != nil {
			t.Fatalf("chunk=%d: large tenant: %v", chunk, err)
		}
		snap := sched.Snapshot()
		if len(snap.Tenants) != 2 || snap.Tenants[0].Tenant != "large" || snap.Tenants[1].Tenant != "small" {
			t.Fatalf("chunk=%d: snapshot tenants = %+v", chunk, snap.Tenants)
		}
		sched.Close()
	}
}

// TestSchedulerInlineAllocFree extends the PR 6 allocation gate: attaching
// a scheduler and tenant to the context must not cost the single-worker
// inline fast path a single allocation.
func TestSchedulerInlineAllocFree(t *testing.T) {
	sched := NewScheduler(SchedConfig{Workers: 2})
	defer sched.Close()
	ctx := WithTenant(WithScheduler(context.Background(), sched), "t")
	var sink atomic.Int64
	fn := func(i int) error {
		sink.Add(int64(i))
		return nil
	}
	inline := testing.AllocsPerRun(20, func() {
		if err := ForEachCtx(ctx, 1, 1000, fn); err != nil {
			t.Fatal(err)
		}
	})
	if inline != 0 {
		t.Errorf("inline ForEachCtx with scheduler allocs = %v, want 0", inline)
	}
}

// TestSchedulerClosedFallsBack: fan-outs submitted after Close still run
// (directly), with identical results.
func TestSchedulerClosedFallsBack(t *testing.T) {
	sched := NewScheduler(SchedConfig{Workers: 2})
	sched.Close()
	sched.Close() // idempotent
	ctx := WithTenant(WithScheduler(context.Background(), sched), "t")
	var sum atomic.Int64
	if err := ForEachCtx(ctx, 4, 100, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got, want := sum.Load(), int64(100*99/2); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

// TestSchedulerChaosSiteSched drives the misbehaving-tenant seams: an
// injected error on one tenant's chunk fails only that tenant's fan-out,
// and an uncancellable stall on one tenant does not stop a co-tenant from
// completing while the victim is stuck.
func TestSchedulerChaosSiteSched(t *testing.T) {
	inj := faults.New(1, faults.Injection{
		Site: faults.SiteSched, Key: "victim#0", Mode: faults.Error,
	})
	sched := NewScheduler(SchedConfig{Workers: 2, Faults: inj})
	vctx := WithTenant(WithScheduler(context.Background(), sched), "victim")
	octx := WithTenant(WithScheduler(context.Background(), sched), "ok")

	err := ForEachChunkCtx(vctx, 2, 50, 5, func(i int) error { return nil })
	var ie *faults.InjectedError
	if !errors.As(err, &ie) || ie.Site != faults.SiteSched {
		t.Fatalf("victim err = %v, want injected SiteSched error", err)
	}
	var sum atomic.Int64
	if err := ForEachCtx(octx, 2, 100, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatalf("co-tenant: %v", err)
	}
	if got, want := sum.Load(), int64(100*99/2); got != want {
		t.Fatalf("co-tenant sum = %d, want %d", got, want)
	}
	sched.Close()

	// A non-cooperative stall occupies one victim chunk; the co-tenant's
	// fan-out must finish while the victim is still stuck.
	stall := faults.New(1, faults.Injection{
		Site: faults.SiteSched, Key: "victim#0", Mode: faults.Stall,
		Stall: 2 * time.Second, IgnoreCancel: true,
	})
	sched = NewScheduler(SchedConfig{Workers: 2, Faults: stall})
	vctx = WithTenant(WithScheduler(context.Background(), sched), "victim")
	octx = WithTenant(WithScheduler(context.Background(), sched), "ok")
	var victimDone atomic.Bool
	vdone := make(chan error, 1)
	go func() {
		vdone <- ForEachChunkCtx(vctx, 2, 10, 1, func(i int) error { return nil })
		victimDone.Store(true)
	}()
	var ran atomic.Int64
	if err := ForEachCtx(octx, 2, 200, func(i int) error {
		ran.Add(1)
		return nil
	}); err != nil {
		t.Fatalf("co-tenant under stall: %v", err)
	}
	if victimDone.Load() {
		t.Fatal("victim finished before its 2s stall elapsed — stall did not fire")
	}
	if got := ran.Load(); got != 200 {
		t.Fatalf("co-tenant ran %d of 200 tasks while victim stalled", got)
	}
	if err := <-vdone; err != nil {
		t.Fatalf("stalled victim: %v", err)
	}
	sched.Close()
}

// TestSchedulerTraceDecisions: shared-worker dispatches record "sched:"
// instants on the pool track, and chunk spans carry the tenant tag.
func TestSchedulerTraceDecisions(t *testing.T) {
	sched := NewScheduler(SchedConfig{Workers: 2})
	defer sched.Close()
	rec := trace.NewWithClock(func() time.Duration { return 0 })
	ctx := trace.WithTask(trace.WithRecorder(context.Background(), rec), "row")
	ctx = WithTenant(WithScheduler(ctx, sched), "tn")
	// A gate keeps chunks busy long enough that the shared workers (not
	// only the serving caller) dispatch some of them.
	if err := ForEachChunkCtx(ctx, 3, 30, 1, func(i int) error {
		time.Sleep(time.Millisecond)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range schedInstantNames(t, rec) {
		if n == "sched:tn" {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no sched:tn dispatch instant recorded; instants = %v", schedInstantNames(t, rec))
	}
}

// schedInstantNames extracts the scheduler-decision instants ("sched" cat,
// instant phase) from the recorded timeline.
func schedInstantNames(t *testing.T, rec *trace.Recorder) []string {
	t.Helper()
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, ev := range file.TraceEvents {
		if ev["ph"] == "i" && ev["cat"] == "sched" {
			names = append(names, ev["name"].(string))
		}
	}
	return names
}
