// Fair scheduling across tenants. The service runs many sessions on one
// process; without a scheduler, concurrent fan-outs drain in submission
// order on whatever goroutines the OS happens to run, and a tenant
// submitting large full-deck checks starves a co-tenant's small delta
// checks. The paper's hierarchical decomposition already splits every check
// into small uniform work units (per-cell, per-row, per-tile chunks), so
// fairness can happen at chunk granularity: a Scheduler keeps one FIFO
// queue of fan-outs per tenant and a weighted-fair (stride) dispatcher
// picks which tenant's next chunk a shared worker runs. Task-granularity
// interleaving beats static worker partitioning because an idle tenant's
// share flows to the busy ones instead of idling a partition.
//
// Liveness is caller-participation: the goroutine that submitted a fan-out
// always helps execute its own chunks (counted against the fan-out's worker
// cap). Every fan-out therefore makes progress even when all shared workers
// are busy with other tenants — and a nested fan-out inside a chunk body
// can never deadlock waiting for a free worker. Self-service is metered by
// the same stride accounting as worker dispatch: under FairShare a caller
// whose tenant has run ahead of a lagging tenant that can actually absorb
// service yields until the laggard catches up (see gatedLocked), so
// fairness holds even when callers outnumber the shared workers. The
// lowest-pass tenant is never gated, which preserves liveness.
//
// Determinism is untouched: the scheduler only reorders chunk execution,
// and fan-out callers write results into per-index slots (reports are
// sorted and merged independent of schedule), so canonical reports stay
// byte-identical under any co-tenant load. The equivalence tests pin error,
// panic, and cancellation semantics to the direct forEachChunked path.
package pool

import (
	"context"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"

	"opendrc/internal/faults"
	"opendrc/internal/trace"
)

// SchedPolicy selects how the dispatcher picks the next chunk.
type SchedPolicy int

const (
	// FairShare is weighted stride scheduling over the per-tenant queues:
	// every chunk take — shared-worker dispatch and caller self-service
	// alike — advances the tenant's pass by strideOne/weight, and the
	// tenant with the lowest pass is served next.
	FairShare SchedPolicy = iota
	// FIFO serves fan-outs in global submission order — the pre-scheduler
	// baseline the fairness benchmark compares against.
	FIFO
)

// String implements fmt.Stringer.
func (p SchedPolicy) String() string {
	switch p {
	case FairShare:
		return "fair"
	case FIFO:
		return "fifo"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// strideOne is the stride of a weight-1 tenant; a weight-w tenant advances
// its pass 1/w as fast and is served w times as often under contention.
const strideOne = 1 << 20

// rejoinWarp is the bounded latency credit (in weight-1 chunk takes) a
// tenant receives when it transitions idle → active: it rejoins that far
// *behind* the current pass front instead of at it. Borrowed-virtual-time
// style — a bursty latency-sensitive tenant (small delta checks) runs its
// burst ahead of a saturating tenant's queue instead of interleaving with
// it, while the credit's fixed size bounds how much long-run share the
// bursts can borrow. A continuously-busy tenant never goes idle and never
// collects credit, so sustained loads still split by weight alone.
const rejoinWarp = 256 * strideOne

// DefaultTenant is the queue shared by fan-outs without an explicit tenant
// tag.
const DefaultTenant = "default"

// SchedConfig tunes a Scheduler.
type SchedConfig struct {
	// Workers is the number of shared dispatcher goroutines (<= 0 selects
	// GOMAXPROCS). These are the cross-tenant capacity; each fan-out's
	// submitting goroutine additionally serves its own chunks.
	Workers int
	// Policy selects the dispatch order. The zero value is FairShare.
	Policy SchedPolicy
	// DefaultWeight applies to tenants absent from Weights (<= 0 means 1).
	DefaultWeight int
	// Weights maps tenant name → stride weight (higher = larger share).
	Weights map[string]int
	// Faults drives the chaos suite through the faults.SiteSched seam at
	// chunk dispatch. Nil is inert.
	Faults *faults.Injector
}

// schedTenant is one tenant's dispatch state.
type schedTenant struct {
	name   string
	weight int

	// All guarded by the scheduler's mu.
	pass       uint64    // stride pass: lowest pass is served next
	burstUntil uint64    // pass front at the last idle join; below it the tenant is bursting
	queue      []*fanout // FIFO of fan-outs with chunks left to hand out
	inflight   int       // chunks currently executing
	present    int       // open Enter spans (checks in flight)
	dispatched uint64    // chunks handed to shared workers
	selfServed uint64    // chunks run by the fan-outs' own callers
	gatedWaits uint64    // times a caller yielded to a lagging tenant
	fanouts    uint64    // fan-outs accepted
}

// Scheduler is the tenant-aware dispatch layer. Attach one to a context
// with WithScheduler and every multi-worker ForEachCtx/ForEachChunkCtx
// below it routes its chunks through the shared, weighted-fair worker set.
// The zero value is not usable; construct with NewScheduler and Close when
// done.
type Scheduler struct {
	policy        SchedPolicy
	defaultWeight int
	weights       map[string]int
	faults        *faults.Injector
	nworkers      int

	mu       sync.Mutex
	cond     *sync.Cond
	closed   bool
	tenants  map[string]*schedTenant
	names    []string // tenant registration order: deterministic scans
	arrivals uint64   // global fan-out arrival counter
	workers  sync.WaitGroup
}

// NewScheduler starts a scheduler with its shared workers running.
func NewScheduler(cfg SchedConfig) *Scheduler {
	w := Workers(cfg.Workers)
	dw := cfg.DefaultWeight
	if dw <= 0 {
		dw = 1
	}
	weights := make(map[string]int, len(cfg.Weights))
	for name, wt := range cfg.Weights {
		weights[name] = wt
	}
	s := &Scheduler{
		policy:        cfg.Policy,
		defaultWeight: dw,
		weights:       weights,
		faults:        cfg.Faults,
		nworkers:      w,
		tenants:       map[string]*schedTenant{},
	}
	s.cond = sync.NewCond(&s.mu)
	s.workers.Add(w)
	for i := 0; i < w; i++ {
		// Worker 0 is the reserved floor: it serves unconditionally, so every
		// tenant's queue keeps draining no matter what the gate says.
		go s.worker(i == 0)
	}
	return s
}

// Close stops the shared workers once no work is runnable. Fan-outs still
// in flight finish on their submitting goroutines (caller participation);
// fan-outs submitted after Close run directly, without cross-tenant
// interleaving. Idempotent.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
	s.workers.Wait()
}

// Forget drops an idle tenant's bookkeeping (a deleted session's tenant
// would otherwise accumulate forever). A tenant with queued or running
// work is left untouched; it can be forgotten once it drains.
func (s *Scheduler) Forget(tenant string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenants[tenant]
	if t == nil || len(t.queue) > 0 || t.inflight > 0 || t.present > 0 {
		return
	}
	delete(s.tenants, tenant)
	for i, n := range s.names {
		if n == tenant {
			s.names = append(s.names[:i], s.names[i+1:]...)
			break
		}
	}
}

// SchedTenantSnapshot is one tenant's row in a Snapshot.
type SchedTenantSnapshot struct {
	Tenant     string `json:"tenant"`
	Weight     int    `json:"weight"`
	Pass       uint64 `json:"pass"`
	Queued     int    `json:"queued_fanouts"`
	Inflight   int    `json:"inflight_chunks"`
	Present    int    `json:"open_checks"`
	Dispatched uint64 `json:"dispatched_chunks"`
	SelfServed uint64 `json:"self_served_chunks"`
	GatedWaits uint64 `json:"gated_waits"`
	Fanouts    uint64 `json:"fanouts"`
}

// SchedSnapshot is the scheduler's observable state (the /debug/sched
// payload): policy, shared worker count, and per-tenant accounting in
// tenant-name order.
type SchedSnapshot struct {
	Policy  string                `json:"policy"`
	Workers int                   `json:"workers"`
	Tenants []SchedTenantSnapshot `json:"tenants"`
}

// Snapshot captures the current dispatch state.
func (s *Scheduler) Snapshot() SchedSnapshot {
	snap := SchedSnapshot{Policy: s.policy.String(), Workers: s.nworkers}
	s.mu.Lock()
	for _, name := range s.names {
		t := s.tenants[name]
		snap.Tenants = append(snap.Tenants, SchedTenantSnapshot{
			Tenant: t.name, Weight: t.weight, Pass: t.pass,
			Queued: len(t.queue), Inflight: t.inflight, Present: t.present,
			Dispatched: t.dispatched, SelfServed: t.selfServed,
			GatedWaits: t.gatedWaits, Fanouts: t.fanouts,
		})
	}
	s.mu.Unlock()
	sort.Slice(snap.Tenants, func(i, j int) bool {
		return snap.Tenants[i].Tenant < snap.Tenants[j].Tenant
	})
	return snap
}

// fanout is one scheduled ForEachChunkCtx call: the work description plus
// the same failure-watermark bookkeeping forEachChunked keeps, so the
// scheduled and direct paths report identical errors.
type fanout struct {
	ctx    context.Context
	rec    *trace.Recorder
	label  string
	tenant string
	fn     func(int) error

	n, chunk, cap int
	arrival       uint64
	t             *schedTenant

	// Guarded by the scheduler's mu.
	nextLo    int  // next index to hand out (chunks go out in ascending order)
	running   int  // chunks currently executing
	queued    bool // still linked in the tenant queue
	completed bool // done has been closed

	failIdx atomic.Int64 // lowest recorded failure index; n = none
	fmu     sync.Mutex
	fail    *indexedErr
	done    chan struct{}
}

// exhaustedLocked reports that no further chunks will be handed out: the
// index space is consumed, a failure watermark was passed (chunks go out in
// ascending order, so nothing below it remains), or the fan-out's context
// is cancelled.
func (f *fanout) exhaustedLocked() bool {
	return f.nextLo >= f.n || int64(f.nextLo) > f.failIdx.Load() || f.ctx.Err() != nil
}

// takeLocked hands out the next chunk.
func (f *fanout) takeLocked() (lo, hi int) {
	lo = f.nextLo
	hi = lo + f.chunk
	if hi > f.n {
		hi = f.n
	}
	f.nextLo = hi
	f.running++
	return lo, hi
}

// record keeps the lowest-index error, mirroring forEachChunked.
func (f *fanout) record(i int, err error) {
	f.fmu.Lock()
	if f.fail == nil || i < f.fail.idx {
		f.fail = &indexedErr{idx: i, err: err}
		f.failIdx.Store(int64(i))
	}
	f.fmu.Unlock()
}

// runChunk executes the chunk [lo, hi) outside the scheduler lock: the
// SiteSched chaos seam first, then the indices under the same per-index
// failure watermark and panic recovery as the direct path, traced as one
// pool-track span tagged with the tenant.
func (f *fanout) runChunk(inj *faults.Injector, lo, hi int) {
	if inj != nil && !f.hitSched(inj, lo) {
		return
	}
	var stopSpan func(args ...trace.Arg)
	if f.rec != nil {
		stopSpan = f.rec.Begin(trace.TrackPool, "", chunkName(f.label, lo, hi), "pool")
	}
	for i := lo; i < hi; i++ {
		if int64(i) > f.failIdx.Load() {
			break
		}
		f.runIndex(i)
	}
	if stopSpan != nil {
		stopSpan(trace.Arg{Key: "tenant", Val: f.tenant})
	}
}

// hitSched evaluates the SiteSched seam for the chunk starting at lo,
// converting an injected error or panic into the fan-out's failure at that
// index. True means the chunk may run.
func (f *fanout) hitSched(inj *faults.Injector, lo int) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			f.record(lo, &PanicError{Value: r, Stack: debug.Stack()})
			ok = false
		}
	}()
	if err := inj.Hit(f.ctx, faults.SiteSched, fmt.Sprintf("%s#%d", f.tenant, lo)); err != nil {
		f.record(lo, err)
		return false
	}
	return true
}

// runIndex executes one index with panic recovery.
func (f *fanout) runIndex(i int) {
	defer func() {
		if r := recover(); r != nil {
			f.record(i, &PanicError{Value: r, Stack: debug.Stack()})
		}
	}()
	if err := f.fn(i); err != nil {
		f.record(i, err)
	}
}

// forEach is the scheduled counterpart of forEachChunked: enqueue the
// fan-out on the tenant's queue, serve its chunks from the calling
// goroutine while shared workers interleave it fairly with other tenants,
// then report with the direct path's exact semantics.
func (s *Scheduler) forEach(ctx context.Context, rec *trace.Recorder, label, tenant string, workers, n, chunk int, fn func(int) error) error {
	if chunk <= 0 {
		chunk = chunkFor(workers, n)
	}
	nChunks := (n + chunk - 1) / chunk
	if workers > nChunks {
		workers = nChunks
	}
	f := &fanout{
		ctx: ctx, rec: rec, label: label, tenant: tenant,
		fn: fn, n: n, chunk: chunk, cap: workers,
		done: make(chan struct{}),
	}
	f.failIdx.Store(int64(n))
	if !s.enqueue(f) {
		// The scheduler has shut down: run directly. Semantics are identical,
		// only cross-tenant interleaving is lost.
		return forEachChunked(ctx, rec, label, workers, n, chunk, fn)
	}
	s.serveOwn(f)
	<-f.done
	f.fmu.Lock()
	fail := f.fail
	f.fmu.Unlock()
	if fail != nil {
		return fail.err
	}
	return ctx.Err()
}

// enqueue registers the fan-out under its tenant. False when the scheduler
// is closed.
func (s *Scheduler) enqueue(f *fanout) bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	t := s.joinLocked(f.tenant)
	s.arrivals++
	f.arrival = s.arrivals
	f.t = t
	f.queued = true
	t.queue = append(t.queue, f)
	t.fanouts++
	s.mu.Unlock()
	s.cond.Broadcast()
	return true
}

// joinLocked resolves (creating or re-activating) the tenant's dispatch
// state. A tenant entering from fully idle — nothing queued, nothing
// running, no open presence span — is lifted to just behind the current
// pass front: at most rejoinWarp of latency credit. The lift is a floor,
// never a push-down — max(own pass, front − rejoinWarp) — so a tenant
// whose streams merely gapped for an instant keeps the pass its recent
// service earned instead of minting fresh credit and gating genuinely
// lagging co-tenants. Accumulated lag from a long sleep still cannot let
// a returning tenant monopolize the workers, and a pass left far ahead
// by its last burst cannot defer this one behind a saturating co-tenant's
// standing queue (pickLocked orders by pass, and the co-tenant's pass
// keeps advancing while the rejoiner's holds).
func (s *Scheduler) joinLocked(tenant string) *schedTenant {
	t := s.tenants[tenant]
	if t == nil {
		t = &schedTenant{name: tenant, weight: s.weightFor(tenant)}
		front := s.minActivePassLocked()
		t.pass, t.burstUntil = warpedJoinPass(front), front
		s.tenants[tenant] = t
		s.names = append(s.names, tenant)
	} else if len(t.queue) == 0 && t.inflight == 0 && t.present == 0 {
		front := s.minActivePassLocked()
		if wp := warpedJoinPass(front); wp > t.pass {
			t.pass = wp
		}
		t.burstUntil = front
	}
	return t
}

// burstingLocked reports that the tenant is still inside the latency
// credit of its last idle join: its pass has not yet caught back up to the
// front it joined behind. A bursting tenant is served caller-paced — the
// reserved worker may help, the other shared workers keep out: on
// few-core hosts, fanning a short burst across freshly-woken workers costs
// more in switches and straggler joins than the parallelism returns, and a
// continuously-busy tenant leaves burst within rejoinWarp takes anyway.
func (s *Scheduler) burstingLocked(t *schedTenant) bool {
	return s.policy == FairShare && t.pass < t.burstUntil
}

// Enter opens a presence span for tenant: the whole latency-sensitive work
// unit (one service check), not just the instants its fan-outs are queued.
// While a lagging tenant is present, co-tenant callers yield between their
// chunk takes (gatedLocked) even during its serial sections — on a busy
// host the run-queue delay of those sections, not chunk dispatch order, is
// what buries a small check under a saturating neighbor. The returned
// leave func closes the span (idempotent). Shared workers are never gated,
// so a present tenant that stalls degrades co-tenants to worker-only
// bandwidth at worst until its context dies.
func (s *Scheduler) Enter(tenant string) (leave func()) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return func() {}
	}
	t := s.joinLocked(tenant)
	t.present++
	s.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			s.mu.Lock()
			t.present--
			s.mu.Unlock()
			// The span's pass lag no longer gates anyone; wake yielding
			// co-tenant callers.
			s.cond.Broadcast()
		})
	}
}

// EnterCtx opens a presence span for the context's tenant on the context's
// scheduler, returning the leave func. A no-op closure when the context
// carries no scheduler.
func EnterCtx(ctx context.Context) func() {
	s := SchedulerFromContext(ctx)
	if s == nil {
		return func() {}
	}
	return s.Enter(TenantFromContext(ctx))
}

// YieldCtx parks the caller while its tenant is gated behind a lagging
// co-tenant. Fan-out callers yield automatically between chunk takes
// (serveOwn); this is the same courtesy for a tenant's serial sections —
// the engine calls it at rule boundaries, where it already polls for
// cancellation, so a batch check parks within one rule of a small
// co-tenant check starting instead of staying runnable beside it. Returns
// immediately when the context carries no scheduler, the scheduler is
// closed or not fair-share, the tenant is not gated, or the context is
// done; a parked caller wakes on any scheduling event or cancellation.
func YieldCtx(ctx context.Context) {
	s := SchedulerFromContext(ctx)
	if s == nil {
		return
	}
	s.yield(ctx, TenantFromContext(ctx))
}

func (s *Scheduler) yield(ctx context.Context, tenant string) {
	// Cancellation must wake the cond wait: nothing else is guaranteed to
	// broadcast while the gating tenant sits present but idle.
	stop := context.AfterFunc(ctx, func() { s.cond.Broadcast() })
	defer stop()
	s.mu.Lock()
	for !s.closed && ctx.Err() == nil {
		t := s.tenants[tenant]
		if t == nil || !s.gatedLocked(t) {
			break
		}
		t.gatedWaits++
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// Weight reports the stride weight tenant would be scheduled with (its
// configured weight, or the default). The weight table is immutable after
// construction, so this needs no lock.
func (s *Scheduler) Weight(tenant string) int { return s.weightFor(tenant) }

// weightFor resolves a tenant's configured stride weight.
func (s *Scheduler) weightFor(tenant string) int {
	if w, ok := s.weights[tenant]; ok && w > 0 {
		return w
	}
	return s.defaultWeight
}

// warpedJoinPass is where a tenant entering (or re-entering) the
// contention lands relative to the active pass front: rejoinWarp behind
// it, clamped at zero.
func warpedJoinPass(front uint64) uint64 {
	if front <= rejoinWarp {
		return 0
	}
	return front - rejoinWarp
}

// minActivePassLocked is the lowest pass among tenants with work — the
// join point for tenants entering (or re-entering) the contention.
func (s *Scheduler) minActivePassLocked() uint64 {
	var min uint64
	found := false
	for _, name := range s.names {
		t := s.tenants[name]
		if len(t.queue) == 0 && t.inflight == 0 && t.present == 0 {
			continue
		}
		if !found || t.pass < min {
			min = t.pass
			found = true
		}
	}
	return min
}

// serveOwn runs chunks of the caller's own fan-out until its handout is
// finished. The submitting goroutine always contributes, so every fan-out
// makes progress even when all shared workers serve other tenants, and a
// nested fan-out inside a chunk body cannot deadlock. Self-served chunks
// count against the fan-out's worker cap and advance the tenant's stride
// pass exactly like worker dispatches — on hosts where callers outrun the
// shared workers, the pass would otherwise never meter the bulk of the
// consumption and FairShare would degenerate to FIFO. Under FairShare the
// caller additionally yields (gatedLocked) while a lagging tenant can
// absorb service; the lowest-pass tenant is never gated, so some caller
// always proceeds even with every shared worker stalled.
func (s *Scheduler) serveOwn(f *fanout) {
	for {
		s.mu.Lock()
		for !f.exhaustedLocked() && (f.running >= f.cap || s.gatedLocked(f.t)) {
			if f.running < f.cap {
				f.t.gatedWaits++
			}
			s.cond.Wait()
		}
		if f.exhaustedLocked() {
			if f.queued {
				s.removeLocked(f)
			}
			s.completeIfIdleLocked(f)
			s.mu.Unlock()
			// The tenant's runnable front may have vanished with this fan-out;
			// gated co-tenant callers must re-evaluate.
			s.cond.Broadcast()
			return
		}
		lo, hi := f.takeLocked()
		f.t.inflight++
		f.t.selfServed++
		s.advancePassLocked(f.t)
		s.mu.Unlock()
		s.cond.Broadcast()
		f.runChunk(s.faults, lo, hi)
		s.chunkDone(f)
	}
}

// advancePassLocked meters one chunk take against the tenant's stride
// pass — dispatches and caller self-service alike, so pass is cumulative
// service in SFQ terms no matter which goroutine executed the chunk. FIFO
// keeps passes frozen — arrival order alone decides.
func (s *Scheduler) advancePassLocked(t *schedTenant) {
	if s.policy == FairShare {
		t.pass += strideOne / uint64(t.weight)
	}
}

// gatedLocked reports whether a tenant's caller must yield before
// self-serving another chunk: some other tenant lags strictly behind on
// pass AND is either present (a check span is open — its serial sections
// need the CPU as much as its fan-outs) or has a fan-out that can accept a
// worker right now. The yield is bounded: the laggard's worker dispatches
// advance its pass toward the gated tenant's, its presence ends with its
// check (or its context), and the reserved worker is never gated — so a
// stalled or saturated (running == cap) tenant degrades co-tenants to
// reserved-worker bandwidth at worst, and the lowest-pass tenant itself
// is never gated.
func (s *Scheduler) gatedLocked(me *schedTenant) bool {
	if s.policy != FairShare {
		return false
	}
	for _, name := range s.names {
		t := s.tenants[name]
		if t == me || t.pass >= me.pass {
			continue
		}
		if t.present > 0 || s.frontLocked(t) != nil {
			return true
		}
	}
	return false
}

// worker is one shared dispatcher goroutine: pick the next chunk under the
// policy, run it, repeat until the scheduler closes and drains. The
// reserved worker ignores the fairness gate so queues always drain.
func (s *Scheduler) worker(reserved bool) {
	defer s.workers.Done()
	for {
		f, lo, hi, ok := s.next(reserved)
		if !ok {
			return
		}
		f.runChunk(s.faults, lo, hi)
		s.chunkDone(f)
	}
}

// next blocks until a chunk is runnable (or the scheduler closes with
// nothing runnable) and dispatches it, advancing the winning tenant's pass
// and recording the decision on the fan-out's timeline. A non-reserved
// worker declines to serve a tenant the gate says is ahead of a lagging
// present tenant — the same yield the callers make — unless the scheduler
// is draining for Close.
func (s *Scheduler) next(reserved bool) (f *fanout, lo, hi int, ok bool) {
	s.mu.Lock()
	for {
		if f, t := s.pickLocked(); f != nil &&
			(reserved || s.closed || !(s.gatedLocked(t) || s.burstingLocked(t))) {
			lo, hi := f.takeLocked()
			t.inflight++
			t.dispatched++
			pass := t.pass
			s.advancePassLocked(t)
			queued := len(t.queue)
			s.mu.Unlock()
			// The take moved the tenant's pass (and may have saturated the
			// fan-out), which can release a gated co-tenant caller.
			s.cond.Broadcast()
			s.noteDispatch(f, lo, hi, pass, queued)
			return f, lo, hi, true
		}
		if s.closed {
			s.mu.Unlock()
			return nil, 0, 0, false
		}
		s.cond.Wait()
	}
}

// noteDispatch records the scheduling decision as an instant on the pool
// track of the fan-out's timeline: which tenant won, at what pass, and how
// deep its queue still is.
func (s *Scheduler) noteDispatch(f *fanout, lo, hi int, pass uint64, queued int) {
	if f.rec == nil {
		return
	}
	f.rec.Instant(trace.TrackPool, "", "sched:"+f.tenant, "sched",
		trace.Arg{Key: "tenant", Val: f.tenant},
		trace.Arg{Key: "chunk", Val: chunkName(f.label, lo, hi)},
		trace.Arg{Key: "pass", Val: pass},
		trace.Arg{Key: "queued_fanouts", Val: queued},
	)
}

// pickLocked returns the fan-out to serve next under the policy — lowest
// pass for FairShare (arrival order breaking ties), globally oldest
// arrival for FIFO — pruning finished queue entries as it scans. Nil when
// nothing is runnable.
func (s *Scheduler) pickLocked() (*fanout, *schedTenant) {
	var bestF *fanout
	var bestT *schedTenant
	for _, name := range s.names {
		t := s.tenants[name]
		f := s.frontLocked(t)
		if f == nil {
			continue
		}
		switch {
		case bestF == nil:
			bestF, bestT = f, t
		case s.policy == FairShare:
			if t.pass < bestT.pass || (t.pass == bestT.pass && f.arrival < bestF.arrival) {
				bestF, bestT = f, t
			}
		default: // FIFO
			if f.arrival < bestF.arrival {
				bestF, bestT = f, t
			}
		}
	}
	return bestF, bestT
}

// frontLocked returns the first fan-out of t's queue that can accept
// another worker, dropping entries whose handout is finished (their
// in-flight chunks drain and chunkDone or the caller closes them out). A
// fan-out saturating its worker cap does not block the tenant's later
// fan-outs.
func (s *Scheduler) frontLocked(t *schedTenant) *fanout {
	keep := t.queue[:0]
	var front *fanout
	for _, f := range t.queue {
		if f.exhaustedLocked() {
			f.queued = false
			s.completeIfIdleLocked(f)
			continue
		}
		keep = append(keep, f)
		if front == nil && f.running < f.cap {
			front = f
		}
	}
	for i := len(keep); i < len(t.queue); i++ {
		t.queue[i] = nil
	}
	t.queue = keep
	return front
}

// removeLocked unlinks f from its tenant queue.
func (s *Scheduler) removeLocked(f *fanout) {
	q := f.t.queue
	for i, g := range q {
		if g == f {
			copy(q[i:], q[i+1:])
			q[len(q)-1] = nil
			f.t.queue = q[:len(q)-1]
			break
		}
	}
	f.queued = false
}

// completeIfIdleLocked closes the fan-out's done channel once it is fully
// drained: dequeued, nothing running, nothing more to hand out.
func (s *Scheduler) completeIfIdleLocked(f *fanout) {
	if !f.completed && !f.queued && f.running == 0 {
		f.completed = true
		close(f.done)
	}
}

// chunkDone retires one executed chunk and wakes waiters: a worker or the
// caller may now take the next chunk, and the final chunk completes the
// fan-out.
func (s *Scheduler) chunkDone(f *fanout) {
	s.mu.Lock()
	f.t.inflight--
	f.running--
	if f.queued && f.exhaustedLocked() {
		s.removeLocked(f)
	}
	s.completeIfIdleLocked(f)
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Context plumbing: the scheduler and the tenant tag ride the context the
// same way the trace recorder and request ID do, so tenant identity flows
// from the service through core.Session into every fan-out without new
// parameters.

type schedCtxKey int

const (
	schedulerKey schedCtxKey = iota
	tenantKey
)

// WithScheduler routes multi-worker fan-outs below ctx through s. A nil
// scheduler returns ctx unchanged.
func WithScheduler(ctx context.Context, s *Scheduler) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, schedulerKey, s)
}

// SchedulerFromContext returns the scheduler attached by WithScheduler, or
// nil.
func SchedulerFromContext(ctx context.Context) *Scheduler {
	s, _ := ctx.Value(schedulerKey).(*Scheduler)
	return s
}

// WithTenant tags fan-outs below ctx with a tenant identity for fair
// scheduling and tracing. An empty tenant returns ctx unchanged.
func WithTenant(ctx context.Context, tenant string) context.Context {
	if tenant == "" {
		return ctx
	}
	return context.WithValue(ctx, tenantKey, tenant)
}

// TenantFromContext returns the tenant tag attached by WithTenant;
// untagged contexts share DefaultTenant.
func TenantFromContext(ctx context.Context) string {
	if t, ok := ctx.Value(tenantKey).(string); ok {
		return t
	}
	return DefaultTenant
}

// tenantTag is TenantFromContext without the default — "" means untagged,
// so tracing can omit the tag entirely.
func tenantTag(ctx context.Context) string {
	t, _ := ctx.Value(tenantKey).(string)
	return t
}
