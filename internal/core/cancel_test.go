package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"opendrc/internal/faults"
	"opendrc/internal/synth"
)

// Cancellation semantics (see DESIGN.md "Failure semantics"): a cancelled
// check returns a nil report and an error wrapping ctx.Err(); no partial
// report ever escapes, in either mode, on any design.

// TestCancelBeforeCheck covers the trivial fast path: an already-cancelled
// context never starts the run.
func TestCancelBeforeCheck(t *testing.T) {
	lo, _, err := synth.Load("uart", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, mode := range []Mode{Sequential, Parallel} {
		e := New(Options{Mode: mode})
		if err := e.AddRules(synth.Deck()...); err != nil {
			t.Fatal(err)
		}
		rep, err := e.CheckContext(ctx, lo)
		if rep != nil {
			t.Fatalf("%v: pre-cancelled check returned a report", mode)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: err = %v, want wrapped context.Canceled", mode, err)
		}
	}
}

// TestCancelMidCheckAllDesigns cancels every run in the middle of its
// second rule — a stall injection parks the check at a deterministic point,
// then the context is cancelled from outside — across all six synth designs
// and both modes. Every combination must return promptly with a nil report
// and an error wrapping context.Canceled.
func TestCancelMidCheckAllDesigns(t *testing.T) {
	deck := synth.Deck()
	if len(deck) < 2 {
		t.Fatal("deck too small to cancel mid-check")
	}
	midRule := deck[1].ID
	for _, design := range []string{"aes", "ethmac", "ibex", "jpeg", "sha3", "uart"} {
		lo, _, err := synth.Load(design, 0.2)
		if err != nil {
			t.Fatalf("%s: %v", design, err)
		}
		for _, mode := range []Mode{Sequential, Parallel} {
			inj := faults.New(1, faults.Injection{
				Site: faults.SiteRule, Key: midRule, Mode: faults.Stall, Stall: time.Hour,
			})
			e := New(Options{Mode: mode, Workers: 4, Faults: inj})
			if err := e.AddRules(deck...); err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				// The stall parks the run inside rule #2; cancelling here is
				// mid-check by construction, not by timing luck.
				time.Sleep(5 * time.Millisecond)
				cancel()
			}()
			done := make(chan struct{})
			var rep *Report
			var cerr error
			go func() {
				rep, cerr = e.CheckContext(ctx, lo)
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				t.Fatalf("%s %v: cancelled check did not return", design, mode)
			}
			cancel()
			if rep != nil {
				t.Errorf("%s %v: cancelled check returned a report (%d violations)",
					design, mode, len(rep.Violations))
			}
			if !errors.Is(cerr, context.Canceled) {
				t.Errorf("%s %v: err = %v, want wrapped context.Canceled", design, mode, cerr)
			}
		}
	}
}

// TestCancelDoesNotPoisonEngine re-checks with a fresh context after a
// cancelled run: the engine carries no state between runs, so the second
// check succeeds and matches a never-cancelled run.
func TestCancelDoesNotPoisonEngine(t *testing.T) {
	lo, _, err := synth.Load("uart", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{Mode: Sequential, Workers: 4})
	if err := e.AddRules(synth.Deck()...); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if rep, err := e.CheckContext(ctx, lo); rep != nil || err == nil {
		t.Fatal("cancelled run did not fail")
	}
	rep, err := e.CheckContext(context.Background(), lo)
	if err != nil {
		t.Fatalf("check after cancelled run: %v", err)
	}
	clean := runEngine(t, lo, Options{Mode: Sequential, Workers: 4}, synth.Deck())
	if string(canonicalReport(t, rep)) != string(canonicalReport(t, clean)) {
		t.Fatal("report after a cancelled run differs from a clean run")
	}
}
