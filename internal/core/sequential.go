package core

import (
	"opendrc/internal/layout"
	"opendrc/internal/rules"
)

// checkSequential runs the deck through the hierarchical CPU branch.
func (e *Engine) checkSequential(lo *layout.Layout, rep *Report) error {
	if err := checkMagRestriction(lo, e.deck); err != nil {
		return err
	}
	stop := rep.Profile.Phase("instance-enumeration")
	placements := lo.Placements()
	stop()
	for _, r := range e.deck {
		e.opts.Logger.Debugf("seq: rule %s", r)
		switch r.Kind {
		case rules.Spacing:
			e.runSpacingSeq(lo, r, placements, rep)
		case rules.Enclosure:
			e.runEnclosureSeq(lo, r, placements, rep)
		case rules.Coverage, rules.MinOverlap:
			e.runDerivedSeq(lo, r, placements, rep)
		default:
			e.runIntraSeq(lo, r, placements, rep)
		}
	}
	return nil
}
