package core

import (
	"context"
	"fmt"

	"opendrc/internal/layout"
	"opendrc/internal/pool"
	"opendrc/internal/rules"
)

// checkSequential runs the deck through the hierarchical CPU branch. Each
// rule executes under the engine's fault-isolation guard: a failing rule
// degrades the report instead of aborting the run, while cancellation
// aborts between (and inside) rules.
func (e *Engine) checkSequential(ctx context.Context, lo *layout.Layout, rep *Report, geo *geoSource) error {
	if err := checkMagRestriction(lo, e.deck); err != nil {
		return err
	}
	stop := rep.Profile.Phase("instance-enumeration")
	placements := lo.Placements()
	stop()
	for _, r := range e.deck {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("core: check cancelled: %w", err)
		}
		// Rule boundary: let a lagging co-tenant's check run ahead of this
		// one's next serial stretch (no-op without a context scheduler).
		pool.YieldCtx(ctx)
		if rp := e.delta.of(r.ID); rp != nil && rp.mode == deltaSkip {
			continue // untouched by the edits; baseline violations retained
		}
		e.opts.Logger.Debugf("seq: rule %s", r)
		r := r
		w := ruleWindow{rule: r.ID, m0: rep.Profile.Elapsed()}
		err := e.guardRule(ctx, rep, r, func() error {
			switch r.Kind {
			case rules.Spacing:
				return e.runSpacingSeq(ctx, lo, r, placements, rep, geo)
			case rules.Enclosure:
				return e.runEnclosureSeq(ctx, lo, r, placements, rep)
			case rules.Coverage, rules.MinOverlap:
				return e.runDerivedSeq(ctx, lo, r, placements, rep)
			default:
				return e.runIntraSeq(ctx, lo, r, placements, rep)
			}
		})
		if err != nil {
			return err
		}
		w.m1 = rep.Profile.Elapsed()
		w.host = w.m1 - w.m0
		rep.ruleWindows = append(rep.ruleWindows, w)
	}
	return nil
}
