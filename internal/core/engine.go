// Package core is OpenDRC's engine: the application layer that schedules
// design rule checks and dispatches them to the algorithm layer. It offers
// the paper's two execution branches: a sequential (CPU) mode that runs
// hierarchical cell-level sweeps with task pruning (Sections IV-C/IV-D), and
// a parallel mode that partitions the layout into independent rows and
// launches edge-based check kernels on the simulated GPU row by row
// (Sections IV-B/IV-E), overlapping host preparation with device execution
// via streams (Section V-C).
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"time"

	"opendrc/internal/budget"
	"opendrc/internal/faults"
	"opendrc/internal/geocache"
	"opendrc/internal/gpu"
	"opendrc/internal/infra"
	"opendrc/internal/layout"
	"opendrc/internal/partition"
	"opendrc/internal/pool"
	"opendrc/internal/rules"
	"opendrc/internal/trace"
)

// Mode selects the execution branch.
type Mode int

// Engine modes.
const (
	Sequential Mode = iota // hierarchical CPU sweeps
	Parallel               // row-partitioned GPU kernels (simulated device)
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Parallel {
		return "parallel"
	}
	return "sequential"
}

// Options configure an Engine. The zero value is a usable sequential engine.
type Options struct {
	Mode   Mode
	Device gpu.Props // parallel mode; zero value selects GTX1660Ti

	// BruteEdgeThreshold is the executor-selection cutoff: rows whose
	// packed edge count is at or below it use the brute-force executor,
	// larger rows use the parallel sweepline ("Depending on the complexity
	// of each polygon or polygon pair, OpenDRC selects either a brute-force
	// executor or a sweepline executor"). Zero selects the default.
	BruteEdgeThreshold int

	// DisablePruning turns off hierarchy task pruning (ablation): every
	// instance is checked independently.
	DisablePruning bool

	// PartitionAlg selects the interval-merging implementation (ablation).
	PartitionAlg partition.Algorithm

	// Workers bounds the host worker pool used by the fan-out phases:
	// per cell definition in the intra checks and per partition row in the
	// spacing sweep. Values <= 0 select GOMAXPROCS. Reports are
	// bit-identical for every worker count: workers write into per-index
	// result slots that merge in a fixed order.
	Workers int

	// DisableGeoCache turns off the per-run cross-rule geometry cache (the
	// -no-geocache escape hatch for A/B runs): every rule re-flattens and
	// re-packs its layer and the parallel mode re-uploads per rule instead
	// of keeping edge buffers device-resident. Reports are bit-identical
	// either way; only cost changes.
	DisableGeoCache bool

	// Budgets are the run's resource limits (flatten size, packed edges,
	// device pool bytes). A rule that trips a budget becomes a RuleFailure
	// in the report instead of aborting the run. The zero value imposes no
	// limits. With the geometry cache enabled, the packed-edges budget is
	// charged per *upload* (once per layer) rather than once per rule.
	Budgets budget.Limits

	// Faults is the deterministic fault injector driving the chaos test
	// suite; nil (the production value) is inert.
	Faults *faults.Injector

	// Trace is the run-timeline recorder (nil disables tracing, the
	// zero-cost default). When set, the run records host phase spans, rule
	// lifecycle, geometry-cache traffic, pool task lanes, and — in parallel
	// mode — the simulated device's per-stream timeline, all exportable via
	// trace.Recorder.WriteJSON; a TraceSummary lands on Report.Stats.
	// Reports are bit-identical with tracing on or off.
	Trace *trace.Recorder

	Logger *infra.Logger
}

const defaultBruteEdgeThreshold = 4096

// Engine schedules and runs design rule checks.
type Engine struct {
	opts Options
	deck rules.Deck
	// shards recycles fan-out output tables across the engine's rules (see
	// collect.go); a deterministic freelist, so engine runs stay pure
	// functions of their inputs.
	shards shardPool
	// delta is the incremental-check plan of a Session.DeltaCheck (nil for
	// normal runs): per-rule skip/restrict/full classification, claim
	// regions, and the baseline violations retained outside them.
	delta *deltaPlan
}

// New creates an engine.
func New(opts Options) *Engine {
	if opts.BruteEdgeThreshold == 0 {
		opts.BruteEdgeThreshold = defaultBruteEdgeThreshold
	}
	if opts.Device.SMs == 0 {
		opts.Device = gpu.GTX1660Ti()
	}
	return &Engine{opts: opts}
}

// AddRules appends validated rules to the deck, assigning sequential IDs to
// anonymous rules.
func (e *Engine) AddRules(rs ...rules.Rule) error {
	for _, r := range rs {
		if err := r.Validate(); err != nil {
			return err
		}
		if r.ID == "" {
			r.ID = fmt.Sprintf("%s#%d", r.String(), len(e.deck))
		}
		e.deck = append(e.deck, r)
	}
	return nil
}

// Deck returns the current rule deck.
func (e *Engine) Deck() rules.Deck { return e.deck }

// Stats aggregates scheduling counters across a check run, exposing the
// effect of the hierarchy pruning and the row partition.
type Stats struct {
	// Intra-polygon pruning.
	DefsChecked      int // cell-definition check computations performed
	InstancesEmitted int // instance results replayed from definition memos
	ChecksReused     int // InstancesEmitted - DefsChecked (never negative)

	// Inter-polygon work.
	PairsConsidered int // candidate pairs after MBR sweep
	PairsChecked    int // pairs that reached edge-to-edge checks
	SubtreeQueries  int // hierarchy descents for cross-boundary pairs

	// Parallel mode.
	Rows           int
	KernelLaunches int
	EdgesPacked    int
	BytesCopied    int64

	// Cross-rule geometry reuse (zero when the cache is disabled). Hits and
	// misses count every flatten/pack request including the rule
	// prefetcher's; misses equal the number of distinct layers computed, so
	// both are deterministic for a fixed deck regardless of worker count or
	// prefetch timing.
	FlattenCacheHits   int64
	FlattenCacheMisses int64
	PackCacheHits      int64
	PackCacheMisses    int64

	// Device residency (parallel mode with the cache enabled): layer edge
	// buffers uploaded once, reused by event, and LRU-evicted when the
	// device pool budget would otherwise trip.
	DeviceUploads   int64
	DeviceReuses    int64
	DeviceEvictions int64
	// DeviceDeltaUploads counts partial refreshes of resident buffers: after
	// a region-scoped invalidation only the rebuilt slice of a layer's edge
	// buffer is re-uploaded instead of the whole layer.
	DeviceDeltaUploads int64

	// Trace is the run's timeline summary (device busy, host/device
	// overlap, per-rule critical path). It holds measured times, so it is
	// excluded from JSON: serialized reports stay bit-identical across
	// worker counts and with tracing on or off.
	Trace *TraceSummary `json:"-"`
}

// add merges s2 into s.
func (s *Stats) add(s2 Stats) {
	s.DefsChecked += s2.DefsChecked
	s.InstancesEmitted += s2.InstancesEmitted
	s.ChecksReused += s2.ChecksReused
	s.PairsConsidered += s2.PairsConsidered
	s.PairsChecked += s2.PairsChecked
	s.SubtreeQueries += s2.SubtreeQueries
	s.Rows += s2.Rows
	s.KernelLaunches += s2.KernelLaunches
	s.EdgesPacked += s2.EdgesPacked
	s.BytesCopied += s2.BytesCopied
	s.FlattenCacheHits += s2.FlattenCacheHits
	s.FlattenCacheMisses += s2.FlattenCacheMisses
	s.PackCacheHits += s2.PackCacheHits
	s.PackCacheMisses += s2.PackCacheMisses
	s.DeviceUploads += s2.DeviceUploads
	s.DeviceReuses += s2.DeviceReuses
	s.DeviceEvictions += s2.DeviceEvictions
	s.DeviceDeltaUploads += s2.DeviceDeltaUploads
}

// RuleFailure records one rule whose check failed — a panic, an injected
// fault, or a tripped resource budget — without killing the run. The
// failed rule contributes no violations (its partial results are discarded
// so degraded reports stay bit-identical across worker counts); every
// other rule's results are intact.
type RuleFailure struct {
	Rule string // rule ID
	Err  string // failure description
	// Panicked marks failures recovered from a panic; Stack preserves the
	// panicking goroutine's stack (the worker's stack when the panic was
	// recovered through the pool).
	Panicked bool
	Stack    string
	// BudgetExceeded marks failures caused by a resource budget; Budget then
	// carries the tripped budget structurally (resource, limit, demand) so
	// consumers — the JSON report, the odrcd error bodies — need not parse
	// the rendered message.
	BudgetExceeded bool
	Budget         *budget.Error
}

// Report is the result of a check run.
type Report struct {
	Mode       Mode
	Violations []rules.Violation
	Stats      Stats
	// Degraded is true when at least one rule failed; Failures lists them.
	// Violations then cover only the rules that completed.
	Degraded bool
	Failures []RuleFailure
	// Profile breaks the host runtime into phases (Fig. 4).
	Profile *infra.Profiler
	// HostWall is the measured wall-clock time of the whole run.
	HostWall time.Duration
	// Modeled is, for the parallel mode, the modeled end-to-end time on the
	// CPU+GPU platform (host phases measured, device operations from the
	// cost model, overlap from the stream timeline). For the sequential
	// mode it equals HostWall.
	Modeled time.Duration
	// Device exposes the simulated GPU used by the parallel mode (nil in
	// sequential mode) for timeline inspection.
	Device *gpu.Device

	// Raw per-rule and modeled-host windows behind Stats.Trace and the
	// trace export; unexported — the summary is the public view.
	ruleWindows []ruleWindow
	hostSpans   []modeledSpan
}

// CountByRule returns violation counts keyed by rule ID.
func (r *Report) CountByRule() map[string]int {
	out := make(map[string]int)
	for _, v := range r.Violations {
		out[v.Rule]++
	}
	return out
}

// Check runs the configured deck against the layout with no deadline.
func (e *Engine) Check(lo *layout.Layout) (*Report, error) {
	return e.CheckContext(context.Background(), lo) //odrc:allow ctxflow — context-free convenience wrapper, delegates to the Context variant
}

// CheckContext runs the configured deck against the layout under ctx.
// Cancellation is honored cooperatively at rule boundaries and inside the
// fan-out loops; a cancelled check returns a nil report and an error
// wrapping ctx.Err() — no partial report escapes. A rule whose check
// panics, trips a budget, or hits an injected fault is recorded as a
// RuleFailure (Report.Degraded) and the remaining rules still run.
func (e *Engine) CheckContext(ctx context.Context, lo *layout.Layout) (*Report, error) {
	return e.checkWith(ctx, lo, nil)
}

// checkWith is CheckContext with optionally session-owned state: a non-nil
// session contributes its resident geometry source and (parallel mode) its
// persistent device context, so the expensive cross-rule state survives the
// run instead of being rebuilt per check. A nil session is the batch path —
// per-run geometry source, per-run device. The caller (Session.Check) holds
// the session lock.
func (e *Engine) checkWith(ctx context.Context, lo *layout.Layout, ses *Session) (*Report, error) {
	if err := e.deck.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: check cancelled: %w", err)
	}
	rec := e.opts.Trace
	// The profiler shares the recorder's clock (one timeline for phases and
	// trace events) and reports every completed Phase as a span; the
	// recorder rides the context so the pool traces task lanes.
	rep := &Report{Mode: e.opts.Mode, Profile: infra.NewProfilerWithClock(rec.Clock())}
	if rec != nil {
		rep.Profile.OnPhase(func(name string, from, to time.Duration) {
			rec.Span(trace.TrackPhases, "", name, "phase", from, to)
		})
		ctx = trace.WithRecorder(ctx, rec)
	}
	var geo *geoSource
	if ses != nil {
		geo = ses.geo
	} else {
		geo = newGeoSource(e.opts, rec)
	}
	// Session cache counters accumulate across checks; snapshot so the
	// report carries this run's traffic (a warm session reports pure hits).
	var cs0 geocache.Stats
	if geo.cache != nil {
		cs0 = geo.cache.Stats()
	}
	// On a session device the modeled clock is cumulative; Modeled must be
	// this run's delta, measured from the clock reading at entry.
	var devStart time.Duration
	start := rep.Profile.Elapsed()
	var err error
	switch e.opts.Mode {
	case Parallel:
		var pc *parCtx
		if ses != nil {
			pc = ses.deviceCtx()
			devStart = pc.dev.HostClock()
		}
		err = e.checkParallel(ctx, lo, rep, geo, pc)
	default:
		err = e.checkSequential(ctx, lo, rep, geo)
	}
	if err != nil {
		return nil, err
	}
	rep.HostWall = rep.Profile.Elapsed() - start
	if rep.Device == nil {
		rep.Modeled = rep.HostWall
	} else {
		rep.Modeled = rep.Device.HostClock() - devStart
	}
	if geo.cache != nil {
		cs := geo.cache.Stats()
		rep.Stats.FlattenCacheHits = cs.FlattenHits - cs0.FlattenHits
		rep.Stats.FlattenCacheMisses = cs.FlattenMisses - cs0.FlattenMisses
		rep.Stats.PackCacheHits = cs.PackHits - cs0.PackHits
		rep.Stats.PackCacheMisses = cs.PackMisses - cs0.PackMisses
	}
	if rec != nil {
		rep.Stats.Trace = buildTraceSummary(rep)
		exportRunTrace(rec, rep, e.opts)
	}
	e.mergeDelta(rep)
	sortViolations(rep.Violations)
	return rep, nil
}

// cancelled reports whether err stems from context cancellation or a
// deadline — failures that must abort the whole run rather than degrade it.
func cancelled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// guardRule runs one rule's check with fault isolation: a panic (direct or
// re-raised from a pool worker) or an error from fn is converted into a
// RuleFailure on the report, the rule's partial violations are discarded
// (so degraded reports stay bit-identical across worker counts), and the
// run continues. Cancellation is the exception: it aborts the whole check.
func (e *Engine) guardRule(ctx context.Context, rep *Report, r rules.Rule, fn func() error) error {
	mark := len(rep.Violations)
	stop := e.opts.Trace.Begin(trace.TrackRules, "", r.ID, "rule")
	status := "ok"
	defer func() {
		emitted := len(rep.Violations) - mark
		if status != "ok" {
			emitted = 0
		}
		stop(trace.Arg{Key: "kind", Val: r.Kind.String()},
			trace.Arg{Key: "status", Val: status},
			trace.Arg{Key: "violations", Val: emitted})
	}()
	err := func() (err error) {
		defer func() {
			if rec := recover(); rec != nil {
				if pe, ok := rec.(*pool.PanicError); ok {
					err = pe
				} else {
					err = &pool.PanicError{Value: rec, Stack: debug.Stack()}
				}
			}
		}()
		if err := e.opts.Faults.Hit(ctx, faults.SiteRule, r.ID); err != nil {
			return err
		}
		return fn()
	}()
	if err == nil {
		return nil
	}
	if cancelled(err) {
		status = "cancelled"
		return fmt.Errorf("core: rule %s: check cancelled: %w", r.ID, err)
	}
	status = "failed"
	rep.Violations = rep.Violations[:mark]
	f := RuleFailure{Rule: r.ID, Err: err.Error()}
	var pe *pool.PanicError
	if errors.As(err, &pe) {
		f.Panicked = true
		f.Err = fmt.Sprintf("panic: %v", pe.Value)
		f.Stack = string(pe.Stack)
	}
	if errors.Is(err, budget.ErrExceeded) {
		f.BudgetExceeded = true
		f.Budget = budget.FromError(err)
	}
	rep.Failures = append(rep.Failures, f)
	rep.Degraded = true
	e.opts.Logger.Warnf("core: rule %s failed, continuing degraded: %s", r.ID, f.Err)
	return nil
}

// sortViolations orders the report deterministically. rules.Less is a total
// order, so equal violation multisets sort into identical slices regardless
// of emission order (kernel schedule, cache configuration, worker count).
func sortViolations(vs []rules.Violation) {
	sort.Slice(vs, func(i, j int) bool { return rules.Less(&vs[i], &vs[j]) })
}

// DedupViolations removes exactly-identical violations (same rule, box,
// distance and corner flag); repeated hierarchy instances of one physical
// defect collapse into one marker, as layout viewers do. The input slice is
// left untouched; the deduplicated result is a freshly allocated, sorted
// slice.
func DedupViolations(vs []rules.Violation) []rules.Violation {
	sorted := append([]rules.Violation(nil), vs...)
	sortViolations(sorted)
	out := sorted[:0]
	for i, v := range sorted {
		if i > 0 {
			p := out[len(out)-1]
			if p.Rule == v.Rule && p.Marker.Box == v.Marker.Box &&
				p.Marker.Dist == v.Marker.Dist && p.Marker.Corner == v.Marker.Corner {
				continue
			}
		}
		out = append(out, v)
	}
	return out
}

// checkMagRestriction rejects layouts that instantiate layer-relevant cells
// with magnification together with inter-polygon rules; thresholds do not
// transfer across magnified frames for pair checks (see DESIGN.md).
func checkMagRestriction(lo *layout.Layout, deck rules.Deck) error {
	needs := false
	for _, r := range deck {
		if !r.Kind.Intra() {
			needs = true
		}
	}
	if !needs {
		return nil
	}
	for _, c := range lo.Cells {
		for ri := range c.Refs {
			if c.Refs[ri].Trans.Mag > 1 {
				return fmt.Errorf("core: inter-polygon rules with magnified reference %s -> %s are unsupported",
					c.Name, c.Refs[ri].Child.Name)
			}
		}
	}
	return nil
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}
