package core

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"opendrc/internal/budget"
	"opendrc/internal/faults"
	"opendrc/internal/layout"
	"opendrc/internal/synth"
)

// The chaos suite: every injected fault must end in a clean error or a
// degraded-but-deterministic report — never a crash, a hang, or output that
// depends on the worker count. The injector selects failing work items
// purely from (seed, site, key), so each scenario reproduces bit-identically
// across worker counts and reruns.

// chaosDesigns is the subset of synth designs the heavier matrix tests run
// on; the full six-design sweep lives in TestChaosCancellationAllDesigns.
var chaosDesigns = []string{"uart", "aes"}

func chaosLoad(t *testing.T, design string) *layout.Layout {
	t.Helper()
	lo, _, err := synth.Load(design, 0.2)
	if err != nil {
		t.Fatalf("%s: %v", design, err)
	}
	return lo
}

// failureFingerprint canonicalizes the failure list without the panic
// stacks (stack text contains goroutine IDs and addresses that legitimately
// vary between runs).
func failureFingerprint(fs []RuleFailure) string {
	var b strings.Builder
	for _, f := range fs {
		b.WriteString(f.Rule)
		b.WriteByte('|')
		b.WriteString(f.Err)
		if f.Panicked {
			b.WriteString("|panic")
		}
		if f.BudgetExceeded {
			b.WriteString("|budget")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// runChaos runs the full synth deck with the injector and asserts the
// basic chaos invariant: the run either fails cleanly or returns a report.
func runChaos(t *testing.T, lo *layout.Layout, mode Mode, workers int, inj *faults.Injector) (*Report, error) {
	t.Helper()
	e := New(Options{Mode: mode, Workers: workers, Faults: inj})
	if err := e.AddRules(synth.Deck()...); err != nil {
		t.Fatal(err)
	}
	rep, err := e.CheckContext(context.Background(), lo)
	if err != nil && rep != nil {
		t.Fatalf("mode=%v workers=%d: error AND report returned", mode, workers)
	}
	return rep, err
}

// TestChaosInjectedErrorDeterministic injects an error fault on a rate-
// selected subset of each seam's keys and demands the same degraded report
// from every worker count, in both modes.
func TestChaosInjectedErrorDeterministic(t *testing.T) {
	scenarios := []struct {
		name string
		injs []faults.Injection
	}{
		{"rule-seam", []faults.Injection{{Site: faults.SiteRule, Rate: 3, Mode: faults.Error}}},
		{"cell-seam", []faults.Injection{{Site: faults.SiteCell, Rate: 5, Mode: faults.Error}}},
		{"row-seam", []faults.Injection{{Site: faults.SiteRow, Rate: 7, Mode: faults.Error}}},
		{"alloc-seam", []faults.Injection{{Site: faults.SiteAlloc, Rate: 2, Mode: faults.Error}}},
		{"mixed", []faults.Injection{
			{Site: faults.SiteCell, Rate: 9, Mode: faults.Error},
			{Site: faults.SiteRow, Rate: 11, Mode: faults.Panic},
		}},
	}
	for _, sc := range scenarios {
		for _, design := range chaosDesigns {
			lo := chaosLoad(t, design)
			for _, mode := range []Mode{Sequential, Parallel} {
				var refCanon []byte
				var refFails string
				for _, workers := range []int{1, 2, 4, 8} {
					inj := faults.New(42, sc.injs...)
					rep, err := runChaos(t, lo, mode, workers, inj)
					if err != nil {
						t.Fatalf("%s/%s/%v/w%d: unexpected run error: %v", sc.name, design, mode, workers, err)
					}
					canon := canonicalReport(t, rep)
					fails := failureFingerprint(rep.Failures)
					if refCanon == nil {
						refCanon, refFails = canon, fails
						continue
					}
					if !bytes.Equal(canon, refCanon) {
						t.Errorf("%s/%s/%v: workers=%d report differs from workers=1",
							sc.name, design, mode, workers)
					}
					if fails != refFails {
						t.Errorf("%s/%s/%v: workers=%d failures differ:\n%s\nvs\n%s",
							sc.name, design, mode, workers, fails, refFails)
					}
				}
			}
		}
	}
}

// TestChaosRuleFailureIsolated pins the isolation semantics with a single
// targeted fault: exactly the injected rule fails, it contributes zero
// violations, and every other rule's violations match the fault-free run.
func TestChaosRuleFailureIsolated(t *testing.T) {
	lo := chaosLoad(t, "uart")
	deck := synth.Deck()
	victim := deck[0].ID
	for _, mode := range []Mode{Sequential, Parallel} {
		clean, err := runChaos(t, lo, mode, 4, nil)
		if err != nil {
			t.Fatal(err)
		}
		inj := faults.New(1, faults.Injection{Site: faults.SiteRule, Key: victim, Mode: faults.Error})
		rep, err := runChaos(t, lo, mode, 4, inj)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Degraded || len(rep.Failures) != 1 {
			t.Fatalf("%v: degraded=%v failures=%+v, want exactly the %s failure",
				mode, rep.Degraded, rep.Failures, victim)
		}
		if f := rep.Failures[0]; f.Rule != victim || !strings.Contains(f.Err, "injected") {
			t.Fatalf("%v: failure = %+v", mode, f)
		}
		cleanByRule := clean.CountByRule()
		gotByRule := rep.CountByRule()
		if gotByRule[victim] != 0 {
			t.Errorf("%v: failed rule still reported %d violations", mode, gotByRule[victim])
		}
		for id, n := range cleanByRule {
			if id == victim {
				continue
			}
			if gotByRule[id] != n {
				t.Errorf("%v: rule %s has %d violations degraded vs %d clean", mode, id, gotByRule[id], n)
			}
		}
	}
}

// TestChaosWorkerPanicDeterministic drives panics through the pool workers
// (the cell seam runs inside ForEachCtx) and checks both the stack capture
// and worker-count independence.
func TestChaosWorkerPanicDeterministic(t *testing.T) {
	lo := chaosLoad(t, "aes")
	var ref []byte
	for _, workers := range []int{1, 2, 8} {
		inj := faults.New(7, faults.Injection{Site: faults.SiteCell, Rate: 4, Mode: faults.Panic})
		rep, err := runChaos(t, lo, Sequential, workers, inj)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Degraded {
			t.Fatal("rate-4 cell panics degraded nothing; injection selection broken?")
		}
		for _, f := range rep.Failures {
			if !f.Panicked {
				t.Errorf("failure %+v not marked as panic", f)
			}
			if f.Stack == "" {
				t.Errorf("rule %s: panic stack lost", f.Rule)
			}
			if !strings.Contains(f.Err, "injected panic") {
				t.Errorf("rule %s: failure text %q does not carry the panic value", f.Rule, f.Err)
			}
		}
		canon := append(canonicalReport(t, rep), failureFingerprint(rep.Failures)...)
		if ref == nil {
			ref = canon
			continue
		}
		if !bytes.Equal(canon, ref) {
			t.Errorf("workers=%d degraded report differs", workers)
		}
	}
}

// TestChaosDeviceOOM caps the simulated device pool so every transfer
// overflows: parallel-mode rules fail with BudgetExceeded, the run itself
// survives.
func TestChaosDeviceOOM(t *testing.T) {
	lo := chaosLoad(t, "uart")
	e := New(Options{Mode: Parallel, Workers: 4, Budgets: budget.Limits{MaxDeviceBytes: 16}})
	if err := e.AddRules(synth.Deck()...); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Check(lo)
	if err != nil {
		t.Fatalf("device OOM aborted the run: %v", err)
	}
	if !rep.Degraded || len(rep.Failures) == 0 {
		t.Fatal("16-byte device pool degraded nothing")
	}
	for _, f := range rep.Failures {
		if !f.BudgetExceeded {
			t.Errorf("failure %+v not marked BudgetExceeded", f)
		}
		if !strings.Contains(f.Err, "device-pool-bytes") {
			t.Errorf("failure %q does not name the tripped resource", f.Err)
		}
	}
}

// TestChaosFlattenBudget trips the flatten budget in the pruning-off
// ablation, where spacing rules materialize every instance.
func TestChaosFlattenBudget(t *testing.T) {
	lo := chaosLoad(t, "uart")
	e := New(Options{Mode: Sequential, DisablePruning: true,
		Budgets: budget.Limits{MaxFlattenPolys: 1}})
	spacing, err := synth.RuleByID("M1.S.1")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddRules(spacing); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Check(lo)
	if err != nil {
		t.Fatalf("flatten budget aborted the run: %v", err)
	}
	if !rep.Degraded || len(rep.Failures) != 1 {
		t.Fatalf("degraded=%v failures=%+v, want one flatten-budget failure", rep.Degraded, rep.Failures)
	}
	f := rep.Failures[0]
	if !f.BudgetExceeded || !strings.Contains(f.Err, "flatten-polys") {
		t.Fatalf("failure = %+v, want a flatten-polys budget trip", f)
	}
	if len(rep.Violations) != 0 {
		t.Errorf("failed rule left %d violations in the report", len(rep.Violations))
	}
}

// TestChaosInjectedAllocOOM drives the allocator seam (as opposed to the
// mem-limit path) and checks the failure is isolated per rule.
func TestChaosInjectedAllocOOM(t *testing.T) {
	lo := chaosLoad(t, "uart")
	inj := faults.New(3, faults.Injection{Site: faults.SiteAlloc, Rate: 1, Mode: faults.Error})
	rep, err := runChaos(t, lo, Parallel, 4, inj)
	if err != nil {
		t.Fatalf("alloc faults aborted the run: %v", err)
	}
	if !rep.Degraded || len(rep.Failures) == 0 {
		t.Fatal("rate-1 alloc faults degraded nothing")
	}
	for _, f := range rep.Failures {
		if !strings.Contains(f.Err, "injected") {
			t.Errorf("failure %q does not come from the injector", f.Err)
		}
	}
}

// TestChaosStallTimeout injects an hour-long stall into the first rule and
// runs under a short deadline: the check must return promptly with an error
// wrapping context.DeadlineExceeded and a nil report — a hung rule cannot
// hang the pipeline.
func TestChaosStallTimeout(t *testing.T) {
	lo := chaosLoad(t, "uart")
	deck := synth.Deck()
	for _, mode := range []Mode{Sequential, Parallel} {
		inj := faults.New(1, faults.Injection{
			Site: faults.SiteRule, Key: deck[0].ID, Mode: faults.Stall, Stall: time.Hour,
		})
		e := New(Options{Mode: mode, Workers: 4, Faults: inj})
		if err := e.AddRules(deck...); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		rep, err := e.CheckContext(ctx, lo)
		cancel()
		if rep != nil {
			t.Fatalf("%v: stalled run returned a report", mode)
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("%v: stalled run error = %v, want DeadlineExceeded", mode, err)
		}
	}
}
