package core

import (
	"context"
	"sort"

	"opendrc/internal/checks"
	"opendrc/internal/faults"
	"opendrc/internal/geom"
	"opendrc/internal/layout"
	"opendrc/internal/pool"
	"opendrc/internal/rules"
	"opendrc/internal/trace"
)

// intraMarkers appends the violation markers of one cell's own layer
// polygons for an intra-polygon rule to dst, in the cell's local frame. min
// is already scaled into the cell's frame (magnified instances divide the
// threshold). Callers pass a recycled buffer; markers are copied out before
// it is reused.
func intraMarkers(dst []checks.Marker, c *layout.Cell, r rules.Rule, min int64) []checks.Marker {
	out := dst
	emit := func(m checks.Marker) { out = append(out, m) }
	for _, pi := range c.LocalPolyIndex(r.Layer) {
		p := c.Polys[pi].Shape
		switch r.Kind {
		case rules.Width:
			checks.CheckWidth(p, min, emit)
		case rules.Area:
			if m, bad := checks.CheckArea(p, min); bad {
				emit(m)
			}
		case rules.Rectilinear:
			if m, bad := checks.CheckRectilinear(p); bad {
				emit(m)
			}
		case rules.Custom:
			obj := rules.Obj{Shape: p, Layer: r.Layer, Name: labelFor(c, p)}
			if !r.Pred(obj) {
				emit(checks.Marker{Box: p.MBR()})
			}
		}
	}
	return out
}

// labelFor returns the text of a same-layer label lying on or inside the
// polygon (the paper's polygon "name"); empty when none exists.
func labelFor(c *layout.Cell, p geom.Polygon) string {
	mbr := p.MBR()
	for i := range c.Labels {
		l := &c.Labels[i]
		if !mbr.Contains(l.Pos) {
			continue
		}
		if p.ContainsPoint(l.Pos) {
			return l.Text
		}
	}
	return ""
}

// scaledIntraMin converts the rule threshold into a cell frame instantiated
// with magnification mag: a local measure x appears globally as x·mag
// (x·mag² for areas), so the local threshold is the ceiling division.
func scaledIntraMin(r rules.Rule, mag int64) int64 {
	switch r.Kind {
	case rules.Width:
		return ceilDiv(r.Min, mag)
	case rules.Area:
		return ceilDiv(2*r.Min, mag*mag) // doubled area threshold
	}
	return r.Min
}

// rescaleMarker maps a local marker into the instance frame.
func rescaleMarker(m checks.Marker, t geom.Transform, r rules.Rule) checks.Marker {
	m.Box = t.ApplyRect(m.Box)
	m.EdgeA = m.EdgeA.Transform(t)
	m.EdgeB = m.EdgeB.Transform(t)
	mag := t.Mag
	if mag > 1 && m.Dist >= 0 {
		switch {
		case m.Corner || r.Kind == rules.Area:
			m.Dist *= mag * mag // squared distances and doubled areas
		default:
			m.Dist *= mag
		}
	}
	return m
}

// runIntraSeq executes one intra-polygon rule in the sequential mode with
// the hierarchy task pruning of Section IV-C: each cell definition is
// checked once per distinct magnification, and the result is replayed for
// every instance ("if the corresponding cell has already been checked
// elsewhere, and the transformations preserve the target properties of the
// check, the check result could be safely reused" — all eight orientations
// preserve widths, areas and rectilinearity; magnification rescales the
// threshold).
// Cell definitions are independent, so the loop fans out across the worker
// pool; each definition writes into its own result slot and the slots merge
// in definition order, keeping the report bit-identical for every worker
// count.
func (e *Engine) runIntraSeq(ctx context.Context, lo *layout.Layout, r rules.Rule, placements [][]geom.Transform, rep *Report) error {
	defer rep.Profile.Phase("intra:" + r.Kind.String())()
	cells := lo.LayerCells(r.Layer)
	rp := e.restrictFor(r.ID)
	tbl := e.shards.get(len(cells))
	err := pool.ForEachCtx(trace.WithTask(ctx, "cell"), e.opts.Workers, len(cells), func(i int) error {
		c := cells[i]
		if err := e.opts.Faults.Hit(ctx, faults.SiteCell, c.Name); err != nil {
			return err
		}
		if len(c.LocalPolyIndex(r.Layer)) == 0 {
			return nil // cell participates only through its children
		}
		insts := placements[c.ID]
		if len(insts) == 0 {
			return nil
		}
		// Delta restriction: skip definitions with no instance near the
		// dirty region — none of their markers can be claimed.
		if rp != nil && !rp.anyPlacementNear(localIntraMBR(c, r.Layer), insts) {
			return nil
		}
		sh := &tbl.s[i]
		if e.opts.DisablePruning {
			for _, t := range insts {
				mag := t.Mag
				if mag == 0 {
					mag = 1
				}
				sh.markers = intraMarkers(sh.markers[:0], c, r, scaledIntraMin(r, mag))
				sh.stats.DefsChecked++
				sh.stats.InstancesEmitted++
				sh.vs = appendMarkers(sh.vs, r, c.Name, sh.markers, t)
			}
			return nil
		}
		// Magnified instances are rare: scan first and take the map-free
		// path when every placement is at unit scale — one computation, one
		// replay loop, no per-cell grouping allocation.
		uniform := true
		for _, t := range insts {
			if t.Mag > 1 {
				uniform = false
				break
			}
		}
		if uniform {
			sh.markers = intraMarkers(sh.markers[:0], c, r, scaledIntraMin(r, 1))
			sh.stats.DefsChecked++
			for _, t := range insts {
				sh.stats.InstancesEmitted++
				sh.vs = appendMarkers(sh.vs, r, c.Name, sh.markers, t)
			}
			return nil
		}
		// Group instances by magnification: one computation per group,
		// groups visited in ascending mag order for a deterministic report.
		byMag := make(map[int64][]geom.Transform)
		for _, t := range insts {
			mag := t.Mag
			if mag == 0 {
				mag = 1
			}
			byMag[mag] = append(byMag[mag], t)
		}
		mags := make([]int64, 0, len(byMag))
		for mag := range byMag {
			mags = append(mags, mag)
		}
		sort.Slice(mags, func(a, b int) bool { return mags[a] < mags[b] })
		for _, mag := range mags {
			sh.markers = intraMarkers(sh.markers[:0], c, r, scaledIntraMin(r, mag))
			sh.stats.DefsChecked++
			for _, t := range byMag[mag] {
				sh.stats.InstancesEmitted++
				sh.vs = appendMarkers(sh.vs, r, c.Name, sh.markers, t)
			}
		}
		return nil
	})
	if err != nil {
		// Shards are discarded wholesale: a failed rule contributes nothing,
		// keeping degraded reports independent of which worker got how far.
		tbl.discard()
		return err
	}
	tbl.mergeViolations(rep)
	if extra := rep.Stats.InstancesEmitted - rep.Stats.DefsChecked; extra > 0 {
		rep.Stats.ChecksReused = extra
	}
	return nil
}

// appendMarkers appends instance-frame violations for the cell's local
// markers to dst.
func appendMarkers(dst []rules.Violation, r rules.Rule, cell string, markers []checks.Marker, t geom.Transform) []rules.Violation {
	for _, m := range markers {
		dst = append(dst, rules.Violation{
			Rule: r.ID, Kind: r.Kind, Layer: r.Layer,
			Marker: rescaleMarker(m, t, r), Cell: cell,
		})
	}
	return dst
}

// emitMarkers appends instance-frame violations for the cell's local
// markers to the report.
func (e *Engine) emitMarkers(rep *Report, r rules.Rule, cell string, markers []checks.Marker, t geom.Transform) {
	rep.Violations = appendMarkers(rep.Violations, r, cell, markers, t)
}
