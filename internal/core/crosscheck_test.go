package core

import (
	"fmt"
	"math/rand"
	"testing"

	"opendrc/internal/gdsii"
	"opendrc/internal/geom"
	"opendrc/internal/layout"
	"opendrc/internal/rules"
)

// randomLibrary generates a small hierarchical layout with random cell
// geometry and placements in all eight orientations, SREFs and AREFs —
// the adversarial input for cross-engine agreement.
func randomLibrary(rng *rand.Rand) *gdsii.Library {
	lib := &gdsii.Library{Name: "rand", UserUnit: 1e-3, MeterUnit: 1e-9}
	nCells := 2 + rng.Intn(3)
	names := make([]string, nCells)
	for ci := 0; ci < nCells; ci++ {
		names[ci] = fmt.Sprintf("C%d", ci)
		st := &gdsii.Structure{Name: names[ci]}
		for p := 0; p < 1+rng.Intn(4); p++ {
			x := int64(rng.Intn(120))
			y := int64(rng.Intn(120))
			w := int64(8 + rng.Intn(40))
			h := int64(8 + rng.Intn(40))
			layerPick := []layout.Layer{layout.LayerM1, layout.LayerM1, layout.LayerV1}[rng.Intn(3)]
			st.Boundaries = append(st.Boundaries, gdsii.Boundary{
				Layer: int16(layerPick),
				XY: []geom.Point{
					geom.Pt(x, y), geom.Pt(x, y+h), geom.Pt(x+w, y+h), geom.Pt(x+w, y),
				},
			})
		}
		lib.Structures = append(lib.Structures, st)
	}
	top := &gdsii.Structure{Name: "TOP"}
	angles := []float64{0, 90, 180, 270}
	for i := 0; i < 4+rng.Intn(8); i++ {
		tr := gdsii.Trans{
			Reflect:  rng.Intn(2) == 0,
			AngleDeg: angles[rng.Intn(4)],
		}
		pos := geom.Pt(int64(rng.Intn(900)), int64(rng.Intn(900)))
		name := names[rng.Intn(nCells)]
		if rng.Intn(4) == 0 {
			cols := int16(1 + rng.Intn(3))
			rows := int16(1 + rng.Intn(3))
			top.ARefs = append(top.ARefs, gdsii.ARef{
				Name: name, Trans: tr, Cols: cols, Rows: rows,
				Origin: pos,
				ColEnd: pos.Add(geom.Pt(int64(cols)*int64(150+rng.Intn(100)), 0)),
				RowEnd: pos.Add(geom.Pt(0, int64(rows)*int64(150+rng.Intn(100)))),
			})
		} else {
			top.SRefs = append(top.SRefs, gdsii.SRef{Name: name, Trans: tr, Pos: pos})
		}
	}
	// Loose top-level geometry too.
	for i := 0; i < rng.Intn(5); i++ {
		x := int64(rng.Intn(800))
		y := int64(rng.Intn(800))
		w := int64(20 + rng.Intn(200))
		h := int64(10 + rng.Intn(30))
		top.Boundaries = append(top.Boundaries, gdsii.Boundary{
			Layer: int16(layout.LayerM1),
			XY: []geom.Point{
				geom.Pt(x, y), geom.Pt(x, y+h), geom.Pt(x+w, y+h), geom.Pt(x+w, y),
			},
		})
	}
	lib.Structures = append(lib.Structures, top)
	return lib
}

func violationKeys(vs []rules.Violation) map[string]bool {
	out := make(map[string]bool)
	for _, v := range DedupViolations(append([]rules.Violation(nil), vs...)) {
		out[fmt.Sprintf("%s|%v|%d|%v", v.Rule, v.Marker.Box, v.Marker.Dist, v.Marker.Corner)] = true
	}
	return out
}

// TestRandomLayoutsAllConfigurationsAgree runs every engine configuration
// over randomized hierarchical layouts and demands identical deduplicated
// violation sets: sequential, pruning-off, parallel with each executor.
func TestRandomLayoutsAllConfigurationsAgree(t *testing.T) {
	deck := rules.Deck{
		rules.Layer(layout.LayerM1).Width().AtLeast(12).Named("W"),
		rules.Layer(layout.LayerM1).Area().AtLeast(150).Named("A"),
		rules.Layer(layout.LayerM1).Spacing().AtLeast(14).Named("S"),
		rules.Layer(layout.LayerM1).Spacing().AtLeast(10).
			WhenProjectionAtLeast(25, 16).Named("SPRL"),
		rules.Layer(layout.LayerV1).EnclosedBy(layout.LayerM1).AtLeast(4).Named("EN"),
		rules.Layer(layout.LayerV1).CoveredBy(layout.LayerM1).Named("COV"),
	}
	configs := []struct {
		name string
		opts Options
	}{
		{"seq", Options{Mode: Sequential}},
		{"seq-noprune", Options{Mode: Sequential, DisablePruning: true}},
		{"par-brute", Options{Mode: Parallel, BruteEdgeThreshold: 1 << 30}},
		{"par-sweep", Options{Mode: Parallel, BruteEdgeThreshold: 1}},
	}
	for trial := 0; trial < 12; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 7919))
		lib := randomLibrary(rng)
		lo, err := layout.FromLibrary(lib)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var ref map[string]bool
		var refName string
		for _, cfg := range configs {
			rep := runEngine(t, lo, cfg.opts, deck)
			keys := violationKeys(rep.Violations)
			if ref == nil {
				ref, refName = keys, cfg.name
				continue
			}
			if len(keys) != len(ref) {
				t.Fatalf("trial %d: %s found %d violations, %s found %d",
					trial, cfg.name, len(keys), refName, len(ref))
			}
			for k := range keys {
				if !ref[k] {
					t.Fatalf("trial %d: %s-only violation %s", trial, cfg.name, k)
				}
			}
		}
		if len(ref) == 0 && trial == 0 {
			t.Log("note: trial 0 produced no violations (acceptable, randomized)")
		}
	}
}
