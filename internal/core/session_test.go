package core

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"opendrc/internal/faults"
	"opendrc/internal/layout"
	"opendrc/internal/rules"
	"opendrc/internal/synth"
)

// Session semantics: resident state makes repeat checks cheaper, never
// different. The canonical report form is the contract — byte-identical
// between batch runs, cold sessions, and warm sessions — while the stats
// show the residency doing its job (warm checks hit the cache and reuse
// device buffers instead of re-uploading).

// canonJSON renders the report's canonical form.
func canonJSON(t *testing.T, rep *Report) string {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.WriteCanonicalJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestSessionParity checks, in both modes: a session's first (cold) and
// second (warm) full-deck checks produce the canonical bytes of a batch
// run, and the warm parallel check reuses resident device buffers instead
// of uploading.
func TestSessionParity(t *testing.T) {
	lo, _, err := synth.Load("uart", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	deck := synth.Deck()
	ctx := context.Background()
	for _, mode := range []Mode{Sequential, Parallel} {
		e := New(Options{Mode: mode})
		if err := e.AddRules(deck...); err != nil {
			t.Fatal(err)
		}
		batch, err := e.CheckContext(ctx, lo)
		if err != nil {
			t.Fatalf("%v: batch: %v", mode, err)
		}
		want := canonJSON(t, batch)

		ses := NewSession(lo, Options{Mode: mode})
		defer ses.Close(ctx)
		cold, err := ses.Check(ctx, deck)
		if err != nil {
			t.Fatalf("%v: cold session check: %v", mode, err)
		}
		if got := canonJSON(t, cold); got != want {
			t.Fatalf("%v: cold session report differs from batch:\n%s\nvs\n%s", mode, got, want)
		}
		coldOps := 0
		if cold.Device != nil {
			coldOps = cold.Device.OpCount() // watermark before the warm run enqueues
		}
		warm, err := ses.Check(ctx, deck)
		if err != nil {
			t.Fatalf("%v: warm session check: %v", mode, err)
		}
		if got := canonJSON(t, warm); got != want {
			t.Fatalf("%v: warm session report differs from batch", mode)
		}

		// Warm-session cost shape: everything the cold check computed is a
		// hit the second time around.
		if warm.Stats.FlattenCacheMisses != 0 || warm.Stats.PackCacheMisses != 0 {
			t.Fatalf("%v: warm check missed the session cache: %+v", mode, warm.Stats)
		}
		if mode == Parallel {
			if cold.Stats.DeviceUploads == 0 {
				t.Fatalf("cold parallel check uploaded nothing: %+v", cold.Stats)
			}
			if warm.Stats.DeviceUploads != 0 {
				t.Fatalf("warm parallel check re-uploaded %d resident layers", warm.Stats.DeviceUploads)
			}
			if warm.Stats.DeviceReuses == 0 {
				t.Fatalf("warm parallel check never reused a resident buffer")
			}
			// Per-run device views: the warm report's modeled time is this
			// run's delta, and its timeline was trimmed to this run.
			if warm.Modeled <= 0 || warm.Modeled >= ses.ModeledClock() {
				t.Fatalf("warm Modeled = %v not a per-run delta of session clock %v",
					warm.Modeled, ses.ModeledClock())
			}
			for _, r := range warm.Device.Timeline() {
				if int(r.Seq) < coldOps {
					t.Fatalf("warm timeline retains cold-run record seq %d", r.Seq)
				}
			}
		}
	}
}

// TestSessionSingleRule runs one rule through a warm session and demands
// the canonical bytes of a batch engine configured with only that rule.
func TestSessionSingleRule(t *testing.T) {
	lo, _, err := synth.Load("sha3", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	deck := synth.Deck()
	one := deck[1:2]
	ctx := context.Background()

	e := New(Options{Mode: Parallel})
	if err := e.AddRules(one...); err != nil {
		t.Fatal(err)
	}
	batch, err := e.CheckContext(ctx, lo)
	if err != nil {
		t.Fatal(err)
	}

	ses := NewSession(lo, Options{Mode: Parallel})
	defer ses.Close(ctx)
	if _, err := ses.Check(ctx, deck); err != nil { // warm the session with the full deck
		t.Fatal(err)
	}
	got, err := ses.Check(ctx, one)
	if err != nil {
		t.Fatal(err)
	}
	if canonJSON(t, got) != canonJSON(t, batch) {
		t.Fatalf("single-rule session report differs from single-rule batch")
	}
}

// TestSessionCloseReleasesDevice pins the deterministic teardown: resident
// buffers hold device pool bytes between checks, Close frees every one,
// and a closed session refuses further checks. Close is idempotent.
func TestSessionCloseReleasesDevice(t *testing.T) {
	lo, _, err := synth.Load("uart", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ses := NewSession(lo, Options{Mode: Parallel})
	if _, err := ses.Check(ctx, synth.Deck()); err != nil {
		t.Fatal(err)
	}
	dev := ses.Device()
	if dev == nil {
		t.Fatal("no session device after a parallel check")
	}
	if inUse, _, _, _ := dev.PoolStats(); inUse == 0 {
		t.Fatal("no resident bytes held between checks; session residency is off")
	}
	if err := ses.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if inUse, _, _, _ := dev.PoolStats(); inUse != 0 {
		t.Fatalf("Close left %d bytes in the device pool", inUse)
	}
	if err := ses.Close(ctx); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := ses.Check(ctx, synth.Deck()); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Check after Close = %v, want ErrSessionClosed", err)
	}
	if err := ses.Invalidate(ctx, LayerRegion{Layer: 1}); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Invalidate after Close = %v, want ErrSessionClosed", err)
	}
	if err := ses.InvalidateAll(ctx); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("InvalidateAll after Close = %v, want ErrSessionClosed", err)
	}
}

// TestSessionInvalidate drops a warm session's resident geometry and checks
// the next run recomputes (cache misses, re-uploads) yet reports the same
// canonical bytes. Layer-scoped invalidation keeps unrelated layers warm.
func TestSessionInvalidate(t *testing.T) {
	lo, _, err := synth.Load("uart", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	deck := synth.Deck()
	ctx := context.Background()
	ses := NewSession(lo, Options{Mode: Parallel})
	defer ses.Close(ctx)
	cold, err := ses.Check(ctx, deck)
	if err != nil {
		t.Fatal(err)
	}
	want := canonJSON(t, cold)

	if err := ses.InvalidateAll(ctx); err != nil { // drop everything
		t.Fatal(err)
	}
	redo, err := ses.Check(ctx, deck)
	if err != nil {
		t.Fatal(err)
	}
	if canonJSON(t, redo) != want {
		t.Fatalf("post-invalidate report differs")
	}
	if redo.Stats.FlattenCacheMisses == 0 || redo.Stats.DeviceUploads == 0 {
		t.Fatalf("invalidate did not force recomputation: %+v", redo.Stats)
	}

	// Layer-scoped: invalidating one layer leaves the others resident.
	var spacingLayer layout.Layer
	for _, r := range deck {
		if r.Kind == rules.Spacing {
			spacingLayer = r.Layer
			break
		}
	}
	if err := ses.Invalidate(ctx, LayerRegion{Layer: spacingLayer}); err != nil {
		t.Fatal(err)
	}
	part, err := ses.Check(ctx, deck)
	if err != nil {
		t.Fatal(err)
	}
	if canonJSON(t, part) != want {
		t.Fatalf("post-partial-invalidate report differs")
	}
	if part.Stats.DeviceUploads == 0 {
		t.Fatalf("partial invalidate did not evict the layer's resident buffer: %+v", part.Stats)
	}
	if part.Stats.DeviceReuses == 0 {
		t.Fatalf("partial invalidate evicted unrelated resident buffers: %+v", part.Stats)
	}
}

// TestSessionCancelDoesNotPoison cancels a session check mid-run (stall
// injection parked at a deterministic rule, context timeout fires) and then
// demands a subsequent check on the same session still matches batch — the
// fault-tolerance property the service layer leans on.
func TestSessionCancelDoesNotPoison(t *testing.T) {
	lo, _, err := synth.Load("uart", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	deck := synth.Deck()
	stallRule := deck[1].ID
	rest := append(append(rules.Deck{}, deck[0]), deck[2:]...)
	inj := faults.New(1, faults.Injection{
		Site: faults.SiteRule, Key: stallRule, Mode: faults.Stall, Stall: time.Hour,
	})
	ctx := context.Background()
	for _, mode := range []Mode{Sequential, Parallel} {
		ses := NewSession(lo, Options{Mode: mode, Faults: inj})
		cctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
		rep, err := ses.Check(cctx, deck)
		cancel()
		if rep != nil || !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("%v: stalled check = (%v, %v), want nil report and deadline error", mode, rep, err)
		}

		// The session must still serve the untouched rules, identically to a
		// batch engine under the same injector.
		e := New(Options{Mode: mode, Faults: inj})
		if err := e.AddRules(rest...); err != nil {
			t.Fatal(err)
		}
		batch, err := e.CheckContext(ctx, lo)
		if err != nil {
			t.Fatalf("%v: batch: %v", mode, err)
		}
		after, err := ses.Check(ctx, rest)
		if err != nil {
			t.Fatalf("%v: post-cancel session check: %v", mode, err)
		}
		if canonJSON(t, after) != canonJSON(t, batch) {
			t.Fatalf("%v: session poisoned by cancelled check", mode)
		}
		if err := ses.Close(ctx); err != nil {
			t.Fatalf("%v: Close: %v", mode, err)
		}
	}
}
