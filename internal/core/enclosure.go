package core

import (
	"context"

	"opendrc/internal/checks"
	"opendrc/internal/geom"
	"opendrc/internal/layout"
	"opendrc/internal/rules"
	"opendrc/internal/sweep"
)

// Sequential enclosure checking. Enclosure is existential — a via passes
// when *some* metal covers it with margin — and monotone in metal: adding
// candidates can only turn failures into passes. The hierarchical strategy
// exploits this: each cell definition resolves its own vias against the
// metal inside the same subtree once; vias that pass locally pass in every
// instance (the memoized reuse), while vias that fail locally are deferred
// and re-evaluated per instance against the global metal around them (a
// parent may supply the missing coverage).

// runEnclosureSeq executes one enclosure rule sequentially.
func (e *Engine) runEnclosureSeq(ctx context.Context, lo *layout.Layout, r rules.Rule, placements [][]geom.Transform, rep *Report) error {
	type residue struct {
		cell    *layout.Cell
		polyIdx int
	}
	var deferred []residue

	if !e.opts.DisablePruning {
		stop := rep.Profile.Phase("enclosure:cell-checks")
		for _, c := range lo.LayerCells(r.Layer) {
			if err := ctx.Err(); err != nil {
				stop()
				return err
			}
			if len(placements[c.ID]) == 0 {
				continue
			}
			local := c.LocalPolys(r.Layer)
			if len(local) == 0 {
				continue
			}
			rep.Stats.DefsChecked++
			unresolved, err := e.enclosureLocalPass(lo, c, local, r, rep)
			if err != nil {
				stop()
				return err
			}
			resolved := len(local) - len(unresolved)
			rep.Stats.InstancesEmitted += resolved * len(placements[c.ID])
			rep.Stats.ChecksReused += resolved * (len(placements[c.ID]) - 1)
			for _, pi := range unresolved {
				deferred = append(deferred, residue{cell: c, polyIdx: pi})
			}
		}
		stop()
	} else {
		for _, c := range lo.LayerCells(r.Layer) {
			if len(placements[c.ID]) == 0 {
				continue
			}
			for _, pi := range c.LocalPolys(r.Layer) {
				deferred = append(deferred, residue{cell: c, polyIdx: pi})
			}
		}
	}

	// Globally resolve the leftovers, instance by instance.
	defer rep.Profile.Phase("enclosure:global-residue")()
	for _, d := range deferred {
		if err := ctx.Err(); err != nil {
			return err
		}
		via := d.cell.Polys[d.polyIdx].Shape
		for _, t := range placements[d.cell.ID] {
			gvia := via.Transform(t)
			window := gvia.MBR().Expand(r.Min)
			cands, _ := lo.QueryLayer(r.Outer, window)
			metals := make([]geom.Polygon, len(cands))
			for i := range cands {
				metals[i] = cands[i].Shape
			}
			rep.Stats.PairsChecked += len(metals)
			rep.Stats.InstancesEmitted++
			checks.EvaluateEnclosure(gvia, metals, r.Min, func(m checks.Marker) {
				rep.Violations = append(rep.Violations, rules.Violation{
					Rule: r.ID, Kind: r.Kind, Layer: r.Layer, Marker: m, Cell: d.cell.Name,
				})
			})
		}
	}
	return nil
}

// enclosureLocalPass resolves a cell definition's own vias against the metal
// inside the cell's subtree in one batch: a single windowed subtree query
// collects candidate metal, one sweep assigns candidates to vias, and each
// via is evaluated. It returns the local polygon indices of vias that did
// NOT resolve locally; those stay deferred rather than reported, since
// parent-level metal may still cover them.
func (e *Engine) enclosureLocalPass(lo *layout.Layout, c *layout.Cell, local []int, r rules.Rule, rep *Report) ([]int, error) {
	window := geom.EmptyRect()
	viaBoxes := make([]geom.Rect, len(local))
	for i, pi := range local {
		viaBoxes[i] = c.Polys[pi].Shape.MBR().Expand(r.Min)
		window = window.Union(viaBoxes[i])
	}
	found := lo.QuerySubtree(c, r.Outer, window)
	rep.Stats.SubtreeQueries++
	metalBoxes := make([]geom.Rect, len(found))
	for i := range found {
		metalBoxes[i] = found[i].Shape.MBR()
	}
	cands := make([][]geom.Polygon, len(local))
	if _, err := sweep.OverlapsBetween(viaBoxes, metalBoxes, func(v, m int) {
		cands[v] = append(cands[v], found[m].Shape)
	}); err != nil {
		return nil, err
	}
	var unresolved []int
	for i, pi := range local {
		rep.Stats.PairsChecked += len(cands[i])
		ok, _ := checks.EvaluateEnclosure(c.Polys[pi].Shape, cands[i], r.Min, func(checks.Marker) {})
		if !ok {
			unresolved = append(unresolved, pi)
		}
	}
	return unresolved, nil
}
