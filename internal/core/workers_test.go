package core

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"opendrc/internal/rules"
	"opendrc/internal/synth"
)

// canonicalReport serializes the worker-count-independent parts of a report
// (sorted violations and scheduling counters) so runs can be compared
// byte for byte.
func canonicalReport(t *testing.T, rep *Report) []byte {
	t.Helper()
	out, err := json.Marshal(struct {
		Violations []rules.Violation
		Stats      Stats
	}{rep.Violations, rep.Stats})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestWorkerCountDeterminism demands byte-identical sorted reports from
// Workers=1 and Workers=8 on every synth design profile, in both engine
// modes: the fan-out must not change what the engine finds or counts.
func TestWorkerCountDeterminism(t *testing.T) {
	deck := synth.Deck()
	for _, design := range []string{"aes", "ethmac", "ibex", "jpeg", "sha3", "uart"} {
		lo, _, err := synth.Load(design, 0.25)
		if err != nil {
			t.Fatalf("%s: %v", design, err)
		}
		for _, mode := range []Mode{Sequential, Parallel} {
			var ref []byte
			for _, workers := range []int{1, 8} {
				rep := runEngine(t, lo, Options{Mode: mode, Workers: workers}, deck)
				got := canonicalReport(t, rep)
				if ref == nil {
					ref = got
					continue
				}
				if !bytes.Equal(got, ref) {
					t.Errorf("%s %s: workers=8 report differs from workers=1 (%d vs %d bytes)",
						design, mode, len(got), len(ref))
				}
			}
		}
	}
}

// TestWorkerCountDeterminismRepeatedRuns pins down run-to-run determinism at
// a fixed worker count: goroutine scheduling must never leak into the
// report.
func TestWorkerCountDeterminismRepeatedRuns(t *testing.T) {
	lo, _, err := synth.Load("aes", 0.25)
	if err != nil {
		t.Fatal(err)
	}
	deck := synth.Deck()
	var ref []byte
	for i := 0; i < 3; i++ {
		rep := runEngine(t, lo, Options{Mode: Sequential, Workers: 4}, deck)
		got := canonicalReport(t, rep)
		if ref == nil {
			ref = got
			continue
		}
		if !bytes.Equal(got, ref) {
			t.Fatalf("run %d differs from run 0", i)
		}
	}
}

// TestDedupViolationsLeavesInputUnchanged is the regression test for the
// old in-place compaction: DedupViolations must return a fresh slice and
// leave the caller's slice exactly as passed (content and order).
func TestDedupViolationsLeavesInputUnchanged(t *testing.T) {
	mk := func(rule string, x int64) rules.Violation {
		v := rules.Violation{Rule: rule}
		v.Marker.Box.XLo, v.Marker.Box.XHi = x, x+10
		v.Marker.Box.YLo, v.Marker.Box.YHi = 0, 10
		return v
	}
	in := []rules.Violation{
		mk("B", 30), mk("A", 10), mk("B", 30), mk("A", 20), mk("A", 10),
	}
	orig := append([]rules.Violation(nil), in...)
	out := DedupViolations(in)
	if !reflect.DeepEqual(in, orig) {
		t.Fatalf("input mutated:\n got %v\nwant %v", in, orig)
	}
	if len(out) != 3 {
		t.Fatalf("deduped to %d violations, want 3: %v", len(out), out)
	}
	// The result must be detached: writing to it must not touch the input.
	for i := range out {
		out[i].Rule = "CLOBBER"
	}
	if !reflect.DeepEqual(in, orig) {
		t.Fatal("result aliases the input slice")
	}
}

// TestWorkerPanicPropagates ensures a panicking custom rule — running on
// pool workers — is isolated into a structured RuleFailure carrying the
// worker's stack, instead of crashing the run (the pre-hardening behavior)
// or being silently swallowed.
func TestWorkerPanicPropagates(t *testing.T) {
	lo, _, err := synth.Load("uart", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{Mode: Sequential, Workers: 8})
	boom := rules.Layer(19).Polygons().Ensure("boom", func(rules.Obj) bool {
		panic("rule panic")
	})
	if err := e.AddRules(boom); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Check(lo)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if !rep.Degraded {
		t.Fatal("report not degraded after worker panic")
	}
	if len(rep.Failures) != 1 {
		t.Fatalf("failures = %+v, want exactly one", rep.Failures)
	}
	f := rep.Failures[0]
	if !strings.Contains(f.Rule, "boom") {
		t.Errorf("failed rule = %q, want the boom rule", f.Rule)
	}
	if !f.Panicked {
		t.Error("failure not marked as panic")
	}
	if !strings.Contains(f.Err, "rule panic") {
		t.Errorf("failure text %q does not carry the panic value", f.Err)
	}
	if f.Stack == "" {
		t.Error("worker stack lost")
	}
}
