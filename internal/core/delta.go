package core

import (
	"context"
	"slices"
	"sort"

	"opendrc/internal/budget"
	"opendrc/internal/geocache"
	"opendrc/internal/geom"
	"opendrc/internal/layout"
	"opendrc/internal/pool"
	"opendrc/internal/rules"
)

// Delta checks. After an in-place layout edit, the violations that can have
// changed are spatially bounded: a rule relates geometry only within its
// interaction reach, so every violation created or destroyed by an edit has
// its marker inside the edit region dilated by that reach. A session
// therefore tracks the undilated dirty rectangles of each edit, and a
// DeltaCheck re-runs each rule only over the dirty neighborhood, retaining
// the prior check's violations everywhere else:
//
//   - U   = union of dirty rects on the rule's layer (undilated)
//   - C_r = U dilated by the rule's reach — the CLAIM region. Any violation
//     whose marker box center lies in C_r is re-derived by the delta run;
//     any whose center lies outside is provably unchanged and is retained
//     from the baseline. (The marker box of a pair violation lies between
//     the two edges, both within reach of each other, so a violation
//     involving edited geometry — which is inside U — has its whole box,
//     center included, inside C_r. The center predicate is evaluated on the
//     same global box on both sides, so claimed and retained partition the
//     cold result exactly.)
//   - W_r = C_r dilated by the reach again — the WORK window. Geometry whose
//     expanded MBR misses W_r cannot produce a violation centered in C_r,
//     so the delta run restricts partition rows, cell instances, and kernel
//     member lists to W_r's neighborhood.
//
// The merged stream (claimed ∪ retained) is the same violation multiset a
// cold full check of the edited layout produces; Report.WriteCanonicalJSON
// serializes violations as an order-normalized multiset, so delta reports
// are byte-identical to cold reports. Rules untouched by any dirty layer
// skip execution entirely (their baseline violations are retained
// wholesale); rules whose kinds have no restricted executor — enclosure,
// derived-layer booleans, custom predicates — re-run in full, which is
// trivially identical.

// deltaMode classifies one rule's execution inside a delta check.
type deltaMode uint8

const (
	deltaFull     deltaMode = iota // re-run completely, own all its violations
	deltaSkip                      // not run; baseline violations retained wholesale
	deltaRestrict                  // run restricted to W, claim inside C, retain the rest
)

// rulePlan is one rule's delta classification with its claim/work regions.
type rulePlan struct {
	mode  deltaMode
	claim []geom.Rect // C_r
	work  []geom.Rect // W_r
}

// claims reports whether the rule's delta run owns a violation with this
// marker box: the box center lies in the claim region. The same predicate
// filters retained baseline violations, so the two streams partition.
func (rp *rulePlan) claims(box geom.Rect) bool {
	ctr := box.Center()
	for _, r := range rp.claim {
		if r.Contains(ctr) {
			return true
		}
	}
	return false
}

// nearWork reports whether a (global-frame) box intersects the work window.
func (rp *rulePlan) nearWork(box geom.Rect) bool {
	for _, r := range rp.work {
		if box.Overlaps(r) {
			return true
		}
	}
	return false
}

// nearWorkY reports whether a y-band can hold geometry intersecting the work
// window (used to keep or skip whole partition rows).
func (rp *rulePlan) nearWorkY(ylo, yhi int64) bool {
	for _, r := range rp.work {
		if r.YLo <= yhi && ylo <= r.YHi {
			return true
		}
	}
	return false
}

// anyPlacementNear reports whether any of the instance transforms maps the
// cell-local box into the work window. Used to prune whole cell-definition
// tasks: a definition none of whose instances land near the dirty region
// cannot contribute a claimed violation.
func (rp *rulePlan) anyPlacementNear(localBox geom.Rect, insts []geom.Transform) bool {
	if localBox.Empty() {
		return false
	}
	for _, t := range insts {
		if rp.nearWork(t.ApplyRect(localBox)) {
			return true
		}
	}
	return false
}

// deltaPlan is one delta check's per-rule classification plus the baseline
// violations the retained stream draws from.
type deltaPlan struct {
	rules    map[string]*rulePlan
	baseline []rules.Violation // shared with the session; read-only
}

// of returns the rule's plan; nil means full (unplanned rules own their
// violations like a normal run).
func (p *deltaPlan) of(id string) *rulePlan {
	if p == nil {
		return nil
	}
	return p.rules[id]
}

// restrictFor returns the rule's plan only when it runs restricted — the
// hook the executors use to prune rows, cells, and kernel member lists.
func (e *Engine) restrictFor(id string) *rulePlan {
	rp := e.delta.of(id)
	if rp != nil && rp.mode == deltaRestrict {
		return rp
	}
	return nil
}

// mergeDelta replaces the restricted rules' out-of-claim violations with the
// baseline's, producing the cold multiset. Runs before sortViolations.
func (e *Engine) mergeDelta(rep *Report) {
	if e.delta == nil {
		return
	}
	kept := rep.Violations[:0]
	for _, v := range rep.Violations {
		if rp := e.delta.of(v.Rule); rp != nil && rp.mode == deltaRestrict && !rp.claims(v.Marker.Box) {
			continue
		}
		kept = append(kept, v)
	}
	rep.Violations = kept
	failed := make(map[string]bool, len(rep.Failures))
	for _, f := range rep.Failures {
		failed[f.Rule] = true
	}
	for _, v := range e.delta.baseline {
		rp := e.delta.of(v.Rule)
		if rp == nil || rp.mode == deltaFull || failed[v.Rule] {
			continue
		}
		if rp.mode == deltaSkip || !rp.claims(v.Marker.Box) {
			rep.Violations = append(rep.Violations, v)
		}
	}
}

// LayerRegion names a dirty region of one layer for Session.Invalidate. An
// empty Rects list marks the whole layer dirty.
type LayerRegion struct {
	Layer layout.Layer
	Rects []geom.Rect
}

// sessionBaseline is the last successful check's result, the retained-stream
// source for the next delta check. One slot: delta checks chain off the most
// recent full or delta result for the same deck.
type sessionBaseline struct {
	deckIDs    []string
	violations []rules.Violation
	failed     map[string]bool
}

// SessionStats is a point-in-time snapshot of a session's resident-state
// footprint and check traffic, served by the odrcd stats endpoint.
type SessionStats struct {
	Geocache       geocache.Stats `json:"geocache"`
	ResidentLayers int            `json:"resident_layers"`
	ResidentBytes  int64          `json:"resident_bytes"`
	// FullChecks counts Session.Check calls; DeltaChecks counts
	// Session.DeltaCheck calls, split into planned incremental runs and
	// full-check fallbacks.
	FullChecks         int64 `json:"full_checks"`
	DeltaChecks        int64 `json:"delta_checks"`
	DeltaPlanned       int64 `json:"delta_planned"`
	DeltaFallbacks     int64 `json:"delta_fallbacks"`
	DeviceDeltaUploads int64 `json:"device_delta_uploads"`
}

// DeltaInfo reports how a DeltaCheck executed. When Planned is false the
// call fell back to a full check (Reason says why) — the report is still
// correct, just not incremental.
type DeltaInfo struct {
	Planned         bool   `json:"planned"`
	Reason          string `json:"reason,omitempty"`
	RulesSkipped    int    `json:"rules_skipped"`
	RulesRestricted int    `json:"rules_restricted"`
	RulesFull       int    `json:"rules_full"`
}

// Edit applies in-place layout edits to the session's layout and records the
// resulting dirty regions for the next (delta or full) check. The resident
// caches are invalidated lazily at the next check, when the deck — and hence
// the guard distance — is known.
func (s *Session) Edit(ctx context.Context, edits []layout.Edit) ([]layout.LayerDirty, error) {
	if err := s.lock(ctx); err != nil {
		return nil, err
	}
	defer s.unlock()
	if s.closed {
		return nil, ErrSessionClosed
	}
	dirty, err := s.lo.ApplyEdits(edits)
	if err != nil {
		return nil, err
	}
	for i := range dirty {
		s.markDirty(dirty[i].Layer, dirty[i].Rects, false)
	}
	return dirty, nil
}

// Invalidate marks regions of the session's resident geometry dirty: cached
// flattens, packs, MBR tables, row partitions, and device-resident edge
// buffers covering the regions are refreshed by the next check, which only
// re-derives the partition rows the regions (dilated by the deck's maximum
// interaction reach) intersect. A region with no rects dirties its whole
// layer. With no regions at all the call is a no-op and returns immediately
// without taking the session lock. For callers that mutate the layout
// through means the session cannot see (direct mutation rather than Edit);
// Edit records its own regions.
func (s *Session) Invalidate(ctx context.Context, regions ...LayerRegion) error {
	if len(regions) == 0 {
		return nil
	}
	if err := s.lock(ctx); err != nil {
		return err
	}
	defer s.unlock()
	if s.closed {
		return ErrSessionClosed
	}
	for _, reg := range regions {
		s.markDirty(reg.Layer, reg.Rects, len(reg.Rects) == 0)
	}
	return nil
}

// InvalidateAll drops every piece of resident state — caches, device
// buffers, the delta baseline — so the next check is cold.
func (s *Session) InvalidateAll(ctx context.Context) error {
	if err := s.lock(ctx); err != nil {
		return err
	}
	defer s.unlock()
	if s.closed {
		return ErrSessionClosed
	}
	if s.geo.cache != nil {
		s.geo.cache.Invalidate()
	}
	s.smu.Lock()
	pc := s.pc
	s.smu.Unlock()
	if pc != nil {
		s.freeResident(pc, nil)
	}
	s.baseline = nil
	s.pending = nil
	s.pendingFull = nil
	return nil
}

// markDirty records pending dirty rects for a layer (session lock held).
func (s *Session) markDirty(l layout.Layer, rects []geom.Rect, whole bool) {
	if whole {
		if s.pendingFull == nil {
			s.pendingFull = make(map[layout.Layer]bool)
		}
		s.pendingFull[l] = true
		return
	}
	live := false
	for _, r := range rects {
		if !r.Empty() {
			live = true
			break
		}
	}
	if !live {
		return
	}
	if s.pending == nil {
		s.pending = make(map[layout.Layer][]geom.Rect)
	}
	for _, r := range rects {
		if !r.Empty() {
			s.pending[l] = append(s.pending[l], r)
		}
	}
}

// deckMaxReach is the issue's dilation rule: dirty rects invalidate cache
// rows out to the deck's maximum interaction distance.
func deckMaxReach(deck rules.Deck) int64 {
	var max int64
	for _, r := range deck {
		if d := r.Reach(); d > max {
			max = d
		}
	}
	return max
}

// applyPending pushes the session's accumulated dirty regions into the
// resident caches: per dirty layer, a region-scoped cache invalidation
// (dirty rects dilated by the deck's maximum reach) that keeps clean
// partition rows, and a matching partial free of the layer's device-resident
// edge buffer so the next bind uploads only the rebuilt slice. Whole-layer
// dirt — and layers the cache cannot segment — falls back to full
// invalidation and a full buffer free. Session lock held; pending state is
// consumed.
func (s *Session) applyPending(deck rules.Deck) {
	if len(s.pending) == 0 && len(s.pendingFull) == 0 {
		return
	}
	s.smu.Lock()
	pc := s.pc
	s.smu.Unlock()
	layers := make([]layout.Layer, 0, len(s.pending)+len(s.pendingFull))
	for l := range s.pending {
		layers = append(layers, l)
	}
	for l := range s.pendingFull {
		layers = append(layers, l)
	}
	sort.Slice(layers, func(i, j int) bool { return layers[i] < layers[j] })
	layers = slices.Compact(layers)
	guard := deckMaxReach(deck)
	for _, l := range layers {
		if s.pendingFull[l] || s.geo.cache == nil {
			if s.geo.cache != nil {
				s.geo.cache.Invalidate(l)
			}
			if pc != nil {
				s.freeResident(pc, []layout.Layer{l})
			}
			continue
		}
		rects := make([]geom.Rect, len(s.pending[l]))
		for i, r := range s.pending[l] {
			rects[i] = r.Expand(guard)
		}
		out := s.geo.cache.InvalidateRegion(l, guard, s.opts.PartitionAlg, rects)
		// Partial buffer refreshes skip the per-upload budget charge and the
		// allocator fault site, so sessions running with either keep the
		// full free/re-upload path and stay behaviorally identical to batch.
		if pc != nil {
			if out.Segmented && s.opts.Faults == nil && s.opts.Budgets == (budget.Limits{}) {
				s.partialFreeResident(pc, l, out.KeptEdgeBytes)
			} else {
				s.freeResident(pc, []layout.Layer{l})
			}
		}
	}
	s.pending = nil
	s.pendingFull = nil
}

// partialFreeResident frees the stale suffix of a layer's device-resident
// edge buffer, keeping keptBytes resident; the next bindEdges uploads only
// the delta. Session lock held.
func (s *Session) partialFreeResident(pc *parCtx, l layout.Layer, keptBytes int64) {
	for _, b := range pc.resident {
		if b.layer != l {
			continue
		}
		if keptBytes <= 0 || keptBytes >= b.bytes {
			s.freeResident(pc, []layout.Layer{l})
			return
		}
		pc.io.WaitEvent(pc.cs.RecordEvent())
		pc.io.FreeAsync(b.bytes - keptBytes)
		b.bytes = keptBytes
		b.partial = true
		b.mbr = nil // derived table is stale with the geometry
		return
	}
}

// updateBaseline stores a successful check's result as the session's delta
// baseline. Session lock held.
func (s *Session) updateBaseline(deck rules.Deck, rep *Report) {
	b := &sessionBaseline{
		deckIDs:    make([]string, len(deck)),
		violations: append([]rules.Violation(nil), rep.Violations...),
	}
	for i, r := range deck {
		b.deckIDs[i] = r.ID
	}
	if len(rep.Failures) > 0 {
		b.failed = make(map[string]bool, len(rep.Failures))
		for _, f := range rep.Failures {
			b.failed[f.Rule] = true
		}
	}
	s.baseline = b
}

// deltaFallbackReason returns why a delta check cannot run incrementally
// ("" when it can). Budgets and fault injection change which rules fail —
// failure sets are part of the report, so an incremental run under either
// could diverge from a cold one; both force the fallback.
func (s *Session) deltaFallbackReason(deck rules.Deck) string {
	switch {
	case s.baseline == nil:
		return "no baseline check"
	case s.opts.Faults != nil:
		return "fault injection active"
	case s.opts.Budgets != (budget.Limits{}):
		return "resource budgets active"
	case s.geo.cache == nil:
		return "geometry cache disabled"
	case s.opts.DisablePruning:
		return "hierarchy pruning disabled"
	}
	if len(s.baseline.deckIDs) != len(deck) {
		return "deck changed since baseline"
	}
	for i, r := range deck {
		if s.baseline.deckIDs[i] != r.ID {
			return "deck changed since baseline"
		}
	}
	return ""
}

// planDelta classifies every deck rule against the pending dirty regions.
// Session lock held; pending state is still intact (applyPending runs
// after, sharing the same snapshot).
func (s *Session) planDelta(deck rules.Deck) (*deltaPlan, DeltaInfo) {
	plan := &deltaPlan{rules: make(map[string]*rulePlan, len(deck)), baseline: s.baseline.violations}
	info := DeltaInfo{Planned: true}
	for _, r := range deck {
		layers := []layout.Layer{r.Layer}
		switch r.Kind {
		case rules.Enclosure, rules.Coverage, rules.MinOverlap:
			layers = append(layers, r.Outer)
		}
		full := s.baseline.failed[r.ID]
		var dirty []geom.Rect
		for _, l := range layers {
			if s.pendingFull[l] {
				full = true
			}
			dirty = append(dirty, s.pending[l]...)
		}
		rp := &rulePlan{}
		switch {
		case full:
			rp.mode = deltaFull
		case len(dirty) == 0:
			rp.mode = deltaSkip
		case r.Kind == rules.Spacing || r.Kind == rules.Width ||
			r.Kind == rules.Area || r.Kind == rules.Rectilinear:
			rp.mode = deltaRestrict
			reach := r.Reach()
			rp.claim = make([]geom.Rect, len(dirty))
			rp.work = make([]geom.Rect, len(dirty))
			for i, d := range dirty {
				rp.claim[i] = d.Expand(reach)
				rp.work[i] = rp.claim[i].Expand(reach)
			}
		default:
			rp.mode = deltaFull
		}
		plan.rules[r.ID] = rp
		switch rp.mode {
		case deltaSkip:
			info.RulesSkipped++
		case deltaRestrict:
			info.RulesRestricted++
		default:
			info.RulesFull++
		}
	}
	return plan, info
}

// DeltaCheck runs deck incrementally against the session's layout: rules
// untouched by the dirty regions recorded since the last check are skipped
// (their baseline violations retained), restrictable rules re-check only the
// dirty neighborhood, and the merged report is byte-identical (canonical
// JSON) to a cold full check of the edited layout. When incremental
// execution is unsafe — no baseline, a changed deck, active fault injection
// or budgets — it falls back to a full check; DeltaInfo says which happened.
func (s *Session) DeltaCheck(ctx context.Context, deck rules.Deck) (*Report, DeltaInfo, error) {
	if err := s.lock(ctx); err != nil {
		return nil, DeltaInfo{}, err
	}
	defer s.unlock()
	if s.closed {
		return nil, DeltaInfo{}, ErrSessionClosed
	}
	// Presence spans the whole check, like Session.Check.
	defer pool.EnterCtx(ctx)()
	e := New(s.opts)
	if err := e.AddRules(deck...); err != nil {
		return nil, DeltaInfo{}, err
	}
	deck = e.Deck() // IDs assigned
	s.stats.DeltaChecks++
	if reason := s.deltaFallbackReason(deck); reason != "" {
		s.stats.DeltaFallbacks++
		rep, err := s.runFull(ctx, e, deck)
		return rep, DeltaInfo{Planned: false, Reason: reason}, err
	}
	plan, info := s.planDelta(deck)
	s.applyPending(deck)
	e.delta = plan
	rep, err := e.checkWith(ctx, s.lo, s)
	if err != nil {
		return nil, DeltaInfo{}, err
	}
	s.stats.DeltaPlanned++
	s.stats.DeviceDeltaUploads += rep.Stats.DeviceDeltaUploads
	s.updateBaseline(deck, rep)
	return rep, info, nil
}

// runFull executes a full check updating session dirty/baseline state.
// Session lock held.
func (s *Session) runFull(ctx context.Context, e *Engine, deck rules.Deck) (*Report, error) {
	s.applyPending(deck)
	rep, err := e.checkWith(ctx, s.lo, s)
	if err != nil {
		return nil, err
	}
	s.updateBaseline(deck, rep)
	return rep, nil
}

// StatsSnapshot returns the session's resident-state footprint and check
// traffic. It queues behind a running check on the session lock; pass a
// deadline-carrying ctx to bound the wait.
func (s *Session) StatsSnapshot(ctx context.Context) (SessionStats, error) {
	if err := s.lock(ctx); err != nil {
		return SessionStats{}, err
	}
	defer s.unlock()
	if s.closed {
		return SessionStats{}, ErrSessionClosed
	}
	out := s.stats
	if s.geo.cache != nil {
		out.Geocache = s.geo.cache.Stats()
	}
	s.smu.Lock()
	pc := s.pc
	s.smu.Unlock()
	if pc != nil {
		for _, b := range pc.resident {
			out.ResidentLayers++
			out.ResidentBytes += b.bytes
		}
	}
	return out, nil
}

// localIntraMBR is the union of the cell's own polygons' boxes on the layer —
// the extent an intra-polygon definition check can mark.
func localIntraMBR(c *layout.Cell, l layout.Layer) geom.Rect {
	box := geom.EmptyRect()
	for _, pi := range c.LocalPolyIndex(l) {
		box = box.Union(c.Polys[pi].Shape.MBR())
	}
	return box
}
