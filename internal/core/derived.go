package core

import (
	"context"

	"opendrc/internal/boolop"
	"opendrc/internal/checks"
	"opendrc/internal/geom"
	"opendrc/internal/layout"
	"opendrc/internal/rules"
)

// Derived-layer rules (Coverage and MinOverlap) evaluate boolean mask
// operations between a shape and the union of another layer's geometry
// around it. Like enclosure, both are monotone in the outer layer — adding
// metal can only help — so the hierarchical strategy is the same: resolve
// each cell definition's shapes against the cell's own subtree once, reuse
// the pass across instances, and re-evaluate only the residue against the
// global geometry per instance. Both engine modes execute these rules on
// the host: they are roadmap features of the paper ("supports for general
// geometric shapes"), not part of its GPU kernels.

// derivedOK evaluates one shape against candidate outer polygons.
func derivedOK(shape geom.Polygon, cands []geom.Polygon, r rules.Rule) bool {
	switch r.Kind {
	case rules.Coverage:
		return boolop.NotCut([]geom.Polygon{shape}, cands).Empty()
	case rules.MinOverlap:
		return boolop.OverlapArea([]geom.Polygon{shape}, cands) >= r.Min
	}
	return false
}

// derivedEmit reports the violation markers of a failing shape.
func derivedEmit(shape geom.Polygon, cands []geom.Polygon, r rules.Rule, emit func(checks.Marker)) {
	switch r.Kind {
	case rules.Coverage:
		// One marker per uncovered residue rectangle.
		for _, rect := range boolop.NotCut([]geom.Polygon{shape}, cands).Rects() {
			emit(checks.Marker{Box: rect, Dist: rect.Area()})
		}
	case rules.MinOverlap:
		emit(checks.Marker{
			Box:  shape.MBR(),
			Dist: boolop.OverlapArea([]geom.Polygon{shape}, cands),
		})
	}
}

// runDerivedSeq executes a Coverage or MinOverlap rule with the local-pass /
// global-residue scheme.
func (e *Engine) runDerivedSeq(ctx context.Context, lo *layout.Layout, r rules.Rule, placements [][]geom.Transform, rep *Report) error {
	type residue struct {
		cell    *layout.Cell
		polyIdx int
	}
	var deferred []residue

	stop := rep.Profile.Phase("derived:cell-checks")
	for _, c := range lo.LayerCells(r.Layer) {
		if err := ctx.Err(); err != nil {
			stop()
			return err
		}
		if len(placements[c.ID]) == 0 {
			continue
		}
		local := c.LocalPolys(r.Layer)
		if len(local) == 0 {
			continue
		}
		rep.Stats.DefsChecked++
		for _, pi := range local {
			shape := c.Polys[pi].Shape
			if !e.opts.DisablePruning {
				found := lo.QuerySubtree(c, r.Outer, shape.MBR())
				rep.Stats.SubtreeQueries++
				cands := make([]geom.Polygon, len(found))
				for i := range found {
					cands[i] = found[i].Shape
				}
				rep.Stats.PairsChecked += len(cands)
				if derivedOK(shape, cands, r) {
					rep.Stats.InstancesEmitted += len(placements[c.ID])
					rep.Stats.ChecksReused += len(placements[c.ID]) - 1
					continue
				}
			}
			deferred = append(deferred, residue{cell: c, polyIdx: pi})
		}
	}
	stop()

	defer rep.Profile.Phase("derived:global-residue")()
	for _, d := range deferred {
		if err := ctx.Err(); err != nil {
			return err
		}
		shape := d.cell.Polys[d.polyIdx].Shape
		for _, t := range placements[d.cell.ID] {
			gshape := shape.Transform(t)
			found, _ := lo.QueryLayer(r.Outer, gshape.MBR())
			cands := make([]geom.Polygon, len(found))
			for i := range found {
				cands[i] = found[i].Shape
			}
			rep.Stats.PairsChecked += len(cands)
			rep.Stats.InstancesEmitted++
			if derivedOK(gshape, cands, r) {
				continue
			}
			derivedEmit(gshape, cands, r, func(m checks.Marker) {
				rep.Violations = append(rep.Violations, rules.Violation{
					Rule: r.ID, Kind: r.Kind, Layer: r.Layer, Marker: m, Cell: d.cell.Name,
				})
			})
		}
	}
	return nil
}
