package core

import (
	"reflect"
	"strconv"
	"testing"

	"opendrc/internal/budget"
	"opendrc/internal/faults"
	"opendrc/internal/geom"
	"opendrc/internal/kernels"
	"opendrc/internal/layout"
	"opendrc/internal/rules"
	"opendrc/internal/synth"
)

// The geometry-cache suite: the cross-rule cache, device residency, and the
// prefetch pipeline change cost, never results. Reports must be
// bit-identical across cache configurations and worker counts, and a fault
// on a cached computation must degrade exactly the rules sharing that
// layer.

// reuseTestDeck is a multi-rule spacing deck exercising cross-rule reuse:
// two layers, each with a base rule and a projection-conditioned variant.
func reuseTestDeck() rules.Deck {
	return rules.Deck{
		rules.Layer(layout.LayerM1).Spacing().AtLeast(synth.MinSpaceM1).Named("GC.M1.base"),
		rules.Layer(layout.LayerM1).Spacing().AtLeast(synth.MinSpaceM1).
			WhenProjectionAtLeast(2*synth.MinSpaceM1, synth.MinSpaceM1+synth.MinSpaceM1/2).Named("GC.M1.prl"),
		rules.Layer(layout.LayerM2).Spacing().AtLeast(synth.MinSpaceM2).Named("GC.M2.base"),
		rules.Layer(layout.LayerM2).Spacing().AtLeast(synth.MinSpaceM2).
			WhenProjectionAtLeast(2*synth.MinSpaceM2, synth.MinSpaceM2+synth.MinSpaceM2/2).Named("GC.M2.prl"),
	}
}

func checkWith(t *testing.T, lo *layout.Layout, deck rules.Deck, opts Options) *Report {
	t.Helper()
	e := New(opts)
	if err := e.AddRules(deck...); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Check(lo)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestGeoCacheIdentityMatrix checks every synth design in both modes:
// violations are bit-identical with the cache on and off, and — per cache
// configuration — the full report (violations and scheduling counters) is
// identical across worker counts.
func TestGeoCacheIdentityMatrix(t *testing.T) {
	for _, profile := range synth.Designs() {
		design := profile.Name
		lo, _, err := synth.Load(design, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []Mode{Sequential, Parallel} {
			var base *Report
			for _, noCache := range []bool{false, true} {
				for _, workers := range []int{1, 4} {
					rep := checkWith(t, lo, reuseTestDeck(), Options{
						Mode: mode, Workers: workers, DisableGeoCache: noCache,
					})
					if base == nil {
						base = rep
						if len(rep.Violations) == 0 {
							t.Errorf("%s %v: deck found no violations; matrix is vacuous", design, mode)
						}
						continue
					}
					if !reflect.DeepEqual(base.Violations, rep.Violations) {
						t.Errorf("%s %v cache=%v workers=%d: violations differ from baseline",
							design, mode, !noCache, workers)
					}
				}
				// Per cache configuration, the counters are also schedule-
				// independent: rerun with both worker counts and compare whole
				// stats.
				r1 := checkWith(t, lo, reuseTestDeck(), Options{Mode: mode, Workers: 1, DisableGeoCache: noCache})
				rN := checkWith(t, lo, reuseTestDeck(), Options{Mode: mode, Workers: 4, DisableGeoCache: noCache})
				if r1.Stats != rN.Stats {
					t.Errorf("%s %v cache=%v: stats differ across worker counts:\n  w1=%+v\n  wN=%+v",
						design, mode, !noCache, r1.Stats, rN.Stats)
				}
			}
		}
	}
}

// TestGeoCacheCounters checks the deterministic counter contract on a known
// deck: misses equal distinct layers, uploads happen once per layer, and
// later rules reuse the resident buffer.
func TestGeoCacheCounters(t *testing.T) {
	lo, _, err := synth.Load("uart", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	rep := checkWith(t, lo, reuseTestDeck(), Options{Mode: Parallel})
	s := rep.Stats
	if s.FlattenCacheMisses != 2 {
		t.Errorf("FlattenCacheMisses = %d, want 2 (two distinct layers)", s.FlattenCacheMisses)
	}
	if s.PackCacheMisses != 2 {
		t.Errorf("PackCacheMisses = %d, want 2", s.PackCacheMisses)
	}
	if s.FlattenCacheHits == 0 || s.PackCacheHits == 0 {
		t.Errorf("no cache hits on a 4-rule 2-layer deck: %+v", s)
	}
	if s.DeviceUploads != 2 {
		t.Errorf("DeviceUploads = %d, want 2", s.DeviceUploads)
	}
	if s.DeviceReuses != 2 {
		t.Errorf("DeviceReuses = %d, want 2 (second rule per layer)", s.DeviceReuses)
	}
	if s.DeviceEvictions != 0 {
		t.Errorf("DeviceEvictions = %d on an unlimited pool", s.DeviceEvictions)
	}

	off := checkWith(t, lo, reuseTestDeck(), Options{Mode: Parallel, DisableGeoCache: true})
	if off.Stats.FlattenCacheMisses != 0 || off.Stats.DeviceUploads != 0 {
		t.Errorf("cache-off run reported cache counters: %+v", off.Stats)
	}
	if !reflect.DeepEqual(off.Violations, rep.Violations) {
		t.Error("cache on/off violations differ")
	}
}

// TestChaosFlattenFaultScopedToLayer injects an error into the cached
// flatten of M1 and demands that exactly the rules sharing M1 degrade — the
// cached error must not leak into M2's rules, and the degradation must be
// identical across worker counts and cache configurations (the uncached
// path hits the same seam per rule).
func TestChaosFlattenFaultScopedToLayer(t *testing.T) {
	lo, _, err := synth.Load("uart", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	key := "layer#" + strconv.Itoa(int(layout.LayerM1))
	for _, noCache := range []bool{false, true} {
		var fp string
		for _, workers := range []int{1, 4} {
			inj := faults.New(1, faults.Injection{Site: faults.SiteFlatten, Key: key, Mode: faults.Error})
			rep := checkWith(t, lo, reuseTestDeck(), Options{
				Mode: Parallel, Workers: workers, Faults: inj, DisableGeoCache: noCache,
			})
			if !rep.Degraded {
				t.Fatalf("cache=%v: injected flatten fault degraded nothing", !noCache)
			}
			failed := map[string]bool{}
			for _, f := range rep.Failures {
				failed[f.Rule] = true
			}
			if !failed["GC.M1.base"] || !failed["GC.M1.prl"] || len(failed) != 2 {
				t.Errorf("cache=%v workers=%d: failed rules %v, want exactly the two M1 rules",
					!noCache, workers, failed)
			}
			for _, v := range rep.Violations {
				if v.Layer == layout.LayerM1 {
					t.Errorf("cache=%v: failed M1 rules still produced violations", !noCache)
					break
				}
			}
			m2 := 0
			for _, v := range rep.Violations {
				if v.Layer == layout.LayerM2 {
					m2++
				}
			}
			if m2 == 0 {
				t.Errorf("cache=%v: M2 rules found nothing; fault leaked across layers", !noCache)
			}
			if fp == "" {
				fp = failureFingerprint(rep.Failures)
			} else if got := failureFingerprint(rep.Failures); got != fp {
				t.Errorf("cache=%v workers=%d: failure fingerprint differs:\n%s\nvs\n%s", !noCache, workers, got, fp)
			}
		}
	}
}

// TestLRUEvictionReuploadIdentical sizes the device pool so only one
// layer's buffer fits at a time: an alternating-layer deck then forces
// evictions and re-uploads, and the report must still match the unlimited
// run exactly.
func TestLRUEvictionReuploadIdentical(t *testing.T) {
	lo, _, err := synth.Load("uart", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// Alternate layers so each rule needs the buffer the previous rule's
	// neighbor may have evicted.
	deck := rules.Deck{
		rules.Layer(layout.LayerM1).Spacing().AtLeast(synth.MinSpaceM1).Named("EV.M1.a"),
		rules.Layer(layout.LayerM2).Spacing().AtLeast(synth.MinSpaceM2).Named("EV.M2.a"),
		rules.Layer(layout.LayerM1).Spacing().AtLeast(synth.MinSpaceM1).
			WhenProjectionAtLeast(2*synth.MinSpaceM1, synth.MinSpaceM1+1).Named("EV.M1.b"),
		rules.Layer(layout.LayerM2).Spacing().AtLeast(synth.MinSpaceM2).
			WhenProjectionAtLeast(2*synth.MinSpaceM2, synth.MinSpaceM2+1).Named("EV.M2.b"),
	}
	b1 := kernels.Pack(shapesOf(lo, layout.LayerM1)).Bytes()
	b2 := kernels.Pack(shapesOf(lo, layout.LayerM2)).Bytes()
	limit := b1 + b2 - 1 // either buffer alone fits; both together never do

	free := checkWith(t, lo, deck, Options{Mode: Parallel})
	if free.Stats.DeviceEvictions != 0 {
		t.Fatalf("unlimited run evicted %d buffers", free.Stats.DeviceEvictions)
	}
	tight := checkWith(t, lo, deck, Options{Mode: Parallel,
		Budgets: budget.Limits{MaxDeviceBytes: limit}})
	if tight.Degraded {
		t.Fatalf("pool pressure degraded rules instead of evicting: %+v", tight.Failures)
	}
	if tight.Stats.DeviceEvictions == 0 {
		t.Fatal("alternating deck under a one-buffer pool evicted nothing")
	}
	if tight.Stats.DeviceUploads != tight.Stats.DeviceEvictions+1 {
		t.Errorf("uploads = %d, evictions = %d; every eviction but the last should force a re-upload",
			tight.Stats.DeviceUploads, tight.Stats.DeviceEvictions)
	}
	if !reflect.DeepEqual(free.Violations, tight.Violations) {
		t.Error("eviction/re-upload changed the violations")
	}
}

func shapesOf(lo *layout.Layout, l layout.Layer) []geom.Polygon {
	flat := lo.FlattenLayer(l)
	out := make([]geom.Polygon, len(flat))
	for i := range flat {
		out[i] = flat[i].Shape
	}
	return out
}
