package core

import (
	"testing"

	"opendrc/internal/checks"
	"opendrc/internal/geom"
	"opendrc/internal/rules"
)

// TestShardTableMergeOrder pins the determinism argument: shards merge in
// index order regardless of which "worker" filled them first.
func TestShardTableMergeOrder(t *testing.T) {
	var pool shardPool
	tbl := pool.get(3)
	// Fill out of order, as a racing fan-out would.
	tbl.s[2].vs = append(tbl.s[2].vs, rules.Violation{Rule: "c"})
	tbl.s[0].vs = append(tbl.s[0].vs, rules.Violation{Rule: "a"})
	tbl.s[1].vs = append(tbl.s[1].vs, rules.Violation{Rule: "b"})
	tbl.s[1].stats.PairsChecked = 7

	var rep Report
	tbl.mergeViolations(&rep)
	if len(rep.Violations) != 3 {
		t.Fatalf("merged %d violations, want 3", len(rep.Violations))
	}
	for i, want := range []string{"a", "b", "c"} {
		if rep.Violations[i].Rule != want {
			t.Errorf("violation %d = %q, want %q", i, rep.Violations[i].Rule, want)
		}
	}
	if rep.Stats.PairsChecked != 7 {
		t.Errorf("stats not merged: PairsChecked = %d", rep.Stats.PairsChecked)
	}
}

// TestShardTableReuse verifies recycled tables come back empty but keep
// their grown buffers, and that growing a table preserves the buffers of
// the shards it already had.
func TestShardTableReuse(t *testing.T) {
	var pool shardPool
	tbl := pool.get(2)
	for i := 0; i < 40; i++ {
		tbl.s[0].vs = append(tbl.s[0].vs, rules.Violation{})
		tbl.s[1].markers = append(tbl.s[1].markers, checks.Marker{})
	}
	tbl.discard()

	tbl = pool.get(4) // grow past the previous size
	for i := range tbl.s {
		if len(tbl.s[i].vs) != 0 || len(tbl.s[i].markers) != 0 {
			t.Fatalf("shard %d not reset: %d violations, %d markers",
				i, len(tbl.s[i].vs), len(tbl.s[i].markers))
		}
	}
	tbl.discard()
}

// TestShardTableAllocsSteadyState is the regression gate for allocation-free
// violation collection: once warm, a fan-out-sized get/append/merge cycle
// performs no shard-side allocations (the only growth is the report's own
// violation slice, preallocated here).
func TestShardTableAllocsSteadyState(t *testing.T) {
	const n = 16
	var pool shardPool
	warm := pool.get(n)
	for i := range warm.s {
		for k := 0; k < 8; k++ {
			warm.s[i].vs = append(warm.s[i].vs, rules.Violation{})
			warm.s[i].markers = append(warm.s[i].markers, checks.Marker{})
		}
	}
	warm.discard()

	rep := &Report{Violations: make([]rules.Violation, 0, 4*n*8)}
	m := checks.Marker{Box: geom.Rect{XLo: 1, YLo: 2, XHi: 3, YHi: 4}}
	allocs := testing.AllocsPerRun(50, func() {
		rep.Violations = rep.Violations[:0]
		rep.Stats = Stats{}
		tbl := pool.get(n)
		for i := range tbl.s {
			for k := 0; k < 8; k++ {
				tbl.s[i].vs = append(tbl.s[i].vs, rules.Violation{Marker: m})
				tbl.s[i].stats.PairsChecked++
			}
		}
		tbl.mergeViolations(rep)
	})
	if allocs > 0 {
		t.Errorf("steady-state shard cycle allocs = %v, want 0", allocs)
	}
}
