package core

import (
	"sync"

	"opendrc/internal/checks"
	"opendrc/internal/rules"
)

// Violation collection for the fan-out paths. Workers never share an output
// slice: each index of a fan-out owns one shard and appends to it without
// synchronization, and the shards merge into the report in index order — the
// same order a single worker would have produced, so the report is
// bit-identical for every worker count. The shard tables themselves recycle
// through the engine's freelist: rules run in sequence, so the steady state
// is one warm table per concurrently-live fan-out and zero per-rule slot
// allocations.

// shard is one index-owned output slot of a fan-out: violations (intra
// rules), markers (spacing rows, still in the cell's local frame), and a
// stats delta.
type shard struct {
	vs      []rules.Violation
	markers []checks.Marker
	stats   Stats
}

// shardTable is a recycled slice of shards, tied to the freelist it came
// from.
type shardTable struct {
	pool *shardPool
	s    []shard
}

// shardPool is a deterministic mutex-guarded freelist of shard tables, one
// per engine. It is intentionally not a sync.Pool: pool contents would then
// depend on process history (GC victim caches, race-mode put drops), and a
// run's allocation sequence must stay a pure function of its inputs so
// repeated identical runs interleave — and trace — identically.
type shardPool struct {
	mu   sync.Mutex
	free []*shardTable //odrc:guardedby mu
}

// get returns a table of n empty shards. Backing arrays — the table and each
// shard's violation and marker buffers — are recycled, so warm tables hand
// out capacity without allocating.
func (p *shardPool) get(n int) *shardTable {
	p.mu.Lock()
	var t *shardTable
	if l := len(p.free); l > 0 {
		t = p.free[l-1]
		p.free[l-1] = nil
		p.free = p.free[:l-1]
	}
	p.mu.Unlock()
	if t == nil {
		t = &shardTable{pool: p}
	}
	if cap(t.s) < n {
		grown := make([]shard, n)
		copy(grown, t.s[:cap(t.s)])
		t.s = grown
	}
	t.s = t.s[:n]
	for i := range t.s {
		t.s[i].vs = t.s[i].vs[:0]
		t.s[i].markers = t.s[i].markers[:0]
		t.s[i].stats = Stats{}
	}
	return t
}

// put returns a table to the freelist.
func (p *shardPool) put(t *shardTable) {
	p.mu.Lock()
	p.free = append(p.free, t)
	p.mu.Unlock()
}

// discard recycles the table without merging — the fan-out failed and a
// failed rule contributes nothing, keeping degraded reports independent of
// which worker got how far.
func (t *shardTable) discard() { t.pool.put(t) }

// mergeViolations appends every shard's violations and stats to the report
// in shard-index order, then recycles the table. Appending copies the
// violation values, so recycling the shard buffers cannot alias the report.
func (t *shardTable) mergeViolations(rep *Report) {
	for i := range t.s {
		rep.Violations = append(rep.Violations, t.s[i].vs...)
		rep.Stats.add(t.s[i].stats)
	}
	t.pool.put(t)
}

// mergeMarkers appends every shard's markers to dst in shard-index order,
// accumulates the stats into the report, recycles the table, and returns the
// grown dst.
func (t *shardTable) mergeMarkers(dst []checks.Marker, rep *Report) []checks.Marker {
	for i := range t.s {
		dst = append(dst, t.s[i].markers...)
		rep.Stats.add(t.s[i].stats)
	}
	t.pool.put(t)
	return dst
}
