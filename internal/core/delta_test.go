package core

import (
	"bytes"
	"context"
	"testing"
	"time"

	"opendrc/internal/budget"
	"opendrc/internal/faults"
	"opendrc/internal/gdsii"
	"opendrc/internal/geom"
	"opendrc/internal/layout"
	"opendrc/internal/rules"
	"opendrc/internal/synth"
)

// Delta-check semantics: after in-place edits, DeltaCheck must produce the
// canonical bytes of a cold full check of the edited layout — in both modes,
// at any worker count, whether the plan ran incrementally or fell back.

// deltaTestEdits is a deterministic M1 edit batch: a sub-min-width sliver
// (fresh width violations), a close pair (fresh spacing violation), and a
// delete window, all placed relative to the layer MBR so the same values
// apply to any copy of the layout.
func deltaTestEdits(lo *layout.Layout) []layout.Edit {
	m := lo.Top.LayerMBR(layout.LayerM1)
	mx, my := (m.XLo+m.XHi)/2, (m.YLo+m.YHi)/2
	return []layout.Edit{
		{Op: layout.OpInsertRect, Layer: layout.LayerM1,
			Rect: geom.Rect{XLo: mx, YLo: my, XHi: mx + synth.MinWidthM1/2, YHi: my + 120}},
		{Op: layout.OpInsertRect, Layer: layout.LayerM1,
			Rect: geom.Rect{XLo: mx + 60, YLo: my, XHi: mx + 120, YHi: my + 120}},
		{Op: layout.OpInsertRect, Layer: layout.LayerM1,
			Rect: geom.Rect{XLo: mx + 120 + synth.MinSpaceM1/2, YLo: my, XHi: mx + 200, YHi: my + 120}},
		{Op: layout.OpDeleteRegion, Layer: layout.LayerM1,
			Rect: geom.Rect{XLo: m.XLo, YLo: m.YLo, XHi: m.XLo + 100, YHi: m.YLo + 100}},
	}
}

// coldReport builds the ground truth: a fresh layout with the same edits
// applied, checked by a batch engine.
func coldReport(t *testing.T, opts Options, deck rules.Deck, edits []layout.Edit) *Report {
	t.Helper()
	lo, _, err := synth.Load("uart", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if edits != nil {
		if _, err := lo.ApplyEdits(edits); err != nil {
			t.Fatal(err)
		}
	}
	e := New(opts)
	if err := e.AddRules(deck...); err != nil {
		t.Fatal(err)
	}
	rep, err := e.CheckContext(context.Background(), lo)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestDeltaCheckMatchesCold(t *testing.T) {
	deck := synth.Deck()
	ctx := context.Background()
	for _, mode := range []Mode{Sequential, Parallel} {
		for _, workers := range []int{1, 3} {
			opts := Options{Mode: mode, Workers: workers}
			lo, _, err := synth.Load("uart", 0.2)
			if err != nil {
				t.Fatal(err)
			}
			ses := NewSession(lo, opts)
			if _, err := ses.Check(ctx, deck); err != nil {
				t.Fatalf("%v/w%d: baseline: %v", mode, workers, err)
			}
			edits := deltaTestEdits(lo)
			if _, err := ses.Edit(ctx, edits); err != nil {
				t.Fatalf("%v/w%d: edit: %v", mode, workers, err)
			}
			rep, info, err := ses.DeltaCheck(ctx, deck)
			if err != nil {
				t.Fatalf("%v/w%d: delta check: %v", mode, workers, err)
			}
			if !info.Planned {
				t.Fatalf("%v/w%d: delta fell back: %+v", mode, workers, info)
			}
			// M1 edits touch the four restrictable M1 rules and the V1-in-M1
			// enclosure; every other rule skips.
			if info.RulesRestricted != 4 || info.RulesFull != 1 || info.RulesSkipped != len(deck)-5 {
				t.Fatalf("%v/w%d: plan = %+v", mode, workers, info)
			}
			// Only the edited layer's flatten recomputes (the sequential mode
			// checks hierarchically and never flattens at all).
			if mode == Parallel && rep.Stats.FlattenCacheMisses != 1 {
				t.Fatalf("%v/w%d: %d flatten misses, want 1", mode, workers, rep.Stats.FlattenCacheMisses)
			}
			want := coldReport(t, opts, deck, edits)
			if canonJSON(t, rep) != canonJSON(t, want) {
				t.Fatalf("%v/w%d: delta report differs from cold check", mode, workers)
			}
			if mode == Parallel && rep.Stats.DeviceReuses == 0 {
				t.Fatalf("%v/w%d: delta check reused no resident buffers: %+v", mode, workers, rep.Stats)
			}

			// A delta check with nothing dirty skips every rule, touches no
			// geometry, and reproduces its own baseline.
			again, info2, err := ses.DeltaCheck(ctx, deck)
			if err != nil {
				t.Fatalf("%v/w%d: empty delta: %v", mode, workers, err)
			}
			if !info2.Planned || info2.RulesSkipped != len(deck) {
				t.Fatalf("%v/w%d: empty delta plan = %+v", mode, workers, info2)
			}
			if again.Stats.FlattenCacheMisses != 0 || again.Stats.PackCacheMisses != 0 {
				t.Fatalf("%v/w%d: empty delta recomputed geometry: %+v", mode, workers, again.Stats)
			}
			if canonJSON(t, again) != canonJSON(t, rep) {
				t.Fatalf("%v/w%d: empty delta differs from its baseline", mode, workers)
			}
			st, err := ses.StatsSnapshot(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if st.FullChecks != 1 || st.DeltaChecks != 2 || st.DeltaPlanned != 2 || st.DeltaFallbacks != 0 {
				t.Fatalf("%v/w%d: session stats = %+v", mode, workers, st)
			}
			if err := ses.Close(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// bandedCoreLayout mirrors the geocache banded fixture: n M1 rectangles
// stacked 1000 apart, so a tiny-reach deck keeps each in its own partition
// row and region invalidation provably segments.
func bandedCoreLayout(t *testing.T, n int) *layout.Layout {
	t.Helper()
	top := &gdsii.Structure{Name: "TOP"}
	for k := 0; k < n; k++ {
		y := int64(k) * 1000
		top.Boundaries = append(top.Boundaries, gdsii.Boundary{
			Layer: int16(layout.LayerM1), XY: []geom.Point{
				geom.Pt(0, y), geom.Pt(0, y+100), geom.Pt(400, y+100), geom.Pt(400, y),
			},
		})
	}
	lib := &gdsii.Library{Name: "bands", UserUnit: 1e-3, MeterUnit: 1e-9,
		Structures: []*gdsii.Structure{top}}
	lo, err := layout.FromLibrary(lib)
	if err != nil {
		t.Fatal(err)
	}
	return lo
}

// TestDeltaPartialDeviceRefresh pins the device path end to end on a layout
// where segmentation is guaranteed: one band edited → one row requeried, the
// resident edge buffer freed only partially, and exactly one delta upload of
// the grown slice.
func TestDeltaPartialDeviceRefresh(t *testing.T) {
	lo := bandedCoreLayout(t, 8)
	deck := rules.Deck{rules.Layer(layout.LayerM1).Spacing().AtLeast(12).Named("S.1")}
	ctx := context.Background()
	ses := NewSession(lo, Options{Mode: Parallel})
	defer ses.Close(ctx)
	if _, err := ses.Check(ctx, deck); err != nil {
		t.Fatal(err)
	}
	// Two rects 8 apart inside band 4: a fresh spacing violation.
	edits := []layout.Edit{
		{Op: layout.OpInsertRect, Layer: layout.LayerM1, Rect: geom.R(500, 4000, 560, 4100)},
		{Op: layout.OpInsertRect, Layer: layout.LayerM1, Rect: geom.R(568, 4000, 620, 4100)},
	}
	if _, err := ses.Edit(ctx, edits); err != nil {
		t.Fatal(err)
	}
	rep, info, err := ses.DeltaCheck(ctx, deck)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Planned || info.RulesRestricted != 1 {
		t.Fatalf("plan = %+v", info)
	}
	if rep.Stats.DeviceDeltaUploads != 1 {
		t.Fatalf("%d delta uploads, want 1: %+v", rep.Stats.DeviceDeltaUploads, rep.Stats)
	}
	if rep.Stats.DeviceUploads != 0 {
		t.Fatalf("delta check re-uploaded %d full buffers", rep.Stats.DeviceUploads)
	}

	// Ground truth: fresh layout, same edits, batch engine.
	want := func() *Report {
		flo := bandedCoreLayout(t, 8)
		if _, err := flo.ApplyEdits(edits); err != nil {
			t.Fatal(err)
		}
		e := New(Options{Mode: Parallel})
		if err := e.AddRules(deck...); err != nil {
			t.Fatal(err)
		}
		rep, err := e.CheckContext(ctx, flo)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}()
	if canonJSON(t, rep) != canonJSON(t, want) {
		t.Fatal("partial-refresh delta report differs from cold check")
	}
	if len(rep.Violations) == 0 {
		t.Fatal("edit created no violations; the claim path went untested")
	}
}

// TestDeltaCheckFallbacks drives every deltaFallbackReason branch and demands
// each fallback still produce the cold canonical bytes.
func TestDeltaCheckFallbacks(t *testing.T) {
	deck := synth.Deck()
	ctx := context.Background()

	t.Run("no baseline", func(t *testing.T) {
		lo, _, err := synth.Load("uart", 0.2)
		if err != nil {
			t.Fatal(err)
		}
		ses := NewSession(lo, Options{Mode: Sequential})
		defer ses.Close(ctx)
		rep, info, err := ses.DeltaCheck(ctx, deck)
		if err != nil {
			t.Fatal(err)
		}
		if info.Planned || info.Reason != "no baseline check" {
			t.Fatalf("info = %+v", info)
		}
		if canonJSON(t, rep) != canonJSON(t, coldReport(t, Options{Mode: Sequential}, deck, nil)) {
			t.Fatal("fallback report differs from cold check")
		}
	})

	t.Run("fault injection", func(t *testing.T) {
		// An injector with no programmed injections never fires, so the
		// fallback's report still matches a clean cold check — while the mere
		// presence of the injector must force the full-check path.
		lo, _, err := synth.Load("uart", 0.2)
		if err != nil {
			t.Fatal(err)
		}
		ses := NewSession(lo, Options{Mode: Parallel, Faults: faults.New(1)})
		defer ses.Close(ctx)
		if _, err := ses.Check(ctx, deck); err != nil {
			t.Fatal(err)
		}
		edits := deltaTestEdits(lo)
		if _, err := ses.Edit(ctx, edits); err != nil {
			t.Fatal(err)
		}
		rep, info, err := ses.DeltaCheck(ctx, deck)
		if err != nil {
			t.Fatal(err)
		}
		if info.Planned || info.Reason != "fault injection active" {
			t.Fatalf("info = %+v", info)
		}
		if canonJSON(t, rep) != canonJSON(t, coldReport(t, Options{Mode: Parallel}, deck, edits)) {
			t.Fatal("fault-mode fallback differs from cold check")
		}
		st, err := ses.StatsSnapshot(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.DeltaFallbacks != 1 || st.DeltaPlanned != 0 {
			t.Fatalf("stats = %+v", st)
		}
	})

	t.Run("chaos stall fallback", func(t *testing.T) {
		// A real injection: the delta fallback runs under the injector like
		// any session check, so a stalled rule still honors cancellation and
		// the session survives to serve the next request.
		lo, _, err := synth.Load("uart", 0.2)
		if err != nil {
			t.Fatal(err)
		}
		inj := faults.New(1, faults.Injection{
			Site: faults.SiteRule, Key: deck[1].ID, Mode: faults.Stall, Stall: time.Hour,
		})
		ses := NewSession(lo, Options{Mode: Sequential, Faults: inj})
		defer ses.Close(ctx)
		cctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
		rep, info, err := ses.DeltaCheck(cctx, deck)
		cancel()
		if rep != nil || err == nil {
			t.Fatalf("stalled delta check = (%v, %+v, %v)", rep, info, err)
		}
		rest := append(append(rules.Deck{}, deck[0]), deck[2:]...)
		after, info, err := ses.DeltaCheck(ctx, rest)
		if err != nil {
			t.Fatal(err)
		}
		if info.Planned {
			t.Fatalf("info = %+v, want fallback", info)
		}
		e := New(Options{Mode: Sequential, Faults: inj})
		if err := e.AddRules(rest...); err != nil {
			t.Fatal(err)
		}
		batch, err := e.CheckContext(ctx, lo)
		if err != nil {
			t.Fatal(err)
		}
		if canonJSON(t, after) != canonJSON(t, batch) {
			t.Fatal("session poisoned by cancelled delta check")
		}
	})

	t.Run("budgets", func(t *testing.T) {
		lo, _, err := synth.Load("uart", 0.2)
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{Mode: Sequential, Budgets: budget.Limits{MaxFlattenPolys: 1 << 40}}
		ses := NewSession(lo, opts)
		defer ses.Close(ctx)
		if _, err := ses.Check(ctx, deck); err != nil {
			t.Fatal(err)
		}
		_, info, err := ses.DeltaCheck(ctx, deck)
		if err != nil {
			t.Fatal(err)
		}
		if info.Planned || info.Reason != "resource budgets active" {
			t.Fatalf("info = %+v", info)
		}
	})

	t.Run("deck changed", func(t *testing.T) {
		lo, _, err := synth.Load("uart", 0.2)
		if err != nil {
			t.Fatal(err)
		}
		ses := NewSession(lo, Options{Mode: Sequential})
		defer ses.Close(ctx)
		if _, err := ses.Check(ctx, deck); err != nil {
			t.Fatal(err)
		}
		_, info, err := ses.DeltaCheck(ctx, deck[1:])
		if err != nil {
			t.Fatal(err)
		}
		if info.Planned || info.Reason != "deck changed since baseline" {
			t.Fatalf("info = %+v", info)
		}
	})
}

// TestInvalidateZeroRegionsLockFree pins the documented fast path: with no
// regions, Invalidate returns immediately without taking the session lock,
// even while a (simulated) check holds it.
func TestInvalidateZeroRegionsLockFree(t *testing.T) {
	lo, _, err := synth.Load("uart", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	ses := NewSession(lo, Options{})
	ses.mu <- struct{}{} // a check holds the session lock
	defer func() { <-ses.mu }()
	done := make(chan error, 1)
	go func() { done <- ses.Invalidate(context.Background()) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("zero-region Invalidate = %v, want nil", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("zero-region Invalidate blocked on the session lock")
	}
}

// TestInvalidateWholeLayerRegion pins the degenerate region: no rects means
// the whole layer is dirty, so its rules re-run in full while the rest skip —
// and the unedited layout reproduces the baseline bytes.
func TestInvalidateWholeLayerRegion(t *testing.T) {
	deck := synth.Deck()
	ctx := context.Background()
	lo, _, err := synth.Load("uart", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	ses := NewSession(lo, Options{Mode: Parallel})
	defer ses.Close(ctx)
	base, err := ses.Check(ctx, deck)
	if err != nil {
		t.Fatal(err)
	}
	if err := ses.Invalidate(ctx, LayerRegion{Layer: layout.LayerM1}); err != nil {
		t.Fatal(err)
	}
	rep, info, err := ses.DeltaCheck(ctx, deck)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Planned || info.RulesFull != 5 || info.RulesRestricted != 0 || info.RulesSkipped != len(deck)-5 {
		t.Fatalf("plan = %+v", info)
	}
	if rep.Stats.FlattenCacheMisses == 0 || rep.Stats.DeviceUploads == 0 {
		t.Fatalf("whole-layer region did not force recomputation: %+v", rep.Stats)
	}
	if canonJSON(t, rep) != canonJSON(t, base) {
		t.Fatal("whole-layer delta differs from baseline on an unedited layout")
	}
}

// TestDeltaEmptyIntersectionEdit pins the empty-intersection case from the
// issue: an edit whose dirty region touches no existing geometry still plans,
// requeries only its own band, and changes exactly the violations the new
// geometry introduces.
func TestDeltaEmptyIntersectionEdit(t *testing.T) {
	lo := bandedCoreLayout(t, 8)
	deck := rules.Deck{
		rules.Layer(layout.LayerM1).Spacing().AtLeast(12).Named("S.1"),
		rules.Layer(layout.LayerM1).Width().AtLeast(10).Named("W.1"),
	}
	ctx := context.Background()
	ses := NewSession(lo, Options{Mode: Parallel})
	defer ses.Close(ctx)
	base, err := ses.Check(ctx, deck)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(base.Violations); n != 0 {
		t.Fatalf("clean fixture has %d violations", n)
	}
	// A clean insert far from everything (gap between bands, wide enough, far
	// from neighbors): the delta plans, and the report stays empty.
	edits := []layout.Edit{{Op: layout.OpInsertRect, Layer: layout.LayerM1,
		Rect: geom.R(1000, 2400, 1100, 2500)}}
	if _, err := ses.Edit(ctx, edits); err != nil {
		t.Fatal(err)
	}
	rep, info, err := ses.DeltaCheck(ctx, deck)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Planned || info.RulesRestricted != 2 {
		t.Fatalf("plan = %+v", info)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("clean insert produced %d violations", len(rep.Violations))
	}
	var buf bytes.Buffer
	if err := rep.WriteCanonicalJSON(&buf); err != nil {
		t.Fatal(err)
	}
	want := func() *Report {
		flo := bandedCoreLayout(t, 8)
		if _, err := flo.ApplyEdits(edits); err != nil {
			t.Fatal(err)
		}
		e := New(Options{Mode: Parallel})
		if err := e.AddRules(deck...); err != nil {
			t.Fatal(err)
		}
		rep, err := e.CheckContext(ctx, flo)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}()
	if buf.String() != canonJSON(t, want) {
		t.Fatal("empty-intersection delta differs from cold check")
	}
}
