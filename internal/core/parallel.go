package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"

	"opendrc/internal/budget"
	"opendrc/internal/checks"
	"opendrc/internal/faults"
	"opendrc/internal/geom"
	"opendrc/internal/gpu"
	"opendrc/internal/kernels"
	"opendrc/internal/layout"
	"opendrc/internal/partition"
	"opendrc/internal/pool"
	"opendrc/internal/rules"
	"opendrc/internal/trace"
)

// The parallel mode (Section IV-E). Per the paper's flow (Fig. 1), the
// hierarchy task pruning of Section IV-C runs before the branch split, so
// the parallel branch also checks intra-polygon rules once per cell
// definition and prunes enclosure checks that resolve inside definitions.
// For the remaining work the layout is flattened once, the packed edge
// buffer is transferred with one asynchronous copy that overlaps the
// adaptive row partition on the host (Section V-C), and checks then run row
// by row as kernels addressing ranges of the transferred buffer: cells in
// different rows cannot produce violations against each other. Per row, the
// engine selects the brute-force executor (one thread per MBR-candidate
// polygon pair) for small rows and the two-kernel parallel sweepline for
// large ones.

// parCtx bundles the device plumbing of one parallel run. A batch run owns
// its parCtx for one check; a Session marks its parCtx persistent and hands
// it to every check it serves, so resident layer buffers (and their derived
// MBR tables) survive across checks until the session closes or evicts them.
type parCtx struct {
	dev *gpu.Device
	io  *gpu.Stream // async copies host->device
	cs  *gpu.Stream // check kernels

	geo        *geoSource
	residentOn bool           // keep layer buffers on the device across rules
	persistent bool           // session-owned: residents outlive the check
	resident   []*residentBuf // slice, not map: eviction scans must be deterministic
	useCtr     int64
}

// residentBuf is one layer's packed edge buffer kept device-resident across
// rules. ready is the event of its upload copy; lastUse orders LRU eviction.
// mbr is the buffer's derived MBR table (built lazily by the first spacing
// rule that needs pair discovery); eviction drops it with the buffer, so a
// re-uploaded layer rebuilds — and re-charges — its derivations.
type residentBuf struct {
	layer   layout.Layer
	bytes   int64
	ready   gpu.Event
	lastUse int64
	mbr     *kernels.MBRTable
	// partial marks a buffer whose stale slice was freed by a region-scoped
	// invalidation: bytes holds only the still-valid prefix, and the next
	// bindEdges grows it back with a delta upload instead of a full one.
	partial bool
}

// mbrTable returns the layer's resident derived MBR table, uploading it on
// first use: the host has already computed the MBR arrays and x-order for
// the row partition (memoized in the geometry cache, usually warmed by the
// prefetch sweep), so residency turns per-rule device derivation (poly-mbr +
// sort-mbrs launches) into one small async copy per layer. Residency off
// (cache disabled) returns nil and callers fall back to the per-rule
// discovery kernels.
func (pc *parCtx) mbrTable(ctx context.Context, lo *layout.Layout, rep *Report, l layout.Layer) (*kernels.MBRTable, error) {
	if !pc.residentOn {
		return nil, nil
	}
	for _, b := range pc.resident {
		if b.layer == l {
			if b.mbr == nil {
				t, err := pc.geo.cache.Table(ctx, lo, l)
				if err != nil {
					return nil, err
				}
				pc.io.MemcpyAsync("mbr-table", t.Bytes())
				pc.cs.WaitEvent(pc.io.RecordEvent())
				rep.Stats.BytesCopied += t.Bytes()
				b.mbr = t
			}
			return b.mbr, nil
		}
	}
	return nil, nil
}

// hostPhase measures fn as host work: it is charged to the profiler (whose
// clock the trace recorder shares) and advances the modeled host clock,
// during which the device may still be executing previously enqueued work.
// The modeled window is also kept on the report as a modeled-host span —
// the host side of the trace's overlap analysis. fn's error passes through
// after the clock is charged (the failed work still spent host time).
// hostPhase runs on the engine goroutine only.
func (p *parCtx) hostPhase(rep *Report, name string, fn func() error) error {
	stop := rep.Profile.Phase(name)
	err := fn()
	d := stop()
	m0 := p.dev.HostClock()
	p.dev.HostAdvance(d)
	m1 := p.dev.HostClock()
	if m1 > m0 {
		rep.hostSpans = append(rep.hostSpans, modeledSpan{name: name, s: m0, e: m1})
	}
	return err
}

// checkParallel runs the deck through the GPU branch. Rules execute under
// the same per-rule fault isolation as the sequential branch; device OOM
// (the device-pool-bytes budget) surfaces through AllocAsync as an error
// the guard converts into a RuleFailure.
//
// With the geometry cache enabled the schedule is pipelined: a single-worker
// prefetch pool sweeps the deck ahead of the executing rule, flattening,
// packing, and partitioning upcoming layers on the host while the device
// executes the current rule's kernels — by the time rule k starts, its
// geometry is usually a cache hit costing ~zero host time. Prefetching only
// warms the cache — it never touches streams, the report, or rule state — so
// reports stay bit-identical with and without it.
func (e *Engine) checkParallel(ctx context.Context, lo *layout.Layout, rep *Report, geo *geoSource, pc *parCtx) error {
	if err := checkMagRestriction(lo, e.deck); err != nil {
		return err
	}
	if pc == nil {
		pc = &parCtx{dev: gpu.NewDevice(e.opts.Device), geo: geo, residentOn: geo.cache != nil}
		pc.io = pc.dev.NewStream("h2d")
		pc.cs = pc.dev.NewStream("checks")
		if n := e.opts.Budgets.MaxDeviceBytes; n > 0 {
			pc.dev.SetMemLimit(n)
		}
	}
	rep.Device = pc.dev
	if e.opts.Faults != nil {
		inj := e.opts.Faults
		pc.dev.SetAllocHook(func(n int64) error {
			return inj.Hit(ctx, faults.SiteAlloc, strconv.FormatInt(n, 10))
		})
	}

	// With the cache on, a prefetch pool sweeps the rest of the deck ahead of
	// the executing rule, warming each upcoming layer's flatten, pack, and
	// (for spacing rules) row partitions while rule 0's kernels execute on
	// this goroutine. The sweep groups by layer — one looping closure per
	// distinct upcoming layer, warming that layer's pack and then its reach
	// partitions in deck order — so layers warm concurrently instead of
	// queueing behind each other's partition computations. The sweep only
	// warms the cache (never streams, the report, or rule state), so reports
	// are bit-identical with and without it, and the cache's call totals —
	// hence its hit/miss counters — are fixed by the deck, not by who wins a
	// race.
	// Delta runs touch a small neighborhood of a few layers; sweeping the
	// whole deck's geometry ahead of them would recompute exactly the work
	// the delta plan avoids, so the prefetcher only runs on full checks.
	if geo.cache != nil && e.delta == nil {
		gc := geo.cache
		alg := e.opts.PartitionAlg
		type warmGroup struct {
			l       layout.Layer
			reaches []int64
		}
		var groups []*warmGroup
		for _, r := range e.deck[1:] {
			nl, ok := prefetchLayer(r, e.opts.DisablePruning)
			if !ok {
				continue
			}
			var g *warmGroup
			for _, h := range groups {
				if h.l == nl {
					g = h
					break
				}
			}
			if g == nil {
				g = &warmGroup{l: nl}
				groups = append(groups, g)
			}
			if r.Kind == rules.Spacing {
				g.reaches = append(g.reaches, r.SpacingLimit().Reach())
			}
		}
		if len(groups) > 0 {
			w := len(groups)
			if w > 8 {
				w = 8
			}
			prefetch := pool.New(w)
			defer prefetch.Close()
			pctx := trace.WithTask(ctx, "prefetch")
			for _, g := range groups {
				g := g
				_ = prefetch.SubmitCtx(pctx, func() {
					if ctx.Err() != nil {
						return
					}
					_, _ = gc.Pack(ctx, lo, g.l)
					for _, reach := range g.reaches {
						if ctx.Err() != nil {
							return
						}
						_, _ = gc.Rows(ctx, lo, g.l, reach, alg)
					}
					if len(g.reaches) > 0 && ctx.Err() == nil {
						_, _ = gc.Table(ctx, lo, g.l)
					}
				})
			}
		}
	}

	var placements [][]geom.Transform
	if err := pc.hostPhase(rep, "par:instance-enumeration", func() error {
		placements = lo.Placements()
		return nil
	}); err != nil {
		return err
	}

	for _, r := range e.deck {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("core: check cancelled: %w", err)
		}
		if rp := e.delta.of(r.ID); rp != nil && rp.mode == deltaSkip {
			continue // untouched by the edits; baseline violations retained
		}
		// Rule boundary: let a lagging co-tenant's check run ahead of this
		// one's next serial stretch (no-op without a context scheduler).
		pool.YieldCtx(ctx)
		e.opts.Logger.Debugf("par: rule %s", r)
		r := r
		w := ruleWindow{rule: r.ID, m0: pc.dev.HostClock(), c0: pc.dev.OpCount()}
		h0 := len(rep.hostSpans)
		err := e.guardRule(ctx, rep, r, func() error {
			switch r.Kind {
			case rules.Spacing:
				return e.runSpacingPar(ctx, lo, r, pc, rep)
			case rules.Enclosure:
				return e.runEnclosurePar(ctx, lo, r, placements, pc, rep)
			case rules.Custom:
				// User callables cannot run on the device; the paper's
				// ensures() predicates execute host-side in both modes, with
				// the same per-definition pruning as the sequential branch.
				// Like the derived-layer rules, the work is host time and must
				// advance the modeled device clock.
				return pc.hostPhase(rep, "par:custom", func() error {
					return e.runIntraSeq(ctx, lo, r, placements, rep)
				})
			case rules.Coverage, rules.MinOverlap:
				// Derived-layer boolean rules are host-side in both modes
				// (roadmap features beyond the paper's kernels).
				return pc.hostPhase(rep, "par:derived", func() error {
					return e.runDerivedSeq(ctx, lo, r, placements, rep)
				})
			default:
				return e.runIntraPar(ctx, lo, r, placements, pc, rep)
			}
		})
		if err != nil {
			return err
		}
		w.m1 = pc.dev.HostClock()
		w.c1 = pc.dev.OpCount()
		for _, h := range rep.hostSpans[h0:] {
			w.host += h.e - h.s
		}
		rep.ruleWindows = append(rep.ruleWindows, w)
	}
	// Return the resident layer buffers to the pool: the frees are ordered
	// after every kernel enqueued so far, mirroring how they were uploaded.
	// A persistent (session-owned) context keeps them — that residency across
	// checks is the point of a session; Session.Close frees them the same way.
	if !pc.persistent && len(pc.resident) > 0 {
		pc.io.WaitEvent(pc.cs.RecordEvent())
		for _, b := range pc.resident {
			pc.io.FreeAsync(b.bytes)
		}
		pc.resident = nil
	}
	pc.cs.Synchronize()
	pc.io.Synchronize()
	return nil
}

// prefetchLayer reports which layer the rule's executor will flatten and
// pack, if any — spacing always flattens; intra rules only in the
// pruning-off ablation; enclosure, custom, and derived rules never do.
func prefetchLayer(r rules.Rule, pruningOff bool) (layout.Layer, bool) {
	switch r.Kind {
	case rules.Spacing:
		return r.Layer, true
	case rules.Width, rules.Area, rules.Rectilinear:
		if pruningOff {
			return r.Layer, true
		}
	}
	return 0, false
}

// transfer models the one-time buffer upload: stream-ordered allocation and
// an async copy on the I/O stream; the compute stream waits on its event.
// It enforces the packed-edges budget (cumulative across the run) and
// surfaces allocator failures (device OOM, injected faults). Pool pressure
// is relieved by evicting resident layer buffers before giving up.
func (e *Engine) transfer(pc *parCtx, rep *Report, edges *kernels.Edges) error {
	if err := budget.Check("packed-edges",
		int64(rep.Stats.EdgesPacked+edges.Len()), e.opts.Budgets.MaxPackedEdges); err != nil {
		return err
	}
	if err := e.allocEvict(pc, rep, edges.Bytes()); err != nil {
		return err
	}
	pc.io.MemcpyAsync("edges", edges.Bytes())
	rep.Stats.EdgesPacked += edges.Len()
	rep.Stats.BytesCopied += edges.Bytes()
	return nil
}

// allocEvict is AllocAsync with LRU relief: when the stream-ordered
// allocation trips the device-pool-bytes budget, the least-recently-used
// resident layer buffer is freed (ordered after every kernel enqueued so
// far) and the allocation retries — a failed AllocAsync leaves the pool
// untouched, so retrying after an evict is safe. Injected allocator faults
// and other errors return as-is; eviction only answers genuine pool
// pressure, and with no residents left the budget error stands.
func (e *Engine) allocEvict(pc *parCtx, rep *Report, n int64) error {
	for {
		err := pc.io.AllocAsync(n)
		if err == nil || !errors.Is(err, budget.ErrExceeded) {
			return err
		}
		victim := -1
		for i, b := range pc.resident {
			if victim < 0 || b.lastUse < pc.resident[victim].lastUse {
				victim = i
			}
		}
		if victim < 0 {
			return err
		}
		b := pc.resident[victim]
		pc.resident = append(pc.resident[:victim], pc.resident[victim+1:]...)
		pc.io.WaitEvent(pc.cs.RecordEvent())
		pc.io.FreeAsync(b.bytes)
		rep.Stats.DeviceEvictions++
	}
}

// bindEdges makes a layer's packed buffer addressable by the compute
// stream. With device residency on (geometry cache enabled), the first rule
// touching a layer uploads it once and later rules reuse the resident copy
// by waiting on its upload event; an evicted layer re-uploads on next use.
// Without residency, the upload is transient and the returned release frees
// it — callers invoke release after the compute stream synchronizes (it is
// a no-op for resident buffers, which the run frees at the end).
//
// The packed-edges budget is charged per upload: once per layer when
// resident, once per rule otherwise (see Options.Budgets).
func (e *Engine) bindEdges(pc *parCtx, rep *Report, l layout.Layer, edges *kernels.Edges) (func(), error) {
	noop := func() {}
	pc.useCtr++
	if pc.residentOn {
		for bi, b := range pc.resident {
			if b.layer != l {
				continue
			}
			b.lastUse = pc.useCtr
			if b.partial {
				// Grow the kept prefix back to the full rebuilt buffer with
				// one delta copy. Deliberately a plain allocation, not
				// allocEvict: eviction could pick this very buffer as the LRU
				// victim. Partial buffers only exist in budget-free sessions
				// (see Session.applyPending), so failure here means the pool
				// itself is wedged — drop the prefix and upload fresh.
				delta := edges.Bytes() - b.bytes
				if delta > 0 {
					if err := pc.io.AllocAsync(delta); err != nil {
						pc.resident = append(pc.resident[:bi], pc.resident[bi+1:]...)
						pc.io.WaitEvent(pc.cs.RecordEvent())
						pc.io.FreeAsync(b.bytes)
						break
					}
					pc.io.MemcpyAsync("edges-delta", delta)
					rep.Stats.BytesCopied += delta
					b.bytes = edges.Bytes()
				}
				b.partial = false
				b.ready = pc.io.RecordEvent()
				rep.Stats.DeviceDeltaUploads++
			}
			pc.cs.WaitEvent(b.ready)
			rep.Stats.DeviceReuses++
			return noop, nil
		}
	}
	if err := e.transfer(pc, rep, edges); err != nil {
		return noop, err
	}
	ev := pc.io.RecordEvent()
	pc.cs.WaitEvent(ev)
	if pc.residentOn {
		rep.Stats.DeviceUploads++
		pc.resident = append(pc.resident, &residentBuf{
			layer: l, bytes: edges.Bytes(), ready: ev, lastUse: pc.useCtr,
		})
		return noop, nil
	}
	n := edges.Bytes()
	return func() { pc.io.FreeAsync(n) }, nil
}

// collect adapts kernel hits into report violations.
func collect(rep *Report, r rules.Rule) kernels.Collector {
	return func(h kernels.Hit) {
		rep.Violations = append(rep.Violations, rules.Violation{
			Rule: r.ID, Kind: r.Kind, Layer: r.Layer, Marker: h.Marker,
		})
	}
}

// runIntraPar checks an intra-polygon rule on the device with the Section
// IV-C pruning: the kernel runs once per cell definition's polygons (per
// distinct magnification), and definition markers replay per instance on
// the host — which is why sequential and parallel modes run equally fast on
// intra checks (the paper's Table I observation).
func (e *Engine) runIntraPar(ctx context.Context, lo *layout.Layout, r rules.Rule, placements [][]geom.Transform, pc *parCtx, rep *Report) error {
	// Group definitions by magnification (one kernel per distinct mag).
	groups := make(map[int64][]*layout.Cell)
	if e.opts.DisablePruning {
		// Ablation: flatten every instance and run one big kernel.
		return e.runIntraParFlat(ctx, lo, r, pc, rep)
	}
	rp := e.restrictFor(r.ID)
	for _, c := range lo.LayerCells(r.Layer) {
		if len(c.LocalPolyIndex(r.Layer)) == 0 || len(placements[c.ID]) == 0 {
			continue
		}
		// Delta restriction: a definition none of whose instances lands near
		// the dirty region cannot contribute a claimed violation.
		if rp != nil && !rp.anyPlacementNear(localIntraMBR(c, r.Layer), placements[c.ID]) {
			continue
		}
		magSet := make(map[int64]bool)
		for _, t := range placements[c.ID] {
			mag := t.Mag
			if mag == 0 {
				mag = 1
			}
			magSet[mag] = true
		}
		cellMags := make([]int64, 0, len(magSet))
		for mag := range magSet {
			cellMags = append(cellMags, mag)
		}
		sort.Slice(cellMags, func(i, j int) bool { return cellMags[i] < cellMags[j] })
		for _, mag := range cellMags {
			groups[mag] = append(groups[mag], c)
		}
	}
	mags := make([]int64, 0, len(groups))
	for mag := range groups {
		mags = append(mags, mag)
	}
	sort.Slice(mags, func(i, j int) bool { return mags[i] < mags[j] })

	for _, mag := range mags {
		if err := ctx.Err(); err != nil {
			return err
		}
		cells := groups[mag]
		var shapes []geom.Polygon
		var owner []*layout.Cell
		if err := pc.hostPhase(rep, "par:edge-packing", func() error {
			for _, c := range cells {
				for _, pi := range c.LocalPolyIndex(r.Layer) {
					shapes = append(shapes, c.Polys[pi].Shape)
					owner = append(owner, c)
				}
			}
			return nil
		}); err != nil {
			return err
		}
		edges := kernels.Pack(shapes)
		if err := e.transfer(pc, rep, edges); err != nil {
			return err
		}
		pc.cs.WaitEvent(pc.io.RecordEvent())

		defMarkers := make(map[*layout.Cell][]checks.Marker)
		hit := func(h kernels.Hit) {
			c := owner[h.A]
			defMarkers[c] = append(defMarkers[c], h.Marker)
		}
		min := scaledIntraMin(r, mag)
		switch r.Kind {
		case rules.Width:
			if maxPolyEdges(edges) > 32 {
				kernels.SpacingSweep(pc.cs, edges, checks.Lim(min), kernels.FilterWidth, hit)
				rep.Stats.KernelLaunches += 5
			} else {
				kernels.WidthBrute(pc.cs, edges, min, hit)
				rep.Stats.KernelLaunches++
			}
		case rules.Area:
			kernels.AreaKernel(pc.cs, edges, min, hit)
			rep.Stats.KernelLaunches++
		case rules.Rectilinear:
			kernels.RectilinearKernel(pc.cs, edges, hit)
			rep.Stats.KernelLaunches++
		}
		pc.cs.Synchronize()
		pc.io.FreeAsync(edges.Bytes())

		// Replay definition results per instance (host).
		if err := pc.hostPhase(rep, "par:marker-replay", func() error {
			for _, c := range cells {
				rep.Stats.DefsChecked++
				markers := defMarkers[c]
				for _, t := range placements[c.ID] {
					tm := t.Mag
					if tm == 0 {
						tm = 1
					}
					if tm != mag {
						continue
					}
					rep.Stats.InstancesEmitted++
					e.emitMarkers(rep, r, c.Name, markers, t)
				}
			}
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}

// runIntraParFlat is the pruning-off ablation: one kernel over every
// flattened polygon instance, subject to the flatten-polys budget (applied
// inside the geometry source).
func (e *Engine) runIntraParFlat(ctx context.Context, lo *layout.Layout, r rules.Rule, pc *parCtx, rep *Report) error {
	var flat []layout.PlacedPoly
	if err := pc.hostPhase(rep, "par:flatten", func() error {
		var err error
		flat, err = pc.geo.flatten(ctx, lo, r.Layer)
		return err
	}); err != nil {
		return err
	}
	if len(flat) == 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	var edges *kernels.Edges
	if err := pc.hostPhase(rep, "par:edge-packing", func() error {
		var err error
		edges, err = pc.geo.packFrom(ctx, lo, r.Layer, flat)
		return err
	}); err != nil {
		return err
	}
	release, err := e.bindEdges(pc, rep, r.Layer, edges)
	if err != nil {
		return err
	}
	c := collect(rep, r)
	switch r.Kind {
	case rules.Width:
		// Same executor selection as the pruned path, so the pruning
		// ablation isolates pruning instead of conflating it with a
		// different executor choice.
		if maxPolyEdges(edges) > 32 {
			kernels.SpacingSweep(pc.cs, edges, checks.Lim(r.Min), kernels.FilterWidth, c)
			rep.Stats.KernelLaunches += 4
		} else {
			kernels.WidthBrute(pc.cs, edges, r.Min, c)
		}
	case rules.Area:
		kernels.AreaKernel(pc.cs, edges, 2*r.Min, c)
	case rules.Rectilinear:
		kernels.RectilinearKernel(pc.cs, edges, c)
	}
	rep.Stats.KernelLaunches++
	rep.Stats.DefsChecked += len(flat)
	rep.Stats.InstancesEmitted += len(flat)
	pc.cs.Synchronize()
	release()
	return nil
}

func maxPolyEdges(e *kernels.Edges) int {
	max := 0
	for p := 0; p < e.NumPolys(); p++ {
		lo, hi := e.PolyEdges(p)
		if hi-lo > max {
			max = hi - lo
		}
	}
	return max
}

// runSpacingPar checks one spacing rule row by row on the device.
func (e *Engine) runSpacingPar(ctx context.Context, lo *layout.Layout, r rules.Rule, pc *parCtx, rep *Report) error {
	// Host: flatten the layer once (hierarchy range query, memoized across
	// rules by the geometry cache), pack edges in the canonical flatten
	// order and start the one-time async transfer, then partition — the
	// copy is hidden behind the partitioning, per Section V-C. The flatten
	// is where the memory blow-up happens, so the flatten-polys budget
	// applies there (inside the geometry source). Rows address subsets of
	// the shared buffer by polygon index, so every spacing rule on the
	// layer — whatever its reach partitions into — reuses one packed copy.
	var flat []layout.PlacedPoly
	if err := pc.hostPhase(rep, "par:flatten", func() error {
		var err error
		flat, err = pc.geo.flatten(ctx, lo, r.Layer)
		return err
	}); err != nil {
		return err
	}
	if len(flat) == 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	lim := r.SpacingLimit()
	var rows []partition.Row
	if err := pc.hostPhase(rep, "par:partition", func() error {
		var err error
		rows, err = pc.geo.rows(ctx, lo, r.Layer, lim.Reach(), e.opts.PartitionAlg, flat)
		return err
	}); err != nil {
		return err
	}
	var edges *kernels.Edges
	if err := pc.hostPhase(rep, "par:edge-packing", func() error {
		var err error
		edges, err = pc.geo.packFrom(ctx, lo, r.Layer, flat)
		return err
	}); err != nil {
		return err
	}
	release, err := e.bindEdges(pc, rep, r.Layer, edges)
	if err != nil {
		return err
	}
	// Delta restriction: rows whose y-band misses the work window cannot
	// hold a claimed violation (a violation's marker lies between its two
	// edges, both inside the row), so they are skipped outright — their
	// baseline violations are retained by the merge. Notches restrict the
	// same way at polygon granularity.
	rp := e.restrictFor(r.ID)
	if rp != nil {
		kept := rows[:0:0]
		for _, row := range rows {
			if rp.nearWorkY(row.YLo, row.YHi) {
				kept = append(kept, row)
			}
		}
		rows = kept
	}
	rep.Stats.Rows += len(rows)
	c := collect(rep, r)

	// Notches are intra-polygon but belong to the spacing rule: one batched
	// launch over every polygon.
	if rp != nil {
		var members []int32
		for i := range flat {
			if rp.nearWork(flat[i].Shape.MBR()) {
				members = append(members, int32(i))
			}
		}
		if len(members) > 0 {
			kernels.NotchMembers(pc.cs, edges, members, lim, c)
			rep.Stats.KernelLaunches++
		}
	} else {
		kernels.NotchBrute(pc.cs, edges, lim, c)
		rep.Stats.KernelLaunches++
	}

	// Executor selection per row; the brute rows batch into one launch set
	// (rows become grid blocks), large rows take the sweepline executor on
	// their members of the shared buffer. Row members are ascending
	// canonical polygon indices, so the member-indexed kernels test the
	// same pairs in the same order as the old row-reordered packing did.
	var bruteRows [][]int32
	for _, row := range rows {
		if err := ctx.Err(); err != nil {
			return err
		}
		members := make([]int32, len(row.Members))
		total := 0
		for i, m := range row.Members {
			members[i] = int32(m)
			elo, ehi := edges.PolyEdges(m)
			total += ehi - elo
		}
		if total <= e.opts.BruteEdgeThreshold {
			bruteRows = append(bruteRows, members)
		} else {
			kernels.SpacingSweepPolys(pc.cs, edges, members, lim, kernels.FilterSpacing, c)
			rep.Stats.KernelLaunches += 7
		}
	}
	if len(bruteRows) > 0 {
		// The device discovers candidate pairs by expanded-MBR overlap
		// (Section IV-C's check pruning as kernels), then one thread per
		// surviving pair enumerates its edge cross product. With the buffer
		// resident, the MBR table and global x-order are built once per layer
		// and later rules gather their row orders from it (a stable filter of
		// the same total order), so discovery emits identical pairs in
		// identical order at a fraction of the modeled cost.
		var pairs [][2]int32
		t, terr := pc.mbrTable(ctx, lo, rep, r.Layer)
		if terr != nil {
			return terr
		}
		if t != nil {
			pairs = kernels.PairDiscoveryTable(pc.cs, edges, t, bruteRows, lim.Reach())
			rep.Stats.KernelLaunches++
		} else {
			pairs = kernels.PairDiscoveryMembers(pc.cs, edges, bruteRows, lim.Reach())
			rep.Stats.KernelLaunches += 3
		}
		rep.Stats.PairsConsidered += len(pairs)
		rep.Stats.PairsChecked += len(pairs)
		if len(pairs) > 0 {
			kernels.SpacingBrute(pc.cs, edges, pairs, lim, c)
			rep.Stats.KernelLaunches++
		}
	}
	pc.cs.Synchronize()
	release()
	return nil
}

// runEnclosurePar resolves enclosure with the Section IV-C pruning first:
// vias covered with margin inside their own cell definition pass for every
// instance and never reach the device; only the residue (vias needing
// parent-level metal) is instance-expanded and checked with the
// enclosure-evaluation kernel.
func (e *Engine) runEnclosurePar(ctx context.Context, lo *layout.Layout, r rules.Rule, placements [][]geom.Transform, pc *parCtx, rep *Report) error {
	type residue struct {
		cell    *layout.Cell
		polyIdx int
	}
	var deferred []residue
	if err := pc.hostPhase(rep, "par:local-pruning", func() error {
		for _, c := range lo.LayerCells(r.Layer) {
			if err := ctx.Err(); err != nil {
				return err
			}
			if len(placements[c.ID]) == 0 {
				continue
			}
			local := c.LocalPolys(r.Layer)
			if len(local) == 0 {
				continue
			}
			rep.Stats.DefsChecked++
			if e.opts.DisablePruning {
				for _, pi := range local {
					deferred = append(deferred, residue{cell: c, polyIdx: pi})
				}
				continue
			}
			unresolved, err := e.enclosureLocalPass(lo, c, local, r, rep)
			if err != nil {
				return err
			}
			resolved := len(local) - len(unresolved)
			rep.Stats.InstancesEmitted += resolved * len(placements[c.ID])
			rep.Stats.ChecksReused += resolved * (len(placements[c.ID]) - 1)
			for _, pi := range unresolved {
				deferred = append(deferred, residue{cell: c, polyIdx: pi})
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if len(deferred) == 0 {
		return nil
	}

	// Instance-expand the residue; candidate metal comes from hierarchy
	// range queries around each residual via (not a full-layer flatten —
	// the residue is small by construction).
	var vias []geom.Polygon
	var metals []geom.Polygon
	var cands [][]int32
	if err := pc.hostPhase(rep, "par:flatten", func() error {
		for _, d := range deferred {
			if err := ctx.Err(); err != nil {
				return err
			}
			via := d.cell.Polys[d.polyIdx].Shape
			for _, t := range placements[d.cell.ID] {
				gvia := via.Transform(t)
				window := gvia.MBR().Expand(r.Min)
				found, _ := lo.QueryLayer(r.Outer, window)
				list := make([]int32, 0, len(found))
				for _, pp := range found {
					list = append(list, int32(len(metals)))
					metals = append(metals, pp.Shape)
				}
				vias = append(vias, gvia)
				cands = append(cands, list)
			}
		}
		return nil
	}); err != nil {
		return err
	}
	ie := kernels.Pack(vias)
	oe := kernels.Pack(metals)
	if err := e.transfer(pc, rep, ie); err != nil {
		return err
	}
	if err := e.transfer(pc, rep, oe); err != nil {
		return err
	}
	for _, cl := range cands {
		rep.Stats.PairsChecked += len(cl)
	}
	pc.cs.WaitEvent(pc.io.RecordEvent())
	kernels.EnclosureEval(pc.cs, ie, oe, cands, r.Min, collect(rep, r))
	rep.Stats.KernelLaunches++
	rep.Stats.InstancesEmitted += len(vias)
	pc.cs.Synchronize()
	pc.io.FreeAsync(ie.Bytes())
	pc.io.FreeAsync(oe.Bytes())
	return nil
}
