package core

import (
	"context"
	"errors"
	"sync"
	"time"

	"opendrc/internal/geom"
	"opendrc/internal/gpu"
	"opendrc/internal/layout"
	"opendrc/internal/pool"
	"opendrc/internal/rules"
)

// The session layer. A batch check pays its full cost every run: the layout
// is flattened and packed per deck, and the parallel mode uploads every
// layer's edge buffer to a device created for the occasion. A Session pins
// that expensive state to the lifetime of a loaded design instead — one
// geometry cache (flattens, packs, MBR tables, row partitions) and, in
// parallel mode, one simulated device whose resident layer buffers survive
// from check to check — so a service holding designs open (the odrcd daemon)
// answers repeat checks at warm-cache cost. Sessions trade nothing for the
// speed: violations, failures, and degradation behavior are bit-identical
// to batch runs of the same deck (see Report.WriteCanonicalJSON); only the
// cost counters and timings differ.

// ErrSessionClosed is returned by Check on a closed session.
var ErrSessionClosed = errors.New("core: session closed")

// Session holds one layout's resident check state across runs. Checks,
// invalidation, and Close serialize on an internal lock, so a Session is
// safe for concurrent use — though callers wanting throughput should
// serialize externally (the odrcd daemon runs one check at a time per
// session and queues the rest). The lock is a 1-token channel rather than a
// sync.Mutex so waiters can honor their context.
type Session struct {
	opts Options
	lo   *layout.Layout

	mu  chan struct{} // 1-token semaphore: a mutex Check could not hold across ctx waits
	geo *geoSource

	smu    sync.Mutex // guards the pc pointer so observers need not queue behind checks
	pc     *parCtx    //odrc:guardedby smu
	closed bool       // written with mu held

	// Delta-check state, all guarded by the session lock: the last
	// successful check's result, the dirty regions recorded since (undilated;
	// pendingFull marks whole-layer dirt), and the check-traffic counters
	// behind StatsSnapshot.
	baseline    *sessionBaseline
	pending     map[layout.Layer][]geom.Rect
	pendingFull map[layout.Layer]bool
	stats       SessionStats
}

// NewSession pins a layout and options into a resident session. The options
// are fixed for the session's lifetime — mode, device model, budgets, fault
// injector, and trace recorder apply to every check it serves. (A session
// recorder accumulates spans across checks on one timeline; pass nil for
// the usual zero-cost default.)
func NewSession(lo *layout.Layout, opts Options) *Session {
	if opts.BruteEdgeThreshold == 0 {
		opts.BruteEdgeThreshold = defaultBruteEdgeThreshold
	}
	if opts.Device.SMs == 0 {
		opts.Device = gpu.GTX1660Ti()
	}
	s := &Session{opts: opts, lo: lo, mu: make(chan struct{}, 1)}
	s.geo = newGeoSource(opts, opts.Trace)
	return s
}

// lock acquires the session lock, honoring ctx so a caller queued behind a
// long check can still time out or disconnect.
func (s *Session) lock(ctx context.Context) error {
	select {
	case s.mu <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Session) unlock() { <-s.mu }

// Layout returns the session's pinned layout.
func (s *Session) Layout() *layout.Layout { return s.lo }

// Check runs deck against the session's layout, reusing the resident
// geometry cache and device buffers. The deck is per-call: a session serves
// full-deck and single-rule checks interchangeably. Cancellation semantics
// match Engine.CheckContext; the resident state stays consistent whether
// the check completes, degrades, or is cancelled (partial uploads are
// session state like any other and are freed on Close).
func (s *Session) Check(ctx context.Context, deck rules.Deck) (*Report, error) {
	if err := s.lock(ctx); err != nil {
		return nil, err
	}
	defer s.unlock()
	if s.closed {
		return nil, ErrSessionClosed
	}
	// Presence spans the whole check — serial sections included — so a
	// context-carried scheduler can fair-share it against co-tenant load.
	defer pool.EnterCtx(ctx)()
	e := New(s.opts)
	if err := e.AddRules(deck...); err != nil {
		return nil, err
	}
	s.stats.FullChecks++
	return s.runFull(ctx, e, e.Deck())
}

// deviceCtx returns the session's persistent device context, creating it on
// the first parallel check and trimming the retained timeline on later ones
// so each Report's device view covers its own run. Called with the session
// lock held.
func (s *Session) deviceCtx() *parCtx {
	s.smu.Lock()
	pc := s.pc
	s.smu.Unlock()
	if pc == nil {
		pc = &parCtx{
			dev: gpu.NewDevice(s.opts.Device), geo: s.geo,
			residentOn: s.geo.cache != nil, persistent: true,
		}
		pc.io = pc.dev.NewStream("h2d")
		pc.cs = pc.dev.NewStream("checks")
		if n := s.opts.Budgets.MaxDeviceBytes; n > 0 {
			pc.dev.SetMemLimit(n)
		}
		s.smu.Lock()
		s.pc = pc
		s.smu.Unlock()
		return pc
	}
	pc.dev.TrimTimeline()
	return pc
}

// freeResident frees the device-resident buffers of the given layers (all
// when none given), ordered after every kernel enqueued so far — the same
// ordering the LRU eviction and the end-of-run free use. Session lock held.
func (s *Session) freeResident(pc *parCtx, layers []layout.Layer) {
	keep := pc.resident[:0]
	var doomed []*residentBuf
	for _, b := range pc.resident {
		drop := len(layers) == 0
		for _, l := range layers {
			if b.layer == l {
				drop = true
				break
			}
		}
		if drop {
			doomed = append(doomed, b)
		} else {
			keep = append(keep, b)
		}
	}
	if len(doomed) == 0 {
		return
	}
	pc.io.WaitEvent(pc.cs.RecordEvent())
	for _, b := range doomed {
		pc.io.FreeAsync(b.bytes)
	}
	pc.resident = keep
}

// Close releases the session's resident state: every device-resident buffer
// is freed (ordered after all enqueued kernels, mirroring upload order) and
// both streams synchronize, so the device pool's in-use bytes return to
// zero deterministically. Close is idempotent; a closed session fails
// subsequent Checks with ErrSessionClosed. Close never interrupts a running
// check — it waits its turn on the session lock (pass a cancellable ctx to
// bound that wait; the engine observes cancellation at rule boundaries).
func (s *Session) Close(ctx context.Context) error {
	if err := s.lock(ctx); err != nil {
		return err
	}
	defer s.unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.smu.Lock()
	pc := s.pc
	s.pc = nil
	s.smu.Unlock()
	if pc != nil {
		s.freeResident(pc, nil)
		pc.cs.Synchronize()
		pc.io.Synchronize()
	}
	return nil
}

// Device exposes the session's resident simulated device (nil before the
// first parallel check or after Close) — pool accounting and the modeled
// clock are the observable session footprint. Device never queues behind a
// running check, so status endpoints stay responsive.
func (s *Session) Device() *gpu.Device {
	s.smu.Lock()
	defer s.smu.Unlock()
	if s.pc == nil {
		return nil
	}
	return s.pc.dev
}

// ModeledClock returns the session device's cumulative modeled time (zero
// when no parallel check has run). Non-blocking like Device.
func (s *Session) ModeledClock() time.Duration {
	if dev := s.Device(); dev != nil {
		return dev.HostClock()
	}
	return 0
}
