package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"opendrc/internal/budget"
	"opendrc/internal/synth"
)

func TestReportJSON(t *testing.T) {
	lo, exp := loadDesign(t, "uart", 1)
	rep := runEngine(t, lo, Options{Mode: Sequential}, synth.Deck())
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Mode        string         `json:"mode"`
		Violations  []any          `json:"violations"`
		CountByRule map[string]int `json:"count_by_rule"`
		HostWallUS  int64          `json:"host_wall_us"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if decoded.Mode != "sequential" {
		t.Errorf("mode = %q", decoded.Mode)
	}
	if len(decoded.Violations) != len(rep.Violations) {
		t.Errorf("violations = %d, want %d", len(decoded.Violations), len(rep.Violations))
	}
	if exp.Total > 0 && len(decoded.Violations) == 0 {
		t.Error("expected violations in JSON output")
	}
	if decoded.HostWallUS <= 0 {
		t.Error("host wall time missing")
	}
}

func TestReportText(t *testing.T) {
	lo, _ := loadDesign(t, "uart", 1)
	deck := synth.Deck()
	rep := runEngine(t, lo, Options{Mode: Sequential}, deck)
	var buf bytes.Buffer
	if err := rep.WriteText(&buf, deck); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"violations in", "M1.W.1", "V1.M1.EN.1", "sequential mode"} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q:\n%s", want, out)
		}
	}
}

// TestCanonicalJSON pins the canonical form: no timing, no stats, and a
// degraded budget failure carries the structured budget object — while the
// violations and counts match the full form.
func TestCanonicalJSON(t *testing.T) {
	lo, _ := loadDesign(t, "uart", 1)
	rep := runEngine(t, lo,
		Options{Mode: Parallel, Budgets: budget.Limits{MaxFlattenPolys: 1}}, synth.Deck())
	if !rep.Degraded {
		t.Fatal("1-poly flatten budget did not degrade the run")
	}
	var buf bytes.Buffer
	if err := rep.WriteCanonicalJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, forbidden := range []string{"host_wall_us", "modeled_us", "\"stats\""} {
		if strings.Contains(out, forbidden) {
			t.Errorf("canonical form leaks %q:\n%s", forbidden, out)
		}
	}
	var decoded struct {
		Mode     string `json:"mode"`
		Degraded bool   `json:"degraded"`
		Failures []struct {
			Rule   string `json:"rule"`
			Budget *struct {
				Resource string `json:"resource"`
				Limit    int64  `json:"limit"`
				Used     int64  `json:"used"`
			} `json:"budget"`
		} `json:"failures"`
		Violations  []any          `json:"violations"`
		CountByRule map[string]int `json:"count_by_rule"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if !decoded.Degraded || len(decoded.Failures) == 0 {
		t.Fatalf("degradation missing from canonical form:\n%s", out)
	}
	f := decoded.Failures[0]
	if f.Budget == nil || f.Budget.Resource != "flatten-polys" || f.Budget.Limit != 1 || f.Budget.Used <= 1 {
		t.Fatalf("structured budget missing or wrong: %+v", f)
	}
	if len(decoded.Violations) != len(rep.Violations) {
		t.Errorf("violations = %d, want %d", len(decoded.Violations), len(rep.Violations))
	}
}
