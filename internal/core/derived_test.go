package core

import (
	"testing"

	"opendrc/internal/gdsii"
	"opendrc/internal/geom"
	"opendrc/internal/layout"
	"opendrc/internal/rules"
)

func buildLayout(t *testing.T, lib *gdsii.Library) *layout.Layout {
	t.Helper()
	lo, err := layout.FromLibrary(lib)
	if err != nil {
		t.Fatal(err)
	}
	return lo
}

func ring(x0, y0, x1, y1 int64) []geom.Point {
	return []geom.Point{
		geom.Pt(x0, y0), geom.Pt(x0, y1), geom.Pt(x1, y1), geom.Pt(x1, y0),
	}
}

// coverageLibrary: a via covered by TWO abutting metal rectangles — legal
// coverage that per-polygon enclosure containment cannot see — plus a via
// that is genuinely half-uncovered, instantiated twice.
func coverageLibrary() *gdsii.Library {
	return &gdsii.Library{
		Name: "cov", UserUnit: 1e-3, MeterUnit: 1e-9,
		Structures: []*gdsii.Structure{
			{
				Name: "CELL",
				Boundaries: []gdsii.Boundary{
					// Via 1 at [10,10]-[30,30]: covered by the union of two
					// metal halves that split at x=20.
					{Layer: int16(layout.LayerV1), XY: ring(10, 10, 30, 30)},
					{Layer: int16(layout.LayerM1), XY: ring(0, 0, 20, 40)},
					{Layer: int16(layout.LayerM1), XY: ring(20, 0, 40, 40)},
					// Via 2 at [60,10]-[80,30]: metal only covers x<=70.
					{Layer: int16(layout.LayerV1), XY: ring(60, 10, 80, 30)},
					{Layer: int16(layout.LayerM1), XY: ring(55, 0, 70, 40)},
				},
			},
			{
				Name: "TOP",
				SRefs: []gdsii.SRef{
					{Name: "CELL", Pos: geom.Pt(0, 0)},
					{Name: "CELL", Pos: geom.Pt(500, 0)},
				},
			},
		},
	}
}

func TestCoverageAbuttingMetalsPass(t *testing.T) {
	lo := buildLayout(t, coverageLibrary())
	rep := runEngine(t, lo, Options{Mode: Sequential}, rules.Deck{
		rules.Layer(layout.LayerV1).CoveredBy(layout.LayerM1).Named("V1.COV"),
	})
	// Only via 2 violates, in both instances; via 1 passes because the
	// union of the abutting halves covers it.
	if n := len(rep.Violations); n != 2 {
		for _, v := range rep.Violations {
			t.Logf("violation at %v area=%d", v.Marker.Box, v.Marker.Dist)
		}
		t.Fatalf("coverage violations = %d, want 2", n)
	}
	// Residue: via 2 is [60,80]x[10,30], metal covers x<=70: residue is
	// [70,80]x[10,30], area 200.
	for _, v := range rep.Violations {
		if v.Marker.Box.Width() != 10 || v.Marker.Box.Height() != 20 || v.Marker.Dist != 200 {
			t.Errorf("residue marker = %v area=%d", v.Marker.Box, v.Marker.Dist)
		}
	}
	// Contrast: per-polygon enclosure containment flags via 1 as escaped.
	encl := runEngine(t, lo, Options{Mode: Sequential}, rules.Deck{
		rules.Layer(layout.LayerV1).EnclosedBy(layout.LayerM1).AtLeast(5).Named("V1.EN"),
	})
	if len(encl.Violations) <= len(rep.Violations) {
		t.Errorf("enclosure (%d violations) should over-report vs coverage (%d): split metal",
			len(encl.Violations), len(rep.Violations))
	}
}

func TestCoverageModesAgree(t *testing.T) {
	lo := buildLayout(t, coverageLibrary())
	deck := rules.Deck{rules.Layer(layout.LayerV1).CoveredBy(layout.LayerM1).Named("V1.COV")}
	seq := runEngine(t, lo, Options{Mode: Sequential}, deck)
	par := runEngine(t, lo, Options{Mode: Parallel}, deck)
	if len(seq.Violations) != len(par.Violations) {
		t.Fatalf("modes disagree: %d vs %d", len(seq.Violations), len(par.Violations))
	}
	off := runEngine(t, lo, Options{Mode: Sequential, DisablePruning: true}, deck)
	if len(off.Violations) != len(seq.Violations) {
		t.Fatalf("pruning changed coverage results: %d vs %d", len(off.Violations), len(seq.Violations))
	}
}

func TestMinOverlap(t *testing.T) {
	lo := buildLayout(t, coverageLibrary())
	// Via area is 400. Via 1 overlaps fully (400); via 2 overlaps 10x20=200.
	pass := runEngine(t, lo, Options{Mode: Sequential}, rules.Deck{
		rules.Layer(layout.LayerV1).OverlapWith(layout.LayerM1).AtLeast(200).Named("OV200"),
	})
	if n := len(pass.Violations); n != 0 {
		t.Fatalf("overlap>=200: %d violations, want 0", n)
	}
	fail := runEngine(t, lo, Options{Mode: Sequential}, rules.Deck{
		rules.Layer(layout.LayerV1).OverlapWith(layout.LayerM1).AtLeast(300).Named("OV300"),
	})
	if n := len(fail.Violations); n != 2 {
		t.Fatalf("overlap>=300: %d violations, want 2 (via 2 in both instances)", n)
	}
	for _, v := range fail.Violations {
		if v.Marker.Dist != 200 {
			t.Errorf("measured overlap = %d, want 200", v.Marker.Dist)
		}
	}
}

// prlLibrary: two pairs of parallel wires at gap 20: one pair runs long
// (projection 300), one short (projection 50).
func prlLibrary() *gdsii.Library {
	return &gdsii.Library{
		Name: "prl", UserUnit: 1e-3, MeterUnit: 1e-9,
		Structures: []*gdsii.Structure{{
			Name: "TOP",
			Boundaries: []gdsii.Boundary{
				{Layer: int16(layout.LayerM2), XY: ring(0, 0, 300, 30)},
				{Layer: int16(layout.LayerM2), XY: ring(0, 50, 300, 80)}, // long pair, gap 20
				{Layer: int16(layout.LayerM2), XY: ring(0, 200, 50, 230)},
				{Layer: int16(layout.LayerM2), XY: ring(0, 250, 50, 280)}, // short pair, gap 20
			},
		}},
	}
}

func TestPRLSpacing(t *testing.T) {
	lo := buildLayout(t, prlLibrary())
	base := rules.Layer(layout.LayerM2).Spacing().AtLeast(18).Named("M2.S")
	// Without the PRL condition: both pairs pass (gap 20 >= 18).
	rep := runEngine(t, lo, Options{Mode: Sequential}, rules.Deck{base})
	if n := len(rep.Violations); n != 0 {
		t.Fatalf("base spacing: %d violations, want 0", n)
	}
	// With PRL: projection >= 100 requires 24 — only the long pair fails.
	prl := base.WhenProjectionAtLeast(100, 24).Named("M2.S.PRL")
	rep = runEngine(t, lo, Options{Mode: Sequential}, rules.Deck{prl})
	if n := len(rep.Violations); n != 1 {
		for _, v := range rep.Violations {
			t.Logf("violation %v d=%d", v.Marker.Box, v.Marker.Dist)
		}
		t.Fatalf("PRL spacing: %d violations, want 1 (long pair only)", n)
	}
	if rep.Violations[0].Marker.Dist != 20 {
		t.Errorf("violation distance = %d, want 20", rep.Violations[0].Marker.Dist)
	}
	// Parallel mode agrees (both executors).
	for _, threshold := range []int{1, 1 << 30} {
		par := runEngine(t, lo, Options{Mode: Parallel, BruteEdgeThreshold: threshold}, rules.Deck{prl})
		if len(par.Violations) != 1 {
			t.Fatalf("parallel (threshold %d): %d violations, want 1", threshold, len(par.Violations))
		}
	}
}

func TestPRLValidation(t *testing.T) {
	bad := rules.Layer(layout.LayerM2).Spacing().AtLeast(18).WhenProjectionAtLeast(100, 10)
	if err := bad.Validate(); err == nil {
		t.Error("PRLMin <= Min accepted")
	}
	badKind := rules.Layer(layout.LayerM2).Width().AtLeast(18)
	badKind.PRLLength = 100
	badKind.PRLMin = 24
	if err := badKind.Validate(); err == nil {
		t.Error("PRL on width rule accepted")
	}
	good := rules.Layer(layout.LayerM2).Spacing().AtLeast(18).WhenProjectionAtLeast(100, 24)
	if err := good.Validate(); err != nil {
		t.Errorf("valid PRL rule rejected: %v", err)
	}
	if good.Reach() != 24 {
		t.Errorf("PRL reach = %d, want 24", good.Reach())
	}
}

func TestDerivedRuleValidation(t *testing.T) {
	if err := (rules.Layer(5).CoveredBy(5)).Validate(); err == nil {
		t.Error("coverage with identical layers accepted")
	}
	if err := (rules.Layer(5).OverlapWith(6).AtLeast(0)).Validate(); err == nil {
		t.Error("min-overlap with zero area accepted")
	}
}
