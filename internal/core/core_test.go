package core

import (
	"testing"

	"opendrc/internal/checks"
	"opendrc/internal/gdsii"
	"opendrc/internal/geom"
	"opendrc/internal/layout"
	"opendrc/internal/partition"
	"opendrc/internal/rules"
	"opendrc/internal/synth"
)

// loadDesign builds a scaled benchmark design once per test binary.
func loadDesign(t *testing.T, name string, scale float64) (*layout.Layout, synth.Expected) {
	t.Helper()
	lo, exp, err := synth.Load(name, scale)
	if err != nil {
		t.Fatal(err)
	}
	return lo, exp
}

func runEngine(t *testing.T, lo *layout.Layout, opts Options, deck rules.Deck) *Report {
	t.Helper()
	e := New(opts)
	if err := e.AddRules(deck...); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Check(lo)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// expectedByRule maps injected counts onto deck rule IDs.
func expectedByRule(exp synth.Expected) map[string]int {
	return map[string]int{
		"M1.RECT.1":  exp.NonRectil,
		"M1.W.1":     exp.WidthM1,
		"M2.W.1":     0,
		"M3.W.1":     0,
		"M1.A.1":     exp.AreaM1,
		"M2.A.1":     0,
		"M3.A.1":     0,
		"M1.S.1":     exp.NotchM1,
		"M2.S.1":     exp.SpaceM2,
		"M3.S.1":     exp.SpaceM3,
		"V1.M1.EN.1": exp.EnclV1,
		"V2.M2.EN.1": exp.EnclV2M2,
		"V2.M3.EN.1": exp.EnclV2M3,
		"M2.NAME.1":  exp.UnnamedM2,
	}
}

func TestSequentialFindsExactlyInjectedViolations(t *testing.T) {
	lo, exp := loadDesign(t, "uart", 1)
	rep := runEngine(t, lo, Options{Mode: Sequential}, synth.Deck())
	got := rep.CountByRule()
	for rule, want := range expectedByRule(exp) {
		if got[rule] != want {
			t.Errorf("%s: found %d violations, injected %d", rule, got[rule], want)
		}
	}
	if exp.Total == 0 {
		t.Fatal("no injections generated; test is vacuous")
	}
}

func TestSequentialCleanDesignIsClean(t *testing.T) {
	p, err := synth.Design("uart")
	if err != nil {
		t.Fatal(err)
	}
	p.InjectEvery = 0
	p.InjectDiagonal = false
	lib, exp := p.Generate()
	if exp.Total != 0 {
		t.Fatalf("injection disabled but expected %d", exp.Total)
	}
	lo, err := layout.FromLibrary(lib)
	if err != nil {
		t.Fatal(err)
	}
	rep := runEngine(t, lo, Options{Mode: Sequential}, synth.Deck())
	if len(rep.Violations) != 0 {
		for i, v := range rep.Violations {
			if i > 10 {
				break
			}
			t.Logf("violation: %s %v cell=%s", v.Rule, v.Marker.Box, v.Cell)
		}
		t.Errorf("clean design produced %d violations", len(rep.Violations))
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	lo, exp := loadDesign(t, "uart", 1)
	seq := runEngine(t, lo, Options{Mode: Sequential}, synth.Deck())
	par := runEngine(t, lo, Options{Mode: Parallel}, synth.Deck())

	sv := DedupViolations(append([]rules.Violation(nil), seq.Violations...))
	pv := DedupViolations(append([]rules.Violation(nil), par.Violations...))
	if len(sv) != len(pv) {
		t.Fatalf("dedup counts differ: seq %d, par %d", len(sv), len(pv))
	}
	for i := range sv {
		a, b := sv[i], pv[i]
		if a.Rule != b.Rule || a.Marker.Box != b.Marker.Box || a.Marker.Dist != b.Marker.Dist {
			t.Fatalf("violation %d differs:\nseq %s %v d=%d\npar %s %v d=%d",
				i, a.Rule, a.Marker.Box, a.Marker.Dist, b.Rule, b.Marker.Box, b.Marker.Dist)
		}
	}
	if exp.Total == 0 {
		t.Fatal("vacuous comparison")
	}
	if par.Device == nil || par.Modeled <= 0 {
		t.Error("parallel report missing device timeline")
	}
	if par.Stats.Rows == 0 || par.Stats.KernelLaunches == 0 {
		t.Errorf("parallel stats empty: %+v", par.Stats)
	}
}

func TestPruningAblationSameViolations(t *testing.T) {
	lo, _ := loadDesign(t, "uart", 0.7)
	on := runEngine(t, lo, Options{Mode: Sequential}, synth.Deck())
	off := runEngine(t, lo, Options{Mode: Sequential, DisablePruning: true}, synth.Deck())
	ov := DedupViolations(append([]rules.Violation(nil), on.Violations...))
	fv := DedupViolations(append([]rules.Violation(nil), off.Violations...))
	if len(ov) != len(fv) {
		t.Fatalf("pruning changed results: %d vs %d", len(ov), len(fv))
	}
	for i := range ov {
		if ov[i].Rule != fv[i].Rule || ov[i].Marker.Box != fv[i].Marker.Box {
			t.Fatalf("violation %d differs with pruning off", i)
		}
	}
	if on.Stats.ChecksReused == 0 {
		t.Error("hierarchy pruning reused nothing")
	}
	if on.Stats.DefsChecked >= off.Stats.DefsChecked {
		t.Errorf("pruning did not reduce definition checks: %d vs %d",
			on.Stats.DefsChecked, off.Stats.DefsChecked)
	}
}

func TestPartitionAblationSameViolations(t *testing.T) {
	lo, _ := loadDesign(t, "uart", 0.7)
	a := runEngine(t, lo, Options{Mode: Parallel, PartitionAlg: partition.Pigeonhole}, synth.Deck())
	b := runEngine(t, lo, Options{Mode: Parallel, PartitionAlg: partition.SortBased}, synth.Deck())
	av := DedupViolations(append([]rules.Violation(nil), a.Violations...))
	bv := DedupViolations(append([]rules.Violation(nil), b.Violations...))
	if len(av) != len(bv) {
		t.Fatalf("partition algorithm changed results: %d vs %d", len(av), len(bv))
	}
}

func TestExecutorThresholdSameViolations(t *testing.T) {
	lo, _ := loadDesign(t, "uart", 0.7)
	deck := rules.Deck{synth.Deck()[8]} // M2.S.1
	brute := runEngine(t, lo, Options{Mode: Parallel, BruteEdgeThreshold: 1 << 30}, deck)
	swp := runEngine(t, lo, Options{Mode: Parallel, BruteEdgeThreshold: 1}, deck)
	bv := DedupViolations(append([]rules.Violation(nil), brute.Violations...))
	sv := DedupViolations(append([]rules.Violation(nil), swp.Violations...))
	if len(bv) != len(sv) {
		t.Fatalf("executor choice changed results: brute %d vs sweep %d", len(bv), len(sv))
	}
	for i := range bv {
		if bv[i].Marker.Box != sv[i].Marker.Box {
			t.Fatalf("marker %d differs between executors", i)
		}
	}
}

func TestMagnifiedIntraChecks(t *testing.T) {
	// A cell with a 16-wide bar instantiated at mag 2: the bar appears 32
	// wide, legal under min 18; at mag 1 it violates. Width thresholds must
	// rescale per instance group.
	lib := &gdsii.Library{
		Name: "mag", UserUnit: 1e-3, MeterUnit: 1e-9,
		Structures: []*gdsii.Structure{
			{
				Name: "BAR",
				Boundaries: []gdsii.Boundary{{
					Layer: int16(layout.LayerM1),
					XY: []geom.Point{
						geom.Pt(0, 0), geom.Pt(0, 100), geom.Pt(16, 100), geom.Pt(16, 0),
					},
				}},
			},
			{
				Name: "TOP",
				SRefs: []gdsii.SRef{
					{Name: "BAR", Pos: geom.Pt(0, 0)},
					{Name: "BAR", Pos: geom.Pt(1000, 0), Trans: gdsii.Trans{Mag: 2}},
				},
			},
		},
	}
	lo, err := layout.FromLibrary(lib)
	if err != nil {
		t.Fatal(err)
	}
	deck := rules.Deck{rules.Layer(layout.LayerM1).Width().AtLeast(18).Named("W")}
	rep := runEngine(t, lo, Options{Mode: Sequential}, deck)
	if n := len(rep.Violations); n != 1 {
		t.Fatalf("violations = %d, want 1 (only the mag-1 instance)", n)
	}
	if rep.Violations[0].Marker.Box != geom.R(0, 0, 16, 100) {
		t.Errorf("violation at %v", rep.Violations[0].Marker.Box)
	}
}

func TestMagnifiedInterRuleRejected(t *testing.T) {
	lib := &gdsii.Library{
		Name: "mag",
		Structures: []*gdsii.Structure{
			{
				Name: "BAR",
				Boundaries: []gdsii.Boundary{{
					Layer: int16(layout.LayerM1),
					XY: []geom.Point{
						geom.Pt(0, 0), geom.Pt(0, 100), geom.Pt(20, 100), geom.Pt(20, 0),
					},
				}},
			},
			{
				Name:  "TOP",
				SRefs: []gdsii.SRef{{Name: "BAR", Pos: geom.Pt(0, 0), Trans: gdsii.Trans{Mag: 3}}},
			},
		},
	}
	lo, err := layout.FromLibrary(lib)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{Mode: Sequential})
	if err := e.AddRules(rules.Layer(layout.LayerM1).Spacing().AtLeast(18)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Check(lo); err == nil {
		t.Error("magnified instance with spacing rule must be rejected")
	}
}

func TestInvalidRuleRejected(t *testing.T) {
	e := New(Options{})
	if err := e.AddRules(rules.Rule{Kind: rules.Width, Min: 0}); err == nil {
		t.Error("invalid rule accepted by AddRules")
	}
}

func TestAnonymousRuleGetsID(t *testing.T) {
	e := New(Options{})
	if err := e.AddRules(rules.Layer(layout.LayerM1).Width().AtLeast(18)); err != nil {
		t.Fatal(err)
	}
	if e.Deck()[0].ID == "" {
		t.Error("anonymous rule has empty ID")
	}
}

func TestReportDeterminism(t *testing.T) {
	lo, _ := loadDesign(t, "uart", 0.6)
	a := runEngine(t, lo, Options{Mode: Sequential}, synth.Deck())
	b := runEngine(t, lo, Options{Mode: Sequential}, synth.Deck())
	if len(a.Violations) != len(b.Violations) {
		t.Fatalf("runs differ: %d vs %d", len(a.Violations), len(b.Violations))
	}
	for i := range a.Violations {
		if a.Violations[i].Marker.Box != b.Violations[i].Marker.Box {
			t.Fatal("violation order not deterministic")
		}
	}
}

func TestProfilerPhasesPresent(t *testing.T) {
	lo, _ := loadDesign(t, "uart", 0.6)
	deck := rules.Deck{synth.Deck()[7]} // M1.S.1
	rep := runEngine(t, lo, Options{Mode: Sequential}, deck)
	if rep.Profile.Get("spacing:sweepline") == 0 && rep.Profile.Get("spacing:cell-checks") == 0 {
		t.Error("spacing phases missing from profile")
	}
}

func TestDedupViolations(t *testing.T) {
	mk := func(rule string, x int64) rules.Violation {
		return rules.Violation{Rule: rule, Marker: checks.Marker{Box: geom.R(x, 0, x+1, 1)}}
	}
	// The duplicate A@1 collapses; A@2 and B@1 stay distinct.
	vs := []rules.Violation{mk("A", 1), mk("A", 1), mk("A", 2), mk("B", 1)}
	out := DedupViolations(vs)
	if len(out) != 3 {
		t.Errorf("dedup = %d, want 3", len(out))
	}
}
