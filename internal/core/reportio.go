package core

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"opendrc/internal/budget"
	"opendrc/internal/layout"
	"opendrc/internal/rules"
)

// Report output — the interface layer's "result output" duty: a stable text
// form for humans and a JSON form for downstream tooling (the paper's
// motivation of serving as infrastructure "for data collection and golden
// result acquiring for ML applications").

// jsonViolation is the serialized form of one violation.
type jsonViolation struct {
	Rule   string `json:"rule"`
	Kind   string `json:"kind"`
	Layer  int16  `json:"layer"`
	XLo    int64  `json:"xlo"`
	YLo    int64  `json:"ylo"`
	XHi    int64  `json:"xhi"`
	YHi    int64  `json:"yhi"`
	Dist   int64  `json:"dist"`
	Corner bool   `json:"corner,omitempty"`
	Cell   string `json:"cell,omitempty"`
}

// jsonFailure is the serialized form of one isolated rule failure. The
// panic stack is deliberately omitted from JSON (it is host-specific and
// would break report comparisons); consumers that need it read the Report
// struct directly. Budget carries the tripped budget structurally
// ({"resource","limit","used"}) when the failure was a budget trip.
type jsonFailure struct {
	Rule           string        `json:"rule"`
	Err            string        `json:"err"`
	Panicked       bool          `json:"panicked,omitempty"`
	BudgetExceeded bool          `json:"budget_exceeded,omitempty"`
	Budget         *budget.Error `json:"budget,omitempty"`
}

// jsonReport is the serialized form of a check run.
type jsonReport struct {
	Mode        string          `json:"mode"`
	Degraded    bool            `json:"degraded,omitempty"`
	Failures    []jsonFailure   `json:"failures,omitempty"`
	Violations  []jsonViolation `json:"violations"`
	CountByRule map[string]int  `json:"count_by_rule"`
	HostWallUS  int64           `json:"host_wall_us"`
	ModeledUS   int64           `json:"modeled_us"`
	Stats       Stats           `json:"stats"`
}

// WriteJSON serializes the report for downstream tools.
func (r *Report) WriteJSON(w io.Writer) error {
	out := jsonReport{
		Mode:        r.Mode.String(),
		Degraded:    r.Degraded,
		Violations:  make([]jsonViolation, 0, len(r.Violations)),
		CountByRule: r.CountByRule(),
		HostWallUS:  r.HostWall.Microseconds(),
		ModeledUS:   r.Modeled.Microseconds(),
		Stats:       r.Stats,
	}
	for _, f := range r.Failures {
		out.Failures = append(out.Failures, jsonFailure{
			Rule: f.Rule, Err: f.Err,
			Panicked: f.Panicked, BudgetExceeded: f.BudgetExceeded,
			Budget: f.Budget,
		})
	}
	for _, v := range r.Violations {
		out.Violations = append(out.Violations, jsonViolation{
			Rule: v.Rule, Kind: v.Kind.String(), Layer: int16(v.Layer),
			XLo: v.Marker.Box.XLo, YLo: v.Marker.Box.YLo,
			XHi: v.Marker.Box.XHi, YHi: v.Marker.Box.YHi,
			Dist: v.Marker.Dist, Corner: v.Marker.Corner, Cell: v.Cell,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// jsonCanonical is the configuration-independent serialized form: the check
// verdict alone. It drops everything a run's environment perturbs — host and
// modeled timings, and the scheduling/cache counters in Stats (a resident
// session's cache hits where a batch run misses) — so the same layout and
// deck produce byte-identical output from the batch CLI, a cold session,
// and a warm session. The byte-diff the service smoke test runs is this
// form.
type jsonCanonical struct {
	Mode        string          `json:"mode"`
	Degraded    bool            `json:"degraded,omitempty"`
	Failures    []jsonFailure   `json:"failures,omitempty"`
	Violations  []jsonViolation `json:"violations"`
	CountByRule map[string]int  `json:"count_by_rule"`
}

// WriteCanonicalJSON serializes the report's canonical form: violations
// (already deterministically sorted), failures, and per-rule counts, with
// no timing or statistics. encoding/json emits map keys sorted, so the
// output is a pure function of the check verdict.
func (r *Report) WriteCanonicalJSON(w io.Writer) error {
	out := jsonCanonical{
		Mode:        r.Mode.String(),
		Degraded:    r.Degraded,
		Violations:  make([]jsonViolation, 0, len(r.Violations)),
		CountByRule: r.CountByRule(),
	}
	for _, f := range r.Failures {
		out.Failures = append(out.Failures, jsonFailure{
			Rule: f.Rule, Err: f.Err,
			Panicked: f.Panicked, BudgetExceeded: f.BudgetExceeded,
			Budget: f.Budget,
		})
	}
	for _, v := range r.Violations {
		out.Violations = append(out.Violations, jsonViolation{
			Rule: v.Rule, Kind: v.Kind.String(), Layer: int16(v.Layer),
			XLo: v.Marker.Box.XLo, YLo: v.Marker.Box.YLo,
			XHi: v.Marker.Box.XHi, YHi: v.Marker.Box.YHi,
			Dist: v.Marker.Dist, Corner: v.Marker.Corner, Cell: v.Cell,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteText renders a human-readable report: a per-rule summary followed by
// one line per violation.
func (r *Report) WriteText(w io.Writer, deck rules.Deck) error {
	if _, err := fmt.Fprintf(w, "%d violations in %v (%s mode)\n",
		len(r.Violations), r.HostWall.Round(time.Microsecond), r.Mode); err != nil {
		return err
	}
	if r.Degraded {
		if _, err := fmt.Fprintf(w, "DEGRADED: %d rule(s) failed; their results are excluded\n",
			len(r.Failures)); err != nil {
			return err
		}
		for _, f := range r.Failures {
			if _, err := fmt.Fprintf(w, "  FAILED %-14s %s\n", f.Rule, f.Err); err != nil {
				return err
			}
		}
	}
	counts := r.CountByRule()
	for _, rule := range deck {
		if _, err := fmt.Fprintf(w, "  %-14s %6d\n", rule.ID, counts[rule.ID]); err != nil {
			return err
		}
	}
	for _, v := range r.Violations {
		cell := v.Cell
		if cell == "" {
			cell = "-"
		}
		if _, err := fmt.Fprintf(w, "%-14s %-4s %v d=%d cell=%s\n",
			v.Rule, layout.LayerName(v.Layer), v.Marker.Box, v.Marker.Dist, cell); err != nil {
			return err
		}
	}
	return nil
}
