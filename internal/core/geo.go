package core

import (
	"context"
	"fmt"

	"opendrc/internal/budget"
	"opendrc/internal/faults"
	"opendrc/internal/geocache"
	"opendrc/internal/kernels"
	"opendrc/internal/layout"
	"opendrc/internal/partition"
	"opendrc/internal/sweep"
	"opendrc/internal/trace"
)

// geoSource is the engine's per-run view of the geometry reuse layer: the
// shared cross-rule cache when enabled, or uncached computation with
// identical budget and fault-injection semantics when disabled
// (Options.DisableGeoCache). Both paths return geometry in the same
// canonical flatten order, so reports are bit-identical across cache
// configurations.
type geoSource struct {
	cache  *geocache.Cache // nil when the cache is disabled
	arena  *geocache.Arena // the cache's arena, or a standalone one
	sweeps sweep.Pool      // per-run recycled sweepline scratch
	limits budget.Limits
	inj    *faults.Injector
}

// newGeoSource builds the run's geometry source from the engine options,
// wiring the flatten fault seam and the trace recorder's geocache track
// into the cache.
func newGeoSource(opts Options, rec *trace.Recorder) *geoSource {
	g := &geoSource{limits: opts.Budgets, inj: opts.Faults}
	if !opts.DisableGeoCache {
		g.cache = geocache.New(opts.Budgets)
		g.arena = g.cache.Arena()
		if inj := opts.Faults; inj != nil {
			g.cache.SetFaultHook(func(ctx context.Context, l layout.Layer) error {
				return inj.Hit(ctx, faults.SiteFlatten, layerKey(l))
			})
		}
		if rec != nil {
			g.cache.SetEventHook(func(ev geocache.Event) {
				result := "miss"
				if ev.Hit {
					result = "hit"
				}
				rec.Instant(trace.TrackGeocache, "", ev.Op+":"+ev.Key, "geocache",
					trace.Arg{Key: "result", Val: result})
			})
		}
	}
	if g.arena == nil {
		// Scratch recycling is orthogonal to result memoization: the
		// cache-off ablation still reuses buffers, it just recomputes
		// results. Only the cached tables themselves are allowed to differ
		// in cost between the two configurations.
		g.arena = geocache.NewArena()
	}
	return g
}

// layerKey is the deterministic fault-injection key of a layer's flatten.
func layerKey(l layout.Layer) string { return fmt.Sprintf("layer#%d", int(l)) }

// flatten returns the layer's instance-expanded polygons in canonical order,
// through the cache when enabled. The uncached path applies the same fault
// seam and flatten-polys budget, so a given deck degrades identically in
// both configurations.
func (g *geoSource) flatten(ctx context.Context, lo *layout.Layout, l layout.Layer) ([]layout.PlacedPoly, error) {
	if g.cache != nil {
		return g.cache.Flatten(ctx, lo, l)
	}
	if err := g.inj.Hit(ctx, faults.SiteFlatten, layerKey(l)); err != nil {
		return nil, err
	}
	polys := lo.FlattenLayer(l)
	if err := budget.Check("flatten-polys", int64(len(polys)), g.limits.MaxFlattenPolys); err != nil {
		return nil, err
	}
	return polys, nil
}

// packFrom returns the layer's packed edge buffer in canonical order. The
// caller passes the polys it already obtained from flatten so the uncached
// path packs them directly (one flatten per rule, as before the cache);
// with the cache enabled the memoized buffer — built from the same cached
// flatten — is returned instead.
func (g *geoSource) packFrom(ctx context.Context, lo *layout.Layout, l layout.Layer, polys []layout.PlacedPoly) (*kernels.Edges, error) {
	if g.cache != nil {
		return g.cache.Pack(ctx, lo, l)
	}
	shapes := g.arena.Polys(len(polys))
	for i := range polys {
		shapes = append(shapes, polys[i].Shape)
	}
	edges := kernels.Pack(shapes)
	g.arena.PutPolys(shapes)
	return edges, nil
}

// rows returns the layer's adaptive row partition for the given interaction
// reach. The cached path memoizes per (layer, guard, alg) — the prefetcher
// computes the entry while the previous rule's kernels run — and the
// uncached path derives the MBR table from the caller's polys per rule, as
// before the cache existed. Both produce identical rows.
func (g *geoSource) rows(ctx context.Context, lo *layout.Layout, l layout.Layer, guard int64, alg partition.Algorithm, polys []layout.PlacedPoly) ([]partition.Row, error) {
	if g.cache != nil {
		return g.cache.Rows(ctx, lo, l, guard, alg)
	}
	boxes := g.arena.Rects(len(polys))
	for i := range polys {
		boxes = append(boxes, polys[i].Shape.MBR())
	}
	rows := partition.Rows(boxes, guard, alg)
	g.arena.PutRects(boxes)
	return rows, nil
}
