package core

import (
	"context"
	"fmt"

	"opendrc/internal/checks"
	"opendrc/internal/faults"
	"opendrc/internal/geom"
	"opendrc/internal/layout"
	"opendrc/internal/partition"
	"opendrc/internal/pool"
	"opendrc/internal/rules"
	"opendrc/internal/trace"
)

// Sequential inter-polygon spacing (Sections IV-C and IV-D).
//
// Every violating polygon pair has a unique lowest-common-ancestor cell
// *definition*: the deepest cell whose frame contains both polygons' paths.
// Computing each definition's violation set once and replaying it for every
// instance is exactly the paper's memoization — "only if (aᴹ, aᴺ) has been
// checked, OpenDRC marks it down for possible reuse", with the same-parent
// caveat handled because relative positions inside one definition are fixed.
// Per definition, candidate pairs come from the standard sweepline over
// rule-distance-expanded MBRs; pairs whose expanded MBRs are disjoint are
// never generated ("MBRᴹₐ ∩ MBRᴺᵦ = ∅ ... the check could be eliminated"),
// and unordered pairs appear once (the id-ordering rule).

// spaceItem is one sweepline participant inside a cell definition: either a
// local polygon or one placement of a child reference.
type spaceItem struct {
	polyIdx int // local polygon index, or -1
	child   *layout.Cell
	place   geom.Transform // child placement (ref items)
}

// runSpacingSeq executes one spacing rule sequentially. The pruned path
// never flattens (the hierarchy is the point), so only the pruning-off
// ablation consults the geometry source.
func (e *Engine) runSpacingSeq(ctx context.Context, lo *layout.Layout, r rules.Rule, placements [][]geom.Transform, rep *Report, geo *geoSource) error {
	if e.opts.DisablePruning {
		return e.runSpacingFlat(ctx, lo, r, rep, geo)
	}
	// Each definition appears once in the layer tree, so computing inside
	// this loop *is* the memoization: the result replays per instance.
	rp := e.restrictFor(r.ID)
	for _, c := range lo.LayerCells(r.Layer) {
		if err := ctx.Err(); err != nil {
			return err
		}
		if len(placements[c.ID]) == 0 {
			continue
		}
		// Delta restriction: every marker of this definition lies inside its
		// subtree layer MBR, so a definition with no instance near the dirty
		// region contributes nothing claimable and is skipped whole.
		if rp != nil && !rp.anyPlacementNear(c.LayerMBR(r.Layer), placements[c.ID]) {
			continue
		}
		markers, err := e.cellSpacingMarkers(ctx, lo, c, r, rep, geo, rp, placements[c.ID])
		if err != nil {
			return err
		}
		rep.Stats.DefsChecked++
		for _, t := range placements[c.ID] {
			rep.Stats.InstancesEmitted++
			e.emitMarkers(rep, r, c.Name, markers, t)
		}
	}
	return nil
}

// cellSpacingMarkers computes the spacing violations whose LCA is the cell
// definition c, in c's local frame: pairs among local polygons, pairs
// between local polygons and child subtrees, pairs between sibling child
// subtrees, and the notches of local polygons. Following the paper's flow
// (Fig. 1 / Fig. 4), the cell's participants are first split into
// independent rows by the adaptive partition, then each row runs the MBR
// sweepline, and surviving pairs get edge-to-edge checks.
func (e *Engine) cellSpacingMarkers(ctx context.Context, lo *layout.Layout, c *layout.Cell, r rules.Rule, rep *Report, geo *geoSource, rp *rulePlan, insts []geom.Transform) ([]checks.Marker, error) {
	lim := r.SpacingLimit()
	min := lim.Reach()
	var out []checks.Marker
	emit := func(m checks.Marker) { out = append(out, m) }

	// near translates the delta restriction into this definition's local
	// frame: a local box matters only if some instance maps it near the
	// dirty region. Inter-polygon rules reject magnified references, so the
	// instance transforms here are rigid and map boxes to boxes exactly.
	near := func(localBox geom.Rect) bool {
		return rp == nil || rp.anyPlacementNear(localBox, insts)
	}

	// Notches of local polygons belong to this definition.
	stopChecks := rep.Profile.Phase("spacing:edge-checks")
	for _, pi := range c.LocalPolyIndex(r.Layer) {
		if p := c.Polys[pi].Shape; near(p.MBR()) {
			checks.CheckNotchLim(p, lim, emit)
		}
	}
	stopChecks()

	// Sweepline participants: raw layer MBRs for partitioning, expanded
	// MBRs ("enlarged by a minimum rule distance") for pair generation.
	// Both MBR lists are scratch — this loop runs once per cell definition
	// per rule, so they recycle through the run's arena.
	var items []spaceItem
	raw := geo.arena.Rects(len(c.Polys))
	boxes := geo.arena.Rects(len(c.Polys))
	defer func() {
		geo.arena.PutRects(raw)
		geo.arena.PutRects(boxes)
	}()
	for _, pi := range c.LocalPolyIndex(r.Layer) {
		items = append(items, spaceItem{polyIdx: int(pi)})
		mbr := c.Polys[pi].Shape.MBR()
		raw = append(raw, mbr)
		boxes = append(boxes, mbr.Expand(min))
	}
	for ri := range c.Refs {
		ref := &c.Refs[ri]
		childR := ref.Child.LayerMBR(r.Layer)
		if childR.Empty() {
			continue
		}
		ref.ForEachPlacement(func(t geom.Transform) {
			items = append(items, spaceItem{polyIdx: -1, child: ref.Child, place: t})
			mbr := t.ApplyRect(childR)
			raw = append(raw, mbr)
			boxes = append(boxes, mbr.Expand(min))
		})
	}
	if len(items) < 2 {
		return out, nil
	}

	// Adaptive row partition: rows separated by more than the rule reach
	// cannot interact, so each row sweeps independently.
	stopPart := rep.Profile.Phase("spacing:partition")
	rows := partition.Rows(raw, min, e.opts.PartitionAlg)
	stopPart()

	// Row independence is exactly what the worker pool needs: each row runs
	// its sweepline and edge checks on a worker, writing markers and
	// counters into its own recycled shard; shards merge in row order so the
	// result is bit-identical for every worker count.
	span := c.LayerMBR(r.Layer)
	tbl := e.shards.get(len(rows))
	err := pool.ForEachCtx(trace.WithTask(ctx, "row"), e.opts.Workers, len(rows), func(ri int) error {
		row := rows[ri]
		if err := e.opts.Faults.Hit(ctx, faults.SiteRow,
			fmt.Sprintf("%s/%s/row#%d", r.ID, c.Name, ri)); err != nil {
			return err
		}
		if len(row.Members) < 2 {
			return nil
		}
		// Delta restriction: pair markers lie between their two members, so
		// the whole row's output fits inside its y-band — a band no instance
		// maps near the dirty region re-derives nothing claimable.
		if !near(geom.Rect{XLo: span.XLo, YLo: row.YLo, XHi: span.XHi, YHi: row.YHi}) {
			return nil
		}
		res := &tbl.s[ri]
		remit := func(m checks.Marker) { res.markers = append(res.markers, m) }
		// Row scratch recycles through the arena: each worker draws its own
		// buffers (the pools are concurrency-safe), and the sweepline keeps
		// nothing — the interval tree copies its coordinate skeleton — so
		// both go back as soon as the row is done with them.
		rowBoxes := geo.arena.Rects(len(row.Members))
		for _, mi := range row.Members {
			rowBoxes = append(rowBoxes, boxes[mi])
		}
		stopSweep := rep.Profile.Phase("spacing:sweepline")
		pairs := geo.arena.Pairs()
		defer func() { geo.arena.PutPairs(pairs) }()
		_, err := geo.sweeps.Overlaps(rowBoxes, func(a, b int) {
			pairs = append(pairs, [2]int{row.Members[a], row.Members[b]})
		})
		stopSweep()
		geo.arena.PutRects(rowBoxes)
		if err != nil {
			return err
		}
		res.stats.PairsConsidered += len(pairs)

		stopRowChecks := rep.Profile.Phase("spacing:edge-checks")
		defer stopRowChecks()
		for _, pr := range pairs {
			a, b := items[pr[0]], items[pr[1]]
			switch {
			case a.polyIdx >= 0 && b.polyIdx >= 0:
				res.stats.PairsChecked++
				checks.CheckSpacingLim(c.Polys[a.polyIdx].Shape, c.Polys[b.polyIdx].Shape, lim, remit)
			case a.polyIdx >= 0:
				e.spacingPolyVsSubtree(lo, c, a.polyIdx, b, r.Layer, lim, &res.stats, remit)
			case b.polyIdx >= 0:
				e.spacingPolyVsSubtree(lo, c, b.polyIdx, a, r.Layer, lim, &res.stats, remit)
			default:
				e.spacingSubtreeVsSubtree(lo, a, b, r.Layer, lim, &res.stats, remit)
			}
		}
		return nil
	})
	if err != nil {
		tbl.discard()
		return nil, err
	}
	return tbl.mergeMarkers(out, rep), nil
}

// collectSubtree returns the layer polygons of item's child subtree, in the
// parent cell's frame, restricted to those whose MBR intersects the window
// (also parent frame). Counters accumulate into st, which is a per-row
// shard during the fan-out.
func collectSubtree(lo *layout.Layout, it spaceItem, l layout.Layer, window geom.Rect, st *Stats) []geom.Polygon {
	st.SubtreeQueries++
	childWindow := it.place.Inverse().ApplyRect(window)
	found := lo.QuerySubtree(it.child, l, childWindow)
	out := make([]geom.Polygon, len(found))
	for i, pp := range found {
		out[i] = pp.Shape.Transform(it.place)
	}
	return out
}

func (e *Engine) spacingPolyVsSubtree(lo *layout.Layout, c *layout.Cell, polyIdx int, ref spaceItem, l layout.Layer, lim checks.SpacingLimit, st *Stats, emit func(checks.Marker)) {
	p := c.Polys[polyIdx].Shape
	near := collectSubtree(lo, ref, l, p.MBR().Expand(lim.Reach()), st)
	for _, q := range near {
		st.PairsChecked++
		checks.CheckSpacingLim(p, q, lim, emit)
	}
}

func (e *Engine) spacingSubtreeVsSubtree(lo *layout.Layout, a, b spaceItem, l layout.Layer, lim checks.SpacingLimit, st *Stats, emit func(checks.Marker)) {
	// Polygons of A near B's box, and vice versa; a violating pair (p, q)
	// has p within reach of q, so p intersects B's expanded box and q
	// intersects A's expanded box.
	reach := lim.Reach()
	aBox := a.place.ApplyRect(a.child.LayerMBR(l)).Expand(reach)
	bBox := b.place.ApplyRect(b.child.LayerMBR(l)).Expand(reach)
	pa := collectSubtree(lo, a, l, bBox, st)
	if len(pa) == 0 {
		return
	}
	pb := collectSubtree(lo, b, l, aBox, st)
	for _, p := range pa {
		pm := p.MBR().Expand(reach)
		for _, q := range pb {
			if !pm.Overlaps(q.MBR()) {
				continue
			}
			st.PairsChecked++
			checks.CheckSpacingLim(p, q, lim, emit)
		}
	}
}

// runSpacingFlat is the pruning-off ablation: instance-expand the whole
// layer and sweep globally. The flatten is subject to the flatten-polys
// budget (applied inside the geometry source) — the ablation materializes
// every instance, which is exactly the blow-up the budget exists to catch.
// With the cache enabled, spacing rules sharing a layer flatten it once.
func (e *Engine) runSpacingFlat(ctx context.Context, lo *layout.Layout, r rules.Rule, rep *Report, geo *geoSource) error {
	defer rep.Profile.Phase("spacing:flat")()
	lim := r.SpacingLimit()
	polys, err := geo.flatten(ctx, lo, r.Layer)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	boxes := geo.arena.Rects(len(polys))
	for i := range polys {
		boxes = append(boxes, polys[i].Shape.MBR().Expand(lim.Reach()))
	}
	defer geo.arena.PutRects(boxes)
	emit := func(m checks.Marker) {
		rep.Violations = append(rep.Violations, rules.Violation{
			Rule: r.ID, Kind: r.Kind, Layer: r.Layer, Marker: m,
		})
	}
	for i := range polys {
		rep.Stats.PairsChecked++
		checks.CheckNotchLim(polys[i].Shape, lim, emit)
	}
	_, err = geo.sweeps.Overlaps(boxes, func(a, b int) {
		rep.Stats.PairsConsidered++
		rep.Stats.PairsChecked++
		checks.CheckSpacingLim(polys[a].Shape, polys[b].Shape, lim, emit)
	})
	if err != nil {
		return err
	}
	rep.Stats.DefsChecked += len(polys)
	rep.Stats.InstancesEmitted += len(polys)
	return nil
}
