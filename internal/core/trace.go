package core

import (
	"fmt"
	"sort"
	"time"

	"opendrc/internal/gpu"
	"opendrc/internal/pool"
	"opendrc/internal/trace"
)

// modeledSpan is one host phase mapped onto the modeled device clock —
// the host side of the overlap analysis, in the device's clock domain.
type modeledSpan struct {
	name string
	s, e time.Duration
}

// ruleWindow brackets one rule's execution: m0/m1 on the modeled clock
// (parallel mode) or the profiler clock (sequential), c0/c1 the device
// record-sequence watermarks (parallel), host the host time charged inside
// the window on the same clock as m0/m1.
type ruleWindow struct {
	rule   string
	m0, m1 time.Duration
	c0, c1 int
	host   time.Duration
}

// RuleTiming is one rule's row in the trace summary.
type RuleTiming struct {
	Rule     string
	SpanUS   int64 // rule start → last attributable device op (its critical path)
	HostUS   int64 // host time charged inside the window
	DeviceUS int64 // device busy time from ops the rule enqueued (parallel mode)
}

// TraceSummary condenses the run timeline into the three numbers the
// paper's overlap argument turns on — device utilization, host/device
// overlap, and the per-rule critical path. Parallel-mode values are on the
// modeled clock; sequential-mode values on the host clock. Times are
// microseconds. The summary holds measured durations, so Stats excludes it
// from JSON serialization.
type TraceSummary struct {
	ModeledUS     int64        // modeled end-to-end (= host wall in sequential mode)
	HostBusyUS    int64        // union of host work spans
	DeviceBusyUS  int64        // union of kernel+copy intervals across streams
	DeviceBusyPct float64      // DeviceBusy / Modeled
	OverlapUS     int64        // host∩device busy time
	OverlapPct    float64      // Overlap / min(HostBusy, DeviceBusy)
	Rules         []RuleTiming // deck order
}

// Critical returns the rule with the longest span (zero RuleTiming when the
// deck is empty).
func (s *TraceSummary) Critical() RuleTiming {
	var best RuleTiming
	for _, r := range s.Rules {
		if r.SpanUS > best.SpanUS || best.Rule == "" {
			best = r
		}
	}
	return best
}

// String renders the compact form printed by odrc -stats.
func (s *TraceSummary) String() string {
	if s == nil {
		return "<no trace>"
	}
	crit := s.Critical()
	return fmt.Sprintf("device busy %.1f%%, host/device overlap %.1f%%, critical rule %s (%dus of %d rules)",
		s.DeviceBusyPct*100, s.OverlapPct*100, crit.Rule, crit.SpanUS, len(s.Rules))
}

// interval is a half-open busy range on one clock.
type interval struct{ s, e time.Duration }

// unionIntervals merges overlapping/abutting intervals; returns a sorted
// disjoint set.
func unionIntervals(ivs []interval) []interval {
	if len(ivs) == 0 {
		return nil
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].s != ivs[j].s {
			return ivs[i].s < ivs[j].s
		}
		return ivs[i].e < ivs[j].e
	})
	out := []interval{ivs[0]}
	for _, iv := range ivs[1:] {
		cur := &out[len(out)-1]
		if iv.s > cur.e {
			out = append(out, iv)
			continue
		}
		if iv.e > cur.e {
			cur.e = iv.e
		}
	}
	return out
}

// totalIntervals sums a disjoint interval set.
func totalIntervals(ivs []interval) time.Duration {
	var t time.Duration
	for _, iv := range ivs {
		t += iv.e - iv.s
	}
	return t
}

// intersectLen returns how much of [s, e) lies inside the disjoint set.
func intersectLen(ivs []interval, s, e time.Duration) time.Duration {
	var t time.Duration
	for _, iv := range ivs {
		lo, hi := iv.s, iv.e
		if lo < s {
			lo = s
		}
		if hi > e {
			hi = e
		}
		if hi > lo {
			t += hi - lo
		}
	}
	return t
}

// busyIntervals collects the kernel+copy intervals of records whose enqueue
// sequence lies in [c0, c1); pass c0=0, c1=len to cover the whole timeline.
func busyIntervals(recs []gpu.Record, c0, c1 int) []interval {
	var ivs []interval
	for _, r := range recs {
		if int(r.Seq) < c0 || int(r.Seq) >= c1 {
			continue
		}
		if r.Kind == gpu.OpKernel || r.Kind == gpu.OpCopy {
			ivs = append(ivs, interval{r.Start, r.End})
		}
	}
	return unionIntervals(ivs)
}

// buildTraceSummary derives the run's TraceSummary from the captured rule
// windows, modeled host spans, and the device timeline.
func buildTraceSummary(rep *Report) *TraceSummary {
	s := &TraceSummary{ModeledUS: rep.Modeled.Microseconds()}
	if rep.Device == nil {
		s.HostBusyUS = rep.HostWall.Microseconds()
		for _, w := range rep.ruleWindows {
			s.Rules = append(s.Rules, RuleTiming{
				Rule:   w.rule,
				SpanUS: (w.m1 - w.m0).Microseconds(),
				HostUS: w.host.Microseconds(),
			})
		}
		return s
	}
	recs := rep.Device.Timeline()
	// Cover every retained record: sequence numbers are monotonic over the
	// device's lifetime, so on a session device (timeline trimmed between
	// checks) they start above len(recs) — bound by the device's own count,
	// not the slice length.
	busy := busyIntervals(recs, 0, rep.Device.OpCount())
	db := totalIntervals(busy)
	s.DeviceBusyUS = db.Microseconds()
	if rep.Modeled > 0 {
		s.DeviceBusyPct = float64(db) / float64(rep.Modeled)
	}
	var hb, ov time.Duration
	for _, h := range rep.hostSpans {
		hb += h.e - h.s
		ov += intersectLen(busy, h.s, h.e)
	}
	s.HostBusyUS = hb.Microseconds()
	s.OverlapUS = ov.Microseconds()
	den := hb
	if db < den {
		den = db
	}
	if den > 0 {
		s.OverlapPct = float64(ov) / float64(den)
	}
	for _, w := range rep.ruleWindows {
		rt := RuleTiming{Rule: w.rule, HostUS: w.host.Microseconds()}
		ruleBusy := busyIntervals(recs, w.c0, w.c1)
		rt.DeviceUS = totalIntervals(ruleBusy).Microseconds()
		end := w.m1
		if n := len(ruleBusy); n > 0 && ruleBusy[n-1].e > end {
			end = ruleBusy[n-1].e
		}
		rt.SpanUS = (end - w.m0).Microseconds()
		s.Rules = append(s.Rules, rt)
	}
	return s
}

// exportRunTrace emits the run-level tracks that only exist after the check
// finishes: run metadata and, in parallel mode, the device process — the
// modeled-host track, every stream's operations, and the event-wait flow
// edges. (Phases, rules, geocache, and pool tracks were recorded live.)
func exportRunTrace(rec *trace.Recorder, rep *Report, opts Options) {
	rec.SetMeta("mode", rep.Mode.String())
	rec.SetMeta("workers", pool.Workers(opts.Workers))
	rec.SetMeta("host_wall_us", rep.HostWall.Microseconds())
	rec.SetMeta("modeled_us", rep.Modeled.Microseconds())
	if rep.Stats.Trace != nil {
		rec.SetMeta("summary", rep.Stats.Trace.String())
	}
	if rep.Device == nil {
		return
	}
	rec.SetMeta("device", rep.Device.Props().Name)
	for _, h := range rep.hostSpans {
		rec.Span(trace.TrackDevice, "host", h.name, "host-modeled", h.s, h.e)
	}
	for _, r := range rep.Device.Timeline() {
		switch r.Kind {
		case gpu.OpKernel:
			rec.Span(trace.TrackDevice, r.Stream, r.Name, string(r.Kind), r.Start, r.End,
				trace.Arg{Key: "seq", Val: r.Seq},
				trace.Arg{Key: "threads", Val: r.Threads},
				trace.Arg{Key: "ops", Val: r.Ops})
		case gpu.OpCopy:
			rec.Span(trace.TrackDevice, r.Stream, r.Name, string(r.Kind), r.Start, r.End,
				trace.Arg{Key: "seq", Val: r.Seq},
				trace.Arg{Key: "bytes", Val: r.Bytes})
		case gpu.OpAlloc, gpu.OpFree:
			rec.InstantAt(trace.TrackDevice, r.Stream, r.Name, string(r.Kind), r.Start,
				trace.Arg{Key: "seq", Val: r.Seq},
				trace.Arg{Key: "bytes", Val: r.Bytes})
		default: // sync
			rec.InstantAt(trace.TrackDevice, r.Stream, r.Name, string(r.Kind), r.Start,
				trace.Arg{Key: "seq", Val: r.Seq})
		}
	}
	for _, w := range rep.Device.WaitEdges() {
		rec.FlowAt(trace.TrackDevice, w.From, w.To, "event-wait", "dep", w.At, w.At,
			trace.Arg{Key: "event", Val: w.ID})
	}
}
