package core

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"opendrc/internal/synth"
	"opendrc/internal/trace"
)

// tickClock returns an injectable clock advancing 1µs per reading —
// schedule-independent as long as readers are sequential (workers=1).
func tickClock() func() time.Duration {
	var mu sync.Mutex
	var now time.Duration
	return func() time.Duration {
		mu.Lock()
		defer mu.Unlock()
		now += time.Microsecond
		return now
	}
}

// fixedClock never advances: every reading is identical, so even racing
// readers record identical content.
func fixedClock() func() time.Duration {
	return func() time.Duration { return 0 }
}

// exportTrace runs the deck with a recorder attached and returns the
// exported bytes plus the report.
func exportTrace(t *testing.T, mode Mode, workers int, clock func() time.Duration) ([]byte, *Report) {
	t.Helper()
	lo, _, err := synth.Load("uart", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewWithClock(clock)
	rep := runEngine(t, lo, Options{Mode: mode, Workers: workers, Trace: rec}, synth.Deck())
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), rep
}

// TestTraceExportByteIdentical pins the determinism contract: repeated runs
// at the same worker count under an injectable clock export byte-identical
// files. Sequential mode uses a ticking clock on the inline path; parallel
// mode uses a fixed clock so concurrent pool workers record identical
// content regardless of scheduling.
func TestTraceExportByteIdentical(t *testing.T) {
	cases := []struct {
		name    string
		mode    Mode
		workers int
		clock   func() func() time.Duration
	}{
		{"seq-1worker-ticking", Sequential, 1, tickClock},
		{"par-1worker-ticking", Parallel, 1, tickClock},
		{"par-4workers-fixed", Parallel, 4, fixedClock},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, _ := exportTrace(t, tc.mode, tc.workers, tc.clock())
			b, _ := exportTrace(t, tc.mode, tc.workers, tc.clock())
			if !bytes.Equal(a, b) {
				t.Errorf("repeated runs exported different bytes (%d vs %d)", len(a), len(b))
			}
		})
	}
}

// TestTraceExportValidates runs both modes through the structural schema
// gate and checks the expected processes appear.
func TestTraceExportValidates(t *testing.T) {
	seq, _ := exportTrace(t, Sequential, 1, tickClock())
	info, err := trace.Validate(bytes.NewReader(seq))
	if err != nil {
		t.Fatalf("sequential export invalid: %v", err)
	}
	if !hasProc(info.Processes, "host") || !hasProc(info.Processes, "pool") {
		t.Errorf("sequential processes = %v, want host and pool", info.Processes)
	}
	if hasProc(info.Processes, "device (modeled)") {
		t.Error("sequential export grew a device process")
	}

	par, _ := exportTrace(t, Parallel, 2, fixedClock())
	info, err = trace.Validate(bytes.NewReader(par))
	if err != nil {
		t.Fatalf("parallel export invalid: %v", err)
	}
	for _, want := range []string{"host", "pool", "device (modeled)"} {
		if !hasProc(info.Processes, want) {
			t.Errorf("parallel processes = %v, missing %q", info.Processes, want)
		}
	}
}

func hasProc(procs []string, name string) bool {
	for _, p := range procs {
		if p == name {
			return true
		}
	}
	return false
}

// TestTraceReportIdentity: attaching a recorder must not change the report.
// The canonical serialization (violations + stats; TraceSummary is excluded
// from Stats' JSON) must be byte-identical with tracing on and off.
func TestTraceReportIdentity(t *testing.T) {
	lo, _, err := synth.Load("uart", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	deck := synth.Deck()
	for _, mode := range []Mode{Sequential, Parallel} {
		plain := runEngine(t, lo, Options{Mode: mode, Workers: 2}, deck)
		traced := runEngine(t, lo, Options{Mode: mode, Workers: 2, Trace: trace.NewWithClock(fixedClock())}, deck)
		if !bytes.Equal(canonicalReport(t, plain), canonicalReport(t, traced)) {
			t.Errorf("%s: tracing changed the canonical report", mode)
		}
		if plain.Stats.Trace != nil {
			t.Errorf("%s: untraced run grew a TraceSummary", mode)
		}
		if traced.Stats.Trace == nil {
			t.Errorf("%s: traced run has no TraceSummary", mode)
		}
	}
}

func TestTraceSummaryParallel(t *testing.T) {
	_, rep := exportTrace(t, Parallel, 1, tickClock())
	s := rep.Stats.Trace
	if s == nil {
		t.Fatal("no TraceSummary on a traced run")
	}
	if s.DeviceBusyUS <= 0 {
		t.Error("parallel run reports zero device busy time")
	}
	if s.ModeledUS <= 0 {
		t.Error("zero modeled time")
	}
	if got, want := len(s.Rules), len(synth.Deck()); got != want {
		t.Fatalf("summary has %d rules, deck has %d", got, want)
	}
	for _, r := range s.Rules {
		if r.SpanUS < r.DeviceUS {
			t.Errorf("rule %s: span %dus < device busy %dus", r.Rule, r.SpanUS, r.DeviceUS)
		}
	}
	if crit := s.Critical(); crit.Rule == "" {
		t.Error("no critical rule")
	}
	if s.String() == "<no trace>" {
		t.Error("String rendered the nil form")
	}
}

func TestTraceSummarySequential(t *testing.T) {
	_, rep := exportTrace(t, Sequential, 1, tickClock())
	s := rep.Stats.Trace
	if s == nil {
		t.Fatal("no TraceSummary on a traced run")
	}
	if s.DeviceBusyUS != 0 {
		t.Errorf("sequential run reports device busy %dus", s.DeviceBusyUS)
	}
	if s.HostBusyUS <= 0 {
		t.Error("sequential run reports zero host busy time")
	}
	if got, want := len(s.Rules), len(synth.Deck()); got != want {
		t.Fatalf("summary has %d rules, deck has %d", got, want)
	}
}

// TestTraceNilSummaryString covers the -stats path on an untraced report.
func TestTraceNilSummaryString(t *testing.T) {
	var s *TraceSummary
	if got := s.String(); got != "<no trace>" {
		t.Errorf("nil summary String = %q", got)
	}
}
