// Package xcheck re-implements the GPU design rule checker X-Check that the
// paper compares against, on the same simulated device as OpenDRC's
// parallel mode — so any performance gap between them comes purely from
// algorithmic structure, exactly the comparison the paper makes. Following
// X-Check's vertical sweeping (their Section 4.1, which the paper also
// re-implemented): the layout is *fully flattened*, all edges are packed
// into one device buffer, a scan kernel determines each edge's check range
// in the sorted order, and a check kernel tests each edge against every
// edge in its range. There is no hierarchy reuse, no row partition, and no
// MBR-pair pruning; minimum-area rules are unsupported ("X-Check is unable
// to perform area checks").
package xcheck

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"opendrc/internal/checks"
	"opendrc/internal/geom"
	"opendrc/internal/gpu"
	"opendrc/internal/kernels"
	"opendrc/internal/layout"
	"opendrc/internal/rules"
	"opendrc/internal/sweep"
)

// ErrUnsupported marks rules X-Check cannot run (minimum area, custom
// predicates).
var ErrUnsupported = errors.New("xcheck: rule kind not supported")

// Options configure a run.
type Options struct {
	Device gpu.Props // zero value selects the GTX 1660 Ti model
}

// Result is the outcome of one rule check.
type Result struct {
	Violations []rules.Violation
	// Wall is the measured host wall time (functional kernel execution
	// included).
	Wall time.Duration
	// Modeled is the end-to-end modeled time on the CPU+GPU platform.
	Modeled time.Duration
	// Device exposes the simulated GPU for timeline inspection.
	Device *gpu.Device
}

// Check runs one rule with no deadline.
func Check(lo *layout.Layout, r rules.Rule, opts Options) (*Result, error) {
	return CheckContext(context.Background(), lo, r, opts) //odrc:allow ctxflow — context-free convenience wrapper, delegates to the Context variant
}

// CheckContext runs one rule under ctx. Cancellation is cooperative: it is
// checked between the flatten, transfer and kernel phases; a cancelled run
// returns a nil result and an error wrapping ctx.Err().
func CheckContext(ctx context.Context, lo *layout.Layout, r rules.Rule, opts Options) (*Result, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	switch r.Kind {
	case rules.Area, rules.Custom, rules.Rectilinear, rules.Coverage, rules.MinOverlap:
		return nil, ErrUnsupported
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("xcheck: check cancelled: %w", err)
	}
	if opts.Device.SMs == 0 {
		opts.Device = gpu.GTX1660Ti()
	}
	dev := gpu.NewDevice(opts.Device)
	stream := dev.NewStream("xcheck")
	res := &Result{Device: dev}
	start := time.Now() //odrc:allow clock — baseline wall measurement; feeds Result.Wall for the measured-vs-modeled comparison

	collect := func(h kernels.Hit) {
		res.Violations = append(res.Violations, rules.Violation{
			Rule: r.ID, Kind: r.Kind, Layer: r.Layer, Marker: h.Marker,
		})
	}

	// Host: flatten the whole layer (X-Check operates on flat layouts).
	hostStart := time.Now() //odrc:allow clock — host flatten phase; the elapsed time advances the modeled device clock below
	var shapes []geom.Polygon
	for _, pp := range lo.FlattenLayer(r.Layer) {
		shapes = append(shapes, pp.Shape)
	}
	dev.HostAdvance(time.Since(hostStart)) //odrc:allow clock — measured host time enters the modeled timeline via HostAdvance
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("xcheck: check cancelled: %w", err)
	}

	switch r.Kind {
	case rules.Width:
		edges, err := transfer(stream, shapes)
		if err != nil {
			return nil, err
		}
		kernels.SpacingSweep(stream, edges, checks.Lim(r.Min), kernels.FilterWidth, collect)
	case rules.Spacing:
		edges, err := transfer(stream, shapes)
		if err != nil {
			return nil, err
		}
		lim := r.SpacingLimit()
		kernels.NotchBrute(stream, edges, lim, collect)
		kernels.SpacingSweep(stream, edges, lim, kernels.FilterSpacing, collect)
	case rules.Enclosure:
		hostStart = time.Now() //odrc:allow clock — host candidate-sweep phase; elapsed time advances the modeled device clock below
		var metals []geom.Polygon
		for _, pp := range lo.FlattenLayer(r.Outer) {
			metals = append(metals, pp.Shape)
		}
		// Candidate lists from a host-side sweep over flat boxes.
		cands := make([][]int32, len(shapes))
		viaBoxes := make([]geom.Rect, len(shapes))
		for i := range shapes {
			viaBoxes[i] = shapes[i].MBR().Expand(r.Min)
		}
		metalBoxes := make([]geom.Rect, len(metals))
		for i := range metals {
			metalBoxes[i] = metals[i].MBR()
		}
		_, serr := sweep.OverlapsBetween(viaBoxes, metalBoxes, func(v, m int) {
			cands[v] = append(cands[v], int32(m))
		})
		dev.HostAdvance(time.Since(hostStart)) //odrc:allow clock — measured host time enters the modeled timeline via HostAdvance
		if serr != nil {
			return nil, serr
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("xcheck: check cancelled: %w", err)
		}
		ie, err := transfer(stream, shapes)
		if err != nil {
			return nil, err
		}
		oe, err := transfer(stream, metals)
		if err != nil {
			return nil, err
		}
		kernels.EnclosureEval(stream, ie, oe, cands, r.Min, collect)
	}
	stream.Synchronize()
	res.Wall = time.Since(start) //odrc:allow clock — closes the Result.Wall measurement opened above
	res.Modeled = dev.HostClock()
	sortViolations(res.Violations)
	return res, nil
}

// transfer packs shapes and models the host-to-device copy; an allocator
// failure (device OOM under a memory limit) surfaces as an error.
func transfer(s *gpu.Stream, shapes []geom.Polygon) (*kernels.Edges, error) {
	edges := kernels.Pack(shapes)
	if err := s.AllocAsync(edges.Bytes()); err != nil {
		return nil, err
	}
	s.MemcpyAsync("edges", edges.Bytes())
	return edges, nil
}

func sortViolations(vs []rules.Violation) {
	// rules.Less is a total order shared with the engines and the KLayout
	// baseline, so cross-checked reports compare positionally.
	sort.Slice(vs, func(i, j int) bool { return rules.Less(&vs[i], &vs[j]) })
}
