package xcheck

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"opendrc/internal/core"
	"opendrc/internal/rules"
	"opendrc/internal/synth"
)

func keys(vs []rules.Violation) map[string]bool {
	out := make(map[string]bool)
	for _, v := range vs {
		out[fmt.Sprintf("%s|%v|%d", v.Rule, v.Marker.Box, v.Marker.Dist)] = true
	}
	return out
}

func TestMatchesOpenDRCOnSupportedRules(t *testing.T) {
	lo, _, err := synth.Load("uart", 0.8)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range synth.Deck() {
		res, err := Check(lo, r, Options{})
		if errors.Is(err, ErrUnsupported) {
			continue
		}
		if err != nil {
			t.Fatalf("%s: %v", r.ID, err)
		}
		eng := core.New(core.Options{Mode: core.Sequential})
		if err := eng.AddRules(r); err != nil {
			t.Fatal(err)
		}
		rep, err := eng.Check(lo)
		if err != nil {
			t.Fatal(err)
		}
		xk, ok := keys(res.Violations), keys(rep.Violations)
		if len(xk) != len(ok) {
			t.Errorf("%s: xcheck %d vs opendrc %d", r.ID, len(xk), len(ok))
			continue
		}
		for k := range xk {
			if !ok[k] {
				t.Errorf("%s: xcheck-only violation %s", r.ID, k)
			}
		}
	}
}

func TestUnsupportedRules(t *testing.T) {
	lo, _, err := synth.Load("uart", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	unsupported := []string{"M1.A.1", "M1.RECT.1", "M2.NAME.1"}
	for _, id := range unsupported {
		r, err := synth.RuleByID(id)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Check(lo, r, Options{}); !errors.Is(err, ErrUnsupported) {
			t.Errorf("%s: expected ErrUnsupported, got %v", id, err)
		}
	}
}

func TestTimelinePopulated(t *testing.T) {
	lo, _, err := synth.Load("uart", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := synth.RuleByID("M2.S.1")
	res, err := Check(lo, r, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Modeled <= 0 {
		t.Error("modeled time missing")
	}
	if res.Device.DeviceBusy() <= 0 {
		t.Error("device never busy")
	}
	kernelSeen := false
	for _, rec := range res.Device.Timeline() {
		if rec.Kind == "kernel" {
			kernelSeen = true
		}
	}
	if !kernelSeen {
		t.Error("no kernels on timeline")
	}
}

func TestInvalidRule(t *testing.T) {
	lo, _, err := synth.Load("uart", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(lo, rules.Rule{Kind: rules.Spacing}, Options{}); err == nil {
		t.Error("invalid rule accepted")
	}
}

func TestCheckContextCancelled(t *testing.T) {
	lo, _, err := synth.Load("uart", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := synth.RuleByID("M1.S.1")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := CheckContext(ctx, lo, r, Options{})
	if res != nil {
		t.Fatal("cancelled run returned a result")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}
