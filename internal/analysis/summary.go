package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the per-function dataflow of the interprocedural engine. For
// every function in the program it computes a summary — which results may
// alias recycled scratch memory, which parameters flow into results, which
// parameters get stored into objects that outlive the call, and whether the
// function transitively reaches a worker-pool fan-out — and iterates the
// whole module to a fixpoint so summaries compose across call boundaries.
// The checkers (arenaescape.go, ctxflow.go) then re-walk function bodies
// with the converged summaries and report at the offending site, carrying
// the escape/flow chain in the message.

// chain is a human-readable escape/flow path, origin first.
type chain []string

// maxChain bounds chain growth through deep call stacks and recursion.
const maxChain = 8

// summary is the per-function dataflow summary. All fields grow
// monotonically during the fixpoint; chains are set once (first result wins,
// and the function processing order is deterministic, so messages are too).
type summary struct {
	retScratch []chain  // result i may alias scratch-pool memory
	retParams  []uint64 // result i may alias these parameters (bitmask)
	persist    []chain  // param i is stored somewhere that outlives the call
	poolReach  chain    // transitively reaches a pool SubmitCtx/ForEachCtx
}

func newSummary() *summary { return &summary{} }

// computeSummaries iterates all function summaries to a fixpoint. Rounds are
// bounded by the call-graph depth; the extra slack covers recursion, which
// converges because summaries only grow.
func computeSummaries(prog *program) {
	if prog.summariesDone {
		return
	}
	prog.summariesDone = true
	for round := 0; round < len(prog.ordered)+2; round++ {
		changed := false
		for _, fi := range prog.ordered {
			ev := newEvaluator(prog, fi, nil)
			ev.run()
			if ev.sumChanged {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// absval is the abstract value of an expression: does it (possibly) alias
// scratch-pool memory, and which of the enclosing function's parameters does
// it (possibly) alias.
type absval struct {
	scratch chain
	params  uint64
}

func (v absval) empty() bool { return v.scratch == nil && v.params == 0 }

func mergeVal(a, b absval) (absval, bool) {
	changed := false
	if a.scratch == nil && b.scratch != nil {
		a.scratch = b.scratch
		changed = true
	}
	if b.params&^a.params != 0 {
		a.params |= b.params
		changed = true
	}
	return a, changed
}

// evaluator runs the abstract interpretation over one function body.
type evaluator struct {
	prog *program
	fi   *funcInfo
	pass *ProgPass // non-nil only during the arenaescape reporting walk

	env        map[types.Object]absval
	resultObjs []types.Object // named result objects, for bare returns
	litRanges  [][2]token.Pos // FuncLit body ranges (returns there are not ours)

	reporting  bool
	envChanged bool
	sumChanged bool
}

func newEvaluator(prog *program, fi *funcInfo, pass *ProgPass) *evaluator {
	ev := &evaluator{prog: prog, fi: fi, pass: pass, env: map[types.Object]absval{}}
	ev.initEnv()
	return ev
}

func (ev *evaluator) info() *types.Info { return ev.fi.unit.info }

func (ev *evaluator) typeOf(e ast.Expr) types.Type {
	if tv, ok := ev.info().Types[e]; ok {
		return tv.Type
	}
	return nil
}

func (ev *evaluator) posStr(pos token.Pos) string { return ev.prog.posString(pos) }

// initEnv seeds parameters with their own param-alias bit. Parameters of
// shallow (reference-free) type can never carry an alias out, so they are
// not tracked at all.
func (ev *evaluator) initEnv() {
	fd := ev.fi.decl
	idx := 0
	seed := func(names []*ast.Ident) {
		for _, name := range names {
			obj := ev.info().Defs[name]
			if obj != nil && idx < 64 && !isShallow(obj.Type()) {
				ev.env[obj] = absval{params: 1 << uint(idx)}
			}
			idx++
		}
	}
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			if len(field.Names) == 0 {
				idx++
				continue
			}
			seed(field.Names)
		}
	}
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			idx++
			continue
		}
		seed(field.Names)
	}
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			if len(field.Names) == 0 {
				ev.resultObjs = append(ev.resultObjs, nil)
				continue
			}
			for _, name := range field.Names {
				ev.resultObjs = append(ev.resultObjs, ev.info().Defs[name])
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			ev.litRanges = append(ev.litRanges, [2]token.Pos{lit.Body.Pos(), lit.Body.End()})
		}
		return true
	})
}

func (ev *evaluator) inFuncLit(n ast.Node) bool {
	for _, r := range ev.litRanges {
		if r[0] <= n.Pos() && n.End() <= r[1] {
			return true
		}
	}
	return false
}

// run iterates the body to a local fixpoint (loops can taint a variable
// textually after its use), then, when reporting, takes one final pass that
// emits findings with the converged values.
func (ev *evaluator) run() {
	for i := 0; i < 10; i++ {
		ev.envChanged = false
		ev.walk(false)
		if !ev.envChanged {
			break
		}
	}
	if ev.pass != nil {
		ev.walk(true)
	}
}

func (ev *evaluator) walk(reporting bool) {
	ev.reporting = reporting
	ast.Inspect(ev.fi.decl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.CallExpr:
			ev.evalCall(st)
		case *ast.AssignStmt:
			ev.assign(st)
		case *ast.DeclStmt:
			if gd, ok := st.Decl.(*ast.GenDecl); ok {
				ev.genDecl(gd)
			}
		case *ast.RangeStmt:
			ev.rangeStmt(st)
		case *ast.ReturnStmt:
			if !ev.inFuncLit(st) {
				ev.returnStmt(st)
			}
		}
		return true
	})
}

func (ev *evaluator) assign(st *ast.AssignStmt) {
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		vals := ev.evalTuple(st.Rhs[0], len(st.Lhs))
		for i, lhs := range st.Lhs {
			ev.handleStore(lhs, vals[i])
		}
		return
	}
	for i := range st.Rhs {
		if i >= len(st.Lhs) {
			break
		}
		ev.handleStore(st.Lhs[i], ev.evalExpr(st.Rhs[i]))
	}
}

func (ev *evaluator) genDecl(gd *ast.GenDecl) {
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		if len(vs.Values) == 1 && len(vs.Names) > 1 {
			vals := ev.evalTuple(vs.Values[0], len(vs.Names))
			for i, name := range vs.Names {
				ev.bindIdent(name, vals[i])
			}
			continue
		}
		for i, name := range vs.Names {
			if i < len(vs.Values) {
				ev.bindIdent(name, ev.evalExpr(vs.Values[i]))
			}
		}
	}
}

func (ev *evaluator) rangeStmt(st *ast.RangeStmt) {
	val := ev.evalExpr(st.X)
	if val.empty() {
		return
	}
	if id, ok := st.Value.(*ast.Ident); ok && id.Name != "_" {
		ev.bindIdent(id, filterShallow(val, ev.typeOf(st.Value)))
	}
	if id, ok := st.Key.(*ast.Ident); ok && id.Name != "_" {
		ev.bindIdent(id, filterShallow(val, ev.typeOf(st.Key)))
	}
}

func (ev *evaluator) returnStmt(st *ast.ReturnStmt) {
	var vals []absval
	switch {
	case len(st.Results) == 0:
		for _, obj := range ev.resultObjs {
			if obj == nil {
				vals = append(vals, absval{})
			} else {
				vals = append(vals, ev.env[obj])
			}
		}
	case len(st.Results) == 1 && ev.fi.nresults > 1:
		vals = ev.evalTuple(st.Results[0], ev.fi.nresults)
	default:
		for _, r := range st.Results {
			vals = append(vals, ev.evalExpr(r))
		}
	}
	for k, val := range vals {
		if k >= ev.fi.nresults {
			break
		}
		ev.sumSetRetScratch(k, val.scratch)
		ev.sumOrRetParams(k, val.params)
		if ev.reporting && val.scratch != nil && ev.fi.exported() {
			ev.report(st.Pos(),
				"recycled scratch returned past the engine boundary: exported %s hands out a buffer that a Put will recycle under the caller (%s) — return a copy",
				ev.fi.name(), chainString(val.scratch))
		}
	}
}

// handleStore records the assignment lhs = val: sink checks (package-level
// variables, Report/cache structs), then local binding.
func (ev *evaluator) handleStore(lhs ast.Expr, val absval) {
	ev.checkStoreSink(lhs, val)
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		ev.bindIdent(e, val)
	default:
		// Storing into a field/element of a local container taints the
		// container itself (it now holds a reference to the value).
		if !val.empty() {
			if root := rootIdent(lhs); root != nil {
				ev.bindIdent(root, val)
			}
		}
	}
}

func (ev *evaluator) bindIdent(id *ast.Ident, val absval) {
	if id.Name == "_" || val.empty() {
		return
	}
	obj := ev.info().ObjectOf(id)
	v, ok := obj.(*types.Var)
	if !ok || isPkgLevelVar(v) {
		return // package vars are sinks, handled by checkStoreSink
	}
	merged, changed := mergeVal(ev.env[obj], val)
	if changed {
		ev.env[obj] = merged
		ev.envChanged = true
	}
}

// rootIdent returns the leftmost identifier of a selector/index chain.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func isPkgLevelVar(v *types.Var) bool {
	return !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// checkStoreSink reports (or summarizes) a store of val into a location that
// outlives the run: a package-level variable, or a field/element of a
// persistent struct (Report, the geometry cache and its memo entries).
func (ev *evaluator) checkStoreSink(lhs ast.Expr, val absval) {
	if val.empty() {
		return
	}
	cur := lhs
	for {
		switch e := ast.Unparen(cur).(type) {
		case *ast.Ident:
			if v, ok := ev.info().ObjectOf(e).(*types.Var); ok && isPkgLevelVar(v) {
				ev.storeSink(lhs.Pos(), val, "package-level variable "+v.Name())
			}
			return
		case *ast.SelectorExpr:
			if v, ok := ev.info().ObjectOf(e.Sel).(*types.Var); ok && isPkgLevelVar(v) {
				ev.storeSink(lhs.Pos(), val, "package-level variable "+v.Name())
				return
			}
			if name, ok := persistentTypeName(ev.typeOf(e.X)); ok {
				ev.storeSink(lhs.Pos(), val, fmt.Sprintf("%s.%s, which outlives the run", name, e.Sel.Name))
				return
			}
			cur = e.X
		case *ast.IndexExpr:
			if name, ok := persistentTypeName(ev.typeOf(e.X)); ok {
				ev.storeSink(lhs.Pos(), val, fmt.Sprintf("an element of %s, which outlives the run", name))
				return
			}
			cur = e.X
		case *ast.StarExpr:
			if name, ok := persistentTypeName(ev.typeOf(e.X)); ok {
				ev.storeSink(lhs.Pos(), val, fmt.Sprintf("*%s, which outlives the run", name))
				return
			}
			cur = e.X
		default:
			return
		}
	}
}

func (ev *evaluator) storeSink(pos token.Pos, val absval, where string) {
	if ev.reporting && val.scratch != nil {
		ev.report(pos, "recycled scratch escapes the run: %s stored into %s — a Put will hand the same memory to the next user; copy before publishing", chainString(val.scratch), where)
	}
	for j := 0; j < ev.fi.nparams && j < 64; j++ {
		if val.params&(1<<uint(j)) != 0 {
			ev.sumSetPersist(j, chain{fmt.Sprintf("%s stores it into %s at %s",
				ev.fi.name(), where, ev.posStr(pos))})
		}
	}
}

// evalExpr computes the abstract value of an expression.
func (ev *evaluator) evalExpr(e ast.Expr) absval {
	switch x := e.(type) {
	case *ast.Ident:
		if obj := ev.info().ObjectOf(x); obj != nil {
			return ev.env[obj]
		}
	case *ast.ParenExpr:
		return ev.evalExpr(x.X)
	case *ast.SelectorExpr:
		// Qualified package identifiers resolve to zero; field selection
		// propagates unless the field's type cannot hold a reference.
		if id, ok := x.X.(*ast.Ident); ok {
			if pkgNameOf(ev.info(), id) != "" {
				return absval{}
			}
		}
		return filterShallow(ev.evalExpr(x.X), ev.typeOf(e))
	case *ast.IndexExpr:
		return filterShallow(ev.evalExpr(x.X), ev.typeOf(e))
	case *ast.SliceExpr:
		return ev.evalExpr(x.X)
	case *ast.StarExpr:
		return filterShallow(ev.evalExpr(x.X), ev.typeOf(e))
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return ev.evalExpr(x.X)
		}
		return absval{}
	case *ast.CallExpr:
		res := ev.evalCall(x)
		if len(res) > 0 {
			return res[0]
		}
	case *ast.CompositeLit:
		var out absval
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			out, _ = mergeVal(out, ev.evalExpr(elt))
		}
		return filterShallow(out, ev.typeOf(e))
	case *ast.TypeAssertExpr:
		return filterShallow(ev.evalExpr(x.X), ev.typeOf(e))
	}
	return absval{}
}

// evalTuple evaluates a multi-value expression into n abstract values.
func (ev *evaluator) evalTuple(e ast.Expr, n int) []absval {
	var vals []absval
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		vals = ev.evalCall(call)
	} else {
		// Comma-ok forms: map index, type assert, channel receive.
		vals = []absval{ev.evalExpr(e)}
	}
	for len(vals) < n {
		vals = append(vals, absval{})
	}
	return vals[:n]
}

// poolFanOutNames are the worker-pool entry points whose reachability
// ctxflow tracks; matching is by function name plus a context parameter in
// the callee's signature, so self-contained fixtures work like the real
// internal/pool.
var poolFanOutNames = map[string]bool{
	"SubmitCtx": true, "WaitCtx": true, "ForEachCtx": true, "ForEachChunkCtx": true,
}

// evalCall computes per-result abstract values of a call, applies call-site
// sinks (a tainted argument handed to a callee that stores it somewhere
// persistent), and accumulates pool reachability.
func (ev *evaluator) evalCall(call *ast.CallExpr) []absval {
	info := ev.info()
	nres := 1
	if t := ev.typeOf(call); t != nil {
		if tup, ok := t.(*types.Tuple); ok {
			nres = tup.Len()
		}
	}
	res := make([]absval, max(nres, 1))

	if isBuiltinAppend(info, call) {
		return ev.evalAppend(call, res)
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			return res // len/cap/make/new/copy/...: no aliasing we track
		}
	}

	// Scratch roots: a method on one of the recycled pools handing out a
	// slice or pointer result.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if poolName, ok := scratchPoolTypeName(ev.typeOf(sel.X)); ok {
			if sig, ok := ev.typeOf(call.Fun).(*types.Signature); ok {
				for k := 0; k < sig.Results().Len() && k < len(res); k++ {
					switch sig.Results().At(k).Type().Underlying().(type) {
					case *types.Slice, *types.Pointer:
						res[k].scratch = chain{fmt.Sprintf("scratch from (*%s).%s at %s",
							poolName, sel.Sel.Name, ev.posStr(call.Pos()))}
					}
				}
			}
		}
	}

	// Pool fan-out reachability (direct).
	if name := calleeName(call); poolFanOutNames[name] {
		if sig, ok := ev.typeOf(call.Fun).(*types.Signature); ok && sigTakesContext(sig) {
			ev.sumSetPoolReach(chain{fmt.Sprintf("calls %s at %s", name, ev.posStr(call.Pos()))})
		}
	}

	callee := ev.prog.staticCallee(info, call)
	if callee == nil {
		// Unknown callee (stdlib, dynamic): results may alias any argument.
		var union absval
		for _, a := range call.Args {
			union, _ = mergeVal(union, ev.evalExpr(a))
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if id, isID := sel.X.(*ast.Ident); !isID || pkgNameOf(info, id) == "" {
				union, _ = mergeVal(union, ev.evalExpr(sel.X))
			}
		}
		if union.empty() {
			return res
		}
		if sig, ok := ev.typeOf(call.Fun).(*types.Signature); ok {
			for k := 0; k < sig.Results().Len() && k < len(res); k++ {
				res[k], _ = mergeVal(res[k], filterShallow(union, sig.Results().At(k).Type()))
			}
		}
		return res
	}

	// Pool fan-out reachability (transitive through the callee).
	if callee.sum.poolReach != nil {
		ev.sumSetPoolReach(appendChain(
			chain{fmt.Sprintf("calls %s at %s", callee.name(), ev.posStr(call.Pos()))},
			callee.sum.poolReach...))
	}

	// Map arguments (receiver is parameter 0) to callee parameter indices.
	type argPair struct {
		idx int
		val absval
	}
	var pairs []argPair
	sig := callee.fn.Type().(*types.Signature)
	base := 0
	if sig.Recv() != nil {
		base = 1
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			pairs = append(pairs, argPair{0, ev.evalExpr(sel.X)})
		}
	}
	np := sig.Params().Len()
	for i, a := range call.Args {
		pi := i
		if np > 0 && pi >= np {
			pi = np - 1 // variadic extras share the last parameter
		}
		pairs = append(pairs, argPair{base + pi, ev.evalExpr(a)})
	}

	// Call-site sink: a scratch-tainted argument handed to a callee that
	// stores that parameter somewhere persistent.
	for _, p := range pairs {
		if p.idx >= len(callee.sum.persist) || callee.sum.persist[p.idx] == nil {
			continue
		}
		if p.val.scratch != nil && ev.reporting {
			ev.report(call.Pos(),
				"recycled scratch escapes through this call: %s — a Put will hand the same memory to the next user; copy before publishing",
				chainString(appendChain(p.val.scratch, callee.sum.persist[p.idx]...)))
		}
		for j := 0; j < ev.fi.nparams && j < 64; j++ {
			if p.val.params&(1<<uint(j)) != 0 {
				ev.sumSetPersist(j, appendChain(
					chain{fmt.Sprintf("passed to %s at %s", callee.name(), ev.posStr(call.Pos()))},
					callee.sum.persist[p.idx]...))
			}
		}
	}

	// Results from the callee summary.
	for k := 0; k < callee.nresults && k < len(res); k++ {
		if callee.sum.retScratch[k] != nil && res[k].scratch == nil {
			res[k].scratch = appendChain(callee.sum.retScratch[k],
				fmt.Sprintf("returned by %s at %s", callee.name(), ev.posStr(call.Pos())))
		}
		mask := callee.sum.retParams[k]
		if mask == 0 {
			continue
		}
		for _, p := range pairs {
			if mask&(1<<uint(p.idx)) == 0 {
				continue
			}
			if p.val.scratch != nil && res[k].scratch == nil {
				res[k].scratch = appendChain(p.val.scratch, fmt.Sprintf("through %s", callee.name()))
			}
			res[k].params |= p.val.params
		}
	}
	return res
}

// evalAppend models the append builtin: the result aliases the destination,
// and aliases an appended value only when copying that value keeps a
// reference (spread of a deep-element slice, or a deep element value).
func (ev *evaluator) evalAppend(call *ast.CallExpr, res []absval) []absval {
	if len(call.Args) == 0 {
		return res
	}
	out := ev.evalExpr(call.Args[0])
	for i, a := range call.Args[1:] {
		v := ev.evalExpr(a)
		if v.empty() {
			continue
		}
		t := ev.typeOf(a)
		if call.Ellipsis.IsValid() && i == len(call.Args)-2 {
			// append(dst, src...): element values are copied out of src.
			if sl, ok := t.Underlying().(*types.Slice); ok {
				t = sl.Elem()
			}
		}
		out, _ = mergeVal(out, filterShallow(v, t))
	}
	res[0] = out
	return res
}

func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

func sigTakesContext(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

func filterShallow(v absval, t types.Type) absval {
	if t != nil && isShallow(t) {
		return absval{}
	}
	return v
}

func appendChain(c chain, steps ...string) chain {
	out := make(chain, len(c), len(c)+len(steps))
	copy(out, c)
	for _, s := range steps {
		if s == "" {
			continue
		}
		if len(out) >= maxChain {
			break
		}
		out = append(out, s)
	}
	return out
}

func (ev *evaluator) report(pos token.Pos, format string, args ...any) {
	if ev.pass != nil {
		ev.pass.Reportf(pos, "arenaescape", format, args...)
	}
}

func (ev *evaluator) sumSetRetScratch(k int, c chain) {
	if c == nil || k >= len(ev.fi.sum.retScratch) || ev.fi.sum.retScratch[k] != nil {
		return
	}
	ev.fi.sum.retScratch[k] = c
	ev.sumChanged = true
}

func (ev *evaluator) sumOrRetParams(k int, mask uint64) {
	if k >= len(ev.fi.sum.retParams) || mask&^ev.fi.sum.retParams[k] == 0 {
		return
	}
	ev.fi.sum.retParams[k] |= mask
	ev.sumChanged = true
}

func (ev *evaluator) sumSetPersist(j int, c chain) {
	if c == nil || j >= len(ev.fi.sum.persist) || ev.fi.sum.persist[j] != nil {
		return
	}
	ev.fi.sum.persist[j] = c
	ev.sumChanged = true
}

func (ev *evaluator) sumSetPoolReach(c chain) {
	if c == nil || ev.fi.sum.poolReach != nil {
		return
	}
	ev.fi.sum.poolReach = c
	ev.sumChanged = true
}
