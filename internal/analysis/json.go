package analysis

import (
	"encoding/json"
	"io"
)

// findingJSON is the machine-readable rendering of one finding, used by
// `odrc-lint -json` (and consumed by CI tooling).
type findingJSON struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// WriteJSON renders findings as an indented JSON array. The array is always
// present (an empty run emits []), so consumers never need a null check.
func WriteJSON(w io.Writer, findings []Finding) error {
	out := make([]findingJSON, 0, len(findings))
	for _, f := range findings {
		out = append(out, findingJSON{
			File:    f.Pos.Filename,
			Line:    f.Pos.Line,
			Column:  f.Pos.Column,
			Check:   f.Check,
			Message: f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
