package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces context discipline end to end: cancellation only works if
// every hop propagates its context. Four rules:
//
//  1. No context.Background()/context.TODO() outside package main (tests are
//     never linted). Library code accepts a ctx from its caller; a fresh
//     Background silently detaches everything below it from cancellation.
//  2. A function that received a ctx and calls a context-taking callee must
//     not hand that callee a fresh Background/TODO — that drops the caller's
//     cancellation on the floor mid-chain.
//  3. A function that received a ctx must not fan out through a callee that
//     transitively reaches the worker pool (pool.SubmitCtx / ForEachCtx /
//     ForEachChunkCtx / WaitCtx) but takes no ctx itself — the fan-out below
//     becomes uncancellable. This one is interprocedural: the pool
//     reachability comes from the bottom-up summaries, and the finding
//     carries the call chain down to the pool entry point.
//  4. A function that received a ctx and calls a context-deriving wrapper —
//     any callee that both takes and returns a context.Context, the shape of
//     pool.WithTenant / pool.WithScheduler / context.WithValue — must derive
//     the wrapper's input from the incoming ctx (directly or through a chain
//     of such wrappers). Tagging a context from anywhere else silently drops
//     the caller's cancellation AND its scheduler/tenant tags from everything
//     built on the wrapper's result. Fresh Background/TODO inputs are rule
//     2's jurisdiction and are not re-reported here.
var CtxFlow = &ProgramChecker{
	Name: "ctxflow",
	Doc:  "contexts must flow: no Background/TODO outside main, no dropped ctx before a pool fan-out, wrappers retag the incoming ctx",
	Run:  runCtxFlow,
}

func runCtxFlow(p *ProgPass) {
	for _, fi := range p.Prog.ordered {
		checkCtxFlow(p, fi)
	}
}

func checkCtxFlow(p *ProgPass, fi *funcInfo) {
	info := fi.unit.info
	isMain := fi.unit.pkg.Name() == "main"
	hasCtx := fi.ctxParam >= 0
	derived := ctxParamObjs(info, fi.decl.Type.Params)
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if hasCtx {
				trackCtxDerivation(info, derived, n)
			}
			return true
		case *ast.FuncLit:
			// A closure's own ctx parameter starts a fresh chain; treat it
			// as derived so shadowing does not false-positive rule 4.
			ctxParamObjsInto(info, n.Type.Params, derived)
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if hasCtx {
			if arg, ok := ctxWrapperArg(info, call); ok &&
				!isCtxRootCall(info, arg) && !ctxExprDerived(info, derived, arg) {
				p.Reportf(call.Pos(), "ctxflow",
					"%s receives a ctx but tags a different context here — the wrapper's result drops the incoming cancellation and scheduler/tenant chain; derive the wrapper's input from the ctx parameter", fi.name())
			}
		}
		if name, _, ok := selectorPkgCall(info, call, "context"); ok {
			switch name {
			case "Background", "TODO":
				switch {
				case isMain:
				case hasCtx:
					p.Reportf(call.Pos(), "ctxflow",
						"%s receives a ctx but creates context.%s — pass the ctx (or a context derived from it) so cancellation propagates", fi.name(), name)
				default:
					p.Reportf(call.Pos(), "ctxflow",
						"context.%s outside package main: accept a ctx parameter and plumb it from the caller", name)
				}
			}
			return true
		}
		if !hasCtx {
			return true
		}
		callee := p.Prog.staticCallee(info, call)
		if callee == nil || callee == fi {
			return true
		}
		if callee.ctxParam < 0 && callee.sum.poolReach != nil {
			p.Reportf(call.Pos(), "ctxflow",
				"ctx dropped before a pool fan-out: %s takes no context but %s — the work below this call cannot be cancelled; plumb the ctx through %s",
				callee.name(), chainString(callee.sum.poolReach), callee.name())
		}
		return true
	})
}

// ctxParamObjs seeds the derivation set for rule 4 with the function's
// context.Context parameter objects.
func ctxParamObjs(info *types.Info, params *ast.FieldList) map[types.Object]bool {
	derived := map[types.Object]bool{}
	ctxParamObjsInto(info, params, derived)
	return derived
}

func ctxParamObjsInto(info *types.Info, params *ast.FieldList, derived map[types.Object]bool) {
	if params == nil {
		return
	}
	for _, fld := range params.List {
		for _, name := range fld.Names {
			if obj := info.Defs[name]; obj != nil && isContextType(obj.Type()) {
				derived[obj] = true
			}
		}
	}
}

// trackCtxDerivation propagates rule 4's derivation through assignments:
// when any right-hand side is rooted in a derived context, every
// context-typed name on the left joins the derived set (tctx, cancel :=
// context.WithTimeout(ctx, d); sctx := pool.WithScheduler(ctx, s); ...).
// A context name reassigned from elsewhere leaves the set.
func trackCtxDerivation(info *types.Info, derived map[types.Object]bool, as *ast.AssignStmt) {
	fromDerived := false
	for _, rhs := range as.Rhs {
		if ctxExprDerived(info, derived, rhs) {
			fromDerived = true
			break
		}
	}
	for _, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil || !isContextType(obj.Type()) {
			continue
		}
		if fromDerived {
			derived[obj] = true
		} else {
			delete(derived, obj)
		}
	}
}

// ctxExprDerived reports whether e is rooted in a derived context: the
// context parameter itself, a name assigned from one, or a call fed one as
// any context-typed argument.
func ctxExprDerived(info *types.Info, derived map[types.Object]bool, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return derived[info.Uses[e]]
	case *ast.CallExpr:
		for _, a := range e.Args {
			if t := info.TypeOf(a); t != nil && isContextType(t) &&
				ctxExprDerived(info, derived, a) {
				return true
			}
		}
	}
	return false
}

// ctxWrapperArg matches rule 4's wrapper shape by signature — the callee
// both takes and returns a context.Context — and returns the argument
// filling the context parameter.
func ctxWrapperArg(info *types.Info, call *ast.CallExpr) (ast.Expr, bool) {
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return nil, false
	}
	returnsCtx := false
	for i := 0; i < sig.Results().Len(); i++ {
		if isContextType(sig.Results().At(i).Type()) {
			returnsCtx = true
			break
		}
	}
	if !returnsCtx {
		return nil, false
	}
	for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return call.Args[i], true
		}
	}
	return nil, false
}

// isCtxRootCall reports whether e is a direct context.Background()/TODO()
// call — rule 2 owns those, rule 4 must not double-report.
func isCtxRootCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	name, _, ok := selectorPkgCall(info, call, "context")
	return ok && (name == "Background" || name == "TODO")
}
