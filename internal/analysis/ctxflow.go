package analysis

import (
	"go/ast"
)

// CtxFlow enforces context discipline end to end: cancellation only works if
// every hop propagates its context. Three rules:
//
//  1. No context.Background()/context.TODO() outside package main (tests are
//     never linted). Library code accepts a ctx from its caller; a fresh
//     Background silently detaches everything below it from cancellation.
//  2. A function that received a ctx and calls a context-taking callee must
//     not hand that callee a fresh Background/TODO — that drops the caller's
//     cancellation on the floor mid-chain.
//  3. A function that received a ctx must not fan out through a callee that
//     transitively reaches the worker pool (pool.SubmitCtx / ForEachCtx /
//     ForEachChunkCtx / WaitCtx) but takes no ctx itself — the fan-out below
//     becomes uncancellable. This one is interprocedural: the pool
//     reachability comes from the bottom-up summaries, and the finding
//     carries the call chain down to the pool entry point.
var CtxFlow = &ProgramChecker{
	Name: "ctxflow",
	Doc:  "contexts must flow: no Background/TODO outside main, no dropped ctx before a pool fan-out",
	Run:  runCtxFlow,
}

func runCtxFlow(p *ProgPass) {
	for _, fi := range p.Prog.ordered {
		checkCtxFlow(p, fi)
	}
}

func checkCtxFlow(p *ProgPass, fi *funcInfo) {
	info := fi.unit.info
	isMain := fi.unit.pkg.Name() == "main"
	hasCtx := fi.ctxParam >= 0
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, _, ok := selectorPkgCall(info, call, "context"); ok {
			switch name {
			case "Background", "TODO":
				switch {
				case isMain:
				case hasCtx:
					p.Reportf(call.Pos(), "ctxflow",
						"%s receives a ctx but creates context.%s — pass the ctx (or a context derived from it) so cancellation propagates", fi.name(), name)
				default:
					p.Reportf(call.Pos(), "ctxflow",
						"context.%s outside package main: accept a ctx parameter and plumb it from the caller", name)
				}
			}
			return true
		}
		if !hasCtx {
			return true
		}
		callee := p.Prog.staticCallee(info, call)
		if callee == nil || callee == fi {
			return true
		}
		if callee.ctxParam < 0 && callee.sum.poolReach != nil {
			p.Reportf(call.Pos(), "ctxflow",
				"ctx dropped before a pool fan-out: %s takes no context but %s — the work below this call cannot be cancelled; plumb the ctx through %s",
				callee.name(), chainString(callee.sum.poolReach), callee.name())
		}
		return true
	})
}
