package analysis

import (
	"go/ast"
)

// Clock enforces the timing discipline behind the modeled CPU+GPU timeline:
// all host timing flows through infra.Profiler / the parallel branch's
// hostPhase, so the only packages that may read the wall clock directly are
// internal/infra (the profiler itself), internal/bench (measurement
// harness), and internal/trace (the run-timeline recorder's default clock —
// injectable everywhere else, so traced runs stay deterministic under
// test clocks). A stray time.Now elsewhere produces host work the modeled
// device clock never sees — the silent drift PR 1 fixed in the custom-rule
// path.
var Clock = &Checker{
	Name: "clock",
	Doc:  "no direct time.Now/time.Since outside internal/infra, internal/bench, and internal/trace",
	Run:  runClock,
}

func isClockExemptPkg(pkgPath string) bool {
	return pkgIs(pkgPath, "internal/infra") || pkgIs(pkgPath, "internal/bench") ||
		pkgIs(pkgPath, "internal/trace")
}

func runClock(p *Pass) {
	if isClockExemptPkg(p.PkgPath) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || pkgNameOf(p.Info, id) != "time" {
				return true
			}
			switch sel.Sel.Name {
			case "Now", "Since":
				p.Reportf(sel.Pos(), "clock",
					"time.%s outside internal/infra, internal/bench, and internal/trace: time host work through the Profiler/hostPhase so it enters the modeled timeline", sel.Sel.Name)
			}
			return true
		})
	}
}
