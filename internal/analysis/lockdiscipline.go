package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockDiscipline machine-checks the mutex contracts that today live in
// comments: a struct field annotated
//
//	free []*shardTable //odrc:guardedby mu
//
// may only be read or written with the named sibling mutex held in the same
// function. Held-ness is tracked lexically through the function body —
// base.mu.Lock()/RLock() acquires, Unlock()/RUnlock() releases, and a
// deferred Unlock keeps the lock held to the end of the function. The base
// expression must match between the lock and the access (p.mu guards p.free,
// e.shards.mu guards e.shards.free), so independent instances stay
// independent. Annotations naming a nonexistent sibling are findings
// themselves, so guards cannot rot silently.
var LockDiscipline = &ProgramChecker{
	Name: "lockdiscipline",
	Doc:  "fields annotated //odrc:guardedby mu are only accessed with the named mutex held in the same function",
	Run:  runLockDiscipline,
}

const guardedByPrefix = "//odrc:guardedby"

// guardInfo is one annotated field: the mutex field name that guards it.
type guardInfo struct {
	mu    string
	field string
}

func runLockDiscipline(p *ProgPass) {
	guards := collectGuards(p)
	if len(guards) == 0 {
		return
	}
	for _, fi := range p.Prog.ordered {
		checkLockedAccesses(p, fi, guards)
	}
}

// collectGuards parses every //odrc:guardedby annotation in the program and
// returns the guarded field objects. Malformed annotations (no field name,
// or naming a sibling that does not exist) are reported immediately.
func collectGuards(p *ProgPass) map[types.Object]guardInfo {
	guards := map[types.Object]guardInfo{}
	for _, u := range p.Prog.units {
		for _, f := range u.files {
			ast.Inspect(f, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok || st.Fields == nil {
					return true
				}
				names := map[string]bool{}
				for _, field := range st.Fields.List {
					for _, name := range field.Names {
						names[name.Name] = true
					}
				}
				for _, field := range st.Fields.List {
					mu, pos, ok := guardAnnotation(field)
					if !ok {
						continue
					}
					switch {
					case mu == "":
						p.Reportf(pos, "lockdiscipline",
							"malformed annotation: want //odrc:guardedby <mutex-field>")
						continue
					case !names[mu]:
						p.Reportf(pos, "lockdiscipline",
							"//odrc:guardedby names %q, which is not a field of this struct", mu)
						continue
					}
					for _, name := range field.Names {
						if obj := u.info.Defs[name]; obj != nil {
							guards[obj] = guardInfo{mu: mu, field: name.Name}
						}
					}
				}
				return true
			})
		}
	}
	return guards
}

// guardAnnotation extracts the //odrc:guardedby annotation from a struct
// field's line comment or doc comment.
func guardAnnotation(field *ast.Field) (mu string, pos token.Pos, ok bool) {
	for _, cg := range []*ast.CommentGroup{field.Comment, field.Doc} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, guardedByPrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, guardedByPrefix))
			if rest == "" || len(strings.Fields(rest)) != 1 {
				return "", c.Pos(), true
			}
			return rest, c.Pos(), true
		}
	}
	return "", token.NoPos, false
}

// checkLockedAccesses walks one function body in lexical order, tracking
// which "<base>.<mu>" mutexes are held, and reports guarded-field accesses
// outside their lock. The walk is branch-aware just enough for the real
// patterns: a `defer mu.Unlock()` keeps the mutex held to the end of the
// function, toggles inside a terminating if-branch (the
// `if bad { mu.Unlock(); return }` early exit) do not leak into the
// fall-through path, and loop or switch bodies cannot establish held-ness for
// the code after them.
func checkLockedAccesses(p *ProgPass, fi *funcInfo, guards map[types.Object]guardInfo) {
	lw := &lockWalker{p: p, info: fi.unit.info, guards: guards}
	lw.stmts(fi.decl.Body.List, map[string]bool{})
}

type lockWalker struct {
	p      *ProgPass
	info   *types.Info
	guards map[types.Object]guardInfo
}

func cloneHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// setHeld replaces dst's contents with src's.
func setHeld(dst, src map[string]bool) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

// intersectHeld keeps only the mutexes held on both paths.
func intersectHeld(dst, other map[string]bool) {
	for k := range dst {
		if !other[k] {
			delete(dst, k)
		}
	}
}

func (lw *lockWalker) stmts(list []ast.Stmt, held map[string]bool) {
	for _, s := range list {
		lw.stmt(s, held)
	}
}

func (lw *lockWalker) stmt(s ast.Stmt, held map[string]bool) {
	switch x := s.(type) {
	case nil:
	case *ast.BlockStmt:
		lw.stmts(x.List, held)
	case *ast.LabeledStmt:
		lw.stmt(x.Stmt, held)
	case *ast.IfStmt:
		lw.stmt(x.Init, held)
		lw.expr(x.Cond, held)
		body := cloneHeld(held)
		lw.stmts(x.Body.List, body)
		if x.Else != nil {
			els := cloneHeld(held)
			lw.stmt(x.Else, els)
			switch {
			case terminates(x.Body.List) && stmtTerminates(x.Else):
				// Neither branch falls through; keep the entry state.
			case terminates(x.Body.List):
				setHeld(held, els)
			case stmtTerminates(x.Else):
				setHeld(held, body)
			default:
				setHeld(held, body)
				intersectHeld(held, els)
			}
			return
		}
		if !terminates(x.Body.List) {
			intersectHeld(held, body)
		}
	case *ast.ForStmt:
		lw.stmt(x.Init, held)
		lw.expr(x.Cond, held)
		body := cloneHeld(held)
		lw.stmt(x.Post, body)
		lw.stmts(x.Body.List, body)
	case *ast.RangeStmt:
		lw.expr(x.X, held)
		body := cloneHeld(held)
		lw.stmts(x.Body.List, body)
	case *ast.SwitchStmt:
		lw.stmt(x.Init, held)
		lw.expr(x.Tag, held)
		lw.caseClauses(x.Body, held)
	case *ast.TypeSwitchStmt:
		lw.stmt(x.Init, held)
		lw.stmt(x.Assign, held)
		lw.caseClauses(x.Body, held)
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				body := cloneHeld(held)
				lw.stmt(cc.Comm, body)
				lw.stmts(cc.Body, body)
			}
		}
	case *ast.DeferStmt:
		if _, _, ok := mutexOp(lw.info, x.Call); ok {
			// A deferred Unlock runs at function exit: the mutex stays
			// held for the rest of the function.
			return
		}
		body := cloneHeld(held)
		lw.expr(x.Call, body)
	case *ast.GoStmt:
		// A spawned goroutine runs concurrently; it inherits no held locks.
		lw.expr(x.Call, map[string]bool{})
	default:
		// Assignments, expression statements, declarations, returns, sends:
		// walk the expressions in source order.
		lw.expr(s, held)
	}
}

func (lw *lockWalker) caseClauses(body *ast.BlockStmt, held map[string]bool) {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			clause := cloneHeld(held)
			for _, e := range cc.List {
				lw.expr(e, clause)
			}
			lw.stmts(cc.Body, clause)
		}
	}
}

// expr walks an expression (or simple statement) in lexical order, toggling
// held on mutex operations and reporting unguarded accesses. Function
// literals are walked through the statement walker so nested defers keep
// their semantics.
func (lw *lockWalker) expr(n ast.Node, held map[string]bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		switch x := c.(type) {
		case *ast.FuncLit:
			lw.stmts(x.Body.List, cloneHeld(held))
			return false
		case *ast.CallExpr:
			if key, op, ok := mutexOp(lw.info, x); ok {
				switch op {
				case "Lock", "RLock":
					held[key] = true
				case "Unlock", "RUnlock":
					delete(held, key)
				}
				return false
			}
		case *ast.SelectorExpr:
			obj := lw.info.Uses[x.Sel]
			g, guarded := lw.guards[obj]
			if !guarded {
				return true
			}
			base, ok := exprPath(x.X)
			if !ok {
				return true
			}
			if !held[base+"."+g.mu] {
				lw.p.Reportf(x.Pos(), "lockdiscipline",
					"%s.%s is //odrc:guardedby %s but is accessed without %s.%s held in this function",
					base, g.field, g.mu, base, g.mu)
			}
		}
		return true
	})
}

// terminates reports whether a statement list cannot fall through: it ends in
// a return, a branch (break/continue/goto), or a panic call.
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	return stmtTerminates(list[len(list)-1])
}

func stmtTerminates(s ast.Stmt) bool {
	switch x := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.BlockStmt:
		return terminates(x.List)
	case *ast.ExprStmt:
		call, ok := x.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}

// mutexOp matches base.mu.Lock()/Unlock()/RLock()/RUnlock() on a sync
// mutex, returning the held-set key "base.mu" and the operation.
func mutexOp(info *types.Info, call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	path, okPath := exprPath(sel.X)
	if !okPath {
		return "", "", false
	}
	return path, sel.Sel.Name, true
}
