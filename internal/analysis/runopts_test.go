package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTempModule lays out a small two-package module with known rawgo
// findings: internal/a/a.go lines 7 and 8, internal/b/b.go lines 7 and 8,
// plus a waived line 9 in b.
func writeTempModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	src := `package %s

func helper() {}

// Fan-out outside the pool: raw go statements the rawgo checker flags.
func Spawn() {
	go helper()
	go helper()
	go helper() //odrc:allow rawgo — fixture: intentionally unpooled
}
`
	files := map[string]string{
		"go.mod":          "module example.com/m\n\ngo 1.22\n",
		"internal/a/a.go": fmt.Sprintf(src, "a"),
		"internal/b/b.go": fmt.Sprintf(src, "b"),
	}
	for name, content := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// TestRunOptsDeterministicOrder pins the cross-package output contract:
// findings arrive sorted by (file, line, column, check) no matter how the
// per-package checkers were scheduled on the pool, and filenames are
// root-relative.
func TestRunOptsDeterministicOrder(t *testing.T) {
	root := writeTempModule(t)
	want := []string{
		filepath.Join("internal", "a", "a.go") + ":7 rawgo",
		filepath.Join("internal", "a", "a.go") + ":8 rawgo",
		filepath.Join("internal", "b", "b.go") + ":7 rawgo",
		filepath.Join("internal", "b", "b.go") + ":8 rawgo",
	}
	for run := 0; run < 3; run++ {
		findings, stats, err := RunOpts(root, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Packages != 2 {
			t.Fatalf("stats.Packages = %d, want 2", stats.Packages)
		}
		var got []string
		for _, f := range findings {
			got = append(got, fmt.Sprintf("%s:%d %s", f.Pos.Filename, f.Pos.Line, f.Check))
		}
		if strings.Join(got, "|") != strings.Join(want, "|") {
			t.Fatalf("run %d: findings = %v, want %v", run, got, want)
		}
	}
}

// TestRunOptsUnknownCheck pins the -check error contract: an unknown name
// fails up front and the message lists every valid checker.
func TestRunOptsUnknownCheck(t *testing.T) {
	root := writeTempModule(t)
	_, _, err := RunOpts(root, Options{Checks: []string{"nosuch"}})
	if err == nil {
		t.Fatal("expected an error for an unknown check name")
	}
	msg := err.Error()
	if !strings.Contains(msg, `unknown check "nosuch"`) {
		t.Errorf("error %q does not name the unknown check", msg)
	}
	for _, name := range allCheckNames() {
		if !strings.Contains(msg, name) {
			t.Errorf("error %q does not list valid check %q", msg, name)
		}
	}
}

// TestRunOptsCheckFilter pins two -check behaviours: only the selected
// checker runs, and waivers for unselected checkers are ignored rather than
// reported stale.
func TestRunOptsCheckFilter(t *testing.T) {
	root := writeTempModule(t)

	findings, stats, err := RunOpts(root, Options{Checks: []string{"rawgo"}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Checks != 1 {
		t.Errorf("stats.Checks = %d, want 1", stats.Checks)
	}
	if len(findings) != 4 {
		t.Errorf("rawgo-only run: %d findings, want 4: %v", len(findings), findings)
	}

	// maprange never fires here, and the rawgo waiver in b.go must not be
	// reported stale when rawgo itself is not running.
	findings, _, err = RunOpts(root, Options{Checks: []string{"maprange"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("maprange-only run: unexpected findings %v", findings)
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("empty run = %q, want []", got)
	}

	buf.Reset()
	in := []Finding{{
		Pos:     token.Position{Filename: "internal/core/x.go", Line: 7, Column: 3},
		Check:   "arenaescape",
		Message: "recycled scratch returned past the engine boundary",
	}}
	if err := WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(out) != 1 {
		t.Fatalf("decoded %d findings, want 1", len(out))
	}
	for key, want := range map[string]any{
		"file": "internal/core/x.go", "line": 7.0, "column": 3.0,
		"check": "arenaescape", "message": "recycled scratch returned past the engine boundary",
	} {
		if out[0][key] != want {
			t.Errorf("json[%q] = %v, want %v", key, out[0][key], want)
		}
	}
}

// TestEscapeChainCrossesCall pins the interprocedural part of the tentpole:
// the finding for LeakViaHelper (scratch obtained inside grab, returned by
// the exported caller) must carry the whole chain — pool method, helper,
// boundary — in its message.
func TestEscapeChainCrossesCall(t *testing.T) {
	findings := lintFixture(t, "example.com/internal/geocache", "arenaescape_src.go")
	var msg string
	for _, f := range findings {
		if f.Check == "arenaescape" && f.Pos.Line == 64 {
			msg = f.Message
		}
	}
	if msg == "" {
		t.Fatalf("no arenaescape finding at line 64 (LeakViaHelper): %v", findings)
	}
	for _, part := range []string{"scratch from (*Arena).Rects", "returned by grab", "LeakViaHelper"} {
		if !strings.Contains(msg, part) {
			t.Errorf("chain message %q is missing %q", msg, part)
		}
	}
}
