package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the interprocedural layer of odrc-lint: a module-wide view of
// every type-checked package, a static call graph over it, and the Pass-like
// plumbing the whole-program checkers (arenaescape, ctxflow, lockdiscipline)
// run on. The per-function dataflow itself lives in summary.go.

// pkgUnit is one type-checked package of the program.
type pkgUnit struct {
	path  string
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// program is the whole module after type-checking: the unit list plus the
// lazily built function index and dataflow summaries shared by the
// interprocedural checkers.
type program struct {
	fset  *token.FileSet
	units []*pkgUnit

	funcs   map[*types.Func]*funcInfo
	ordered []*funcInfo // funcs in deterministic (file, position) order

	summariesDone bool
}

// funcInfo is one function declaration of the module, with everything the
// summary engine needs: its AST, its package's type info, its callers (for
// the fixpoint worklist), and its computed summary.
type funcInfo struct {
	fn   *types.Func
	decl *ast.FuncDecl
	unit *pkgUnit

	nparams  int // receiver (when present) + declared parameters
	nresults int
	ctxParam int // flat index of the context.Context parameter, or -1

	sum     *summary
	callers map[*funcInfo]bool
}

// name renders the function for messages: "Pkgname.Func" or "(*T).Method".
func (fi *funcInfo) name() string {
	if recv := fi.fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			return "(*" + typeName(p.Elem()) + ")." + fi.fn.Name()
		}
		return typeName(t) + "." + fi.fn.Name()
	}
	return fi.fn.Name()
}

func typeName(t types.Type) string {
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

// exported reports whether the function is reachable from outside its
// package: an exported name on either a package-level function or a method
// of an exported type.
func (fi *funcInfo) exported() bool {
	if !fi.fn.Exported() {
		return false
	}
	recv := fi.fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return true
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Exported()
	}
	return true
}

// buildProgram indexes every function declaration of the units and wires the
// reverse call graph. Summaries start empty; computeSummaries fills them.
func buildProgram(fset *token.FileSet, units []*pkgUnit) *program {
	prog := &program{fset: fset, units: units, funcs: map[*types.Func]*funcInfo{}}
	for _, u := range units {
		for _, f := range u.files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := u.info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &funcInfo{
					fn: fn, decl: fd, unit: u,
					ctxParam: -1,
					sum:      newSummary(),
					callers:  map[*funcInfo]bool{},
				}
				sig := fn.Type().(*types.Signature)
				if sig.Recv() != nil {
					fi.nparams++
				}
				fi.nparams += sig.Params().Len()
				fi.nresults = sig.Results().Len()
				for i := 0; i < sig.Params().Len(); i++ {
					if isContextType(sig.Params().At(i).Type()) {
						fi.ctxParam = i
						if sig.Recv() != nil {
							fi.ctxParam++
						}
						break
					}
				}
				fi.sum.retScratch = make([]chain, fi.nresults)
				fi.sum.retParams = make([]uint64, fi.nresults)
				fi.sum.persist = make([]chain, fi.nparams)
				prog.funcs[fn] = fi
				prog.ordered = append(prog.ordered, fi)
			}
		}
	}
	sort.Slice(prog.ordered, func(i, j int) bool {
		a, b := prog.fset.Position(prog.ordered[i].decl.Pos()), prog.fset.Position(prog.ordered[j].decl.Pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	// Reverse edges: for each static call site, record the caller.
	for _, fi := range prog.ordered {
		caller := fi
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := prog.staticCallee(caller.unit.info, call); callee != nil {
				callee.callers[caller] = true
			}
			return true
		})
	}
	return prog
}

// staticCallee resolves a call expression to a module function declaration,
// or nil for builtins, dynamic calls, and out-of-module callees.
func (p *program) staticCallee(info *types.Info, call *ast.CallExpr) *funcInfo {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return p.funcs[fn]
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isShallow reports whether values of t are reference-free: copying such a
// value cannot keep an alias of any buffer it was copied out of. Strings are
// immutable and count as shallow.
func isShallow(t types.Type) bool {
	return isShallowSeen(t, map[types.Type]bool{})
}

func isShallowSeen(t types.Type, seen map[types.Type]bool) bool {
	if t == nil {
		return false
	}
	if seen[t] {
		return true // recursion through a pointer would already be deep
	}
	seen[t] = true
	switch tt := t.Underlying().(type) {
	case *types.Basic:
		return true
	case *types.Struct:
		for i := 0; i < tt.NumFields(); i++ {
			if !isShallowSeen(tt.Field(i).Type(), seen) {
				return false
			}
		}
		return true
	case *types.Array:
		return isShallowSeen(tt.Elem(), seen)
	default:
		// Pointers, slices, maps, chans, funcs, interfaces, type params.
		return false
	}
}

// scratchPoolTypeName reports whether t (through pointers) is one of the
// recycled scratch pools whose handed-out buffers must not outlive the run:
// geocache.Arena, core's shardPool, and sweep.Pool. Arena and shardPool are
// matched by type name (like sharedbuf, so fixtures stay self-contained);
// the generic name "Pool" additionally requires the sweep package.
func scratchPoolTypeName(t types.Type) (string, bool) {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := n.Obj()
	switch obj.Name() {
	case "Arena", "shardPool":
		return obj.Name(), true
	case "Pool":
		if obj.Pkg() != nil && pkgIs(obj.Pkg().Path(), "internal/sweep") {
			return "Pool", true
		}
	}
	return "", false
}

// persistentTypeName reports whether t (through pointers) is a struct that
// outlives the run from scratch's point of view: the Report handed back to
// the caller and the geometry cache's memo tables. A scratch buffer written
// into either survives its Put and corrupts a later (or concurrent) reader.
func persistentTypeName(t types.Type) (string, bool) {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	switch name := n.Obj().Name(); name {
	case "Report", "Cache":
		return name, true
	}
	return "", false
}

// ProgPass is the whole-program analogue of Pass: the state handed to each
// interprocedural checker.
type ProgPass struct {
	Prog *program

	findings *[]Finding
	seen     map[string]bool
}

// Fset returns the program's file set.
func (p *ProgPass) Fset() *token.FileSet { return p.Prog.fset }

// Reportf records a finding at pos, deduplicating identical (pos, check)
// reports — interprocedural walks can reach the same sink twice.
func (p *ProgPass) Reportf(pos token.Pos, check, format string, args ...any) {
	position := p.Prog.fset.Position(pos)
	key := fmt.Sprintf("%s:%d:%d:%s", position.Filename, position.Line, position.Column, check)
	if p.seen[key] {
		return
	}
	p.seen[key] = true
	*p.findings = append(*p.findings, Finding{
		Pos:     position,
		Check:   check,
		Message: fmt.Sprintf(format, args...),
	})
}

// ProgramChecker is one interprocedural checker: it sees the whole module at
// once instead of one package at a time.
type ProgramChecker struct {
	Name string
	Doc  string
	Run  func(*ProgPass)
}

// ProgramCheckers is the interprocedural suite, in reporting order.
var ProgramCheckers = []*ProgramChecker{ArenaEscape, CtxFlow, LockDiscipline}

// runProgramCheckers runs the selected interprocedural checkers over the
// program and returns their findings (pre-waiver, unsorted).
func runProgramCheckers(prog *program, enabled map[string]bool) []Finding {
	var findings []Finding
	pass := &ProgPass{Prog: prog, findings: &findings, seen: map[string]bool{}}
	need := false
	for _, c := range ProgramCheckers {
		if enabled == nil || enabled[c.Name] {
			need = true
		}
	}
	if !need {
		return nil
	}
	computeSummaries(prog)
	for _, c := range ProgramCheckers {
		if enabled != nil && !enabled[c.Name] {
			continue
		}
		c.Run(pass)
	}
	return findings
}

// posString renders a position for use inside a finding message.
func (p *program) posString(pos token.Pos) string {
	ps := p.fset.Position(pos)
	return fmt.Sprintf("%s:%d", ps.Filename, ps.Line)
}

// exprPath flattens a selector/index chain to a stable textual key, e.g.
// "e.shards" — used to match a mutex's base object against a guarded field's
// base object in lockdiscipline, and for readable messages.
func exprPath(e ast.Expr) (string, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name, true
	case *ast.SelectorExpr:
		base, ok := exprPath(x.X)
		if !ok {
			return "", false
		}
		return base + "." + x.Sel.Name, true
	case *ast.ParenExpr:
		return exprPath(x.X)
	case *ast.StarExpr:
		return exprPath(x.X)
	case *ast.IndexExpr:
		base, ok := exprPath(x.X)
		if !ok {
			return "", false
		}
		return base + "[]", true
	}
	return "", false
}

// chainString joins an escape chain for a message.
func chainString(c chain) string {
	return strings.Join(c, " → ")
}
