// Package analysis is odrc-lint: a static-analysis suite (stdlib go/ast +
// go/types only) that machine-checks the repository's written invariants —
// the rules DESIGN.md states in prose and PR reviews used to police by hand:
//
//   - maprange: deterministic packages must not iterate Go maps directly,
//     because map order is randomized and violation/report order would come
//     to depend on it. Keys must be collected and sorted first.
//   - clock: host work must be timed through infra.Profiler / hostPhase so
//     it enters the modeled CPU+GPU timeline; raw time.Now/time.Since calls
//     outside internal/infra and internal/bench silently drift the modeled
//     device clock.
//   - rawgo: all fan-out must ride the bounded worker pool (internal/pool);
//     a raw `go` statement escapes the pool's panic propagation, its worker
//     bound, and the race-tested code paths.
//   - argmut: exported functions must not sort or append in place into a
//     parameter slice (the DedupViolations bug class) — callers' slices must
//     stay untouched.
//
// Intentional exceptions are waived with a trailing comment on the offending
// line:
//
//	start := time.Now() //odrc:allow clock — measured Wall, feeds HostAdvance
//
// A waiver names one check and must carry a reason after an em dash (or
// "--"). Waivers are themselves checked: a waiver on a line that no longer
// triggers its check is a stale-waiver finding, so exceptions cannot outlive
// the code they excuse.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one lint result, rendered as "file:line: [check] message".
type Finding struct {
	Pos     token.Position
	Check   string
	Message string
}

// String renders the finding in the canonical file:line: [check] message form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Check, f.Message)
}

// Pass is the per-package state handed to each checker.
type Pass struct {
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
	PkgPath string

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, check, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:     p.Fset.Position(pos),
		Check:   check,
		Message: fmt.Sprintf(format, args...),
	})
}

// Checker is one invariant checker.
type Checker struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Checkers is the full suite, in reporting order.
var Checkers = []*Checker{MapRange, Clock, RawGo, ArgMut, SharedBuf}

// WaiverCheck is the pseudo-check name used for findings about the waiver
// comments themselves (malformed, unknown check, stale).
const WaiverCheck = "waiver"

// allCheckNames lists every checker, per-package and interprocedural, in
// reporting order.
func allCheckNames() []string {
	var names []string
	for _, c := range Checkers {
		names = append(names, c.Name)
	}
	for _, c := range ProgramCheckers {
		names = append(names, c.Name)
	}
	return names
}

// knownCheck reports whether name names a real checker (per-package or
// interprocedural).
func knownCheck(name string) bool {
	for _, n := range allCheckNames() {
		if n == name {
			return true
		}
	}
	return false
}

// enabledSet validates a -check selection against the known checkers. An
// empty selection enables everything (returned as nil).
func enabledSet(names []string) (map[string]bool, error) {
	if len(names) == 0 {
		return nil, nil
	}
	valid := allCheckNames()
	set := map[string]bool{}
	for _, name := range names {
		if !knownCheck(name) {
			return nil, fmt.Errorf("unknown check %q (valid checks: %s)", name, strings.Join(valid, ", "))
		}
		set[name] = true
	}
	return set, nil
}

// pkgIs reports whether pkgPath's trailing segments equal suffix (e.g.
// pkgIs("opendrc/internal/core", "internal/core") is true, but a package
// merely named "core" elsewhere does not match).
func pkgIs(pkgPath, suffix string) bool {
	return pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix)
}

// deterministicPkgNames lists the packages whose outputs must be
// bit-identical across runs and worker counts; maprange applies only here.
var deterministicPkgNames = []string{"core", "checks", "kernels", "klayout", "layout", "rules", "boolop"}

func isDeterministicPkg(pkgPath string) bool {
	for _, name := range deterministicPkgNames {
		if pkgIs(pkgPath, "internal/"+name) {
			return true
		}
	}
	return false
}

// waiver is one parsed //odrc:allow comment.
type waiver struct {
	pos   token.Position
	check string
	used  bool
}

const waiverPrefix = "//odrc:allow"

// collectWaivers parses every //odrc:allow comment in the files. Malformed
// waivers are returned as findings immediately.
func collectWaivers(fset *token.FileSet, files []*ast.File) ([]*waiver, []Finding) {
	var ws []*waiver
	var bad []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, waiverPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, waiverPrefix))
				name, reason, ok := splitWaiver(rest)
				switch {
				case !ok:
					bad = append(bad, Finding{Pos: pos, Check: WaiverCheck,
						Message: "malformed waiver: want //odrc:allow <check> — <reason>"})
				case !knownCheck(name):
					bad = append(bad, Finding{Pos: pos, Check: WaiverCheck,
						Message: fmt.Sprintf("waiver names unknown check %q", name)})
				case reason == "":
					bad = append(bad, Finding{Pos: pos, Check: WaiverCheck,
						Message: fmt.Sprintf("waiver for %q has no reason after the dash", name)})
				default:
					ws = append(ws, &waiver{pos: pos, check: name})
				}
			}
		}
	}
	return ws, bad
}

// splitWaiver splits "check — reason" (em dash or "--") into its parts.
func splitWaiver(s string) (check, reason string, ok bool) {
	for _, dash := range []string{"—", "--"} {
		if i := strings.Index(s, dash); i >= 0 {
			return strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+len(dash):]), true
		}
	}
	return "", "", false
}

// applyWaivers suppresses findings covered by a same-file same-line waiver
// for the same check, then reports every waiver that excused nothing. A
// waiver for a check outside the enabled set is ignored entirely (neither
// suppressing nor stale), so -check runs do not flag unrelated waivers.
func applyWaivers(findings []Finding, ws []*waiver, enabled map[string]bool) []Finding {
	out := findings[:0]
	for _, f := range findings {
		waived := false
		for _, w := range ws {
			if w.check == f.Check && w.pos.Filename == f.Pos.Filename && w.pos.Line == f.Pos.Line {
				w.used = true
				waived = true
			}
		}
		if !waived {
			out = append(out, f)
		}
	}
	for _, w := range ws {
		if !w.used && (enabled == nil || enabled[w.check]) {
			out = append(out, Finding{Pos: w.pos, Check: WaiverCheck,
				Message: fmt.Sprintf("stale waiver: the line no longer triggers %q — remove the //odrc:allow", w.check)})
		}
	}
	return out
}

// runPkgCheckers runs the enabled per-package checkers over one unit and
// returns the raw (pre-waiver, unsorted) findings.
func runPkgCheckers(fset *token.FileSet, u *pkgUnit, enabled map[string]bool) []Finding {
	var findings []Finding
	pass := &Pass{
		Fset: fset, Files: u.files, Pkg: u.pkg, Info: u.info, PkgPath: u.path,
		findings: &findings,
	}
	for _, c := range Checkers {
		if enabled != nil && !enabled[c.Name] {
			continue
		}
		c.Run(pass)
	}
	return findings
}

// checkPackage runs the full suite — per-package checkers plus the
// interprocedural checkers on a one-package program — and returns the
// post-waiver findings. It is the single-package pipeline the fixture tests
// drive; Run composes the same pieces module-wide.
func checkPackage(fset *token.FileSet, pkgPath string, files []*ast.File, pkg *types.Package, info *types.Info) []Finding {
	return checkPackageChecks(fset, pkgPath, files, pkg, info, nil)
}

func checkPackageChecks(fset *token.FileSet, pkgPath string, files []*ast.File, pkg *types.Package, info *types.Info, enabled map[string]bool) []Finding {
	unit := &pkgUnit{path: pkgPath, files: files, pkg: pkg, info: info}
	findings := runPkgCheckers(fset, unit, enabled)
	prog := buildProgram(fset, []*pkgUnit{unit})
	findings = append(findings, runProgramCheckers(prog, enabled)...)
	ws, bad := collectWaivers(fset, files)
	findings = applyWaivers(findings, ws, enabled)
	findings = append(findings, bad...)
	sortFindings(findings)
	return findings
}

// sortFindings orders findings by file, line, column, then check name.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
}

// pkgNameOf resolves an identifier to the import path of the package it
// names, or "" when it is not a package qualifier.
func pkgNameOf(info *types.Info, id *ast.Ident) string {
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// selectorPkgCall matches expr against pkg.Name(...) for an imported package
// path, returning the selected name and arguments.
func selectorPkgCall(info *types.Info, call *ast.CallExpr, pkgPath string) (name string, args []ast.Expr, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", nil, false
	}
	id, isID := sel.X.(*ast.Ident)
	if !isID || pkgNameOf(info, id) != pkgPath {
		return "", nil, false
	}
	return sel.Sel.Name, call.Args, true
}
