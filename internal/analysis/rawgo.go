package analysis

import (
	"go/ast"
)

// RawGo keeps all concurrency on the bounded worker pool: a raw `go`
// statement outside internal/pool escapes the pool's worker bound, its panic
// propagation, and the fan-out paths the race detector exercises in tests.
var RawGo = &Checker{
	Name: "rawgo",
	Doc:  "no go statements outside internal/pool",
	Run:  runRawGo,
}

func runRawGo(p *Pass) {
	if pkgIs(p.PkgPath, "internal/pool") {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				p.Reportf(g.Pos(), "rawgo",
					"raw go statement: fan out through internal/pool so concurrency stays bounded and panic-safe")
			}
			return true
		})
	}
}
