package analysis

import (
	"go/ast"
	"go/types"
)

// MapRange enforces determinism in report-producing packages: `range` over a
// map type is forbidden unless the loop only collects the keys into a slice
// that is sorted later in the same function. Go randomizes map iteration
// order, so anything else makes violation order (and therefore report bytes)
// differ from run to run — the byMag bug class PR 1 fixed by hand.
var MapRange = &Checker{
	Name: "maprange",
	Doc:  "no map iteration in deterministic packages unless keys are collected and sorted",
	Run:  runMapRange,
}

func runMapRange(p *Pass) {
	if !isDeterministicPkg(p.PkgPath) {
		return
	}
	for _, f := range p.Files {
		bodies := functionBodies(f)
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if collectsAndSortsKeys(p, rs, enclosingBody(bodies, rs)) {
				return true
			}
			p.Reportf(rs.Pos(), "maprange",
				"map iteration order is randomized; collect the keys into a slice and sort it before ranging")
			return true
		})
	}
}

// functionBodies returns every function body in the file (declarations and
// literals), used to find the innermost function enclosing a statement.
func functionBodies(f *ast.File) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, fn.Body)
			}
		case *ast.FuncLit:
			out = append(out, fn.Body)
		}
		return true
	})
	return out
}

// enclosingBody returns the smallest function body containing n, or nil.
func enclosingBody(bodies []*ast.BlockStmt, n ast.Node) *ast.BlockStmt {
	var best *ast.BlockStmt
	for _, b := range bodies {
		if b.Pos() <= n.Pos() && n.End() <= b.End() {
			if best == nil || (best.Pos() <= b.Pos() && b.End() <= best.End()) {
				best = b
			}
		}
	}
	return best
}

// collectsAndSortsKeys recognizes the one permitted map-range idiom:
//
//	for k := range m {
//	    keys = append(keys, k)
//	}
//	sort.Slice(keys, ...)   // or sort.Ints/Strings/..., slices.Sort*
//
// The loop may not use the map value, every statement in its body must be an
// append into a slice, and at least one appended-to slice must be passed to
// a sort call later in the same function.
func collectsAndSortsKeys(p *Pass, rs *ast.RangeStmt, body *ast.BlockStmt) bool {
	if !identIsBlankOrNil(rs.Value) {
		return false
	}
	// Every body statement must be `dst = append(dst, ...)`; remember dsts.
	var dsts []types.Object
	for _, st := range rs.Body.List {
		as, ok := st.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isBuiltinAppend(p.Info, call) || len(call.Args) == 0 {
			return false
		}
		first, ok := call.Args[0].(*ast.Ident)
		if !ok || p.Info.ObjectOf(first) != p.Info.ObjectOf(lhs) {
			return false
		}
		dsts = append(dsts, p.Info.ObjectOf(lhs))
	}
	if len(dsts) == 0 || body == nil {
		return false
	}
	// A sort of any collected slice after the loop blesses the idiom.
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		if !isSortCall(p.Info, call) {
			return true
		}
		arg, ok := call.Args[0].(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.ObjectOf(arg)
		for _, d := range dsts {
			if obj == d {
				sorted = true
			}
		}
		return true
	})
	return sorted
}

func identIsBlankOrNil(e ast.Expr) bool {
	if e == nil {
		return true
	}
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// isSortCall matches sort.* and slices.Sort* calls that order their first
// argument in place.
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	if name, _, ok := selectorPkgCall(info, call, "sort"); ok {
		switch name {
		case "Slice", "SliceStable", "Sort", "Stable", "Ints", "Strings", "Float64s":
			return true
		}
	}
	if name, _, ok := selectorPkgCall(info, call, "slices"); ok {
		switch name {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}
