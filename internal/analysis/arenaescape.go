package analysis

// ArenaEscape enforces the scratch-ownership rule behind PR 6's recycled
// buffers (DESIGN.md §9): memory handed out by geocache.Arena, the engine's
// shardPool, or sweep.Pool is SCRATCH — get, fill, use, Put, all within the
// run. A buffer that escapes — returned past the engine boundary by an
// exported function, stored in a package-level variable, or written into a
// Report/cache struct that survives the run — is recycled underneath its
// new owner on the next Get, which is exactly the cross-request report
// corruption a long-lived odrcd session would turn silent leaks into.
//
// The checker is interprocedural: per-function summaries track which results
// alias scratch and which parameters a callee stores persistently, so an
// escape that crosses any number of call boundaries is still caught, and the
// finding lands at the offending site with the full escape chain in the
// message.
var ArenaEscape = &ProgramChecker{
	Name: "arenaescape",
	Doc:  "scratch from geocache.Arena / shardPool / sweep.Pool must not outlive the run (no exported returns, package vars, or Report/cache stores)",
	Run:  runArenaEscape,
}

func runArenaEscape(p *ProgPass) {
	for _, fi := range p.Prog.ordered {
		newEvaluator(p.Prog, fi, p).run()
	}
}
