// Fixture for the //odrc:allow waiver machinery. Line numbers are asserted
// in checkers_test.go — append new cases at the end.
package fixture

import "time"

// waivedNow triggers clock but carries a valid waiver: no finding.
func waivedNow() time.Time {
	return time.Now() //odrc:allow clock — fixture: deliberate exception with a reason
}

// staleWaiver excuses a check the line does not trigger: waiver finding on
// line 15.
func staleWaiver() int {
	return 1 //odrc:allow clock — fixture: nothing here reads the clock
}

// wrongCheckWaiver triggers clock but waives rawgo: clock finding on line 21
// AND a stale-waiver finding on line 21.
func wrongCheckWaiver() time.Time {
	return time.Now() //odrc:allow rawgo — fixture: waiver for the wrong check
}
