// Fixture for the sharedbuf checker. Line numbers are asserted in
// checkers_test.go — append new cases at the end. The types mirror the
// cached geometry buffers by name; the checker matches names, not import
// paths, so the fixture stays self-contained.
package fixture

import "sort"

type PlacedPoly struct{ ID int }

type Edges struct {
	X0 []int64
	N  int
}

type MBRTable struct {
	XLo    []int64
	XOrder []int32
}

// Overwriting an element of a cached flatten slice: finding on line 23.
func overwritePoly(ps []PlacedPoly) {
	ps[0] = PlacedPoly{}
}

// Writing a field through an element: finding on line 28.
func pokePolyField(ps []PlacedPoly) {
	ps[0].ID = 1
}

// Writing a packed buffer's coordinate array: finding on line 33.
func pokeEdges(e *Edges) {
	e.X0[0] = 9
}

// Mutating a scalar field of the shared buffer: finding on line 38.
func bumpEdgeCount(e *Edges) {
	e.N++
}

// Re-sorting the cached global x-order: finding on line 43.
func reorderTable(t *MBRTable) {
	sort.Slice(t.XOrder, func(i, j int) bool { return t.XOrder[i] < t.XOrder[j] })
}

// Sorting a cached poly slice in place: finding on line 48.
func reorderPolys(ps []PlacedPoly) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].ID < ps[j].ID })
}

// Reading cached buffers is always fine: clean.
func readAll(ps []PlacedPoly, e *Edges, t *MBRTable) int64 {
	total := int64(ps[0].ID) + int64(e.N)
	for _, i := range t.XOrder {
		total += e.X0[0] + t.XLo[i]
	}
	return total
}

// Sorting a fresh copy is the blessed pattern: clean.
func sortedCopy(t *MBRTable) []int32 {
	order := append([]int32(nil), t.XOrder...)
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	return order
}

// Building and filling a local slice of another type: clean.
func localScratch(ps []PlacedPoly) []int {
	ids := make([]int, len(ps))
	for i := range ps {
		ids[i] = ps[i].ID
	}
	sort.Ints(ids)
	return ids
}

// A mutation the producer owns can be waived at a consumer call site when a
// transition demands it: waived, no finding.
func waivedPoke(e *Edges) {
	e.N = 0 //odrc:allow sharedbuf — fixture exercises the waiver path
}
