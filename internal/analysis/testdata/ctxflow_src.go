// Fixture for the ctxflow checker. Line numbers are asserted in
// checkers_test.go — append new cases at the end. ForEachCtx mirrors the
// pool fan-out entry point by name and signature; the checker matches the
// name plus a context parameter, so the fixture stays self-contained.
package fixture

import "context"

// ForEachCtx stands in for pool.ForEachCtx: a cancellable fan-out.
func ForEachCtx(ctx context.Context, n int, fn func(int) error) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := fn(i); err != nil {
			return err
		}
	}
	return nil
}

// TN: the ctx is plumbed all the way to the fan-out.
func RunAll(ctx context.Context, n int) error {
	return ForEachCtx(ctx, n, func(int) error { return nil })
}

// Context-free compat wrapper, waived like the real pool.ForEach.
func runAll(n int) error {
	return ForEachCtx(context.Background(), n, func(int) error { return nil }) //odrc:allow ctxflow — fixture: compat wrapper, mirrors pool.ForEach
}

// TP (interprocedural): Drive received a ctx but fans out through a
// context-free callee — the fan-out below is uncancellable (line 35).
func Drive(ctx context.Context, n int) error {
	return runAll(n)
}

// deepRun reaches the fan-out two hops down.
func deepRun(n int) error { return runAll(n) }

// TP (transitive): same drop, two call hops above the pool (line 43).
func DriveDeep(ctx context.Context, n int) error {
	return deepRun(n)
}

// TP: fresh Background in library code with no ctx parameter (line 48).
func detached(n int) error {
	ctx := context.Background()
	return ForEachCtx(ctx, n, func(int) error { return nil })
}

// TP: a ctx was received but a fresh TODO is used instead (line 54).
func Shadow(ctx context.Context, n int) error {
	fresh := context.TODO()
	return ForEachCtx(fresh, n, func(int) error { return nil })
}

// WithTenant stands in for pool.WithTenant: a context-tagging wrapper —
// takes a context, returns the derived tagged context.
func WithTenant(ctx context.Context, tenant string) context.Context {
	_ = tenant
	return ctx
}

type holder struct{ saved context.Context }

// TP (wrapper retag): Tag receives a ctx but tags a stored one — the
// result drops the caller's cancellation and tenant chain (line 70).
func (h *holder) Tag(ctx context.Context, tenant string) context.Context {
	return WithTenant(h.saved, tenant)
}

// TN: the tag rides the incoming ctx.
func (h *holder) TagOK(ctx context.Context, tenant string) context.Context {
	return WithTenant(ctx, tenant)
}

// TN: derivation through a local — the chain stays intact hop to hop.
func TagTwice(ctx context.Context, a, b string) context.Context {
	tagged := WithTenant(ctx, a)
	return WithTenant(tagged, b)
}
