// Fixture for malformed waivers. Line numbers are asserted in
// checkers_test.go — append new cases at the end.
package fixture

// missing dash and reason: waiver finding on line 7.

//odrc:allow maprange
func a() {}

// unknown check name: waiver finding on line 12.

//odrc:allow frobnicate — no such checker
func b() {}

// dash but empty reason: waiver finding on line 17.

//odrc:allow clock —
func c() {}

// double-dash separator with a reason is accepted: clean.
func d() int {
	return 2 + 2 //odrc:allow argmut -- fixture: valid form, but stale (line 22)
}
