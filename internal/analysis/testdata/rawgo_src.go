// Fixture for the rawgo checker. Line numbers are asserted in
// checkers_test.go — append new cases at the end.
package fixture

// spawn launches a raw goroutine: finding on line 7.
func spawn(fn func()) {
	go fn()
}

// submit hands the closure to a pool-style runner instead: clean.
func submit(run func(func()), fn func()) {
	run(fn)
}
