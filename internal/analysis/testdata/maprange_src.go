// Fixture for the maprange checker. Line numbers are asserted in
// checkers_test.go — append new cases at the end.
package fixture

import "sort"

// rangeDirect iterates a map directly: finding on line 10.
func rangeDirect(m map[string]int) int {
	n := 0
	for k := range m {
		n += len(k)
	}
	return n
}

// rangeValue uses the map value inside the loop: finding on line 19.
func rangeValue(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// collectWithoutSort collects keys but never sorts them: finding on line 28.
func collectWithoutSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// collectAndSort is the blessed idiom: no finding.
func collectAndSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// collectAndSortSlice uses sort.Slice: no finding.
func collectAndSortSlice(m map[int64]bool) []int64 {
	var keys []int64
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// sliceRange ranges over a slice, not a map: no finding.
func sliceRange(vs []int) int {
	n := 0
	for _, v := range vs {
		n += v
	}
	return n
}
