// Fixture for the argmut checker. Line numbers are asserted in
// checkers_test.go — append new cases at the end.
package fixture

import "sort"

// SortInPlace reorders the caller's slice: finding on line 9.
func SortInPlace(vs []int) {
	sort.Ints(vs)
}

// SortSliceInPlace reorders through sort.Slice: finding on line 14.
func SortSliceInPlace(vs []int) {
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
}

// GrowInPlace appends back into the parameter: finding on line 19.
func GrowInPlace(vs []int) []int {
	vs = append(vs, 1)
	return vs
}

// SortCopy sorts a fresh copy: clean.
func SortCopy(vs []int) []int {
	out := append([]int(nil), vs...)
	sort.Ints(out)
	return out
}

// unexported mutation is outside the exported-API contract: clean.
func sortPrivate(vs []int) {
	sort.Ints(vs)
}

// AppendElsewhere appends the parameter into another slice: clean.
func AppendElsewhere(vs []int) []int {
	var out []int
	out = append(out, vs...)
	return out
}
