// Fixture: package main is exempt from the Background/TODO rule — an
// entry point is exactly where a root context is supposed to be created.
package main

import "context"

func rootCtx() context.Context {
	return context.Background()
}

func main() {
	_ = rootCtx()
}
