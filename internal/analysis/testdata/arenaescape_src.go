// Fixture for the arenaescape checker. Line numbers are asserted in
// checkers_test.go — append new cases at the end. The Arena type mirrors
// geocache.Arena by name; the checker matches scratch pools by type name
// (like sharedbuf), so the fixture stays self-contained.
package fixture

type Rect struct{ X0, Y0, X1, Y1 int64 }

// Report mirrors core.Report by name: its fields outlive the run.
type Report struct{ Rects []Rect }

// Arena is a recycled scratch pool: Rects hands out a buffer that PutRects
// will recycle under whoever still holds it.
type Arena struct{ free [][]Rect }

func (a *Arena) Rects(n int) []Rect {
	if len(a.free) > 0 {
		b := a.free[len(a.free)-1]
		a.free = a.free[:len(a.free)-1]
		return b[:0]
	}
	return make([]Rect, 0, n)
}

func (a *Arena) PutRects(b []Rect) { a.free = append(a.free, b) }

var stash []Rect

// TN: scratch used locally and put back; only a flat count escapes.
func Sum(a *Arena, n int) int {
	buf := a.Rects(n)
	total := 0
	for _, r := range buf {
		total += int(r.X0)
	}
	a.PutRects(buf)
	return total
}

// TN: the scratch is copied before crossing the boundary.
func Snapshot(a *Arena, n int) []Rect {
	buf := a.Rects(n)
	out := make([]Rect, len(buf))
	copy(out, buf)
	a.PutRects(buf)
	return out
}

// TN: an unexported function may return scratch — the boundary check fires
// only where it leaves the package surface.
func grab(a *Arena, n int) []Rect {
	return a.Rects(n)
}

// TP: scratch returned straight past the exported boundary (line 57).
func Leak(a *Arena, n int) []Rect {
	return a.Rects(n)
}

// TP (cross-call): the scratch originates inside grab; the escape crosses
// the call boundary and is reported at the exported return (line 64).
func LeakViaHelper(a *Arena, n int) []Rect {
	buf := grab(a, n)
	return buf
}

// TP: scratch stored into a package-level variable (line 70).
func LeakGlobal(a *Arena, n int) {
	buf := a.Rects(n)
	stash = buf
}

// TP: scratch written into a Report field, which outlives the run (line 76).
func LeakReport(a *Arena, n int, r *Report) {
	buf := a.Rects(n)
	r.Rects = buf
}

// keep stores its parameter into a global: its summary says param 0
// persists, so handing it scratch is a call-site escape.
func keep(b []Rect) { stash = b }

// TP (cross-call sink): the store happens inside keep; the escape is
// reported at the call that handed the scratch over (line 87).
func LeakViaCall(a *Arena, n int) {
	buf := a.Rects(n)
	keep(buf)
}

// Waived at the reported site: suppressed, waiver consumed.
func LeakWaived(a *Arena, n int) []Rect {
	buf := a.Rects(n)
	return buf //odrc:allow arenaescape — fixture: accepted escape, waiver sits on the reported line
}

// Waiver on the scratch origin instead of the reported site: the finding
// survives (line 101) and the waiver on line 100 goes stale — exactly what
// happens when an interprocedural finding moves and leaves its waiver behind.
func LeakOriginWaived(a *Arena, n int) []Rect {
	buf := a.Rects(n) //odrc:allow arenaescape — fixture: wrong line, the finding is at the return
	return buf
}
