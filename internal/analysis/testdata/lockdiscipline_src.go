// Fixture for the lockdiscipline checker. Line numbers are asserted in
// checkers_test.go — append new cases at the end.
package fixture

import "sync"

type table struct {
	mu   sync.Mutex
	free []int //odrc:guardedby mu
}

// TN: lock + deferred unlock covers the whole function.
func (t *table) get() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.free) == 0 {
		return 0
	}
	x := t.free[len(t.free)-1]
	t.free = t.free[:len(t.free)-1]
	return x
}

// TN: the early-return branch unlocks, but that unlock does not leak into
// the fall-through path, which is still under the lock.
func (t *table) put(x int) {
	t.mu.Lock()
	if x < 0 {
		t.mu.Unlock()
		return
	}
	t.free = append(t.free, x)
	t.mu.Unlock()
}

// TN: toggles inside a deferred func literal are tracked lexically.
func (t *table) drain() {
	defer func() {
		t.mu.Lock()
		t.free = nil
		t.mu.Unlock()
	}()
}

// TP: no lock at all (lines 47 and 50).
func (t *table) peek() int {
	if len(t.free) == 0 {
		return 0
	}
	return t.free[0]
}

// TP: the access after the Unlock is no longer covered (line 58).
func (t *table) reset() {
	t.mu.Lock()
	t.free = nil
	t.mu.Unlock()
	t.free = nil
}

// TP: holding a's lock does not license touching b's field (line 64).
func move(a, b *table) {
	a.mu.Lock()
	b.free = nil
	a.mu.Unlock()
}

// Waived access: suppressed, and the waiver is consumed (not stale).
func (t *table) snapshot() []int {
	return t.free //odrc:allow lockdiscipline — fixture: caller tolerates a racy snapshot
}

// Annotation errors are findings themselves (lines 75 and 76).
type badGuard struct {
	n int //odrc:guardedby
	m int //odrc:guardedby nosuch
}
