// Fixture for the clock checker. Line numbers are asserted in
// checkers_test.go — append new cases at the end.
package fixture

import "time"

// rawNow reads the wall clock directly: findings on lines 9 and 11.
func rawNow() time.Duration {
	start := time.Now()
	work()
	return time.Since(start)
}

// durationsOnly uses time types and constants but never the clock: clean.
func durationsOnly(d time.Duration) time.Duration {
	return d + 5*time.Millisecond
}

func work() {}
