package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"opendrc/internal/pool"
)

// Options configures a lint run.
type Options struct {
	// Checks restricts the run to the named checkers (per-package or
	// interprocedural). Empty means every checker.
	Checks []string
	// Workers bounds the per-package checker fan-out on the worker pool
	// (<= 0 selects GOMAXPROCS). Loading and type-checking stay
	// topo-ordered and sequential regardless.
	Workers int
}

// Stats summarizes a lint run for the CLI's cost line.
type Stats struct {
	Packages int // packages loaded and checked
	Checks   int // checkers run
}

// Run lints every non-test package under the module rooted at root (the
// directory holding go.mod) and returns the surviving findings, sorted.
// Finding filenames are reported relative to root.
func Run(root string) ([]Finding, error) {
	findings, _, err := RunOpts(root, Options{})
	return findings, err
}

// RunOpts is Run with a checker selection and a worker bound. Packages are
// parsed and type-checked in dependency order (imports first); the
// per-package checkers then fan out package-parallel on the worker pool, and
// the interprocedural checkers run once over the whole program. Findings are
// sorted by (file, line, column, check) across all packages, so output never
// depends on package-load or worker order.
func RunOpts(root string, opts Options) ([]Finding, Stats, error) {
	enabled, err := enabledSet(opts.Checks)
	if err != nil {
		return nil, Stats{}, err
	}
	fset := token.NewFileSet()
	pkgs, err := loadModule(fset, root)
	if err != nil {
		return nil, Stats{}, err
	}
	cache := map[string]*types.Package{}
	imp := &moduleImporter{
		fallback: importer.ForCompiler(fset, "source", nil),
		cache:    cache,
	}
	cfg := &types.Config{Importer: imp}
	units := make([]*pkgUnit, 0, len(pkgs))
	for _, pkg := range pkgs {
		info := newInfo()
		tpkg, err := cfg.Check(pkg.path, fset, pkg.files, info)
		if err != nil {
			return nil, Stats{}, fmt.Errorf("type-checking %s: %w", pkg.path, err)
		}
		cache[pkg.path] = tpkg
		units = append(units, &pkgUnit{path: pkg.path, files: pkg.files, pkg: tpkg, info: info})
	}

	// Per-package checkers are independent of each other: fan out one task
	// per package, each writing its own result slot.
	perPkg := make([][]Finding, len(units))
	pool.ForEach(opts.Workers, len(units), func(i int) {
		perPkg[i] = runPkgCheckers(fset, units[i], enabled)
	})
	var all []Finding
	for _, fs := range perPkg {
		all = append(all, fs...)
	}

	// The interprocedural checkers see the whole program at once.
	prog := buildProgram(fset, units)
	all = append(all, runProgramCheckers(prog, enabled)...)

	// Waivers apply module-wide: an interprocedural finding can only be
	// excused where it is reported, and a waiver is stale when nothing in
	// the entire run used it.
	var ws []*waiver
	for _, u := range units {
		uws, bad := collectWaivers(fset, u.files)
		ws = append(ws, uws...)
		all = append(all, bad...)
	}
	all = applyWaivers(all, ws, enabled)

	prefix := root + string(filepath.Separator)
	for i := range all {
		if rel, err := filepath.Rel(root, all[i].Pos.Filename); err == nil {
			all[i].Pos.Filename = rel
		}
		// Escape chains embed positions too; keep them root-relative.
		all[i].Message = strings.ReplaceAll(all[i].Message, prefix, "")
	}
	sortFindings(all)
	stats := Stats{Packages: len(units), Checks: len(allCheckNames())}
	if enabled != nil {
		stats.Checks = len(enabled)
	}
	return all, stats, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
}

// moduleImporter serves already-checked module packages from the cache and
// falls back to the source importer for the standard library.
type moduleImporter struct {
	fallback types.Importer
	cache    map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.cache[path]; ok {
		return pkg, nil
	}
	return m.fallback.Import(path)
}

// pkgSrc is one parsed, not-yet-type-checked package.
type pkgSrc struct {
	path    string
	files   []*ast.File
	imports []string // module-internal imports only
}

// loadModule parses every non-test package in the module and returns them in
// dependency order (imports before importers), so type-checking can proceed
// with a simple cache.
func loadModule(fset *token.FileSet, root string) ([]*pkgSrc, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	byPath := map[string]*pkgSrc{}
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		pkgPath := modPath
		if rel != "." {
			pkgPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg := byPath[pkgPath]
		if pkg == nil {
			pkg = &pkgSrc{path: pkgPath}
			byPath[pkgPath] = pkg
		}
		pkg.files = append(pkg.files, file)
		for _, spec := range file.Imports {
			ip, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			if ip == modPath || strings.HasPrefix(ip, modPath+"/") {
				pkg.imports = append(pkg.imports, ip)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return topoSortPkgs(byPath)
}

// topoSortPkgs orders packages imports-first; the walk is seeded in sorted
// path order so the result is deterministic.
func topoSortPkgs(byPath map[string]*pkgSrc) ([]*pkgSrc, error) {
	paths := make([]string, 0, len(byPath))
	for p := range byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	const (
		visiting = 1
		done     = 2
	)
	state := map[string]int{}
	var out []*pkgSrc
	var visit func(p string) error
	visit = func(p string) error {
		switch state[p] {
		case visiting:
			return fmt.Errorf("import cycle through %s", p)
		case done:
			return nil
		}
		state[p] = visiting
		pkg := byPath[p]
		for _, dep := range pkg.imports {
			if _, ok := byPath[dep]; !ok {
				continue // not a package we parsed (e.g. pruned dir)
			}
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[p] = done
		out = append(out, pkg)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// modulePath reads the module directive from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}
