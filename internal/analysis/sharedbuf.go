package analysis

import (
	"go/ast"
	"go/types"
)

// SharedBuf guards the geometry-cache immutability contract: the cross-rule
// cache hands every rule the same flatten slice, packed edge buffer, and MBR
// table, so an element write or in-place sort by one consumer would corrupt
// every other rule's input (and break bit-identical reports). Only the
// producing packages may construct or fill these buffers; everyone else
// treats them as frozen.
var SharedBuf = &Checker{
	Name: "sharedbuf",
	Doc:  "cached geometry buffers (PlacedPoly slices, Edges, MBRTable) are immutable outside their producing packages",
	Run:  runSharedBuf,
}

// sharedBufProducers are the packages that build the cached buffers and are
// allowed to write into them while doing so.
var sharedBufProducers = []string{
	"internal/geocache",
	"internal/kernels",
	"internal/layout",
}

// sharedBufTypes names the cached buffer types. Matching is by type name so
// the checker works on any package that round-trips these buffers, including
// the self-contained lint fixtures.
var sharedBufTypes = map[string]bool{
	"PlacedPoly": true, // cached flatten: []PlacedPoly shared across rules
	"Edges":      true, // packed SoA edge buffer, device-resident
	"MBRTable":   true, // per-layer MBR arrays + global x-order
}

func runSharedBuf(p *Pass) {
	for _, prod := range sharedBufProducers {
		if pkgIs(p.PkgPath, prod) {
			return
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					if name, ok := sharedBufWrite(p.Info, lhs); ok {
						p.Reportf(st.Pos(), "sharedbuf",
							"write into shared %s buffer; cached geometry is immutable outside its producer — copy before mutating", name)
					}
				}
			case *ast.IncDecStmt:
				if name, ok := sharedBufWrite(p.Info, st.X); ok {
					p.Reportf(st.Pos(), "sharedbuf",
						"write into shared %s buffer; cached geometry is immutable outside its producer — copy before mutating", name)
				}
			case *ast.CallExpr:
				if !isSortCall(p.Info, st) || len(st.Args) == 0 {
					return true
				}
				if name, ok := sharedBufSlice(p.Info, st.Args[0]); ok {
					p.Reportf(st.Pos(), "sharedbuf",
						"in-place sort of shared %s buffer; cached geometry is immutable outside its producer — sort a copy", name)
				}
			}
			return true
		})
	}
}

// sharedBufWrite reports whether the assignment target lhs stores through a
// cached buffer: an element of a cached slice (x[i] = v, x[i].F = v) or a
// field reached from a cached struct (e.X0[i] = v, e.N = v).
func sharedBufWrite(info *types.Info, lhs ast.Expr) (string, bool) {
	for {
		switch e := lhs.(type) {
		case *ast.IndexExpr:
			if name, ok := sharedBufSlice(info, e.X); ok {
				return name, true
			}
			lhs = e.X
		case *ast.SelectorExpr:
			if name, ok := sharedBufNamed(typeOf(info, e.X)); ok {
				return name, true
			}
			lhs = e.X
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		default:
			return "", false
		}
	}
}

// sharedBufSlice reports whether expr is a cached buffer slice: a slice whose
// element type is a cached type, or a field selected from a cached struct
// (t.XOrder, e.X0).
func sharedBufSlice(info *types.Info, expr ast.Expr) (string, bool) {
	if t := typeOf(info, expr); t != nil {
		if sl, ok := t.Underlying().(*types.Slice); ok {
			if name, ok := sharedBufNamed(sl.Elem()); ok {
				return name, true
			}
		}
	}
	if sel, ok := expr.(*ast.SelectorExpr); ok {
		if name, ok := sharedBufNamed(typeOf(info, sel.X)); ok {
			return name, true
		}
	}
	return "", false
}

// sharedBufNamed reports whether t (through pointers) is one of the cached
// buffer types, returning its name.
func sharedBufNamed(t types.Type) (string, bool) {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			name := tt.Obj().Name()
			return name, sharedBufTypes[name]
		default:
			return "", false
		}
	}
}

func typeOf(info *types.Info, expr ast.Expr) types.Type {
	if tv, ok := info.Types[expr]; ok {
		return tv.Type
	}
	return nil
}
