package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

func TestSplitWaiver(t *testing.T) {
	cases := []struct {
		in            string
		check, reason string
		ok            bool
	}{
		{"clock — measured wall feeds HostAdvance", "clock", "measured wall feeds HostAdvance", true},
		{"maprange -- double dash works too", "maprange", "double dash works too", true},
		{"clock —", "clock", "", true}, // empty reason is rejected later
		{"clock no dash at all", "", "", false},
		{"", "", "", false},
	}
	for _, tc := range cases {
		check, reason, ok := splitWaiver(tc.in)
		if check != tc.check || reason != tc.reason || ok != tc.ok {
			t.Errorf("splitWaiver(%q) = (%q, %q, %v), want (%q, %q, %v)",
				tc.in, check, reason, ok, tc.check, tc.reason, tc.ok)
		}
	}
}

func TestPkgIs(t *testing.T) {
	if !pkgIs("opendrc/internal/pool", "internal/pool") {
		t.Error("module-qualified path should match")
	}
	if !pkgIs("internal/pool", "internal/pool") {
		t.Error("bare path should match")
	}
	if pkgIs("opendrc/internal/poolparty", "internal/pool") {
		t.Error("prefix of another package name should not match")
	}
	if pkgIs("opendrc/pool", "internal/pool") {
		t.Error("non-internal path should not match")
	}
}

func TestDeterministicPkgs(t *testing.T) {
	for _, p := range []string{"m/internal/core", "m/internal/layout", "m/internal/boolop"} {
		if !isDeterministicPkg(p) {
			t.Errorf("%s should be deterministic", p)
		}
	}
	for _, p := range []string{"m/internal/gpu", "m/internal/infra", "m/cmd/odrc", "m"} {
		if isDeterministicPkg(p) {
			t.Errorf("%s should not be deterministic", p)
		}
	}
}

func TestSortFindingsOrder(t *testing.T) {
	fs := []Finding{
		{Pos: token.Position{Filename: "b.go", Line: 1}, Check: "rawgo"},
		{Pos: token.Position{Filename: "a.go", Line: 9}, Check: "clock"},
		{Pos: token.Position{Filename: "a.go", Line: 2}, Check: "maprange"},
		{Pos: token.Position{Filename: "a.go", Line: 2}, Check: "clock"},
	}
	sortFindings(fs)
	want := []string{"a.go:2 clock", "a.go:2 maprange", "a.go:9 clock", "b.go:1 rawgo"}
	for i, f := range fs {
		got := f.Pos.Filename + ":" + itoa(f.Pos.Line) + " " + f.Check
		if got != want[i] {
			t.Fatalf("order[%d] = %s, want %s", i, got, want[i])
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// TestRepoIsClean runs the full linter over this repository: the tree must
// stay free of findings and stale waivers (check.sh enforces the same gate).
func TestRepoIsClean(t *testing.T) {
	root, err := moduleRootAbove(".")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

func moduleRootAbove(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", os.ErrNotExist
		}
		d = parent
	}
}
