package analysis

import (
	"go/ast"
	"go/types"
)

// ArgMut guards against the DedupViolations bug class: an exported function
// that sorts a parameter slice in place, or appends back into it, mutates
// the caller's data through the shared backing array. Exported APIs must
// copy before reordering or growing.
var ArgMut = &Checker{
	Name: "argmut",
	Doc:  "exported functions must not sort or append in place into a parameter slice",
	Run:  runArgMut,
}

func runArgMut(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			params := sliceParams(p.Info, fd)
			if len(params) == 0 {
				continue
			}
			checkArgMutBody(p, fd, params)
		}
	}
}

// sliceParams returns the objects of fd's slice-typed parameters.
func sliceParams(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj == nil {
				continue
			}
			if _, ok := obj.Type().Underlying().(*types.Slice); ok {
				out[obj] = true
			}
		}
	}
	return out
}

func checkArgMutBody(p *Pass, fd *ast.FuncDecl, params map[types.Object]bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.CallExpr:
			if arg, ok := sortedInPlaceArg(p.Info, st); ok {
				if obj := p.Info.ObjectOf(arg); obj != nil && params[obj] {
					p.Reportf(st.Pos(), "argmut",
						"exported %s sorts its parameter %q in place; the caller's slice must stay untouched — sort a copy", fd.Name.Name, arg.Name)
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(st.Rhs) {
					continue
				}
				obj := p.Info.ObjectOf(id)
				if obj == nil || !params[obj] {
					continue
				}
				call, ok := st.Rhs[i].(*ast.CallExpr)
				if !ok || !isBuiltinAppend(p.Info, call) || len(call.Args) == 0 {
					continue
				}
				if first, ok := call.Args[0].(*ast.Ident); ok && p.Info.ObjectOf(first) == obj {
					p.Reportf(st.Pos(), "argmut",
						"exported %s appends back into its parameter %q; spare capacity aliases the caller's array — build a fresh slice", fd.Name.Name, id.Name)
				}
			}
		}
		return true
	})
}

// sortedInPlaceArg matches in-place ordering calls (sort.Slice and friends,
// slices.Sort*) and returns the identifier being sorted, when it is one.
func sortedInPlaceArg(info *types.Info, call *ast.CallExpr) (*ast.Ident, bool) {
	if !isSortCall(info, call) {
		return nil, false
	}
	id, ok := call.Args[0].(*ast.Ident)
	return id, ok
}
