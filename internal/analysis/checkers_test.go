package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

// lintFixture type-checks one testdata file as a package with the given
// import path and runs the full suite (checkers + waivers) over it.
func lintFixture(t *testing.T, pkgPath, file string) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	parsed, err := parser.ParseFile(fset, filepath.Join("testdata", file), nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", file, err)
	}
	cfg := &types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	info := newInfo()
	pkg, err := cfg.Check(pkgPath, fset, []*ast.File{parsed}, info)
	if err != nil {
		t.Fatalf("type-check %s: %v", file, err)
	}
	return checkPackage(fset, pkgPath, []*ast.File{parsed}, pkg, info)
}

// keysOf compresses findings to "check:line" for table comparison.
func keysOf(fs []Finding) []string {
	out := make([]string, 0, len(fs))
	for _, f := range fs {
		out = append(out, fmt.Sprintf("%s:%d", f.Check, f.Pos.Line))
	}
	sort.Strings(out)
	return out
}

func TestCheckers(t *testing.T) {
	cases := []struct {
		name    string
		file    string
		pkgPath string
		want    []string // "check:line", sorted
	}{
		{
			name:    "maprange in deterministic package",
			file:    "maprange_src.go",
			pkgPath: "example.com/internal/core",
			want:    []string{"maprange:10", "maprange:19", "maprange:28"},
		},
		{
			name:    "maprange ignores non-deterministic packages",
			file:    "maprange_src.go",
			pkgPath: "example.com/internal/gpu",
			want:    nil,
		},
		{
			name:    "maprange does not match a merely core-named package",
			file:    "maprange_src.go",
			pkgPath: "example.com/pkg/core",
			want:    nil,
		},
		{
			name:    "clock in a regular package",
			file:    "clock_src.go",
			pkgPath: "example.com/internal/core",
			want:    []string{"clock:9", "clock:11"},
		},
		{
			name:    "clock exempt in infra",
			file:    "clock_src.go",
			pkgPath: "example.com/internal/infra",
			want:    nil,
		},
		{
			name:    "clock exempt in bench",
			file:    "clock_src.go",
			pkgPath: "example.com/internal/bench",
			want:    nil,
		},
		{
			name:    "clock exempt in trace",
			file:    "clock_src.go",
			pkgPath: "example.com/internal/trace",
			want:    nil,
		},
		{
			name:    "rawgo in a regular package",
			file:    "rawgo_src.go",
			pkgPath: "example.com/internal/core",
			want:    []string{"rawgo:7"},
		},
		{
			name:    "rawgo exempt in pool",
			file:    "rawgo_src.go",
			pkgPath: "example.com/internal/pool",
			want:    nil,
		},
		{
			name:    "argmut on exported functions",
			file:    "argmut_src.go",
			pkgPath: "example.com/internal/geom",
			want:    []string{"argmut:14", "argmut:19", "argmut:9"},
		},
		{
			name:    "sharedbuf in a consumer package",
			file:    "sharedbuf_src.go",
			pkgPath: "example.com/internal/core",
			want: []string{"sharedbuf:23", "sharedbuf:28", "sharedbuf:33",
				"sharedbuf:38", "sharedbuf:43", "sharedbuf:48"},
		},
		{
			name:    "sharedbuf exempt in kernels; its waiver goes stale",
			file:    "sharedbuf_src.go",
			pkgPath: "example.com/internal/kernels",
			want:    []string{"waiver:80"},
		},
		{
			name:    "sharedbuf exempt in geocache; its waiver goes stale",
			file:    "sharedbuf_src.go",
			pkgPath: "example.com/internal/geocache",
			want:    []string{"waiver:80"},
		},
		{
			name:    "arenaescape: boundary returns, sinks, cross-call escapes, waiver placement",
			file:    "arenaescape_src.go",
			pkgPath: "example.com/internal/geocache",
			want: []string{"arenaescape:57", "arenaescape:64", "arenaescape:70",
				"arenaescape:76", "arenaescape:87", "arenaescape:101", "waiver:100"},
		},
		{
			name:    "ctxflow: background/todo, dropped ctx before fan-out",
			file:    "ctxflow_src.go",
			pkgPath: "example.com/internal/core",
			want:    []string{"ctxflow:35", "ctxflow:43", "ctxflow:48", "ctxflow:54", "ctxflow:70"},
		},
		{
			name:    "ctxflow: package main may create root contexts",
			file:    "ctxflow_main_src.go",
			pkgPath: "example.com/cmd/odrc",
			want:    nil,
		},
		{
			name:    "lockdiscipline: guarded fields, branch-aware lock tracking",
			file:    "lockdiscipline_src.go",
			pkgPath: "example.com/internal/geocache",
			want: []string{"lockdiscipline:47", "lockdiscipline:50", "lockdiscipline:58",
				"lockdiscipline:64", "lockdiscipline:75", "lockdiscipline:76"},
		},
		{
			name:    "waivers suppress, stale waivers report",
			file:    "waiver_src.go",
			pkgPath: "example.com/internal/core",
			want:    []string{"clock:21", "waiver:15", "waiver:21"},
		},
		{
			name:    "malformed waivers",
			file:    "badwaiver_src.go",
			pkgPath: "example.com/internal/core",
			want:    []string{"waiver:7", "waiver:12", "waiver:17", "waiver:22"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := keysOf(lintFixture(t, tc.pkgPath, tc.file))
			want := append([]string(nil), tc.want...)
			sort.Strings(want)
			if len(want) == 0 {
				want = nil
			}
			if len(got) == 0 {
				got = nil
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("findings = %v, want %v", got, want)
			}
		})
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{
		Pos:     token.Position{Filename: "internal/core/x.go", Line: 7, Column: 3},
		Check:   "maprange",
		Message: "bad",
	}
	if got, want := f.String(), "internal/core/x.go:7: [maprange] bad"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
