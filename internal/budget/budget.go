// Package budget defines the engine's resource budgets: configurable hard
// limits on the quantities that make a DRC run blow up on pathological
// inputs — the instantiated-polygon count of a layer flatten (the KLayout
// flat-mode explosion the paper quantifies on jpeg), the packed edge count
// of one device batch, and the simulated device pool's byte usage. A
// tripped budget surfaces as a typed *Error that unwraps to ErrExceeded, so
// callers can degrade gracefully (skip the rule, fall back to tiling)
// instead of exhausting host memory.
package budget

import (
	"errors"
	"fmt"
)

// ErrExceeded is the sentinel all budget errors unwrap to; test with
// errors.Is(err, budget.ErrExceeded).
var ErrExceeded = errors.New("budget exceeded")

// Error reports one tripped budget. It marshals to JSON as
// {"resource":..., "used":..., "limit":...} so report failures and service
// error bodies carry the tripped budget structurally instead of forcing
// consumers to parse the rendered message.
type Error struct {
	Resource string `json:"resource"` // "flatten-polys", "packed-edges", "device-pool-bytes"
	Limit    int64  `json:"limit"`    // the configured budget
	Used     int64  `json:"used"`     // the demand that tripped it
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("budget exceeded: %s: need %d, limit %d", e.Resource, e.Used, e.Limit)
}

// Unwrap ties the typed error to the ErrExceeded sentinel.
func (e *Error) Unwrap() error { return ErrExceeded }

// FromError extracts the typed budget error wrapped anywhere in err's chain,
// or nil: the one-liner consumers use to attach structured budget fields to
// their own error bodies.
func FromError(err error) *Error {
	var be *Error
	if errors.As(err, &be) {
		return be
	}
	return nil
}

// Check returns a *Error when used exceeds limit; a limit <= 0 means
// unlimited and always passes.
func Check(resource string, used, limit int64) error {
	if limit <= 0 || used <= limit {
		return nil
	}
	return &Error{Resource: resource, Limit: limit, Used: used}
}

// Limits bundles the engine's resource budgets. The zero value imposes no
// limits.
type Limits struct {
	// MaxFlattenPolys caps the number of polygon instances any single
	// layer flatten may materialize (parallel-mode flatten phases, the
	// flat ablations, and KLayout flat mode — which falls back to tiling
	// instead of failing).
	MaxFlattenPolys int64
	// MaxPackedEdges caps the packed edge count of one device batch.
	MaxPackedEdges int64
	// MaxDeviceBytes caps the simulated device's stream-ordered pool; an
	// allocation pushing usage past it returns an OOM error instead of
	// growing without bound.
	MaxDeviceBytes int64
}
