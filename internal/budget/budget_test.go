package budget

import (
	"errors"
	"strings"
	"testing"
)

func TestCheckUnlimited(t *testing.T) {
	if err := Check("flatten-polys", 1<<40, 0); err != nil {
		t.Fatalf("limit 0 tripped: %v", err)
	}
	if err := Check("flatten-polys", 1<<40, -1); err != nil {
		t.Fatalf("negative limit tripped: %v", err)
	}
}

func TestCheckWithinLimit(t *testing.T) {
	if err := Check("packed-edges", 100, 100); err != nil {
		t.Fatalf("used == limit tripped: %v", err)
	}
	if err := Check("packed-edges", 99, 100); err != nil {
		t.Fatalf("used < limit tripped: %v", err)
	}
}

func TestCheckExceeded(t *testing.T) {
	err := Check("device-pool-bytes", 101, 100)
	if !errors.Is(err, ErrExceeded) {
		t.Fatalf("err = %v, want wrapped ErrExceeded", err)
	}
	var be *Error
	if !errors.As(err, &be) {
		t.Fatalf("err = %T, want *Error", err)
	}
	if be.Resource != "device-pool-bytes" || be.Limit != 100 || be.Used != 101 {
		t.Fatalf("error fields = %+v", be)
	}
	if !strings.Contains(err.Error(), "device-pool-bytes") {
		t.Fatalf("error text %q does not name the resource", err.Error())
	}
}
