package budget

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestCheckUnlimited(t *testing.T) {
	if err := Check("flatten-polys", 1<<40, 0); err != nil {
		t.Fatalf("limit 0 tripped: %v", err)
	}
	if err := Check("flatten-polys", 1<<40, -1); err != nil {
		t.Fatalf("negative limit tripped: %v", err)
	}
}

func TestCheckWithinLimit(t *testing.T) {
	if err := Check("packed-edges", 100, 100); err != nil {
		t.Fatalf("used == limit tripped: %v", err)
	}
	if err := Check("packed-edges", 99, 100); err != nil {
		t.Fatalf("used < limit tripped: %v", err)
	}
}

func TestCheckExceeded(t *testing.T) {
	err := Check("device-pool-bytes", 101, 100)
	if !errors.Is(err, ErrExceeded) {
		t.Fatalf("err = %v, want wrapped ErrExceeded", err)
	}
	var be *Error
	if !errors.As(err, &be) {
		t.Fatalf("err = %T, want *Error", err)
	}
	if be.Resource != "device-pool-bytes" || be.Limit != 100 || be.Used != 101 {
		t.Fatalf("error fields = %+v", be)
	}
	if !strings.Contains(err.Error(), "device-pool-bytes") {
		t.Fatalf("error text %q does not name the resource", err.Error())
	}
}

// TestErrorJSONRoundTrip pins the structured wire shape: a tripped budget
// marshals to named resource/used/limit fields and unmarshals back to an
// equal value, so service error bodies never have to parse the rendered
// message.
func TestErrorJSONRoundTrip(t *testing.T) {
	orig := &Error{Resource: "packed-edges", Limit: 1000, Used: 1234}
	raw, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"resource":"packed-edges","limit":1000,"used":1234}`
	if string(raw) != want {
		t.Fatalf("marshaled form = %s, want %s", raw, want)
	}
	var back Error
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back != *orig {
		t.Fatalf("round trip = %+v, want %+v", back, *orig)
	}
}

// TestErrorWrappedRoundTrip follows a budget error through fmt.Errorf
// wrapping, the way the engine and the service layer pass it around: Is
// still matches the sentinel, As and FromError still recover the typed
// value, and the recovered value marshals structurally.
func TestErrorWrappedRoundTrip(t *testing.T) {
	inner := Check("flatten-polys", 501, 500)
	wrapped := fmt.Errorf("core: rule M1.W.1: %w", fmt.Errorf("flatten: %w", inner))
	if !errors.Is(wrapped, ErrExceeded) {
		t.Fatalf("errors.Is(%v, ErrExceeded) = false", wrapped)
	}
	var be *Error
	if !errors.As(wrapped, &be) {
		t.Fatalf("errors.As failed on %v", wrapped)
	}
	if be.Resource != "flatten-polys" || be.Used != 501 || be.Limit != 500 {
		t.Fatalf("recovered fields = %+v", be)
	}
	if got := FromError(wrapped); got != be {
		t.Fatalf("FromError = %v, want the wrapped *Error", got)
	}
	if FromError(errors.New("unrelated")) != nil {
		t.Fatal("FromError matched an unrelated error")
	}
	raw, err := json.Marshal(be)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"resource":"flatten-polys"`) {
		t.Fatalf("marshaled wrapped error = %s", raw)
	}
}
