// Package sweep implements the rectangle-intersection-report sweepline of
// OpenDRC's sequential mode (Section IV-D): a conceptual horizontal line
// moves from top to bottom across the plane; when the top side of an MBR is
// reached its x-interval is inserted into an interval tree and queried for
// everything it overlaps, and when the bottom side is reached the interval
// is removed. All overlapping MBR pairs are reported exactly once.
package sweep

import (
	"fmt"
	"slices"
	"sync"

	"opendrc/internal/geom"
	"opendrc/internal/interval"
)

// Pair is an overlapping rectangle pair, reported with A < B.
type Pair struct {
	A, B int
}

// Stats reports sweepline work for profiling and tests.
type Stats struct {
	Events      int // top/bottom events processed
	MaxLive     int // peak interval-tree occupancy
	PairsFound  int
	TreeQueries int
}

type event struct {
	y   int64
	id  int
	top bool
}

// scratch holds the per-sweep event and coordinate buffers. Sweeps run once
// per partition row per rule, so callers on that hot path recycle the
// buffers through a Pool instead of reallocating them for every row;
// contents are fully rewritten before use, so recycling cannot affect
// results. The interval tree copies the coordinate skeleton it keeps, so
// returning the buffers after the sweep is safe.
type scratch struct {
	events []event
	coords []int64
}

// Pool is a freelist of sweep scratch buffers, owned by whoever runs many
// sweeps (the engine allocates one per run). It is a plain mutex-guarded
// stack rather than a package-level sync.Pool so that sweep allocation
// behavior is a pure function of the owner's call sequence — no state
// shared across runs, no GC- or race-detector-coupled eviction — which the
// engine's repeated-run determinism (byte-identical traces) relies on. The
// zero value is ready to use.
type Pool struct {
	mu   sync.Mutex
	free []*scratch //odrc:guardedby mu
}

func (p *Pool) get() *scratch {
	p.mu.Lock()
	defer p.mu.Unlock()
	if l := len(p.free); l > 0 {
		sc := p.free[l-1]
		p.free[l-1] = nil
		p.free = p.free[:l-1]
		return sc
	}
	return new(scratch)
}

func (p *Pool) put(sc *scratch) {
	p.mu.Lock()
	p.free = append(p.free, sc)
	p.mu.Unlock()
}

// Overlaps is the package function with recycled scratch: buffers come from
// and return to the pool around one sweep. Safe for concurrent use.
func (p *Pool) Overlaps(boxes []geom.Rect, fn func(a, b int)) (Stats, error) {
	sc := p.get()
	defer p.put(sc)
	return overlapsScratch(sc, boxes, fn)
}

// OverlapsBetween is the package function with recycled scratch.
func (p *Pool) OverlapsBetween(as, bs []geom.Rect, fn func(a, b int)) (Stats, error) {
	boxes := make([]geom.Rect, 0, len(as)+len(bs))
	boxes = append(boxes, as...)
	boxes = append(boxes, bs...)
	return p.Overlaps(boxes, betweenFn(len(as), fn))
}

// Overlaps reports every pair of rectangles that overlap or touch, invoking
// fn once per pair with indices (a < b). Empty rectangles never interact.
// The returned error reports a corrupted sweep state (an interval endpoint
// missing from the skeleton — unreachable by construction but propagated
// rather than panicking, per the failure-semantics policy in DESIGN.md).
func Overlaps(boxes []geom.Rect, fn func(a, b int)) (Stats, error) {
	return overlapsScratch(new(scratch), boxes, fn)
}

// overlapsScratch runs one sweep using the given scratch buffers.
func overlapsScratch(sc *scratch, boxes []geom.Rect, fn func(a, b int)) (Stats, error) {
	var st Stats
	events := sc.events[:0]
	coords := sc.coords[:0]
	for i, b := range boxes {
		if b.Empty() {
			continue
		}
		events = append(events,
			event{y: b.YHi, id: i, top: true},
			event{y: b.YLo, id: i, top: false})
		coords = append(coords, b.XLo, b.XHi)
	}
	sc.events, sc.coords = events, coords
	// Descending y; at equal y process top events (insertions) before
	// bottom events (removals) so rectangles that merely touch in y are
	// simultaneously live and get reported.
	slices.SortFunc(events, func(a, b event) int {
		if a.y != b.y {
			if a.y > b.y {
				return -1
			}
			return 1
		}
		switch {
		case a.top && !b.top:
			return -1
		case b.top && !a.top:
			return 1
		}
		return 0
	})

	tree := interval.NewTree(coords)
	for _, ev := range events {
		st.Events++
		b := boxes[ev.id]
		if ev.top {
			st.TreeQueries++
			tree.Query(b.XLo, b.XHi, func(e interval.Entry) {
				st.PairsFound++
				a, c := e.ID, ev.id
				if a > c {
					a, c = c, a
				}
				fn(a, c)
			})
			// Insert after querying so the rectangle does not report
			// itself; endpoints are in the skeleton by construction, so a
			// failed insert means the sweep state is corrupt — surface it
			// to the caller instead of panicking library code.
			if err := tree.Insert(b.XLo, b.XHi, ev.id); err != nil {
				return st, fmt.Errorf("sweep: inserting interval [%d,%d] of box %d: %w",
					b.XLo, b.XHi, ev.id, err)
			}
			if l := tree.Len(); l > st.MaxLive {
				st.MaxLive = l
			}
		} else {
			tree.Delete(b.XLo, b.XHi, ev.id)
		}
	}
	return st, nil
}

// OverlapsBetween reports overlapping pairs between two distinct rectangle
// sets (for inter-layer checks such as enclosure): fn(a, b) receives an
// index into as and an index into bs. Implemented as one sweep over the
// union with set tags, so the cost stays O((n+m) log(n+m) + k). The error
// contract matches Overlaps.
func OverlapsBetween(as, bs []geom.Rect, fn func(a, b int)) (Stats, error) {
	boxes := make([]geom.Rect, 0, len(as)+len(bs))
	boxes = append(boxes, as...)
	boxes = append(boxes, bs...)
	return Overlaps(boxes, betweenFn(len(as), fn))
}

// betweenFn adapts a two-set pair callback to union-sweep indices: pairs
// within one set are ignored, cross-set pairs are reported as (a-index,
// b-index).
func betweenFn(na int, fn func(a, b int)) func(x, y int) {
	return func(x, y int) {
		switch {
		case x < na && y >= na:
			fn(x, y-na)
		case y < na && x >= na:
			fn(y, x-na)
		}
		// same-set pairs are ignored
	}
}

// BruteForcePairs is the quadratic reference used by tests and tiny inputs.
func BruteForcePairs(boxes []geom.Rect, fn func(a, b int)) {
	for i := 0; i < len(boxes); i++ {
		for j := i + 1; j < len(boxes); j++ {
			if boxes[i].Overlaps(boxes[j]) {
				fn(i, j)
			}
		}
	}
}
