// Package sweep implements the rectangle-intersection-report sweepline of
// OpenDRC's sequential mode (Section IV-D): a conceptual horizontal line
// moves from top to bottom across the plane; when the top side of an MBR is
// reached its x-interval is inserted into an interval tree and queried for
// everything it overlaps, and when the bottom side is reached the interval
// is removed. All overlapping MBR pairs are reported exactly once.
package sweep

import (
	"fmt"
	"sort"

	"opendrc/internal/geom"
	"opendrc/internal/interval"
)

// Pair is an overlapping rectangle pair, reported with A < B.
type Pair struct {
	A, B int
}

// Stats reports sweepline work for profiling and tests.
type Stats struct {
	Events      int // top/bottom events processed
	MaxLive     int // peak interval-tree occupancy
	PairsFound  int
	TreeQueries int
}

type event struct {
	y   int64
	id  int
	top bool
}

// Overlaps reports every pair of rectangles that overlap or touch, invoking
// fn once per pair with indices (a < b). Empty rectangles never interact.
// The returned error reports a corrupted sweep state (an interval endpoint
// missing from the skeleton — unreachable by construction but propagated
// rather than panicking, per the failure-semantics policy in DESIGN.md).
func Overlaps(boxes []geom.Rect, fn func(a, b int)) (Stats, error) {
	var st Stats
	events := make([]event, 0, 2*len(boxes))
	coords := make([]int64, 0, 2*len(boxes))
	for i, b := range boxes {
		if b.Empty() {
			continue
		}
		events = append(events,
			event{y: b.YHi, id: i, top: true},
			event{y: b.YLo, id: i, top: false})
		coords = append(coords, b.XLo, b.XHi)
	}
	// Descending y; at equal y process top events (insertions) before
	// bottom events (removals) so rectangles that merely touch in y are
	// simultaneously live and get reported.
	sort.Slice(events, func(i, j int) bool {
		if events[i].y != events[j].y {
			return events[i].y > events[j].y
		}
		return events[i].top && !events[j].top
	})

	tree := interval.NewTree(coords)
	for _, ev := range events {
		st.Events++
		b := boxes[ev.id]
		if ev.top {
			st.TreeQueries++
			tree.Query(b.XLo, b.XHi, func(e interval.Entry) {
				st.PairsFound++
				a, c := e.ID, ev.id
				if a > c {
					a, c = c, a
				}
				fn(a, c)
			})
			// Insert after querying so the rectangle does not report
			// itself; endpoints are in the skeleton by construction, so a
			// failed insert means the sweep state is corrupt — surface it
			// to the caller instead of panicking library code.
			if err := tree.Insert(b.XLo, b.XHi, ev.id); err != nil {
				return st, fmt.Errorf("sweep: inserting interval [%d,%d] of box %d: %w",
					b.XLo, b.XHi, ev.id, err)
			}
			if l := tree.Len(); l > st.MaxLive {
				st.MaxLive = l
			}
		} else {
			tree.Delete(b.XLo, b.XHi, ev.id)
		}
	}
	return st, nil
}

// OverlapsBetween reports overlapping pairs between two distinct rectangle
// sets (for inter-layer checks such as enclosure): fn(a, b) receives an
// index into as and an index into bs. Implemented as one sweep over the
// union with set tags, so the cost stays O((n+m) log(n+m) + k). The error
// contract matches Overlaps.
func OverlapsBetween(as, bs []geom.Rect, fn func(a, b int)) (Stats, error) {
	boxes := make([]geom.Rect, 0, len(as)+len(bs))
	boxes = append(boxes, as...)
	boxes = append(boxes, bs...)
	return Overlaps(boxes, func(x, y int) {
		switch {
		case x < len(as) && y >= len(as):
			fn(x, y-len(as))
		case y < len(as) && x >= len(as):
			fn(y, x-len(as))
		}
		// same-set pairs are ignored
	})
}

// BruteForcePairs is the quadratic reference used by tests and tiny inputs.
func BruteForcePairs(boxes []geom.Rect, fn func(a, b int)) {
	for i := 0; i < len(boxes); i++ {
		for j := i + 1; j < len(boxes); j++ {
			if boxes[i].Overlaps(boxes[j]) {
				fn(i, j)
			}
		}
	}
}
