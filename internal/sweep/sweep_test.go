package sweep

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"opendrc/internal/geom"
)

func pairsOf(boxes []geom.Rect) ([]Pair, Stats) {
	var out []Pair
	st, err := Overlaps(boxes, func(a, b int) { out = append(out, Pair{a, b}) })
	if err != nil {
		panic(err) // unreachable: endpoints are always in the skeleton
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out, st
}

func brutePairs(boxes []geom.Rect) []Pair {
	var out []Pair
	BruteForcePairs(boxes, func(a, b int) { out = append(out, Pair{a, b}) })
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

func eqPairs(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestOverlapsFigure3Scene(t *testing.T) {
	// A scene in the spirit of the paper's Fig. 3: staggered MBRs where
	// some overlap, some only touch, and some are disjoint.
	boxes := []geom.Rect{
		geom.R(0, 0, 4, 4),     // 0
		geom.R(3, 3, 7, 7),     // 1 overlaps 0
		geom.R(4, 0, 8, 2),     // 2 touches 0 at x=4, overlaps nothing else... touches 1? x[4,8]∩[3,7],y[0,2]∩[3,7]=∅
		geom.R(10, 10, 12, 12), // 3 isolated
		geom.R(7, 7, 9, 9),     // 4 touches 1 at corner (7,7)
	}
	got, st := pairsOf(boxes)
	want := []Pair{{0, 1}, {0, 2}, {1, 4}}
	if !eqPairs(got, want) {
		t.Errorf("pairs = %v, want %v", got, want)
	}
	if st.Events != 10 {
		t.Errorf("events = %d, want 10", st.Events)
	}
	if st.MaxLive < 2 {
		t.Errorf("max live = %d", st.MaxLive)
	}
}

func TestOverlapsIdenticalAndNested(t *testing.T) {
	boxes := []geom.Rect{
		geom.R(0, 0, 10, 10),
		geom.R(0, 0, 10, 10), // identical
		geom.R(2, 2, 4, 4),   // nested
	}
	got, _ := pairsOf(boxes)
	want := []Pair{{0, 1}, {0, 2}, {1, 2}}
	if !eqPairs(got, want) {
		t.Errorf("pairs = %v", got)
	}
}

func TestOverlapsEmptyInput(t *testing.T) {
	got, st := pairsOf(nil)
	if len(got) != 0 || st.Events != 0 {
		t.Errorf("nil input: %v %+v", got, st)
	}
	got, _ = pairsOf([]geom.Rect{geom.EmptyRect(), geom.R(0, 0, 1, 1)})
	if len(got) != 0 {
		t.Errorf("empty rect produced pairs: %v", got)
	}
}

func TestOverlapsDegenerate(t *testing.T) {
	// Zero-height rectangles (horizontal edges' MBRs) still interact.
	boxes := []geom.Rect{
		geom.R(0, 5, 10, 5),
		geom.R(5, 5, 15, 5),
		geom.R(20, 5, 30, 5),
	}
	got, _ := pairsOf(boxes)
	if !eqPairs(got, []Pair{{0, 1}}) {
		t.Errorf("pairs = %v", got)
	}
}

func TestOverlapsMatchesBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(120)
		boxes := make([]geom.Rect, n)
		for i := range boxes {
			x := int64(rng.Intn(400))
			y := int64(rng.Intn(400))
			boxes[i] = geom.R(x, y, x+int64(rng.Intn(60)), y+int64(rng.Intn(60)))
		}
		got, _ := pairsOf(boxes)
		want := brutePairs(boxes)
		if !eqPairs(got, want) {
			t.Fatalf("trial %d: %d pairs vs %d pairs", trial, len(got), len(want))
		}
	}
}

func TestOverlapsProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw % 40)
		boxes := make([]geom.Rect, n)
		for i := range boxes {
			x := int64(rng.Intn(100))
			y := int64(rng.Intn(100))
			boxes[i] = geom.R(x, y, x+int64(rng.Intn(30)), y+int64(rng.Intn(30)))
		}
		got, _ := pairsOf(boxes)
		return eqPairs(got, brutePairs(boxes))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOverlapsBetween(t *testing.T) {
	vias := []geom.Rect{geom.R(2, 2, 4, 4), geom.R(50, 50, 52, 52)}
	metals := []geom.Rect{geom.R(0, 0, 10, 10), geom.R(40, 40, 45, 45)}
	var got []Pair
	OverlapsBetween(vias, metals, func(a, b int) { got = append(got, Pair{a, b}) })
	if !eqPairs(got, []Pair{{0, 0}}) {
		t.Errorf("between pairs = %v", got)
	}
}

func TestOverlapsBetweenIgnoresSameSet(t *testing.T) {
	// Two overlapping boxes in set A, none in B: no pairs.
	as := []geom.Rect{geom.R(0, 0, 10, 10), geom.R(5, 5, 15, 15)}
	var got []Pair
	OverlapsBetween(as, nil, func(a, b int) { got = append(got, Pair{a, b}) })
	if len(got) != 0 {
		t.Errorf("same-set pairs leaked: %v", got)
	}
}

func TestStatsReporting(t *testing.T) {
	boxes := []geom.Rect{geom.R(0, 0, 2, 2), geom.R(1, 1, 3, 3), geom.R(2, 2, 4, 4)}
	_, st := pairsOf(boxes)
	if st.TreeQueries != 3 {
		t.Errorf("queries = %d", st.TreeQueries)
	}
	if st.PairsFound != 3 { // (0,1), (1,2), (0,2) corner touch
		t.Errorf("pairs found = %d", st.PairsFound)
	}
}
