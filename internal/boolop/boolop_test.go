package boolop

import (
	"math/rand"
	"testing"
	"testing/quick"

	"opendrc/internal/geom"
)

func rp(x0, y0, x1, y1 int64) geom.Polygon {
	return geom.RectPolygon(geom.R(x0, y0, x1, y1))
}

// rasterOracle computes the boolean result area by brute-force point
// sampling on the unit grid (coordinates must be small).
func rasterOracle(a, b []geom.Polygon, op Op, bound int64) int64 {
	in := func(polys []geom.Polygon, x, y int64) bool {
		// Cell (x,y)..(x+1,y+1) covered iff its center is inside; use the
		// exact test on the doubled grid to avoid boundary ambiguity.
		for _, p := range polys {
			if p.ContainsPoint(geom.Pt(x, y)) && p.ContainsPoint(geom.Pt(x+1, y+1)) &&
				p.ContainsPoint(geom.Pt(x+1, y)) && p.ContainsPoint(geom.Pt(x, y+1)) {
				return true
			}
		}
		return false
	}
	var area int64
	for x := int64(-1); x <= bound; x++ {
		for y := int64(-1); y <= bound; y++ {
			ia, ib := in(a, x, y), in(b, x, y)
			var inside bool
			switch op {
			case And:
				inside = ia && ib
			case Or:
				inside = ia || ib
			case Sub:
				inside = ia && !ib
			case Xor:
				inside = ia != ib
			}
			if inside {
				area++
			}
		}
	}
	return area
}

func TestCombineBasicRects(t *testing.T) {
	a := []geom.Polygon{rp(0, 0, 10, 10)}
	b := []geom.Polygon{rp(5, 5, 15, 15)}
	if got := Combine(a, b, And).Area(); got != 25 {
		t.Errorf("and area = %d", got)
	}
	if got := Combine(a, b, Or).Area(); got != 175 {
		t.Errorf("or area = %d", got)
	}
	if got := Combine(a, b, Sub).Area(); got != 75 {
		t.Errorf("sub area = %d", got)
	}
	if got := Combine(a, b, Xor).Area(); got != 150 {
		t.Errorf("xor area = %d", got)
	}
}

func TestCombineDisjointAndNested(t *testing.T) {
	a := []geom.Polygon{rp(0, 0, 4, 4)}
	b := []geom.Polygon{rp(10, 10, 14, 14)}
	if got := Combine(a, b, And); !got.Empty() {
		t.Errorf("disjoint and = %v", got.Rects())
	}
	if got := Combine(a, b, Or).Area(); got != 32 {
		t.Errorf("disjoint or = %d", got)
	}
	inner := []geom.Polygon{rp(1, 1, 3, 3)}
	if got := Combine(inner, a, Sub); !got.Empty() {
		t.Errorf("nested sub = %v", got.Rects())
	}
	// Donut: outer minus inner leaves a ring of area 16-4=12.
	if got := Combine(a, inner, Sub).Area(); got != 12 {
		t.Errorf("ring area = %d", got)
	}
}

func TestCombineLShapes(t *testing.T) {
	l := geom.MustPolygon([]geom.Point{
		geom.Pt(0, 0), geom.Pt(0, 10), geom.Pt(4, 10), geom.Pt(4, 4),
		geom.Pt(10, 4), geom.Pt(10, 0),
	})
	a := []geom.Polygon{l}
	b := []geom.Polygon{rp(2, 2, 8, 8)}
	for _, op := range []Op{And, Or, Sub, Xor} {
		got := Combine(a, b, op).Area()
		want := rasterOracle(a, b, op, 16)
		if got != want {
			t.Errorf("%v: area %d, oracle %d", op, got, want)
		}
	}
}

func TestCombineEmptyOperands(t *testing.T) {
	a := []geom.Polygon{rp(0, 0, 5, 5)}
	if got := Combine(a, nil, And); !got.Empty() {
		t.Error("and with empty not empty")
	}
	if got := Combine(a, nil, Sub).Area(); got != 25 {
		t.Errorf("sub empty = %d", got)
	}
	if got := Combine(nil, nil, Or); !got.Empty() {
		t.Error("empty or empty")
	}
	if got := Combine(nil, a, Or).Area(); got != 25 {
		t.Errorf("empty or a = %d", got)
	}
}

func TestRectSetDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var a, b []geom.Polygon
	for i := 0; i < 12; i++ {
		x, y := int64(rng.Intn(30)), int64(rng.Intn(30))
		a = append(a, rp(x, y, x+int64(2+rng.Intn(10)), y+int64(2+rng.Intn(10))))
		x, y = int64(rng.Intn(30)), int64(rng.Intn(30))
		b = append(b, rp(x, y, x+int64(2+rng.Intn(10)), y+int64(2+rng.Intn(10))))
	}
	set := Combine(a, b, Or)
	rects := set.Rects()
	for i := 0; i < len(rects); i++ {
		for j := i + 1; j < len(rects); j++ {
			inter := rects[i].Intersect(rects[j])
			if !inter.Empty() && inter.Area() > 0 {
				t.Fatalf("output rects %v and %v overlap", rects[i], rects[j])
			}
		}
	}
}

func TestCombineMatchesOracleRandom(t *testing.T) {
	for _, op := range []Op{And, Or, Sub, Xor} {
		rng := rand.New(rand.NewSource(int64(op) + 11))
		for trial := 0; trial < 25; trial++ {
			var a, b []geom.Polygon
			for i := 0; i < 1+rng.Intn(6); i++ {
				x, y := int64(rng.Intn(20)), int64(rng.Intn(20))
				a = append(a, rp(x, y, x+int64(1+rng.Intn(12)), y+int64(1+rng.Intn(12))))
			}
			for i := 0; i < 1+rng.Intn(6); i++ {
				x, y := int64(rng.Intn(20)), int64(rng.Intn(20))
				b = append(b, rp(x, y, x+int64(1+rng.Intn(12)), y+int64(1+rng.Intn(12))))
			}
			got := Combine(a, b, op).Area()
			want := rasterOracle(a, b, op, 36)
			if got != want {
				t.Fatalf("%v trial %d: area %d, oracle %d", op, trial, got, want)
			}
		}
	}
}

func TestCombineIdentities(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var a, b []geom.Polygon
		for i := 0; i < 1+rng.Intn(4); i++ {
			x, y := int64(rng.Intn(15)), int64(rng.Intn(15))
			a = append(a, rp(x, y, x+int64(1+rng.Intn(8)), y+int64(1+rng.Intn(8))))
		}
		for i := 0; i < 1+rng.Intn(4); i++ {
			x, y := int64(rng.Intn(15)), int64(rng.Intn(15))
			b = append(b, rp(x, y, x+int64(1+rng.Intn(8)), y+int64(1+rng.Intn(8))))
		}
		and := Combine(a, b, And).Area()
		or := Combine(a, b, Or).Area()
		sub := Combine(a, b, Sub).Area()
		xor := Combine(a, b, Xor).Area()
		aArea := Combine(a, nil, Or).Area()
		bArea := Combine(b, nil, Or).Area()
		// Inclusion–exclusion and friends.
		return or == aArea+bArea-and && sub == aArea-and && xor == or-and
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestNotCutAndOverlapArea(t *testing.T) {
	via := []geom.Polygon{rp(10, 10, 20, 20)}
	metal := []geom.Polygon{rp(5, 5, 25, 25)}
	if !NotCut(via, metal).Empty() {
		t.Error("covered via has non-empty NOT CUT residue")
	}
	if got := OverlapArea(via, metal); got != 100 {
		t.Errorf("overlap = %d", got)
	}
	shifted := []geom.Polygon{rp(18, 10, 28, 20)}
	res := NotCut(shifted, metal)
	if res.Empty() || res.Area() != 30 { // 3 wide × 10 tall uncovered
		t.Errorf("residue area = %d (%v)", res.Area(), res.Rects())
	}
	if got := OverlapArea(shifted, metal); got != 70 {
		t.Errorf("partial overlap = %d", got)
	}
}

func TestRectSetMBR(t *testing.T) {
	s := Combine([]geom.Polygon{rp(0, 0, 4, 4), rp(10, 10, 12, 12)}, nil, Or)
	if got := s.MBR(); got != geom.R(0, 0, 12, 12) {
		t.Errorf("mbr = %v", got)
	}
	var empty RectSet
	if !empty.MBR().Empty() {
		t.Error("empty set mbr not empty")
	}
}
